// Tests for the φ reduce/broadcast synchronization (Figure 4).
#include <gtest/gtest.h>

#include "core/sync.hpp"
#include "gpusim/multi_gpu.hpp"
#include "util/philox.hpp"

namespace culda::core {
namespace {

constexpr uint32_t kTopics = 8;
constexpr uint32_t kVocab = 50;

std::vector<PhiReplica> RandomReplicas(size_t g, uint64_t seed) {
  std::vector<PhiReplica> out;
  for (size_t i = 0; i < g; ++i) {
    PhiReplica r(kTopics, kVocab);
    PhiloxStream rng(seed, i);
    for (auto& c : r.phi.flat()) {
      c = static_cast<uint16_t>(rng.NextBelow(100));
    }
    out.push_back(std::move(r));
  }
  return out;
}

PhiMatrix ExpectedSum(const std::vector<PhiReplica>& replicas) {
  PhiMatrix sum(kTopics, kVocab);
  for (const auto& r : replicas) {
    for (size_t i = 0; i < sum.flat().size(); ++i) {
      sum.flat()[i] = static_cast<uint16_t>(sum.flat()[i] + r.phi.flat()[i]);
    }
  }
  return sum;
}

gpusim::DeviceGroup MakeGroup(size_t g) {
  return gpusim::DeviceGroup(
      std::vector<gpusim::DeviceSpec>(g, gpusim::TitanXpPascal()));
}

class SyncOverGpuCounts
    : public ::testing::TestWithParam<std::tuple<size_t, SyncMode>> {};

TEST_P(SyncOverGpuCounts, AllReplicasHoldTheGlobalSum) {
  const auto [g, mode] = GetParam();
  auto group = MakeGroup(g);
  auto replicas = RandomReplicas(g, 42);
  const PhiMatrix expected = ExpectedSum(replicas);

  CuldaConfig cfg;
  cfg.num_topics = kTopics;
  SynchronizePhi(group, cfg, replicas, mode);

  for (size_t i = 0; i < g; ++i) {
    for (size_t j = 0; j < expected.flat().size(); ++j) {
      ASSERT_EQ(replicas[i].phi.flat()[j], expected.flat()[j])
          << "gpu " << i << " cell " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GpuCountsAndModes, SyncOverGpuCounts,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8),
                       ::testing::Values(SyncMode::kGpuTree,
                                         SyncMode::kCpuSum)),
    [](const auto& info) {
      return "g" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == SyncMode::kGpuTree ? "_tree"
                                                            : "_cpu");
    });

TEST(Sync, SingleGpuIsFree) {
  auto group = MakeGroup(1);
  auto replicas = RandomReplicas(1, 1);
  CuldaConfig cfg;
  cfg.num_topics = kTopics;
  const auto stats = SynchronizePhi(group, cfg, replicas);
  EXPECT_EQ(stats.seconds, 0.0);
  EXPECT_EQ(stats.peer_bytes, 0u);
}

TEST(Sync, ReduceRoundsAreLogarithmic) {
  CuldaConfig cfg;
  cfg.num_topics = kTopics;
  for (const auto& [g, rounds] :
       std::vector<std::pair<size_t, int>>{{2, 1}, {4, 2}, {8, 3}, {5, 3}}) {
    auto group = MakeGroup(g);
    auto replicas = RandomReplicas(g, g);
    const auto stats = SynchronizePhi(group, cfg, replicas);
    EXPECT_EQ(stats.reduce_rounds, rounds) << "g=" << g;
  }
}

TEST(Sync, TreeBeatsSerialVolumeAtFourGpus) {
  // 4 GPUs with a realistically sized φ (where bandwidth, not latency,
  // dominates): the tree's parallel pairs beat the CPU-sum path, whose adds
  // run at CPU memory bandwidth — the Section 5.2 argument.
  CuldaConfig cfg;
  cfg.num_topics = 256;
  auto make_big = [](size_t g) {
    std::vector<PhiReplica> out;
    for (size_t i = 0; i < g; ++i) {
      PhiReplica r(256, 20000);
      r.phi.Fill(static_cast<uint16_t>(i + 1));
      out.push_back(std::move(r));
    }
    return out;
  };
  auto g_tree = MakeGroup(4);
  auto r_tree = make_big(4);
  const auto tree = SynchronizePhi(g_tree, cfg, r_tree, SyncMode::kGpuTree);
  auto g_cpu = MakeGroup(4);
  auto r_cpu = make_big(4);
  const auto cpu = SynchronizePhi(g_cpu, cfg, r_cpu, SyncMode::kCpuSum);
  EXPECT_LT(tree.seconds, cpu.seconds);
}

TEST(Sync, PeerBytesScaleWithReplicaSize) {
  CuldaConfig cfg;
  cfg.num_topics = kTopics;
  auto group = MakeGroup(2);
  auto replicas = RandomReplicas(2, 3);
  const auto stats = SynchronizePhi(group, cfg, replicas);
  // One reduce + one broadcast transfer of K×V×2 bytes each.
  EXPECT_EQ(stats.peer_bytes, 2ull * kTopics * kVocab * 2);
}

TEST(Sync, OverflowDetected) {
  auto group = MakeGroup(2);
  std::vector<PhiReplica> replicas;
  for (int i = 0; i < 2; ++i) {
    PhiReplica r(kTopics, kVocab);
    r.phi.Fill(40000);  // 2 × 40000 > 65535
    replicas.push_back(std::move(r));
  }
  CuldaConfig cfg;
  cfg.num_topics = kTopics;
  EXPECT_THROW(SynchronizePhi(group, cfg, replicas), Error);
}

TEST(Sync, MismatchedReplicaCountRejected) {
  auto group = MakeGroup(2);
  auto replicas = RandomReplicas(3, 0);
  CuldaConfig cfg;
  cfg.num_topics = kTopics;
  EXPECT_THROW(SynchronizePhi(group, cfg, replicas), Error);
}

TEST(Sync, AdvancesGroupClock) {
  auto group = MakeGroup(4);
  auto replicas = RandomReplicas(4, 5);
  CuldaConfig cfg;
  cfg.num_topics = kTopics;
  const auto stats = SynchronizePhi(group, cfg, replicas);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_GE(group.Now(), stats.seconds);
}

}  // namespace
}  // namespace culda::core
