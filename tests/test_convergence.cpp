// Cross-solver convergence agreement: every sampler family in the repo —
// CuLDA's delayed-update GPU Gibbs, exact sequential CGS, SparseLDA, F+LDA,
// and the MH sampler — optimizes the same posterior, so after enough sweeps
// on the same corpus they must land at comparable joint log-likelihoods.
// This is the strongest end-to-end check that the reproduction implements
// the *model* correctly, not just something that goes uphill.
#include <gtest/gtest.h>

#include "baselines/cpu_cgs.hpp"
#include "baselines/fplus_lda.hpp"
#include "baselines/gpu_dense.hpp"
#include "baselines/sparse_lda.hpp"
#include "baselines/warp_mh.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"

namespace culda {
namespace {

struct Workload {
  corpus::Corpus corpus;
  core::CuldaConfig cfg;
};

Workload MakeSetup() {
  corpus::SyntheticProfile p;
  p.num_docs = 300;
  p.vocab_size = 300;
  p.avg_doc_length = 35;
  Workload s{corpus::GenerateCorpus(p), {}};
  s.cfg.num_topics = 20;
  return s;
}

constexpr int kIters = 75;
constexpr double kTolerance = 0.15;  // ll/token units (delayed-update
                                     // samplers lag early, then converge)

double ExactCgsFinalLl(const Workload& s) {
  baselines::CpuCgs gold(s.corpus, s.cfg);
  for (int i = 0; i < kIters; ++i) gold.Step();
  return gold.LogLikelihoodPerToken();
}

TEST(Convergence, CuldaMatchesExactCgs) {
  const Workload s = MakeSetup();
  const double gold = ExactCgsFinalLl(s);
  core::CuldaTrainer trainer(s.corpus, s.cfg, {});
  trainer.Train(kIters);
  EXPECT_NEAR(trainer.LogLikelihoodPerToken(), gold, kTolerance);
}

TEST(Convergence, SparseLdaMatchesExactCgs) {
  const Workload s = MakeSetup();
  const double gold = ExactCgsFinalLl(s);
  baselines::SparseLdaCgs solver(s.corpus, s.cfg);
  for (int i = 0; i < kIters; ++i) solver.Step();
  EXPECT_NEAR(solver.LogLikelihoodPerToken(), gold, kTolerance);
}

TEST(Convergence, FPlusLdaMatchesExactCgs) {
  const Workload s = MakeSetup();
  const double gold = ExactCgsFinalLl(s);
  baselines::FPlusLda solver(s.corpus, s.cfg);
  for (int i = 0; i < kIters; ++i) solver.Step();
  EXPECT_NEAR(solver.LogLikelihoodPerToken(), gold, kTolerance);
}

TEST(Convergence, WarpMhApproachesExactCgs) {
  // MH with cheap proposals mixes slower; allow a looser band, and extra
  // proposal cycles per token.
  const Workload s = MakeSetup();
  const double gold = ExactCgsFinalLl(s);
  baselines::WarpMhSampler solver(s.corpus, s.cfg, /*mh_cycles=*/2);
  for (int i = 0; i < 2 * kIters; ++i) solver.Step();
  EXPECT_NEAR(solver.LogLikelihoodPerToken(), gold, 2.5 * kTolerance);
}

TEST(Convergence, GpuDenseMatchesExactCgs) {
  const Workload s = MakeSetup();
  const double gold = ExactCgsFinalLl(s);
  baselines::GpuDenseLda solver(s.corpus, s.cfg, gpusim::TitanXMaxwell());
  for (int i = 0; i < kIters; ++i) solver.Step();
  EXPECT_NEAR(solver.LogLikelihoodPerToken(), gold, kTolerance);
}

TEST(Convergence, MultiGpuCuldaMatchesExactCgs) {
  const Workload s = MakeSetup();
  const double gold = ExactCgsFinalLl(s);
  core::TrainerOptions opts;
  opts.gpus.assign(4, gpusim::TitanXpPascal());
  core::CuldaTrainer trainer(s.corpus, s.cfg, opts);
  trainer.Train(kIters);
  EXPECT_NEAR(trainer.LogLikelihoodPerToken(), gold, kTolerance);
}

}  // namespace
}  // namespace culda
