// Tests for the live telemetry plane (src/obs/export, flight_recorder):
// Prometheus name mapping and text exposition, atomic file replacement,
// exporter thread lifecycle under concurrent recorders, the JSONL sink
// under concurrent writers, and the flight recorder's ring/dump semantics
// including the fatal-signal path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "util/signal.hpp"

#if defined(__SANITIZE_THREAD__)
#define CULDA_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CULDA_TEST_TSAN 1
#endif
#endif

namespace culda::obs {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(PromName, MapsDotsAndPrefixesAndLabels) {
  const PromName plain = PrometheusName("train.tokens_sampled");
  EXPECT_EQ(plain.name, "culda_train_tokens_sampled");
  EXPECT_EQ(plain.label, "");

  const PromName labeled =
      PrometheusName("serve.request.latency{op=infer}");
  EXPECT_EQ(labeled.name, "culda_serve_request_latency");
  EXPECT_EQ(labeled.label, "op=\"infer\"");
}

TEST(PromText, GroupsSeriesUnderOneTypeLineAndEndsWithEof) {
  MetricsRegistry reg;
  reg.GetCounter("t.requests", "op", "infer").Add(5);
  reg.GetCounter("t.requests", "op", "stats").Add(2);
  reg.GetGauge("t.pending").Set(3.5);

  std::ostringstream out;
  WritePrometheusText(reg, out);
  const std::string s = out.str();

  // Both labeled series expose under the same base name with ONE TYPE line
  // (map order sorts labeled variants adjacently).
  size_t type_lines = 0, pos = 0;
  while ((pos = s.find("# TYPE culda_t_requests counter", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(s.find("culda_t_requests{op=\"infer\"} 5"), std::string::npos);
  EXPECT_NE(s.find("culda_t_requests{op=\"stats\"} 2"), std::string::npos);
  EXPECT_NE(s.find("# TYPE culda_t_pending gauge"), std::string::npos);
  EXPECT_NE(s.find("culda_t_pending 3.5"), std::string::npos);
  // The completeness marker is the last thing in the stream.
  ASSERT_GE(s.size(), 6u);
  EXPECT_EQ(s.substr(s.size() - 6), "# EOF\n");
}

TEST(PromText, HistogramsExpandToCumulativeBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("t.latency");
  h.Record(2e-6);
  h.Record(2e-6);
  h.Record(1e-3);

  std::ostringstream out;
  WritePrometheusText(reg, out);
  const std::string s = out.str();

  EXPECT_NE(s.find("# TYPE culda_t_latency histogram"), std::string::npos);
  // Buckets are cumulative; the +Inf bucket equals the sample count.
  EXPECT_NE(s.find("culda_t_latency_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(s.find("culda_t_latency_count 3"), std::string::npos);
  EXPECT_NE(s.find("culda_t_latency_sum "), std::string::npos);

  // Cumulative monotonicity across every bucket line.
  uint64_t prev = 0;
  size_t pos = 0;
  while ((pos = s.find("culda_t_latency_bucket{", pos)) !=
         std::string::npos) {
    const size_t sp = s.find("} ", pos);
    ASSERT_NE(sp, std::string::npos);
    const uint64_t v = std::strtoull(s.c_str() + sp + 2, nullptr, 10);
    EXPECT_GE(v, prev);
    prev = v;
    pos = sp;
  }
  EXPECT_EQ(prev, 3u);
}

TEST(PromFile, WritesAtomicallyAndLeavesNoTempBehind) {
  const std::string path = ::testing::TempDir() + "prom_file_test.prom";
  MetricsRegistry reg;
  reg.GetCounter("t.count").Add(1);
  WritePrometheusFile(reg, path);
  const std::string s = ReadAll(path);
  EXPECT_NE(s.find("culda_t_count 1"), std::string::npos);
  EXPECT_NE(s.find("# EOF"), std::string::npos);
  // The temp file was renamed over the target, not left beside it.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());

  // Rewriting replaces the content completely.
  reg.GetCounter("t.count").Add(1);
  WritePrometheusFile(reg, path);
  EXPECT_NE(ReadAll(path).find("culda_t_count 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Exporter, LifecycleIsIdempotentAndFinalExportRunsOnStop) {
  const std::string path = ::testing::TempDir() + "exporter_lifecycle.prom";
  MetricsRegistry reg;
  reg.GetCounter("t.exported").Add(1);

  ExporterOptions opts;
  opts.interval_s = 0.01;
  opts.expose_path = path;
  MetricsExporter exporter(opts, reg);
  exporter.Start();
  exporter.Start();  // idempotent
  // The value written after the last periodic export must still appear in
  // the file: Stop() runs one final export.
  reg.GetCounter("t.exported").Add(41);
  exporter.Stop();
  exporter.Stop();  // idempotent
  const uint64_t n = exporter.exports();
  EXPECT_GE(n, 1u);
  exporter.Stop();
  EXPECT_EQ(exporter.exports(), n);  // no further exports after Stop
  EXPECT_NE(ReadAll(path).find("culda_t_exported 42"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Exporter, StopWithoutStartStillExportsOnce) {
  const std::string path = ::testing::TempDir() + "exporter_nostart.prom";
  MetricsRegistry reg;
  reg.GetCounter("t.lazy").Add(7);
  {
    ExporterOptions opts;
    opts.expose_path = path;
    MetricsExporter exporter(opts, reg);
  }  // destructor → Stop → final export, no thread ever started
  EXPECT_NE(ReadAll(path).find("culda_t_lazy 7"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Exporter, ExposesWellFormedFilesUnderConcurrentRecorders) {
  const std::string path = ::testing::TempDir() + "exporter_concurrent.prom";
  MetricsRegistry reg;

  ExporterOptions opts;
  opts.interval_s = 0.001;  // export as fast as possible
  opts.expose_path = path;
  MetricsExporter exporter(opts, reg);
  exporter.Start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&reg, &stop, t] {
      Counter& c = reg.GetCounter("t.spin", "thread", std::to_string(t));
      Histogram& h = reg.GetHistogram("t.spin_lat");
      while (!stop.load(std::memory_order_relaxed)) {
        c.Add(1);
        h.Record(1e-6);
      }
    });
  }
  // Read the exposed file repeatedly while exports race the recorders: the
  // atomic rename means every read sees a complete exposition (ends in the
  // # EOF marker), never a torn half-write.
  size_t reads = 0;
  for (int i = 0; i < 2000 && reads < 25; ++i) {
    const std::string s = ReadAll(path);
    if (s.empty()) {
      // First export may not have landed yet; give the exporter a beat.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    ++reads;
    ASSERT_GE(s.size(), 6u);
    EXPECT_EQ(s.substr(s.size() - 6), "# EOF\n") << "torn exposition file";
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : recorders) t.join();
  exporter.Stop();
  EXPECT_GT(reads, 0u);
  EXPECT_GE(exporter.exports(), 1u);
  std::remove(path.c_str());
}

TEST(JsonlSinkConcurrency, ConcurrentSnapshotsStayLineAtomic) {
  const std::string path = ::testing::TempDir() + "sink_concurrent.jsonl";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  {
    JsonlSink sink(path);
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&sink, t] {
        for (int i = 0; i < kPerThread; ++i) {
          JsonObject fields;
          fields.Add("thread", static_cast<uint64_t>(t))
              .Add("i", static_cast<uint64_t>(i));
          sink.WriteSnapshot("concurrent_test", std::move(fields));
        }
      });
    }
    for (auto& t : writers) t.join();
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 1u + kThreads * kPerThread);  // header + snapshots
  EXPECT_NE(lines[0].find("\"kind\":\"header\""), std::string::npos);
  for (const auto& line : lines) {
    // Interleaved writes would tear these invariants.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"schema\":\"culda.metrics.v3\""),
              std::string::npos);
  }
}

std::string DumpViaPipe(const FlightRecorder& recorder) {
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  recorder.DumpToFd(fds[1]);
  ::close(fds[1]);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fds[0]);
  return out;
}

TEST(FlightRecorderTest, DisabledRecordsNothing) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Clear();
  fr.set_enabled(false);
  fr.Record("invisible");
  EXPECT_EQ(fr.recorded(), 0u);
}

TEST(FlightRecorderTest, RingRetainsLastEventsAndReportsDrops) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Clear();
  fr.set_enabled(true);
  // Overfill the ring: only the newest kSlots survive.
  const size_t total = FlightRecorder::kSlots + 40;
  for (size_t i = 0; i < total; ++i) {
    fr.Record("flight_test/event", 0.001, /*trace_id=*/0xabcdefu);
  }
  EXPECT_EQ(fr.recorded(), total);
  const std::string dump = DumpViaPipe(fr);
  fr.set_enabled(false);
  fr.Clear();

  EXPECT_NE(dump.find("flight recorder"), std::string::npos);
  EXPECT_NE(dump.find("296 events recorded"), std::string::npos);
  EXPECT_NE(dump.find("256 retained"), std::string::npos);
  EXPECT_NE(dump.find("flight_test/event"), std::string::npos);
  EXPECT_NE(dump.find("trace=0000000000abcdef"), std::string::npos);
  // Oldest-first: the first retained stamp is total - kSlots + 1.
  EXPECT_NE(dump.find("#41 "), std::string::npos);
  EXPECT_NE(dump.find("#296 "), std::string::npos);
  EXPECT_EQ(dump.find("#40 "), std::string::npos);
}

TEST(FlightRecorderTest, InternBoundFoldsIntoOther) {
  // A private recorder can't be constructed (Global() only), so exercise
  // the bound by exhausting the global table's remaining capacity.
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Clear();
  fr.set_enabled(true);
  uint32_t last = 0;
  for (size_t i = 0; i < FlightRecorder::kMaxNames + 8; ++i) {
    last = fr.Intern("flight_bound/n" + std::to_string(i));
  }
  EXPECT_EQ(last, 0u);  // the "<other>" bucket
  fr.Record(last);
  const std::string dump = DumpViaPipe(fr);
  EXPECT_NE(dump.find("<other>"), std::string::npos);
  fr.set_enabled(false);
  fr.Clear();
}

// The fatal-signal path forks (gtest death test), raises a real signal, and
// must produce the flight-recorder report on stderr before dying with the
// original signal. TSan's interceptors change signal/death semantics, so
// the death test only runs in plain builds.
#if !defined(CULDA_TEST_TSAN) && defined(GTEST_HAS_DEATH_TEST)
TEST(FlightRecorderDeathTest, FatalSignalDumpsRecentEvents) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        FlightRecorder& fr = FlightRecorder::Global();
        fr.set_enabled(true);
        fr.Record("fatal_test/before_crash", 0.002, 0x1234u);
        InstallFatalDumpHandler();
        std::abort();
      },
      "fatal_test/before_crash");
}
#endif

}  // namespace
}  // namespace culda::obs
