// Failure-injection tests for the model invariant checker and related
// validation surfaces: every class of corruption must be caught, never
// silently accepted.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"

namespace culda::core {
namespace {

struct Trained {
  corpus::Corpus corpus;
  CuldaConfig cfg;
  GatheredModel model;
};

Trained MakeTrained() {
  corpus::SyntheticProfile p;
  p.num_docs = 120;
  p.vocab_size = 150;
  p.avg_doc_length = 25;
  Trained t{corpus::GenerateCorpus(p), {}, {}};
  t.cfg.num_topics = 12;
  CuldaTrainer trainer(t.corpus, t.cfg, {});
  trainer.Train(2);
  t.model = trainer.Gather();
  return t;
}

TEST(ModelValidate, CleanModelPasses) {
  const Trained t = MakeTrained();
  EXPECT_NO_THROW(t.model.Validate(t.corpus));
}

TEST(ModelValidate, DetectsThetaCountTampering) {
  Trained t = MakeTrained();
  ASSERT_GT(t.model.theta.nnz(), 0u);
  t.model.theta.mutable_values()[0] += 1;  // row sum ≠ doc length
  EXPECT_THROW(t.model.Validate(t.corpus), Error);
}

TEST(ModelValidate, DetectsNonPositiveThetaEntry) {
  Trained t = MakeTrained();
  t.model.theta.mutable_values()[0] = 0;
  EXPECT_THROW(t.model.Validate(t.corpus), Error);
}

TEST(ModelValidate, DetectsPhiNkMismatch) {
  Trained t = MakeTrained();
  t.model.nk[0] += 1;
  EXPECT_THROW(t.model.Validate(t.corpus), Error);
}

TEST(ModelValidate, DetectsPhiCellTampering) {
  Trained t = MakeTrained();
  // Move a count between cells of one topic row: n_k stays right, the
  // grand total stays right — but pairing with nk of *another* topic row
  // breaks. Tamper across rows to hit the row-sum check.
  uint32_t v = 0;
  while (t.model.phi(0, v) == 0) ++v;
  t.model.phi(0, v) -= 1;
  t.model.phi(1, v) += 1;
  EXPECT_THROW(t.model.Validate(t.corpus), Error);
}

TEST(ModelValidate, DetectsTokenTotalMismatch) {
  Trained t = MakeTrained();
  // Consistent nk and row sums, but one token short overall: drop one
  // count and fix nk to match.
  uint32_t v = 0;
  while (t.model.phi(3, v) == 0) ++v;
  t.model.phi(3, v) -= 1;
  t.model.nk[3] -= 1;
  EXPECT_THROW(t.model.Validate(t.corpus), Error);
}

TEST(ModelValidate, DetectsWrongCorpus) {
  const Trained t = MakeTrained();
  corpus::SyntheticProfile other;
  other.num_docs = 120;
  other.vocab_size = 150;
  other.avg_doc_length = 25;
  other.seed = 777;  // different doc lengths
  const auto wrong = corpus::GenerateCorpus(other);
  EXPECT_THROW(t.model.Validate(wrong), Error);
}

TEST(ModelValidate, DetectsDocCountMismatch) {
  const Trained t = MakeTrained();
  corpus::SyntheticProfile p;
  p.num_docs = 121;
  p.vocab_size = 150;
  const auto wrong = corpus::GenerateCorpus(p);
  EXPECT_THROW(t.model.Validate(wrong), Error);
}

// --------------------------------------------------- iteration bookkeeping

TEST(TrainerHistory, RecordsEveryIteration) {
  const Trained t = MakeTrained();
  CuldaTrainer trainer(t.corpus, t.cfg, {});
  trainer.Train(4);
  ASSERT_EQ(trainer.history().size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(trainer.history()[i].iteration, i);
    EXPECT_GT(trainer.history()[i].sim_seconds, 0.0);
  }
  EXPECT_EQ(trainer.iteration(), 4u);
}

TEST(TrainerHistory, ThetaNnzShrinksAsModelConcentrates) {
  corpus::SyntheticProfile p;
  p.num_docs = 400;
  p.vocab_size = 600;
  p.avg_doc_length = 80;
  const auto c = corpus::GenerateCorpus(p);
  CuldaConfig cfg;
  cfg.num_topics = 64;
  CuldaTrainer trainer(c, cfg, {});
  const auto history = trainer.Train(10);
  EXPECT_LT(history.back().theta_nnz, history.front().theta_nnz);
  // nnz is bounded by min(len_d, K) summed — sanity bound: ≤ tokens.
  EXPECT_LE(history.back().theta_nnz, c.num_tokens());
}

}  // namespace
}  // namespace culda::core
