// Tests for the word-first chunk layout and block work lists (Figure 6).
#include <gtest/gtest.h>

#include "corpus/chunking.hpp"
#include "corpus/synthetic.hpp"
#include "corpus/word_first.hpp"

namespace culda::corpus {
namespace {

Corpus TestCorpus() {
  SyntheticProfile p;
  p.num_docs = 300;
  p.vocab_size = 400;
  p.avg_doc_length = 50;
  return GenerateCorpus(p);
}

class WordFirstOverChunks : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WordFirstOverChunks, LayoutValidatesAgainstCorpus) {
  const Corpus c = TestCorpus();
  const auto chunks = PartitionByTokens(c, GetParam());
  for (const auto& spec : chunks) {
    const WordFirstChunk wf = BuildWordFirstChunk(c, spec);
    wf.Validate(c);  // throws on any inconsistency
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkCounts, WordFirstOverChunks,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(WordFirst, TokensSortedByWord) {
  const Corpus c = TestCorpus();
  const auto wf = BuildWordFirstChunk(c, PartitionByTokens(c, 1)[0]);
  for (uint64_t t = 1; t < wf.num_tokens(); ++t) {
    EXPECT_LE(wf.token_word[t - 1], wf.token_word[t]);
  }
}

TEST(WordFirst, DocMapCoversEveryTokenOnce) {
  const Corpus c = TestCorpus();
  const auto wf = BuildWordFirstChunk(c, PartitionByTokens(c, 1)[0]);
  std::vector<int> seen(wf.num_tokens(), 0);
  for (const uint32_t t : wf.doc_map) ++seen[t];
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(WordFirst, DocMapLengthsMatchDocLengths) {
  const Corpus c = TestCorpus();
  const auto spec = PartitionByTokens(c, 2)[1];
  const auto wf = BuildWordFirstChunk(c, spec);
  for (uint64_t d = 0; d < wf.num_docs(); ++d) {
    EXPECT_EQ(wf.doc_map_offsets[d + 1] - wf.doc_map_offsets[d],
              c.DocLength(spec.doc_begin + d));
  }
}

TEST(WordFirst, EmptyChunk) {
  const Corpus c(5, {0, 1}, {2});
  ChunkSpec empty{0, 1, 1, 1, 1};
  const auto wf = BuildWordFirstChunk(c, empty);
  EXPECT_EQ(wf.num_tokens(), 0u);
  EXPECT_EQ(wf.word_offsets.back(), 0u);
}

TEST(WordFirst, DeviceBytesIsPositiveAndScales) {
  const Corpus c = TestCorpus();
  const auto one = BuildWordFirstChunk(c, PartitionByTokens(c, 1)[0]);
  const auto half = BuildWordFirstChunk(c, PartitionByTokens(c, 2)[0]);
  EXPECT_GT(one.DeviceBytes(), half.DeviceBytes());
}

// ------------------------------------------------------- block work list --

TEST(BlockWork, CoversEveryTokenExactlyOnce) {
  const Corpus c = TestCorpus();
  const auto wf = BuildWordFirstChunk(c, PartitionByTokens(c, 1)[0]);
  const auto work = BuildBlockWorkList(wf, 64);
  std::vector<int> covered(wf.num_tokens(), 0);
  for (const auto& bw : work) {
    for (uint64_t t = bw.token_begin; t < bw.token_end; ++t) {
      ++covered[t];
      EXPECT_EQ(wf.token_word[t], bw.word);
    }
  }
  for (const int s : covered) EXPECT_EQ(s, 1);
}

TEST(BlockWork, RespectsMaxTokensPerBlock) {
  const Corpus c = TestCorpus();
  const auto wf = BuildWordFirstChunk(c, PartitionByTokens(c, 1)[0]);
  for (const uint64_t cap : {1ull, 7ull, 64ull, 100000ull}) {
    for (const auto& bw : BuildBlockWorkList(wf, cap)) {
      EXPECT_LE(bw.size(), cap);
      EXPECT_GT(bw.size(), 0u);
    }
  }
}

TEST(BlockWork, HeaviestBlocksFirst) {
  // The paper schedules heavy words to the smallest block ids to avoid the
  // long-tail effect.
  const Corpus c = TestCorpus();
  const auto wf = BuildWordFirstChunk(c, PartitionByTokens(c, 1)[0]);
  const auto work = BuildBlockWorkList(wf, 1 << 20);
  for (size_t i = 1; i < work.size(); ++i) {
    EXPECT_GE(work[i - 1].size(), work[i].size());
  }
}

TEST(BlockWork, HeavyWordSplitsIntoMultipleBlocks) {
  // A corpus where word 0 has 100 tokens and cap is 30 → 4 blocks.
  std::vector<uint32_t> words(100, 0);
  words.push_back(1);
  const uint64_t total = words.size();
  const Corpus c(2, {0, total}, std::move(words));
  const auto wf = BuildWordFirstChunk(c, PartitionByTokens(c, 1)[0]);
  const auto work = BuildBlockWorkList(wf, 30);
  int word0_blocks = 0;
  for (const auto& bw : work) {
    if (bw.word == 0) ++word0_blocks;
  }
  EXPECT_EQ(word0_blocks, 4);
}

TEST(BlockWork, DeterministicOrder) {
  const Corpus c = TestCorpus();
  const auto wf = BuildWordFirstChunk(c, PartitionByTokens(c, 1)[0]);
  const auto a = BuildBlockWorkList(wf, 64);
  const auto b = BuildBlockWorkList(wf, 64);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].word, b[i].word);
    EXPECT_EQ(a[i].token_begin, b[i].token_begin);
  }
}

}  // namespace
}  // namespace culda::corpus
