// Fault-injection suite for the persistence layer (docs/persistence.md):
// truncation at every prefix length, hundreds of random single-bit flips,
// and hostile hand-crafted headers for each on-disk artifact (model,
// checkpoint, UCI corpus) — every corruption must surface as a clean
// culda::Error (never a crash, hang, bad_alloc, or silent load) — plus the
// container-format round trip, the atomic-write/rotate protocol, and the
// kill-mid-checkpoint resume path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/model_io.hpp"
#include "core/online.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "corpus/uci_reader.hpp"
#include "util/io.hpp"
#include "util/philox.hpp"

namespace culda {
namespace {

// The artifact magics, restated here so the tests can craft hostile files
// byte-for-byte (the writers keep theirs private on purpose).
constexpr char kModelMagic[8] = {'C', 'U', 'L', 'D', 'A', 'M', 'D', 'L'};
constexpr char kCkptMagic[8] = {'C', 'U', 'L', 'D', 'A', 'C', 'K', 'P'};
constexpr uint32_t kFormatVersion = 2;

const corpus::Corpus& SmallCorpus() {
  static const corpus::Corpus c = [] {
    corpus::SyntheticProfile p;
    p.num_docs = 40;
    p.vocab_size = 50;
    p.avg_doc_length = 12;
    p.seed = 7;
    return corpus::GenerateCorpus(p);
  }();
  return c;
}

core::CuldaConfig SmallConfig() {
  core::CuldaConfig cfg;
  cfg.num_topics = 8;
  return cfg;
}

// Artifacts are built once; the sweeps below corrupt them thousands of ways.
const std::string& ModelBytes() {
  static const std::string bytes = [] {
    core::CuldaTrainer trainer(SmallCorpus(), SmallConfig(), {});
    trainer.Train(2);
    std::ostringstream out(std::ios::binary);
    core::SaveModel(trainer.Gather(), out);
    return out.str();
  }();
  return bytes;
}

const std::string& CheckpointBytes() {
  static const std::string bytes = [] {
    core::CuldaTrainer trainer(SmallCorpus(), SmallConfig(), {});
    trainer.Train(2);
    std::ostringstream out(std::ios::binary);
    trainer.SaveCheckpoint(out);
    return out.str();
  }();
  return bytes;
}

const std::string& UciBytes() {
  static const std::string bytes = [] {
    std::ostringstream out;
    corpus::WriteUciBagOfWords(SmallCorpus(), out);
    return out.str();
  }();
  return bytes;
}

std::string FrameContainer(const io::ContainerWriter& w,
                           const char (&magic)[8],
                           uint32_t version = kFormatVersion) {
  std::ostringstream out(std::ios::binary);
  w.Finish(out, magic, version);
  return out.str();
}

void ExpectModelRejected(const std::string& bytes, const std::string& why) {
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(core::LoadModel(in), Error) << why;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<uint16_t> PhiFingerprint(const core::CuldaTrainer& trainer) {
  const auto m = trainer.Gather();
  return {m.phi.flat().begin(), m.phi.flat().end()};
}

// ------------------------------------------------------- container format

TEST(IoContainer, Crc32KnownAnswerAndChaining) {
  const std::string check = "123456789";
  EXPECT_EQ(io::Crc32(check), 0xCBF43926u);
  // Incremental == one-shot.
  const uint32_t partial = io::Crc32({check.data(), 4});
  EXPECT_EQ(io::Crc32({check.data() + 4, 5}, partial), 0xCBF43926u);
}

TEST(IoContainer, RoundTripPreservesSections) {
  io::ContainerWriter w;
  w.WritePod<uint32_t>(42);
  w.WritePod<uint64_t>(1ull << 40);
  const std::vector<int32_t> vals = {1, -2, 3};
  w.WriteSpan(std::span<const int32_t>(vals));
  const std::string framed = FrameContainer(w, kModelMagic);

  std::istringstream in(framed, std::ios::binary);
  const std::string payload =
      io::ReadContainer(in, kModelMagic, kFormatVersion, "model");
  io::ByteReader r(payload, "model");
  EXPECT_EQ(r.ReadPod<uint32_t>(), 42u);
  EXPECT_EQ(r.ReadPod<uint64_t>(), 1ull << 40);
  EXPECT_EQ(r.ReadVector<int32_t>(3), vals);
  r.ExpectEnd();
}

TEST(IoContainer, ByteReaderRejectsOversizedCountWithoutAllocating) {
  const std::string payload(64, '\0');
  io::ByteReader r(payload, "test");
  // 2^60 elements would be an exabyte — must fail on the bound, not OOM.
  EXPECT_THROW(r.ReadVector<uint64_t>(1ull << 60), Error);
  EXPECT_THROW(r.ReadVector<uint16_t>(UINT64_MAX), Error);
}

TEST(IoContainer, RejectsWrongMagicVersionAndTrailer) {
  io::ContainerWriter w;
  w.WritePod<uint32_t>(7);
  {
    std::string bytes = FrameContainer(w, kModelMagic);
    bytes[2] ^= 0x01;  // magic
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(io::ReadContainer(in, kModelMagic, kFormatVersion, "model"),
                 Error);
  }
  {
    // Version mismatch is reported before the payload is consumed.
    const std::string bytes = FrameContainer(w, kModelMagic, /*version=*/1);
    std::istringstream in(bytes, std::ios::binary);
    try {
      io::ReadContainer(in, kModelMagic, kFormatVersion, "model");
      FAIL() << "v1 container accepted";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("version 1"), std::string::npos)
          << e.what();
    }
  }
  {
    std::string bytes = FrameContainer(w, kModelMagic);
    bytes.back() ^= 0x80;  // CRC trailer
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(io::ReadContainer(in, kModelMagic, kFormatVersion, "model"),
                 Error);
  }
  {
    std::string bytes = FrameContainer(w, kModelMagic) + "garbage";
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(io::ReadContainer(in, kModelMagic, kFormatVersion, "model"),
                 Error);
  }
}

TEST(IoContainer, HostileDeclaredLengthDoesNotAllocate) {
  // Hand-build a frame whose header declares an absurd payload length; the
  // reader must fail on the actual stream end, allocating at most one chunk.
  std::string bytes(kModelMagic, 8);
  const uint32_t version = kFormatVersion;
  const uint64_t declared = 1ull << 62;
  bytes.append(reinterpret_cast<const char*>(&version), 4);
  bytes.append(reinterpret_cast<const char*>(&declared), 8);
  bytes.append("short", 5);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(io::ReadContainer(in, kModelMagic, kFormatVersion, "model"),
               Error);
}

// --------------------------------------------------------- atomic writing

TEST(AtomicWrite, ReplacesAtomicallyAndRotatesPrevious) {
  const std::string path = ::testing::TempDir() + "/culda_atomic.txt";
  const std::string prev = path + ".prev";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  std::remove(prev.c_str());
  std::remove(tmp.c_str());

  io::AtomicWriteFile(
      path, [](std::ostream& out) { out << "one"; }, /*keep_previous=*/true);
  EXPECT_EQ(Slurp(path), "one");
  EXPECT_FALSE(io::FileExists(prev));
  EXPECT_FALSE(io::FileExists(tmp));

  io::AtomicWriteFile(
      path, [](std::ostream& out) { out << "two"; }, /*keep_previous=*/true);
  EXPECT_EQ(Slurp(path), "two");
  EXPECT_EQ(Slurp(prev), "one");
  EXPECT_FALSE(io::FileExists(tmp));
}

TEST(AtomicWrite, FailedWriterLeavesTargetAndPreviousIntact) {
  const std::string path = ::testing::TempDir() + "/culda_atomic_fail.txt";
  const std::string prev = path + ".prev";
  std::remove(path.c_str());
  std::remove(prev.c_str());
  io::AtomicWriteFile(path, [](std::ostream& out) { out << "keep"; }, true);

  EXPECT_THROW(io::AtomicWriteFile(
                   path,
                   [](std::ostream& out) {
                     out << "half-written";
                     throw Error("simulated crash mid-serialization");
                   },
                   true),
               Error);
  EXPECT_EQ(Slurp(path), "keep") << "torn write must not reach the target";
  EXPECT_FALSE(io::FileExists(prev));
}

// ------------------------------------------------------------ model faults

TEST(ModelFaults, TruncationAtEveryPrefixThrows) {
  const std::string& bytes = ModelBytes();
  ASSERT_GT(bytes.size(), 100u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len), std::ios::binary);
    EXPECT_THROW(core::LoadModel(in), Error) << "prefix " << len;
  }
}

TEST(ModelFaults, RandomSingleBitFlipsAlwaysDetected) {
  const std::string& bytes = ModelBytes();
  PhiloxStream rng(2024, 1);
  for (int i = 0; i < 256; ++i) {
    std::string copy = bytes;
    const size_t byte = rng.NextBelow(static_cast<uint32_t>(copy.size()));
    const int bit = static_cast<int>(rng.NextBelow(8));
    copy[byte] = static_cast<char>(copy[byte] ^ (1 << bit));
    ExpectModelRejected(copy, "bit " + std::to_string(bit) + " of byte " +
                                  std::to_string(byte));
  }
}

TEST(ModelFaults, TrailingGarbageRejected) {
  ExpectModelRejected(ModelBytes() + std::string(1, '\0'),
                      "one trailing NUL");
  ExpectModelRejected(ModelBytes() + "extra", "trailing text");
}

TEST(ModelFaults, HostileHeaderCountsFailCleanlyBeforeAllocation) {
  struct Case {
    const char* name;
    uint32_t k, v;
    uint64_t docs, nnz;
  };
  // Each declares section sizes far beyond the actual payload; all must be
  // rejected on the stream-length bound, never reach the allocator.
  const Case cases[] = {
      {"huge docs", 8, 50, 1ull << 60, 10},
      {"docs wrap (u64 max + 1 == 0 rows)", 8, 50, UINT64_MAX, 10},
      {"huge nnz", 8, 50, 4, UINT64_MAX},
      {"huge K*V", 65536, UINT32_MAX, 4, 10},
      {"zero topics", 0, 50, 4, 10},
      {"K above u16 topic-id range", 1u << 20, 50, 4, 10},
  };
  for (const Case& c : cases) {
    io::ContainerWriter w;
    w.WritePod(c.k);
    w.WritePod(c.v);
    w.WritePod(c.docs);
    w.WritePod(c.nnz);
    w.WritePod<uint64_t>(0);  // a token stub of "section" bytes
    ExpectModelRejected(FrameContainer(w, kModelMagic), c.name);
  }
}

TEST(ModelFaults, LegacyV1Rejected) {
  // A v1 file is magic + u32 version + unframed fields; the reader must
  // identify it by version, not choke on a garbage length.
  std::string bytes(kModelMagic, 8);
  const uint32_t v1 = 1;
  bytes.append(reinterpret_cast<const char*>(&v1), 4);
  bytes.append(64, '\x5a');
  std::istringstream in(bytes, std::ios::binary);
  try {
    core::LoadModel(in);
    FAIL() << "legacy v1 model accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version 1"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------- checkpoint faults

TEST(CheckpointFaults, TruncationAtEveryPrefixThrowsAndLeavesTrainerUsable) {
  const std::string& bytes = CheckpointBytes();
  core::CuldaTrainer trainer(SmallCorpus(), SmallConfig(), {});
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len), std::ios::binary);
    EXPECT_THROW(trainer.RestoreCheckpoint(in), Error) << "prefix " << len;
  }
  // Restore is transactional: after every failure above the trainer still
  // trains, bit-identically to a fresh one.
  core::CuldaTrainer fresh(SmallCorpus(), SmallConfig(), {});
  trainer.Train(1);
  fresh.Train(1);
  EXPECT_EQ(PhiFingerprint(trainer), PhiFingerprint(fresh));
}

TEST(CheckpointFaults, RandomSingleBitFlipsAlwaysDetected) {
  const std::string& bytes = CheckpointBytes();
  core::CuldaTrainer trainer(SmallCorpus(), SmallConfig(), {});
  PhiloxStream rng(2024, 2);
  for (int i = 0; i < 256; ++i) {
    std::string copy = bytes;
    const size_t byte = rng.NextBelow(static_cast<uint32_t>(copy.size()));
    const int bit = static_cast<int>(rng.NextBelow(8));
    copy[byte] = static_cast<char>(copy[byte] ^ (1 << bit));
    std::istringstream in(copy, std::ios::binary);
    EXPECT_THROW(trainer.RestoreCheckpoint(in), Error)
        << "bit " << bit << " of byte " << byte;
  }
}

TEST(CheckpointFaults, HostileChunkStructureRejected) {
  const auto& corpus = SmallCorpus();
  const auto cfg = SmallConfig();
  core::CuldaTrainer trainer(corpus, cfg, {});

  const auto craft = [&](uint32_t num_chunks, uint64_t chunk_len) {
    io::ContainerWriter w;
    w.WritePod(cfg.num_topics);
    w.WritePod(cfg.seed);
    w.WritePod(corpus.num_tokens());
    w.WritePod(static_cast<uint64_t>(corpus.num_docs()));
    w.WritePod(corpus.vocab_size());
    w.WritePod<uint32_t>(1);  // iteration
    w.WritePod(num_chunks);
    w.WritePod(chunk_len);
    return FrameContainer(w, kCkptMagic);
  };

  for (const auto& [bytes, why] :
       {std::pair{craft(UINT32_MAX, 8), "absurd chunk count"},
        std::pair{craft(0, 8), "zero chunks"},
        std::pair{craft(1, UINT64_MAX), "absurd chunk length"},
        std::pair{craft(1, corpus.num_tokens() + 1),
                  "chunk longer than the corpus"}}) {
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(trainer.RestoreCheckpoint(in), Error) << why;
  }
}

TEST(CheckpointFaults, KillMidCheckpointResumesFromLastGoodBitIdentically) {
  const auto& corpus = SmallCorpus();
  const auto cfg = SmallConfig();
  const std::string path = ::testing::TempDir() + "/culda_ckpt.bin";
  const std::string prev = path + ".prev";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  std::remove(prev.c_str());
  std::remove(tmp.c_str());

  core::CuldaTrainer writer(corpus, cfg, {});
  writer.Train(2);
  writer.SaveCheckpointToFile(path);  // path = @2
  writer.Train(2);
  writer.SaveCheckpointToFile(path);  // path = @4, prev = @2
  const std::string at4 = Slurp(path);
  ASSERT_EQ(Slurp(prev), CheckpointBytes()) << "prev should be the @2 state";

  core::CuldaTrainer reference(corpus, cfg, {});
  reference.Train(6);

  // Crash mode 1: the primary is torn (e.g. truncated by a dying disk) —
  // resume degrades to the retained last-good and continues bit-identically.
  Spit(path, at4.substr(0, at4.size() / 2));
  {
    core::CuldaTrainer resumed(corpus, cfg, {});
    EXPECT_EQ(resumed.RestoreCheckpointFromFile(path), prev);
    EXPECT_EQ(resumed.iteration(), 2u);
    resumed.Train(4);
    EXPECT_EQ(PhiFingerprint(resumed), PhiFingerprint(reference));
  }

  // Crash mode 2: killed between the two renames — the primary name is
  // missing entirely, a stray .tmp holds the unfinished write.
  std::remove(path.c_str());
  Spit(tmp, at4.substr(0, 10));
  {
    core::CuldaTrainer resumed(corpus, cfg, {});
    EXPECT_EQ(resumed.RestoreCheckpointFromFile(path), prev);
    EXPECT_EQ(resumed.iteration(), 2u);
    resumed.Train(4);
    EXPECT_EQ(PhiFingerprint(resumed), PhiFingerprint(reference));
  }

  // Healthy primary is preferred over prev.
  Spit(path, at4);
  {
    core::CuldaTrainer resumed(corpus, cfg, {});
    EXPECT_EQ(resumed.RestoreCheckpointFromFile(path), path);
    EXPECT_EQ(resumed.iteration(), 4u);
    resumed.Train(2);
    EXPECT_EQ(PhiFingerprint(resumed), PhiFingerprint(reference));
  }

  // Neither file usable: a descriptive error, not a fallback loop.
  std::remove(path.c_str());
  std::remove(prev.c_str());
  {
    core::CuldaTrainer resumed(corpus, cfg, {});
    EXPECT_THROW(resumed.RestoreCheckpointFromFile(path), Error);
  }
}

// -------------------------------------------------------------- UCI faults

TEST(UciFaults, TruncationAtEveryPrefixThrows) {
  const std::string& bytes = UciBytes();
  ASSERT_GT(bytes.size(), 100u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len));
    EXPECT_THROW(corpus::ReadUciBagOfWords(in), Error) << "prefix " << len;
  }
}

TEST(UciFaults, RandomSingleBitFlipsNeverCrashOrOverrun) {
  // A checksumless text format cannot promise detection of every flip (a
  // digit may turn into another digit); it must still never crash, hang,
  // over-allocate, or produce a structurally invalid corpus.
  const std::string& bytes = UciBytes();
  const uint64_t original_tokens = SmallCorpus().num_tokens();
  PhiloxStream rng(2024, 3);
  for (int i = 0; i < 256; ++i) {
    std::string copy = bytes;
    const size_t byte = rng.NextBelow(static_cast<uint32_t>(copy.size()));
    copy[byte] = static_cast<char>(copy[byte] ^
                                   (1 << rng.NextBelow(8)));
    std::istringstream in(copy);
    try {
      const corpus::Corpus parsed = corpus::ReadUciBagOfWords(in);
      parsed.Validate();
      // One flipped digit can at most multiply one count by ~10.
      EXPECT_LE(parsed.num_tokens(), original_tokens * 16) << "byte " << byte;
    } catch (const Error&) {
      // Rejection is the expected outcome; anything else escapes and fails.
    }
  }
}

TEST(UciFaults, NegativeFieldsRejectedExplicitly) {
  // `-1` must be rejected as negative, not wrap to 2^64−1 through unsigned
  // stream extraction (which would expand ~2^64 tokens, one by one).
  for (const char* text : {"-3\n5\n1\n1 1 1\n", "3\n-5\n1\n1 1 1\n",
                           "3\n5\n-1\n1 1 1\n", "3\n5\n1\n-1 1 1\n",
                           "3\n5\n1\n1 -1 1\n", "3\n5\n1\n1 1 -1\n"}) {
    std::istringstream in(text);
    try {
      corpus::ReadUciBagOfWords(in);
      FAIL() << "accepted: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("negative"), std::string::npos)
          << e.what();
    }
  }
}

TEST(UciFaults, HostileHeaderRejectedBeforeAllocation) {
  for (const char* text : {
           "99999999999999999\n5\n1\n1 1 1\n",   // D over the cap
           "3\n99999999999999999\n1\n1 1 1\n",   // W over the cap
           "3\n5\n99999999999999999\n1 1 1\n",   // NNZ over the cap
           "99999999999999999999999\n5\n1\n",    // D beyond int64: malformed
       }) {
    std::istringstream in(text);
    EXPECT_THROW(corpus::ReadUciBagOfWords(in), Error) << text;
  }
}

TEST(UciFaults, TokenExpansionCapEnforced) {
  {
    // 10^10 tokens from one entry exceeds the default 2^32 cap.
    std::istringstream in("1\n1\n1\n1 1 10000000000\n");
    EXPECT_THROW(corpus::ReadUciBagOfWords(in), Error);
  }
  {
    corpus::UciReadLimits tight;
    tight.max_tokens = 100;
    std::istringstream in("1\n1\n2\n1 1 60\n1 1 41\n");
    EXPECT_THROW(corpus::ReadUciBagOfWords(in, tight), Error);
  }
  {
    corpus::UciReadLimits tight;
    tight.max_tokens = 101;
    std::istringstream in("1\n1\n2\n1 1 60\n1 1 41\n");
    EXPECT_EQ(corpus::ReadUciBagOfWords(in, tight).num_tokens(), 101u);
  }
}

TEST(UciFaults, UnterminatedOrTrailingInputRejected) {
  {
    // Missing final newline: "5" could be a truncated "50" — reject.
    std::istringstream in("1\n1\n1\n1 1 5");
    EXPECT_THROW(corpus::ReadUciBagOfWords(in), Error);
  }
  {
    std::istringstream in("1\n1\n1\n1 1 5\nbogus trailing entry\n");
    EXPECT_THROW(corpus::ReadUciBagOfWords(in), Error);
  }
  {
    // Trailing whitespace after the terminator is fine.
    std::istringstream in("1\n1\n1\n1 1 5\n  \n\n");
    EXPECT_EQ(corpus::ReadUciBagOfWords(in).num_tokens(), 5u);
  }
}

// ------------------------------------------------------- online checkpoint

TEST(OnlineCheckpoint, RoundTripsThroughTheHardenedFormat) {
  core::OnlineTrainer a(SmallCorpus(), SmallConfig(), {}, 2);
  std::stringstream ckpt(std::ios::binary | std::ios::in | std::ios::out);
  a.SaveCheckpoint(ckpt);

  core::OnlineTrainer b(SmallCorpus(), SmallConfig(), {}, 1);
  b.RestoreCheckpoint(ckpt);
  EXPECT_EQ(b.iteration(), a.iteration());
  const auto ma = a.Gather(), mb = b.Gather();
  EXPECT_EQ(std::vector<uint16_t>(ma.phi.flat().begin(),
                                  ma.phi.flat().end()),
            std::vector<uint16_t>(mb.phi.flat().begin(),
                                  mb.phi.flat().end()));
}

TEST(OnlineCheckpoint, PendingDocumentsBlockCheckpointing) {
  core::OnlineTrainer t(SmallCorpus(), SmallConfig(), {}, 1);
  t.AddDocument({0, 1, 2});
  std::stringstream buf(std::ios::binary | std::ios::in | std::ios::out);
  EXPECT_THROW(t.SaveCheckpoint(buf), Error);
  EXPECT_THROW(t.RestoreCheckpoint(buf), Error);
  // After absorbing, checkpointing is allowed again.
  t.Absorb(1);
  t.SaveCheckpoint(buf);
  EXPECT_GT(buf.str().size(), 0u);
}

}  // namespace
}  // namespace culda
