#!/usr/bin/env sh
# CLI lifecycle contract, one tool binary per invocation:
#   --help         -> usage on stdout, exit 0 (even with no other flags)
#   --unknown-flag -> "unknown flag" + usage on stderr, exit 2
# Wired per tool from tests/CMakeLists.txt (ToolCli.<tool>).
set -u

tool="$1"
name=$(basename "$tool")
fail() {
  echo "FAIL($name): $1" >&2
  exit 1
}

out=$("$tool" --help 2>/dev/null)
rc=$?
[ "$rc" -eq 0 ] || fail "--help exited $rc, want 0"
case "$out" in
  usage:*) ;;
  *) fail "--help stdout does not start with 'usage:': $out" ;;
esac

err=$("$tool" --definitely-not-a-flag 2>&1 >/dev/null)
rc=$?
[ "$rc" -eq 2 ] || fail "unknown flag exited $rc, want 2"
case "$err" in
  *"unknown flag --definitely-not-a-flag"*) ;;
  *) fail "stderr does not name the unknown flag: $err" ;;
esac
case "$err" in
  *usage:*) ;;
  *) fail "stderr does not include the usage text: $err" ;;
esac

echo "OK($name): --help and unknown-flag contracts hold"
