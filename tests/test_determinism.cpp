// Cross-schedule determinism: because every random draw is keyed by
// (seed, iteration, global token index), the trained model must be bit-
// identical no matter how the corpus is partitioned — 1 GPU or 4, WS1 or
// WS2, tree or CPU sync. This is the property that makes the multi-GPU
// results of Figure 9 directly comparable to the single-GPU runs.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"

namespace culda::core {
namespace {

corpus::Corpus TestCorpus() {
  corpus::SyntheticProfile p;
  p.num_docs = 350;
  p.vocab_size = 500;
  p.avg_doc_length = 45;
  return corpus::GenerateCorpus(p);
}

CuldaConfig TestConfig() {
  CuldaConfig cfg;
  cfg.num_topics = 32;
  return cfg;
}

/// Fingerprint of the trained model: full θ structure plus φ.
std::vector<uint64_t> Fingerprint(const GatheredModel& m) {
  std::vector<uint64_t> fp;
  fp.push_back(m.theta.nnz());
  for (size_t i = 0; i < m.theta.nnz(); ++i) {
    fp.push_back((static_cast<uint64_t>(m.theta.col_idx()[i]) << 32) |
                 static_cast<uint32_t>(m.theta.values()[i]));
  }
  for (const uint16_t c : m.phi.flat()) fp.push_back(c);
  return fp;
}

std::vector<uint64_t> TrainAndFingerprint(const corpus::Corpus& c,
                                          TrainerOptions opts,
                                          uint32_t iters = 4) {
  CuldaTrainer trainer(c, TestConfig(), std::move(opts));
  trainer.Train(iters);
  return Fingerprint(trainer.Gather());
}

TEST(Determinism, RepeatedRunsIdentical) {
  const auto c = TestCorpus();
  EXPECT_EQ(TrainAndFingerprint(c, {}), TrainAndFingerprint(c, {}));
}

TEST(Determinism, IndependentOfGpuCount) {
  const auto c = TestCorpus();
  TrainerOptions g1, g2, g4;
  g1.gpus.assign(1, gpusim::TitanXpPascal());
  g2.gpus.assign(2, gpusim::TitanXpPascal());
  g4.gpus.assign(4, gpusim::TitanXpPascal());
  const auto fp1 = TrainAndFingerprint(c, g1);
  EXPECT_EQ(fp1, TrainAndFingerprint(c, g2));
  EXPECT_EQ(fp1, TrainAndFingerprint(c, g4));
}

TEST(Determinism, IndependentOfChunksPerGpu) {
  const auto c = TestCorpus();
  TrainerOptions m1, m3;
  m1.chunks_per_gpu = 1;
  m3.chunks_per_gpu = 3;
  EXPECT_EQ(TrainAndFingerprint(c, m1), TrainAndFingerprint(c, m3));
}

TEST(Determinism, IndependentOfSyncMode) {
  const auto c = TestCorpus();
  TrainerOptions tree, cpu;
  tree.gpus.assign(3, gpusim::TitanXpPascal());
  cpu.gpus.assign(3, gpusim::TitanXpPascal());
  tree.sync_mode = SyncMode::kGpuTree;
  cpu.sync_mode = SyncMode::kCpuSum;
  EXPECT_EQ(TrainAndFingerprint(c, tree), TrainAndFingerprint(c, cpu));
}

TEST(Determinism, IndependentOfDeviceArchitecture) {
  // The cost model changes times, never results.
  const auto c = TestCorpus();
  TrainerOptions titan, volta;
  titan.gpus = {gpusim::TitanXMaxwell()};
  volta.gpus = {gpusim::V100Volta()};
  EXPECT_EQ(TrainAndFingerprint(c, titan), TrainAndFingerprint(c, volta));
}

TEST(Determinism, IndependentOfOverlapSettings) {
  const auto c = TestCorpus();
  TrainerOptions on, off;
  on.chunks_per_gpu = 2;
  off.chunks_per_gpu = 2;
  off.overlap_transfers = false;
  off.overlap_theta_with_sync = false;
  EXPECT_EQ(TrainAndFingerprint(c, on), TrainAndFingerprint(c, off));
}

TEST(Determinism, SeedChangesResults) {
  const auto c = TestCorpus();
  CuldaConfig cfg_a = TestConfig();
  CuldaConfig cfg_b = TestConfig();
  cfg_b.seed += 1;
  CuldaTrainer a(c, cfg_a, {});
  CuldaTrainer b(c, cfg_b, {});
  a.Train(3);
  b.Train(3);
  EXPECT_NE(Fingerprint(a.Gather()), Fingerprint(b.Gather()));
}

TEST(Determinism, WorkerPoolDoesNotChangeResults) {
  const auto c = TestCorpus();
  ThreadPool pool(3);
  TrainerOptions seq, par;
  par.pool = &pool;
  EXPECT_EQ(TrainAndFingerprint(c, seq), TrainAndFingerprint(c, par));
}

/// Full observable state of a training run: per-token assignments, θ+φ
/// (via the fingerprint), and the per-iteration *simulated* timings. The
/// host-parallel execution path must reproduce all of it bit-identically —
/// a worker pool may only change wall-clock time.
struct FullRun {
  std::vector<uint64_t> fingerprint;
  std::vector<uint16_t> z;
  std::vector<double> sim_seconds;

  bool operator==(const FullRun&) const = default;
};

FullRun TrainFully(const corpus::Corpus& c, TrainerOptions opts,
                   uint32_t iters = 4) {
  CuldaTrainer trainer(c, TestConfig(), std::move(opts));
  FullRun run;
  for (const IterationStats& st : trainer.Train(iters)) {
    run.sim_seconds.push_back(st.sim_seconds);
  }
  run.z = trainer.ExportAssignments();
  run.fingerprint = Fingerprint(trainer.Gather());
  return run;
}

TEST(Determinism, MultiWorkerPoolIdenticalWs1) {
  // WS1 (M = 1): 4 resident chunks on 4 simulated GPUs, with both trainer-
  // level device parallelism and block-level kernel parallelism active.
  const auto c = TestCorpus();
  ThreadPool pool(4);
  TrainerOptions inline_opts, pooled;
  inline_opts.gpus.assign(4, gpusim::TitanXpPascal());
  inline_opts.chunks_per_gpu = 1;
  pooled.gpus.assign(4, gpusim::TitanXpPascal());
  pooled.chunks_per_gpu = 1;
  pooled.pool = &pool;
  const FullRun a = TrainFully(c, inline_opts);
  const FullRun b = TrainFully(c, pooled);
  EXPECT_EQ(a.z, b.z);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);  // bit-identical doubles
}

TEST(Determinism, MultiWorkerPoolIdenticalWs2) {
  // WS2 (M > 1): chunks stream through the GPUs with double-buffered
  // transfers; the streamed schedule must be as pool-independent as WS1.
  const auto c = TestCorpus();
  ThreadPool pool(4);
  TrainerOptions inline_opts, pooled;
  inline_opts.gpus.assign(2, gpusim::TitanXpPascal());
  inline_opts.chunks_per_gpu = 3;
  pooled.gpus.assign(2, gpusim::TitanXpPascal());
  pooled.chunks_per_gpu = 3;
  pooled.pool = &pool;
  const FullRun a = TrainFully(c, inline_opts);
  const FullRun b = TrainFully(c, pooled);
  EXPECT_EQ(a.z, b.z);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
}

}  // namespace
}  // namespace culda::core
