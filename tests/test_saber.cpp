// Tests for the SaberLDA-class GPU baseline.
#include <gtest/gtest.h>

#include "baselines/saber_gpu.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"

namespace culda::baselines {
namespace {

corpus::Corpus TestCorpus() {
  corpus::SyntheticProfile p;
  p.num_docs = 300;
  p.vocab_size = 300;
  p.avg_doc_length = 40;
  return corpus::GenerateCorpus(p);
}

core::CuldaConfig TestConfig(uint32_t k = 32) {
  core::CuldaConfig cfg;
  cfg.num_topics = k;
  return cfg;
}

TEST(SaberGpu, ModelInvariantsHold) {
  const auto c = TestCorpus();
  SaberGpuLda solver(c, TestConfig());
  for (int i = 0; i < 3; ++i) solver.Step();
  solver.Gather().Validate(c);
}

TEST(SaberGpu, LogLikelihoodImproves) {
  const auto c = TestCorpus();
  SaberGpuLda solver(c, TestConfig());
  const double before = solver.LogLikelihoodPerToken();
  for (int i = 0; i < 10; ++i) solver.Step();
  EXPECT_GT(solver.LogLikelihoodPerToken(), before + 0.1);
}

TEST(SaberGpu, Deterministic) {
  const auto c = TestCorpus();
  SaberGpuLda a(c, TestConfig()), b(c, TestConfig());
  a.Step();
  b.Step();
  EXPECT_DOUBLE_EQ(a.LogLikelihoodPerToken(), b.LogLikelihoodPerToken());
}

TEST(SaberGpu, FasterThanDensePriorArtSlowerThanCulda) {
  // The paper's Section 7.2 ordering on comparable hardware:
  // dense prior art < SaberLDA < CuLDA.
  corpus::SyntheticProfile p;
  p.num_docs = 1500;
  p.vocab_size = 1500;
  p.avg_doc_length = 120;
  const auto c = corpus::GenerateCorpus(p);
  const auto cfg = TestConfig(256);

  SaberGpuLda saber(c, cfg, gpusim::TitanXMaxwell());
  saber.Step();
  saber.Step();

  core::TrainerOptions opts;
  opts.gpus = {gpusim::TitanXMaxwell()};
  core::CuldaTrainer culda(c, cfg, opts);
  culda.Step();
  const double culda_tps = culda.Step().tokens_per_sec;

  EXPECT_GT(culda_tps, saber.last_tokens_per_sec());
  EXPECT_GT(saber.last_tokens_per_sec(), 10e6);  // far above dense prior art
}

TEST(SaberGpu, RejectsAsymmetricPrior) {
  const auto c = TestCorpus();
  auto cfg = TestConfig(8);
  cfg.asymmetric_alpha.assign(8, 0.1);
  EXPECT_THROW(SaberGpuLda(c, cfg), Error);
}

}  // namespace
}  // namespace culda::baselines
