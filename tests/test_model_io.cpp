// Tests for model serialization: round-trip fidelity and corruption
// rejection (failure injection on the binary format).
#include <gtest/gtest.h>

#include <sstream>

#include "core/evaluator.hpp"
#include "core/model_io.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"

namespace culda::core {
namespace {

struct Trained {
  corpus::Corpus corpus;
  CuldaConfig cfg;
  GatheredModel model;
};

Trained TrainSmall() {
  corpus::SyntheticProfile p;
  p.num_docs = 150;
  p.vocab_size = 200;
  p.avg_doc_length = 30;
  Trained t{corpus::GenerateCorpus(p), {}, {}};
  t.cfg.num_topics = 16;
  CuldaTrainer trainer(t.corpus, t.cfg, {});
  trainer.Train(3);
  t.model = trainer.Gather();
  return t;
}

std::string Serialize(const GatheredModel& m) {
  std::ostringstream out(std::ios::binary);
  SaveModel(m, out);
  return out.str();
}

TEST(ModelIo, RoundTripPreservesEverything) {
  const Trained t = TrainSmall();
  std::stringstream buf(std::ios::binary | std::ios::in | std::ios::out);
  SaveModel(t.model, buf);
  const GatheredModel loaded = LoadModel(buf);

  EXPECT_EQ(loaded.num_topics, t.model.num_topics);
  EXPECT_EQ(loaded.vocab_size, t.model.vocab_size);
  EXPECT_EQ(loaded.num_docs, t.model.num_docs);
  ASSERT_EQ(loaded.theta.nnz(), t.model.theta.nnz());
  for (size_t i = 0; i < loaded.theta.nnz(); ++i) {
    ASSERT_EQ(loaded.theta.col_idx()[i], t.model.theta.col_idx()[i]);
    ASSERT_EQ(loaded.theta.values()[i], t.model.theta.values()[i]);
  }
  for (size_t i = 0; i < loaded.phi.flat().size(); ++i) {
    ASSERT_EQ(loaded.phi.flat()[i], t.model.phi.flat()[i]);
  }
  EXPECT_EQ(loaded.nk, t.model.nk);
  loaded.Validate(t.corpus);

  // Semantics preserved: identical log-likelihood.
  EXPECT_DOUBLE_EQ(LogLikelihoodPerToken(loaded, t.cfg),
                   LogLikelihoodPerToken(t.model, t.cfg));
}

TEST(ModelIo, FileRoundTrip) {
  const Trained t = TrainSmall();
  const std::string path = ::testing::TempDir() + "/culda_model.bin";
  SaveModelToFile(t.model, path);
  const GatheredModel loaded = LoadModelFromFile(path);
  loaded.Validate(t.corpus);
}

TEST(ModelIo, RejectsBadMagic) {
  std::string bytes = Serialize(TrainSmall().model);
  bytes[0] = 'X';
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(LoadModel(in), Error);
}

TEST(ModelIo, RejectsBadVersion) {
  std::string bytes = Serialize(TrainSmall().model);
  bytes[8] = 99;  // version field follows the 8-byte magic
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(LoadModel(in), Error);
}

TEST(ModelIo, RejectsTruncation) {
  const std::string bytes = Serialize(TrainSmall().model);
  for (const double frac : {0.1, 0.5, 0.9, 0.999}) {
    std::istringstream in(
        bytes.substr(0, static_cast<size_t>(bytes.size() * frac)),
        std::ios::binary);
    EXPECT_THROW(LoadModel(in), Error) << "fraction " << frac;
  }
}

TEST(ModelIo, RejectsCorruptNk) {
  // Flip a φ count so n_k no longer matches its row sum.
  std::string bytes = Serialize(TrainSmall().model);
  // φ sits near the end of the file; corrupt a byte in its region.
  bytes[bytes.size() - 16 * 4 - 100] ^= 0xFF;
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(LoadModel(in), Error);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(LoadModelFromFile("/nonexistent/model.bin"), Error);
}

}  // namespace
}  // namespace culda::core
