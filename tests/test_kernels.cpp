// Tests for the four CuLDA kernels: functional correctness of the model
// updates, sampling determinism and validity, and traffic accounting.
#include <gtest/gtest.h>

#include "core/kernels.hpp"
#include "corpus/chunking.hpp"
#include "corpus/synthetic.hpp"
#include "util/philox.hpp"

namespace culda::core {
namespace {

struct Fixture {
  corpus::Corpus corpus;
  CuldaConfig cfg;
  gpusim::Device device{gpusim::TitanXMaxwell(), 0};
  ChunkState chunk;
  PhiReplica replica;

  explicit Fixture(uint32_t k_topics = 32, uint64_t docs = 120) {
    corpus::SyntheticProfile p;
    p.num_docs = docs;
    p.vocab_size = 150;
    p.avg_doc_length = 40;
    corpus = corpus::GenerateCorpus(p);

    cfg.num_topics = k_topics;
    cfg.max_tokens_per_block = 256;

    const auto spec = corpus::PartitionByTokens(corpus, 1)[0];
    chunk.layout = corpus::BuildWordFirstChunk(corpus, spec);
    chunk.work =
        corpus::BuildBlockWorkList(chunk.layout, cfg.max_tokens_per_block);
    chunk.z.resize(chunk.layout.num_tokens());
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      PhiloxStream rng(cfg.seed, t);
      chunk.z[t] = static_cast<uint16_t>(rng.NextBelow(k_topics));
    }
    chunk.theta = ThetaMatrix(chunk.layout.num_docs(), k_topics);
    replica = PhiReplica(k_topics, corpus.vocab_size());

    RunUpdatePhiKernel(device, cfg, chunk, replica);
    RunUpdateThetaKernel(device, cfg, chunk);
    RunComputeNkKernel(device, cfg, replica);
  }

  /// Reference φ built directly from (z, word) pairs.
  PhiMatrix ReferencePhi() const {
    PhiMatrix ref(cfg.num_topics, corpus.vocab_size());
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      ++ref(chunk.z[t], chunk.layout.token_word[t]);
    }
    return ref;
  }
};

// ------------------------------------------------------------ update phi --

TEST(UpdatePhi, MatchesReferenceCounts) {
  Fixture f;
  const PhiMatrix ref = f.ReferencePhi();
  for (uint32_t k = 0; k < f.cfg.num_topics; ++k) {
    for (uint32_t v = 0; v < f.corpus.vocab_size(); ++v) {
      ASSERT_EQ(f.replica.phi(k, v), ref(k, v)) << k << "," << v;
    }
  }
}

TEST(UpdatePhi, NkMatchesPhiRowSums) {
  Fixture f;
  for (uint32_t k = 0; k < f.cfg.num_topics; ++k) {
    int64_t sum = 0;
    for (const uint16_t c : f.replica.phi.Row(k)) sum += c;
    EXPECT_EQ(f.replica.nk[k], sum);
  }
}

TEST(UpdatePhi, GrandTotalIsTokenCount) {
  Fixture f;
  int64_t grand = 0;
  for (const int32_t k : f.replica.nk) grand += k;
  EXPECT_EQ(grand, static_cast<int64_t>(f.corpus.num_tokens()));
}

TEST(UpdatePhi, BillsOneAtomicPerToken) {
  Fixture f;
  PhiReplica fresh(f.cfg.num_topics, f.corpus.vocab_size());
  const auto rec = RunUpdatePhiKernel(f.device, f.cfg, f.chunk, fresh);
  EXPECT_EQ(rec.counters.atomic_ops, f.corpus.num_tokens());
}

TEST(ZeroPhi, ClearsCountsAndTotals) {
  Fixture f;
  RunZeroPhiKernel(f.device, f.cfg, f.replica);
  for (const uint16_t c : f.replica.phi.flat()) EXPECT_EQ(c, 0);
  for (const int32_t k : f.replica.nk) EXPECT_EQ(k, 0);
}

// ---------------------------------------------------------- update theta --

TEST(UpdateTheta, RowSumsEqualDocLengths) {
  Fixture f;
  for (uint64_t d = 0; d < f.chunk.num_docs(); ++d) {
    int64_t sum = 0;
    for (const int32_t c : f.chunk.theta.RowValues(d)) sum += c;
    EXPECT_EQ(sum, static_cast<int64_t>(f.corpus.DocLength(d)));
  }
}

TEST(UpdateTheta, MatchesPerTokenCounts) {
  Fixture f;
  for (uint64_t d = 0; d < f.chunk.num_docs(); ++d) {
    std::vector<int32_t> ref(f.cfg.num_topics, 0);
    for (uint64_t i = f.chunk.layout.doc_map_offsets[d];
         i < f.chunk.layout.doc_map_offsets[d + 1]; ++i) {
      ++ref[f.chunk.z[f.chunk.layout.doc_map[i]]];
    }
    for (uint32_t k = 0; k < f.cfg.num_topics; ++k) {
      ASSERT_EQ(f.chunk.theta.At(d, static_cast<uint16_t>(k)), ref[k]);
    }
  }
}

TEST(UpdateTheta, CsrIsStructurallyValid) {
  Fixture f;
  f.chunk.theta.Validate();
  // Indices ascend within each row (the compaction scans k in order).
  for (uint64_t d = 0; d < f.chunk.num_docs(); ++d) {
    const auto idx = f.chunk.theta.RowIndices(d);
    for (size_t i = 1; i < idx.size(); ++i) {
      EXPECT_LT(idx[i - 1], idx[i]);
    }
  }
}

TEST(UpdateTheta, ReflectsNewAssignments) {
  Fixture f;
  // Move every token to topic 3 and rebuild.
  std::fill(f.chunk.z.begin(), f.chunk.z.end(), static_cast<uint16_t>(3));
  RunUpdateThetaKernel(f.device, f.cfg, f.chunk);
  for (uint64_t d = 0; d < f.chunk.num_docs(); ++d) {
    EXPECT_EQ(f.chunk.theta.RowLength(d),
              f.corpus.DocLength(d) > 0 ? 1u : 0u);
    if (f.chunk.theta.RowLength(d) == 1) {
      EXPECT_EQ(f.chunk.theta.RowIndices(d)[0], 3);
    }
  }
}

// --------------------------------------------------------------- sampling --

TEST(Sampling, ProducesTopicsInRange) {
  Fixture f;
  RunSamplingKernel(f.device, f.cfg, f.chunk, f.replica, 1);
  for (const uint16_t z : f.chunk.z) {
    EXPECT_LT(z, f.cfg.num_topics);
  }
}

TEST(Sampling, DeterministicAcrossRuns) {
  Fixture a, b;
  RunSamplingKernel(a.device, a.cfg, a.chunk, a.replica, 1);
  RunSamplingKernel(b.device, b.cfg, b.chunk, b.replica, 1);
  EXPECT_EQ(a.chunk.z, b.chunk.z);
}

TEST(Sampling, IterationChangesDraws) {
  Fixture a, b;
  RunSamplingKernel(a.device, a.cfg, a.chunk, a.replica, 1);
  RunSamplingKernel(b.device, b.cfg, b.chunk, b.replica, 2);
  EXPECT_NE(a.chunk.z, b.chunk.z);
}

TEST(Sampling, StepCountersCoverEveryToken) {
  Fixture f;
  SamplingStepCounters steps;
  RunSamplingKernel(f.device, f.cfg, f.chunk, f.replica, 1, nullptr, &steps);
  EXPECT_EQ(steps.tokens, f.corpus.num_tokens());
  EXPECT_GT(steps.p1_branches, 0u);
  EXPECT_LT(steps.p1_branches, steps.tokens);
  EXPECT_GT(steps.compute_s.flops, 0u);
  EXPECT_GT(steps.compute_q.flops, 0u);
}

TEST(Sampling, RooflineIsMemoryBound) {
  // The measured Flops/Byte must land far below any GPU balance point —
  // the Section 3 conclusion.
  Fixture f(64);
  SamplingStepCounters steps;
  const auto rec =
      RunSamplingKernel(f.device, f.cfg, f.chunk, f.replica, 1, nullptr,
                        &steps);
  const double fpb = rec.counters.FlopsPerByte();
  EXPECT_GT(fpb, 0.02);
  EXPECT_LT(fpb, 2.0);
}

TEST(Sampling, SharedTreeReducesTraffic) {
  // A2: block-level p2-tree sharing plus p* reuse must cut DRAM traffic.
  Fixture on, off;
  off.cfg.share_p2_tree = false;
  off.cfg.reuse_pstar = false;
  const auto rec_on =
      RunSamplingKernel(on.device, on.cfg, on.chunk, on.replica, 1);
  const auto rec_off =
      RunSamplingKernel(off.device, off.cfg, off.chunk, off.replica, 1);
  EXPECT_LT(rec_on.counters.TotalOffChipBytes(),
            rec_off.counters.TotalOffChipBytes() / 2);
  // Optimizations change billing, never the sampled topics.
  EXPECT_EQ(on.chunk.z, off.chunk.z);
}

TEST(Sampling, CompressionReducesTraffic) {
  // A3: 16-bit indices/counters vs 32-bit.
  Fixture on, off;
  off.cfg.compress_indices = false;
  const auto rec_on =
      RunSamplingKernel(on.device, on.cfg, on.chunk, on.replica, 1);
  const auto rec_off =
      RunSamplingKernel(off.device, off.cfg, off.chunk, off.replica, 1);
  EXPECT_LT(rec_on.counters.TotalOffChipBytes(),
            rec_off.counters.TotalOffChipBytes());
  EXPECT_EQ(on.chunk.z, off.chunk.z);
}

TEST(Sampling, L1RoutingMovesIndexBytes) {
  Fixture on, off;
  off.cfg.l1_for_indices = false;
  const auto rec_on =
      RunSamplingKernel(on.device, on.cfg, on.chunk, on.replica, 1);
  const auto rec_off =
      RunSamplingKernel(off.device, off.cfg, off.chunk, off.replica, 1);
  EXPECT_GT(rec_on.counters.l1_read_bytes, rec_off.counters.l1_read_bytes);
  EXPECT_LT(rec_on.counters.global_read_bytes,
            rec_off.counters.global_read_bytes);
}

TEST(Sampling, EmptyChunkIsHarmless) {
  Fixture f;
  ChunkState empty;
  empty.layout.spec = corpus::ChunkSpec{0, 0, 0, 0, 0};
  empty.layout.vocab_size = f.corpus.vocab_size();
  empty.layout.word_offsets.assign(f.corpus.vocab_size() + 1, 0);
  empty.theta = ThetaMatrix(0, f.cfg.num_topics);
  const auto rec =
      RunSamplingKernel(f.device, f.cfg, empty, f.replica, 1);
  EXPECT_EQ(rec.counters.blocks, 0u);
}

TEST(Sampling, MovesTowardsGenerativeStructure) {
  // After a few sweeps on a strongly-structured corpus, sampling + updates
  // must concentrate documents on fewer topics than the random init.
  Fixture f(64, 200);
  const auto initial_nnz = f.chunk.theta.nnz();
  for (int it = 1; it <= 5; ++it) {
    RunSamplingKernel(f.device, f.cfg, f.chunk, f.replica, it);
    PhiReplica next(f.cfg.num_topics, f.corpus.vocab_size());
    RunUpdatePhiKernel(f.device, f.cfg, f.chunk, next);
    RunComputeNkKernel(f.device, f.cfg, next);
    f.replica = std::move(next);
    RunUpdateThetaKernel(f.device, f.cfg, f.chunk);
  }
  EXPECT_LT(f.chunk.theta.nnz(), initial_nnz);
}

// ------------------------------------------------------------ compute nk --

TEST(ComputeNk, MatchesRowSums) {
  Fixture f;
  std::fill(f.replica.nk.begin(), f.replica.nk.end(), -1);
  RunComputeNkKernel(f.device, f.cfg, f.replica);
  for (uint32_t k = 0; k < f.cfg.num_topics; ++k) {
    int64_t sum = 0;
    for (const uint16_t c : f.replica.phi.Row(k)) sum += c;
    EXPECT_EQ(f.replica.nk[k], sum);
  }
}

TEST(ComputeNk, BillsFullPhiScan) {
  Fixture f;
  const auto rec = RunComputeNkKernel(f.device, f.cfg, f.replica);
  const uint64_t expected = static_cast<uint64_t>(f.cfg.num_topics) *
                            f.corpus.vocab_size() * 2;
  EXPECT_NEAR(static_cast<double>(rec.counters.global_read_bytes),
              static_cast<double>(expected), expected * 0.01);
}

}  // namespace
}  // namespace culda::core
