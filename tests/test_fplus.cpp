// Tests for the F+ tree and the F+LDA baseline (paper reference [33]).
#include <gtest/gtest.h>

#include "baselines/cpu_cgs.hpp"
#include "baselines/fplus_lda.hpp"
#include "baselines/fplus_tree.hpp"
#include "corpus/synthetic.hpp"
#include "util/philox.hpp"

namespace culda::baselines {
namespace {

// ----------------------------------------------------------------- F+ tree

TEST(FPlusTree, BuildAndTotal) {
  FPlusTree tree(5);
  const float w[] = {1, 2, 3, 4, 5};
  tree.Build(w);
  EXPECT_FLOAT_EQ(tree.Total(), 15.0f);
  EXPECT_FLOAT_EQ(tree.Get(2), 3.0f);
}

TEST(FPlusTree, PointUpdateAdjustsTotal) {
  FPlusTree tree(4);
  const float w[] = {1, 1, 1, 1};
  tree.Build(w);
  tree.Set(2, 5.0f);
  EXPECT_FLOAT_EQ(tree.Total(), 8.0f);
  EXPECT_FLOAT_EQ(tree.Get(2), 5.0f);
  EXPECT_FLOAT_EQ(tree.Get(1), 1.0f);
}

TEST(FPlusTree, SampleMatchesLinearScan) {
  const uint32_t n = 37;  // non-power-of-two
  FPlusTree tree(n);
  PhiloxStream rng(3, 0);
  std::vector<float> w(n);
  for (auto& x : w) x = rng.NextFloat() + 0.01f;
  tree.Build(w);
  for (int i = 0; i < 2000; ++i) {
    const float u = rng.NextFloat() * tree.Total() * 0.9999f;
    float acc = 0;
    uint32_t expected = n - 1;
    for (uint32_t k = 0; k < n; ++k) {
      acc += w[k];
      if (acc > u) {
        expected = k;
        break;
      }
    }
    EXPECT_EQ(tree.Sample(u), expected) << "u=" << u;
  }
}

TEST(FPlusTree, SampleAfterUpdatesMatchesScan) {
  const uint32_t n = 16;
  FPlusTree tree(n);
  std::vector<float> w(n, 1.0f);
  tree.Build(w);
  PhiloxStream rng(9, 1);
  for (int round = 0; round < 200; ++round) {
    const uint32_t i = rng.NextBelow(n);
    w[i] = rng.NextFloat() * 3;
    tree.Set(i, w[i]);
    const float u = rng.NextFloat() * tree.Total() * 0.999f;
    float acc = 0;
    uint32_t expected = n - 1;
    for (uint32_t k = 0; k < n; ++k) {
      acc += w[k];
      if (acc > u) {
        expected = k;
        break;
      }
    }
    EXPECT_EQ(tree.Sample(u), expected);
  }
}

TEST(FPlusTree, ZeroWeightsNeverSampledInteriorly) {
  FPlusTree tree(8);
  const float w[] = {0, 2, 0, 0, 3, 0, 1, 0};
  tree.Build(w);
  PhiloxStream rng(5, 0);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t k = tree.Sample(rng.NextFloat() * tree.Total() * 0.999f);
    EXPECT_TRUE(k == 1 || k == 4 || k == 6) << k;
  }
}

TEST(FPlusTree, ClampsOverdraw) {
  FPlusTree tree(3);
  const float w[] = {1, 1, 1};
  tree.Build(w);
  EXPECT_LT(tree.Sample(100.0f), 3u);
}

// ------------------------------------------------------------------ F+LDA

corpus::Corpus TestCorpus() {
  corpus::SyntheticProfile p;
  p.num_docs = 250;
  p.vocab_size = 300;
  p.avg_doc_length = 40;
  return corpus::GenerateCorpus(p);
}

core::CuldaConfig TestConfig(uint32_t k = 24) {
  core::CuldaConfig cfg;
  cfg.num_topics = k;
  return cfg;
}

TEST(FPlusLda, CountsStayConsistent) {
  const auto c = TestCorpus();
  FPlusLda solver(c, TestConfig());
  solver.Validate();
  for (int i = 0; i < 3; ++i) {
    solver.Step();
    solver.Validate();
  }
}

TEST(FPlusLda, LogLikelihoodImproves) {
  const auto c = TestCorpus();
  FPlusLda solver(c, TestConfig());
  const double before = solver.LogLikelihoodPerToken();
  for (int i = 0; i < 8; ++i) solver.Step();
  EXPECT_GT(solver.LogLikelihoodPerToken(), before + 0.1);
}

TEST(FPlusLda, Deterministic) {
  const auto c = TestCorpus();
  FPlusLda a(c, TestConfig()), b(c, TestConfig());
  a.Step();
  b.Step();
  EXPECT_DOUBLE_EQ(a.LogLikelihoodPerToken(), b.LogLikelihoodPerToken());
}

TEST(FPlusLda, ConvergesToSimilarQualityAsDenseCgs) {
  const auto c = TestCorpus();
  const auto cfg = TestConfig();
  FPlusLda fplus(c, cfg);
  CpuCgs dense(c, cfg);
  for (int i = 0; i < 10; ++i) {
    fplus.Step();
    dense.Step();
  }
  EXPECT_NEAR(fplus.LogLikelihoodPerToken(), dense.LogLikelihoodPerToken(),
              0.15);
}

TEST(FPlusLda, FasterThanDenseCgsAtLargeK) {
  const auto c = TestCorpus();
  const auto cfg = TestConfig(192);
  FPlusLda fplus(c, cfg);
  CpuCgs dense(c, cfg);
  fplus.Step();
  dense.Step();
  EXPECT_LT(fplus.ModeledSeconds(), dense.ModeledSeconds());
  EXPECT_GT(fplus.last_tokens_per_sec(), 2 * dense.last_tokens_per_sec());
}

}  // namespace
}  // namespace culda::baselines
