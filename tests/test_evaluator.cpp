// Tests for the log-likelihood evaluator against hand-computed values and
// reference implementations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace culda::core {
namespace {

/// Builds a GatheredModel from explicit dense θ and φ.
GatheredModel ModelFromDense(const std::vector<std::vector<int32_t>>& theta,
                             const std::vector<std::vector<uint16_t>>& phi) {
  GatheredModel m;
  m.num_docs = theta.size();
  m.num_topics = static_cast<uint32_t>(phi.size());
  m.vocab_size = static_cast<uint32_t>(phi[0].size());
  m.theta = ThetaMatrix(m.num_docs, m.num_topics);
  ThetaMatrix::RowBuilder b(&m.theta);
  for (size_t d = 0; d < theta.size(); ++d) {
    std::vector<uint16_t> idx;
    std::vector<int32_t> val;
    for (size_t k = 0; k < theta[d].size(); ++k) {
      if (theta[d][k] != 0) {
        idx.push_back(static_cast<uint16_t>(k));
        val.push_back(theta[d][k]);
      }
    }
    b.AppendRow(d, idx, val);
  }
  b.Finish();
  m.phi = PhiMatrix(m.num_topics, m.vocab_size);
  m.nk.assign(m.num_topics, 0);
  for (size_t k = 0; k < phi.size(); ++k) {
    for (size_t v = 0; v < phi[k].size(); ++v) {
      m.phi(k, v) = phi[k][v];
      m.nk[k] += phi[k][v];
    }
  }
  return m;
}

/// Direct dense-formula reference.
double ReferenceLl(const std::vector<std::vector<int32_t>>& theta,
                   const std::vector<std::vector<uint16_t>>& phi,
                   double alpha, double beta) {
  const size_t K = phi.size(), V = phi[0].size();
  double ll = 0;
  uint64_t tokens = 0;
  for (const auto& row : theta) {
    int64_t len = 0;
    for (size_t k = 0; k < K; ++k) {
      ll += std::lgamma(row[k] + alpha) - std::lgamma(alpha);
      len += row[k];
    }
    ll += std::lgamma(K * alpha) - std::lgamma(len + K * alpha);
    tokens += static_cast<uint64_t>(len);
  }
  for (size_t k = 0; k < K; ++k) {
    int64_t nk = 0;
    for (size_t v = 0; v < V; ++v) {
      ll += std::lgamma(phi[k][v] + beta) - std::lgamma(beta);
      nk += phi[k][v];
    }
    ll += std::lgamma(V * beta) - std::lgamma(nk + V * beta);
  }
  return ll / static_cast<double>(tokens);
}

TEST(Evaluator, MatchesDenseReferenceOnSmallModel) {
  const std::vector<std::vector<int32_t>> theta{{3, 0, 1}, {0, 2, 2}};
  const std::vector<std::vector<uint16_t>> phi{
      {2, 1, 0, 0}, {0, 0, 1, 1}, {1, 0, 1, 1}};
  const auto m = ModelFromDense(theta, phi);
  CuldaConfig cfg;
  cfg.num_topics = 3;
  cfg.alpha = 0.5;
  cfg.beta = 0.1;
  EXPECT_NEAR(LogLikelihoodPerToken(m, cfg),
              ReferenceLl(theta, phi, 0.5, 0.1), 1e-10);
}

TEST(Evaluator, ConcentratedModelBeatsUniform) {
  // A model where each doc/word sticks to one topic must score higher than
  // one where counts are spread evenly.
  const std::vector<std::vector<int32_t>> theta_sharp{{4, 0}, {0, 4}};
  const std::vector<std::vector<uint16_t>> phi_sharp{{4, 0}, {0, 4}};
  const std::vector<std::vector<int32_t>> theta_flat{{2, 2}, {2, 2}};
  const std::vector<std::vector<uint16_t>> phi_flat{{2, 2}, {2, 2}};
  CuldaConfig cfg;
  cfg.num_topics = 2;
  cfg.alpha = 0.1;
  cfg.beta = 0.1;
  EXPECT_GT(LogLikelihoodPerToken(ModelFromDense(theta_sharp, phi_sharp), cfg),
            LogLikelihoodPerToken(ModelFromDense(theta_flat, phi_flat), cfg));
}

TEST(Evaluator, AgreesWithTrainerGather) {
  corpus::SyntheticProfile p;
  p.num_docs = 200;
  p.vocab_size = 300;
  p.avg_doc_length = 30;
  const auto c = corpus::GenerateCorpus(p);
  CuldaConfig cfg;
  cfg.num_topics = 16;
  CuldaTrainer trainer(c, cfg, {});
  trainer.Train(3);
  const auto m = trainer.Gather();
  m.Validate(c);
  EXPECT_NEAR(trainer.LogLikelihoodPerToken(),
              LogLikelihoodPerToken(m, cfg), 1e-12);
}

TEST(Evaluator, ValuesInPlausibleRange) {
  corpus::SyntheticProfile p;
  p.num_docs = 200;
  p.vocab_size = 500;
  const auto c = corpus::GenerateCorpus(p);
  CuldaConfig cfg;
  cfg.num_topics = 32;
  CuldaTrainer trainer(c, cfg, {});
  const double ll = trainer.LogLikelihoodPerToken();
  // Figure 8's axis spans roughly [−15, −5].
  EXPECT_LT(ll, -4.0);
  EXPECT_GT(ll, -16.0);
}

TEST(Evaluator, ParallelMatchesSequentialBitwise) {
  // The parallel evaluator reduces fixed 256-document chunks in chunk
  // order, so the value must be bit-identical at any worker count — this
  // corpus spans several chunks to exercise the chunk boundaries.
  corpus::SyntheticProfile p;
  p.num_docs = 700;
  p.vocab_size = 300;
  p.avg_doc_length = 20;
  const auto c = corpus::GenerateCorpus(p);
  CuldaConfig cfg;
  cfg.num_topics = 16;
  CuldaTrainer trainer(c, cfg, {});
  trainer.Train(2);
  const auto m = trainer.Gather();

  const double expect = LogLikelihoodPerToken(m, cfg, nullptr);
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(workers);
    EXPECT_EQ(LogLikelihoodPerToken(m, cfg, &pool), expect)
        << workers << " workers";
  }

  // Asymmetric α takes the non-memoized θ path; it must be pool-invariant
  // too.
  cfg.asymmetric_alpha.assign(16, 0.2);
  cfg.asymmetric_alpha[3] = 1.5;
  const double asym = LogLikelihoodPerToken(m, cfg, nullptr);
  ThreadPool pool(4);
  EXPECT_EQ(LogLikelihoodPerToken(m, cfg, &pool), asym);
}

TEST(Evaluator, EmptyModelRejected) {
  GatheredModel m;
  m.num_topics = 2;
  m.vocab_size = 2;
  m.theta = ThetaMatrix(0, 2);
  m.phi = PhiMatrix(2, 2);
  m.nk = {0, 0};
  CuldaConfig cfg;
  cfg.num_topics = 2;
  EXPECT_THROW(LogLikelihoodPerToken(m, cfg), Error);
}

}  // namespace
}  // namespace culda::core
