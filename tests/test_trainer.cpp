// Integration tests for CuldaTrainer: model invariants across schedules,
// convergence, capacity-driven schedule selection, timing accounting.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"

namespace culda::core {
namespace {

corpus::Corpus SmallCorpus(uint64_t docs = 400, uint32_t vocab = 600,
                           double len = 50) {
  corpus::SyntheticProfile p;
  p.num_docs = docs;
  p.vocab_size = vocab;
  p.avg_doc_length = len;
  return corpus::GenerateCorpus(p);
}

CuldaConfig SmallConfig(uint32_t k = 48) {
  CuldaConfig cfg;
  cfg.num_topics = k;
  cfg.max_tokens_per_block = 512;
  return cfg;
}

TEST(Trainer, InitialModelSatisfiesInvariants) {
  const auto c = SmallCorpus();
  CuldaTrainer trainer(c, SmallConfig(), {});
  trainer.Gather().Validate(c);
}

TEST(Trainer, InvariantsHoldAfterEveryIteration) {
  const auto c = SmallCorpus();
  CuldaTrainer trainer(c, SmallConfig(), {});
  for (int i = 0; i < 5; ++i) {
    trainer.Step();
    trainer.Gather().Validate(c);
  }
}

TEST(Trainer, LogLikelihoodImproves) {
  const auto c = SmallCorpus(600, 800, 60);
  CuldaTrainer trainer(c, SmallConfig(), {});
  const double before = trainer.LogLikelihoodPerToken();
  trainer.Train(10);
  const double after = trainer.LogLikelihoodPerToken();
  EXPECT_GT(after, before + 0.1);
}

class TrainerOverGpuCounts : public ::testing::TestWithParam<int> {};

TEST_P(TrainerOverGpuCounts, InvariantsAndConvergence) {
  const auto c = SmallCorpus();
  TrainerOptions opts;
  opts.gpus.assign(GetParam(), gpusim::TitanXpPascal());
  CuldaTrainer trainer(c, SmallConfig(), opts);
  EXPECT_EQ(trainer.num_gpus(), static_cast<uint32_t>(GetParam()));
  const double before = trainer.LogLikelihoodPerToken();
  trainer.Train(5);
  trainer.Gather().Validate(c);
  EXPECT_GT(trainer.LogLikelihoodPerToken(), before);
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, TrainerOverGpuCounts,
                         ::testing::Values(1, 2, 3, 4));

TEST(Trainer, MultiGpuFasterSimTime) {
  // Large enough that per-device bandwidth, not launch latency or sync,
  // dominates the iteration.
  const auto c = SmallCorpus(6000, 2000, 100);
  TrainerOptions one, four;
  one.gpus = {gpusim::TitanXpPascal()};
  four.gpus.assign(4, gpusim::TitanXpPascal());
  CuldaTrainer t1(c, SmallConfig(), one);
  CuldaTrainer t4(c, SmallConfig(), four);
  const double s1 = t1.Step().sim_seconds;
  const double s4 = t4.Step().sim_seconds;
  EXPECT_LT(s4, s1);
}

TEST(Trainer, AutoSchedulePicksWs1WhenItFits) {
  const auto c = SmallCorpus();
  CuldaTrainer trainer(c, SmallConfig(), {});
  EXPECT_EQ(trainer.chunks_per_gpu(), 1u);
}

TEST(Trainer, SmallDeviceForcesWs2) {
  const auto c = SmallCorpus(2000, 600, 60);
  TrainerOptions opts;
  gpusim::DeviceSpec tiny = gpusim::TitanXMaxwell();
  // Just enough for the model and a fraction of the corpus.
  tiny.memory_bytes = 4 * (48ull * 600 * 2 + 48 * 4) + (800 << 10);
  opts.gpus = {tiny};
  CuldaTrainer trainer(c, SmallConfig(), opts);
  EXPECT_GT(trainer.chunks_per_gpu(), 1u);
  const double before = trainer.LogLikelihoodPerToken();
  trainer.Train(4);
  trainer.Gather().Validate(c);
  EXPECT_GT(trainer.LogLikelihoodPerToken(), before);
}

TEST(Trainer, ExplicitMOverridesAuto) {
  const auto c = SmallCorpus();
  TrainerOptions opts;
  opts.chunks_per_gpu = 3;
  CuldaTrainer trainer(c, SmallConfig(), opts);
  EXPECT_EQ(trainer.chunks_per_gpu(), 3u);
  EXPECT_EQ(trainer.num_chunks(), 3u);
  trainer.Step();
  trainer.Gather().Validate(c);
}

TEST(Trainer, Ws2TransfersEveryIteration) {
  const auto c = SmallCorpus();
  TrainerOptions ws1, ws2;
  ws2.chunks_per_gpu = 2;
  CuldaTrainer t1(c, SmallConfig(), ws1);
  CuldaTrainer t2(c, SmallConfig(), ws2);
  const auto s1 = t1.Step();
  const auto s2 = t2.Step();
  EXPECT_EQ(s1.transfer_s, 0.0);  // WS1 moves nothing per iteration
  EXPECT_GT(s2.transfer_s, 0.0);  // WS2 streams chunks
}

TEST(Trainer, Ws2OverlapBeatsSerial) {
  const auto c = SmallCorpus(1500, 800, 60);
  TrainerOptions fast, slow;
  fast.chunks_per_gpu = 4;
  slow.chunks_per_gpu = 4;
  slow.overlap_transfers = false;
  CuldaTrainer tf(c, SmallConfig(), fast);
  CuldaTrainer ts(c, SmallConfig(), slow);
  double fast_s = 0, slow_s = 0;
  for (int i = 0; i < 3; ++i) {
    fast_s += tf.Step().sim_seconds;
    slow_s += ts.Step().sim_seconds;
  }
  EXPECT_LT(fast_s, slow_s);
}

TEST(Trainer, ThroughputRampsUpAsThetaSparsifies) {
  // Figure 7's warm-up: early iterations are slower because θ is denser.
  const auto c = SmallCorpus(800, 1000, 120);
  CuldaConfig cfg = SmallConfig(128);
  CuldaTrainer trainer(c, cfg, {});
  const auto history = trainer.Train(12);
  EXPECT_GT(history.back().tokens_per_sec,
            history.front().tokens_per_sec * 1.02);
}

TEST(Trainer, IterationStatsAreConsistent) {
  const auto c = SmallCorpus();
  CuldaTrainer trainer(c, SmallConfig(), {});
  const auto st = trainer.Step();
  EXPECT_GT(st.sim_seconds, 0.0);
  EXPECT_GT(st.sampling_s, 0.0);
  EXPECT_GT(st.update_theta_s, 0.0);
  EXPECT_GT(st.update_phi_s, 0.0);
  EXPECT_NEAR(st.tokens_per_sec, c.num_tokens() / st.sim_seconds, 1.0);
  EXPECT_EQ(st.iteration, 0u);
  EXPECT_EQ(trainer.history().size(), 1u);
}

TEST(Trainer, SamplingDominatesBreakdown) {
  // Table 5: ~80–88% of execution is sampling (at paper-like K).
  const auto c = SmallCorpus(1500, 1200, 150);
  CuldaConfig cfg = SmallConfig(256);
  CuldaTrainer trainer(c, cfg, {});
  trainer.Train(3);
  double sampling = 0, total = 0;
  for (const auto& st : trainer.history()) {
    sampling += st.sampling_s;
    total += st.sampling_s + st.update_phi_s + st.update_theta_s;
  }
  EXPECT_GT(sampling / total, 0.5);
}

TEST(Trainer, StepCountersCollectedOnDemand) {
  const auto c = SmallCorpus();
  TrainerOptions opts;
  opts.collect_step_counters = true;
  CuldaTrainer trainer(c, SmallConfig(), opts);
  trainer.Train(2);
  EXPECT_EQ(trainer.step_counters().tokens, 2 * c.num_tokens());
}

TEST(Trainer, EmptyCorpusRejected) {
  const corpus::Corpus empty(10, {0, 0}, {});
  EXPECT_THROW(CuldaTrainer(empty, SmallConfig(), {}), Error);
}

TEST(Trainer, OversizedModelRejected) {
  const auto c = SmallCorpus();
  TrainerOptions opts;
  gpusim::DeviceSpec tiny = gpusim::TitanXMaxwell();
  tiny.memory_bytes = 1 << 10;  // nothing fits
  opts.gpus = {tiny};
  EXPECT_THROW(CuldaTrainer(c, SmallConfig(), opts), Error);
}

TEST(Trainer, CpuSumSyncModeWorks) {
  const auto c = SmallCorpus();
  TrainerOptions opts;
  opts.gpus.assign(2, gpusim::TitanXpPascal());
  opts.sync_mode = SyncMode::kCpuSum;
  CuldaTrainer trainer(c, SmallConfig(), opts);
  trainer.Train(3);
  trainer.Gather().Validate(c);
}

TEST(Trainer, WallSecondsPositive) {
  const auto c = SmallCorpus();
  CuldaTrainer trainer(c, SmallConfig(), {});
  EXPECT_GT(trainer.Step().wall_seconds, 0.0);
}

}  // namespace
}  // namespace culda::core
