// Mutation tests for the invariant checkers (docs/validation.md): corrupt
// exactly one entry of φ / n_k / θ / z / the work list and assert the named
// invariant reports it with a location, plus the 16-bit overflow guards and
// the proof that validation is observation-only (bit-identity on/off).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/trainer.hpp"
#include "corpus/chunking.hpp"
#include "corpus/synthetic.hpp"
#include "corpus/word_first.hpp"
#include "util/philox.hpp"
#include "validate/invariants.hpp"

namespace culda {
namespace {

corpus::Corpus SmallCorpus(uint64_t docs = 120, uint32_t vocab = 200,
                           double len = 30) {
  corpus::SyntheticProfile p;
  p.num_docs = docs;
  p.vocab_size = vocab;
  p.avg_doc_length = len;
  return corpus::GenerateCorpus(p);
}

core::CuldaConfig SmallConfig(uint32_t k = 16) {
  core::CuldaConfig cfg;
  cfg.num_topics = k;
  cfg.max_tokens_per_block = 256;
  return cfg;
}

struct BuiltState {
  std::vector<core::ChunkState> chunks;
  std::vector<core::PhiReplica> replicas;
};

/// A consistent trainer-shaped state built outside the trainer (its members
/// are private): the same layout/z-init/θ-compaction/φ-histogram recipe, so
/// a clean build passes every checker and any single corruption is the only
/// inconsistency.
BuiltState BuildState(const corpus::Corpus& c, const core::CuldaConfig& cfg,
                      uint32_t num_chunks, uint32_t num_replicas = 1) {
  BuiltState s;
  for (const auto& spec : corpus::PartitionByTokens(c, num_chunks)) {
    core::ChunkState chunk;
    chunk.layout = corpus::BuildWordFirstChunk(c, spec);
    chunk.work =
        corpus::BuildBlockWorkList(chunk.layout, cfg.max_tokens_per_block);
    chunk.z.resize(chunk.layout.num_tokens());
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      PhiloxStream rng(cfg.seed, chunk.layout.token_global[t]);
      chunk.z[t] = static_cast<uint16_t>(rng.NextBelow(cfg.num_topics));
    }
    chunk.theta = core::ThetaMatrix(chunk.layout.num_docs(), cfg.num_topics);
    chunk.theta.AssignFromDense([&](size_t d, std::span<int32_t> row) {
      for (uint64_t i = chunk.layout.doc_map_offsets[d];
           i < chunk.layout.doc_map_offsets[d + 1]; ++i) {
        row[chunk.z[chunk.layout.doc_map[i]]] += 1;
      }
    });
    s.chunks.push_back(std::move(chunk));
  }
  core::PhiReplica rep(cfg.num_topics, c.vocab_size());
  for (const auto& chunk : s.chunks) {
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      rep.phi(chunk.z[t], chunk.layout.token_word[t]) += 1;
    }
  }
  rep.RecomputeTotals();
  for (uint32_t g = 0; g < num_replicas; ++g) s.replicas.push_back(rep);
  return s;
}

/// Runs `fn`, demands it throws ValidationError naming `invariant`, and that
/// the message carries `location` (the "where", not just the "what").
template <typename Fn>
void ExpectViolation(const Fn& fn, const std::string& invariant,
                     const std::string& location) {
  try {
    fn();
    FAIL() << "expected invariant '" << invariant << "' to be reported";
  } catch (const validate::ValidationError& e) {
    EXPECT_EQ(e.invariant(), invariant) << "full message: " << e.what();
    EXPECT_NE(std::string(e.what()).find(location), std::string::npos)
        << "message '" << e.what() << "' does not locate '" << location
        << "'";
  }
}

TEST(Validate, CleanStatePassesEveryChecker) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  const auto s = BuildState(c, cfg, 3, 2);
  EXPECT_NO_THROW(
      validate::ValidateModelState(c, cfg, s.chunks, s.replicas));
}

TEST(Validate, MutatedZIsCaughtByZTopicRange) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  auto s = BuildState(c, cfg, 2);
  s.chunks[0].z[5] = static_cast<uint16_t>(cfg.num_topics);
  ExpectViolation(
      [&] { validate::CheckAssignmentsInRange(cfg, s.chunks[0], "chunk 0"); },
      "z-topic-range", "z[5]");
  // The full entry point reports it with the chunk context attached.
  ExpectViolation(
      [&] { validate::ValidateModelState(c, cfg, s.chunks, s.replicas); },
      "z-topic-range", "chunk 0");
}

TEST(Validate, MutatedThetaValueIsCaughtByThetaMatchesZ) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  auto s = BuildState(c, cfg, 2);
  s.chunks[1].theta.mutable_values()[0] += 1;
  ExpectViolation(
      [&] { validate::CheckThetaMatchesZ(cfg, s.chunks[1], "chunk 1"); },
      "theta-matches-z", "document 0");
  ExpectViolation(
      [&] { validate::ValidateModelState(c, cfg, s.chunks, s.replicas); },
      "theta-matches-z", "chunk 1");
}

TEST(Validate, MisshapenThetaIsCaughtByThetaStructure) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  auto s = BuildState(c, cfg, 1);
  s.chunks[0].theta =
      core::ThetaMatrix(s.chunks[0].layout.num_docs() + 1, cfg.num_topics);
  ExpectViolation(
      [&] { validate::CheckThetaMatchesZ(cfg, s.chunks[0], "chunk 0"); },
      "theta-structure", "documents");
}

TEST(Validate, MutatedNkIsCaughtByNkMatchesPhi) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  auto s = BuildState(c, cfg, 1);
  s.replicas[0].nk[3] += 1;
  ExpectViolation([&] { validate::CheckNkMatchesPhi(s.replicas[0]); },
                  "nk-matches-phi", "n_k[3]");
  ExpectViolation(
      [&] { validate::ValidateModelState(c, cfg, s.chunks, s.replicas); },
      "nk-matches-phi", "n_k[3]");
}

TEST(Validate, MutatedPhiCellIsCaughtByPhiTotalTokens) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  auto s = BuildState(c, cfg, 1);
  s.replicas[0].phi(2, 7) += 1;
  ExpectViolation(
      [&] {
        validate::CheckPhiTotalTokens(s.replicas[0], c.num_tokens());
      },
      "phi-total-tokens", "ΣΣ φ");
}

TEST(Validate, MovedPhiCountIsCaughtByPhiMatchesZ) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  auto s = BuildState(c, cfg, 2);
  // Move one count within a φ row: n_k, ΣΣ φ, and every θ row stay
  // consistent, so only the z cross-check can see it — the exact signature
  // of a mis-applied delayed update.
  auto& phi = s.replicas[0].phi;
  uint32_t v_from = 0;
  while (phi(0, v_from) == 0) ++v_from;
  const uint32_t v_to = v_from == 0 ? 1 : 0;
  phi(0, v_from) -= 1;
  phi(0, v_to) += 1;
  ExpectViolation(
      [&] { validate::ValidateModelState(c, cfg, s.chunks, s.replicas); },
      "phi-matches-z", "topic 0");
}

TEST(Validate, NearSaturatedPhiCellIsCaughtByMargin) {
  core::PhiReplica rep(4, 8);
  rep.phi(1, 2) = 0xFFFF - 1024;  // exactly at the default margin boundary
  rep.RecomputeTotals();
  ExpectViolation([&] { validate::CheckPhiSaturationMargin(rep, 1024); },
                  "phi-saturation-margin", "(topic 1, word 2)");
  // One below the boundary passes; margin 0 disables the check entirely.
  rep.phi(1, 2) = 0xFFFF - 1025;
  rep.RecomputeTotals();
  EXPECT_NO_THROW(validate::CheckPhiSaturationMargin(rep, 1024));
  rep.phi(1, 2) = 0xFFFF;
  rep.RecomputeTotals();
  EXPECT_NO_THROW(validate::CheckPhiSaturationMargin(rep, 0));
}

TEST(Validate, DivergedReplicaIsCaughtByReplicasAgree) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  auto s = BuildState(c, cfg, 2, 3);
  s.replicas[2].phi(0, 0) += 1;
  ExpectViolation([&] { validate::CheckReplicasAgree(s.replicas); },
                  "phi-replicas-agree", "device 2");
}

TEST(Validate, CorruptedWorkListIsCaughtByChunkLayout) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  auto s = BuildState(c, cfg, 2);
  s.chunks[0].work[0].token_end -= 1;
  ExpectViolation(
      [&] { validate::CheckChunkLayout(c, s.chunks[0], "chunk 0"); },
      "chunk-layout", "block");
}

TEST(Validate, ShiftedChunkBoundaryIsCaughtByChunkCoverage) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  auto s = BuildState(c, cfg, 3);
  s.chunks[1].layout.spec.doc_begin += 1;
  ExpectViolation(
      [&] { validate::ValidateModelState(c, cfg, s.chunks, s.replicas); },
      "chunk-coverage", "chunk 1");
}

TEST(Validate, ServedModelCorruptionIsCaught) {
  const auto c = SmallCorpus();
  core::CuldaTrainer trainer(c, SmallConfig(), {});
  trainer.Train(2);

  auto model = trainer.Gather();
  EXPECT_NO_THROW(validate::ValidateServedModel(model));
  model.nk[0] += 1;
  ExpectViolation([&] { validate::ValidateServedModel(model); },
                  "nk-matches-phi", "served model");

  auto model2 = trainer.Gather();
  model2.theta.mutable_values()[0] = 0;
  ExpectViolation([&] { validate::ValidateServedModel(model2); },
                  "model-consistency", "non-positive");
}

TEST(Validate, TrainerStatePassesAfterTrainingAndRestore) {
  const auto c = SmallCorpus();
  const auto cfg = SmallConfig();
  core::TrainerOptions opts;
  opts.gpus.assign(2, gpusim::V100Volta());
  core::CuldaTrainer trainer(c, cfg, opts);
  EXPECT_NO_THROW(trainer.ValidateState());
  trainer.Train(3);
  EXPECT_NO_THROW(trainer.ValidateState());

  std::stringstream ckpt;
  trainer.SaveCheckpoint(ckpt);
  core::CuldaTrainer restored(c, cfg, opts);
  restored.RestoreCheckpoint(ckpt);
  EXPECT_NO_THROW(restored.ValidateState());
}

TEST(Validate, BitIdenticalWithAndWithoutValidation) {
  // Validation must be observation-only: a run with the hooks live (or, in
  // a hooks-off build, with explicit ValidateState() calls interleaved)
  // produces bit-identical assignments, φ, and θ to a run without.
  const auto c = SmallCorpus(200, 300, 40);
  const auto cfg = SmallConfig(24);

  core::TrainerOptions off_opts;
  off_opts.validate = false;
  core::CuldaTrainer off(c, cfg, off_opts);

  core::TrainerOptions on_opts;
  on_opts.validate = true;
  core::CuldaTrainer on(c, cfg, on_opts);

  for (int i = 0; i < 3; ++i) {
    off.Step();
    on.Step();
    on.ValidateState();
  }

  EXPECT_EQ(off.ExportAssignments(), on.ExportAssignments());
  const auto m_off = off.Gather();
  const auto m_on = on.Gather();
  const auto phi_off = m_off.phi.flat();
  const auto phi_on = m_on.phi.flat();
  ASSERT_EQ(phi_off.size(), phi_on.size());
  EXPECT_TRUE(std::equal(phi_off.begin(), phi_off.end(), phi_on.begin()));
  EXPECT_EQ(m_off.nk, m_on.nk);
  EXPECT_TRUE(std::equal(m_off.theta.values().begin(),
                         m_off.theta.values().end(),
                         m_on.theta.values().begin()));
}

TEST(Validate, HeavyWordCorpusFailsLoudly) {
  // One word with 70000 occurrences: its φ cell could legally reach 70000 >
  // 65535 if training concentrates it on one topic, silently wrapping the
  // 16-bit count. The trainer must refuse the corpus up front.
  constexpr uint64_t kDocs = 100;
  constexpr uint64_t kHeavyPerDoc = 700;  // 70000 total
  std::vector<uint64_t> offsets = {0};
  std::vector<uint32_t> words;
  for (uint64_t d = 0; d < kDocs; ++d) {
    for (uint64_t i = 0; i < kHeavyPerDoc; ++i) words.push_back(0);
    words.push_back(1 + static_cast<uint32_t>(d % 2));
    offsets.push_back(words.size());
  }
  const corpus::Corpus heavy(3, std::move(offsets), std::move(words));

  try {
    core::CuldaTrainer trainer(heavy, SmallConfig(), {});
    FAIL() << "heavy-word corpus must be rejected";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("word 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("70000"), std::string::npos) << msg;
    EXPECT_NE(msg.find("65535"), std::string::npos) << msg;
  }
}

TEST(Validate, ConfigRejectsTopicCountsBeyond16Bit) {
  core::CuldaConfig cfg;
  cfg.num_topics = 0xFFFF;
  EXPECT_NO_THROW(cfg.Validate());
  cfg.num_topics = 0x10000;
  EXPECT_THROW(cfg.Validate(), Error);
  try {
    cfg.Validate();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("65535"), std::string::npos)
        << e.what();
  }
}

TEST(Validate, HooksCompiledMatchesBuildConfiguration) {
#ifdef CULDA_VALIDATE_ON
  EXPECT_TRUE(validate::kHooksCompiled);
#else
  EXPECT_FALSE(validate::kHooksCompiled);
#endif
  // The options default follows the build: hooks fire exactly when present.
  EXPECT_EQ(core::TrainerOptions{}.validate, validate::kHooksCompiled);
}

}  // namespace
}  // namespace culda
