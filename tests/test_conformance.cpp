// Differential conformance tests (docs/validation.md): chi-square machinery
// against known values, IndexTreeView sampling frequencies against exact
// probabilities across distribution shapes and fanouts, the serving engine's
// bucket-decomposed sampler against its enumerable closed-form conditional,
// and the cross-solver count harness.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/index_tree.hpp"
#include "corpus/synthetic.hpp"
#include "util/philox.hpp"
#include "validate/chi_square.hpp"
#include "validate/conformance.hpp"
#include "validate/invariants.hpp"

namespace culda {
namespace {

// All sampling tests are deterministic (Philox streams keyed by fixed
// seeds), so p > 0.01 is a hard bound, not a flake budget.
constexpr double kAlpha = 0.01;
constexpr uint64_t kDraws = 20000;

TEST(ChiSquare, MatchesKnownCriticalValues) {
  // Classic table entries: P(X² >= x | dof) at the 5% and 1% levels.
  EXPECT_NEAR(validate::ChiSquarePValue(3.841, 1), 0.05, 2e-3);
  EXPECT_NEAR(validate::ChiSquarePValue(9.488, 4), 0.05, 2e-3);
  EXPECT_NEAR(validate::ChiSquarePValue(15.086, 5), 0.01, 2e-3);
  EXPECT_DOUBLE_EQ(validate::ChiSquarePValue(0.0, 7), 1.0);
  EXPECT_LT(validate::ChiSquarePValue(200.0, 3), 1e-12);
  // Q(1, x) = e^-x exactly.
  EXPECT_NEAR(validate::RegularizedGammaQ(1.0, 1.0), std::exp(-1.0), 1e-10);
  EXPECT_NEAR(validate::RegularizedGammaQ(1.0, 5.0), std::exp(-5.0), 1e-10);
}

TEST(ChiSquare, GofAcceptsExactAndRejectsGrossMismatch) {
  const std::vector<uint64_t> observed = {100, 200, 300, 400};
  const std::vector<double> exact = {100, 200, 300, 400};
  EXPECT_DOUBLE_EQ(validate::ChiSquareGof(observed, exact).p_value, 1.0);

  const std::vector<double> wrong = {400, 300, 200, 100};
  EXPECT_LT(validate::ChiSquareGof(observed, wrong).p_value, 1e-12);

  // An observed outcome in a zero-probability bin is an immediate fail.
  const std::vector<uint64_t> impossible = {999, 1};
  const std::vector<double> support = {1000, 0};
  EXPECT_EQ(validate::ChiSquareGof(impossible, support).p_value, 0.0);
}

TEST(ChiSquare, PoolsSparseBinsInsteadOfRejectingThem) {
  // 50 bins expecting 2 each: unpooled, the X² validity rule (E >= 5) is
  // violated everywhere; pooling must make the test well-defined and accept
  // a perfect match.
  const std::vector<uint64_t> observed(50, 2);
  const std::vector<double> expected(50, 2.0);
  const auto r = validate::ChiSquareGof(observed, expected);
  EXPECT_GT(r.dof, 0);
  EXPECT_LT(r.dof, 49);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

/// The required >= 5 distribution shapes, chosen to stress different tree
/// paths: uniform (every leaf equally likely), geometric decay (mass at the
/// front), one dominant spike (deep clamp path), bimodal ends (first/last
/// leaf groups), linear ramp (mass at the back), and zero-interleaved
/// support (unreachable leaves between reachable ones).
std::vector<std::pair<const char*, std::vector<float>>> Shapes() {
  std::vector<std::pair<const char*, std::vector<float>>> shapes;
  shapes.emplace_back("uniform", std::vector<float>(64, 1.0f));
  std::vector<float> geometric(64);
  for (size_t i = 0; i < geometric.size(); ++i) {
    geometric[i] = std::pow(0.85f, static_cast<float>(i));
  }
  shapes.emplace_back("geometric", geometric);
  std::vector<float> spike(64, 0.01f);
  spike[17] = 10.0f;
  shapes.emplace_back("spike", spike);
  std::vector<float> bimodal(64, 0.001f);
  bimodal[0] = 1.0f;
  bimodal[63] = 1.0f;
  shapes.emplace_back("bimodal", bimodal);
  std::vector<float> ramp(64);
  for (size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<float>(i + 1);
  }
  shapes.emplace_back("ramp", ramp);
  std::vector<float> holes(64, 0.0f);
  for (size_t i = 0; i < holes.size(); i += 2) holes[i] = 1.0f + 0.05f * i;
  shapes.emplace_back("holes", holes);
  return shapes;
}

TEST(TreeConformance, SamplingMatchesExactDistributionAcrossShapes) {
  for (const uint32_t fanout : {2u, 8u, 32u}) {
    uint64_t seed = 99;
    for (const auto& [name, p] : Shapes()) {
      const auto r = validate::TreeSamplingGof(p, fanout, kDraws, seed++);
      EXPECT_GT(r.p_value, kAlpha)
          << "shape '" << name << "' fanout " << fanout
          << ": X² = " << r.statistic << " at dof " << r.dof;
    }
  }
}

TEST(TreeConformance, DetectsABiasedDistribution) {
  // Power check: the same draw histogram tested against the *wrong*
  // expectation must fail decisively — otherwise the accepts above are
  // meaningless.
  const std::vector<float> p = {1.0f, 1.0f, 1.0f, 2.0f};
  core::IndexTree tree(p.size(), 4);
  tree.view().Build(p);
  PhiloxStream rng(13, 0);
  std::vector<uint64_t> observed(p.size(), 0);
  for (uint64_t d = 0; d < kDraws; ++d) {
    const float u =
        static_cast<float>(rng.NextDouble()) * tree.view().TotalMass();
    observed[tree.view().Search(u)] += 1;
  }
  const std::vector<double> uniform(p.size(), kDraws / 4.0);
  EXPECT_LT(validate::ChiSquareGof(observed, uniform).p_value, 1e-6);
}

/// A small hand-built served model with an uneven φ column, so the exact
/// conditional p(k) ∝ α_k(φ_kv + β)/(n_k + βV) is far from uniform.
core::GatheredModel TinyModel(uint32_t k_topics = 12, uint32_t vocab = 6) {
  core::GatheredModel model;
  model.num_topics = k_topics;
  model.vocab_size = vocab;
  model.num_docs = 0;
  model.theta = core::ThetaMatrix(0, k_topics);
  model.phi = core::PhiMatrix(k_topics, vocab);
  for (uint32_t k = 0; k < k_topics; ++k) {
    for (uint32_t v = 0; v < vocab; ++v) {
      // Word 2 concentrated on low topics, word 3 absent from half of them.
      model.phi(k, v) = static_cast<uint16_t>(
          (v == 2 ? (k < 4 ? 40 + 13 * k : 1)
                  : (v == 3 && k % 2 == 0 ? 0 : 5 + ((k * 7 + v) % 11))));
    }
  }
  model.nk.assign(k_topics, 0);
  for (uint32_t k = 0; k < k_topics; ++k) {
    int32_t sum = 0;
    for (uint32_t v = 0; v < vocab; ++v) sum += model.phi(k, v);
    model.nk[k] = sum;
  }
  return model;
}

class BucketSamplerConformance
    : public ::testing::TestWithParam<core::InferSampler> {};

/// The exact modes sample the conditional in one sweep; the MH chain gets
/// sweeps to mix (under a symmetric prior its word proposal is already
/// exact, but the asymmetric test below needs the extra pairs).
uint32_t SweepsFor(core::InferSampler sampler) {
  return sampler == core::InferSampler::kAliasMH ? 30 : 1;
}

TEST_P(BucketSamplerConformance, MatchesExactConditional) {
  const auto model = TinyModel();
  core::CuldaConfig cfg;
  cfg.num_topics = model.num_topics;
  uint64_t seed = 1000;
  for (const uint32_t word : {2u, 3u, 5u}) {
    const auto r = validate::BucketSamplerGof(model, cfg, GetParam(), word,
                                              kDraws, seed,
                                              SweepsFor(GetParam()));
    seed += kDraws;
    EXPECT_GT(r.p_value, kAlpha)
        << "word " << word << ": X² = " << r.statistic << " at dof "
        << r.dof;
  }
}

TEST_P(BucketSamplerConformance, MatchesExactConditionalAsymmetricAlpha) {
  const auto model = TinyModel();
  core::CuldaConfig cfg;
  cfg.num_topics = model.num_topics;
  cfg.asymmetric_alpha.resize(cfg.num_topics);
  for (uint32_t k = 0; k < cfg.num_topics; ++k) {
    cfg.asymmetric_alpha[k] = 0.5 + 2.0 * (k % 3);
  }
  const auto r = validate::BucketSamplerGof(model, cfg, GetParam(), 2,
                                            kDraws, 77777,
                                            SweepsFor(GetParam()));
  EXPECT_GT(r.p_value, kAlpha)
      << "X² = " << r.statistic << " at dof " << r.dof;
}

INSTANTIATE_TEST_SUITE_P(
    Samplers, BucketSamplerConformance,
    ::testing::Values(core::InferSampler::kSparseBucket,
                      core::InferSampler::kDenseReference,
                      core::InferSampler::kAliasMH),
    [](const auto& info) {
      switch (info.param) {
        case core::InferSampler::kSparseBucket: return "SparseBucket";
        case core::InferSampler::kDenseReference: return "DenseReference";
        case core::InferSampler::kAliasMH: return "AliasMH";
      }
      return "Unknown";
    });

corpus::Corpus ConformanceCorpus() {
  corpus::SyntheticProfile p;
  p.num_docs = 150;
  p.vocab_size = 250;
  p.avg_doc_length = 25;
  return corpus::GenerateCorpus(p);
}

TEST(CountConformance, AllSolversAgreeOnSingleGpu) {
  core::CuldaConfig cfg;
  cfg.num_topics = 16;
  cfg.max_tokens_per_block = 256;
  validate::ConformanceOptions opts;
  opts.iterations = 2;
  opts.gpus = 1;
  EXPECT_NO_THROW(
      validate::RunCountConformance(ConformanceCorpus(), cfg, opts));
}

TEST(CountConformance, AllSolversAgreeOnMultiGpu) {
  core::CuldaConfig cfg;
  cfg.num_topics = 16;
  cfg.max_tokens_per_block = 256;
  validate::ConformanceOptions opts;
  opts.iterations = 2;
  opts.gpus = 2;
  EXPECT_NO_THROW(
      validate::RunCountConformance(ConformanceCorpus(), cfg, opts));
}

// The count-table invariants are sampler-independent: the alias/MH training
// kernel must maintain them exactly even though its assignments follow a
// different (stale-proposal) chain than the exact tree kernel's.
TEST(CountConformance, AliasMhTrainerMaintainsExactCounts) {
  core::CuldaConfig cfg;
  cfg.num_topics = 16;
  cfg.max_tokens_per_block = 256;
  validate::ConformanceOptions opts;
  opts.iterations = 2;
  opts.sampler = core::TrainSampler::kAliasMH;
  opts.mh_cycles = 2;
  EXPECT_NO_THROW(
      validate::RunCountConformance(ConformanceCorpus(), cfg, opts));
}

TEST(CountConformance, AliasMhTrainerMaintainsExactCountsMultiGpu) {
  core::CuldaConfig cfg;
  cfg.num_topics = 16;
  cfg.max_tokens_per_block = 256;
  validate::ConformanceOptions opts;
  opts.iterations = 2;
  opts.gpus = 2;
  opts.sampler = core::TrainSampler::kAliasMH;
  EXPECT_NO_THROW(
      validate::RunCountConformance(ConformanceCorpus(), cfg, opts));
}

}  // namespace
}  // namespace culda
