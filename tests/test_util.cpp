// Unit tests for src/util: Philox RNG, prefix sums, CLI flags, thread pool,
// checks, and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/philox.hpp"
#include "util/prefix_sum.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace culda {
namespace {

// ---------------------------------------------------------------- Philox --

TEST(Philox, DeterministicAcrossInstances) {
  PhiloxStream a(123, 7);
  PhiloxStream b(123, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(Philox, DistinctStreamsDiffer) {
  PhiloxStream a(123, 7);
  PhiloxStream b(123, 8);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Philox, DistinctSeedsDiffer) {
  PhiloxStream a(1, 0);
  PhiloxStream b(2, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Philox, DoubleInUnitInterval) {
  PhiloxStream rng(99, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Philox, FloatInUnitInterval) {
  PhiloxStream rng(99, 1);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.NextFloat();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(Philox, UniformMean) {
  PhiloxStream rng(42, 0);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Philox, NextBelowRange) {
  PhiloxStream rng(5, 3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Philox, NextBelowCoversAllValues) {
  PhiloxStream rng(5, 4);
  std::set<uint32_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBelow(16));
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Philox, NextBelowApproximatelyUniform) {
  PhiloxStream rng(77, 0);
  std::map<uint32_t, int> hist;
  const int n = 160000, buckets = 8;
  for (int i = 0; i < n; ++i) ++hist[rng.NextBelow(buckets)];
  for (const auto& [k, c] : hist) {
    EXPECT_NEAR(static_cast<double>(c), n / buckets, n / buckets * 0.05)
        << "bucket " << k;
  }
}

TEST(Philox, BitBalance) {
  // Each of the 32 output bits should be ~50% ones.
  PhiloxStream rng(2024, 11);
  int ones[32] = {};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint32_t v = rng.NextU32();
    for (int b = 0; b < 32; ++b) ones[b] += (v >> b) & 1;
  }
  for (int b = 0; b < 32; ++b) {
    EXPECT_NEAR(ones[b], n / 2, n * 0.02) << "bit " << b;
  }
}

// ------------------------------------------------------------ prefix sum --

TEST(PrefixSum, InclusiveScanBasic) {
  std::vector<int> v{1, 2, 3, 4};
  InclusiveScan(std::span<int>(v));
  EXPECT_EQ(v, (std::vector<int>{1, 3, 6, 10}));
}

TEST(PrefixSum, ExclusiveScanReturnsTotal) {
  std::vector<int> in{5, 0, 2, 7};
  std::vector<int> out(4);
  const int total =
      ExclusiveScan(std::span<const int>(in), std::span<int>(out));
  EXPECT_EQ(total, 14);
  EXPECT_EQ(out, (std::vector<int>{0, 5, 5, 7}));
}

TEST(PrefixSum, EmptyScansAreNoops) {
  std::vector<int> v;
  InclusiveScan(std::span<int>(v));
  EXPECT_TRUE(v.empty());
  std::vector<int> out;
  EXPECT_EQ(ExclusiveScan(std::span<const int>(v), std::span<int>(out)), 0);
}

TEST(PrefixSum, UpperBoundSearchFindsFirstGreater) {
  std::vector<double> prefix{0.1, 0.3, 0.3, 0.9, 1.0};
  EXPECT_EQ(UpperBoundSearch<double>(prefix, 0.0), 0u);
  EXPECT_EQ(UpperBoundSearch<double>(prefix, 0.1), 1u);
  EXPECT_EQ(UpperBoundSearch<double>(prefix, 0.25), 1u);
  EXPECT_EQ(UpperBoundSearch<double>(prefix, 0.3), 3u);
  EXPECT_EQ(UpperBoundSearch<double>(prefix, 0.95), 4u);
}

TEST(PrefixSum, UpperBoundSearchClampsAtTop) {
  std::vector<double> prefix{0.5, 1.0};
  EXPECT_EQ(UpperBoundSearch<double>(prefix, 1.0), 1u);
  EXPECT_EQ(UpperBoundSearch<double>(prefix, 2.0), 1u);
}

// ------------------------------------------------------------------- CLI --

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--k=256", "--name=volta"};
  CliFlags flags(3, argv);
  EXPECT_EQ(flags.GetInt("k", 0), 256);
  EXPECT_EQ(flags.GetString("name", ""), "volta");
}

TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--iters", "50"};
  CliFlags flags(3, argv);
  EXPECT_EQ(flags.GetInt("iters", 0), 50);
}

TEST(Cli, BooleanForms) {
  const char* argv[] = {"prog", "--fast", "--no-verify"};
  CliFlags flags(3, argv);
  EXPECT_TRUE(flags.GetBool("fast", false));
  EXPECT_FALSE(flags.GetBool("verify", true));
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliFlags flags(1, argv);
  EXPECT_EQ(flags.GetInt("k", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 1.5), 1.5);
  EXPECT_FALSE(flags.Has("k"));
}

TEST(Cli, PositionalArgsCollected) {
  const char* argv[] = {"prog", "a.txt", "--k=1", "b.txt"};
  CliFlags flags(4, argv);
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"a.txt", "b.txt"}));
}

TEST(Cli, MalformedIntegerThrows) {
  const char* argv[] = {"prog", "--k=abc"};
  CliFlags flags(2, argv);
  EXPECT_THROW(flags.GetInt("k", 0), Error);
}

TEST(Cli, UnusedFlagsReported) {
  const char* argv[] = {"prog", "--typo=1", "--used=2"};
  CliFlags flags(3, argv);
  flags.GetInt("used", 0);
  EXPECT_EQ(flags.UnusedFlags(), std::vector<std::string>{"typo"});
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--scale=0.25"};
  CliFlags flags(2, argv);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.25);
}

TEST(Cli, TrailingGarbageRejected) {
  // strtoll/strtod stop at the first bad character; the remainder must make
  // the whole value invalid, not be silently dropped.
  const char* argv[] = {"prog", "--k=12abc", "--scale=0.5x"};
  CliFlags flags(3, argv);
  EXPECT_THROW(flags.GetInt("k", 0), Error);
  EXPECT_THROW(flags.GetDouble("scale", 1.0), Error);
}

TEST(Cli, EmptyValueRejected) {
  // `--k=` parses zero characters, which strtoll reports as value 0 with
  // *end == '\0' — previously accepted as a silent 0.
  const char* argv[] = {"prog", "--k=", "--scale="};
  CliFlags flags(3, argv);
  EXPECT_THROW(flags.GetInt("k", 7), Error);
  EXPECT_THROW(flags.GetDouble("scale", 1.5), Error);
}

TEST(Cli, OutOfRangeIntegerRejected) {
  // Out-of-range values clamp to LLONG_MIN/MAX with errno = ERANGE instead
  // of failing the end-pointer check — previously accepted as the clamp.
  const char* argv[] = {"prog", "--k=99999999999999999999999",
                        "--j=-99999999999999999999999"};
  CliFlags flags(3, argv);
  EXPECT_THROW(flags.GetInt("k", 0), Error);
  EXPECT_THROW(flags.GetInt("j", 0), Error);
}

TEST(Cli, NonFiniteDoubleRejected) {
  const char* argv[] = {"prog", "--a=1e999", "--b=inf", "--c=nan"};
  CliFlags flags(4, argv);
  EXPECT_THROW(flags.GetDouble("a", 0.0), Error);
  EXPECT_THROW(flags.GetDouble("b", 0.0), Error);
  EXPECT_THROW(flags.GetDouble("c", 0.0), Error);
}

TEST(Cli, ExtremeButRepresentableValuesAccepted) {
  const char* argv[] = {"prog", "--k=-9223372036854775808",
                        "--j=9223372036854775807", "--scale=1e300"};
  CliFlags flags(4, argv);
  EXPECT_EQ(flags.GetInt("k", 0), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(flags.GetInt("j", 0), std::numeric_limits<int64_t>::max());
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 0.0), 1e300);
}

// ----------------------------------------------------------------- check --

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(CULDA_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    CULDA_CHECK(false);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"),
              std::string::npos);
  }
}

TEST(Check, MessageIsIncluded) {
  try {
    CULDA_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

// ----------------------------------------------------------- thread pool --

TEST(ThreadPool, InlineModeRunsEverything) {
  ThreadPool pool(0);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, WorkersRunEverything) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(10,
                       [&](size_t i) {
                         if (i == 5) throw Error("boom");
                       }),
      Error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(50, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL(); });
  pool.ParallelForRanges(0, [&](size_t, size_t) { FAIL(); });
}

TEST(ThreadPool, ExceptionFirstOneWinsAndAllItemsRun) {
  // Several items throw; exactly one exception propagates, and every item
  // still executes (the pool does not abandon claimed work on error).
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  try {
    pool.ParallelFor(200, [&](size_t i) {
      ran.fetch_add(1);
      if (i % 50 == 0) throw Error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()).substr(0, 4), "boom");
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // Trainer-level parallelism runs device bodies on the pool; each body
  // launches kernels whose blocks use the *same* pool. Every nested call
  // must complete even when all workers are busy inside outer bodies —
  // the caller participates, so no circular wait can form.
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(16, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ThreadPool, NestedUseWithSingleWorker) {
  // Worst case for nesting: one worker, fully occupied by the outer loop.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelForRanges(10, [&](size_t b, size_t e) {
      count.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(count.load(), 40);
}

TEST(ThreadPool, RangesCoverEverythingExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  std::atomic<int> ranges{0};
  pool.ParallelForRanges(1000, [&](size_t begin, size_t end) {
    EXPECT_LT(begin, end);
    ranges.fetch_add(1);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // At most one range per executing thread (workers + caller).
  EXPECT_LE(ranges.load(), 4);
}

TEST(ThreadPool, RangesInlineWhenNoWorkers) {
  ThreadPool pool(0);
  int calls = 0;
  pool.ParallelForRanges(17, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 17u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RangesPropagateExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelForRanges(
                   100, [&](size_t begin, size_t) {
                     if (begin == 0) throw Error("range boom");
                   }),
               Error);
}

TEST(ThreadPool, CurrentWorkerIdIsADenseSlot) {
  ThreadPool pool(3);
  // The calling thread is not a pool worker.
  EXPECT_EQ(pool.current_worker_id(), -1);
  // Inside tasks, every executing thread maps to a distinct slot in
  // [0, worker_count()] via id + 1 — the invariant Device::Launch's
  // per-worker accumulators rely on.
  std::vector<std::atomic<int>> slot_hits(pool.worker_count() + 1);
  pool.ParallelFor(64, [&](size_t) {
    const int id = pool.current_worker_id();
    ASSERT_GE(id, -1);
    ASSERT_LT(id, static_cast<int>(pool.worker_count()));
    slot_hits[static_cast<size_t>(id + 1)].fetch_add(1);
  });
  int total = 0;
  for (const auto& h : slot_hits) total += h.load();
  EXPECT_EQ(total, 64);
  // A different pool's workers are strangers to this one.
  ThreadPool other(1);
  other.ParallelFor(2, [&](size_t) {
    if (other.current_worker_id() >= 0) {
      EXPECT_EQ(pool.current_worker_id(), -1);
    }
  });
}

// ----------------------------------------------------------------- table --

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "12345"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name  |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(TextTable, RowArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), Error);
}

TEST(TextTable, NumFormatsSignificantDigits) {
  EXPECT_EQ(TextTable::Num(3.14159, 3), "3.14");
  EXPECT_EQ(TextTable::Num(1234567.0, 4), "1.235e+06");
}

}  // namespace
}  // namespace culda
