// Serving daemon tests: wire-protocol strictness, the coalescing batcher's
// flush/shed/drain policy, ServeDaemon end-to-end (including backpressure
// and hot-swap), and the fd-pair line frontend.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/frontend.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace culda::serve {
namespace {

core::SnapshotPtr TestSnapshot(uint64_t generation = 1,
                               uint32_t train_iters = 5) {
  corpus::SyntheticProfile p;
  p.num_docs = 120;
  p.vocab_size = 200;
  p.avg_doc_length = 25;
  core::CuldaConfig cfg;
  cfg.num_topics = 16;
  // The trainer keeps a pointer to its corpus; it must stay alive until
  // the snapshot is gathered.
  const auto corpus = corpus::GenerateCorpus(p);
  core::CuldaTrainer trainer(corpus, cfg, {});
  trainer.Train(train_iters);
  return core::SnapshotFromTrainer(trainer, {}, generation);
}

// ------------------------------------------------------------ protocol

TEST(Protocol, ParsesMinimalRequest) {
  const auto p = ParseRequestLine(R"({"id":"r1","words":[3,17,3]})");
  ASSERT_EQ(p.kind, LineKind::kInfer);
  EXPECT_EQ(p.request.id, "r1");
  EXPECT_EQ(p.request.words, (std::vector<uint32_t>{3, 17, 3}));
  EXPECT_EQ(p.request.seed, 7u);  // documented default
}

TEST(Protocol, ParsesSeedAndWhitespace) {
  const auto p =
      ParseRequestLine(R"(  { "seed" : 42 , "id" : "x" , "words" : [ 1 ] } )");
  ASSERT_EQ(p.kind, LineKind::kInfer);
  EXPECT_EQ(p.request.seed, 42u);
}

TEST(Protocol, BlankLineIsSilentSkip) {
  const auto p = ParseRequestLine("   \t  ");
  EXPECT_EQ(p.kind, LineKind::kError);
  EXPECT_TRUE(p.error.empty());
}

TEST(Protocol, RejectsStrictly) {
  // Each of these must fail loudly (PR 5 spirit: typos never pass silently).
  const char* bad[] = {
      R"({"id":"r","words":[1],"wordz":[2]})",    // unknown field
      R"({"id":"r","words":[1],"id":"r2"})",      // duplicate key
      R"({"id":"r","words":[1]} trailing)",       // trailing garbage
      R"({"id":"r","words":[1.5]})",              // non-integer word id
      R"({"id":"r","words":[-3]})",               // negative word id
      R"({"words":[1]})",                         // missing id
      R"({"id":"","words":[1]})",                 // empty id
      R"({"id":"r"})",                            // missing words
      R"({"id":"r","words":1})",                  // words not an array
      R"({"id":"r","words":[1],"seed":"7"})",     // seed not a number
      R"(["id","r"])",                            // not an object
      R"({"id":"r","words":[1])",                 // unterminated
  };
  for (const char* line : bad) {
    const auto p = ParseRequestLine(line);
    EXPECT_EQ(p.kind, LineKind::kError) << line;
    EXPECT_FALSE(p.error.empty()) << line;
  }
}

TEST(Protocol, ControlOps) {
  const auto drain = ParseRequestLine(R"({"op":"drain","id":"c1"})");
  ASSERT_EQ(drain.kind, LineKind::kControl);
  EXPECT_EQ(drain.op, "drain");
  EXPECT_EQ(drain.id, "c1");

  const auto reload = ParseRequestLine(R"({"op":"reload"})");
  ASSERT_EQ(reload.kind, LineKind::kControl);
  EXPECT_EQ(reload.op, "reload");
  EXPECT_TRUE(reload.id.empty());

  EXPECT_EQ(ParseRequestLine(R"({"op":"restart"})").kind, LineKind::kError);
  // Control requests are just as strict: no stray fields.
  EXPECT_EQ(ParseRequestLine(R"({"op":"drain","words":[1]})").kind,
            LineKind::kError);
}

TEST(Protocol, StringEscapes) {
  const auto p = ParseRequestLine(R"({"id":"a\"b\\cA","words":[1]})");
  ASSERT_EQ(p.kind, LineKind::kInfer);
  EXPECT_EQ(p.request.id, "a\"b\\cA");
}

TEST(Protocol, FormatErrorResponse) {
  const auto line =
      FormatResponse(MakeErrorResponse("r9", "shed", "queue full"));
  EXPECT_EQ(line,
            R"({"id":"r9","ok":false,"error":"shed","detail":"queue full"})");
}

TEST(Protocol, FormatOkResponseIsStable) {
  ServeResponse r;
  r.id = "r1";
  r.ok = true;
  r.generation = 3;
  r.result.tokens = 2;
  r.result.mixture = {{4, 1, 0.5}, {9, 1, 0.25}};
  r.result.assignments = {4, 9};
  const auto line = FormatResponse(r);
  EXPECT_EQ(line,
            R"({"id":"r1","ok":true,"generation":3,"tokens":2,)"
            R"("topics":[[4,0.5],[9,0.25]],"assignments":[4,9]})");
}

TEST(Protocol, ParsesAndEchoesTrace) {
  const auto p =
      ParseRequestLine(R"({"id":"r1","words":[1],"trace":"req-7f"})");
  ASSERT_EQ(p.kind, LineKind::kInfer);
  EXPECT_EQ(p.request.trace, "req-7f");

  // The echo sits right after "id" on ok and error lines alike, so the
  // daemon and --oneshot paths stay byte-identical.
  ServeResponse ok;
  ok.id = "r1";
  ok.trace = "req-7f";
  ok.ok = true;
  ok.generation = 1;
  EXPECT_EQ(FormatResponse(ok).rfind(R"({"id":"r1","trace":"req-7f",)", 0),
            0u);
  ServeResponse err = MakeErrorResponse("r1", "shed", "queue full");
  err.trace = "req-7f";
  EXPECT_EQ(FormatResponse(err).rfind(R"({"id":"r1","trace":"req-7f",)", 0),
            0u);
  // No trace → no field.
  EXPECT_EQ(FormatResponse(MakeErrorResponse("r1", "shed", "x"))
                .find("\"trace\""),
            std::string::npos);
}

TEST(Protocol, TraceFieldIsStrict) {
  const char* bad[] = {
      R"({"id":"r","words":[1],"trace":""})",          // empty
      R"({"id":"r","words":[1],"trace":7})",           // not a string
      R"({"id":"r","words":[1],"trace":"a","trace":"b"})",  // duplicate
      R"({"op":"drain","trace":"a"})",                 // control op
  };
  for (const char* line : bad) {
    const auto p = ParseRequestLine(line);
    EXPECT_EQ(p.kind, LineKind::kError) << line;
    EXPECT_FALSE(p.error.empty()) << line;
  }
  // Over the 128-byte cap.
  const std::string long_trace(200, 'x');
  const auto p = ParseRequestLine(R"({"id":"r","words":[1],"trace":")" +
                                  long_trace + R"("})");
  EXPECT_EQ(p.kind, LineKind::kError);
}

// ------------------------------------------------------------- batcher

Ticket MakeTicket(std::string id,
                  std::function<void(ServeResponse)> done = [](auto) {}) {
  Ticket t;
  t.request.id = std::move(id);
  t.request.words = {1};
  t.done = std::move(done);
  t.enqueued = std::chrono::steady_clock::now();
  return t;
}

TEST(Batcher, FlushesOnFullBatch) {
  BatcherOptions opts;
  opts.max_batch = 3;
  opts.max_wait_ms = 60000;  // never flush on time in this test
  CoalescingBatcher b(opts);
  ASSERT_TRUE(b.Enqueue(MakeTicket("a")));
  ASSERT_TRUE(b.Enqueue(MakeTicket("b")));
  ASSERT_TRUE(b.Enqueue(MakeTicket("c")));
  const auto batch = b.NextBatch();  // must not wait: batch is full
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].request.id, "a");
  EXPECT_EQ(batch[2].request.id, "c");
}

TEST(Batcher, FlushesOnLatencyBudget) {
  BatcherOptions opts;
  opts.max_batch = 1000;  // never fills
  opts.max_wait_ms = 5;
  CoalescingBatcher b(opts);
  ASSERT_TRUE(b.Enqueue(MakeTicket("lone")));
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = b.NextBatch();
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(batch.size(), 1u);
  // A lone request flushes at the budget, not at max_batch; generous upper
  // bound for slow CI machines.
  EXPECT_LT(waited_ms, 5000.0);
}

TEST(Batcher, ShedsWhenFullAndTicketSurvives) {
  BatcherOptions opts;
  opts.max_queue = 2;
  CoalescingBatcher b(opts);
  ASSERT_TRUE(b.Enqueue(MakeTicket("a")));
  ASSERT_TRUE(b.Enqueue(MakeTicket("b")));
  bool called = false;
  Ticket shed = MakeTicket("c", [&](ServeResponse) { called = true; });
  ASSERT_FALSE(b.Enqueue(std::move(shed)));
  // On failure the caller still owns the ticket — callback included.
  ASSERT_NE(shed.done, nullptr);
  shed.done({});
  EXPECT_TRUE(called);
  EXPECT_EQ(b.pending(), 2u);
}

TEST(Batcher, ZeroCapacityShedsEverything) {
  BatcherOptions opts;
  opts.max_queue = 0;
  CoalescingBatcher b(opts);
  EXPECT_FALSE(b.Enqueue(MakeTicket("a")));
}

TEST(Batcher, CloseDrainsGracefully) {
  BatcherOptions opts;
  opts.max_batch = 2;
  CoalescingBatcher b(opts);
  ASSERT_TRUE(b.Enqueue(MakeTicket("a")));
  ASSERT_TRUE(b.Enqueue(MakeTicket("b")));
  ASSERT_TRUE(b.Enqueue(MakeTicket("c")));
  b.Close();
  EXPECT_TRUE(b.closed());
  EXPECT_FALSE(b.Enqueue(MakeTicket("late")));  // no new admissions...
  EXPECT_EQ(b.NextBatch().size(), 2u);          // ...but the queue drains
  EXPECT_EQ(b.NextBatch().size(), 1u);
  EXPECT_TRUE(b.NextBatch().empty());  // terminal: closed and empty
}

TEST(Batcher, ManyProducersOneConsumer) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_wait_ms = 1;
  CoalescingBatcher b(opts);
  constexpr int kThreads = 4, kPerThread = 50;
  std::vector<std::thread> producers;
  std::atomic<int> accepted{0};
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&b, &accepted] {
      for (int i = 0; i < kPerThread; ++i) {
        if (b.Enqueue(MakeTicket("x"))) accepted.fetch_add(1);
      }
    });
  }
  int drained = 0;
  std::thread consumer([&] {
    while (true) {
      const auto batch = b.NextBatch();
      if (batch.empty()) return;
      drained += static_cast<int>(batch.size());
    }
  });
  for (auto& t : producers) t.join();
  b.Close();
  consumer.join();
  EXPECT_EQ(drained, accepted.load());
}

// -------------------------------------------------------------- daemon

TEST(Daemon, ServesAndMatchesDirectInference) {
  const auto snap = TestSnapshot();
  ServeDaemonOptions opts;
  opts.iterations = 10;
  ServeDaemon daemon(opts, snap);

  ServeRequest req;
  req.id = "r1";
  req.words = {3, 17, 3, 40};
  req.seed = 99;
  auto future = daemon.Submit(req);
  const ServeResponse r = future.get();
  ASSERT_TRUE(r.ok) << r.error << ": " << r.detail;
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.generation, 1u);

  // Coalescing must not change results: the daemon's answer is
  // bit-identical to a direct single-document call.
  const auto direct = snap->engine().InferDocument(req.words, 10, 99);
  EXPECT_EQ(r.result.assignments, direct.assignments);
  EXPECT_EQ(r.result.tokens, direct.tokens);
}

TEST(Daemon, OutOfVocabGetsBadRequestOthersProceed) {
  ServeDaemonOptions opts;
  opts.iterations = 5;
  ServeDaemon daemon(opts, TestSnapshot());

  ServeRequest good;
  good.id = "ok";
  good.words = {1, 2};
  ServeRequest bad;
  bad.id = "oov";
  bad.words = {1, 1 << 20};
  auto fg = daemon.Submit(good);
  auto fb = daemon.Submit(bad);
  EXPECT_TRUE(fg.get().ok);
  const auto rb = fb.get();
  EXPECT_FALSE(rb.ok);
  EXPECT_EQ(rb.error, "bad_request");
}

TEST(Daemon, ShedsWithImmediateResponse) {
  ServeDaemonOptions opts;
  opts.batch.max_queue = 0;  // shed everything
  ServeDaemon daemon(opts, TestSnapshot());
  ServeRequest req;
  req.id = "r";
  req.words = {1};
  const auto r = daemon.Submit(req).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "shed");
}

TEST(Daemon, DrainAnswersQueuedThenRejectsLate) {
  ServeDaemonOptions opts;
  opts.iterations = 5;
  ServeDaemon daemon(opts, TestSnapshot());
  std::vector<std::future<ServeResponse>> inflight;
  for (int i = 0; i < 20; ++i) {
    ServeRequest req;
    req.id = "q" + std::to_string(i);
    req.words = {static_cast<uint32_t>(i % 50)};
    inflight.push_back(daemon.Submit(req));
  }
  daemon.Drain();
  for (auto& f : inflight) {
    const auto r = f.get();  // every admitted request is answered
    EXPECT_TRUE(r.ok) << r.error;
  }
  ServeRequest late;
  late.id = "late";
  late.words = {1};
  const auto r = daemon.Submit(late).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "draining");
  EXPECT_TRUE(daemon.draining());
}

TEST(Daemon, NullInitialSnapshotShedsUntilPublish) {
  ServeDaemonOptions opts;
  opts.batch.max_wait_ms = 1;
  ServeDaemon daemon(opts, nullptr);
  ServeRequest req;
  req.id = "early";
  req.words = {1};
  const auto r = daemon.Submit(req).get();
  EXPECT_FALSE(r.ok);

  daemon.Publish(TestSnapshot());
  ServeRequest req2;
  req2.id = "after";
  req2.words = {1};
  EXPECT_TRUE(daemon.Submit(req2).get().ok);
}

TEST(Daemon, PublishSwapsGeneration) {
  ServeDaemonOptions opts;
  opts.iterations = 5;
  ServeDaemon daemon(opts, TestSnapshot(1));
  ServeRequest req;
  req.id = "a";
  req.words = {2, 3};
  EXPECT_EQ(daemon.Submit(req).get().generation, 1u);

  const auto prev = daemon.Publish(TestSnapshot(2, 8));
  EXPECT_EQ(prev->generation(), 1u);  // returned, not destroyed
  EXPECT_EQ(daemon.Current()->generation(), 2u);
  ServeRequest req2;
  req2.id = "b";
  req2.words = {2, 3};
  EXPECT_EQ(daemon.Submit(req2).get().generation, 2u);
}

TEST(Daemon, RequestSpansShareOneTraceAndLinkTheBatch) {
  obs::SpanTracer& tracer = obs::SpanTracer::Global();
  tracer.Reset();
  tracer.set_enabled(true);
  uint64_t want_trace = 0;
  {
    ServeDaemonOptions opts;
    opts.iterations = 5;
    ServeDaemon daemon(opts, TestSnapshot());

    ServeRequest req;
    req.id = "traced";
    req.words = {1, 2, 3};
    req.trace_ctx = obs::NewRequestContext("client-trace-1");
    want_trace = req.trace_ctx.trace_id;
    ASSERT_TRUE(daemon.Submit(req).get().ok);
  }
  // Collect only after the daemon is destroyed: the response future is
  // fulfilled *before* the dispatcher records the respond/batch spans, so
  // reading the tracer right after .get() races the dispatch thread. The
  // destructor joins it, making the event list complete.
  //
  // The request's life — queue wait, inference, respond — shares the
  // request's trace id, and the queue/infer spans carry a link into the
  // shared batch span (which has its own trace).
  const auto events = tracer.CollectEvents();
  uint64_t batch_trace = 0;
  bool saw_queue = false, saw_infer = false, saw_respond = false;
  for (const auto& e : events) {
    if (e.name == "serve/batch") batch_trace = e.ctx.trace_id;
  }
  EXPECT_NE(batch_trace, 0u);
  for (const auto& e : events) {
    if (e.name == "serve/queue_wait") {
      saw_queue = true;
      EXPECT_EQ(e.ctx.trace_id, want_trace);
      EXPECT_NE(e.link_span_id, 0u);
    }
    if (e.name == "serve/infer") {
      saw_infer = true;
      EXPECT_EQ(e.ctx.trace_id, want_trace);
      EXPECT_NE(e.link_span_id, 0u);
    }
    if (e.name == "serve/respond") {
      saw_respond = true;
      EXPECT_EQ(e.ctx.trace_id, want_trace);
    }
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_infer);
  EXPECT_TRUE(saw_respond);
  tracer.set_enabled(false);
  tracer.Reset();
}

TEST(Daemon, SubmitMintsContextWhenFrontendDidNot) {
  obs::SpanTracer& tracer = obs::SpanTracer::Global();
  tracer.Reset();
  tracer.set_enabled(true);
  {
    ServeDaemonOptions opts;
    opts.iterations = 5;
    ServeDaemon daemon(opts, TestSnapshot());
    ServeRequest req;
    req.id = "embedded";
    req.words = {1};
    ASSERT_TRUE(daemon.Submit(req).get().ok);  // no ctx pre-minted
  }
  // Collected after the destructor joins the dispatcher (span recording
  // races the fulfilled future otherwise).
  bool saw_infer = false;
  for (const auto& e : tracer.CollectEvents()) {
    if (e.name == "serve/infer") {
      saw_infer = true;
      EXPECT_NE(e.ctx.trace_id, 0u);
    }
  }
  EXPECT_TRUE(saw_infer);
  tracer.set_enabled(false);
  tracer.Reset();
}

TEST(Daemon, SlowRequestThresholdCountsAndRecords) {
  obs::Metrics().ResetValues();
  obs::Metrics().set_enabled(true);
  obs::FlightRecorder::Global().Clear();
  obs::FlightRecorder::Global().set_enabled(true);
  {
    ServeDaemonOptions opts;
    opts.iterations = 5;
    opts.slow_request_s = 1e-12;  // everything is "slow"
    ServeDaemon daemon(opts, TestSnapshot());
    ServeRequest req;
    req.id = "slow";
    req.words = {1, 2};
    ASSERT_TRUE(daemon.Submit(req).get().ok);
  }
  EXPECT_GE(obs::Metrics().GetCounter("serve.slow_requests").value(), 1u);
  EXPECT_GE(obs::FlightRecorder::Global().recorded(), 1u);
  obs::FlightRecorder::Global().set_enabled(false);
  obs::FlightRecorder::Global().Clear();
  obs::Metrics().set_enabled(false);
  obs::Metrics().ResetValues();
}

TEST(Daemon, StatsPayloadCarriesPerEndpointHistograms) {
  obs::Metrics().ResetValues();
  obs::Metrics().set_enabled(true);
  {
    ServeDaemonOptions opts;
    opts.iterations = 5;
    ServeDaemon daemon(opts, TestSnapshot());
    ServeRequest req;
    req.id = "h";
    req.words = {1};
    ASSERT_TRUE(daemon.Submit(req).get().ok);
    const std::string payload = daemon.StatsPayloadJson();
    EXPECT_NE(payload.find("\"schema\":\"culda.metrics.v3\""),
              std::string::npos);
    EXPECT_NE(payload.find("\"pending\""), std::string::npos);
    EXPECT_NE(payload.find("\"draining\""), std::string::npos);
    // The per-endpoint labeled histogram with its percentile summary.
    EXPECT_NE(payload.find("\"serve.request.latency{op=infer}\""),
              std::string::npos);
    EXPECT_NE(payload.find("\"p99\""), std::string::npos);
  }
  obs::Metrics().set_enabled(false);
  obs::Metrics().ResetValues();
}

// ------------------------------------------------------------ frontend

/// Runs RunLineFrontend over pipes: `input` in, captured stdout-side out.
std::vector<std::string> RunFrontend(ServeDaemon& daemon,
                                     const std::string& input,
                                     const ReloadFn& reload,
                                     FrontendResult* result = nullptr) {
  int in_pipe[2], out_pipe[2];
  EXPECT_EQ(pipe(in_pipe), 0);
  EXPECT_EQ(pipe(out_pipe), 0);
  std::thread feeder([&] {
    size_t off = 0;
    while (off < input.size()) {
      const ssize_t n =
          write(in_pipe[1], input.data() + off, input.size() - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    close(in_pipe[1]);
  });
  FrontendOptions fopts;
  fopts.poll_interval_ms = 5;
  const FrontendResult fr =
      RunLineFrontend(daemon, in_pipe[0], out_pipe[1], reload, fopts);
  if (result != nullptr) *result = fr;
  feeder.join();
  close(in_pipe[0]);
  // Responses may still be in flight on the dispatch thread; drain before
  // reading so the writer's last line is out.
  daemon.Drain();
  close(out_pipe[1]);
  std::string all;
  char buf[4096];
  ssize_t n;
  while ((n = read(out_pipe[0], buf, sizeof buf)) > 0) {
    all.append(buf, static_cast<size_t>(n));
  }
  close(out_pipe[0]);
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i] == '\n') {
      lines.push_back(all.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

TEST(Frontend, ServesParsesAndAnswersControl) {
  const auto snap = TestSnapshot();
  ServeDaemonOptions opts;
  opts.iterations = 5;
  ServeDaemon daemon(opts, snap);
  int reloads = 0;
  const ReloadFn reload = [&]() -> core::SnapshotPtr {
    ++reloads;
    return TestSnapshot(2);
  };
  FrontendResult fr;
  const auto lines = RunFrontend(daemon,
                                 "{\"id\":\"a\",\"words\":[1,2]}\n"
                                 "not json\n"
                                 "{\"op\":\"reload\",\"id\":\"c\"}\n"
                                 "{\"id\":\"b\",\"words\":[1,2]}\n"
                                 "{\"op\":\"drain\",\"id\":\"d\"}\n",
                                 reload, &fr);
  EXPECT_TRUE(fr.drain_requested);
  EXPECT_EQ(reloads, 1);
  ASSERT_EQ(lines.size(), 5u);
  int ok = 0, bad = 0, gen2 = 0;
  for (const auto& l : lines) {
    if (l.find("\"ok\":true") != std::string::npos) ++ok;
    if (l.find("\"bad_request\"") != std::string::npos) ++bad;
    if (l.find("\"generation\":2") != std::string::npos) ++gen2;
  }
  EXPECT_EQ(ok, 4);   // a, b, reload ack, drain ack
  EXPECT_EQ(bad, 1);  // the non-JSON line
  // The reload ack reports generation 2; request b (after the swap) must
  // be served by it too.
  EXPECT_GE(gen2, 2);
}

TEST(Frontend, ReloadFailureKeepsServing) {
  ServeDaemonOptions opts;
  opts.iterations = 5;
  ServeDaemon daemon(opts, TestSnapshot());
  const ReloadFn reload = []() -> core::SnapshotPtr {
    throw Error("model file corrupted");
  };
  const auto lines = RunFrontend(daemon,
                                 "{\"op\":\"reload\",\"id\":\"c\"}\n"
                                 "{\"id\":\"a\",\"words\":[1]}\n",
                                 reload);
  ASSERT_EQ(lines.size(), 2u);
  int reload_failed = 0, ok = 0;
  for (const auto& l : lines) {
    if (l.find("\"reload_failed\"") != std::string::npos) ++reload_failed;
    if (l.find("\"ok\":true") != std::string::npos) ++ok;
  }
  EXPECT_EQ(reload_failed, 1);
  EXPECT_EQ(ok, 1);  // the old generation keeps serving
  EXPECT_EQ(daemon.Current()->generation(), 1u);
}

int ConnectUnixSocketForTest(const std::string& path) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    close(fd);
    return -1;
  }
  path.copy(addr.sun_path, path.size());
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

TEST(Frontend, SocketServesConcurrentClients) {
  const auto snap = TestSnapshot();
  ServeDaemonOptions opts;
  opts.iterations = 5;
  ServeDaemon daemon(opts, snap);
  const std::string path =
      testing::TempDir() + "culda_serve_test_" +
      std::to_string(static_cast<unsigned>(getpid())) + ".sock";
  FrontendOptions fopts;
  fopts.poll_interval_ms = 5;
  SocketFrontend listener(daemon, path, nullptr, fopts);
  std::thread server([&] { listener.Run(); });

  auto client = [&](int id) {
    // Tiny blocking client: connect, one request, read one line.
    struct Result {
      bool ok = false;
    };
    int fd = -1;
    for (int attempt = 0; attempt < 100 && fd < 0; ++attempt) {
      fd = ConnectUnixSocketForTest(path);
      if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(fd, 0);
    const std::string req = "{\"id\":\"c" + std::to_string(id) +
                            "\",\"words\":[1,2,3]}\n";
    ASSERT_EQ(write(fd, req.data(), req.size()),
              static_cast<ssize_t>(req.size()));
    std::string line;
    char c;
    while (read(fd, &c, 1) == 1 && c != '\n') line.push_back(c);
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
    close(fd);
  };
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) clients.emplace_back(client, i);
  for (auto& t : clients) t.join();
  listener.Stop();
  server.join();
}

}  // namespace
}  // namespace culda::serve
