// Unit tests for the single-device simulator: memory ledger, shared memory,
// launch mechanics, counters, cost model, streams and transfers.
#include <gtest/gtest.h>

#include <atomic>

#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/warp.hpp"
#include "util/check.hpp"

namespace culda::gpusim {
namespace {

DeviceSpec TinySpec() {
  DeviceSpec s = TitanXMaxwell();
  s.memory_bytes = 1 << 20;  // 1 MiB, to make OOM easy to hit
  return s;
}

// ----------------------------------------------------------------- specs --

TEST(DeviceSpec, PresetsMatchTable2) {
  EXPECT_DOUBLE_EQ(TitanXMaxwell().peak_bandwidth_gbps, 336.0);
  EXPECT_DOUBLE_EQ(TitanXpPascal().peak_bandwidth_gbps, 550.0);
  EXPECT_DOUBLE_EQ(V100Volta().peak_bandwidth_gbps, 900.0);
  EXPECT_EQ(TitanXMaxwell().sm_count, 24);
  EXPECT_EQ(V100Volta().sm_count, 80);
}

TEST(DeviceSpec, XeonMatchesSection3) {
  const DeviceSpec cpu = XeonCpu();
  EXPECT_DOUBLE_EQ(cpu.peak_gflops, 470.0);
  EXPECT_DOUBLE_EQ(cpu.peak_bandwidth_gbps, 51.2);
}

TEST(DeviceSpec, LookupByName) {
  EXPECT_EQ(SpecByName("titan").arch, Arch::kMaxwell);
  EXPECT_EQ(SpecByName("pascal").arch, Arch::kPascal);
  EXPECT_EQ(SpecByName("volta").arch, Arch::kVolta);
  EXPECT_EQ(SpecByName("cpu").arch, Arch::kCpu);
  EXPECT_THROW(SpecByName("tpu"), Error);
}

TEST(DeviceSpec, EffectiveBandwidthOrdering) {
  // The Figure 7 cross-architecture ordering must hold in the model.
  EXPECT_LT(TitanXMaxwell().EffectiveBandwidthBps(),
            TitanXpPascal().EffectiveBandwidthBps());
  EXPECT_LT(TitanXpPascal().EffectiveBandwidthBps(),
            V100Volta().EffectiveBandwidthBps());
  EXPECT_LT(XeonCpu().EffectiveBandwidthBps(),
            TitanXMaxwell().EffectiveBandwidthBps());
}

TEST(LinkSpec, TransferTimeIsLatencyPlusBandwidth) {
  const LinkSpec pcie = Pcie3x16();
  const double t = pcie.TransferSeconds(16ull << 30);
  EXPECT_NEAR(t, 1.0 + 10e-6, 0.1);  // 16 GiB over 16 GB/s ≈ 1 s
  EXPECT_NEAR(pcie.TransferSeconds(0), 10e-6, 1e-9);
}

TEST(LinkSpec, EthernetIsMuchSlowerThanPcie) {
  const uint64_t bytes = 100 << 20;
  EXPECT_GT(Ethernet10G().TransferSeconds(bytes),
            10 * Pcie3x16().TransferSeconds(bytes));
}

// ---------------------------------------------------------------- memory --

TEST(DeviceMemory, ChargesAndReleases) {
  Device dev(TinySpec(), 0);
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  {
    auto buf = dev.Alloc<uint32_t>(1000, "test");
    EXPECT_EQ(dev.allocated_bytes(), 4000u);
    EXPECT_EQ(buf.size(), 1000u);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(DeviceMemory, OutOfMemoryThrows) {
  Device dev(TinySpec(), 0);
  EXPECT_THROW(dev.Alloc<uint8_t>(2 << 20, "too big"), Error);
}

TEST(DeviceMemory, OomMessageNamesTheTag) {
  Device dev(TinySpec(), 0);
  try {
    dev.Alloc<uint8_t>(2 << 20, "phi_replica");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("phi_replica"), std::string::npos);
  }
}

TEST(DeviceMemory, MoveTransfersOwnership) {
  Device dev(TinySpec(), 0);
  auto a = dev.Alloc<uint64_t>(100, "a");
  auto b = std::move(a);
  EXPECT_EQ(dev.allocated_bytes(), 800u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  b.Free();
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(DeviceMemory, FreeIsIdempotent) {
  Device dev(TinySpec(), 0);
  auto a = dev.Alloc<uint8_t>(64, "a");
  a.Free();
  a.Free();
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(DeviceMemory, BuffersAreWritable) {
  Device dev(TinySpec(), 0);
  auto buf = dev.Alloc<int>(10, "b");
  for (size_t i = 0; i < 10; ++i) buf[i] = static_cast<int>(i * i);
  EXPECT_EQ(buf[7], 49);
}

// --------------------------------------------------------- shared memory --

TEST(SharedMemory, BumpAllocates) {
  SharedMemory shm(1024);
  auto a = shm.Alloc<float>(64);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(shm.used(), 256u);
}

TEST(SharedMemory, ExhaustionThrows) {
  SharedMemory shm(256);
  shm.Alloc<float>(60);
  EXPECT_THROW(shm.Alloc<float>(10), Error);
}

TEST(SharedMemory, ResetReclaimsEverything) {
  SharedMemory shm(256);
  shm.Alloc<float>(64);
  shm.Reset();
  EXPECT_EQ(shm.used(), 0u);
  EXPECT_NO_THROW(shm.Alloc<float>(64));
}

TEST(SharedMemory, HighWaterTracksPeak) {
  SharedMemory shm(1024);
  shm.Alloc<float>(100);
  shm.Reset();
  shm.Alloc<float>(10);
  EXPECT_EQ(shm.high_water(), 400u);
}

TEST(SharedMemory, AlignmentRespected) {
  SharedMemory shm(1024);
  shm.Alloc<char>(3);
  auto d = shm.Alloc<double>(1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d.data()) % alignof(double), 0u);
}

// ---------------------------------------------------------------- launch --

TEST(Launch, RunsEveryBlockOnce) {
  Device dev(TitanXMaxwell(), 0);
  std::vector<int> hits(37, 0);
  dev.Launch("k", {37, 32},
             [&](BlockContext& ctx) { ++hits[ctx.block_id()]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Launch, CountersAggregateAcrossBlocks) {
  Device dev(TitanXMaxwell(), 0);
  const auto rec = dev.Launch("k", {10, 64}, [&](BlockContext& ctx) {
    ctx.ReadGlobal(100);
    ctx.WriteGlobal(50);
    ctx.Flops(7);
  });
  EXPECT_EQ(rec.counters.global_read_bytes, 1000u);
  EXPECT_EQ(rec.counters.global_write_bytes, 500u);
  EXPECT_EQ(rec.counters.flops, 70u);
  EXPECT_EQ(rec.counters.blocks, 10u);
  EXPECT_EQ(rec.counters.warps, 20u);
}

TEST(Launch, BlockDimMustBeWarpMultiple) {
  Device dev(TitanXMaxwell(), 0);
  EXPECT_THROW(dev.Launch("k", {1, 33}, [](BlockContext&) {}), Error);
}

TEST(Launch, BlockDimLimitEnforced) {
  Device dev(TitanXMaxwell(), 0);
  EXPECT_THROW(dev.Launch("k", {1, 2048}, [](BlockContext&) {}), Error);
}

TEST(Launch, AdvancesStreamClock) {
  Device dev(TitanXMaxwell(), 0);
  const double before = dev.Now();
  dev.Launch("k", {1, 32}, [&](BlockContext& ctx) { ctx.ReadGlobal(1 << 20); });
  EXPECT_GT(dev.Now(), before);
}

TEST(Launch, SimTimeScalesWithTraffic) {
  Device dev(TitanXMaxwell(), 0);
  const auto small = dev.Launch("k", {1, 32}, [&](BlockContext& ctx) {
    ctx.ReadGlobal(10 << 20);
  });
  const auto big = dev.Launch("k", {1, 32}, [&](BlockContext& ctx) {
    ctx.ReadGlobal(100 << 20);
  });
  EXPECT_GT(big.time.total_s, 5 * small.time.total_s);
}

TEST(Launch, AtomicAddIsFunctionalAndBilled) {
  Device dev(TitanXMaxwell(), 0);
  uint32_t target = 0;
  const auto rec = dev.Launch("k", {8, 32}, [&](BlockContext& ctx) {
    for (int i = 0; i < 100; ++i) ctx.AtomicAdd(target, 1u);
  });
  EXPECT_EQ(target, 800u);
  EXPECT_EQ(rec.counters.atomic_ops, 800u);
}

TEST(Launch, ParallelPoolMatchesSequential) {
  ThreadPool pool(4);
  Device seq(TitanXMaxwell(), 0);
  Device par(TitanXMaxwell(), 1, &pool);
  std::atomic<uint64_t> sum_par{0};
  uint64_t sum_seq = 0;
  seq.Launch("k", {64, 32},
             [&](BlockContext& ctx) { sum_seq += ctx.block_id(); });
  const auto rec_par = par.Launch("k", {64, 32}, [&](BlockContext& ctx) {
    sum_par.fetch_add(ctx.block_id());
    ctx.ReadGlobal(10);
  });
  EXPECT_EQ(sum_seq, sum_par.load());
  EXPECT_EQ(rec_par.counters.global_read_bytes, 640u);
}

TEST(Launch, ProfileAccumulates) {
  Device dev(TitanXMaxwell(), 0);
  dev.Launch("a", {1, 32}, [](BlockContext& ctx) { ctx.ReadGlobal(8); });
  dev.Launch("a", {1, 32}, [](BlockContext& ctx) { ctx.ReadGlobal(8); });
  dev.Launch("b", {1, 32}, [](BlockContext&) {});
  EXPECT_EQ(dev.profile().at("a").launches, 2u);
  EXPECT_EQ(dev.profile().at("a").counters.global_read_bytes, 16u);
  EXPECT_EQ(dev.profile().at("b").launches, 1u);
}

TEST(Launch, SharedMemoryIsPerBlock) {
  Device dev(TitanXMaxwell(), 0);
  dev.Launch("k", {5, 32}, [&](BlockContext& ctx) {
    // Each block should get a fresh arena.
    auto span = ctx.shared().Alloc<float>(1000);
    EXPECT_EQ(span.size(), 1000u);
  });
}

// ------------------------------------------------------------ cost model --

TEST(CostModel, MemoryBoundKernelBilledAtBandwidth) {
  const DeviceSpec spec = V100Volta();
  CostModel model(spec);
  KernelCounters c;
  c.global_read_bytes = 1 << 30;
  const auto t = model.KernelTime(c);
  EXPECT_NEAR(t.dram_s, (1 << 30) / spec.EffectiveBandwidthBps(), 1e-9);
  EXPECT_GT(t.total_s, t.dram_s * 0.99);
}

TEST(CostModel, ComputeBoundKernelBilledAtFlops) {
  CostModel model(V100Volta());
  KernelCounters c;
  c.flops = 1ull << 40;
  c.global_read_bytes = 1;  // negligible
  const auto t = model.KernelTime(c);
  EXPECT_GT(t.compute_s, t.dram_s * 100);
  EXPECT_NEAR(t.total_s, t.compute_s + t.overhead_s, t.total_s * 1e-6);
}

TEST(CostModel, AtomicsCanDominate) {
  CostModel model(TitanXMaxwell());
  KernelCounters c;
  c.atomic_ops = 1ull << 30;
  const auto t = model.KernelTime(c);
  EXPECT_GT(t.atomic_s, 0.3);
  EXPECT_GE(t.total_s, t.atomic_s);
}

TEST(CostModel, MemDerateScalesDramTime) {
  CostModel model(TitanXpPascal());
  KernelCounters c;
  c.global_read_bytes = 1 << 30;
  const auto full = model.KernelTime(c, 1.0);
  const auto half = model.KernelTime(c, 0.5);
  EXPECT_NEAR(half.dram_s, 2 * full.dram_s, full.dram_s * 1e-9);
}

TEST(Launch, MemDerateValidated) {
  Device dev(TitanXMaxwell(), 0);
  LaunchConfig bad{1, 32, 0.0};
  EXPECT_THROW(dev.Launch("k", bad, [](BlockContext&) {}), Error);
  LaunchConfig bad2{1, 32, 1.5};
  EXPECT_THROW(dev.Launch("k", bad2, [](BlockContext&) {}), Error);
}

TEST(Launch, MemDerateSlowsKernel) {
  Device dev(TitanXMaxwell(), 0);
  auto body = [](BlockContext& ctx) { ctx.ReadGlobal(100 << 20); };
  const auto fast = dev.Launch("k", {1, 32, 1.0}, body);
  const auto slow = dev.Launch("k", {1, 32, 0.25}, body);
  EXPECT_GT(slow.time.total_s, 3 * fast.time.total_s);
}

TEST(CostModel, LaunchOverheadFloorsTinyKernels) {
  const DeviceSpec spec = TitanXMaxwell();
  CostModel model(spec);
  const auto t = model.KernelTime(KernelCounters{});
  EXPECT_GE(t.total_s, spec.kernel_launch_us * 1e-6 * 0.99);
}

TEST(CostModel, FlopsPerByteMatchesRoofline) {
  KernelCounters c;
  c.flops = 27;
  c.global_read_bytes = 60;
  c.l1_read_bytes = 20;
  c.global_write_bytes = 20;
  EXPECT_NEAR(c.FlopsPerByte(), 0.27, 1e-9);
}

// --------------------------------------------------------------- streams --

TEST(Streams, IndependentClocks) {
  Device dev(TitanXMaxwell(), 0);
  dev.Launch("k", {1, 32},
             [](BlockContext& ctx) { ctx.ReadGlobal(100 << 20); },
             &dev.stream(0));
  EXPECT_GT(dev.stream(0).ready_time(), 0.0);
  EXPECT_EQ(dev.stream(1).ready_time(), 0.0);
}

TEST(Streams, WaitUntilOnlyMovesForward) {
  Device dev(TitanXMaxwell(), 0);
  dev.stream(0).WaitUntil(1.0);
  dev.stream(0).WaitUntil(0.5);
  EXPECT_DOUBLE_EQ(dev.stream(0).ready_time(), 1.0);
}

TEST(Streams, SynchronizeAlignsAllStreams) {
  Device dev(TitanXMaxwell(), 0);
  dev.stream(2).WaitUntil(3.0);
  const double t = dev.Synchronize();
  EXPECT_DOUBLE_EQ(t, 3.0);
  EXPECT_DOUBLE_EQ(dev.stream(0).ready_time(), 3.0);
  EXPECT_DOUBLE_EQ(dev.stream(1).ready_time(), 3.0);
}

TEST(Streams, OverlapReducesTotalTime) {
  // Two equal kernels on separate streams finish in ~half the serial time.
  auto run = [](bool overlap) {
    Device dev(TitanXMaxwell(), 0);
    auto body = [](BlockContext& ctx) { ctx.ReadGlobal(200 << 20); };
    dev.Launch("a", {1, 32}, body, &dev.stream(0));
    dev.Launch("b", {1, 32}, body, overlap ? &dev.stream(1) : &dev.stream(0));
    return dev.Now();
  };
  EXPECT_LT(run(true), 0.6 * run(false));
}

TEST(Transfers, BilledOverHostLink) {
  Device dev(TitanXMaxwell(), 0);
  auto buf = dev.Alloc<uint8_t>(16 << 20, "x");
  std::vector<uint8_t> host(16 << 20, 7);
  dev.CopyIn(buf, std::span<const uint8_t>(host));
  EXPECT_EQ(buf[12345], 7);
  // 16 MiB over 16 GB/s ≈ 1.05 ms.
  EXPECT_NEAR(dev.Now(), 16.78e6 / 16e9, 3e-4);
  EXPECT_EQ(dev.transfer_bytes(), 16u << 20);
}

TEST(Transfers, CopyOutMovesDataBack) {
  Device dev(TitanXMaxwell(), 0);
  auto buf = dev.Alloc<int>(4, "x");
  buf[0] = 1; buf[1] = 2; buf[2] = 3; buf[3] = 4;
  std::vector<int> host(4, 0);
  dev.CopyOut(std::span<int>(host), buf);
  EXPECT_EQ(host, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Transfers, ResetTimeRewindsClock) {
  Device dev(TitanXMaxwell(), 0);
  dev.RecordTransfer(1 << 20, "h2d");
  EXPECT_GT(dev.Now(), 0.0);
  dev.ResetTime();
  EXPECT_DOUBLE_EQ(dev.Now(), 0.0);
}

// ------------------------------------------------------------------ warp --

TEST(Warp, InclusiveScan) {
  Device dev(TitanXMaxwell(), 0);
  dev.Launch("k", {1, 32}, [](BlockContext& ctx) {
    WarpLanes<int> lanes;
    for (uint32_t i = 0; i < kWarpSize; ++i) lanes[i] = 1;
    WarpInclusiveScan(ctx, lanes);
    for (uint32_t i = 0; i < kWarpSize; ++i) {
      EXPECT_EQ(lanes[i], static_cast<int>(i + 1));
    }
  });
}

TEST(Warp, Reduce) {
  Device dev(TitanXMaxwell(), 0);
  dev.Launch("k", {1, 32}, [](BlockContext& ctx) {
    WarpLanes<int> lanes;
    for (uint32_t i = 0; i < kWarpSize; ++i) lanes[i] = static_cast<int>(i);
    EXPECT_EQ(WarpReduce(ctx, lanes), 496);
  });
}

TEST(Warp, FindFirst) {
  Device dev(TitanXMaxwell(), 0);
  dev.Launch("k", {1, 32}, [](BlockContext& ctx) {
    WarpLanes<bool> lanes{};
    lanes[13] = true;
    lanes[20] = true;
    EXPECT_EQ(WarpFindFirst(ctx, lanes), 13u);
    WarpLanes<bool> none{};
    EXPECT_EQ(WarpFindFirst(ctx, none), kWarpSize);
  });
}

}  // namespace
}  // namespace culda::gpusim
