// Tests for the partition-by-word trainer (the Section 4 rejected design)
// and the word-range chunk substrate behind it.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "core/word_partition.hpp"
#include "corpus/synthetic.hpp"
#include "corpus/word_first.hpp"

namespace culda::core {
namespace {

corpus::Corpus TestCorpus(uint64_t docs = 300) {
  corpus::SyntheticProfile p;
  p.num_docs = docs;
  p.vocab_size = 400;
  p.avg_doc_length = 45;
  return corpus::GenerateCorpus(p);
}

CuldaConfig TestConfig() {
  CuldaConfig cfg;
  cfg.num_topics = 24;
  return cfg;
}

// ------------------------------------------------------ word-range chunks

TEST(WordRangePartition, CoversVocabularyContiguously) {
  const auto c = TestCorpus();
  for (const uint32_t chunks : {1u, 2u, 3u, 4u, 7u}) {
    const auto ranges = corpus::PartitionWordsByTokens(c, chunks);
    ASSERT_EQ(ranges.size(), chunks);
    EXPECT_EQ(ranges.front().word_begin, 0u);
    EXPECT_EQ(ranges.back().word_end, c.vocab_size());
    uint64_t tokens = 0;
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (i > 0) {
        EXPECT_EQ(ranges[i].word_begin, ranges[i - 1].word_end);
      }
      tokens += ranges[i].num_tokens;
    }
    EXPECT_EQ(tokens, c.num_tokens());
  }
}

TEST(WordRangePartition, BalancedByTokensDespiteZipf) {
  const auto c = TestCorpus(1500);
  const auto ranges = corpus::PartitionWordsByTokens(c, 4);
  // Zipf head: the first range will hold few words but ~1/4 of tokens.
  const double ideal = static_cast<double>(c.num_tokens()) / 4;
  for (const auto& r : ranges) {
    EXPECT_LT(std::abs(static_cast<double>(r.num_tokens) - ideal),
              ideal * 0.8)
        << "range " << r.id;
  }
  EXPECT_LT(ranges.front().word_end - ranges.front().word_begin,
            c.vocab_size() / 4);
}

TEST(WordRangeChunk, LayoutCoversExactlyTheRangeTokens) {
  const auto c = TestCorpus();
  const auto ranges = corpus::PartitionWordsByTokens(c, 3);
  uint64_t covered = 0;
  std::vector<bool> seen(c.num_tokens(), false);
  for (const auto& range : ranges) {
    const auto chunk = corpus::BuildWordRangeChunk(c, range);
    EXPECT_EQ(chunk.num_tokens(), range.num_tokens);
    for (uint64_t t = 0; t < chunk.num_tokens(); ++t) {
      const uint32_t w = chunk.token_word[t];
      EXPECT_GE(w, range.word_begin);
      EXPECT_LT(w, range.word_end);
      EXPECT_EQ(c.words()[chunk.token_global[t]], w);
      EXPECT_FALSE(seen[chunk.token_global[t]]);
      seen[chunk.token_global[t]] = true;
    }
    covered += chunk.num_tokens();
  }
  EXPECT_EQ(covered, c.num_tokens());
}

TEST(WordRangeChunk, DocMapIndexesLocalTokensByDocument) {
  const auto c = TestCorpus();
  const auto range = corpus::PartitionWordsByTokens(c, 2)[1];
  const auto chunk = corpus::BuildWordRangeChunk(c, range);
  ASSERT_EQ(chunk.doc_map_offsets.size(), c.num_docs() + 1);
  for (size_t d = 0; d < c.num_docs(); ++d) {
    for (uint64_t i = chunk.doc_map_offsets[d];
         i < chunk.doc_map_offsets[d + 1]; ++i) {
      EXPECT_EQ(chunk.token_doc[chunk.doc_map[i]], d);
    }
  }
}

// ----------------------------------------------------------- the trainer

TEST(WordPartitionTrainer, ModelInvariantsHold) {
  const auto c = TestCorpus();
  WordPartitionTrainer trainer(c, TestConfig(),
                               {gpusim::TitanXpPascal(),
                                gpusim::TitanXpPascal()});
  trainer.Train(3);
  trainer.Gather().Validate(c);
}

TEST(WordPartitionTrainer, BitIdenticalToDocPartition) {
  // The headline property: both policies implement the same sampler over
  // the same global state, so the models must match exactly — which makes
  // the A4 cost comparison apples-to-apples.
  const auto c = TestCorpus();
  const auto cfg = TestConfig();

  TrainerOptions doc_opts;
  doc_opts.gpus.assign(3, gpusim::TitanXpPascal());
  CuldaTrainer by_doc(c, cfg, doc_opts);
  WordPartitionTrainer by_word(
      c, cfg,
      {gpusim::TitanXpPascal(), gpusim::TitanXpPascal(),
       gpusim::TitanXpPascal()});
  by_doc.Train(4);
  by_word.Train(4);

  const auto a = by_doc.Gather();
  const auto b = by_word.Gather();
  ASSERT_EQ(a.phi.flat().size(), b.phi.flat().size());
  for (size_t i = 0; i < a.phi.flat().size(); ++i) {
    ASSERT_EQ(a.phi.flat()[i], b.phi.flat()[i]) << "phi cell " << i;
  }
  EXPECT_EQ(a.nk, b.nk);
  ASSERT_EQ(a.theta.nnz(), b.theta.nnz());
  for (size_t i = 0; i < a.theta.nnz(); ++i) {
    ASSERT_EQ(a.theta.values()[i], b.theta.values()[i]);
  }
}

TEST(WordPartitionTrainer, LogLikelihoodImproves) {
  const auto c = TestCorpus();
  WordPartitionTrainer trainer(c, TestConfig(), {gpusim::V100Volta()});
  const double before = trainer.LogLikelihoodPerToken();
  trainer.Train(5);
  EXPECT_GT(trainer.LogLikelihoodPerToken(), before);
}

TEST(WordPartitionTrainer, ThetaSyncCostsMoreThanPhiSync) {
  // The Section 4 argument, measured: per-iteration sync volume and time of
  // partition-by-word vs partition-by-document on identical hardware.
  // (At bench scale D/V is ~50× smaller than the real corpora, so the
  // *volume* gap is modest here — the full-scale gap is in the A4 bench.)
  corpus::SyntheticProfile p;
  p.num_docs = 3000;  // push D up to make the θ side realistic
  p.vocab_size = 500;
  p.avg_doc_length = 40;
  const auto c = corpus::GenerateCorpus(p);
  const auto cfg = TestConfig();

  TrainerOptions doc_opts;
  doc_opts.gpus.assign(4, gpusim::TitanXpPascal());
  CuldaTrainer by_doc(c, cfg, doc_opts);
  WordPartitionTrainer by_word(
      c, cfg, std::vector<gpusim::DeviceSpec>(4, gpusim::TitanXpPascal()));

  double doc_sync = 0, word_sync = 0;
  for (int i = 0; i < 3; ++i) {
    doc_sync += by_doc.Step().sync_s;
    word_sync += by_word.Step().sync_s;
  }
  EXPECT_GT(word_sync, doc_sync);
  EXPECT_GT(by_word.last_theta_sync_bytes(), 0u);
}

TEST(WordPartitionTrainer, SingleGpuHasNoSync) {
  const auto c = TestCorpus();
  WordPartitionTrainer trainer(c, TestConfig(), {gpusim::V100Volta()});
  const auto st = trainer.Step();
  EXPECT_EQ(trainer.last_theta_sync_bytes(), 0u);
  EXPECT_GT(st.sampling_s, 0.0);
}

}  // namespace
}  // namespace culda::core
