// ModelSnapshot / SnapshotSlot tests, including the concurrent hot-swap
// stress case: client threads infer through a ServeDaemon while a writer
// thread absorbs new documents and publishes fresh generations. Every
// response must be bit-identical to a direct InferDocument against the
// exact snapshot generation that served it — i.e. no torn reads, no
// serving from a half-swapped model. CI runs this under
// -DCULDA_SANITIZE=thread (the `metrics` label).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "core/snapshot.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "serve/server.hpp"

namespace culda::core {
namespace {

corpus::Corpus TestCorpus(uint64_t docs = 150) {
  corpus::SyntheticProfile p;
  p.num_docs = docs;
  p.vocab_size = 250;
  p.avg_doc_length = 25;
  return corpus::GenerateCorpus(p);
}

CuldaConfig TestConfig() {
  CuldaConfig cfg;
  cfg.num_topics = 16;
  return cfg;
}

// ------------------------------------------------- snapshot basics

TEST(Snapshot, FromTrainerMatchesDirectEngine) {
  // The trainer keeps a pointer to its corpus; it must stay alive.
  const auto corpus = TestCorpus();
  CuldaTrainer trainer(corpus, TestConfig(), {});
  trainer.Train(5);
  const SnapshotPtr snap = SnapshotFromTrainer(trainer, {}, 3);
  EXPECT_EQ(snap->generation(), 3u);

  const auto model = trainer.Gather();
  const InferenceEngine direct(model, trainer.config(), {});
  const std::vector<uint32_t> words = {3, 17, 3, 42};
  const auto a = snap->engine().InferDocument(words, 10, 99);
  const auto b = direct.InferDocument(words, 10, 99);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.tokens, b.tokens);
}

TEST(Snapshot, OutlivesItsTrainer) {
  SnapshotPtr snap;
  {
    const auto corpus = TestCorpus();
    CuldaTrainer trainer(corpus, TestConfig(), {});
    trainer.Train(3);
    snap = SnapshotFromTrainer(trainer);
  }
  // Gather copies; the snapshot shares nothing with the dead trainer.
  const auto r = snap->engine().InferDocument(std::vector<uint32_t>{1, 2});
  EXPECT_EQ(r.tokens, 2u);
}

TEST(SnapshotSlot, PublishReturnsPrevious) {
  const auto corpus = TestCorpus();
  CuldaTrainer trainer(corpus, TestConfig(), {});
  trainer.Train(2);
  SnapshotSlot slot;
  EXPECT_EQ(slot.Acquire(), nullptr);
  slot.Publish(SnapshotFromTrainer(trainer, {}, 1));
  const auto prev = slot.Publish(SnapshotFromTrainer(trainer, {}, 2));
  ASSERT_NE(prev, nullptr);
  EXPECT_EQ(prev->generation(), 1u);
  EXPECT_EQ(slot.Acquire()->generation(), 2u);
}

// ------------------------------------------------- online trainer

TEST(OnlineSnapshot, CachedUntilModelChanges) {
  OnlineTrainer online(TestCorpus(), TestConfig(), {}, 5);
  const SnapshotPtr a = online.Snapshot();
  const SnapshotPtr b = online.Snapshot();
  EXPECT_EQ(a.get(), b.get());  // same generation object, not a rebuild
  EXPECT_EQ(a->generation(), 1u);

  online.AddDocument({1, 2, 3});
  online.Absorb(2);
  const SnapshotPtr c = online.Snapshot();
  EXPECT_NE(a.get(), c.get());
  EXPECT_GT(c->generation(), a->generation());
}

TEST(OnlineSnapshot, OldGenerationServesAcrossAbsorb) {
  OnlineTrainer online(TestCorpus(), TestConfig(), {}, 5);
  const SnapshotPtr old_snap = online.Snapshot();
  const std::vector<uint32_t> words = {5, 9, 5, 30};
  const auto before = old_snap->engine().InferDocument(words, 10, 11);

  online.AddDocument({1, 2, 3});
  online.Absorb(2);

  // The stale-batch race fix: a snapshot handed out before Absorb keeps
  // serving its own (old) model bit-identically — it is never mutated or
  // invalidated under the reader.
  const auto after = old_snap->engine().InferDocument(words, 10, 11);
  EXPECT_EQ(before.assignments, after.assignments);
  // And the new generation really is a different model object.
  EXPECT_NE(online.Snapshot().get(), old_snap.get());
}

TEST(OnlineSnapshot, ConcurrentFoldInAndAbsorb) {
  // Satellite-3 locking: AddDocuments and Absorb from different threads
  // must serialize internally (documented contract). TSan checks the
  // absence of data races; the counts check nothing was lost.
  OnlineTrainer online(TestCorpus(100), TestConfig(), {}, 3);
  const uint64_t initial_docs = online.corpus().num_docs();
  constexpr int kThreads = 3, kDocsPerThread = 8;
  std::vector<std::thread> adders;
  for (int t = 0; t < kThreads; ++t) {
    adders.emplace_back([&online, t] {
      for (int i = 0; i < kDocsPerThread; ++i) {
        online.AddDocument(
            {static_cast<uint32_t>((t * 31 + i) % 100), 2, 3});
      }
    });
  }
  std::thread absorber([&online] {
    for (int i = 0; i < 3; ++i) {
      online.Absorb(1);
      (void)online.Snapshot();
    }
  });
  for (auto& t : adders) t.join();
  absorber.join();
  online.Absorb(1);
  EXPECT_EQ(online.pending_documents(), 0u);
  // 100 requested initial docs (the generator may trim empties) + every
  // concurrently added one, none lost.
  EXPECT_EQ(online.corpus().num_docs(),
            initial_docs + kThreads * kDocsPerThread);
}

// ------------------------------------------------- hot-swap stress

TEST(HotSwapStress, EveryResponseConsistentWithExactlyOneGeneration) {
  constexpr int kClients = 3;
  constexpr int kSwaps = 4;
  constexpr uint32_t kIters = 5;

  OnlineTrainer online(TestCorpus(100), TestConfig(), {}, 4);

  // Generation → snapshot, recorded *before* publication so a response
  // can never reference a generation we don't know.
  std::mutex published_mutex;
  std::map<uint64_t, SnapshotPtr> published;
  const SnapshotPtr initial = online.Snapshot();
  published[initial->generation()] = initial;

  serve::ServeDaemonOptions opts;
  opts.iterations = kIters;
  opts.batch.max_batch = 4;
  opts.batch.max_wait_ms = 1;
  serve::ServeDaemon daemon(opts, initial);

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int s = 0; s < kSwaps; ++s) {
      online.AddDocuments({{1, 2, 3}, {4, 5, 6}});
      online.Absorb(1);
      const SnapshotPtr next = online.Snapshot();
      {
        std::lock_guard<std::mutex> lock(published_mutex);
        published[next->generation()] = next;
      }
      daemon.Publish(next);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    writer_done.store(true);
  });

  struct Sent {
    std::vector<uint32_t> words;
    uint64_t seed;
    std::future<serve::ServeResponse> reply;
  };
  std::mutex sent_mutex;
  std::vector<Sent> sent;
  std::atomic<int> shed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int i = 0;
      while (!writer_done.load() || i < 10) {
        serve::ServeRequest req;
        req.id = std::to_string(c) + ":" + std::to_string(i);
        req.words = {static_cast<uint32_t>((c * 17 + i) % 90), 2,
                     static_cast<uint32_t>(i % 50)};
        req.seed = static_cast<uint64_t>(c) * 1000 + i;
        Sent record{req.words, req.seed, daemon.Submit(req)};
        {
          std::lock_guard<std::mutex> lock(sent_mutex);
          sent.push_back(std::move(record));
        }
        ++i;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  writer.join();
  for (auto& t : clients) t.join();
  daemon.Drain();

  ASSERT_GT(published.size(), 1u) << "stress never swapped";
  size_t checked = 0;
  double max_latency = 0;  // measured for the log line, not asserted —
                           // 1-core CI under TSan makes timing flaky
  for (auto& s : sent) {
    const auto t0 = std::chrono::steady_clock::now();
    serve::ServeResponse r = s.reply.get();
    max_latency = std::max(
        max_latency,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    if (!r.ok) {
      EXPECT_EQ(r.error, "shed");
      shed.fetch_add(1);
      continue;
    }
    // The core assertion: the response is bit-identical to the direct
    // result on the generation it claims — consistent with exactly one
    // published snapshot, never a torn mix of two.
    const auto it = published.find(r.generation);
    ASSERT_NE(it, published.end())
        << "response cites unpublished generation " << r.generation;
    const auto direct =
        it->second->engine().InferDocument(s.words, kIters, s.seed);
    ASSERT_EQ(r.result.assignments, direct.assignments);
    ASSERT_EQ(r.result.tokens, direct.tokens);
    ++checked;
  }
  ASSERT_GT(checked, 0u);
  std::printf("hot-swap stress: %zu responses verified across %zu "
              "generations, %d shed, max drain wait %.3fs\n",
              checked, published.size(), shed.load(), max_latency);
}

}  // namespace
}  // namespace culda::core
