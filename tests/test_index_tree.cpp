// Tests for the F-ary index-tree sampler (Figure 5): the search must agree
// exactly with a linear scan of the prefix sums, for every fanout and size.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/index_tree.hpp"
#include "util/philox.hpp"

namespace culda::core {
namespace {

/// Reference: minimal k with prefix[k] > u, clamped to n−1.
size_t LinearSearch(const std::vector<float>& p, float u) {
  float acc = 0;
  for (size_t k = 0; k < p.size(); ++k) {
    acc += p[k];
    if (acc > u) return k;
  }
  return p.size() - 1;
}

std::vector<float> RandomDistribution(size_t n, uint64_t seed,
                                      double zero_fraction = 0.0) {
  PhiloxStream rng(seed, 0);
  std::vector<float> p(n);
  for (auto& x : p) {
    x = rng.NextDouble() < zero_fraction ? 0.0f : rng.NextFloat() + 1e-3f;
  }
  return p;
}

struct TreeCase {
  size_t n;
  uint32_t fanout;
};

class IndexTreeSweep : public ::testing::TestWithParam<TreeCase> {};

TEST_P(IndexTreeSweep, MatchesLinearScanOnRandomDraws) {
  const auto [n, fanout] = GetParam();
  const auto p = RandomDistribution(n, 42 + n + fanout);
  IndexTree tree(n, fanout);
  const float total = tree.view().Build(p);

  float check = 0;
  for (const float x : p) check += x;
  EXPECT_NEAR(total, check, check * 1e-4);

  PhiloxStream rng(7, n * 100 + fanout);
  for (int i = 0; i < 500; ++i) {
    const float u = rng.NextFloat() * total;
    EXPECT_EQ(tree.view().Search(u), LinearSearch(p, u))
        << "n=" << n << " fanout=" << fanout << " u=" << u;
  }
}

TEST_P(IndexTreeSweep, BoundaryDraws) {
  const auto [n, fanout] = GetParam();
  const auto p = RandomDistribution(n, 99 + n * 3 + fanout);
  IndexTree tree(n, fanout);
  const float total = tree.view().Build(p);

  EXPECT_EQ(tree.view().Search(0.0f), LinearSearch(p, 0.0f));
  // At or beyond the total mass the search clamps to the last index.
  EXPECT_EQ(tree.view().Search(total), n - 1);
  EXPECT_EQ(tree.view().Search(total * 2), n - 1);
  // Exactly at internal prefix boundaries.
  for (size_t k = 0; k + 1 < n && k < 40; ++k) {
    const float u = tree.view().PrefixAt(k);
    EXPECT_EQ(tree.view().Search(u), LinearSearch(p, u)) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFanouts, IndexTreeSweep,
    ::testing::Values(TreeCase{1, 32}, TreeCase{2, 2}, TreeCase{5, 2},
                      TreeCase{31, 32}, TreeCase{32, 32}, TreeCase{33, 32},
                      TreeCase{100, 8}, TreeCase{256, 32}, TreeCase{256, 2},
                      TreeCase{1000, 32}, TreeCase{1024, 32},
                      TreeCase{4096, 32}, TreeCase{65536, 32},
                      TreeCase{513, 8}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_f" +
             std::to_string(info.param.fanout);
    });

TEST(IndexTree, SparseDistributionWithZeros) {
  // Zero-probability entries must never be returned by interior draws.
  const size_t n = 200;
  auto p = RandomDistribution(n, 5, /*zero_fraction=*/0.7);
  p[0] = 0.0f;  // force a zero at the boundary
  IndexTree tree(n, 32);
  const float total = tree.view().Build(p);
  PhiloxStream rng(11, 0);
  for (int i = 0; i < 2000; ++i) {
    // Strictly interior draw.
    const float u = rng.NextFloat() * total * 0.999f;
    const size_t k = tree.view().Search(u);
    EXPECT_EQ(k, LinearSearch(p, u));
  }
}

TEST(IndexTree, StorageSlotsAccounting) {
  // n=256, fanout=32: leaves 256 + one internal level of 8.
  EXPECT_EQ(IndexTreeView::StorageSlots(256, 32), 264u);
  // n<=fanout: leaves only.
  EXPECT_EQ(IndexTreeView::StorageSlots(20, 32), 20u);
  // n=1024, fanout=32: 1024 + 32.
  EXPECT_EQ(IndexTreeView::StorageSlots(1024, 32), 1056u);
  // Binary tree n=8: 8 + 4 + 2.
  EXPECT_EQ(IndexTreeView::StorageSlots(8, 2), 14u);
}

TEST(IndexTree, LevelsCount) {
  IndexTree t1(20, 32);
  EXPECT_EQ(t1.view().levels(), 1u);
  IndexTree t2(256, 32);
  EXPECT_EQ(t2.view().levels(), 2u);
  IndexTree t3(65536, 32);
  EXPECT_EQ(t3.view().levels(), 4u);  // 65536, 2048, 64, 2
}

TEST(IndexTree, TooSmallStorageRejected) {
  std::vector<float> storage(10);
  EXPECT_THROW(IndexTreeView(storage, 100, 32), Error);
}

TEST(IndexTree, ComparisonCountBounded) {
  // A search inspects at most `fanout` entries per level.
  const size_t n = 4096;
  const auto p = RandomDistribution(n, 17);
  IndexTree tree(n, 32);
  const float total = tree.view().Build(p);
  PhiloxStream rng(3, 0);
  for (int i = 0; i < 200; ++i) {
    uint64_t comparisons = 0;
    tree.view().Search(rng.NextFloat() * total, &comparisons);
    EXPECT_LE(comparisons, 32u * tree.view().levels());
    EXPECT_GE(comparisons, tree.view().levels());
  }
}

TEST(IndexTree, RebuildOverwritesCompletely) {
  const size_t n = 64;
  IndexTree tree(n, 32);
  auto p1 = RandomDistribution(n, 1);
  tree.view().Build(p1);
  std::vector<float> p2(n, 0.0f);
  p2[10] = 1.0f;
  tree.view().Build(p2);
  EXPECT_EQ(tree.view().Search(0.5f), 10u);
  EXPECT_NEAR(tree.view().TotalMass(), 1.0f, 1e-6);
}

TEST(IndexTree, SingletonDistribution) {
  IndexTree tree(1, 32);
  std::vector<float> p{0.3f};
  tree.view().Build(p);
  EXPECT_EQ(tree.view().Search(0.0f), 0u);
  EXPECT_EQ(tree.view().Search(0.29f), 0u);
  EXPECT_EQ(tree.view().Search(1.0f), 0u);
}

TEST(IndexTree, SamplingFrequenciesMatchDistribution) {
  // End-to-end statistical check: draw 100k samples through the tree and
  // compare empirical frequencies with the distribution.
  const size_t n = 16;
  std::vector<float> p(n);
  float total = 0;
  for (size_t k = 0; k < n; ++k) {
    p[k] = static_cast<float>(k + 1);
    total += p[k];
  }
  IndexTree tree(n, 4);
  tree.view().Build(p);
  std::vector<int> hits(n, 0);
  PhiloxStream rng(123, 9);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++hits[tree.view().Search(rng.NextFloat() * total)];
  }
  for (size_t k = 0; k < n; ++k) {
    const double expect = draws * p[k] / total;
    EXPECT_NEAR(hits[k], expect, 5 * std::sqrt(expect) + 5) << "k=" << k;
  }
}

// ------------------------------------------------ degenerate-input contract
// These inputs previously fell through the round-off clamp and silently
// returned the last leaf — a sampling bug indistinguishable from a real
// draw. The contract (index_tree.hpp) now rejects them loudly.

TEST(IndexTree, NanInputFailsBuild) {
  IndexTree tree(4, 2);
  const std::vector<float> p{0.5f, std::nanf(""), 0.25f, 0.25f};
  EXPECT_THROW(tree.view().Build(p), Error);
}

TEST(IndexTree, NetNegativeMassFailsBuild) {
  IndexTree tree(2, 2);
  const std::vector<float> p{1.0f, -3.0f};
  EXPECT_THROW(tree.view().Build(p), Error);
}

TEST(IndexTree, AllZeroDistributionFailsSearchNotBuild) {
  // An all-zero build is legal (a θ row can transiently have no mass to
  // offer a bucket); *sampling* from it is the bug.
  IndexTree tree(8, 2);
  const std::vector<float> p(8, 0.0f);
  EXPECT_NO_THROW(tree.view().Build(p));
  EXPECT_EQ(tree.view().TotalMass(), 0.0f);
  try {
    tree.view().Search(0.0f);
    FAIL() << "searching a zero-mass tree must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("mass"), std::string::npos)
        << e.what();
  }
}

TEST(IndexTree, InvalidSearchPointsRejected) {
  IndexTree tree(4, 2);
  const std::vector<float> p{0.25f, 0.25f, 0.25f, 0.25f};
  tree.view().Build(p);
  EXPECT_THROW(tree.view().Search(std::nanf("")), Error);
  EXPECT_THROW(tree.view().Search(-0.5f), Error);
  EXPECT_THROW(
      tree.view().Search(std::numeric_limits<float>::infinity()), Error);
  // The documented clamp for u at/beyond the mass still holds.
  EXPECT_EQ(tree.view().Search(1.0f), 3u);
  EXPECT_EQ(tree.view().Search(5.0f), 3u);
}

TEST(IndexTree, EmptyTreeSearchRejected) {
  IndexTree tree(0, 32);
  EXPECT_EQ(tree.view().Build({}), 0.0f);
  EXPECT_THROW(tree.view().Search(0.0f), Error);
}

}  // namespace
}  // namespace culda::core
