// Tests for the vocabulary and the plain-text → corpus pipeline.
#include <gtest/gtest.h>

#include <sstream>

#include "corpus/text_pipeline.hpp"
#include "corpus/vocabulary.hpp"
#include "util/check.hpp"

namespace culda::corpus {
namespace {

// ------------------------------------------------------------ vocabulary --

TEST(Vocabulary, AssignsDenseIdsInInsertionOrder) {
  Vocabulary v;
  EXPECT_EQ(v.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(v.GetOrAdd("beta"), 1u);
  EXPECT_EQ(v.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(v.size(), 2u);
}

TEST(Vocabulary, FindWithoutInsert) {
  Vocabulary v;
  v.GetOrAdd("x");
  EXPECT_EQ(v.Find("x"), 0u);
  EXPECT_EQ(v.Find("y"), Vocabulary::kNotFound);
  EXPECT_EQ(v.size(), 1u);
}

TEST(Vocabulary, WordOfRoundTrips) {
  Vocabulary v;
  v.GetOrAdd("topic");
  v.GetOrAdd("model");
  EXPECT_EQ(v.WordOf(0), "topic");
  EXPECT_EQ(v.WordOf(1), "model");
  EXPECT_THROW(v.WordOf(2), Error);
}

TEST(Vocabulary, StreamRoundTrip) {
  Vocabulary v;
  v.GetOrAdd("one");
  v.GetOrAdd("two");
  v.GetOrAdd("three");
  std::stringstream buf;
  v.WriteTo(buf);
  const Vocabulary parsed = Vocabulary::FromStream(buf);
  ASSERT_EQ(parsed.size(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed.WordOf(i), v.WordOf(i));
  }
}

TEST(Vocabulary, FromStreamHandlesCrlfAndBlankLines) {
  std::istringstream in("one\r\n\ntwo\n");
  const Vocabulary v = Vocabulary::FromStream(in);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.WordOf(0), "one");
  EXPECT_EQ(v.WordOf(1), "two");
}

TEST(Vocabulary, FromStreamRejectsDuplicates) {
  std::istringstream in("dup\ndup\n");
  EXPECT_THROW(Vocabulary::FromStream(in), Error);
}

// -------------------------------------------------------------- pipeline --

TEST(TextPipeline, TokenizesLowercaseAlnumRuns) {
  TextPipelineOptions opts;
  const auto tokens =
      TextPipeline::Tokenize("Hello, World! C++20 is great", opts);
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"hello", "world", "20", "is",
                                      "great"}));
}

TEST(TextPipeline, MinWordLengthFilters) {
  TextPipelineOptions opts;
  opts.min_word_length = 3;
  const auto tokens = TextPipeline::Tokenize("a an the cat sat on mat", opts);
  EXPECT_EQ(tokens, (std::vector<std::string>{"the", "cat", "sat", "mat"}));
}

TEST(TextPipeline, StopwordsFiltered) {
  TextPipelineOptions opts;
  opts.stopwords = {"the", "cat"};
  const auto tokens = TextPipeline::Tokenize("the cat sat", opts);
  EXPECT_EQ(tokens, (std::vector<std::string>{"sat"}));
}

TEST(TextPipeline, CaseSensitiveMode) {
  TextPipelineOptions opts;
  opts.lowercase = false;
  const auto tokens = TextPipeline::Tokenize("Cat cat", opts);
  EXPECT_EQ(tokens, (std::vector<std::string>{"Cat", "cat"}));
}

TEST(TextPipeline, BuildProducesValidCorpus) {
  TextPipeline pipeline;
  pipeline.AddDocument("the quick brown fox jumps");
  pipeline.AddDocument("the lazy dog sleeps");
  pipeline.AddDocument("");
  const auto result = pipeline.Build();
  result.corpus.Validate();
  EXPECT_EQ(result.corpus.num_docs(), 3u);
  EXPECT_EQ(result.corpus.DocLength(2), 0u);
  EXPECT_EQ(result.vocabulary.size(), result.corpus.vocab_size());
  // "the" appears in both docs and maps to one id.
  const uint32_t the_id = result.vocabulary.Find("the");
  ASSERT_NE(the_id, Vocabulary::kNotFound);
  EXPECT_EQ(result.corpus.WordFrequencies()[the_id], 2u);
}

TEST(TextPipeline, MinWordCountPrunesRareWords) {
  TextPipelineOptions opts;
  opts.min_word_count = 2;
  TextPipeline pipeline(opts);
  pipeline.AddDocument("common common rare");
  pipeline.AddDocument("common unique");
  const auto result = pipeline.Build();
  EXPECT_EQ(result.vocabulary.Find("rare"), Vocabulary::kNotFound);
  EXPECT_EQ(result.vocabulary.Find("unique"), Vocabulary::kNotFound);
  ASSERT_NE(result.vocabulary.Find("common"), Vocabulary::kNotFound);
  EXPECT_EQ(result.dropped_tokens, 2u);
  EXPECT_EQ(result.corpus.num_tokens(), 3u);
}

TEST(TextPipeline, StreamAddsOneDocPerLine) {
  TextPipeline pipeline;
  std::istringstream in("doc one here\ndoc two here\n");
  EXPECT_EQ(pipeline.AddDocumentsFromStream(in), 2u);
  EXPECT_EQ(pipeline.num_documents(), 2u);
}

TEST(TextPipeline, DefaultStopwordsDropGlueWords) {
  TextPipelineOptions opts;
  opts.stopwords = TextPipelineOptions::DefaultEnglishStopwords();
  TextPipeline pipeline(opts);
  pipeline.AddDocument("the model is trained on the corpus");
  const auto result = pipeline.Build();
  EXPECT_EQ(result.vocabulary.Find("the"), Vocabulary::kNotFound);
  EXPECT_NE(result.vocabulary.Find("model"), Vocabulary::kNotFound);
  EXPECT_NE(result.vocabulary.Find("trained"), Vocabulary::kNotFound);
}

TEST(TextPipeline, EmptyBuildRejected) {
  TextPipeline pipeline;
  pipeline.AddDocument("");
  EXPECT_THROW(pipeline.Build(), Error);
}

TEST(TextPipeline, BuildIsRepeatableAndIncremental) {
  TextPipeline pipeline;
  pipeline.AddDocument("first doc");
  const auto r1 = pipeline.Build();
  pipeline.AddDocument("second doc");
  const auto r2 = pipeline.Build();
  EXPECT_EQ(r1.corpus.num_docs(), 1u);
  EXPECT_EQ(r2.corpus.num_docs(), 2u);
  EXPECT_EQ(r2.corpus.WordFrequencies()[r2.vocabulary.Find("doc")], 2u);
}

}  // namespace
}  // namespace culda::corpus
