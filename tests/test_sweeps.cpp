// Property sweeps: the trainer and corpus substrates over broad parameter
// grids and randomized inputs. Each case re-checks the fundamental
// invariants (count consistency, coverage, determinism) rather than any
// specific value.
#include <gtest/gtest.h>

#include <tuple>

#include "core/trainer.hpp"
#include "corpus/chunking.hpp"
#include "corpus/synthetic.hpp"
#include "corpus/word_first.hpp"
#include "util/philox.hpp"

namespace culda {
namespace {

// ---------------------------------------------------- trainer config grid

struct GridCase {
  uint32_t k_topics;
  int gpus;
  uint32_t chunks_per_gpu;
  bool pubmed_shape;
};

class TrainerGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(TrainerGrid, InvariantsAndDeterminism) {
  const auto [k_topics, gpus, m, pubmed] = GetParam();
  corpus::SyntheticProfile p;
  p.num_docs = pubmed ? 800 : 250;
  p.vocab_size = 400;
  p.avg_doc_length = pubmed ? 25 : 80;
  const auto c = corpus::GenerateCorpus(p);

  core::CuldaConfig cfg;
  cfg.num_topics = k_topics;
  core::TrainerOptions opts;
  opts.gpus.assign(gpus, gpusim::TitanXpPascal());
  opts.chunks_per_gpu = m;

  core::CuldaTrainer trainer(c, cfg, opts);
  const double ll0 = trainer.LogLikelihoodPerToken();
  trainer.Train(3);
  trainer.Gather().Validate(c);
  EXPECT_GT(trainer.LogLikelihoodPerToken(), ll0);

  // Determinism: a second identical run lands on the same model.
  core::CuldaTrainer again(c, cfg, opts);
  again.Train(3);
  EXPECT_DOUBLE_EQ(again.LogLikelihoodPerToken(),
                   trainer.LogLikelihoodPerToken());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TrainerGrid,
    ::testing::Values(GridCase{8, 1, 1, false}, GridCase{8, 2, 2, false},
                      GridCase{64, 1, 1, false}, GridCase{64, 3, 1, true},
                      GridCase{64, 2, 3, true}, GridCase{200, 1, 2, false},
                      GridCase{200, 4, 1, true}, GridCase{16, 4, 4, false}),
    [](const auto& info) {
      return "K" + std::to_string(info.param.k_topics) + "_G" +
             std::to_string(info.param.gpus) + "_M" +
             std::to_string(info.param.chunks_per_gpu) +
             (info.param.pubmed_shape ? "_short" : "_long");
    });

// --------------------------------------------- randomized corpus fuzzing

class CorpusFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusFuzz, ChunkingAndLayoutInvariants) {
  // Random corpora with adversarial shapes: empty docs, giant docs, tiny
  // vocabularies.
  PhiloxStream rng(GetParam(), 0);
  const uint32_t vocab = 2 + rng.NextBelow(50);
  const uint32_t docs = 1 + rng.NextBelow(80);
  std::vector<uint64_t> offsets{0};
  std::vector<uint32_t> words;
  for (uint32_t d = 0; d < docs; ++d) {
    uint32_t len = rng.NextBelow(30);
    if (rng.NextBelow(10) == 0) len = 0;           // empty doc
    if (rng.NextBelow(20) == 0) len = 500;         // giant doc
    for (uint32_t t = 0; t < len; ++t) {
      words.push_back(rng.NextBelow(vocab));
    }
    offsets.push_back(words.size());
  }
  const corpus::Corpus c(vocab, std::move(offsets), std::move(words));
  c.Validate();

  for (const uint32_t chunks : {1u, 2u, 3u, 5u, 9u}) {
    const auto specs = corpus::PartitionByTokens(c, chunks);
    uint64_t covered = 0;
    for (const auto& spec : specs) {
      const auto layout = corpus::BuildWordFirstChunk(c, spec);
      layout.Validate(c);
      covered += layout.num_tokens();
      const auto work = corpus::BuildBlockWorkList(layout, 16);
      uint64_t work_tokens = 0;
      for (const auto& bw : work) work_tokens += bw.size();
      EXPECT_EQ(work_tokens, layout.num_tokens());
    }
    EXPECT_EQ(covered, c.num_tokens());
  }
}

TEST_P(CorpusFuzz, TrainerHandlesAdversarialCorpora) {
  PhiloxStream rng(GetParam(), 1);
  const uint32_t vocab = 5 + rng.NextBelow(100);
  const uint32_t docs = 5 + rng.NextBelow(60);
  std::vector<uint64_t> offsets{0};
  std::vector<uint32_t> words;
  for (uint32_t d = 0; d < docs; ++d) {
    const uint32_t len = rng.NextBelow(40);
    for (uint32_t t = 0; t < len; ++t) {
      // Skewed: half the tokens are word 0.
      words.push_back(rng.NextBelow(2) ? 0 : rng.NextBelow(vocab));
    }
    offsets.push_back(words.size());
  }
  if (words.empty()) words.push_back(0), offsets.back() = 1;
  const corpus::Corpus c(vocab, std::move(offsets), std::move(words));

  core::CuldaConfig cfg;
  cfg.num_topics = 2 + rng.NextBelow(30);
  cfg.max_tokens_per_block = 1 + rng.NextBelow(64);
  core::TrainerOptions opts;
  opts.gpus.assign(1 + rng.NextBelow(3), gpusim::TitanXMaxwell());
  core::CuldaTrainer trainer(c, cfg, opts);
  trainer.Train(2);
  trainer.Gather().Validate(c);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusFuzz,
                         ::testing::Range<uint64_t>(1, 13),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ------------------------------------------------ hyperopt-in-training

TEST(TrainerExtensions, HyperoptIntervalKeepsInvariants) {
  corpus::SyntheticProfile p;
  p.num_docs = 300;
  p.vocab_size = 300;
  const auto c = corpus::GenerateCorpus(p);
  core::CuldaConfig cfg;
  cfg.num_topics = 24;
  core::TrainerOptions opts;
  opts.hyperopt_interval = 3;
  core::CuldaTrainer trainer(c, cfg, opts);
  const double ll0 = trainer.LogLikelihoodPerToken();
  trainer.Train(9);
  trainer.Gather().Validate(c);
  EXPECT_GT(trainer.LogLikelihoodPerToken(), ll0);
  // The re-estimated α must differ from the 50/K default by now.
  EXPECT_NE(trainer.config().alpha, -1.0);
}

}  // namespace
}  // namespace culda
