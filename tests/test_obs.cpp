// Tests for the host observability layer (src/obs): histogram percentile
// semantics, lock-free concurrent recording, span tracing, the JSONL sink,
// and — the load-bearing one — bit-identity of every numeric result with
// instrumentation on vs off.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/inference.hpp"
#include "core/model_io.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/sink.hpp"
#include "util/thread_pool.hpp"

namespace culda::obs {
namespace {

/// Enables metrics + tracing for the test body and restores the global
/// default (everything off, values zeroed) afterwards, so obs tests cannot
/// leak state into each other or into unrelated tests in this binary.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Metrics().ResetValues();
    Metrics().set_enabled(true);
    SpanTracer::Global().Reset();
    SpanTracer::Global().set_enabled(true);
  }
  void TearDown() override {
    Metrics().set_enabled(false);
    Metrics().ResetValues();
    SpanTracer::Global().set_enabled(false);
    SpanTracer::Global().Reset();
  }
};

TEST(ObsHistogram, EmptyReportsZeroEverywhere) {
  Histogram h;
  const auto s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(ObsHistogram, SingleSampleIsExactAtEveryPercentile) {
  Histogram h;
  const double v = 0.00123456;
  h.Record(v);
  const auto s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, v);
  EXPECT_EQ(s.max, v);
  // The bucket upper edge is clamped to [min, max], so one sample reports
  // its own value exactly — not a bucket boundary.
  EXPECT_EQ(s.p50, v);
  EXPECT_EQ(s.p95, v);
  EXPECT_EQ(s.p99, v);
  EXPECT_EQ(h.Percentile(0.0), v);
  EXPECT_EQ(h.Percentile(1.0), v);
}

TEST(ObsHistogram, AllInOverflowBucketReportsTrueMax) {
  Histogram h;
  // Everything ≥ ~67 s lands in the unbounded overflow bucket, whose edge
  // is +inf; the clamp must bring the report back to the observed max.
  h.Record(80.0);
  h.Record(90.0);
  h.Record(100.0);
  const auto s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, 80.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_EQ(s.p50, 100.0);
  EXPECT_EQ(s.p99, 100.0);
}

TEST(ObsHistogram, PercentilesLandInTheRightBucket) {
  Histogram h;
  // 90 fast samples (~2 µs) and 10 slow ones (~1 ms): p50 must report a
  // fast-bucket edge, p99 a slow-bucket one.
  for (int i = 0; i < 90; ++i) h.Record(2e-6);
  for (int i = 0; i < 10; ++i) h.Record(1e-3);
  const auto s = h.Snapshot();
  EXPECT_LE(s.p50, 1e-5);
  EXPECT_GE(s.p99, 5e-4);
  EXPECT_LE(s.p99, 1e-3);  // clamped to the observed max
}

TEST(ObsHistogram, ResetClearsEverything) {
  Histogram h;
  h.Record(0.5);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  h.Record(0.25);
  EXPECT_EQ(h.Snapshot().min, 0.25);  // min re-engages after Reset
}

TEST_F(ObsTest, ConcurrentCounterIncrementsAreLossless) {
  constexpr size_t kItems = 200000;
  Counter& c = Metrics().GetCounter("obs_test.concurrent_counter");
  Histogram& h = Metrics().GetHistogram("obs_test.concurrent_hist");
  ThreadPool pool(4);
  pool.ParallelForRanges(kItems, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      c.Add(1);
      h.Record(1e-6 * static_cast<double>(i % 64));
    }
  });
  EXPECT_EQ(c.value(), kItems);
  EXPECT_EQ(h.Snapshot().count, kItems);
}

TEST_F(ObsTest, MacrosRecordOnlyWhenEnabled) {
  CULDA_OBS_COUNT("obs_test.macro_counter", 2);
  CULDA_OBS_COUNT("obs_test.macro_counter", 3);
#ifdef CULDA_OBS_OFF
  // Compiled-away macros must leave no trace at all.
  EXPECT_EQ(Metrics().GetCounter("obs_test.macro_counter").value(), 0u);
#else
  EXPECT_EQ(Metrics().GetCounter("obs_test.macro_counter").value(), 5u);

  Metrics().set_enabled(false);
  CULDA_OBS_COUNT("obs_test.macro_counter", 100);
  EXPECT_EQ(Metrics().GetCounter("obs_test.macro_counter").value(), 5u);
#endif
}

TEST_F(ObsTest, LabeledMetricsAreDistinctSeries) {
  Metrics().GetCounter("obs_test.ops", "op", "infer").Add(3);
  Metrics().GetCounter("obs_test.ops", "op", "stats").Add(1);
  Metrics().GetCounter("obs_test.ops", "op", "infer").Add(2);
  EXPECT_EQ(Metrics().GetCounter("obs_test.ops", "op", "infer").value(), 5u);
  EXPECT_EQ(Metrics().GetCounter("obs_test.ops", "op", "stats").value(), 1u);
  // The canonical series name is name{key=value}.
  EXPECT_EQ(MetricsRegistry::LabeledName("obs_test.ops", "op", "infer"),
            "obs_test.ops{op=infer}");
  const auto samples = Metrics().CollectSamples();
  size_t labeled = 0;
  for (const auto& [name, value] : samples.counters) {
    if (name.rfind("obs_test.ops{", 0) == 0) ++labeled;
  }
  EXPECT_EQ(labeled, 2u);
}

TEST_F(ObsTest, LabelCardinalityIsBoundedWithOverflowFold) {
  for (int i = 0; i < 100; ++i) {
    Metrics()
        .GetCounter("obs_test.cardinality", "client",
                    "c" + std::to_string(i))
        .Add(1);
  }
  // Only kMaxLabelValues distinct values get their own series; the rest
  // fold into {client=overflow} so a hostile label can't grow the registry
  // without bound.
  uint64_t total = 0;
  size_t series = 0;
  for (const auto& [name, value] : Metrics().CollectSamples().counters) {
    if (name.rfind("obs_test.cardinality{", 0) == 0) {
      ++series;
      total += value;
    }
  }
  EXPECT_EQ(series, MetricsRegistry::kMaxLabelValues + 1);  // + overflow
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(Metrics()
                .GetCounter("obs_test.cardinality", "client", "overflow")
                .value(),
            100u - MetricsRegistry::kMaxLabelValues);
}

TEST_F(ObsTest, LabeledMacrosRecordUnderTheLabeledName) {
  for (int i = 0; i < 3; ++i) {
    CULDA_OBS_COUNT_L("obs_test.macro_ops", "op", "infer", 1);
    CULDA_OBS_HIST_L("obs_test.macro_lat", "op", "infer", 0.001);
  }
#ifdef CULDA_OBS_OFF
  EXPECT_EQ(
      Metrics().GetCounter("obs_test.macro_ops", "op", "infer").value(), 0u);
#else
  EXPECT_EQ(
      Metrics().GetCounter("obs_test.macro_ops", "op", "infer").value(), 3u);
  EXPECT_EQ(Metrics()
                .GetHistogram("obs_test.macro_lat", "op", "infer")
                .Snapshot()
                .count,
            3u);
#endif
}

TEST(ObsTraceContext, IdsAreUniqueAndNonZero) {
  const TraceContext a = NewRequestContext();
  const TraceContext b = NewRequestContext();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
  EXPECT_EQ(a.parent_span_id, 0u);
}

TEST(ObsTraceContext, ClientTraceHashesDeterministically) {
  const TraceContext a = NewRequestContext("req-abc");
  const TraceContext b = NewRequestContext("req-abc");
  const TraceContext c = NewRequestContext("req-xyz");
  // Same client trace string → same trace id (so retries correlate), but
  // fresh span ids each time.
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_NE(a.trace_id, c.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
}

TEST(ObsTraceContext, ChildInheritsTraceAndLinksParent) {
  const TraceContext parent = NewRequestContext();
  const TraceContext child = ChildContext(parent);
  EXPECT_EQ(child.trace_id, parent.trace_id);
  EXPECT_EQ(child.parent_span_id, parent.span_id);
  EXPECT_NE(child.span_id, parent.span_id);
}

TEST_F(ObsTest, ScopedSpanPropagatesContextToNestedSpans) {
  const TraceContext request = NewRequestContext();
  {
    ScopedSpan outer("ctx_outer", request);
    // A plain nested span picks the active context up from the thread
    // local — this is how engine-internal spans join a request's trace.
    ScopedSpan inner("ctx_inner");
    EXPECT_EQ(inner.ctx().trace_id, request.trace_id);
    EXPECT_EQ(inner.ctx().parent_span_id, outer.ctx().span_id);
  }
  // The thread-local is restored on unwind.
  EXPECT_FALSE(CurrentTraceContext().valid());
  const auto events = SpanTracer::Global().CollectEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ctx.trace_id, request.trace_id);
  EXPECT_EQ(events[1].ctx.trace_id, request.trace_id);
  EXPECT_EQ(events[1].ctx.parent_span_id, request.span_id);
}

TEST_F(ObsTest, ChromeJsonCarriesTraceIdsAndLinks) {
  SpanTracer& tracer = SpanTracer::Global();
  const TraceContext request = NewRequestContext();
  tracer.RecordSpan("linked", 0.001, 0.002, ChildContext(request),
                    /*link_span_id=*/0x1234u);
  std::ostringstream out;
  WriteChromeTrace(tracer, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"trace\":"), std::string::npos);
  EXPECT_NE(s.find("\"span\":"), std::string::npos);
  EXPECT_NE(s.find("\"parent\":"), std::string::npos);
  EXPECT_NE(s.find("\"link\":\"0000000000001234\""), std::string::npos);
}

TEST_F(ObsTest, SpanNestingIsContainedAndInDestructionOrder) {
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
  }
  const auto events = SpanTracer::Global().CollectEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans record at destruction, so the inner one lands first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Time containment is what makes Perfetto stack them.
  EXPECT_GE(events[0].start_s, events[1].start_s);
  EXPECT_LE(events[0].start_s + events[0].dur_s,
            events[1].start_s + events[1].dur_s);
}

TEST_F(ObsTest, SpanRecordsThroughExceptions) {
  try {
    ScopedSpan span("unwinding");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  const auto events = SpanTracer::Global().CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unwinding");
}

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  SpanTracer tracer;  // disabled by default
  { ScopedSpan span("invisible", tracer); }
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(ObsTrace, ChromeJsonCarriesMetadataAndEvents) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  { ScopedSpan span("phase", tracer); }
  std::ostringstream out;
  WriteChromeTrace(tracer, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"process_name\""), std::string::npos);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(s.find("\"phase\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(s.front(), '{');
}

TEST_F(ObsTest, JsonlSinkWritesOneSchemaStampedLinePerSnapshot) {
  const std::string path = ::testing::TempDir() + "obs_sink_test.jsonl";
  {
    JsonlSink sink(path);
    // Direct registry call (not a macro) so this holds in OBS_OFF builds
    // too — the library surface is always present, only macros vanish.
    Metrics().GetCounter("obs_test.sink_counter").Add(7);
    JsonObject fields;
    fields.Add("iteration", static_cast<uint64_t>(3));
    sink.WriteSnapshot("test_kind", std::move(fields));
    sink.WriteSnapshot("test_kind2", JsonObject());
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  std::remove(path.c_str());
  // v3: the sink opens with a schema header line, then one line per
  // snapshot — every line self-identifies its schema version.
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find(std::string("\"schema\":\"") + obs::kMetricsSchema +
                        "\""),
              std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"kind\":\"header\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"test_kind\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"iteration\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"obs_test.sink_counter\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"test_kind2\""), std::string::npos);
}

TEST(ObsSink, InactiveSinkIsANoOp) {
  JsonlSink sink;
  EXPECT_FALSE(sink.active());
  sink.WriteSnapshot("ignored", JsonObject());  // must not crash
}

TEST(ObsJson, NumbersRoundTripAndNonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(0.1), "0.1");
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(std::strtod(JsonNumber(1.0 / 3.0).c_str(), nullptr), 1.0 / 3.0);
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
}

TEST(ObsJson, EscapesControlCharactersAndQuotes) {
  JsonObject o;
  o.Add("k\"ey", "va\\l\nue");
  EXPECT_EQ(o.str(), "{\"k\\\"ey\":\"va\\\\l\\nue\"}");
}

// --- Bit-identity: instrumentation must be observation-only. -------------

struct RunResult {
  std::string model_bytes;
  std::vector<uint16_t> assignments;
  double perplexity = 0;
  std::vector<std::vector<uint16_t>> infer_assignments;
};

RunResult TrainAndInfer(bool instrumented) {
  corpus::SyntheticProfile profile;
  profile.num_docs = 220;
  profile.vocab_size = 300;
  profile.seed = 99;
  const auto corpus = corpus::GenerateCorpus(profile);

  core::CuldaConfig cfg;
  cfg.num_topics = 24;
  cfg.seed = 4321;

  ThreadPool pool(3);
  core::TrainerOptions opts;
  opts.gpus.assign(2, gpusim::TitanXpPascal());
  opts.pool = &pool;

  core::CuldaTrainer trainer(corpus, cfg, opts);
  if (instrumented) {
    for (size_t g = 0; g < trainer.group().size(); ++g) {
      trainer.group().device(g).set_record_trace(true);
    }
  }
  trainer.Train(4);

  RunResult r;
  const auto model = trainer.Gather();
  std::ostringstream bytes;
  core::SaveModel(model, bytes);
  r.model_bytes = bytes.str();
  r.assignments = trainer.ExportAssignments();

  core::InferenceOptions io;
  io.pool = &pool;
  const core::InferenceEngine engine(model, cfg, io);
  std::vector<std::vector<uint32_t>> docs = {
      {1, 2, 3, 4, 5, 6}, {7, 8, 9, 7, 8, 9, 7}, {250, 10, 20, 30}};
  for (const auto& res : engine.InferBatch(docs, 15, uint64_t{77})) {
    r.infer_assignments.push_back(res.assignments);
  }
  r.perplexity = engine.DocumentCompletionPerplexity(corpus, 5);
  return r;
}

TEST(ObsBitIdentity, MetricsAndTracingChangeNoNumericResult) {
  // Baseline: everything off (the global default).
  Metrics().set_enabled(false);
  SpanTracer::Global().set_enabled(false);
  FlightRecorder::Global().set_enabled(false);
  const RunResult off = TrainAndInfer(/*instrumented=*/false);

  // Instrumented: the full telemetry plane — metrics + tracing + device
  // trace recording + flight recorder + a live exporter snapshotting the
  // registry concurrently with the run.
  Metrics().ResetValues();
  Metrics().set_enabled(true);
  SpanTracer::Global().Reset();
  SpanTracer::Global().set_enabled(true);
  FlightRecorder::Global().Clear();
  FlightRecorder::Global().set_enabled(true);
  const std::string expose_path =
      ::testing::TempDir() + "obs_bit_identity.prom";
  RunResult on;
  {
    ExporterOptions eopts;
    eopts.interval_s = 0.01;
    eopts.expose_path = expose_path;
    MetricsExporter exporter(eopts);
    exporter.Start();
    on = TrainAndInfer(/*instrumented=*/true);
  }  // Stop() + final export

  // The instrumented run must actually have observed something…
#ifndef CULDA_OBS_OFF
  EXPECT_GT(Metrics().GetCounter("train.iterations").value(), 0u);
  EXPECT_GT(SpanTracer::Global().span_count(), 0u);
  EXPECT_GT(FlightRecorder::Global().recorded(), 0u);
#endif
  std::remove(expose_path.c_str());

  Metrics().set_enabled(false);
  Metrics().ResetValues();
  SpanTracer::Global().set_enabled(false);
  SpanTracer::Global().Reset();
  FlightRecorder::Global().set_enabled(false);
  FlightRecorder::Global().Clear();

  // …and changed nothing: model bytes, z, inference output, perplexity.
  EXPECT_EQ(off.model_bytes, on.model_bytes);
  EXPECT_EQ(off.assignments, on.assignments);
  EXPECT_EQ(off.infer_assignments, on.infer_assignments);
  EXPECT_EQ(off.perplexity, on.perplexity);
}

}  // namespace
}  // namespace culda::obs
