// Tests for the host observability layer (src/obs): histogram percentile
// semantics, lock-free concurrent recording, span tracing, the JSONL sink,
// and — the load-bearing one — bit-identity of every numeric result with
// instrumentation on vs off.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/inference.hpp"
#include "core/model_io.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "obs/obs.hpp"
#include "obs/sink.hpp"
#include "util/thread_pool.hpp"

namespace culda::obs {
namespace {

/// Enables metrics + tracing for the test body and restores the global
/// default (everything off, values zeroed) afterwards, so obs tests cannot
/// leak state into each other or into unrelated tests in this binary.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Metrics().ResetValues();
    Metrics().set_enabled(true);
    SpanTracer::Global().Reset();
    SpanTracer::Global().set_enabled(true);
  }
  void TearDown() override {
    Metrics().set_enabled(false);
    Metrics().ResetValues();
    SpanTracer::Global().set_enabled(false);
    SpanTracer::Global().Reset();
  }
};

TEST(ObsHistogram, EmptyReportsZeroEverywhere) {
  Histogram h;
  const auto s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(ObsHistogram, SingleSampleIsExactAtEveryPercentile) {
  Histogram h;
  const double v = 0.00123456;
  h.Record(v);
  const auto s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, v);
  EXPECT_EQ(s.max, v);
  // The bucket upper edge is clamped to [min, max], so one sample reports
  // its own value exactly — not a bucket boundary.
  EXPECT_EQ(s.p50, v);
  EXPECT_EQ(s.p95, v);
  EXPECT_EQ(s.p99, v);
  EXPECT_EQ(h.Percentile(0.0), v);
  EXPECT_EQ(h.Percentile(1.0), v);
}

TEST(ObsHistogram, AllInOverflowBucketReportsTrueMax) {
  Histogram h;
  // Everything ≥ ~67 s lands in the unbounded overflow bucket, whose edge
  // is +inf; the clamp must bring the report back to the observed max.
  h.Record(80.0);
  h.Record(90.0);
  h.Record(100.0);
  const auto s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, 80.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_EQ(s.p50, 100.0);
  EXPECT_EQ(s.p99, 100.0);
}

TEST(ObsHistogram, PercentilesLandInTheRightBucket) {
  Histogram h;
  // 90 fast samples (~2 µs) and 10 slow ones (~1 ms): p50 must report a
  // fast-bucket edge, p99 a slow-bucket one.
  for (int i = 0; i < 90; ++i) h.Record(2e-6);
  for (int i = 0; i < 10; ++i) h.Record(1e-3);
  const auto s = h.Snapshot();
  EXPECT_LE(s.p50, 1e-5);
  EXPECT_GE(s.p99, 5e-4);
  EXPECT_LE(s.p99, 1e-3);  // clamped to the observed max
}

TEST(ObsHistogram, ResetClearsEverything) {
  Histogram h;
  h.Record(0.5);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  h.Record(0.25);
  EXPECT_EQ(h.Snapshot().min, 0.25);  // min re-engages after Reset
}

TEST_F(ObsTest, ConcurrentCounterIncrementsAreLossless) {
  constexpr size_t kItems = 200000;
  Counter& c = Metrics().GetCounter("obs_test.concurrent_counter");
  Histogram& h = Metrics().GetHistogram("obs_test.concurrent_hist");
  ThreadPool pool(4);
  pool.ParallelForRanges(kItems, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      c.Add(1);
      h.Record(1e-6 * static_cast<double>(i % 64));
    }
  });
  EXPECT_EQ(c.value(), kItems);
  EXPECT_EQ(h.Snapshot().count, kItems);
}

TEST_F(ObsTest, MacrosRecordOnlyWhenEnabled) {
  CULDA_OBS_COUNT("obs_test.macro_counter", 2);
  CULDA_OBS_COUNT("obs_test.macro_counter", 3);
#ifdef CULDA_OBS_OFF
  // Compiled-away macros must leave no trace at all.
  EXPECT_EQ(Metrics().GetCounter("obs_test.macro_counter").value(), 0u);
#else
  EXPECT_EQ(Metrics().GetCounter("obs_test.macro_counter").value(), 5u);

  Metrics().set_enabled(false);
  CULDA_OBS_COUNT("obs_test.macro_counter", 100);
  EXPECT_EQ(Metrics().GetCounter("obs_test.macro_counter").value(), 5u);
#endif
}

TEST_F(ObsTest, SpanNestingIsContainedAndInDestructionOrder) {
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
  }
  const auto events = SpanTracer::Global().CollectEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans record at destruction, so the inner one lands first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Time containment is what makes Perfetto stack them.
  EXPECT_GE(events[0].start_s, events[1].start_s);
  EXPECT_LE(events[0].start_s + events[0].dur_s,
            events[1].start_s + events[1].dur_s);
}

TEST_F(ObsTest, SpanRecordsThroughExceptions) {
  try {
    ScopedSpan span("unwinding");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  const auto events = SpanTracer::Global().CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unwinding");
}

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  SpanTracer tracer;  // disabled by default
  { ScopedSpan span("invisible", tracer); }
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(ObsTrace, ChromeJsonCarriesMetadataAndEvents) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  { ScopedSpan span("phase", tracer); }
  std::ostringstream out;
  WriteChromeTrace(tracer, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"process_name\""), std::string::npos);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(s.find("\"phase\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(s.front(), '{');
}

TEST_F(ObsTest, JsonlSinkWritesOneSchemaStampedLinePerSnapshot) {
  const std::string path = ::testing::TempDir() + "obs_sink_test.jsonl";
  {
    JsonlSink sink(path);
    // Direct registry call (not a macro) so this holds in OBS_OFF builds
    // too — the library surface is always present, only macros vanish.
    Metrics().GetCounter("obs_test.sink_counter").Add(7);
    JsonObject fields;
    fields.Add("iteration", static_cast<uint64_t>(3));
    sink.WriteSnapshot("test_kind", std::move(fields));
    sink.WriteSnapshot("test_kind2", JsonObject());
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find(std::string("\"schema\":\"") + obs::kMetricsSchema +
                        "\""),
              std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"kind\":\"test_kind\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"iteration\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"obs_test.sink_counter\""), std::string::npos);
}

TEST(ObsSink, InactiveSinkIsANoOp) {
  JsonlSink sink;
  EXPECT_FALSE(sink.active());
  sink.WriteSnapshot("ignored", JsonObject());  // must not crash
}

TEST(ObsJson, NumbersRoundTripAndNonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(0.1), "0.1");
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(std::strtod(JsonNumber(1.0 / 3.0).c_str(), nullptr), 1.0 / 3.0);
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
}

TEST(ObsJson, EscapesControlCharactersAndQuotes) {
  JsonObject o;
  o.Add("k\"ey", "va\\l\nue");
  EXPECT_EQ(o.str(), "{\"k\\\"ey\":\"va\\\\l\\nue\"}");
}

// --- Bit-identity: instrumentation must be observation-only. -------------

struct RunResult {
  std::string model_bytes;
  std::vector<uint16_t> assignments;
  double perplexity = 0;
  std::vector<std::vector<uint16_t>> infer_assignments;
};

RunResult TrainAndInfer(bool instrumented) {
  corpus::SyntheticProfile profile;
  profile.num_docs = 220;
  profile.vocab_size = 300;
  profile.seed = 99;
  const auto corpus = corpus::GenerateCorpus(profile);

  core::CuldaConfig cfg;
  cfg.num_topics = 24;
  cfg.seed = 4321;

  ThreadPool pool(3);
  core::TrainerOptions opts;
  opts.gpus.assign(2, gpusim::TitanXpPascal());
  opts.pool = &pool;

  core::CuldaTrainer trainer(corpus, cfg, opts);
  if (instrumented) {
    for (size_t g = 0; g < trainer.group().size(); ++g) {
      trainer.group().device(g).set_record_trace(true);
    }
  }
  trainer.Train(4);

  RunResult r;
  const auto model = trainer.Gather();
  std::ostringstream bytes;
  core::SaveModel(model, bytes);
  r.model_bytes = bytes.str();
  r.assignments = trainer.ExportAssignments();

  core::InferenceOptions io;
  io.pool = &pool;
  const core::InferenceEngine engine(model, cfg, io);
  std::vector<std::vector<uint32_t>> docs = {
      {1, 2, 3, 4, 5, 6}, {7, 8, 9, 7, 8, 9, 7}, {250, 10, 20, 30}};
  for (const auto& res : engine.InferBatch(docs, 15, uint64_t{77})) {
    r.infer_assignments.push_back(res.assignments);
  }
  r.perplexity = engine.DocumentCompletionPerplexity(corpus, 5);
  return r;
}

TEST(ObsBitIdentity, MetricsAndTracingChangeNoNumericResult) {
  // Baseline: everything off (the global default).
  Metrics().set_enabled(false);
  SpanTracer::Global().set_enabled(false);
  const RunResult off = TrainAndInfer(/*instrumented=*/false);

  // Instrumented: metrics + tracing + device trace recording all on.
  Metrics().ResetValues();
  Metrics().set_enabled(true);
  SpanTracer::Global().Reset();
  SpanTracer::Global().set_enabled(true);
  const RunResult on = TrainAndInfer(/*instrumented=*/true);

  // The instrumented run must actually have observed something…
#ifndef CULDA_OBS_OFF
  EXPECT_GT(Metrics().GetCounter("train.iterations").value(), 0u);
  EXPECT_GT(SpanTracer::Global().span_count(), 0u);
#endif

  Metrics().set_enabled(false);
  Metrics().ResetValues();
  SpanTracer::Global().set_enabled(false);
  SpanTracer::Global().Reset();

  // …and changed nothing: model bytes, z, inference output, perplexity.
  EXPECT_EQ(off.model_bytes, on.model_bytes);
  EXPECT_EQ(off.assignments, on.assignments);
  EXPECT_EQ(off.infer_assignments, on.infer_assignments);
  EXPECT_EQ(off.perplexity, on.perplexity);
}

}  // namespace
}  // namespace culda::obs
