// Tests for the token-balanced partition-by-document chunker (Section 5.1).
#include <gtest/gtest.h>

#include "corpus/chunking.hpp"
#include "corpus/synthetic.hpp"

namespace culda::corpus {
namespace {

Corpus MediumCorpus() {
  SyntheticProfile p;
  p.num_docs = 700;
  p.vocab_size = 500;
  p.avg_doc_length = 60;
  p.doc_length_sigma = 0.9;  // wide spread stresses the balancing
  return GenerateCorpus(p);
}

/// Structural invariants every partition must satisfy, for any chunk count.
void CheckPartition(const Corpus& c, const std::vector<ChunkSpec>& chunks,
                    uint32_t expected_count) {
  ASSERT_EQ(chunks.size(), expected_count);
  EXPECT_EQ(chunks.front().doc_begin, 0u);
  EXPECT_EQ(chunks.back().doc_end, c.num_docs());
  uint64_t tokens = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].id, i);
    EXPECT_LE(chunks[i].doc_begin, chunks[i].doc_end);
    EXPECT_EQ(chunks[i].token_begin, c.doc_offsets()[chunks[i].doc_begin]);
    EXPECT_EQ(chunks[i].token_end, c.doc_offsets()[chunks[i].doc_end]);
    if (i > 0) {
      EXPECT_EQ(chunks[i].doc_begin, chunks[i - 1].doc_end);
    }
    tokens += chunks[i].num_tokens();
  }
  EXPECT_EQ(tokens, c.num_tokens());
}

class PartitionInvariants : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PartitionInvariants, CoverAndChain) {
  const Corpus c = MediumCorpus();
  const auto chunks = PartitionByTokens(c, GetParam());
  CheckPartition(c, chunks, GetParam());
}

TEST_P(PartitionInvariants, BalancedWithinOneDocument) {
  const Corpus c = MediumCorpus();
  const auto chunks = PartitionByTokens(c, GetParam());
  // Each boundary is off the ideal by at most the straddling document, so
  // the imbalance is bounded by 2×max_doc/ideal.
  const double ideal =
      static_cast<double>(c.num_tokens()) / GetParam();
  EXPECT_LE(LoadImbalance(chunks),
            2.0 * static_cast<double>(c.MaxDocLength()) / ideal + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ChunkCounts, PartitionInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 32,
                                           64));

TEST(Partition, SingleChunkIsWholeCorpus) {
  const Corpus c = MediumCorpus();
  const auto chunks = PartitionByTokens(c, 1);
  EXPECT_EQ(chunks[0].num_tokens(), c.num_tokens());
  EXPECT_EQ(chunks[0].num_docs(), c.num_docs());
}

TEST(Partition, FourChunksNearlyEven) {
  const Corpus c = MediumCorpus();
  const auto chunks = PartitionByTokens(c, 4);
  // Documents average ~60 tokens out of ~10k per chunk: imbalance tiny.
  EXPECT_LT(LoadImbalance(chunks), 0.05);
}

TEST(Partition, BalancesByTokensNotDocuments) {
  // First half of docs is 10× longer than second half; an equal-doc split
  // would be 10:1 off, a token split must not be.
  std::vector<uint64_t> offsets{0};
  std::vector<uint32_t> words;
  for (int d = 0; d < 100; ++d) {
    const int len = d < 50 ? 100 : 10;
    for (int t = 0; t < len; ++t) words.push_back(0);
    offsets.push_back(words.size());
  }
  const Corpus c(1, std::move(offsets), std::move(words));
  const auto chunks = PartitionByTokens(c, 2);
  EXPECT_LT(LoadImbalance(chunks), 0.05);
  // The doc boundary lands inside the long half.
  EXPECT_LT(chunks[0].doc_end, 50u);
}

TEST(Partition, MoreChunksThanDocs) {
  const Corpus c(2, {0, 2, 4}, {0, 1, 0, 1});
  const auto chunks = PartitionByTokens(c, 5);
  CheckPartition(c, chunks, 5);  // some chunks will be empty — still valid
}

TEST(Partition, HugeDocumentGoesToOneChunk) {
  // One document holds 90% of tokens.
  std::vector<uint64_t> offsets{0, 900};
  std::vector<uint32_t> words(900, 0);
  for (int d = 0; d < 10; ++d) {
    for (int t = 0; t < 10; ++t) words.push_back(0);
    offsets.push_back(words.size());
  }
  const Corpus c(1, std::move(offsets), std::move(words));
  const auto chunks = PartitionByTokens(c, 4);
  CheckPartition(c, chunks, 4);
  EXPECT_EQ(chunks[0].doc_begin, 0u);
  EXPECT_GE(chunks[0].num_tokens(), 900u);
}

TEST(Partition, LoadImbalanceOfPerfectSplitIsZero) {
  std::vector<ChunkSpec> chunks(2);
  chunks[0] = {0, 0, 1, 0, 50};
  chunks[1] = {1, 1, 2, 50, 100};
  EXPECT_DOUBLE_EQ(LoadImbalance(chunks), 0.0);
}

}  // namespace
}  // namespace culda::corpus
