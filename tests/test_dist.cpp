// Tests for the simulated multi-node fabric and the ClusterTrainer
// (docs/distributed.md): fabric routing/cost accounting, strict flag
// parsing, the staleness-bound invariant, worker-count bit-identity of the
// async schedule, and sync-mode equivalence to a single multi-GPU machine.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "dist/cluster.hpp"
#include "gpusim/fabric.hpp"
#include "util/thread_pool.hpp"

namespace culda::dist {
namespace {

corpus::Corpus TestCorpus(uint64_t docs = 240, uint32_t vocab = 300) {
  corpus::SyntheticProfile p;
  p.num_docs = docs;
  p.vocab_size = vocab;
  p.avg_doc_length = 40;
  return corpus::GenerateCorpus(p);
}

core::CuldaConfig TestConfig(uint32_t k = 16) {
  core::CuldaConfig cfg;
  cfg.num_topics = k;
  return cfg;
}

ClusterOptions TestOptions(uint32_t nodes, uint32_t gpus_per_node,
                           DistMode mode) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.gpus.assign(gpus_per_node, gpusim::V100Volta());
  opts.mode = mode;
  return opts;
}

// ----------------------------------------------------------------- Fabric --

TEST(Fabric, FullyConnectedIsOneDirectHop) {
  const gpusim::LinkSpec link{"test", 1.25, 50.0};  // 1.25 GB/s, 50 µs
  gpusim::Fabric f(4, gpusim::FabricTopology::kFullyConnected, link);
  const uint64_t bytes = 1 << 20;
  EXPECT_EQ(f.RouteHops(0, 2), 1u);
  const double arrival = f.Transfer(0, 2, bytes, 0.0);
  EXPECT_DOUBLE_EQ(arrival, link.TransferSeconds(bytes));
  EXPECT_EQ(f.payload_bytes(), bytes);
  EXPECT_EQ(f.wire_bytes(), bytes);
}

TEST(Fabric, RingStoreAndForwardBillsEveryHop) {
  const gpusim::LinkSpec link{"test", 2.0, 10.0};
  gpusim::Fabric f(4, gpusim::FabricTopology::kRing, link);
  const uint64_t bytes = 4 << 20;
  // 0 → 2 is two hops either way; ties route clockwise (0 → 1 → 2).
  EXPECT_EQ(f.RouteHops(0, 2), 2u);
  const double arrival = f.Transfer(0, 2, bytes, 1.0);
  EXPECT_DOUBLE_EQ(arrival, 1.0 + 2 * link.TransferSeconds(bytes));
  EXPECT_EQ(f.payload_bytes(), bytes);
  EXPECT_EQ(f.wire_bytes(), 2 * bytes);
  // 0 → 3 goes the short way round: one hop on the 0↔3 edge.
  EXPECT_EQ(f.RouteHops(0, 3), 1u);
}

TEST(Fabric, SharedLinkSerializesTransfers) {
  const gpusim::LinkSpec link{"test", 1.0, 0.0};
  gpusim::Fabric f(3, gpusim::FabricTopology::kFullyConnected, link);
  const uint64_t bytes = 1 << 20;
  const double t1 = f.Transfer(0, 1, bytes, 0.0);
  // Same directed link, issued at the same ready time: must queue behind.
  const double t2 = f.Transfer(0, 1, bytes, 0.0);
  EXPECT_DOUBLE_EQ(t1, link.TransferSeconds(bytes));
  EXPECT_DOUBLE_EQ(t2, 2 * link.TransferSeconds(bytes));
  // The reverse direction is a distinct link: no contention.
  EXPECT_DOUBLE_EQ(f.Transfer(1, 0, bytes, 0.0), link.TransferSeconds(bytes));
}

TEST(Fabric, PerLinkOverridesApply) {
  gpusim::Fabric f(3, gpusim::FabricTopology::kFullyConnected,
                   {"slow", 1.0, 100.0});
  const gpusim::LinkSpec fast{"fast", 10.0, 1.0};
  f.SetLink(0, 1, fast);
  const uint64_t bytes = 1 << 20;
  EXPECT_DOUBLE_EQ(f.Transfer(0, 1, bytes, 0.0),
                   fast.TransferSeconds(bytes));
  EXPECT_EQ(f.Link(0, 2).name, "slow");
}

TEST(Fabric, ResetClearsClocksAndCounters) {
  gpusim::Fabric f(2, gpusim::FabricTopology::kRing, {"l", 1.0, 1.0});
  f.Transfer(0, 1, 1024, 0.0);
  ASSERT_GT(f.payload_bytes(), 0u);
  f.Reset();
  EXPECT_EQ(f.payload_bytes(), 0u);
  EXPECT_EQ(f.wire_bytes(), 0u);
  EXPECT_EQ(f.transfer_count(), 0u);
  EXPECT_DOUBLE_EQ(f.busy_until(0, 1), 0.0);
}

TEST(Fabric, RingRejectsNonNeighbourLinkOverride) {
  gpusim::Fabric f(4, gpusim::FabricTopology::kRing, {"l", 1.0, 1.0});
  EXPECT_THROW(f.SetLink(0, 2, {"x", 1.0, 1.0}), Error);
}

// --------------------------------------------------------- strict parsing --

TEST(Parse, TopologyAcceptsKnownSpellings) {
  EXPECT_EQ(gpusim::ParseFabricTopology("ring"),
            gpusim::FabricTopology::kRing);
  EXPECT_EQ(gpusim::ParseFabricTopology("full"),
            gpusim::FabricTopology::kFullyConnected);
  EXPECT_EQ(gpusim::ParseFabricTopology("fully-connected"),
            gpusim::FabricTopology::kFullyConnected);
}

TEST(Parse, TopologyRejectsEchoingValueAndSpellings) {
  try {
    gpusim::ParseFabricTopology("mesh");
    FAIL() << "bad topology must be rejected";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("mesh"), std::string::npos);
    EXPECT_NE(msg.find("ring"), std::string::npos);
    EXPECT_NE(msg.find("full"), std::string::npos);
  }
}

TEST(Parse, LinkSpecPresetsAndCustomPairs) {
  EXPECT_DOUBLE_EQ(gpusim::ParseLinkSpec("eth10g").bandwidth_gbps, 1.25);
  EXPECT_DOUBLE_EQ(gpusim::ParseLinkSpec("eth100g").bandwidth_gbps, 12.5);
  const gpusim::LinkSpec custom = gpusim::ParseLinkSpec("2.5@40");
  EXPECT_DOUBLE_EQ(custom.bandwidth_gbps, 2.5);
  EXPECT_DOUBLE_EQ(custom.latency_us, 40.0);
}

TEST(Parse, LinkSpecRejectsGarbage) {
  for (const char* bad : {"", "ethernet", "2.5@40x", "2.5@", "@40", "-1@40",
                          "0@40", "2.5@-1", "2.5@40@7"}) {
    try {
      gpusim::ParseLinkSpec(bad);
      FAIL() << "'" << bad << "' must be rejected";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(bad), std::string::npos) << bad;
      EXPECT_NE(msg.find("eth10g"), std::string::npos) << bad;
      EXPECT_NE(msg.find("GBPS@LATENCY_US"), std::string::npos) << bad;
    }
  }
}

TEST(Parse, DistModeStrict) {
  EXPECT_EQ(ParseDistMode("sync"), DistMode::kSync);
  EXPECT_EQ(ParseDistMode("async"), DistMode::kAsync);
  try {
    ParseDistMode("asynchronous");
    FAIL() << "bad mode must be rejected";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("asynchronous"), std::string::npos);
    EXPECT_NE(msg.find("sync"), std::string::npos);
    EXPECT_NE(msg.find("async"), std::string::npos);
  }
}

// --------------------------------------------------------- ClusterTrainer --

TEST(Cluster, SyncModeMatchesSingleMachineBitForBit) {
  const auto c = TestCorpus();
  const auto cfg = TestConfig();
  // 2 nodes × 2 GPUs must produce the same assignments as one machine with
  // 4 GPUs: the document partition, topic init, and sampler keying are all
  // functions of the corpus-global token index, and sync mode exchanges the
  // full φ every sweep — only the clocks may differ.
  ClusterTrainer cluster(c, cfg, TestOptions(2, 2, DistMode::kSync));
  core::TrainerOptions single;
  single.gpus.assign(4, gpusim::V100Volta());
  single.chunks_per_gpu = 1;
  core::CuldaTrainer machine(c, cfg, single);
  for (int i = 0; i < 3; ++i) {
    cluster.Sweep();
    machine.Step();
    EXPECT_EQ(cluster.ExportAssignments(), machine.ExportAssignments())
        << "diverged at sweep " << i;
  }
  EXPECT_EQ(cluster.max_observed_staleness(), 0u);
  EXPECT_GT(cluster.history().back().network_payload_bytes, 0u);
}

TEST(Cluster, AsyncStalenessBoundIsEnforced) {
  const auto c = TestCorpus();
  const auto cfg = TestConfig();
  auto opts = TestOptions(4, 1, DistMode::kAsync);
  opts.staleness_bound = 1;
  ClusterTrainer t(c, cfg, opts);
  t.Train(3);
  EXPECT_LE(t.max_observed_staleness(), 1u);
}

TEST(Cluster, AsyncUnboundedStalenessReachesNaturalCap) {
  const auto c = TestCorpus();
  const auto cfg = TestConfig();
  ClusterTrainer t(c, cfg, TestOptions(4, 1, DistMode::kAsync));
  t.Train(2);  // ≥ N rounds: every shard ages through a full circulation
  EXPECT_EQ(t.max_observed_staleness(), 3u);
}

TEST(Cluster, AsyncTighterBoundCostsMoreNetwork) {
  const auto c = TestCorpus();
  const auto cfg = TestConfig();
  auto fresh = TestOptions(3, 1, DistMode::kAsync);
  fresh.staleness_bound = 0;  // refresh every shard every round
  ClusterTrainer eager(c, cfg, fresh);
  ClusterTrainer nomadic(c, cfg, TestOptions(3, 1, DistMode::kAsync));
  eager.Train(2);
  nomadic.Train(2);
  EXPECT_GT(eager.fabric().payload_bytes(),
            nomadic.fabric().payload_bytes());
  EXPECT_EQ(eager.max_observed_staleness(), 0u);
}

TEST(Cluster, AsyncScheduleIsWorkerCountInvariant) {
  const auto c = TestCorpus();
  const auto cfg = TestConfig();
  auto opts = TestOptions(3, 2, DistMode::kAsync);
  ClusterTrainer serial(c, cfg, opts);
  ThreadPool pool(3);
  opts.pool = &pool;
  ClusterTrainer parallel(c, cfg, opts);
  for (int i = 0; i < 2; ++i) {
    const SweepStats a = serial.Sweep();
    const SweepStats b = parallel.Sweep();
    EXPECT_EQ(a.sim_seconds, b.sim_seconds) << "sweep " << i;
    EXPECT_EQ(a.network_payload_bytes, b.network_payload_bytes);
    EXPECT_EQ(a.network_wire_bytes, b.network_wire_bytes);
    EXPECT_EQ(a.max_staleness, b.max_staleness);
  }
  EXPECT_EQ(serial.ExportAssignments(), parallel.ExportAssignments());
  EXPECT_EQ(serial.Now(), parallel.Now());
}

TEST(Cluster, AsyncLikelihoodImproves) {
  const auto c = TestCorpus(400, 400);
  const auto cfg = TestConfig();
  ClusterTrainer t(c, cfg, TestOptions(3, 1, DistMode::kAsync));
  const double before = t.LogLikelihoodPerToken();
  t.Train(8);
  EXPECT_GT(t.LogLikelihoodPerToken(), before + 0.1);
}

TEST(Cluster, AsyncSweepResamplesEveryTokenOnce) {
  // One sweep must change the model consistently: gather after a sweep and
  // validate the full count invariants (Σφ = tokens etc. — a token sampled
  // twice or missed would break them).
  const auto c = TestCorpus();
  const auto cfg = TestConfig();
  ClusterTrainer t(c, cfg, TestOptions(3, 2, DistMode::kAsync));
  t.Sweep();
  t.Gather().Validate(c);
}

TEST(Cluster, SyncGatherValidates) {
  const auto c = TestCorpus();
  const auto cfg = TestConfig();
  ClusterTrainer t(c, cfg, TestOptions(2, 2, DistMode::kSync));
  t.Sweep();
  t.Gather().Validate(c);
}

TEST(Cluster, AsyncRingHandoffsAdvanceTheClock) {
  const auto c = TestCorpus();
  const auto cfg = TestConfig();
  ClusterTrainer t(c, cfg, TestOptions(3, 1, DistMode::kAsync));
  const SweepStats s = t.Train(1).back();
  EXPECT_GT(s.sim_seconds, 0.0);
  EXPECT_GT(s.network_payload_bytes, 0u);
  // The first round of the first sweep has no handoffs (shards start
  // resident); the remaining N−1 rounds each hand every node's shard to its
  // successor: (N−1)·N = 6 transfers.
  EXPECT_EQ(t.fabric().transfer_count(), 6u);
}

}  // namespace
}  // namespace culda::dist
