// Unit tests for the sparse/dense matrix substrate.
#include <gtest/gtest.h>

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "util/check.hpp"

namespace culda::sparse {
namespace {

using Csr16 = CsrMatrix<uint16_t, int32_t>;

Csr16 SmallMatrix() {
  // rows: {0:(1,5),(3,2)}, {1:(0,1)}, {2: empty}, {3:(2,7)}
  Csr16 m(4, 4);
  Csr16::RowBuilder b(&m);
  {
    const uint16_t i0[] = {1, 3};
    const int32_t v0[] = {5, 2};
    b.AppendRow(0, i0, v0);
  }
  {
    const uint16_t i1[] = {0};
    const int32_t v1[] = {1};
    b.AppendRow(1, i1, v1);
  }
  b.AppendRow(2, {}, {});
  {
    const uint16_t i3[] = {2};
    const int32_t v3[] = {7};
    b.AppendRow(3, i3, v3);
  }
  b.Finish();
  return m;
}

TEST(Csr, EmptyMatrixIsValid) {
  Csr16 m(3, 5);
  m.Validate();
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.RowLength(1), 0u);
}

TEST(Csr, RowBuilderProducesExpectedStructure) {
  const Csr16 m = SmallMatrix();
  m.Validate();
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.RowLength(0), 2u);
  EXPECT_EQ(m.RowLength(2), 0u);
  EXPECT_EQ(m.At(0, 1), 5);
  EXPECT_EQ(m.At(0, 3), 2);
  EXPECT_EQ(m.At(0, 2), 0);
  EXPECT_EQ(m.At(3, 2), 7);
}

TEST(Csr, RowBuilderEnforcesOrder) {
  Csr16 m(2, 2);
  Csr16::RowBuilder b(&m);
  EXPECT_THROW(b.AppendRow(1, {}, {}), Error);
}

TEST(Csr, RowBuilderFinishChecksCompleteness) {
  Csr16 m(2, 2);
  Csr16::RowBuilder b(&m);
  b.AppendRow(0, {}, {});
  EXPECT_THROW(b.Finish(), Error);
}

TEST(Csr, AssignFromDense) {
  Csr16 m(3, 5);
  m.AssignFromDense([](size_t r, std::span<int32_t> row) {
    if (r == 0) row[2] = 9;
    if (r == 2) {
      row[0] = 1;
      row[4] = 4;
    }
  });
  m.Validate();
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.At(0, 2), 9);
  EXPECT_EQ(m.At(2, 4), 4);
  EXPECT_EQ(m.RowLength(1), 0u);
}

TEST(Csr, RowBytesCountsIndexAndValue) {
  const Csr16 m = SmallMatrix();
  EXPECT_EQ(m.RowBytes(0), 2u * (2 + 4));
}

TEST(Csr, IndexTypeCapacityEnforced) {
  EXPECT_NO_THROW((CsrMatrix<uint16_t, int32_t>(1, 65536)));
  EXPECT_THROW((CsrMatrix<uint16_t, int32_t>(1, 65537)), Error);
  EXPECT_NO_THROW((CsrMatrix<uint32_t, int32_t>(1, 1 << 20)));
}

TEST(Csr, WideIndexVariantWorks) {
  CsrMatrix<uint32_t, int32_t> m(2, 100000);
  CsrMatrix<uint32_t, int32_t>::RowBuilder b(&m);
  const uint32_t i0[] = {99999};
  const int32_t v0[] = {3};
  b.AppendRow(0, i0, v0);
  b.AppendRow(1, {}, {});
  b.Finish();
  m.Validate();
  EXPECT_EQ(m.At(0, 99999), 3);
}

TEST(Csr, MutableValues) {
  Csr16 m = SmallMatrix();
  m.mutable_values()[0] = 42;
  EXPECT_EQ(m.At(0, 1), 42);
}

TEST(Dense, FillAndIndex) {
  DenseMatrix<uint16_t> m(3, 4);
  m.Fill(7);
  EXPECT_EQ(m(2, 3), 7);
  m(1, 2) = 9;
  EXPECT_EQ(m(1, 2), 9);
  EXPECT_EQ(m.Row(1)[2], 9);
}

TEST(Dense, AccumulateAdds) {
  DenseMatrix<uint16_t> a(2, 2), b(2, 2);
  a.Fill(1);
  b.Fill(2);
  a.Accumulate(b);
  EXPECT_EQ(a(0, 0), 3);
  EXPECT_EQ(a(1, 1), 3);
}

TEST(Dense, AccumulateShapeChecked) {
  DenseMatrix<int> a(2, 2), b(2, 3);
  EXPECT_THROW(a.Accumulate(b), Error);
}

TEST(Dense, TotalBytes) {
  DenseMatrix<uint16_t> m(10, 20);
  EXPECT_EQ(m.TotalBytes(), 400u);
}

}  // namespace
}  // namespace culda::sparse
