// Topology discovery and the placement surface of the topology-aware
// runtime: cpulist parsing against canned /sys fixtures, pinning fallback,
// per-socket queues and cross-socket stealing, first-touched worker arenas,
// the slot-0 collision guard, and the placement-parameterized determinism
// contract (bit-identical results across {workers}×{pinned,unpinned}×
// {shared,replicated}). Labeled `placement` (the dedicated CI job) and
// `metrics` (the TSan run — the pool is concurrency-heavy by nature).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/inference.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/topology.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace culda {
namespace {

// ---------------------------------------------------------------- cpulist --

TEST(ParseCpuList, RangesAndSingles) {
  EXPECT_EQ(ParseCpuList("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(ParseCpuList("5"), (std::vector<int>{5}));
}

TEST(ParseCpuList, WhitespaceAndSysfsNewlineTolerated) {
  EXPECT_EQ(ParseCpuList(" 0-1 , 4 \n"), (std::vector<int>{0, 1, 4}));
  EXPECT_EQ(ParseCpuList("0-3\n"), (std::vector<int>{0, 1, 2, 3}));
}

TEST(ParseCpuList, EmptyListIsNoCpus) {
  // A memoryless node's cpulist really is empty (modulo the newline).
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList(" \n").empty());
}

TEST(ParseCpuList, OverlapsCollapseSortedUnique) {
  EXPECT_EQ(ParseCpuList("2,0-2,1"), (std::vector<int>{0, 1, 2}));
}

TEST(ParseCpuList, MalformedInputsThrow) {
  EXPECT_THROW(ParseCpuList("3-1"), Error);   // reversed range
  EXPECT_THROW(ParseCpuList("-2"), Error);    // negative / dangling dash
  EXPECT_THROW(ParseCpuList("1-"), Error);
  EXPECT_THROW(ParseCpuList("a"), Error);
  EXPECT_THROW(ParseCpuList("0,,1"), Error);
  EXPECT_THROW(ParseCpuList("0,"), Error);    // trailing comma
  EXPECT_THROW(ParseCpuList("0;1"), Error);
}

// ----------------------------------------------------- /sys node fixtures --

/// Builds a /sys/devices/system/node-style fixture directory containing
/// node<N>/cpulist files with the given contents.
std::string WriteNodeFixture(
    const std::string& tag,
    const std::vector<std::pair<int, std::string>>& nodes) {
  const std::string dir = ::testing::TempDir() + "/culda_nodes_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (const auto& [n, cpulist] : nodes) {
    const std::string node_dir = dir + "/node" + std::to_string(n);
    std::filesystem::create_directories(node_dir);
    std::ofstream(node_dir + "/cpulist") << cpulist;
  }
  return dir;
}

TEST(TopologyFromSys, TwoNodeLayout) {
  const auto dir =
      WriteNodeFixture("two", {{0, "0-3\n"}, {1, "4-7\n"}});
  const auto topo = TopologyFromSys(dir, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(topo.num_nodes, 2);
  EXPECT_EQ(topo.cpus, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(topo.node_of, (std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1}));
  EXPECT_EQ(topo.Summary(), "8 CPUs / 2 nodes (0-3 | 4-7)");
  EXPECT_EQ(topo.NodeCpus()[1], (std::vector<int>{4, 5, 6, 7}));
}

TEST(TopologyFromSys, SingleNodeCollapses) {
  const auto dir = WriteNodeFixture("one", {{0, "0-1\n"}});
  const auto topo = TopologyFromSys(dir, {0, 1});
  EXPECT_EQ(topo.num_nodes, 1);
  EXPECT_EQ(topo.node_of, (std::vector<int>{0, 0}));
  EXPECT_EQ(topo.Summary(), "2 CPUs / 1 node (0-1)");
}

TEST(TopologyFromSys, OfflineCpuHolesIntersect) {
  // The affinity mask has holes (offline CPUs / restricted cpuset): only
  // the intersection survives, nodes keep their claims.
  const auto dir =
      WriteNodeFixture("holes", {{0, "0-3\n"}, {1, "4-7\n"}});
  const auto topo = TopologyFromSys(dir, {0, 2, 5, 7});
  EXPECT_EQ(topo.cpus, (std::vector<int>{0, 2, 5, 7}));
  EXPECT_EQ(topo.node_of, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(topo.num_nodes, 2);
}

TEST(TopologyFromSys, SparseSysNodeNumbersCompactDense) {
  // Only sys nodes 3 and 7 hold effective CPUs → dense indices 0 and 1.
  const auto dir = WriteNodeFixture("sparse", {{3, "0\n"}, {7, "1\n"}});
  const auto topo = TopologyFromSys(dir, {0, 1});
  EXPECT_EQ(topo.num_nodes, 2);
  EXPECT_EQ(topo.node_of, (std::vector<int>{0, 1}));
}

TEST(TopologyFromSys, UnclaimedCpusLandOnNodeZero) {
  const auto dir = WriteNodeFixture("unclaimed", {{0, "0-1\n"}});
  const auto topo = TopologyFromSys(dir, {0, 1, 9});
  EXPECT_EQ(topo.num_nodes, 1);
  EXPECT_EQ(topo.node_of, (std::vector<int>{0, 0, 0}));
}

TEST(TopologyFromSys, EmptyNodeDirAndMissingDirAreOneNode) {
  const auto empty = WriteNodeFixture("empty", {});
  for (const std::string& dir : {empty, empty + "/does_not_exist"}) {
    const auto topo = TopologyFromSys(dir, {0, 1, 2});
    EXPECT_EQ(topo.num_nodes, 1);
    EXPECT_EQ(topo.node_of, (std::vector<int>{0, 0, 0}));
  }
}

TEST(TopologyFromSys, MemorylessNodeWithEmptyCpulistIgnored) {
  const auto dir = WriteNodeFixture("memless", {{0, "\n"}, {1, "0-1\n"}});
  const auto topo = TopologyFromSys(dir, {0, 1});
  EXPECT_EQ(topo.num_nodes, 1);  // node0 claimed nothing → compacted away
  EXPECT_EQ(topo.node_of, (std::vector<int>{0, 0}));
}

TEST(Topology, EffectiveCpusNeverEmptyAndDefaultWorkersDerive) {
  const auto cpus = EffectiveCpus();
  ASSERT_FALSE(cpus.empty());
  EXPECT_EQ(EffectiveCpuCount(), cpus.size());
  EXPECT_EQ(DefaultWorkerCount(), cpus.size() > 1 ? cpus.size() - 1 : 0);
  EXPECT_GE(SystemTopology().num_nodes, 1);
  EXPECT_EQ(SystemTopology().cpu_count(), cpus.size());
}

// ----------------------------------------------------------------- pinning --

TEST(Placement, PinToOwnAffinityMaskSucceeds) {
  ThreadPoolOptions opts;
  opts.pin = true;
  ThreadPool pool(2, opts);
#if defined(__linux__)
  // The assigned CPUs come from our own affinity mask, so pinning to them
  // is always permitted.
  EXPECT_EQ(pool.pinned_worker_count(), 2u);
#else
  EXPECT_EQ(pool.pinned_worker_count(), 0u);
#endif
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(Placement, PinFallsBackWhenCpuExceedsSetsize) {
  // CPU id beyond CPU_SETSIZE: CPU_SET would be UB, so the pool must take
  // the guard path — every worker unpinned, pool fully functional.
  CpuTopology topo;
  topo.cpus = {1 << 19};
  topo.node_of = {0};
  topo.num_nodes = 1;
  ThreadPoolOptions opts;
  opts.pin = true;
  opts.topology = &topo;
  ThreadPool pool(2, opts);
  EXPECT_EQ(pool.pinned_worker_count(), 0u);
  std::atomic<int> count{0};
  pool.ParallelFor(64, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(Placement, PinFallsBackWhenSetaffinityRejectsCpu) {
#if defined(__linux__)
  if (std::thread::hardware_concurrency() >= CPU_SETSIZE) {
    GTEST_SKIP() << "host may actually have CPU " << (CPU_SETSIZE - 1);
  }
  // A CPU id inside CPU_SETSIZE but not online: pthread_setaffinity_np
  // returns EINVAL and the worker runs unpinned.
  CpuTopology topo;
  topo.cpus = {CPU_SETSIZE - 1};
  topo.node_of = {0};
  topo.num_nodes = 1;
  ThreadPoolOptions opts;
  opts.pin = true;
  opts.topology = &topo;
  ThreadPool pool(1, opts);
  EXPECT_EQ(pool.pinned_worker_count(), 0u);
  std::atomic<int> count{0};
  pool.ParallelFor(16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
#else
  GTEST_SKIP() << "linux-only";
#endif
}

// ------------------------------------------------- domains and stealing --

/// Two CPUs on two different NUMA nodes — lets a 1-core host exercise the
/// multi-domain scheduler (placement is about scheduling structure, not
/// physical CPUs; nothing here requires the CPUs to exist).
CpuTopology TwoSocketTopology() {
  CpuTopology topo;
  topo.cpus = {0, 1};
  topo.node_of = {0, 1};
  topo.num_nodes = 2;
  return topo;
}

TEST(Placement, SingleNodeTopologyIsOneDomain) {
  const auto topo = TwoSocketTopology();
  ThreadPoolOptions two;
  two.topology = &topo;
  ThreadPool multi(2, two);
  EXPECT_EQ(multi.socket_count(), 2u);
  EXPECT_EQ(multi.socket_of_worker(0), 0);
  EXPECT_EQ(multi.socket_of_worker(1), 1);

  ThreadPool flat(2);  // machine topology; degenerate on single-node hosts
  EXPECT_GE(flat.socket_count(), 1u);
  ThreadPool inline_pool(0);
  EXPECT_EQ(inline_pool.socket_count(), 1u);
  EXPECT_EQ(inline_pool.current_socket(), 0);
}

TEST(Placement, CrossSocketStealsHappenAndAreCounted) {
  const auto topo = TwoSocketTopology();
  ThreadPoolOptions opts;
  opts.topology = &topo;
  ThreadPool pool(2, opts);
  ASSERT_EQ(pool.socket_count(), 2u);
  EXPECT_EQ(pool.steal_count(), 0u);

  // The domain-1 worker parks inside its first shard until some home-0
  // thread (the caller or worker 0) exhausts the domain-0 range and steals
  // from domain 1 — so at least one steal is *forced*, not just likely.
  // (36 items / 2 workers → 12 shards, split 8:4 between the domains, so
  // domain 1 always has shards left to steal while its worker is parked.)
  std::vector<std::atomic<int>> hits(36);
  pool.ParallelFor(36, [&](size_t i) {
    if (pool.current_socket() == 1) {
      while (pool.steal_count() == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    hits[i].fetch_add(1);
  });
  EXPECT_GE(pool.steal_count(), 1u);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Placement, NoStealsOnSingleDomain) {
  ThreadPool pool(2);  // this host is single-node → one domain
  if (pool.socket_count() != 1) GTEST_SKIP() << "multi-node host";
  std::atomic<int> count{0};
  pool.ParallelFor(500, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 500);
  EXPECT_EQ(pool.steal_count(), 0u);
}

TEST(Placement, ForEachSocketRunsOnAHomeWorker) {
  const auto topo = TwoSocketTopology();
  ThreadPoolOptions opts;
  opts.topology = &topo;
  ThreadPool pool(2, opts);
  std::vector<std::atomic<int>> runs(pool.socket_count());
  std::vector<std::atomic<int>> socket_seen(pool.socket_count());
  pool.ForEachSocket([&](size_t s) {
    runs[s].fetch_add(1);
    socket_seen[s].store(pool.current_socket());
    EXPECT_NE(pool.current_worker_id(), -1);
  });
  for (size_t s = 0; s < pool.socket_count(); ++s) {
    EXPECT_EQ(runs[s].load(), 1);
    EXPECT_EQ(socket_seen[s].load(), static_cast<int>(s));
  }
}

TEST(Placement, ForEachSocketInlineWithoutWorkers) {
  ThreadPool pool(0);
  int runs = 0;
  pool.ForEachSocket([&](size_t s) {
    EXPECT_EQ(s, 0u);
    EXPECT_EQ(pool.current_worker_id(), -1);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(Placement, ForEachSocketPropagatesExceptions) {
  const auto topo = TwoSocketTopology();
  ThreadPoolOptions opts;
  opts.topology = &topo;
  ThreadPool pool(2, opts);
  EXPECT_THROW(
      pool.ForEachSocket([&](size_t s) {
        if (s == 1) throw Error("boom");
      }),
      Error);
}

// ------------------------------------------------------------------ arenas --

TEST(Placement, WorkerArenaReusedAcrossInvocations) {
  ThreadPool pool(2);
  const auto a = pool.WorkerArena(64);
  ASSERT_EQ(a.size(), 64u);
  for (const std::byte b : a) EXPECT_EQ(b, std::byte{0});
  std::memset(a.data(), 0xAB, a.size());

  // Same slot, same-or-smaller size → same backing memory, contents intact.
  EXPECT_EQ(pool.WorkerArena(64).data(), a.data());
  EXPECT_EQ(pool.WorkerArena(16).data(), a.data());
  EXPECT_EQ(static_cast<unsigned char>(a[0]), 0xAB);

  // Growth reallocates (fresh zero-filled block — contents do not carry
  // over; callers treat the arena as scratch).
  const auto big = pool.WorkerArena(2 * 4096 + 1);
  ASSERT_EQ(big.size(), 2 * 4096 + 1u);
  for (const std::byte b : big) EXPECT_EQ(b, std::byte{0});
}

TEST(Placement, WorkerArenasAreDistinctPerSlotAndStable) {
  ThreadPool pool(2);
  std::vector<std::atomic<std::byte*>> round1(pool.worker_count() + 1);
  std::vector<std::atomic<std::byte*>> round2(pool.worker_count() + 1);
  const auto collect = [&](std::vector<std::atomic<std::byte*>>& out) {
    pool.ParallelFor(256, [&](size_t) {
      out[static_cast<size_t>(pool.current_worker_id() + 1)].store(
          pool.WorkerArena(32).data());
    });
  };
  collect(round1);
  collect(round2);
  // Distinct slots → distinct arenas. The caller (slot 0) usually claims a
  // shard too, but shard claiming is dynamic: under machine load the
  // workers may drain the whole range first, so only the slots that
  // actually ran are asserted on (some slot always does — every index
  // executes somewhere).
  size_t populated = 0;
  for (const auto& p : round1) populated += p.load() != nullptr ? 1 : 0;
  ASSERT_GT(populated, 0u);
  for (size_t i = 0; i < round1.size(); ++i) {
    for (size_t j = i + 1; j < round1.size(); ++j) {
      if (round1[i].load() && round1[j].load()) {
        EXPECT_NE(round1[i].load(), round1[j].load());
      }
    }
    // Stable across ParallelFor invocations (first-touch pays off because
    // the memory is *reused*, not reallocated per launch).
    if (round1[i].load() && round2[i].load()) {
      EXPECT_EQ(round1[i].load(), round2[i].load());
    }
  }
}

// ---------------------------------------------------- dense-slot contract --

TEST(Placement, SecondExternalThreadIsRejectedNotCorrupted) {
  ThreadPool pool(1);
  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  std::thread holder([&] {
    pool.ParallelFor(4, [&](size_t) {
      inside.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      ran.fetch_add(1);
    });
  });
  while (!inside.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // `holder` owns slot 0; a second non-worker thread entering would silently
  // share that slot (and its arena), so the pool must refuse.
  EXPECT_THROW(pool.ParallelFor(1, [](size_t) {}), Error);
  release.store(true);
  holder.join();
  EXPECT_EQ(ran.load(), 4);

  // After the owner leaves, the slot is free again.
  std::atomic<int> after{0};
  pool.ParallelFor(8, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(Placement, OwnerMayReenterRecursively) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(2, [&](size_t) {
    pool.ParallelFor(2, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 4);
}

// --------------------------------------- placement-blind result contract --

corpus::Corpus SmallCorpus() {
  corpus::SyntheticProfile p;
  p.num_docs = 120;
  p.vocab_size = 200;
  p.avg_doc_length = 25;
  return corpus::GenerateCorpus(p);
}

core::CuldaConfig SmallConfig() {
  core::CuldaConfig cfg;
  cfg.num_topics = 16;
  return cfg;
}

TEST(PlacementDeterminism, TrainerIdenticalAcrossPlacements) {
  const auto corpus = SmallCorpus();
  const auto run = [&](ThreadPool* pool) {
    core::TrainerOptions opts;
    opts.pool = pool;
    core::CuldaTrainer trainer(corpus, SmallConfig(), opts);
    trainer.Train(3);
    return trainer.ExportAssignments();
  };
  const auto baseline = run(nullptr);

  ThreadPool unpinned(2);
  EXPECT_EQ(run(&unpinned), baseline);

  ThreadPoolOptions pin_opts;
  pin_opts.pin = true;
  ThreadPool pinned(2, pin_opts);
  EXPECT_EQ(run(&pinned), baseline);

  const auto topo = TwoSocketTopology();
  ThreadPoolOptions numa_opts;
  numa_opts.topology = &topo;
  ThreadPool two_socket(2, numa_opts);
  ASSERT_EQ(two_socket.socket_count(), 2u);
  EXPECT_EQ(run(&two_socket), baseline);
}

TEST(PlacementDeterminism, ReplicatedEngineBitIdenticalToShared) {
  const auto corpus = SmallCorpus();
  core::CuldaTrainer trainer(corpus, SmallConfig(), {});
  trainer.Train(3);
  const auto model = trainer.Gather();

  corpus::SyntheticProfile hp;
  hp.num_docs = 30;
  hp.vocab_size = 200;
  hp.avg_doc_length = 20;
  hp.seed = 99;
  const auto heldout = corpus::GenerateCorpus(hp);
  std::vector<std::vector<uint32_t>> docs;
  for (size_t d = 0; d < heldout.num_docs(); ++d) {
    const auto tokens = heldout.DocTokens(d);
    docs.emplace_back(tokens.begin(), tokens.end());
  }

  const auto topo = TwoSocketTopology();
  ThreadPoolOptions opts;
  opts.topology = &topo;
  ThreadPool pool(2, opts);
  ASSERT_EQ(pool.socket_count(), 2u);

  for (const auto sampler :
       {core::InferSampler::kSparseBucket, core::InferSampler::kAliasMH}) {
    core::InferenceOptions sequential;
    sequential.sampler = sampler;
    core::InferenceOptions shared = sequential;
    shared.pool = &pool;
    core::InferenceOptions replicated = shared;
    replicated.numa_replicate = true;

    const core::InferenceEngine seq_engine(model, SmallConfig(), sequential);
    const core::InferenceEngine shared_engine(model, SmallConfig(), shared);
    const core::InferenceEngine repl_engine(model, SmallConfig(), replicated);

    const auto a = seq_engine.InferBatch(docs, 10);
    const auto b = shared_engine.InferBatch(docs, 10);
    const auto c = repl_engine.InferBatch(docs, 10);
    ASSERT_EQ(a.size(), docs.size());
    for (size_t d = 0; d < docs.size(); ++d) {
      EXPECT_EQ(a[d].assignments, b[d].assignments);
      EXPECT_EQ(a[d].assignments, c[d].assignments);
      EXPECT_EQ(a[d].topic_counts, c[d].topic_counts);
    }
    EXPECT_EQ(seq_engine.DocumentCompletionPerplexity(heldout, 10),
              repl_engine.DocumentCompletionPerplexity(heldout, 10));
    EXPECT_EQ(shared_engine.DocumentCompletionPerplexity(heldout, 10),
              repl_engine.DocumentCompletionPerplexity(heldout, 10));
  }
}

TEST(PlacementDeterminism, ReplicateIsNoOpOnSingleSocket) {
  const auto corpus = SmallCorpus();
  core::CuldaTrainer trainer(corpus, SmallConfig(), {});
  trainer.Train(2);
  const auto model = trainer.Gather();

  ThreadPool pool(2);  // machine topology: single domain on this host
  core::InferenceOptions opts;
  opts.pool = &pool;
  opts.numa_replicate = true;
  const core::InferenceEngine engine(model, SmallConfig(), opts);
  const core::InferenceEngine plain(model, SmallConfig());
  const std::vector<uint32_t> doc{0, 3, 5, 7, 11, 13, 17, 19};
  EXPECT_EQ(engine.InferDocument(doc).assignments,
            plain.InferDocument(doc).assignments);
}

}  // namespace
}  // namespace culda
