// Property sweep over the sampler's optimization-switch grid: every
// combination of the Section 6 flags must produce IDENTICAL topic
// assignments (the switches change billed traffic, never values), and the
// billed traffic must be monotone in the expected directions.
#include <gtest/gtest.h>

#include <tuple>

#include "core/kernels.hpp"
#include "corpus/chunking.hpp"
#include "corpus/synthetic.hpp"
#include "util/philox.hpp"

namespace culda::core {
namespace {

struct SamplerRun {
  std::vector<uint16_t> z;
  gpusim::KernelCounters counters;
};

SamplerRun RunWith(const CuldaConfig& cfg) {
  corpus::SyntheticProfile p;
  p.num_docs = 150;
  p.vocab_size = 200;
  p.avg_doc_length = 50;
  const auto corpus = corpus::GenerateCorpus(p);

  gpusim::Device device(gpusim::TitanXpPascal(), 0);
  ChunkState chunk;
  chunk.layout = corpus::BuildWordFirstChunk(
      corpus, corpus::PartitionByTokens(corpus, 1)[0]);
  chunk.work =
      corpus::BuildBlockWorkList(chunk.layout, cfg.max_tokens_per_block);
  chunk.z.resize(chunk.layout.num_tokens());
  for (uint64_t t = 0; t < chunk.z.size(); ++t) {
    PhiloxStream rng(cfg.seed, chunk.layout.token_global[t]);
    chunk.z[t] = static_cast<uint16_t>(rng.NextBelow(cfg.num_topics));
  }
  chunk.theta = ThetaMatrix(chunk.layout.num_docs(), cfg.num_topics);
  PhiReplica replica(cfg.num_topics, corpus.vocab_size());
  RunUpdatePhiKernel(device, cfg, chunk, replica);
  RunUpdateThetaKernel(device, cfg, chunk);
  RunComputeNkKernel(device, cfg, replica);

  const auto rec = RunSamplingKernel(device, cfg, chunk, replica, 1);
  return {chunk.z, rec.counters};
}

using FlagGrid = std::tuple<bool, bool, bool, bool, bool>;

class SamplerFlagGrid : public ::testing::TestWithParam<FlagGrid> {};

TEST_P(SamplerFlagGrid, FlagsNeverChangeResults) {
  const auto [share, reuse, compress, l1, shared_trees] = GetParam();
  CuldaConfig cfg;
  cfg.num_topics = 48;
  cfg.share_p2_tree = share;
  cfg.reuse_pstar = reuse;
  cfg.compress_indices = compress;
  cfg.l1_for_indices = l1;
  cfg.use_shared_trees = shared_trees;

  CuldaConfig reference;
  reference.num_topics = 48;

  const SamplerRun a = RunWith(cfg);
  const SamplerRun b = RunWith(reference);
  EXPECT_EQ(a.z, b.z) << "optimization flags changed sampled topics";
  EXPECT_GT(a.counters.flops, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, SamplerFlagGrid,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name;
      name += std::get<0>(info.param) ? "Share" : "noShare";
      name += std::get<1>(info.param) ? "Pstar" : "noPstar";
      name += std::get<2>(info.param) ? "C16" : "C32";
      name += std::get<3>(info.param) ? "L1" : "noL1";
      name += std::get<4>(info.param) ? "Shm" : "noShm";
      return name;
    });

TEST(SamplerTrafficMonotonicity, EachOptimizationReducesOffChipBytes) {
  CuldaConfig base;
  base.num_topics = 48;
  const uint64_t optimized = RunWith(base).counters.TotalOffChipBytes();

  for (const auto& [label, mutate] :
       std::vector<std::pair<const char*,
                             std::function<void(CuldaConfig&)>>>{
           {"share_p2_tree",
            [](CuldaConfig& c) { c.share_p2_tree = false; }},
           {"reuse_pstar", [](CuldaConfig& c) { c.reuse_pstar = false; }},
           {"compress_indices",
            [](CuldaConfig& c) { c.compress_indices = false; }},
           {"use_shared_trees",
            [](CuldaConfig& c) { c.use_shared_trees = false; }},
       }) {
    CuldaConfig cfg = base;
    mutate(cfg);
    const uint64_t degraded = RunWith(cfg).counters.TotalOffChipBytes();
    EXPECT_GT(degraded, optimized) << "disabling " << label
                                   << " should increase off-chip traffic";
  }
}

TEST(SamplerTrafficMonotonicity, L1RoutingMovesNotAdds) {
  CuldaConfig on;
  on.num_topics = 48;
  CuldaConfig off = on;
  off.l1_for_indices = false;
  const auto a = RunWith(on).counters;
  const auto b = RunWith(off).counters;
  // Same total bytes, different placement.
  EXPECT_EQ(a.TotalOffChipBytes(), b.TotalOffChipBytes());
  EXPECT_GT(a.l1_read_bytes, b.l1_read_bytes);
  EXPECT_LT(a.global_read_bytes, b.global_read_bytes);
}

}  // namespace
}  // namespace culda::core
