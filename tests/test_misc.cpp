// Coverage for the remaining small surfaces: logging, RNG stream semantics,
// buffer edge cases, and cross-cutting edge conditions.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "corpus/stats.hpp"
#include "corpus/synthetic.hpp"
#include "gpusim/device.hpp"
#include "util/log.hpp"
#include "util/philox.hpp"

namespace culda {
namespace {

// ----------------------------------------------------------------- logging

TEST(Log, LevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kOff);
  CULDA_LOG(Info) << "suppressed — must not crash";
  CULDA_LOG(Error) << "also suppressed";
  SetLogLevel(before);
}

TEST(Log, MacroEvaluatesStreamLazily) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  CULDA_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0) << "suppressed levels must not pay formatting";
  SetLogLevel(before);
}

// ------------------------------------------------------------ RNG streams

TEST(PhiloxStream, CopyContinuesFromSamePosition) {
  PhiloxStream a(7, 7);
  a.NextU32();
  a.NextU32();
  PhiloxStream b = a;  // copies position
  EXPECT_EQ(a.NextU32(), b.NextU32());
  EXPECT_EQ(a.NextDouble(), b.NextDouble());
}

TEST(PhiloxStream, MixedDrawTypesStayDeterministic) {
  auto run = [] {
    PhiloxStream rng(11, 3);
    double acc = rng.NextDouble();
    acc += rng.NextFloat();
    acc += rng.NextBelow(100);
    acc += rng.NextU32() % 7;
    return acc;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

// --------------------------------------------------------------- buffers

TEST(DeviceBuffer, DefaultConstructedIsInert) {
  gpusim::DeviceBuffer<int> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  buf.Free();  // no ledger — must be a no-op
}

TEST(DeviceBuffer, MoveAssignReleasesOldAllocation) {
  gpusim::Device dev(gpusim::TitanXMaxwell(), 0);
  auto a = dev.Alloc<int>(100, "a");
  auto b = dev.Alloc<int>(200, "b");
  EXPECT_EQ(dev.allocated_bytes(), 1200u);
  a = std::move(b);
  EXPECT_EQ(dev.allocated_bytes(), 800u);  // a's 400 released, b's 800 kept
}

// ---------------------------------------------------------- corpus edges

TEST(CorpusEdge, AllDocsEmptyExceptOne) {
  std::vector<uint64_t> offsets{0, 0, 0, 3, 3};
  const corpus::Corpus c(2, std::move(offsets), {0, 1, 0});
  c.Validate();
  EXPECT_EQ(c.num_docs(), 4u);
  EXPECT_EQ(c.MaxDocLength(), 3u);
  core::CuldaConfig cfg;
  cfg.num_topics = 4;
  core::CuldaTrainer trainer(c, cfg, {});
  trainer.Train(2);
  trainer.Gather().Validate(c);
}

TEST(CorpusEdge, SingleWordVocabulary) {
  // Degenerate but legal: V = 1 (every token the same word).
  std::vector<uint32_t> words(50, 0);
  const corpus::Corpus c(1, {0, 25, 50}, std::move(words));
  core::CuldaConfig cfg;
  cfg.num_topics = 4;
  core::CuldaTrainer trainer(c, cfg, {});
  trainer.Train(2);
  trainer.Gather().Validate(c);
}

TEST(CorpusEdge, StatsOnDegenerateCorpus) {
  const corpus::Corpus c(1, {0, 1}, {0});
  const auto stats = corpus::ComputeStats(c);
  EXPECT_EQ(stats.vocab_used, 1u);
  EXPECT_DOUBLE_EQ(stats.top1pct_token_share, 1.0);
}

// -------------------------------------------------- trainer config edges

TEST(ConfigEdge, MinimumTopicsTrains) {
  corpus::SyntheticProfile p;
  p.num_docs = 60;
  p.vocab_size = 80;
  const auto c = corpus::GenerateCorpus(p);
  core::CuldaConfig cfg;
  cfg.num_topics = 2;  // the minimum
  core::CuldaTrainer trainer(c, cfg, {});
  trainer.Train(2);
  trainer.Gather().Validate(c);
}

TEST(ConfigEdge, InvalidConfigsRejected) {
  core::CuldaConfig cfg;
  cfg.num_topics = 1;
  EXPECT_THROW(cfg.Validate(), Error);
  cfg.num_topics = 4;
  cfg.beta = 0;
  EXPECT_THROW(cfg.Validate(), Error);
  cfg.beta = 0.01;
  cfg.samplers_per_block = 0;
  EXPECT_THROW(cfg.Validate(), Error);
  cfg.samplers_per_block = 33;
  EXPECT_THROW(cfg.Validate(), Error);
  cfg.samplers_per_block = 32;
  cfg.tree_fanout = 1;
  EXPECT_THROW(cfg.Validate(), Error);
}

TEST(ConfigEdge, TreeFanoutVariantsTrainIdentically) {
  // Fanout changes search cost, never draws: same models.
  corpus::SyntheticProfile p;
  p.num_docs = 150;
  p.vocab_size = 200;
  const auto c = corpus::GenerateCorpus(p);
  double reference = 0;
  for (const uint32_t fanout : {2u, 8u, 32u}) {
    core::CuldaConfig cfg;
    cfg.num_topics = 16;
    cfg.tree_fanout = fanout;
    core::CuldaTrainer trainer(c, cfg, {});
    trainer.Train(3);
    const double ll = trainer.LogLikelihoodPerToken();
    if (fanout == 2) {
      reference = ll;
    } else {
      EXPECT_DOUBLE_EQ(ll, reference) << "fanout " << fanout;
    }
  }
}

}  // namespace
}  // namespace culda
