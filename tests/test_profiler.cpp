// Tests for the profiler report and Chrome trace export.
#include <gtest/gtest.h>

#include <sstream>

#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "gpusim/profiler.hpp"
#include "obs/trace.hpp"

namespace culda::gpusim {
namespace {

TEST(Profiler, PrintProfileListsKernels) {
  Device dev(TitanXMaxwell(), 0);
  dev.Launch("alpha_kernel", {4, 64},
             [](BlockContext& ctx) { ctx.ReadGlobal(1024); });
  dev.Launch("beta_kernel", {1, 32}, [](BlockContext&) {});
  std::ostringstream out;
  PrintProfile(dev, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("alpha_kernel"), std::string::npos);
  EXPECT_NE(s.find("beta_kernel"), std::string::npos);
  EXPECT_NE(s.find("TITAN X"), std::string::npos);
}

TEST(Profiler, TraceDisabledByDefault) {
  Device dev(TitanXMaxwell(), 0);
  dev.Launch("k", {1, 32}, [](BlockContext&) {});
  EXPECT_TRUE(dev.trace().empty());
}

TEST(Profiler, TraceRecordsLaunchesAndTransfers) {
  Device dev(TitanXMaxwell(), 0);
  dev.set_record_trace(true);
  dev.Launch("k", {1, 32}, [](BlockContext& ctx) { ctx.ReadGlobal(1 << 20); });
  dev.RecordTransfer(4096, "h2d");
  ASSERT_EQ(dev.trace().size(), 2u);
  EXPECT_EQ(dev.trace()[0].name, "k");
  EXPECT_EQ(dev.trace()[1].name, "memcpy_h2d");
  EXPECT_GT(dev.trace()[0].end_s, dev.trace()[0].start_s);
  // In-order on one stream.
  EXPECT_GE(dev.trace()[1].start_s, dev.trace()[0].end_s - 1e-12);
}

TEST(Profiler, ChromeTraceIsWellFormedJson) {
  Device dev(V100Volta(), 3);
  dev.set_record_trace(true);
  dev.Launch("sampling", {2, 64},
             [](BlockContext& ctx) { ctx.ReadGlobal(1 << 16); },
             &dev.stream(0));
  dev.Launch("update", {1, 32},
             [](BlockContext& ctx) { ctx.WriteGlobal(1 << 10); },
             &dev.stream(1));
  std::ostringstream out;
  WriteChromeTrace(dev, out);
  const std::string s = out.str();
  EXPECT_EQ(s.front(), '[');
  EXPECT_NE(s.find("\"name\": \"sampling\""), std::string::npos);
  EXPECT_NE(s.find("\"pid\": 3"), std::string::npos);
  EXPECT_NE(s.find("\"tid\": 1"), std::string::npos);
  EXPECT_NE(s.find("\"ph\": \"X\""), std::string::npos);
  // Events are comma-separated: 2 events → exactly 1 separator line.
  EXPECT_NE(s.find("},\n"), std::string::npos);
}

TEST(Profiler, GroupTraceCoversAllDevices) {
  DeviceGroup group({TitanXpPascal(), TitanXpPascal()});
  for (size_t g = 0; g < group.size(); ++g) {
    group.device(g).set_record_trace(true);
    group.device(g).Launch("k", {1, 32}, [](BlockContext&) {});
  }
  std::ostringstream out;
  WriteChromeTrace(group, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(s.find("\"pid\": 1"), std::string::npos);
}

TEST(Profiler, TrainerTraceShowsTheKernelPipeline) {
  corpus::SyntheticProfile p;
  p.num_docs = 150;
  p.vocab_size = 200;
  const auto c = corpus::GenerateCorpus(p);
  core::CuldaConfig cfg;
  cfg.num_topics = 16;
  core::CuldaTrainer trainer(c, cfg, {});
  trainer.group().device(0).set_record_trace(true);
  trainer.Step();
  std::ostringstream out;
  WriteChromeTrace(trainer.group(), out);
  const std::string s = out.str();
  EXPECT_NE(s.find("sampling"), std::string::npos);
  EXPECT_NE(s.find("update_phi"), std::string::npos);
  EXPECT_NE(s.find("update_theta"), std::string::npos);
}

TEST(Profiler, ResetProfileClearsTrace) {
  Device dev(TitanXMaxwell(), 0);
  dev.set_record_trace(true);
  dev.Launch("k", {1, 32}, [](BlockContext&) {});
  dev.ResetProfile();
  EXPECT_TRUE(dev.trace().empty());
}

TEST(Profiler, ProfileJsonMirrorsThePrintedTable) {
  Device dev(TitanXMaxwell(), 2);
  dev.Launch("alpha_kernel", {4, 64},
             [](BlockContext& ctx) { ctx.ReadGlobal(1024); });
  dev.Launch("alpha_kernel", {4, 64},
             [](BlockContext& ctx) { ctx.ReadGlobal(1024); });
  dev.Launch("beta_kernel", {1, 32}, [](BlockContext&) {});
  dev.RecordTransfer(4096, "h2d");
  std::ostringstream out;
  WriteProfileJson(dev, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"schema\":\"culda.profile.v1\""), std::string::npos);
  EXPECT_NE(s.find("\"alpha_kernel\":{\"launches\":2"), std::string::npos);
  EXPECT_NE(s.find("\"beta_kernel\":{\"launches\":1"), std::string::npos);
  EXPECT_NE(s.find("\"id\":2"), std::string::npos);
  EXPECT_NE(s.find("\"transfer_bytes\":4096"), std::string::npos);
}

TEST(Profiler, GroupProfileJsonListsEveryDevice) {
  DeviceGroup group({TitanXpPascal(), TitanXpPascal()});
  for (size_t g = 0; g < group.size(); ++g) {
    group.device(g).Launch("k", {1, 32}, [](BlockContext&) {});
  }
  std::ostringstream out;
  WriteProfileJson(group, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"devices\":[{"), std::string::npos);
  EXPECT_NE(s.find("\"id\":0"), std::string::npos);
  EXPECT_NE(s.find("\"id\":1"), std::string::npos);
  EXPECT_NE(s.find("\"peer_bytes\""), std::string::npos);
}

TEST(Profiler, MergedTraceCombinesHostSpansAndDeviceEvents) {
  corpus::SyntheticProfile p;
  p.num_docs = 150;
  p.vocab_size = 200;
  const auto c = corpus::GenerateCorpus(p);
  core::CuldaConfig cfg;
  cfg.num_topics = 16;
  core::CuldaTrainer trainer(c, cfg, {});
  trainer.group().device(0).set_record_trace(true);

  obs::SpanTracer& tracer = obs::SpanTracer::Global();
  tracer.Reset();
  tracer.set_enabled(true);
  trainer.Step();
  tracer.set_enabled(false);

  std::ostringstream out;
  WriteMergedChromeTrace(trainer.group(), tracer, out);
  tracer.Reset();
  const std::string s = out.str();
  // One JSON object with both timelines: simulated kernels under the
  // device pid, trainer phases under the host pid.
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"sampling\""), std::string::npos);
  EXPECT_NE(s.find("\"train/step\""), std::string::npos);
  EXPECT_NE(s.find("\"pid\":" + std::to_string(obs::kHostTracePid)),
            std::string::npos);
  EXPECT_NE(s.find("\"host (wall clock)\""), std::string::npos);
  EXPECT_NE(s.find("\"stream 0\""), std::string::npos);
}

}  // namespace
}  // namespace culda::gpusim
