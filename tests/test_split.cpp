// Tests for the train/held-out corpus splitting utilities.
#include <gtest/gtest.h>

#include "corpus/split.hpp"
#include "corpus/synthetic.hpp"

namespace culda::corpus {
namespace {

Corpus TestCorpus(uint64_t docs = 400) {
  SyntheticProfile p;
  p.num_docs = docs;
  p.vocab_size = 200;
  p.avg_doc_length = 20;
  return GenerateCorpus(p);
}

TEST(Split, PartitionsAllTokens) {
  const Corpus c = TestCorpus();
  const auto split = SplitByDocuments(c, 0.2);
  split.train.Validate();
  split.heldout.Validate();
  EXPECT_EQ(split.train.num_docs() + split.heldout.num_docs(), c.num_docs());
  EXPECT_EQ(split.train.num_tokens() + split.heldout.num_tokens(),
            c.num_tokens());
  EXPECT_EQ(split.train.vocab_size(), c.vocab_size());
}

TEST(Split, FractionApproximatelyRespected) {
  const Corpus c = TestCorpus(2000);
  const auto split = SplitByDocuments(c, 0.25);
  const double frac =
      static_cast<double>(split.heldout.num_docs()) / c.num_docs();
  EXPECT_NEAR(frac, 0.25, 0.05);
}

TEST(Split, Deterministic) {
  const Corpus c = TestCorpus();
  const auto a = SplitByDocuments(c, 0.3, 7);
  const auto b = SplitByDocuments(c, 0.3, 7);
  EXPECT_EQ(a.heldout.num_docs(), b.heldout.num_docs());
  EXPECT_TRUE(std::equal(a.heldout.words().begin(),
                         a.heldout.words().end(),
                         b.heldout.words().begin()));
}

TEST(Split, SeedChangesAssignment) {
  const Corpus c = TestCorpus();
  const auto a = SplitByDocuments(c, 0.3, 1);
  const auto b = SplitByDocuments(c, 0.3, 2);
  EXPECT_FALSE(a.heldout.num_tokens() == b.heldout.num_tokens() &&
               std::equal(a.heldout.words().begin(),
                          a.heldout.words().end(),
                          b.heldout.words().begin()));
}

TEST(Split, BothSidesNonEmptyAtExtremes) {
  const Corpus c = TestCorpus(5);
  for (const double f : {0.0001, 0.9999}) {
    const auto split = SplitByDocuments(c, f);
    EXPECT_GE(split.train.num_docs(), 1u) << f;
    EXPECT_GE(split.heldout.num_docs(), 1u) << f;
  }
}

TEST(Split, InvalidInputsRejected) {
  const Corpus c = TestCorpus(5);
  EXPECT_THROW(SplitByDocuments(c, 0.0), Error);
  EXPECT_THROW(SplitByDocuments(c, 1.0), Error);
  const Corpus single(3, {0, 2}, {0, 1});
  EXPECT_THROW(SplitByDocuments(single, 0.5), Error);
}

TEST(Slice, ExtractsRangeIntact) {
  const Corpus c = TestCorpus(50);
  const Corpus slice = SliceDocuments(c, 10, 20);
  slice.Validate();
  ASSERT_EQ(slice.num_docs(), 10u);
  for (size_t d = 0; d < 10; ++d) {
    const auto expected = c.DocTokens(10 + d);
    const auto got = slice.DocTokens(d);
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));
  }
}

TEST(Slice, EmptyAndFullRanges) {
  const Corpus c = TestCorpus(10);
  EXPECT_EQ(SliceDocuments(c, 3, 3).num_docs(), 0u);
  EXPECT_EQ(SliceDocuments(c, 0, 10).num_tokens(), c.num_tokens());
  EXPECT_THROW(SliceDocuments(c, 5, 11), Error);
}

}  // namespace
}  // namespace culda::corpus
