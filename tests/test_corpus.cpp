// Unit tests for corpus storage, the synthetic generator, and UCI I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "corpus/corpus.hpp"
#include "corpus/synthetic.hpp"
#include "corpus/uci_reader.hpp"
#include "util/check.hpp"

namespace culda::corpus {
namespace {

Corpus Tiny() {
  // doc0 = [w0 w1 w1], doc1 = [w2], doc2 = []
  return Corpus(3, {0, 3, 4, 4}, {0, 1, 1, 2});
}

TEST(Corpus, BasicAccessors) {
  const Corpus c = Tiny();
  EXPECT_EQ(c.num_docs(), 3u);
  EXPECT_EQ(c.num_tokens(), 4u);
  EXPECT_EQ(c.DocLength(0), 3u);
  EXPECT_EQ(c.DocLength(2), 0u);
  EXPECT_EQ(c.DocTokens(0)[1], 1u);
  EXPECT_EQ(c.MaxDocLength(), 3u);
  EXPECT_NEAR(c.AvgDocLength(), 4.0 / 3.0, 1e-12);
}

TEST(Corpus, WordFrequencies) {
  const auto freq = Tiny().WordFrequencies();
  EXPECT_EQ(freq, (std::vector<uint64_t>{1, 2, 1}));
}

TEST(Corpus, ValidateRejectsBadOffsets) {
  EXPECT_THROW(Corpus(3, {0, 2, 1, 4}, {0, 1, 1, 2}), Error);
  EXPECT_THROW(Corpus(3, {0, 3, 4, 5}, {0, 1, 1, 2}), Error);
  EXPECT_THROW(Corpus(3, {1, 3, 4, 4}, {0, 1, 1, 2}), Error);
}

TEST(Corpus, ValidateRejectsOutOfRangeWord) {
  EXPECT_THROW(Corpus(2, {0, 1}, {5}), Error);
}

TEST(Corpus, SummaryMentionsCounts) {
  const std::string s = Tiny().Summary("tiny");
  EXPECT_NE(s.find("#Tokens=4"), std::string::npos);
  EXPECT_NE(s.find("#Documents=3"), std::string::npos);
}

// ------------------------------------------------------------- synthetic --

TEST(Synthetic, DeterministicInSeed) {
  SyntheticProfile p;
  p.num_docs = 50;
  p.vocab_size = 200;
  const Corpus a = GenerateCorpus(p);
  const Corpus b = GenerateCorpus(p);
  EXPECT_EQ(a.num_tokens(), b.num_tokens());
  EXPECT_TRUE(std::equal(a.words().begin(), a.words().end(),
                         b.words().begin()));
}

TEST(Synthetic, SeedChangesCorpus) {
  SyntheticProfile p;
  p.num_docs = 50;
  p.vocab_size = 200;
  const Corpus a = GenerateCorpus(p);
  p.seed += 1;
  const Corpus b = GenerateCorpus(p);
  EXPECT_FALSE(a.num_tokens() == b.num_tokens() &&
               std::equal(a.words().begin(), a.words().end(),
                          b.words().begin()));
}

TEST(Synthetic, RespectsDocAndVocabCounts) {
  SyntheticProfile p;
  p.num_docs = 123;
  p.vocab_size = 456;
  const Corpus c = GenerateCorpus(p);
  c.Validate();
  EXPECT_EQ(c.num_docs(), 123u);
  EXPECT_EQ(c.vocab_size(), 456u);
}

TEST(Synthetic, AverageLengthNearProfile) {
  SyntheticProfile p;
  p.num_docs = 2000;
  p.vocab_size = 500;
  p.avg_doc_length = 100;
  const Corpus c = GenerateCorpus(p);
  EXPECT_NEAR(c.AvgDocLength(), 100.0, 15.0);
}

TEST(Synthetic, MinDocLengthEnforced) {
  SyntheticProfile p;
  p.num_docs = 500;
  p.vocab_size = 100;
  p.avg_doc_length = 6;
  p.min_doc_length = 4;
  const Corpus c = GenerateCorpus(p);
  for (size_t d = 0; d < c.num_docs(); ++d) {
    EXPECT_GE(c.DocLength(d), 4u);
  }
}

TEST(Synthetic, WordFrequenciesAreSkewed) {
  // The Zipfian base measure must produce a heavy head: the most frequent
  // word should dwarf the median (this drives Figure 6's heavy-word split).
  SyntheticProfile p;
  p.num_docs = 1000;
  p.vocab_size = 2000;
  p.avg_doc_length = 80;
  const Corpus c = GenerateCorpus(p);
  auto freq = c.WordFrequencies();
  std::sort(freq.begin(), freq.end());
  const uint64_t top = freq.back();
  const uint64_t median = freq[freq.size() / 2];
  EXPECT_GT(top, 20 * std::max<uint64_t>(median, 1));
}

TEST(Synthetic, NyTimesProfileShape) {
  const SyntheticProfile p = NyTimesProfile(0.01);
  EXPECT_NEAR(p.avg_doc_length, 332, 1);
  EXPECT_EQ(p.num_docs, static_cast<uint64_t>(299752 * 0.01));
  const SyntheticProfile full = NyTimesProfile(1.0);
  EXPECT_EQ(full.num_docs, 299752u);
  EXPECT_EQ(full.vocab_size, 101636u);
}

TEST(Synthetic, PubMedProfileShape) {
  const SyntheticProfile p = PubMedProfile(0.001);
  EXPECT_NEAR(p.avg_doc_length, 90, 3);
  const SyntheticProfile full = PubMedProfile(1.0);
  EXPECT_EQ(full.num_docs, 8200000u);
  EXPECT_EQ(full.vocab_size, 141043u);
}

TEST(Synthetic, PubMedDocsShorterThanNyTimes) {
  // Table 3's contrast (332 vs 92 avg tokens) drives the Figure 7 variance
  // difference; the generator must preserve it.
  Corpus ny = GenerateCorpus([] {
    auto p = NyTimesProfile(0.002);
    p.num_docs = 300;
    p.vocab_size = 1000;
    return p;
  }());
  Corpus pm = GenerateCorpus([] {
    auto p = PubMedProfile(0.0001);
    p.num_docs = 300;
    p.vocab_size = 1000;
    return p;
  }());
  EXPECT_GT(ny.AvgDocLength(), 2.5 * pm.AvgDocLength());
}

TEST(Synthetic, InvalidScaleRejected) {
  EXPECT_THROW(NyTimesProfile(0.0), Error);
  EXPECT_THROW(NyTimesProfile(1.5), Error);
}

// ------------------------------------------------------------------- UCI --

TEST(Uci, ParsesWellFormedInput) {
  std::istringstream in("2\n3\n3\n1 1 2\n1 3 1\n2 2 4\n");
  const Corpus c = ReadUciBagOfWords(in);
  EXPECT_EQ(c.num_docs(), 2u);
  EXPECT_EQ(c.vocab_size(), 3u);
  EXPECT_EQ(c.num_tokens(), 7u);
  EXPECT_EQ(c.DocLength(0), 3u);  // 2×w0 + 1×w2
  EXPECT_EQ(c.DocLength(1), 4u);  // 4×w1
}

TEST(Uci, RoundTripsThroughWriter) {
  SyntheticProfile p;
  p.num_docs = 40;
  p.vocab_size = 100;
  p.avg_doc_length = 30;
  const Corpus original = GenerateCorpus(p);

  std::stringstream buf;
  WriteUciBagOfWords(original, buf);
  const Corpus parsed = ReadUciBagOfWords(buf);

  ASSERT_EQ(parsed.num_docs(), original.num_docs());
  ASSERT_EQ(parsed.num_tokens(), original.num_tokens());
  // Token multisets per document must match (order inside a doc may differ).
  for (size_t d = 0; d < original.num_docs(); ++d) {
    auto a = std::vector<uint32_t>(original.DocTokens(d).begin(),
                                   original.DocTokens(d).end());
    auto b = std::vector<uint32_t>(parsed.DocTokens(d).begin(),
                                   parsed.DocTokens(d).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "doc " << d;
  }
}

TEST(Uci, RejectsMalformedHeader) {
  std::istringstream in("not a number\n");
  EXPECT_THROW(ReadUciBagOfWords(in), Error);
}

TEST(Uci, RejectsOutOfRangeIds) {
  std::istringstream doc_oob("1\n2\n1\n2 1 1\n");
  EXPECT_THROW(ReadUciBagOfWords(doc_oob), Error);
  std::istringstream word_oob("1\n2\n1\n1 3 1\n");
  EXPECT_THROW(ReadUciBagOfWords(word_oob), Error);
}

TEST(Uci, RejectsTruncatedEntries) {
  std::istringstream in("1\n2\n2\n1 1 1\n");
  EXPECT_THROW(ReadUciBagOfWords(in), Error);
}

TEST(Uci, RejectsZeroCount) {
  std::istringstream in("1\n2\n1\n1 1 0\n");
  EXPECT_THROW(ReadUciBagOfWords(in), Error);
}

TEST(Uci, MissingFileThrows) {
  EXPECT_THROW(ReadUciBagOfWordsFile("/nonexistent/path.txt"), Error);
}

}  // namespace
}  // namespace culda::corpus
