// Tests for topic inspection utilities (top words, mixtures, coherence).
#include <gtest/gtest.h>

#include "core/topics.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "util/philox.hpp"

namespace culda::core {
namespace {

/// A tiny hand-built model: topic 0 = {w0-heavy, w1}, topic 1 = {w2}.
GatheredModel TinyModel() {
  GatheredModel m;
  m.num_topics = 2;
  m.vocab_size = 3;
  m.num_docs = 2;
  m.theta = ThetaMatrix(2, 2);
  ThetaMatrix::RowBuilder b(&m.theta);
  {
    const uint16_t i0[] = {0, 1};
    const int32_t v0[] = {3, 1};
    b.AppendRow(0, i0, v0);
  }
  {
    const uint16_t i1[] = {1};
    const int32_t v1[] = {2};
    b.AppendRow(1, i1, v1);
  }
  b.Finish();
  m.phi = PhiMatrix(2, 3);
  m.phi(0, 0) = 5;
  m.phi(0, 1) = 2;
  m.phi(1, 2) = 4;
  m.nk = {7, 4};
  return m;
}

CuldaConfig TinyConfig() {
  CuldaConfig cfg;
  cfg.num_topics = 2;
  cfg.alpha = 0.5;
  cfg.beta = 0.1;
  return cfg;
}

TEST(TopWords, OrderedByCount) {
  const auto m = TinyModel();
  const auto top = TopWords(m, TinyConfig(), 0, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].word, 0u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[1].word, 1u);
}

TEST(TopWords, ProbabilityIsSmoothed) {
  const auto m = TinyModel();
  const auto top = TopWords(m, TinyConfig(), 0, 1);
  // (5 + 0.1) / (7 + 0.1*3)
  EXPECT_NEAR(top[0].probability, 5.1 / 7.3, 1e-12);
}

TEST(TopWords, TruncatesToN) {
  const auto m = TinyModel();
  EXPECT_EQ(TopWords(m, TinyConfig(), 0, 1).size(), 1u);
}

TEST(TopWords, EmptyTopic) {
  auto m = TinyModel();
  m.phi(1, 2) = 0;
  m.nk[1] = 0;
  EXPECT_TRUE(TopWords(m, TinyConfig(), 1, 5).empty());
}

TEST(TopicsBySize, SortedDescending) {
  const auto sizes = TopicsBySize(TinyModel());
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0].first, 0u);
  EXPECT_EQ(sizes[0].second, 7);
  EXPECT_EQ(sizes[1].second, 4);
}

TEST(DocumentMixture, SmoothedProportions) {
  const auto mix = DocumentMixture(TinyModel(), TinyConfig(), 0);
  ASSERT_EQ(mix.size(), 2u);
  EXPECT_EQ(mix[0].topic, 0u);
  // (3 + 0.5) / (4 + 2*0.5)
  EXPECT_NEAR(mix[0].proportion, 3.5 / 5.0, 1e-12);
  EXPECT_NEAR(mix[1].proportion, 1.5 / 5.0, 1e-12);
}

TEST(Coherence, PerfectCooccurrenceBeatsNone) {
  // Reference corpus A: top words of topic 0 (w0, w1) always co-occur.
  const corpus::Corpus together(3, {0, 2, 4}, {0, 1, 0, 1});
  // Reference corpus B: they never co-occur.
  const corpus::Corpus apart(3, {0, 2, 4}, {0, 0, 1, 1});
  const auto m = TinyModel();
  const auto cfg = TinyConfig();
  EXPECT_GT(UMassCoherence(m, cfg, together, 0, 2),
            UMassCoherence(m, cfg, apart, 0, 2));
}

TEST(Coherence, SingleWordTopicIsZero) {
  const corpus::Corpus ref(3, {0, 1}, {2});
  EXPECT_EQ(UMassCoherence(TinyModel(), TinyConfig(), ref, 1, 5), 0.0);
}

TEST(Coherence, TrainedTopicsBeatRandomWordBags) {
  // Trained topics group words that co-occur; topics made of uniformly
  // random vocabulary words should score far worse. (Comparing against the
  // random *init* instead would hit the classic UMass artifact: under a
  // uniform assignment every topic's top words are the corpus's Zipf head,
  // which co-occurs everywhere and scores deceptively well.)
  corpus::SyntheticProfile p;
  p.num_docs = 400;
  p.vocab_size = 400;
  p.avg_doc_length = 40;
  p.num_topics = 20;
  const auto c = corpus::GenerateCorpus(p);
  CuldaConfig cfg;
  cfg.num_topics = 20;
  CuldaTrainer trainer(c, cfg, {});
  trainer.Train(15);
  const auto trained = trainer.Gather();
  const double trained_coh = AverageCoherence(trained, cfg, c, 8);

  // Scramble: same count mass per topic, assigned to random words.
  GatheredModel random = trained;
  random.phi.Fill(0);
  PhiloxStream rng(99, 0);
  for (uint32_t k = 0; k < random.num_topics; ++k) {
    int64_t remaining = trained.nk[k];
    while (remaining > 0) {
      const uint32_t v = rng.NextBelow(random.vocab_size);
      const int64_t add = std::min<int64_t>(remaining, 50);
      random.phi(k, v) = static_cast<uint16_t>(
          std::min<int64_t>(random.phi(k, v) + add, 0xFFFF));
      remaining -= add;
    }
  }
  const double random_coh = AverageCoherence(random, cfg, c, 8);
  EXPECT_GT(trained_coh, random_coh);
}

TEST(Coherence, AverageCoversOnlyPopulatedTopics) {
  auto m = TinyModel();
  const corpus::Corpus ref(3, {0, 2, 4}, {0, 1, 0, 2});
  // Should not throw with an empty topic present.
  m.phi(1, 2) = 0;
  m.nk[1] = 0;
  EXPECT_NO_THROW(AverageCoherence(m, TinyConfig(), ref, 2));
}

}  // namespace
}  // namespace culda::core
