// Tests for training checkpoints: bit-exact resume, topology-independent
// restore, and corruption rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"

namespace culda::core {
namespace {

corpus::Corpus TestCorpus(uint64_t seed = 42) {
  corpus::SyntheticProfile p;
  p.num_docs = 300;
  p.vocab_size = 400;
  p.avg_doc_length = 40;
  p.seed = seed;
  return corpus::GenerateCorpus(p);
}

CuldaConfig TestConfig() {
  CuldaConfig cfg;
  cfg.num_topics = 24;
  return cfg;
}

std::vector<uint16_t> PhiFingerprint(const CuldaTrainer& trainer) {
  const auto m = trainer.Gather();
  return {m.phi.flat().begin(), m.phi.flat().end()};
}

TEST(Checkpoint, ResumeContinuesBitExactly) {
  const auto c = TestCorpus();

  // Reference: 6 uninterrupted iterations.
  CuldaTrainer reference(c, TestConfig(), {});
  reference.Train(6);

  // Interrupted: 3 iterations, checkpoint, fresh trainer, restore, 3 more.
  CuldaTrainer first(c, TestConfig(), {});
  first.Train(3);
  std::stringstream ckpt(std::ios::binary | std::ios::in | std::ios::out);
  first.SaveCheckpoint(ckpt);

  CuldaTrainer resumed(c, TestConfig(), {});
  resumed.RestoreCheckpoint(ckpt);
  EXPECT_EQ(resumed.iteration(), 3u);
  resumed.Train(3);

  EXPECT_EQ(PhiFingerprint(resumed), PhiFingerprint(reference));
  EXPECT_DOUBLE_EQ(resumed.LogLikelihoodPerToken(),
                   reference.LogLikelihoodPerToken());
}

TEST(Checkpoint, RestoreAcrossDifferentGpuCount) {
  const auto c = TestCorpus();
  CuldaTrainer one(c, TestConfig(), {});
  one.Train(2);
  std::stringstream ckpt(std::ios::binary | std::ios::in | std::ios::out);
  one.SaveCheckpoint(ckpt);

  TrainerOptions four;
  four.gpus.assign(4, gpusim::TitanXpPascal());
  CuldaTrainer wide(c, TestConfig(), four);
  wide.RestoreCheckpoint(ckpt);
  wide.Train(2);

  CuldaTrainer reference(c, TestConfig(), {});
  reference.Train(4);
  EXPECT_EQ(PhiFingerprint(wide), PhiFingerprint(reference));
}

TEST(Checkpoint, RestoreAcrossDifferentChunking) {
  const auto c = TestCorpus();
  TrainerOptions m3;
  m3.chunks_per_gpu = 3;
  CuldaTrainer chunked(c, TestConfig(), m3);
  chunked.Train(2);
  std::stringstream ckpt(std::ios::binary | std::ios::in | std::ios::out);
  chunked.SaveCheckpoint(ckpt);

  CuldaTrainer plain(c, TestConfig(), {});
  plain.RestoreCheckpoint(ckpt);
  plain.Train(1);

  CuldaTrainer reference(c, TestConfig(), m3);
  reference.Train(3);
  EXPECT_EQ(PhiFingerprint(plain), PhiFingerprint(reference));
}

TEST(Checkpoint, RestoredModelSatisfiesInvariants) {
  const auto c = TestCorpus();
  CuldaTrainer a(c, TestConfig(), {});
  a.Train(2);
  std::stringstream ckpt(std::ios::binary | std::ios::in | std::ios::out);
  a.SaveCheckpoint(ckpt);
  CuldaTrainer b(c, TestConfig(), {});
  b.RestoreCheckpoint(ckpt);
  b.Gather().Validate(c);
}

TEST(Checkpoint, RejectsWrongCorpus) {
  const auto c1 = TestCorpus(1);
  const auto c2 = TestCorpus(2);
  CuldaTrainer a(c1, TestConfig(), {});
  std::stringstream ckpt(std::ios::binary | std::ios::in | std::ios::out);
  a.SaveCheckpoint(ckpt);
  CuldaTrainer b(c2, TestConfig(), {});
  EXPECT_THROW(b.RestoreCheckpoint(ckpt), Error);
}

TEST(Checkpoint, RejectsWrongConfig) {
  const auto c = TestCorpus();
  CuldaTrainer a(c, TestConfig(), {});
  std::stringstream ckpt(std::ios::binary | std::ios::in | std::ios::out);
  a.SaveCheckpoint(ckpt);
  CuldaConfig other = TestConfig();
  other.num_topics = 32;
  CuldaTrainer b(c, other, {});
  EXPECT_THROW(b.RestoreCheckpoint(ckpt), Error);
}

TEST(Checkpoint, RejectsGarbageAndTruncation) {
  const auto c = TestCorpus();
  CuldaTrainer a(c, TestConfig(), {});
  a.Train(1);
  std::ostringstream out(std::ios::binary);
  a.SaveCheckpoint(out);
  const std::string bytes = out.str();

  {
    std::istringstream garbage("not a checkpoint at all", std::ios::binary);
    CuldaTrainer b(c, TestConfig(), {});
    EXPECT_THROW(b.RestoreCheckpoint(garbage), Error);
  }
  for (const double frac : {0.2, 0.8}) {
    std::istringstream truncated(
        bytes.substr(0, static_cast<size_t>(bytes.size() * frac)),
        std::ios::binary);
    CuldaTrainer b(c, TestConfig(), {});
    EXPECT_THROW(b.RestoreCheckpoint(truncated), Error) << frac;
  }
}

}  // namespace
}  // namespace culda::core
