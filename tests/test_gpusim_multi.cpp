// Unit tests for DeviceGroup: peer transfers, barriers, group time.
#include <gtest/gtest.h>

#include "gpusim/multi_gpu.hpp"

namespace culda::gpusim {
namespace {

DeviceGroup MakeGroup(size_t n, LinkSpec link = Pcie3x16()) {
  std::vector<DeviceSpec> specs(n, TitanXpPascal());
  return DeviceGroup(std::move(specs), link);
}

TEST(DeviceGroup, ConstructsRequestedDevices) {
  auto g = MakeGroup(4);
  EXPECT_EQ(g.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(g.device(i).id(), static_cast<int>(i));
  }
}

TEST(DeviceGroup, EmptyGroupRejected) {
  EXPECT_THROW(DeviceGroup({}, Pcie3x16()), Error);
}

TEST(DeviceGroup, PeerTransferAdvancesBothEnds) {
  auto g = MakeGroup(2);
  const double end = g.PeerTransfer(0, 1, 160 << 20);
  EXPECT_NEAR(end, 160e6 * 1.048 / 16e9, 2e-3);
  EXPECT_DOUBLE_EQ(g.device(0).stream(0).ready_time(), end);
  EXPECT_DOUBLE_EQ(g.device(1).stream(0).ready_time(), end);
}

TEST(DeviceGroup, PeerTransferWaitsForBusyEndpoint) {
  auto g = MakeGroup(2);
  g.device(1).stream(0).WaitUntil(2.0);
  const double end = g.PeerTransfer(0, 1, 16 << 10);
  EXPECT_GT(end, 2.0);
}

TEST(DeviceGroup, SelfTransferRejected) {
  auto g = MakeGroup(2);
  EXPECT_THROW(g.PeerTransfer(1, 1, 100), Error);
}

TEST(DeviceGroup, NvLinkFasterThanPcie) {
  auto pcie = MakeGroup(2, Pcie3x16());
  auto nvlink = MakeGroup(2, NvLink2());
  const uint64_t bytes = 1 << 30;
  EXPECT_GT(pcie.PeerTransfer(0, 1, bytes),
            5 * nvlink.PeerTransfer(0, 1, bytes));
}

TEST(DeviceGroup, BarrierAlignsEveryDevice) {
  auto g = MakeGroup(3);
  g.device(2).stream(1).WaitUntil(5.0);
  const double t = g.Barrier();
  EXPECT_DOUBLE_EQ(t, 5.0);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(g.device(i).Now(), 5.0);
  }
}

TEST(DeviceGroup, NowIsGroupMax) {
  auto g = MakeGroup(2);
  g.device(0).stream(0).WaitUntil(1.0);
  g.device(1).stream(0).WaitUntil(4.0);
  EXPECT_DOUBLE_EQ(g.Now(), 4.0);
}

TEST(DeviceGroup, PeerBytesAccumulate) {
  auto g = MakeGroup(2);
  g.PeerTransfer(0, 1, 100);
  g.PeerTransfer(1, 0, 50);
  EXPECT_EQ(g.peer_bytes(), 150u);
}

TEST(DeviceGroup, ResetTimeRewindsAllClocks) {
  auto g = MakeGroup(2);
  g.PeerTransfer(0, 1, 1 << 20);
  g.ResetTime();
  EXPECT_DOUBLE_EQ(g.Now(), 0.0);
}

TEST(DeviceGroup, DisjointPairsOverlapInTime) {
  // Transfers (0→1) and (2→3) do not serialize.
  auto g = MakeGroup(4);
  const uint64_t bytes = 1 << 30;
  const double t1 = g.PeerTransfer(0, 1, bytes);
  const double t2 = g.PeerTransfer(2, 3, bytes);
  EXPECT_NEAR(t1, t2, 1e-9);
}

}  // namespace
}  // namespace culda::gpusim
