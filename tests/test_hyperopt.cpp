// Tests for digamma and the Minka fixed-point hyper-parameter updates.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/evaluator.hpp"
#include "core/hyperopt.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "util/math.hpp"

namespace culda::core {
namespace {

// ----------------------------------------------------------------- digamma

TEST(Digamma, KnownValues) {
  // ψ(1) = −γ, ψ(0.5) = −γ − 2 ln 2, ψ(2) = 1 − γ.
  const double euler_gamma = 0.5772156649015329;
  EXPECT_NEAR(Digamma(1.0), -euler_gamma, 1e-10);
  EXPECT_NEAR(Digamma(0.5), -euler_gamma - 2 * std::log(2.0), 1e-10);
  EXPECT_NEAR(Digamma(2.0), 1.0 - euler_gamma, 1e-10);
}

TEST(Digamma, RecurrenceHolds) {
  // ψ(x+1) = ψ(x) + 1/x across magnitudes.
  for (const double x : {0.1, 0.9, 3.7, 12.0, 250.0}) {
    EXPECT_NEAR(Digamma(x + 1), Digamma(x) + 1.0 / x, 1e-9) << x;
  }
}

TEST(Digamma, AsymptoticForLargeX) {
  // ψ(x) → ln x − 1/(2x).
  const double x = 1e6;
  EXPECT_NEAR(Digamma(x), std::log(x) - 0.5 / x, 1e-10);
}

// ------------------------------------------------------------- fixed point

/// Builds a model whose θ rows are sampled from Dirichlet(α_true) ×
/// multinomial, so the fixed point should land near α_true.
GatheredModel SyntheticThetaModel(double alpha_true, uint32_t k_topics,
                                  size_t docs, int tokens_per_doc,
                                  uint64_t seed) {
  std::mt19937_64 rng(seed);
  GatheredModel m;
  m.num_topics = k_topics;
  m.vocab_size = 2;  // φ irrelevant for the α test
  m.num_docs = docs;
  m.theta = ThetaMatrix(docs, k_topics);
  ThetaMatrix::RowBuilder b(&m.theta);
  std::gamma_distribution<double> gamma(alpha_true, 1.0);
  std::vector<double> theta(k_topics);
  std::vector<int32_t> counts(k_topics);
  for (size_t d = 0; d < docs; ++d) {
    double sum = 0;
    for (auto& t : theta) {
      t = gamma(rng);
      sum += t;
    }
    std::fill(counts.begin(), counts.end(), 0);
    std::uniform_real_distribution<double> uni(0, sum);
    for (int i = 0; i < tokens_per_doc; ++i) {
      double u = uni(rng);
      uint32_t k = k_topics - 1;
      for (uint32_t c = 0; c < k_topics; ++c) {
        u -= theta[c];
        if (u <= 0) {
          k = c;
          break;
        }
      }
      ++counts[k];
    }
    std::vector<uint16_t> idx;
    std::vector<int32_t> val;
    for (uint32_t k = 0; k < k_topics; ++k) {
      if (counts[k] != 0) {
        idx.push_back(static_cast<uint16_t>(k));
        val.push_back(counts[k]);
      }
    }
    b.AppendRow(d, idx, val);
  }
  b.Finish();
  m.phi = PhiMatrix(k_topics, 2);
  m.nk.assign(k_topics, 0);
  return m;
}

class AlphaRecovery : public ::testing::TestWithParam<double> {};

TEST_P(AlphaRecovery, FixedPointLandsNearTruth) {
  const double alpha_true = GetParam();
  const auto model =
      SyntheticThetaModel(alpha_true, 16, 800, 60, 42);
  // Start from a wrong initial value on either side.
  for (const double start : {alpha_true * 4, alpha_true / 4}) {
    const auto result = OptimizeAlpha(model, start, 200, 1e-7);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.value, alpha_true, alpha_true * 0.35)
        << "start=" << start;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaRecovery,
                         ::testing::Values(0.05, 0.2, 1.0),
                         [](const auto& info) {
                           return "alpha" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

TEST(OptimizeAlpha, ImprovesJointLikelihood) {
  corpus::SyntheticProfile p;
  p.num_docs = 400;
  p.vocab_size = 300;
  p.avg_doc_length = 40;
  p.doc_topic_alpha = 0.05;  // peakier than the 50/K default
  const auto c = corpus::GenerateCorpus(p);
  CuldaConfig cfg;
  cfg.num_topics = 32;
  CuldaTrainer trainer(c, cfg, {});
  trainer.Train(10);
  const auto model = trainer.Gather();

  const auto opt = OptimizeAlpha(model, cfg.EffectiveAlpha());
  CuldaConfig tuned = cfg;
  tuned.alpha = opt.value;
  EXPECT_GE(LogLikelihoodPerToken(model, tuned),
            LogLikelihoodPerToken(model, cfg));
}

TEST(OptimizeBeta, ImprovesJointLikelihood) {
  corpus::SyntheticProfile p;
  p.num_docs = 300;
  p.vocab_size = 400;
  const auto c = corpus::GenerateCorpus(p);
  CuldaConfig cfg;
  cfg.num_topics = 24;
  cfg.beta = 0.5;  // deliberately mis-set
  CuldaTrainer trainer(c, cfg, {});
  trainer.Train(8);
  const auto model = trainer.Gather();

  const auto opt = OptimizeBeta(model, cfg.beta);
  CuldaConfig tuned = cfg;
  tuned.beta = opt.value;
  EXPECT_GT(LogLikelihoodPerToken(model, tuned),
            LogLikelihoodPerToken(model, cfg));
  EXPECT_LT(opt.value, cfg.beta);  // sparse φ wants a smaller β
}

TEST(OptimizeAlpha, ValidatesInputs) {
  const auto model = SyntheticThetaModel(0.1, 4, 10, 20, 1);
  EXPECT_THROW(OptimizeAlpha(model, 0.0), Error);
  EXPECT_THROW(OptimizeAlpha(model, 0.1, 0), Error);
}

TEST(OptimizeAlpha, ReportsIterationCount) {
  const auto model = SyntheticThetaModel(0.2, 8, 200, 40, 3);
  const auto result = OptimizeAlpha(model, 1.0, 100, 1e-8);
  EXPECT_GE(result.iterations, 1);
  EXPECT_LE(result.iterations, 100);
}

}  // namespace
}  // namespace culda::core
