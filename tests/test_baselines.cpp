// Tests for the comparison solvers: exact CGS, SparseLDA, WarpLDA-like MH,
// the dense GPU baseline, and the distributed model.
#include <gtest/gtest.h>

#include "baselines/cpu_cgs.hpp"
#include "baselines/distributed.hpp"
#include "baselines/gpu_dense.hpp"
#include "baselines/sparse_lda.hpp"
#include "baselines/warp_mh.hpp"
#include "corpus/synthetic.hpp"

namespace culda::baselines {
namespace {

corpus::Corpus TestCorpus(uint64_t docs = 250, uint32_t vocab = 300) {
  corpus::SyntheticProfile p;
  p.num_docs = docs;
  p.vocab_size = vocab;
  p.avg_doc_length = 40;
  return corpus::GenerateCorpus(p);
}

core::CuldaConfig TestConfig(uint32_t k = 24) {
  core::CuldaConfig cfg;
  cfg.num_topics = k;
  return cfg;
}

// -------------------------------------------------------------- CpuState --

TEST(CpuState, InitialCountsConsistent) {
  const auto c = TestCorpus();
  CpuLdaState s;
  s.Initialize(c, 24, 0.5, 0.01, 42);
  s.Validate();
}

TEST(CpuState, CostTrackerRoundsToCacheLines) {
  CpuCostTracker cost;
  cost.RandomRead(4);
  EXPECT_EQ(cost.counters().global_read_bytes, kCacheLineBytes);
  cost.RandomReads(10, 2);
  EXPECT_EQ(cost.counters().global_read_bytes, 11 * kCacheLineBytes);
  cost.StreamRead(4);
  EXPECT_EQ(cost.counters().global_read_bytes, 11 * kCacheLineBytes + 4);
}

// ---------------------------------------------------------------- CpuCgs --

TEST(CpuCgs, CountsStayConsistent) {
  const auto c = TestCorpus();
  CpuCgs solver(c, TestConfig());
  for (int i = 0; i < 3; ++i) {
    solver.Step();
    solver.state().Validate();
  }
}

TEST(CpuCgs, LogLikelihoodImproves) {
  const auto c = TestCorpus(400, 400);
  CpuCgs solver(c, TestConfig());
  const double before = solver.LogLikelihoodPerToken();
  for (int i = 0; i < 8; ++i) solver.Step();
  EXPECT_GT(solver.LogLikelihoodPerToken(), before + 0.1);
}

TEST(CpuCgs, Deterministic) {
  const auto c = TestCorpus();
  CpuCgs a(c, TestConfig()), b(c, TestConfig());
  a.Step();
  b.Step();
  EXPECT_EQ(a.state().z, b.state().z);
}

TEST(CpuCgs, ModeledTimeAccumulates) {
  const auto c = TestCorpus();
  CpuCgs solver(c, TestConfig());
  solver.Step();
  const double one = solver.ModeledSeconds();
  solver.Step();
  EXPECT_GT(one, 0.0);
  EXPECT_NEAR(solver.ModeledSeconds(), 2 * one, one * 0.5);
  EXPECT_GT(solver.last_tokens_per_sec(), 0.0);
}

// ------------------------------------------------------------- SparseLDA --

TEST(SparseLda, CountsAndStructuresStayConsistent) {
  const auto c = TestCorpus();
  SparseLdaCgs solver(c, TestConfig());
  for (int i = 0; i < 3; ++i) {
    solver.Step();
    solver.state().Validate();
    solver.ValidateStructures();
  }
}

TEST(SparseLda, LogLikelihoodImproves) {
  const auto c = TestCorpus(400, 400);
  SparseLdaCgs solver(c, TestConfig());
  const double before = solver.LogLikelihoodPerToken();
  for (int i = 0; i < 8; ++i) solver.Step();
  EXPECT_GT(solver.LogLikelihoodPerToken(), before + 0.1);
}

TEST(SparseLda, FasterThanDenseCgsInModeledTime) {
  const auto c = TestCorpus(400, 400);
  const auto cfg = TestConfig(64);  // sparsity pays off at larger K
  CpuCgs dense(c, cfg);
  SparseLdaCgs sparse(c, cfg);
  dense.Step();
  sparse.Step();
  EXPECT_LT(sparse.ModeledSeconds(), dense.ModeledSeconds());
}

TEST(SparseLda, ConvergesToSimilarQualityAsDense) {
  const auto c = TestCorpus(300, 300);
  const auto cfg = TestConfig();
  CpuCgs dense(c, cfg);
  SparseLdaCgs sparse(c, cfg);
  for (int i = 0; i < 10; ++i) {
    dense.Step();
    sparse.Step();
  }
  EXPECT_NEAR(sparse.LogLikelihoodPerToken(), dense.LogLikelihoodPerToken(),
              0.15);
}

// ---------------------------------------------------------------- WarpMH --

TEST(WarpMh, CountsStayConsistent) {
  const auto c = TestCorpus();
  WarpMhSampler solver(c, TestConfig());
  for (int i = 0; i < 3; ++i) {
    solver.Step();
    solver.state().Validate();
  }
}

TEST(WarpMh, LogLikelihoodImproves) {
  const auto c = TestCorpus(400, 400);
  WarpMhSampler solver(c, TestConfig(), /*mh_cycles=*/2);
  const double before = solver.LogLikelihoodPerToken();
  for (int i = 0; i < 12; ++i) solver.Step();
  EXPECT_GT(solver.LogLikelihoodPerToken(), before + 0.1);
}

TEST(WarpMh, AcceptanceRateReasonable) {
  const auto c = TestCorpus();
  WarpMhSampler solver(c, TestConfig());
  for (int i = 0; i < 3; ++i) solver.Step();
  EXPECT_GT(solver.acceptance_rate(), 0.1);
  EXPECT_LE(solver.acceptance_rate(), 1.0);
}

TEST(WarpMh, FasterPerTokenThanExactCgs) {
  const auto c = TestCorpus(400, 400);
  const auto cfg = TestConfig(128);
  CpuCgs exact(c, cfg);
  WarpMhSampler mh(c, cfg);
  exact.Step();
  mh.Step();
  EXPECT_GT(mh.last_tokens_per_sec(), 3 * exact.last_tokens_per_sec());
}

TEST(WarpMh, ThroughputInWarpLdaBallpark) {
  // Table 4 reports WarpLDA at ~90–110 M tokens/s on the Xeon; the modeled
  // MH sampler should land within a factor of ~3 of that.
  const auto c = TestCorpus(800, 1000);
  WarpMhSampler solver(c, TestConfig(128));
  solver.Step();
  solver.Step();
  EXPECT_GT(solver.last_tokens_per_sec(), 30e6);
  EXPECT_LT(solver.last_tokens_per_sec(), 400e6);
}

// -------------------------------------------------------------- GpuDense --

TEST(GpuDense, ModelInvariantsHold) {
  const auto c = TestCorpus();
  GpuDenseLda solver(c, TestConfig(), gpusim::TitanXMaxwell());
  for (int i = 0; i < 3; ++i) solver.Step();
  solver.Gather().Validate(c);
}

TEST(GpuDense, LogLikelihoodImproves) {
  const auto c = TestCorpus(400, 400);
  GpuDenseLda solver(c, TestConfig(), gpusim::TitanXMaxwell());
  const double before = solver.LogLikelihoodPerToken();
  for (int i = 0; i < 8; ++i) solver.Step();
  EXPECT_GT(solver.LogLikelihoodPerToken(), before + 0.1);
}

TEST(GpuDense, TracksSimulatedTime) {
  const auto c = TestCorpus();
  GpuDenseLda solver(c, TestConfig(), gpusim::TitanXMaxwell());
  solver.Step();
  EXPECT_GT(solver.ModeledSeconds(), 0.0);
  EXPECT_GT(solver.last_tokens_per_sec(), 0.0);
}

// ----------------------------------------------------------- Distributed --

TEST(Distributed, SyncDominatedByNetwork) {
  DistributedLdaModel m;
  m.num_nodes = 20;
  m.node_tokens_per_sec = 100e6;
  m.model_bytes = 256ull * 100000 * 4;  // K×V float model
  const double t = m.IterationSeconds(700'000'000);
  // Sampling alone would be 0.35 s; the Ethernet sync adds multiples.
  EXPECT_GT(t, 0.35 * 2);
}

TEST(Distributed, MoreNodesShrinkSamplingNotSync) {
  DistributedLdaModel m;
  m.model_bytes = 64ull << 20;
  m.num_nodes = 4;
  const double t4 = m.IterationSeconds(1'000'000'000);
  m.num_nodes = 64;
  const double t64 = m.IterationSeconds(1'000'000'000);
  // Far from 16× faster: the parameter-server link saturates.
  EXPECT_GT(t64, t4 / 8);
}

TEST(Distributed, ValidatesInputs) {
  DistributedLdaModel m;
  m.model_bytes = 1 << 20;  // valid so the num_nodes check is what fires
  m.num_nodes = 0;
  EXPECT_THROW(m.IterationSeconds(100), Error);
}

TEST(Distributed, RejectsUnsetModelBytes) {
  // The default model_bytes = 0 used to make the network term silently free,
  // letting this baseline "win" every comparison; now it fails loudly.
  DistributedLdaModel m;
  try {
    m.IterationSeconds(100);
    FAIL() << "model_bytes = 0 must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("model_bytes"), std::string::npos);
  }
}

TEST(Distributed, RejectsSyncVolumeOverflow) {
  DistributedLdaModel m;
  m.num_nodes = 4;
  m.model_bytes = UINT64_MAX / 4;  // 2 * bytes * 4 nodes would wrap
  try {
    m.IterationSeconds(100);
    FAIL() << "2 * model_bytes * num_nodes wrap must be rejected";
  } catch (const Error& e) {
    const std::string msg = e.what();
    // The error names both operands so the caller knows what to shrink.
    EXPECT_NE(msg.find("model_bytes"), std::string::npos);
    EXPECT_NE(msg.find("num_nodes"), std::string::npos);
  }
  m.model_bytes = UINT64_MAX / 2 / 4;  // largest legal value: no throw
  EXPECT_GT(m.IterationSeconds(100), 0.0);
}

}  // namespace
}  // namespace culda::baselines
