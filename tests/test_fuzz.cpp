// Randomized fuzzing sweeps: the index tree against a linear-scan oracle
// over random shapes, UCI round-trips over random corpora, and determinism
// of the full trainer pipeline including the word-partition variant.
#include <gtest/gtest.h>

#include <sstream>

#include "core/index_tree.hpp"
#include "core/trainer.hpp"
#include "core/word_partition.hpp"
#include "corpus/synthetic.hpp"
#include "corpus/uci_reader.hpp"
#include "gpusim/device.hpp"
#include "util/philox.hpp"

namespace culda {
namespace {

class FuzzSeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeed, IndexTreeMatchesOracleOnRandomShapes) {
  PhiloxStream shape_rng(GetParam(), 100);
  for (int round = 0; round < 8; ++round) {
    const size_t n = 1 + shape_rng.NextBelow(3000);
    const uint32_t fanout = 2 + shape_rng.NextBelow(40);
    std::vector<float> p(n);
    PhiloxStream val_rng(GetParam(), 200 + round);
    for (auto& x : p) {
      // Mix of zeros, tiny, and large weights.
      const uint32_t kind = val_rng.NextBelow(4);
      x = kind == 0 ? 0.0f
          : kind == 1 ? val_rng.NextFloat() * 1e-5f
                      : val_rng.NextFloat() * 100.0f;
    }
    // Ensure at least one positive.
    p[val_rng.NextBelow(static_cast<uint32_t>(n))] += 1.0f;

    core::IndexTree tree(n, fanout);
    const float total = tree.view().Build(p);
    for (int draw = 0; draw < 60; ++draw) {
      const float u = val_rng.NextFloat() * total;
      float acc = 0;
      size_t expected = n - 1;
      for (size_t k = 0; k < n; ++k) {
        acc += p[k];
        if (acc > u) {
          expected = k;
          break;
        }
      }
      ASSERT_EQ(tree.view().Search(u), expected)
          << "n=" << n << " fanout=" << fanout << " u=" << u;
    }
  }
}

TEST_P(FuzzSeed, UciRoundTripOnRandomCorpora) {
  PhiloxStream rng(GetParam(), 300);
  corpus::SyntheticProfile p;
  p.num_docs = 20 + rng.NextBelow(100);
  p.vocab_size = 10 + rng.NextBelow(300);
  p.avg_doc_length = 5 + rng.NextBelow(40);
  p.seed = GetParam();
  const auto original = corpus::GenerateCorpus(p);

  std::stringstream buf;
  corpus::WriteUciBagOfWords(original, buf);
  const auto parsed = corpus::ReadUciBagOfWords(buf);
  ASSERT_EQ(parsed.num_tokens(), original.num_tokens());
  ASSERT_EQ(parsed.num_docs(), original.num_docs());
  EXPECT_EQ(parsed.WordFrequencies(), original.WordFrequencies());
}

TEST_P(FuzzSeed, PartitionPoliciesAgreeOnRandomCorpora) {
  // Full-pipeline differential test: partition-by-document (2 GPUs, WS2)
  // vs partition-by-word (2 GPUs) must give identical log-likelihoods.
  PhiloxStream rng(GetParam(), 400);
  corpus::SyntheticProfile p;
  p.num_docs = 60 + rng.NextBelow(200);
  p.vocab_size = 50 + rng.NextBelow(200);
  p.avg_doc_length = 10 + rng.NextBelow(40);
  p.seed = GetParam() * 31;
  const auto c = corpus::GenerateCorpus(p);

  core::CuldaConfig cfg;
  cfg.num_topics = 4 + rng.NextBelow(40);
  core::TrainerOptions opts;
  opts.gpus.assign(2, gpusim::TitanXpPascal());
  opts.chunks_per_gpu = 1 + rng.NextBelow(3);
  core::CuldaTrainer by_doc(c, cfg, opts);
  core::WordPartitionTrainer by_word(
      c, cfg, std::vector<gpusim::DeviceSpec>(2, gpusim::TitanXpPascal()));
  by_doc.Train(3);
  by_word.Train(3);
  EXPECT_DOUBLE_EQ(by_doc.LogLikelihoodPerToken(),
                   by_word.LogLikelihoodPerToken());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Range<uint64_t>(100, 110),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param);
                         });

// ------------------------------------------------------------ event API

TEST(Events, RecordAndWaitOrderStreams) {
  gpusim::Device dev(gpusim::TitanXpPascal(), 0);
  dev.Launch("producer", {1, 32},
             [](gpusim::BlockContext& ctx) { ctx.ReadGlobal(50 << 20); },
             &dev.stream(0));
  const gpusim::Event done = dev.stream(0).Record();
  EXPECT_EQ(done.stream_id, 0);
  EXPECT_GT(done.timestamp, 0.0);

  dev.stream(1).Wait(done);
  const auto rec = dev.Launch(
      "consumer", {1, 32},
      [](gpusim::BlockContext& ctx) { ctx.ReadGlobal(1 << 20); },
      &dev.stream(1));
  EXPECT_GE(rec.start_s, done.timestamp);
}

}  // namespace
}  // namespace culda
