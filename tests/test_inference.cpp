// Tests for held-out inference (fold-in Gibbs) and document-completion
// perplexity.
#include <gtest/gtest.h>

#include "core/inference.hpp"
#include "core/trainer.hpp"
#include "corpus/split.hpp"
#include "corpus/synthetic.hpp"
#include "util/philox.hpp"

namespace culda::core {
namespace {

/// A model with two cleanly separated topics: topic 0 owns words [0, V/2),
/// topic 1 owns [V/2, V).
GatheredModel SeparatedModel(uint32_t vocab = 40, uint16_t per_word = 100) {
  GatheredModel m;
  m.num_topics = 2;
  m.vocab_size = vocab;
  m.num_docs = 1;
  m.theta = ThetaMatrix(1, 2);
  ThetaMatrix::RowBuilder b(&m.theta);
  const uint16_t idx[] = {0, 1};
  const int32_t val[] = {1, 1};
  b.AppendRow(0, idx, val);
  b.Finish();
  m.phi = PhiMatrix(2, vocab);
  m.nk = {0, 0};
  for (uint32_t v = 0; v < vocab; ++v) {
    const uint32_t k = v < vocab / 2 ? 0 : 1;
    m.phi(k, v) = per_word;
    m.nk[k] += per_word;
  }
  return m;
}

CuldaConfig TwoTopicConfig() {
  CuldaConfig cfg;
  cfg.num_topics = 2;
  cfg.alpha = 0.1;
  cfg.beta = 0.01;
  return cfg;
}

TEST(Inference, RecoversDominantTopic) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  // A document made entirely of topic-0 words.
  std::vector<uint32_t> doc{0, 3, 7, 11, 15, 2, 5, 9};
  const auto result = engine.InferDocument(doc);
  ASSERT_FALSE(result.mixture.empty());
  EXPECT_EQ(result.mixture[0].topic, 0u);
  EXPECT_GT(result.mixture[0].proportion, 0.9);
}

TEST(Inference, MixedDocumentSplits) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  std::vector<uint32_t> doc{0, 1, 2, 3, 20, 21, 22, 23};
  const auto result = engine.InferDocument(doc, 30);
  ASSERT_EQ(result.mixture.size(), 2u);
  EXPECT_NEAR(result.mixture[0].proportion, 0.5, 0.2);
}

TEST(Inference, DeterministicInSeed) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  std::vector<uint32_t> doc{0, 25, 3, 30, 7};
  const auto a = engine.InferDocument(doc, 10, 5);
  const auto b = engine.InferDocument(doc, 10, 5);
  EXPECT_EQ(a.topic_counts, b.topic_counts);
}

TEST(Inference, CountsSumToTokens) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  std::vector<uint32_t> doc{1, 2, 3, 21, 22};
  const auto result = engine.InferDocument(doc);
  int64_t sum = 0;
  for (const int32_t c : result.topic_counts) sum += c;
  EXPECT_EQ(sum, 5);
  EXPECT_EQ(result.tokens, 5u);
}

TEST(Inference, EmptyDocument) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  const auto result = engine.InferDocument({});
  EXPECT_TRUE(result.mixture.empty());
  EXPECT_EQ(result.tokens, 0u);
}

TEST(Inference, OutOfVocabularyRejected) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  std::vector<uint32_t> doc{1000};
  EXPECT_THROW(engine.InferDocument(doc), Error);
}

TEST(Inference, ConfigMismatchRejected) {
  const auto model = SeparatedModel();
  CuldaConfig cfg;
  cfg.num_topics = 8;  // model has 2
  EXPECT_THROW(InferenceEngine(model, cfg), Error);
}

TEST(Inference, WordGivenTopicNormalizes) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  for (uint32_t k = 0; k < 2; ++k) {
    double sum = 0;
    for (uint32_t v = 0; v < model.vocab_size; ++v) {
      sum += engine.WordGivenTopic(v, k);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Perplexity, TrainedModelBeatsUntrained) {
  // Train/held-out split of ONE corpus (same generative topics): the last
  // 60 documents are held out, the rest train. The profile uses separable
  // topics (low word-skew, peaky topic–word distributions); with the
  // default heavy Zipf skew, the unigram distribution — which the *random*
  // init already matches — is nearly unbeatable at this scale, and the test
  // would measure the corpus, not the model.
  corpus::SyntheticProfile p;
  p.num_docs = 560;
  p.vocab_size = 400;
  p.avg_doc_length = 100;
  p.num_topics = 20;
  p.doc_topic_alpha = 0.05;
  p.zipf_exponent = 0.4;
  p.topic_word_beta = 0.008;
  const auto full = corpus::GenerateCorpus(p);
  const auto train_corpus = corpus::SliceDocuments(full, 0, 500);
  const auto heldout = corpus::SliceDocuments(full, 500, 560);

  CuldaConfig cfg;
  cfg.num_topics = 20;
  cfg.alpha = 0.1;
  CuldaTrainer trainer(train_corpus, cfg, {});
  const InferenceEngine before(trainer.Gather(), cfg);
  const double ppl_before =
      before.DocumentCompletionPerplexity(heldout, 15);
  trainer.Train(20);
  const InferenceEngine after(trainer.Gather(), cfg);
  const double ppl_after = after.DocumentCompletionPerplexity(heldout, 15);

  EXPECT_LT(ppl_after, 0.6 * ppl_before);
  // Perplexity is bounded by vocabulary size for any non-degenerate model.
  EXPECT_LT(ppl_after, 400);
  EXPECT_GT(ppl_after, 1.0);
}

TEST(Perplexity, EmptyHeldoutRejected) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  const corpus::Corpus empty(40, {0, 1}, {0});  // one 1-token doc: unscorable
  EXPECT_THROW(engine.DocumentCompletionPerplexity(empty), Error);
}

}  // namespace
}  // namespace culda::core
