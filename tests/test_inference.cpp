// Tests for held-out inference (fold-in Gibbs) and document-completion
// perplexity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/inference.hpp"
#include "core/trainer.hpp"
#include "corpus/split.hpp"
#include "corpus/synthetic.hpp"
#include "util/philox.hpp"
#include "util/thread_pool.hpp"

namespace culda::core {
namespace {

/// A model with two cleanly separated topics: topic 0 owns words [0, V/2),
/// topic 1 owns [V/2, V).
GatheredModel SeparatedModel(uint32_t vocab = 40, uint16_t per_word = 100) {
  GatheredModel m;
  m.num_topics = 2;
  m.vocab_size = vocab;
  m.num_docs = 1;
  m.theta = ThetaMatrix(1, 2);
  ThetaMatrix::RowBuilder b(&m.theta);
  const uint16_t idx[] = {0, 1};
  const int32_t val[] = {1, 1};
  b.AppendRow(0, idx, val);
  b.Finish();
  m.phi = PhiMatrix(2, vocab);
  m.nk = {0, 0};
  for (uint32_t v = 0; v < vocab; ++v) {
    const uint32_t k = v < vocab / 2 ? 0 : 1;
    m.phi(k, v) = per_word;
    m.nk[k] += per_word;
  }
  return m;
}

CuldaConfig TwoTopicConfig() {
  CuldaConfig cfg;
  cfg.num_topics = 2;
  cfg.alpha = 0.1;
  cfg.beta = 0.01;
  return cfg;
}

TEST(Inference, RecoversDominantTopic) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  // A document made entirely of topic-0 words.
  std::vector<uint32_t> doc{0, 3, 7, 11, 15, 2, 5, 9};
  const auto result = engine.InferDocument(doc);
  ASSERT_FALSE(result.mixture.empty());
  EXPECT_EQ(result.mixture[0].topic, 0u);
  EXPECT_GT(result.mixture[0].proportion, 0.9);
}

TEST(Inference, MixedDocumentSplits) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  std::vector<uint32_t> doc{0, 1, 2, 3, 20, 21, 22, 23};
  const auto result = engine.InferDocument(doc, 30);
  ASSERT_EQ(result.mixture.size(), 2u);
  EXPECT_NEAR(result.mixture[0].proportion, 0.5, 0.2);
}

TEST(Inference, DeterministicInSeed) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  std::vector<uint32_t> doc{0, 25, 3, 30, 7};
  const auto a = engine.InferDocument(doc, 10, 5);
  const auto b = engine.InferDocument(doc, 10, 5);
  EXPECT_EQ(a.topic_counts, b.topic_counts);
}

TEST(Inference, CountsSumToTokens) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  std::vector<uint32_t> doc{1, 2, 3, 21, 22};
  const auto result = engine.InferDocument(doc);
  int64_t sum = 0;
  for (const int32_t c : result.topic_counts) sum += c;
  EXPECT_EQ(sum, 5);
  EXPECT_EQ(result.tokens, 5u);
}

TEST(Inference, EmptyDocument) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  const auto result = engine.InferDocument({});
  EXPECT_TRUE(result.mixture.empty());
  EXPECT_EQ(result.tokens, 0u);
}

TEST(Inference, OutOfVocabularyRejected) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  std::vector<uint32_t> doc{1000};
  EXPECT_THROW(engine.InferDocument(doc), Error);
}

TEST(Inference, ConfigMismatchRejected) {
  const auto model = SeparatedModel();
  CuldaConfig cfg;
  cfg.num_topics = 8;  // model has 2
  EXPECT_THROW(InferenceEngine(model, cfg), Error);
}

TEST(Inference, WordGivenTopicNormalizes) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  for (uint32_t k = 0; k < 2; ++k) {
    double sum = 0;
    for (uint32_t v = 0; v < model.vocab_size; ++v) {
      sum += engine.WordGivenTopic(v, k);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Perplexity, TrainedModelBeatsUntrained) {
  // Train/held-out split of ONE corpus (same generative topics): the last
  // 60 documents are held out, the rest train. The profile uses separable
  // topics (low word-skew, peaky topic–word distributions); with the
  // default heavy Zipf skew, the unigram distribution — which the *random*
  // init already matches — is nearly unbeatable at this scale, and the test
  // would measure the corpus, not the model.
  corpus::SyntheticProfile p;
  p.num_docs = 560;
  p.vocab_size = 400;
  p.avg_doc_length = 100;
  p.num_topics = 20;
  p.doc_topic_alpha = 0.05;
  p.zipf_exponent = 0.4;
  p.topic_word_beta = 0.008;
  const auto full = corpus::GenerateCorpus(p);
  const auto train_corpus = corpus::SliceDocuments(full, 0, 500);
  const auto heldout = corpus::SliceDocuments(full, 500, 560);

  CuldaConfig cfg;
  cfg.num_topics = 20;
  cfg.alpha = 0.1;
  CuldaTrainer trainer(train_corpus, cfg, {});
  // The engine keeps a pointer into the gathered model, so keep each model
  // alive past its perplexity call.
  const auto model_before = trainer.Gather();
  const InferenceEngine before(model_before, cfg);
  const double ppl_before =
      before.DocumentCompletionPerplexity(heldout, 15);
  trainer.Train(20);
  const auto model_after = trainer.Gather();
  const InferenceEngine after(model_after, cfg);
  const double ppl_after = after.DocumentCompletionPerplexity(heldout, 15);

  EXPECT_LT(ppl_after, 0.6 * ppl_before);
  // Perplexity is bounded by vocabulary size for any non-degenerate model.
  EXPECT_LT(ppl_after, 400);
  EXPECT_GT(ppl_after, 1.0);
}

TEST(Perplexity, EmptyHeldoutRejected) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  const corpus::Corpus empty(40, {0, 1}, {0});  // one 1-token doc: unscorable
  EXPECT_THROW(engine.DocumentCompletionPerplexity(empty), Error);
}

// ------------------------------------------- sampling contract & sparsity

/// Pins the engine's RNG contract (inference.hpp header comment): one
/// PhiloxStream(seed, 0) per document, len(doc) NextBelow(K) init draws,
/// then one NextDouble per token per sweep. If the number or order of draws
/// ever changes, these sequences move and this test fails.
TEST(Inference, PinnedSamplingSequence) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  const std::vector<uint32_t> doc{0, 25, 3, 30, 7, 21, 2};

  // iterations=0 exposes the raw init: token i gets the i-th NextBelow(K)
  // draw of the document's stream.
  const auto init = engine.InferDocument(doc, 0, 11);
  PhiloxStream rng(11, 0);
  for (size_t i = 0; i < doc.size(); ++i) {
    EXPECT_EQ(init.assignments[i],
              static_cast<uint16_t>(rng.NextBelow(2)));
  }

  // Golden sequences after 1 and 5 sweeps at seed 11.
  const std::vector<uint16_t> after_one{0, 1, 0, 1, 0, 1, 0};
  const std::vector<uint16_t> after_five{0, 1, 0, 1, 0, 1, 0};
  EXPECT_EQ(engine.InferDocument(doc, 1, 11).assignments, after_one);
  EXPECT_EQ(engine.InferDocument(doc, 5, 11).assignments, after_five);
}

/// A realistically messy model for sparse-vs-dense and batching tests.
GatheredModel TrainedModel(CuldaConfig& cfg) {
  corpus::SyntheticProfile p;
  p.num_docs = 200;
  p.vocab_size = 300;
  p.avg_doc_length = 30;
  const auto c = corpus::GenerateCorpus(p);
  cfg.num_topics = 16;
  cfg.alpha = 0.3;
  CuldaTrainer trainer(c, cfg, {});
  trainer.Train(5);
  return trainer.Gather();
}

std::vector<std::vector<uint32_t>> RandomDocs(size_t n, uint32_t vocab,
                                              uint64_t seed) {
  PhiloxStream rng(seed, 0);
  std::vector<std::vector<uint32_t>> docs(n);
  for (auto& doc : docs) {
    const uint32_t len = 5 + rng.NextBelow(40);
    for (uint32_t t = 0; t < len; ++t) doc.push_back(rng.NextBelow(vocab));
  }
  return docs;
}

TEST(Inference, SparseAndDenseAgreeExactly) {
  CuldaConfig cfg;
  const auto model = TrainedModel(cfg);
  InferenceOptions dense_opts;
  dense_opts.sampler = InferSampler::kDenseReference;
  const InferenceEngine sparse(model, cfg);
  const InferenceEngine dense(model, cfg, dense_opts);

  for (const auto& doc : RandomDocs(10, model.vocab_size, 3)) {
    const auto a = sparse.InferDocument(doc, 15, 21);
    const auto b = dense.InferDocument(doc, 15, 21);
    // Exact topic assignments, not just close mixtures: both modes follow
    // the same sampling specification term for term.
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_EQ(a.topic_counts, b.topic_counts);
  }
}

TEST(Inference, BatchMatchesSequentialAtAnyWorkerCount) {
  CuldaConfig cfg;
  const auto model = TrainedModel(cfg);
  const auto docs = RandomDocs(17, model.vocab_size, 4);
  std::vector<uint64_t> seeds(docs.size());
  for (size_t i = 0; i < seeds.size(); ++i) seeds[i] = 100 + i * 3;

  const InferenceEngine sequential(model, cfg);
  std::vector<InferenceResult> expect;
  for (size_t i = 0; i < docs.size(); ++i) {
    expect.push_back(sequential.InferDocument(docs[i], 12, seeds[i]));
  }

  for (const size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(workers);
    InferenceOptions opts;
    opts.pool = &pool;
    const InferenceEngine batched(model, cfg, opts);
    const auto results = batched.InferBatch(docs, 12, seeds);
    ASSERT_EQ(results.size(), docs.size());
    for (size_t i = 0; i < docs.size(); ++i) {
      EXPECT_EQ(results[i].assignments, expect[i].assignments)
          << "doc " << i << " at " << workers << " workers";
      EXPECT_EQ(results[i].topic_counts, expect[i].topic_counts);
    }
  }
}

TEST(Inference, EmptyDocumentInsideBatch) {
  CuldaConfig cfg;
  const auto model = TrainedModel(cfg);
  const InferenceEngine engine(model, cfg);
  std::vector<std::vector<uint32_t>> docs{{1, 2, 3}, {}, {4, 5}};
  const auto results = engine.InferBatch(docs, 10, 7);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[1].tokens, 0u);
  EXPECT_TRUE(results[1].mixture.empty());
  EXPECT_EQ(results[0].tokens, 3u);
  EXPECT_EQ(results[2].tokens, 2u);
}

TEST(Inference, BatchSeedMismatchRejected) {
  const auto model = SeparatedModel();
  const InferenceEngine engine(model, TwoTopicConfig());
  std::vector<std::vector<uint32_t>> docs{{1}, {2}};
  const std::vector<uint64_t> one_seed{7};
  EXPECT_THROW(engine.InferBatch(docs, 10, one_seed), Error);
}

TEST(Perplexity, SparseAndDenseBitIdentical) {
  CuldaConfig cfg;
  const auto model = TrainedModel(cfg);
  corpus::SyntheticProfile p;
  p.num_docs = 40;
  p.vocab_size = 300;
  p.avg_doc_length = 24;
  const auto heldout = corpus::GenerateCorpus(p);

  InferenceOptions dense_opts;
  dense_opts.sampler = InferSampler::kDenseReference;
  const InferenceEngine sparse(model, cfg);
  const InferenceEngine dense(model, cfg, dense_opts);
  // Exact equality, not EXPECT_NEAR: the scoring sums are built from the
  // same double terms in the same order in both modes.
  EXPECT_EQ(sparse.DocumentCompletionPerplexity(heldout, 10),
            dense.DocumentCompletionPerplexity(heldout, 10));
}

TEST(Perplexity, ParallelMatchesSequentialBitwise) {
  CuldaConfig cfg;
  const auto model = TrainedModel(cfg);
  corpus::SyntheticProfile p;
  p.num_docs = 40;
  p.vocab_size = 300;
  p.avg_doc_length = 24;
  const auto heldout = corpus::GenerateCorpus(p);

  const InferenceEngine sequential(model, cfg);
  const double expect = sequential.DocumentCompletionPerplexity(heldout, 10);
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(workers);
    InferenceOptions opts;
    opts.pool = &pool;
    const InferenceEngine parallel(model, cfg, opts);
    EXPECT_EQ(parallel.DocumentCompletionPerplexity(heldout, 10), expect)
        << workers << " workers";
  }
}

TEST(Perplexity, SkipsUnscorableDocuments) {
  CuldaConfig cfg;
  const auto model = TrainedModel(cfg);
  const InferenceEngine engine(model, cfg);
  // Doc 0 has one token (unscorable, skipped), doc 1 has four.
  const corpus::Corpus heldout(300, {0, 1, 5}, {3, 10, 11, 12, 13});
  const double ppl = engine.DocumentCompletionPerplexity(heldout, 10);
  EXPECT_GT(ppl, 1.0);
  EXPECT_TRUE(std::isfinite(ppl));
}

}  // namespace
}  // namespace culda::core
