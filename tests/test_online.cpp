// Tests for assignment import/export and the online (growing-corpus)
// trainer.
#include <gtest/gtest.h>

#include "core/online.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "util/philox.hpp"
#include "util/thread_pool.hpp"

namespace culda::core {
namespace {

corpus::Corpus TestCorpus(uint64_t docs = 250) {
  corpus::SyntheticProfile p;
  p.num_docs = docs;
  p.vocab_size = 300;
  p.avg_doc_length = 30;
  return corpus::GenerateCorpus(p);
}

CuldaConfig TestConfig() {
  CuldaConfig cfg;
  cfg.num_topics = 16;
  return cfg;
}

// ------------------------------------------------- export / import

TEST(Assignments, ExportImportRoundTrip) {
  const auto c = TestCorpus();
  CuldaTrainer a(c, TestConfig(), {});
  a.Train(3);
  const auto z = a.ExportAssignments();
  ASSERT_EQ(z.size(), c.num_tokens());

  CuldaTrainer b(c, TestConfig(), {});
  b.ImportAssignments(z);
  EXPECT_DOUBLE_EQ(a.LogLikelihoodPerToken(), b.LogLikelihoodPerToken());

  // Continuing both produces the same next state only if the iteration
  // counters also match; align b's phase by stepping a fresh pair instead:
  const auto ga = a.Gather();
  const auto gb = b.Gather();
  for (size_t i = 0; i < ga.phi.flat().size(); ++i) {
    ASSERT_EQ(ga.phi.flat()[i], gb.phi.flat()[i]);
  }
}

TEST(Assignments, ImportAcrossDifferentTopology) {
  const auto c = TestCorpus();
  CuldaTrainer a(c, TestConfig(), {});
  a.Train(2);
  TrainerOptions multi;
  multi.gpus.assign(3, gpusim::TitanXpPascal());
  CuldaTrainer b(c, TestConfig(), multi);
  b.ImportAssignments(a.ExportAssignments());
  EXPECT_DOUBLE_EQ(a.LogLikelihoodPerToken(), b.LogLikelihoodPerToken());
}

TEST(Assignments, ImportValidatesInput) {
  const auto c = TestCorpus();
  CuldaTrainer t(c, TestConfig(), {});
  std::vector<uint16_t> wrong_size(c.num_tokens() - 1, 0);
  EXPECT_THROW(t.ImportAssignments(wrong_size), Error);
  std::vector<uint16_t> out_of_range(c.num_tokens(), 999);
  EXPECT_THROW(t.ImportAssignments(out_of_range), Error);
}

// --------------------------------------------------------- online trainer

TEST(OnlineTrainer, FoldInThenAbsorbKeepsInvariants) {
  OnlineTrainer online(TestCorpus(), TestConfig(), {}, 10);
  const uint64_t docs_before = online.corpus().num_docs();

  PhiloxStream rng(5, 0);
  for (int i = 0; i < 12; ++i) {
    std::vector<uint32_t> doc;
    for (int t = 0; t < 20; ++t) doc.push_back(rng.NextBelow(300));
    const auto result = online.AddDocument(doc);
    EXPECT_EQ(result.assignments.size(), 20u);
    EXPECT_FALSE(result.mixture.empty());
  }
  EXPECT_EQ(online.pending_documents(), 12u);

  online.Absorb(3);
  EXPECT_EQ(online.pending_documents(), 0u);
  EXPECT_EQ(online.corpus().num_docs(), docs_before + 12);
  online.Gather().Validate(online.corpus());
}

TEST(OnlineTrainer, AbsorbedDocumentsKeepTheirFoldedTopics) {
  // Whatever topic the fold-in picked for a new document must survive
  // absorption: the seeded state, not a fresh random one, is what the
  // refresh sweeps start from. (Low α keeps the mixture decisive.)
  CuldaConfig cfg = TestConfig();
  cfg.alpha = 0.1;
  OnlineTrainer online(TestCorpus(600), cfg, {}, 25);

  // Build the doc from one topic's highest-count words so the fold is
  // decisive, whichever topic it lands on.
  const auto model = online.Gather();
  uint32_t top_topic = 0;
  for (uint32_t k = 1; k < model.num_topics; ++k) {
    if (model.nk[k] > model.nk[top_topic]) top_topic = k;
  }
  std::vector<uint32_t> doc;
  for (uint32_t v = 0; v < model.vocab_size && doc.size() < 30; ++v) {
    if (model.phi(top_topic, v) >= 3) doc.insert(doc.end(), 2, v);
  }
  ASSERT_GE(doc.size(), 10u);

  const auto fold = online.AddDocument(doc);
  ASSERT_FALSE(fold.mixture.empty());
  const uint32_t folded_topic = fold.mixture.front().topic;
  online.Absorb(1);

  const auto after = online.Gather();
  const size_t new_doc = after.num_docs - 1;
  const auto mix = DocumentMixture(after, cfg, new_doc);
  ASSERT_FALSE(mix.empty());
  EXPECT_EQ(mix.front().topic, folded_topic);
}

TEST(OnlineTrainer, RejectsOutOfVocabularyDocuments) {
  OnlineTrainer online(TestCorpus(), TestConfig(), {}, 2);
  EXPECT_THROW(online.AddDocument({10'000}), Error);
  EXPECT_THROW(online.AddDocuments({{1, 2}, {10'000}}), Error);
  // The failed batch queued nothing.
  EXPECT_EQ(online.pending_documents(), 0u);
}

TEST(OnlineTrainer, BatchedAddMatchesSequential) {
  // AddDocuments must be bit-identical to AddDocument-in-a-loop — same
  // per-document seeds, same assignments — with or without a pool.
  const auto c = TestCorpus();
  PhiloxStream rng(5, 0);
  std::vector<std::vector<uint32_t>> docs(9);
  for (auto& doc : docs) {
    for (int t = 0; t < 20; ++t) doc.push_back(rng.NextBelow(300));
  }

  OnlineTrainer one_by_one(c, TestConfig(), {}, 5);
  std::vector<InferenceResult> expect;
  for (const auto& doc : docs) {
    expect.push_back(one_by_one.AddDocument(doc));
  }

  ThreadPool pool(4);
  TrainerOptions opts;
  opts.pool = &pool;
  OnlineTrainer batched(c, TestConfig(), opts, 5);
  const auto results = batched.AddDocuments(docs);
  ASSERT_EQ(results.size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(results[i].assignments, expect[i].assignments) << "doc " << i;
    EXPECT_EQ(results[i].topic_counts, expect[i].topic_counts);
  }
  EXPECT_EQ(batched.pending_documents(), docs.size());
}

TEST(OnlineTrainer, AbsorbWithNothingPendingJustTrains) {
  OnlineTrainer online(TestCorpus(), TestConfig(), {}, 2);
  const uint32_t before = online.iteration();
  online.Absorb(3);
  EXPECT_EQ(online.iteration(), before + 3);
}

TEST(OnlineTrainer, QualityImprovesOverAbsorptions) {
  OnlineTrainer online(TestCorpus(400), TestConfig(), {}, 5);
  const double early = online.LogLikelihoodPerToken();
  PhiloxStream rng(9, 0);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      std::vector<uint32_t> doc;
      for (int t = 0; t < 25; ++t) doc.push_back(rng.NextBelow(300));
      online.AddDocument(doc);
    }
    online.Absorb(4);
  }
  // Random filler documents dilute the corpus, but training depth grows;
  // the model must at least remain healthy and valid.
  online.Gather().Validate(online.corpus());
  EXPECT_GT(online.LogLikelihoodPerToken(), early - 0.5);
}

}  // namespace
}  // namespace culda::core
