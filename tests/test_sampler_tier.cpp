// Tests for the O(1) sampler tier (docs/samplers.md): the shared Walker
// alias table, the alias/MH serving and training paths, and the SIMD hot
// loops' scalar-equivalence contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/inference.hpp"
#include "core/online.hpp"
#include "core/sampler/alias_table.hpp"
#include "core/sampler/sampler.hpp"
#include "core/trainer.hpp"
#include "corpus/synthetic.hpp"
#include "util/philox.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace culda {
namespace {

// --- AliasTable -----------------------------------------------------------

/// The probability the finished table assigns to index i: its own cell plus
/// every cell whose alias points at it.
std::vector<double> ImpliedProbabilities(const core::AliasTable& t) {
  const size_t n = t.prob.size();
  std::vector<double> p(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    p[i] += t.prob[i] / static_cast<double>(n);
    p[t.alias[i]] += (1.0 - t.prob[i]) / static_cast<double>(n);
  }
  return p;
}

TEST(AliasTable, PrecisionUnderAdversarialMagnitudeSpread) {
  // One weight of 2^24 followed by 65535 ones: a float accumulator absorbs
  // every subsequent 1.0f (2^24 + 1 == 2^24 in float), silently dropping
  // ~0.4% of the total mass. The builder must accumulate in double.
  std::vector<float> w(65536, 1.0f);
  w[0] = 16777216.0f;  // 2^24
  core::AliasTable t;
  t.Build(w);
  const double exact_total = 16777216.0 + 65535.0;
  EXPECT_EQ(t.total, exact_total);

  const auto p = ImpliedProbabilities(t);
  EXPECT_NEAR(p[0], 16777216.0 / exact_total, 1e-4 * p[0]);
  // Spot-check small weights: each must keep its 1/total share.
  for (const size_t i : {1ul, 777ul, 65535ul}) {
    EXPECT_NEAR(p[i], 1.0 / exact_total, 1e-4 / exact_total)
        << "index " << i;
  }
}

TEST(AliasTable, ImpliedProbabilitiesMatchWeights) {
  std::vector<float> w = {1.0f, 2.0f, 3.0f, 4.0f, 0.0f, 10.0f};
  core::AliasTable t;
  t.Build(w);
  double total = 0;
  for (const float x : w) total += x;
  const auto p = ImpliedProbabilities(t);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(p[i], w[i] / total, 1e-6) << "index " << i;
  }
}

TEST(AliasTable, SingleElementAlwaysSampled) {
  std::vector<float> w = {3.5f};
  core::AliasTable t;
  t.Build(w);
  PhiloxStream rng(1, 0);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(t.Sample(rng.NextBelow(1), rng.NextFloat()), 0u);
  }
}

TEST(AliasTable, SampleFrequenciesTrackWeights) {
  std::vector<float> w = {1.0f, 2.0f, 3.0f, 4.0f};
  core::AliasTable t;
  t.Build(w);
  PhiloxStream rng(7, 0);
  std::vector<uint64_t> hits(w.size(), 0);
  const uint64_t draws = 100000;
  for (uint64_t d = 0; d < draws; ++d) {
    hits[t.Sample(rng.NextBelow(4), rng.NextFloat())] += 1;
  }
  for (size_t i = 0; i < w.size(); ++i) {
    const double expect = w[i] / 10.0;
    EXPECT_NEAR(hits[i] / double(draws), expect, 0.01) << "index " << i;
  }
}

TEST(AliasTable, BuildReusesScratchAcrossCalls) {
  core::AliasBuildScratch scratch;
  std::vector<float> prob;
  std::vector<uint16_t> alias;
  for (const size_t n : {5ul, 300ul, 7ul}) {
    std::vector<float> w(n);
    PhiloxStream rng(n, 0);
    for (auto& x : w) x = rng.NextFloat() + 0.01f;
    prob.assign(n, 0.0f);
    alias.assign(n, 0);
    const double total = core::BuildAliasInto(w, prob, alias, scratch);
    double exact = 0;
    for (const float x : w) exact += x;
    EXPECT_NEAR(total, exact, 1e-9 * exact);
  }
}

// --- Mode parsers ---------------------------------------------------------

TEST(SamplerParse, AcceptsEveryMode) {
  EXPECT_EQ(core::ParseTrainSampler("tree"), core::TrainSampler::kTree);
  EXPECT_EQ(core::ParseTrainSampler("alias-mh"),
            core::TrainSampler::kAliasMH);
  EXPECT_EQ(core::ParseInferSampler("sparse"),
            core::InferSampler::kSparseBucket);
  EXPECT_EQ(core::ParseInferSampler("dense"),
            core::InferSampler::kDenseReference);
  EXPECT_EQ(core::ParseInferSampler("alias-mh"),
            core::InferSampler::kAliasMH);
}

TEST(SamplerParse, RejectsUnknownModeWithDescriptiveError) {
  try {
    core::ParseTrainSampler("warp");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("warp"), std::string::npos);
    EXPECT_NE(msg.find("tree"), std::string::npos);
    EXPECT_NE(msg.find("alias-mh"), std::string::npos);
  }
  try {
    core::ParseInferSampler("bogus");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    EXPECT_NE(msg.find("sparse"), std::string::npos);
    EXPECT_NE(msg.find("dense"), std::string::npos);
    EXPECT_NE(msg.find("alias-mh"), std::string::npos);
  }
}

// --- Serving MH edge cases ------------------------------------------------

/// K topics over `vocab` words; word 0 lives in topic 0 only, the last word
/// has an all-zero φ column, the rest are spread.
core::GatheredModel EdgeModel(uint32_t k_topics = 8, uint32_t vocab = 10) {
  core::GatheredModel m;
  m.num_topics = k_topics;
  m.vocab_size = vocab;
  m.num_docs = 0;
  m.theta = core::ThetaMatrix(0, k_topics);
  m.phi = core::PhiMatrix(k_topics, vocab);
  for (uint32_t v = 1; v + 1 < vocab; ++v) {
    for (uint32_t k = 0; k < k_topics; ++k) {
      m.phi(k, v) = static_cast<uint16_t>(1 + (k * 5 + v) % 9);
    }
  }
  m.phi(0, 0) = 500;  // single-topic word
  m.nk.assign(k_topics, 0);
  for (uint32_t k = 0; k < k_topics; ++k) {
    int32_t sum = 0;
    for (uint32_t v = 0; v < vocab; ++v) sum += m.phi(k, v);
    m.nk[k] = sum;
  }
  return m;
}

core::InferenceEngine MhEngine(const core::GatheredModel& m,
                               const core::CuldaConfig& cfg,
                               uint32_t mh_cycles = 1,
                               ThreadPool* pool = nullptr) {
  core::InferenceOptions opts;
  opts.sampler = core::InferSampler::kAliasMH;
  opts.mh_cycles = mh_cycles;
  opts.pool = pool;
  return core::InferenceEngine(m, cfg, opts);
}

core::CuldaConfig EdgeConfig(uint32_t k_topics = 8) {
  core::CuldaConfig cfg;
  cfg.num_topics = k_topics;
  cfg.alpha = 0.1;
  cfg.beta = 0.01;
  return cfg;
}

TEST(AliasMhServing, SingleTopicWordConcentrates) {
  const auto model = EdgeModel();
  const auto cfg = EdgeConfig();
  const auto engine = MhEngine(model, cfg);
  const std::vector<uint32_t> doc(20, 0u);  // twenty copies of word 0
  const auto r = engine.InferDocument(doc, 30, 3);
  ASSERT_FALSE(r.mixture.empty());
  EXPECT_EQ(r.mixture[0].topic, 0u);
  EXPECT_GT(r.mixture[0].proportion, 0.8);
}

TEST(AliasMhServing, AllZeroPhiColumnFallsBackToSmoothing) {
  const auto model = EdgeModel();
  const auto cfg = EdgeConfig();
  const auto engine = MhEngine(model, cfg);
  // The last word has no topic counts at all: the word proposal must route
  // through the β-smoothing alias (its column alias has zero mass).
  const std::vector<uint32_t> doc(8, model.vocab_size - 1);
  const auto r = engine.InferDocument(doc, 20, 5);
  EXPECT_EQ(r.tokens, doc.size());
  int64_t total = 0;
  for (const int32_t c : r.topic_counts) {
    EXPECT_GE(c, 0);
    total += c;
  }
  EXPECT_EQ(total, static_cast<int64_t>(doc.size()));
}

TEST(AliasMhServing, SingleTokenDocumentUsesPriorProposal) {
  const auto model = EdgeModel();
  const auto cfg = EdgeConfig();
  const auto engine = MhEngine(model, cfg, /*mh_cycles=*/3);
  // len == 1: the doc proposal's other-token branch is empty, so the α
  // branch must cover every cycle without touching NextBelow(0).
  const std::vector<uint32_t> doc = {4};
  const auto r = engine.InferDocument(doc, 25, 11);
  EXPECT_EQ(r.tokens, 1u);
  ASSERT_EQ(r.assignments.size(), 1u);
  EXPECT_LT(r.assignments[0], model.num_topics);
}

TEST(AliasMhServing, DeterministicInSeedAndCycles) {
  const auto model = EdgeModel();
  const auto cfg = EdgeConfig();
  const std::vector<uint32_t> doc = {1, 4, 2, 7, 3, 1, 8, 5};
  for (const uint32_t cycles : {1u, 2u, 4u}) {
    const auto engine = MhEngine(model, cfg, cycles);
    const auto a = engine.InferDocument(doc, 15, 9);
    const auto b = engine.InferDocument(doc, 15, 9);
    EXPECT_EQ(a.assignments, b.assignments) << "mh_cycles " << cycles;
    EXPECT_EQ(a.topic_counts, b.topic_counts) << "mh_cycles " << cycles;
  }
}

TEST(AliasMhServing, MixtureConsistentWithAssignments) {
  const auto model = EdgeModel();
  const auto cfg = EdgeConfig();
  const auto engine = MhEngine(model, cfg, /*mh_cycles=*/2);
  const std::vector<uint32_t> doc = {1, 2, 3, 4, 5, 6, 1, 2, 3, 4};
  const auto r = engine.InferDocument(doc, 10, 21);
  std::vector<int32_t> rebuilt(model.num_topics, 0);
  for (const uint16_t z : r.assignments) rebuilt[z] += 1;
  EXPECT_EQ(r.topic_counts, rebuilt);
  for (const auto& dt : r.mixture) {
    EXPECT_GT(dt.count, 0);
    EXPECT_EQ(dt.count, rebuilt[dt.topic]);
  }
}

TEST(AliasMhServing, BatchMatchesSequentialAtAnyWorkerCount) {
  const auto model = EdgeModel();
  const auto cfg = EdgeConfig();
  std::vector<std::vector<uint32_t>> docs;
  PhiloxStream rng(77, 0);
  for (int d = 0; d < 12; ++d) {
    std::vector<uint32_t> doc(3 + rng.NextBelow(14));
    for (auto& w : doc) w = rng.NextBelow(model.vocab_size - 1);
    docs.push_back(std::move(doc));
  }
  std::vector<uint64_t> seeds(docs.size());
  for (size_t i = 0; i < seeds.size(); ++i) seeds[i] = 100 + i;

  const auto seq_engine = MhEngine(model, cfg, /*mh_cycles=*/2);
  std::vector<std::vector<uint16_t>> sequential;
  for (size_t i = 0; i < docs.size(); ++i) {
    sequential.push_back(
        seq_engine.InferDocument(docs[i], 10, seeds[i]).assignments);
  }
  const auto batched = seq_engine.InferBatch(docs, 10, seeds);
  ASSERT_EQ(batched.size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(batched[i].assignments, sequential[i]) << "doc " << i;
  }

  ThreadPool pool(4);
  const auto pooled_engine = MhEngine(model, cfg, /*mh_cycles=*/2, &pool);
  const auto pooled = pooled_engine.InferBatch(docs, 10, seeds);
  ASSERT_EQ(pooled.size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(pooled[i].assignments, sequential[i]) << "doc " << i;
  }
}

// --- SIMD scalar-equivalence ---------------------------------------------

TEST(Simd, NextNonZeroMatchesScalar) {
  PhiloxStream rng(5, 0);
  for (const size_t n : {0ul, 1ul, 31ul, 64ul, 257ul, 1000ul}) {
    std::vector<uint16_t> u16(n, 0);
    std::vector<int32_t> i32(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBelow(10) == 0) u16[i] = static_cast<uint16_t>(i + 1);
      if (rng.NextBelow(10) == 0) i32[i] = static_cast<int32_t>(i + 1);
    }
    for (size_t from = 0; from <= n; from += 1 + from / 3) {
      EXPECT_EQ(simd::NextNonZeroU16Simd(u16.data(), n, from),
                simd::NextNonZeroU16Scalar(u16.data(), n, from))
          << "n=" << n << " from=" << from;
      EXPECT_EQ(simd::NextNonZeroI32Simd(i32.data(), n, from),
                simd::NextNonZeroI32Scalar(i32.data(), n, from))
          << "n=" << n << " from=" << from;
    }
  }
}

TEST(Simd, AccumulateAndScaleMatchScalar) {
  PhiloxStream rng(6, 0);
  for (const size_t n : {0ul, 1ul, 7ul, 32ul, 100ul, 513ul}) {
    std::vector<uint16_t> u16(n);
    std::vector<float> f32(n);
    std::vector<double> f64(n);
    for (size_t i = 0; i < n; ++i) {
      u16[i] = static_cast<uint16_t>(rng.NextBelow(3));
      f32[i] = rng.NextFloat();
      f64[i] = rng.NextDouble();
    }
    std::vector<int32_t> acc_a(n + 1, 3), acc_b(n + 1, 3);
    simd::AccumulateNonZeroU16Simd(u16.data(), acc_a.data(), n);
    simd::AccumulateNonZeroU16Scalar(u16.data(), acc_b.data(), n);
    EXPECT_EQ(acc_a, acc_b) << "n=" << n;

    std::vector<float> out_a(n), out_b(n);
    simd::ScaleF32Simd(f32.data(), 1.25f, out_a.data(), n);
    simd::ScaleF32Scalar(f32.data(), 1.25f, out_b.data(), n);
    EXPECT_EQ(out_a, out_b) << "n=" << n;

    simd::ScaleF64ToF32Simd(f64.data(), 0.375, out_a.data(), n);
    simd::ScaleF64ToF32Scalar(f64.data(), 0.375, out_b.data(), n);
    EXPECT_EQ(out_a, out_b) << "n=" << n;
  }
}

TEST(Simd, EngineOutputsBitIdenticalEitherWay) {
  corpus::SyntheticProfile profile;
  profile.num_docs = 40;
  profile.vocab_size = 120;
  profile.avg_doc_length = 30;
  const auto corpus = corpus::GenerateCorpus(profile);
  core::CuldaConfig cfg;
  cfg.num_topics = 32;
  core::TrainerOptions topts;
  topts.gpus.assign(1, gpusim::V100Volta());
  core::CuldaTrainer trainer(corpus, cfg, topts);
  trainer.Train(3);
  const auto model = trainer.Gather();

  const bool was = simd::Enabled();
  for (const auto sampler : {core::InferSampler::kSparseBucket,
                             core::InferSampler::kDenseReference}) {
    core::InferenceOptions opts;
    opts.sampler = sampler;
    const core::InferenceEngine engine(model, cfg, opts);
    const std::vector<uint32_t> doc = {3, 50, 17, 99, 3, 42, 8};
    simd::SetEnabled(true);
    const auto on = engine.InferDocument(doc, 12, 5);
    const double ppl_on = engine.DocumentCompletionPerplexity(corpus, 3);
    simd::SetEnabled(false);
    const auto off = engine.InferDocument(doc, 12, 5);
    const double ppl_off = engine.DocumentCompletionPerplexity(corpus, 3);
    EXPECT_EQ(on.assignments, off.assignments);
    EXPECT_EQ(ppl_on, ppl_off);
  }
  simd::SetEnabled(was);
}

// --- Trainer MH path ------------------------------------------------------

corpus::Corpus TrainCorpus() {
  corpus::SyntheticProfile p;
  p.num_docs = 80;
  p.vocab_size = 200;
  p.avg_doc_length = 40;
  return corpus::GenerateCorpus(p);
}

std::vector<uint16_t> TrainMh(const corpus::Corpus& corpus, uint32_t gpus,
                              uint32_t chunks_per_gpu, size_t workers,
                              uint32_t mh_cycles, uint32_t iters = 3) {
  core::CuldaConfig cfg;
  cfg.num_topics = 24;
  cfg.max_tokens_per_block = 256;
  core::TrainerOptions opts;
  opts.gpus.assign(gpus, gpusim::V100Volta());
  opts.chunks_per_gpu = chunks_per_gpu;
  opts.sampler = core::TrainSampler::kAliasMH;
  opts.mh_cycles = mh_cycles;
  ThreadPool pool(workers);
  if (workers > 0) opts.pool = &pool;
  core::CuldaTrainer trainer(corpus, cfg, opts);
  trainer.Train(iters);
  return trainer.ExportAssignments();
}

TEST(AliasMhTrainer, BitDeterministicAcrossGpuAndChunkCounts) {
  const auto corpus = TrainCorpus();
  const auto base = TrainMh(corpus, 1, 1, 0, 1);
  EXPECT_EQ(TrainMh(corpus, 2, 1, 0, 1), base) << "2 GPUs diverged";
  EXPECT_EQ(TrainMh(corpus, 1, 2, 0, 1), base) << "2 chunks diverged";
  EXPECT_EQ(TrainMh(corpus, 2, 2, 0, 1), base) << "2x2 diverged";
}

TEST(AliasMhTrainer, BitDeterministicAcrossWorkerCounts) {
  const auto corpus = TrainCorpus();
  const auto base = TrainMh(corpus, 2, 2, 0, 2);
  EXPECT_EQ(TrainMh(corpus, 2, 2, 4, 2), base) << "4 workers diverged";
}

TEST(AliasMhTrainer, MultiCycleRunsStayValid) {
  const auto corpus = TrainCorpus();
  core::CuldaConfig cfg;
  cfg.num_topics = 24;
  core::TrainerOptions opts;
  opts.gpus.assign(1, gpusim::V100Volta());
  opts.sampler = core::TrainSampler::kAliasMH;
  opts.mh_cycles = 3;
  core::CuldaTrainer trainer(corpus, cfg, opts);
  trainer.Train(4);
  const auto model = trainer.Gather();
  EXPECT_NO_THROW(model.Validate(corpus));
}

TEST(AliasMhTrainer, ImprovesLikelihoodFromRandomInit) {
  const auto corpus = TrainCorpus();
  core::CuldaConfig cfg;
  cfg.num_topics = 24;
  core::TrainerOptions opts;
  opts.gpus.assign(1, gpusim::V100Volta());
  opts.sampler = core::TrainSampler::kAliasMH;
  core::CuldaTrainer trainer(corpus, cfg, opts);
  const double before = trainer.LogLikelihoodPerToken();
  trainer.Train(10);
  EXPECT_GT(trainer.LogLikelihoodPerToken(), before);
}

TEST(AliasMhTrainer, OnlineTrainerServesThroughMhFoldIn) {
  const auto corpus = TrainCorpus();
  core::CuldaConfig cfg;
  cfg.num_topics = 24;
  core::TrainerOptions opts;
  opts.gpus.assign(1, gpusim::V100Volta());
  opts.sampler = core::TrainSampler::kAliasMH;
  core::OnlineTrainer online(corpus, cfg, opts, /*initial_iterations=*/2);
  // AddDocument folds in through the serving engine, which must have mapped
  // the trainer's alias/MH tier onto InferSampler::kAliasMH (and absorb +
  // refresh must keep the count tables valid under it).
  const auto r = online.AddDocument({1, 5, 9, 13, 1, 5});
  EXPECT_EQ(r.tokens, 6u);
  ASSERT_EQ(r.assignments.size(), 6u);
  online.Absorb(1);
}

}  // namespace
}  // namespace culda
