// Tests for the extension features: corpus statistics, asymmetric Dirichlet
// priors, asymmetric hyperopt, and multi-node hierarchical synchronization.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/hyperopt.hpp"
#include "core/inference.hpp"
#include "core/sync.hpp"
#include "core/trainer.hpp"
#include "corpus/stats.hpp"
#include "corpus/synthetic.hpp"

namespace culda {
namespace {

// ------------------------------------------------------------ corpus stats

TEST(CorpusStats, SummarizeKnownSample) {
  const auto s = corpus::Summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.median, 3u);
  EXPECT_EQ(s.max, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(CorpusStats, SummarizeEmpty) {
  const auto s = corpus::Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(CorpusStats, MatchesCorpusGroundTruth) {
  const corpus::Corpus c(4, {0, 3, 4, 4, 10},
                         {0, 0, 1, 2, 3, 3, 3, 3, 0, 1});
  const auto stats = corpus::ComputeStats(c);
  EXPECT_EQ(stats.doc_lengths.count, 4u);
  EXPECT_EQ(stats.doc_lengths.min, 0u);
  EXPECT_EQ(stats.doc_lengths.max, 6u);
  EXPECT_EQ(stats.vocab_used, 4u);
  EXPECT_EQ(stats.word_frequencies.max, 4u);  // word 3
}

TEST(CorpusStats, SyntheticProfilesHaveZipfHead) {
  auto p = corpus::NyTimesProfile(0.002);
  p.num_docs = 500;
  p.vocab_size = 2000;
  const auto stats = corpus::ComputeStats(corpus::GenerateCorpus(p));
  // The Zipf head must be heavy: top 1% of words carry well over 10% of
  // tokens (real NYTimes: ~30–40%).
  EXPECT_GT(stats.top1pct_token_share, 0.10);
  EXPECT_LT(stats.top1pct_token_share, 0.95);
}

TEST(CorpusStats, FormatMentionsKeyNumbers) {
  const corpus::Corpus c(2, {0, 2}, {0, 1});
  const std::string s =
      corpus::FormatStats(corpus::ComputeStats(c), "tiny");
  EXPECT_NE(s.find("tiny statistics"), std::string::npos);
  EXPECT_NE(s.find("doc length"), std::string::npos);
}

// ------------------------------------------------------- asymmetric priors

corpus::Corpus SmallCorpus() {
  corpus::SyntheticProfile p;
  p.num_docs = 250;
  p.vocab_size = 300;
  p.avg_doc_length = 40;
  return corpus::GenerateCorpus(p);
}

TEST(AsymmetricAlpha, ConfigValidation) {
  core::CuldaConfig cfg;
  cfg.num_topics = 4;
  cfg.asymmetric_alpha = {0.1, 0.2, 0.3};  // wrong size
  EXPECT_THROW(cfg.Validate(), Error);
  cfg.asymmetric_alpha = {0.1, 0.2, 0.3, 0.0};  // non-positive
  EXPECT_THROW(cfg.Validate(), Error);
  cfg.asymmetric_alpha = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NO_THROW(cfg.Validate());
  EXPECT_DOUBLE_EQ(cfg.AlphaOf(2), 0.3);
  EXPECT_DOUBLE_EQ(cfg.AlphaSum(), 1.0);
}

TEST(AsymmetricAlpha, SymmetricVectorMatchesScalar) {
  // A constant asymmetric vector must behave exactly like the scalar prior.
  const auto c = SmallCorpus();
  core::CuldaConfig scalar;
  scalar.num_topics = 16;
  scalar.alpha = 0.4;
  core::CuldaConfig vec = scalar;
  vec.asymmetric_alpha.assign(16, 0.4);

  core::CuldaTrainer a(c, scalar, {});
  core::CuldaTrainer b(c, vec, {});
  a.Train(3);
  b.Train(3);
  EXPECT_DOUBLE_EQ(a.LogLikelihoodPerToken(), b.LogLikelihoodPerToken());
}

TEST(AsymmetricAlpha, SkewedPriorSkewsTopicSizes) {
  const auto c = SmallCorpus();
  core::CuldaConfig cfg;
  cfg.num_topics = 8;
  // One topic gets 100× the prior mass of the others.
  cfg.asymmetric_alpha.assign(8, 0.05);
  cfg.asymmetric_alpha[3] = 5.0;
  core::CuldaTrainer trainer(c, cfg, {});
  trainer.Train(10);
  const auto model = trainer.Gather();
  model.Validate(c);
  // Topic 3 should be the largest by a clear margin.
  int64_t max_other = 0;
  for (uint32_t k = 0; k < 8; ++k) {
    if (k != 3) max_other = std::max<int64_t>(max_other, model.nk[k]);
  }
  EXPECT_GT(model.nk[3], max_other);
}

TEST(AsymmetricAlpha, TrainingImprovesLikelihood) {
  const auto c = SmallCorpus();
  core::CuldaConfig cfg;
  cfg.num_topics = 16;
  cfg.asymmetric_alpha.assign(16, 0.1);
  cfg.asymmetric_alpha[0] = 1.0;
  core::CuldaTrainer trainer(c, cfg, {});
  const double before = trainer.LogLikelihoodPerToken();
  trainer.Train(8);
  trainer.Gather().Validate(c);
  EXPECT_GT(trainer.LogLikelihoodPerToken(), before);
}

TEST(AsymmetricAlpha, InferenceRespectsPrior) {
  // With no informative words (uniform φ), the inferred mixture follows the
  // asymmetric prior.
  core::GatheredModel m;
  m.num_topics = 2;
  m.vocab_size = 4;
  m.num_docs = 1;
  m.theta = core::ThetaMatrix(1, 2);
  core::ThetaMatrix::RowBuilder b(&m.theta);
  const uint16_t i0[] = {0};
  const int32_t v0[] = {1};
  b.AppendRow(0, i0, v0);
  b.Finish();
  m.phi = core::PhiMatrix(2, 4);
  m.nk = {0, 0};
  for (uint32_t v = 0; v < 4; ++v) {
    m.phi(0, v) = 10;
    m.phi(1, v) = 10;
    m.nk[0] += 10;
    m.nk[1] += 10;
  }
  core::CuldaConfig cfg;
  cfg.num_topics = 2;
  cfg.asymmetric_alpha = {9.0, 1.0};
  const core::InferenceEngine engine(m, cfg);
  const auto result = engine.InferDocument(std::vector<uint32_t>{0, 1}, 30);
  ASSERT_FALSE(result.mixture.empty());
  // The high-prior topic should dominate the smoothed mixture.
  double p0 = 0;
  for (const auto& dt : result.mixture) {
    if (dt.topic == 0) p0 = dt.proportion;
  }
  EXPECT_GT(p0, 0.5);
}

TEST(AsymmetricAlpha, HyperoptRecoversSkew) {
  // Train with a strongly skewed prior; the asymmetric fixed point from the
  // resulting counts must keep topic 3's α well above the others'.
  const auto c = SmallCorpus();
  core::CuldaConfig cfg;
  cfg.num_topics = 8;
  cfg.asymmetric_alpha.assign(8, 0.05);
  cfg.asymmetric_alpha[3] = 5.0;
  core::CuldaTrainer trainer(c, cfg, {});
  trainer.Train(10);

  std::vector<double> alpha(8, 0.5);  // uninformed start
  const auto result =
      core::OptimizeAsymmetricAlpha(trainer.Gather(), alpha, 100, 1e-6);
  EXPECT_GE(result.iterations, 1);
  double max_other = 0;
  for (uint32_t k = 0; k < 8; ++k) {
    if (k != 3) max_other = std::max(max_other, alpha[k]);
  }
  EXPECT_GT(alpha[3], max_other);
}

TEST(AsymmetricAlpha, OptimizerValidatesInputs) {
  const auto c = SmallCorpus();
  core::CuldaConfig cfg;
  cfg.num_topics = 8;
  core::CuldaTrainer trainer(c, cfg, {});
  std::vector<double> wrong_size(4, 0.1);
  EXPECT_THROW(
      core::OptimizeAsymmetricAlpha(trainer.Gather(), wrong_size), Error);
}

// ------------------------------------------------------- multi-node sync

std::vector<core::PhiReplica> FilledReplicas(size_t g, uint16_t value) {
  std::vector<core::PhiReplica> out;
  for (size_t i = 0; i < g; ++i) {
    core::PhiReplica r(4, 10);
    r.phi.Fill(value);
    out.push_back(std::move(r));
  }
  return out;
}

TEST(MultiNodeSync, SumsAcrossNodesAndGpus) {
  core::CuldaConfig cfg;
  cfg.num_topics = 4;
  gpusim::DeviceGroup node0(
      std::vector<gpusim::DeviceSpec>(2, gpusim::TitanXpPascal()));
  gpusim::DeviceGroup node1(
      std::vector<gpusim::DeviceSpec>(2, gpusim::TitanXpPascal()));
  auto r0 = FilledReplicas(2, 1);
  auto r1 = FilledReplicas(2, 2);

  const auto stats = core::SynchronizePhiAcrossNodes(
      {&node0, &node1}, cfg, {&r0, &r1}, gpusim::Ethernet10G());
  // Each node's intra sum = 2×value; global = 2·1 + 2·2 = 6.
  for (const auto* reps : {&r0, &r1}) {
    for (const auto& r : *reps) {
      for (const uint16_t cell : r.phi.flat()) {
        ASSERT_EQ(cell, 6);
      }
    }
  }
  EXPECT_GT(stats.inter_node_s, 0.0);
  EXPECT_GT(stats.network_bytes, 0u);
}

TEST(MultiNodeSync, SingleNodeHasNoNetworkCost) {
  core::CuldaConfig cfg;
  cfg.num_topics = 4;
  gpusim::DeviceGroup node(
      std::vector<gpusim::DeviceSpec>(2, gpusim::TitanXpPascal()));
  auto reps = FilledReplicas(2, 3);
  const auto stats = core::SynchronizePhiAcrossNodes(
      {&node}, cfg, {&reps}, gpusim::Ethernet10G());
  EXPECT_EQ(stats.network_bytes, 0u);
  EXPECT_EQ(stats.inter_node_s, 0.0);
}

TEST(MultiNodeSync, EthernetDominatesIntraNode) {
  // The whole point: at 10 Gb/s the inter-node phase dwarfs the PCIe tree.
  core::CuldaConfig cfg;
  cfg.num_topics = 256;
  auto make_big = [](size_t g) {
    std::vector<core::PhiReplica> out;
    for (size_t i = 0; i < g; ++i) {
      core::PhiReplica r(256, 10000);
      r.phi.Fill(1);
      out.push_back(std::move(r));
    }
    return out;
  };
  gpusim::DeviceGroup node0(
      std::vector<gpusim::DeviceSpec>(2, gpusim::TitanXpPascal()));
  gpusim::DeviceGroup node1(
      std::vector<gpusim::DeviceSpec>(2, gpusim::TitanXpPascal()));
  auto r0 = make_big(2);
  auto r1 = make_big(2);
  const auto stats = core::SynchronizePhiAcrossNodes(
      {&node0, &node1}, cfg, {&r0, &r1}, gpusim::Ethernet10G());
  EXPECT_GT(stats.inter_node_s, 3 * stats.intra_node_s);
}

}  // namespace
}  // namespace culda
