// culda_train — train an LDA model from the command line.
//
//   culda_train --uci=docword.nytimes.txt --topics=1024 --iters=100
//               --device=volta --gpus=4 --out=model.bin
//   culda_train --synthetic=pubmed --scale=0.001 --topics=256 ...
//
// SIGINT/SIGTERM is cooperative: the current sweep finishes, a checkpoint
// is written (when --checkpoint is set), and the tool exits with the
// distinct code 4 so scripts can tell "interrupted with state saved" from
// success (0) and real failures (1/3).
#include <cstdio>
#include <fstream>

#include "core/inference.hpp"
#include "core/model_io.hpp"
#include "core/sampler/sampler.hpp"
#include "core/trainer.hpp"
#include "corpus/split.hpp"
#include "corpus/synthetic.hpp"
#include "corpus/uci_reader.hpp"
#include "dist/cluster.hpp"
#include "gpusim/profiler.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/obs_cli.hpp"
#include "util/signal.hpp"

using namespace culda;

namespace {

constexpr char kUsage[] =
    R"(usage: culda_train [--uci=PATH | --synthetic=NAME] [options]

Input:
  --uci=PATH          UCI bag-of-words input (NYTimes/PubMed format)
  --synthetic=NAME    nytimes | pubmed profile instead of a file
  --scale=X           synthetic profile scale (default 0.01)
  --heldout-frac=X    hold out this document fraction for end-of-training
                      document-completion perplexity (default 0 = off)

Model / training:
  --topics=K          number of topics (default 256)
  --alpha=X, --beta=X hyper-parameters (defaults: 50/K, 0.01)
  --iters=N           training iterations (default 100)
  --seed=N            RNG seed (default 1234)
  --device=NAME       titan | pascal | volta | cpu (default volta)
  --gpus=G            simulated GPU count (default 1)
  --workers=N         host worker threads (default: effective CPUs - 1 from
                      the affinity mask, so cgroup cpusets are honored; 0 =
                      inline; wall-clock only, results are bit-identical)
  --pin               pin workers to their CPUs (pthread affinity; falls
                      back to unpinned per worker if the kernel refuses)
  --numa-replicate    replicate read-mostly inference state per socket for
                      held-out scoring (docs/parallelism.md; no-op on
                      single-socket hosts; results stay bit-identical)
  --chunks-per-gpu=M  override the automatic WS1/WS2 choice
  --sampler=MODE      tree (default) | alias-mh (docs/samplers.md)
  --mh-cycles=N       alias-mh only: MH proposal pairs per token per sweep
  --hyperopt=N        re-estimate alpha/beta every N iterations (default off)

Multi-node (docs/distributed.md; --gpus then means GPUs per node):
  --nodes=N           simulated node count (default 1 = single machine)
  --dist=MODE         sync | async inter-node strategy (default async)
  --staleness=S       async only: max φ-shard age in rounds before a forced
                      refresh; -1 = unbounded (natural cap N-1), 0 =
                      refresh every round (default -1)
  --fabric=TOPO       ring | full inter-node topology (default ring)
  --link=SPEC         eth10g | eth100g | pcie | nvlink | GBPS@LATENCY_US
                      inter-node link (default eth10g)
  --nodes>1 rejects the single-machine-only flags --checkpoint, --resume,
  --hyperopt, --chunks-per-gpu, --trace-out and --profile-json.

Persistence:
  --out=PATH          save the trained model (atomic tmp+rename write)
  --checkpoint=PATH   checkpoint every --checkpoint-every iterations
                      (atomic; previous kept as PATH.prev); also written at
                      the iteration boundary after SIGINT/SIGTERM
  --checkpoint-every=N  (default 10)
  --resume=PATH       restore a checkpoint before training; falls back to
                      PATH.prev with a warning if PATH is missing or torn
  --validate          check the invariant inventory after restore and after
                      every iteration; exits 1 on corruption

Observability (docs/observability.md):
  --log-level=L       debug | info | warn | error | off;  --quiet = warn
  --metrics-out=PATH  JSONL metrics per iteration + summary
  --trace-out=PATH    merged Chrome trace JSON (open in Perfetto)
  --metrics-expose=PATH     Prometheus text exposition, atomically
                            rewritten by a background exporter
  --export-interval-ms=N    exporter period (default 1000)
  --profile-json=PATH per-kernel aggregate profile as JSON

Exit codes: 0 success, 1 input error, 2 CLI usage error, 3 internal error,
4 interrupted by SIGINT/SIGTERM after finishing a sweep (state saved).
)";

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    if (flags.HelpRequested()) {
      CliFlags::PrintUsage(stdout, kUsage);
      return 0;
    }
    const LogLevel log_level = flags.ApplyLogFlags();

    corpus::Corpus corpus = [&] {
      const std::string uci = flags.GetString("uci", "");
      if (!uci.empty()) return corpus::ReadUciBagOfWordsFile(uci);
      const std::string name = flags.GetString("synthetic", "nytimes");
      const double scale = flags.GetDouble("scale", 0.01);
      corpus::SyntheticProfile profile =
          name == "pubmed" ? corpus::PubMedProfile(scale)
                           : corpus::NyTimesProfile(scale);
      return corpus::GenerateCorpus(profile);
    }();

    // Optional held-out split for end-of-training perplexity.
    const double heldout_frac = flags.GetDouble("heldout-frac", 0.0);
    corpus::Corpus heldout;
    if (heldout_frac > 0) {
      auto split = corpus::SplitByDocuments(corpus, heldout_frac);
      corpus = std::move(split.train);
      heldout = std::move(split.heldout);
      std::printf("held out %zu documents for evaluation\n",
                  heldout.num_docs());
    }
    std::printf("%s\n", corpus.Summary("corpus").c_str());

    core::CuldaConfig cfg;
    cfg.num_topics = static_cast<uint32_t>(flags.GetInt("topics", 256));
    cfg.alpha = flags.GetDouble("alpha", -1.0);
    cfg.beta = flags.GetDouble("beta", 0.01);
    cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));

    core::TrainerOptions opts;
    opts.gpus.assign(
        flags.GetInt("gpus", 1),
        gpusim::SpecByName(flags.GetString("device", "volta")));
    const int64_t workers_flag = flags.GetInt("workers", 0);
    CULDA_CHECK_MSG(workers_flag >= 0 && workers_flag <= 1024,
                    "--workers must be in [0, 1024], got " << workers_flag);
    // Flag absent → size from the *effective* CPU set (sched_getaffinity,
    // minus the participating caller), not hardware_concurrency, which
    // over-reports inside cpuset-restricted containers. Results are worker-
    // count-invariant, so the auto default changes wall-clock only.
    const size_t workers = flags.Has("workers")
                               ? static_cast<size_t>(workers_flag)
                               : DefaultWorkerCount();
    ThreadPoolOptions pool_options;
    pool_options.pin = flags.GetBool("pin", false);
    opts.numa_replicate = flags.GetBool("numa-replicate", false);
    ThreadPool pool(workers, pool_options);
    if (workers > 0) opts.pool = &pool;
    opts.chunks_per_gpu =
        static_cast<uint32_t>(flags.GetInt("chunks-per-gpu", 0));
    opts.sampler =
        core::ParseTrainSampler(flags.GetString("sampler", "tree"));
    const int64_t mh_cycles = flags.GetInt("mh-cycles", 1);
    CULDA_CHECK_MSG(mh_cycles >= 1 && mh_cycles <= 64,
                    "--mh-cycles must be in [1, 64], got " << mh_cycles);
    opts.mh_cycles = static_cast<uint32_t>(mh_cycles);
    opts.hyperopt_interval =
        static_cast<uint32_t>(flags.GetInt("hyperopt", 0));
    const bool validate = flags.GetBool("validate", false);
    opts.validate = opts.validate || validate;

    // Multi-node (docs/distributed.md): --nodes>1 swaps the single-machine
    // CuldaTrainer for the simulated-cluster ClusterTrainer below. The
    // parse helpers throw on bad values, echoing every accepted spelling.
    const int64_t nodes = flags.GetInt("nodes", 1);
    CULDA_CHECK_MSG(nodes >= 1 && nodes <= 64,
                    "--nodes must be in [1, 64], got " << nodes);
    const dist::DistMode dist_mode =
        dist::ParseDistMode(flags.GetString("dist", "async"));
    const int64_t staleness = flags.GetInt("staleness", -1);
    CULDA_CHECK_MSG(staleness >= -1,
                    "--staleness must be -1 (unbounded) or >= 0 rounds, got "
                        << staleness);
    const gpusim::FabricTopology fabric_topology =
        gpusim::ParseFabricTopology(flags.GetString("fabric", "ring"));
    const gpusim::LinkSpec network_link =
        gpusim::ParseLinkSpec(flags.GetString("link", "eth10g"));

    const int iters = static_cast<int>(flags.GetInt("iters", 100));
    const bool quiet = log_level > LogLevel::kInfo;
    const std::string out_path = flags.GetString("out", "");
    const std::string ckpt_path = flags.GetString("checkpoint", "");
    const int ckpt_every = static_cast<int>(flags.GetInt(
        "checkpoint-every", 10));
    const std::string resume = flags.GetString("resume", "");
    const std::string profile_path = flags.GetString("profile-json", "");
    ObsToolSupport::RegisterFlags(flags);

    if (const int rc = flags.RejectUnknownFlags(kUsage)) return rc;
    if (nodes > 1) {
      // Single-machine-only features: fail loudly instead of silently
      // ignoring them on the cluster path.
      const struct {
        bool set;
        const char* flag;
        const char* why;
      } conflicts[] = {
          {!ckpt_path.empty(), "--checkpoint",
           "checkpoints serialize single-machine trainer state"},
          {!resume.empty(), "--resume",
           "checkpoints serialize single-machine trainer state"},
          {opts.hyperopt_interval > 0, "--hyperopt",
           "hyper-parameter re-estimation runs in the single-machine "
           "trainer only"},
          {opts.chunks_per_gpu > 0, "--chunks-per-gpu",
           "the cluster trainer always runs one chunk per GPU"},
          {!flags.GetString("trace-out", "").empty(), "--trace-out",
           "the merged device trace covers a single machine's devices"},
          {!profile_path.empty(), "--profile-json",
           "the kernel profile covers a single machine's devices"},
      };
      for (const auto& c : conflicts) {
        if (!c.set) continue;
        std::fprintf(stderr,
                     "%s cannot be combined with --nodes=%lld: %s\n",
                     c.flag, static_cast<long long>(nodes), c.why);
        return 2;
      }
    }

    // Observation-only: enabling these changes no numeric result
    // (Obs.BitIdentity* pins that), so flipping them on is always safe.
    ObsToolSupport obs_support(flags);
    obs::JsonlSink& metrics_sink = obs_support.sink();
    const std::string& trace_path = obs_support.trace_path();

    if (nodes > 1) {
      dist::ClusterOptions copts;
      copts.num_nodes = static_cast<uint32_t>(nodes);
      copts.gpus = opts.gpus;  // --device/--gpus apply per node
      copts.network = network_link;
      copts.topology = fabric_topology;
      copts.mode = dist_mode;
      copts.staleness_bound = staleness < 0
                                  ? dist::kUnboundedStaleness
                                  : static_cast<uint32_t>(staleness);
      copts.sampler = opts.sampler;
      copts.mh_cycles = opts.mh_cycles;
      copts.pool = opts.pool;
      dist::ClusterTrainer trainer(corpus, cfg, copts);
      std::printf("%lld nodes x %zu %s | %s fabric, %s | %s mode\n",
                  static_cast<long long>(nodes), opts.gpus.size(),
                  opts.gpus[0].name.c_str(),
                  gpusim::FabricTopologyName(fabric_topology),
                  network_link.name.c_str(), dist::DistModeName(dist_mode));

      InstallShutdownHandler();
      bool interrupted = false;
      for (int i = 0; i < iters; ++i) {
        const auto st = trainer.Sweep();
        if (validate) trainer.Gather().Validate(corpus);
        if (!quiet && (i % 10 == 0 || i + 1 == iters)) {
          std::printf(
              "sweep %4u  %8.1f Mtok/s (sim)  net %7.2f MB  "
              "staleness %u  ll/token %.4f\n",
              st.sweep,
              st.sim_seconds > 0 ? static_cast<double>(corpus.num_tokens()) /
                                       st.sim_seconds / 1e6
                                 : 0.0,
              static_cast<double>(st.network_payload_bytes) / 1e6,
              st.max_staleness, trainer.LogLikelihoodPerToken());
        }
        if (metrics_sink.active()) {
          obs::JsonObject fields;
          fields.Add("sweep", static_cast<uint64_t>(st.sweep))
              .Add("sim_seconds", st.sim_seconds)
              .Add("sampling_s", st.sampling_s)
              .Add("sync_s", st.sync_s)
              .Add("network_payload_bytes", st.network_payload_bytes)
              .Add("network_wire_bytes", st.network_wire_bytes)
              .Add("max_staleness",
                   static_cast<uint64_t>(st.max_staleness))
              .Add("theta_nnz", st.theta_nnz);
          metrics_sink.WriteSnapshot("cluster_sweep", std::move(fields));
        }
        if (ShutdownRequested()) {
          interrupted = true;
          std::fprintf(stderr,
                       "signal %d: stopping after sweep %u (sweep "
                       "completed)\n",
                       ShutdownSignal(), trainer.sweep());
          break;
        }
      }
      if (!interrupted) {
        std::printf(
            "done: %d sweeps, %.3f simulated seconds, %.2f MB network "
            "payload, max staleness %u\n",
            iters, trainer.Now(),
            static_cast<double>(trainer.fabric().payload_bytes()) / 1e6,
            trainer.max_observed_staleness());
      }
      if (!interrupted && heldout_frac > 0) {
        const auto served = trainer.Gather();
        core::InferenceOptions io;
        io.pool = opts.pool;
        io.numa_replicate = opts.numa_replicate;
        const core::InferenceEngine engine(served, trainer.config(), io);
        std::printf("held-out document-completion perplexity: %.3f\n",
                    engine.DocumentCompletionPerplexity(heldout));
      }
      if (!interrupted && !out_path.empty()) {
        const auto model = trainer.Gather();
        model.Validate(corpus);
        core::SaveModelToFile(model, out_path);
        std::printf("model saved to %s\n", out_path.c_str());
      }
      if (metrics_sink.active()) {
        obs::JsonObject fields;
        fields.Add("iterations", static_cast<uint64_t>(iters))
            .Add("sim_seconds", trainer.Now())
            .Add("network_payload_bytes", trainer.fabric().payload_bytes())
            .Add("workers", static_cast<uint64_t>(workers))
            .Add("tokens", corpus.num_tokens());
        metrics_sink.WriteSnapshot("train_summary", std::move(fields));
        std::printf("metrics written to %s\n",
                    flags.GetString("metrics-out", "").c_str());
      }
      obs_support.Shutdown();
      return interrupted ? kInterruptedExitCode : 0;
    }

    core::CuldaTrainer trainer(corpus, cfg, opts);
    if (!trace_path.empty()) {
      for (size_t g = 0; g < trainer.group().size(); ++g) {
        trainer.group().device(g).set_record_trace(true);
      }
    }
    if (!resume.empty()) {
      // Falls back to `resume`.prev (with a warning) when the primary file
      // is missing or torn — a crash mid-checkpoint never strands a run.
      const std::string used = trainer.RestoreCheckpointFromFile(resume);
      std::printf("resumed from %s at iteration %u\n", used.c_str(),
                  trainer.iteration());
      if (validate) trainer.ValidateState();
    }
    std::printf("%zu x %s | M=%u (%s)\n", opts.gpus.size(),
                opts.gpus[0].name.c_str(), trainer.chunks_per_gpu(),
                trainer.chunks_per_gpu() == 1 ? "WorkSchedule1"
                                              : "WorkSchedule2");

    // Cooperative shutdown: the handler only sets a flag; we check it at
    // iteration boundaries so a sweep is never torn mid-update.
    InstallShutdownHandler();
    bool interrupted = false;
    double sim_total = 0;
    double wall_total = 0;
    for (int i = 0; i < iters; ++i) {
      const auto st = trainer.Step();
      if (validate) trainer.ValidateState();
      sim_total += st.sim_seconds;
      wall_total += st.wall_seconds;
      if (!quiet && (i % 10 == 0 || i + 1 == iters)) {
        std::printf(
            "iter %4u  %8.1f Mtok/s (sim)  %6.2f Mtok/s (wall)  "
            "sync %6.2f ms  xfer %6.2f ms  theta %6.2f ms  ll/token %.4f\n",
            st.iteration, st.tokens_per_sec / 1e6,
            st.wall_tokens_per_sec / 1e6, st.sync_s * 1e3,
            st.transfer_s * 1e3, st.update_theta_s * 1e3,
            trainer.LogLikelihoodPerToken());
      }
      if (metrics_sink.active()) {
        obs::JsonObject fields;
        fields.Add("iteration", static_cast<uint64_t>(st.iteration))
            .Add("sim_seconds", st.sim_seconds)
            .Add("wall_seconds", st.wall_seconds)
            .Add("tokens_per_sec", st.tokens_per_sec)
            .Add("wall_tokens_per_sec", st.wall_tokens_per_sec)
            .Add("sampling_s", st.sampling_s)
            .Add("update_theta_s", st.update_theta_s)
            .Add("update_phi_s", st.update_phi_s)
            .Add("sync_s", st.sync_s)
            .Add("transfer_s", st.transfer_s)
            .Add("theta_nnz", st.theta_nnz);
        metrics_sink.WriteSnapshot("train_iteration", std::move(fields));
      }
      if (ShutdownRequested()) {
        interrupted = true;
        std::fprintf(stderr,
                     "signal %d: stopping after iteration %u (sweep "
                     "completed)\n",
                     ShutdownSignal(), trainer.iteration());
        if (!ckpt_path.empty()) {
          trainer.SaveCheckpointToFile(ckpt_path);
          std::fprintf(stderr, "checkpoint written to %s\n",
                       ckpt_path.c_str());
        }
        break;
      }
      if (!ckpt_path.empty() && (i + 1) % ckpt_every == 0) {
        // Atomic write + rotation: the previous checkpoint survives as
        // `ckpt_path`.prev until the new one is fully on disk.
        trainer.SaveCheckpointToFile(ckpt_path);
      }
    }
    if (!interrupted) {
      std::printf(
          "done: %d iterations, %.3f simulated seconds, %.3f wall seconds "
          "(%zu workers, %.2f Mtok/s wall)\n",
          iters, sim_total, wall_total, workers,
          wall_total > 0 ? static_cast<double>(trainer.num_tokens()) *
                               iters / wall_total / 1e6
                         : 0.0);
    }

    if (!interrupted && heldout_frac > 0) {
      // The engine keeps a pointer into the gathered model, so it must
      // outlive the perplexity call below.
      const auto served = trainer.Gather();
      core::InferenceOptions io;
      io.pool = opts.pool;
      io.numa_replicate = opts.numa_replicate;
      const core::InferenceEngine engine(served, trainer.config(), io);
      std::printf("held-out document-completion perplexity: %.3f\n",
                  engine.DocumentCompletionPerplexity(heldout));
    }
    if (!interrupted && !out_path.empty()) {
      const auto model = trainer.Gather();
      model.Validate(corpus);
      core::SaveModelToFile(model, out_path);
      std::printf("model saved to %s\n", out_path.c_str());
    }

    if (metrics_sink.active()) {
      obs::JsonObject fields;
      fields.Add("iterations", static_cast<uint64_t>(iters))
          .Add("sim_seconds", sim_total)
          .Add("wall_seconds", wall_total)
          .Add("workers", static_cast<uint64_t>(workers))
          .Add("tokens", trainer.num_tokens());
      metrics_sink.WriteSnapshot("train_summary", std::move(fields));
      std::printf("metrics written to %s\n",
                  flags.GetString("metrics-out", "").c_str());
    }
    // The exporter stops after the summary snapshot so the exposed file
    // reflects the finished run.
    obs_support.Shutdown();
    if (!trace_path.empty()) {
      // Training merges the simulated device timeline with the host spans,
      // so it writes the trace itself instead of WriteHostTrace().
      std::ofstream trace_out(trace_path, std::ios::trunc);
      CULDA_CHECK_MSG(trace_out.good(),
                      "cannot open '" << trace_path << "' for writing");
      gpusim::WriteMergedChromeTrace(trainer.group(),
                                     obs::SpanTracer::Global(), trace_out);
      std::printf("trace written to %s\n", trace_path.c_str());
    }
    if (!profile_path.empty()) {
      std::ofstream profile_out(profile_path, std::ios::trunc);
      CULDA_CHECK_MSG(profile_out.good(),
                      "cannot open '" << profile_path << "' for writing");
      gpusim::WriteProfileJson(trainer.group(), profile_out);
      std::printf("profile written to %s\n", profile_path.c_str());
    }
    return interrupted ? kInterruptedExitCode : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Backstop for anything that escapes the validation layer (exit 3 so
    // scripts can tell an internal failure from a rejected input).
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 3;
  }
}
