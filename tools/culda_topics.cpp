// culda_topics — inspect a trained model.
//
//   culda_topics --model=model.bin [--vocab=vocab.txt] [--top=10]
//                [--topics=N] [--coherence-uci=docword.txt]
//
// Prints the largest topics with their top words (vocabulary strings when
// --vocab is given, ids otherwise), and optionally UMass coherence against a
// reference corpus. --log-level / --quiet work as in the other tools, and so
// do the shared observability flags (--metrics-out / --trace-out /
// --metrics-expose / --export-interval-ms, docs/observability.md): the tool
// times model load and coherence scoring, and writes a topics_summary
// snapshot on exit.
#include <cstdio>
#include <fstream>

#include "core/model_io.hpp"
#include "core/topics.hpp"
#include "corpus/uci_reader.hpp"
#include "corpus/vocabulary.hpp"
#include "obs/obs.hpp"
#include "obs/sink.hpp"
#include "util/cli.hpp"
#include "util/obs_cli.hpp"
#include "util/thread_pool.hpp"

using namespace culda;

namespace {

constexpr char kUsage[] =
    R"(usage: culda_topics --model=MODEL.bin [options]

Prints the largest topics with their top words (vocabulary strings when
--vocab is given, ids otherwise), and optionally UMass coherence against a
reference corpus.

  --model=PATH         trained model (required)
  --vocab=PATH         vocabulary file matching the model
  --top=N              words shown per topic (default 10)
  --topics=N           topics shown, largest first (default 20)
  --coherence-uci=PATH UCI corpus for UMass coherence
  --workers=N          threads fanning coherence topics out (default:
                       effective CPUs - 1 from the affinity mask; 0 =
                       sequential; the mean is bit-identical either way)
  --pin                pin workers to their CPUs (graceful fallback)
  --log-level=L        debug | info | warn | error | off;  --quiet = warn

Observability (docs/observability.md):
  --metrics-out=P           JSONL metrics (load/coherence timings + summary)
  --trace-out=P             host wall-clock spans as Chrome trace JSON
  --metrics-expose=P        Prometheus text exposition, atomically
                            rewritten by a background exporter
  --export-interval-ms=N    exporter period (default 1000)

Exit codes: 0 success, 1 input error, 2 CLI usage error, 3 internal error.
)";

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    if (flags.HelpRequested()) {
      CliFlags::PrintUsage(stdout, kUsage);
      return 0;
    }
    flags.ApplyLogFlags();

    // All flag reads precede the required---model check so a typo exits 2
    // (usage) instead of 1 (missing flag).
    const std::string model_path = flags.GetString("model", "");
    const std::string vocab_path = flags.GetString("vocab", "");
    const size_t top_n = static_cast<size_t>(flags.GetInt("top", 10));
    const size_t show =
        static_cast<size_t>(flags.GetInt("topics", 20));
    const std::string coherence_uci = flags.GetString("coherence-uci", "");
    const int64_t workers_flag = flags.GetInt("workers", 0);
    const bool workers_given = flags.Has("workers");
    const bool pin = flags.GetBool("pin", false);
    ObsToolSupport::RegisterFlags(flags);
    if (const int rc = flags.RejectUnknownFlags(kUsage)) return rc;
    CULDA_CHECK_MSG(workers_flag >= 0 && workers_flag <= 1024,
                    "--workers must be in [0, 1024], got " << workers_flag);

    CULDA_CHECK_MSG(!model_path.empty(), "--model is required");
    ObsToolSupport obs_support(flags);
    core::GatheredModel model;
    {
      CULDA_OBS_TIMED("topics.load");
      obs::ScopedSpan span("topics/load");
      model = core::LoadModelFromFile(model_path);
    }

    corpus::Vocabulary vocab;
    if (!vocab_path.empty()) {
      std::ifstream in(vocab_path);
      CULDA_CHECK_MSG(in.good(), "cannot open vocab " << vocab_path);
      vocab = corpus::Vocabulary::FromStream(in);
      CULDA_CHECK_MSG(vocab.size() == model.vocab_size,
                      "vocabulary size " << vocab.size()
                                         << " != model vocab "
                                         << model.vocab_size);
    }

    core::CuldaConfig cfg;
    cfg.num_topics = model.num_topics;

    corpus::Corpus reference;
    const bool with_coherence = !coherence_uci.empty();
    if (with_coherence) {
      reference = corpus::ReadUciBagOfWordsFile(coherence_uci);
    }

    // Flag absent → size from the effective CPU set (affinity-mask-honest,
    // unlike hardware_concurrency inside cpuset-restricted containers).
    const size_t workers = workers_given ? static_cast<size_t>(workers_flag)
                                         : DefaultWorkerCount();
    ThreadPoolOptions pool_options;
    pool_options.pin = pin;
    ThreadPool pool(workers, pool_options);

    std::printf("model: K=%u V=%u D=%llu, theta nnz=%zu\n\n",
                model.num_topics, model.vocab_size,
                static_cast<unsigned long long>(model.num_docs),
                model.theta.nnz());

    const auto sizes = core::TopicsBySize(model);
    for (size_t i = 0; i < std::min(show, sizes.size()); ++i) {
      const auto [k, nk] = sizes[i];
      if (nk == 0) break;
      std::printf("topic %4u  (%9lld tokens", k,
                  static_cast<long long>(nk));
      if (with_coherence) {
        std::printf(", coherence %.2f",
                    core::UMassCoherence(model, cfg, reference, k, top_n));
      }
      std::printf("):");
      for (const auto& tw : core::TopWords(model, cfg, k, top_n)) {
        if (vocab.empty()) {
          std::printf(" w%u(%.3f)", tw.word, tw.probability);
        } else {
          std::printf(" %s", vocab.WordOf(tw.word).c_str());
        }
      }
      std::printf("\n");
    }
    double average_coherence = 0;
    if (with_coherence) {
      CULDA_OBS_TIMED("topics.coherence");
      obs::ScopedSpan span("topics/coherence");
      average_coherence = core::AverageCoherence(
          model, cfg, reference, top_n, workers > 0 ? &pool : nullptr);
      std::printf("\naverage UMass coherence (top %zu words): %.3f\n", top_n,
                  average_coherence);
    }
    if (obs_support.sink().active()) {
      obs::JsonObject fields;
      fields.Add("topics_shown",
                 static_cast<uint64_t>(std::min(show, sizes.size())))
          .Add("num_topics", static_cast<uint64_t>(model.num_topics))
          .Add("vocab_size", static_cast<uint64_t>(model.vocab_size));
      if (with_coherence) fields.Add("average_coherence", average_coherence);
      obs_support.sink().WriteSnapshot("topics_summary", std::move(fields));
    }
    obs_support.Shutdown();
    obs_support.WriteHostTrace();
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 3;
  }
}
