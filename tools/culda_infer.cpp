// culda_infer — classify new documents with a trained model.
//
//   echo "text of a new document" | culda_infer --model=m.bin --vocab=v.txt
//   culda_infer --model=m.bin --heldout-uci=docword.txt   # perplexity
//
// With --vocab, each stdin line is tokenized (same pipeline as training) and
// its topic mixture printed. With --heldout-uci, document-completion
// perplexity over the held-out corpus is reported instead.
//
// Serving knobs (docs/serving.md):
//   --workers=N       host threads fanning documents out (0 = sequential);
//                     results are bit-identical at any worker count
//   --batch=N         stdin lines grouped per InferBatch call (default 256)
//   --sampler=MODE    sparse (default) | dense | alias-mh. sparse and dense
//                     are the exact samplers (identical output); alias-mh is
//                     the O(1)-per-token MH tier (docs/samplers.md) —
//                     statistically, not bitwise, equivalent
//   --mh-cycles=N     alias-mh only: MH proposal pairs per token per sweep
//                     (default 1)
//   --validate        check the loaded model's structural invariants
//                     (src/validate) before serving; exits 1 with the
//                     violated invariant's name on corruption. Works in
//                     every sampler mode (it checks the model, which is
//                     sampler-independent)
//
// Observability (docs/observability.md):
//   --log-level=L     debug | info | warn | error | off (default info);
//                     --quiet is shorthand for warn
//   --metrics-out=P   JSONL metrics: one snapshot per batch (latency
//                     percentiles, tokens/s) + a final summary
//   --trace-out=P     host wall-clock spans as Chrome trace JSON
//   --metrics-expose=P / --export-interval-ms=N   live Prometheus text
//                     exposition via the shared ObsToolSupport helper
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/inference.hpp"
#include "core/model_io.hpp"
#include "core/sampler/sampler.hpp"
#include "corpus/text_pipeline.hpp"
#include "corpus/uci_reader.hpp"
#include "corpus/vocabulary.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/obs_cli.hpp"
#include "util/signal.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"
#include "validate/invariants.hpp"

using namespace culda;

namespace {

constexpr char kUsage[] =
    R"(usage: culda_infer --model=MODEL.bin (--vocab=V.txt | --heldout-uci=PATH)

With --vocab, each stdin line is tokenized (same pipeline as training) and
its topic mixture printed. With --heldout-uci, document-completion
perplexity over the held-out corpus is reported instead.

Serving knobs (docs/serving.md):
  --iters=N         fold-in sweeps per document (default 30)
  --alpha=X         document prior (default 50/K)
  --beta=X          topic prior (default 0.01)
  --workers=N       host threads fanning documents out (default: effective
                    CPUs - 1 from the affinity mask; 0 = sequential);
                    results are bit-identical at any worker count
  --pin             pin workers to their CPUs (graceful unpinned fallback)
  --numa-replicate  per-socket replicas of the read-mostly tables
                    (docs/parallelism.md; no-op single-socket; bit-identical)
  --batch=N         stdin lines grouped per InferBatch call (default 256)
  --sampler=MODE    sparse (default) | dense | alias-mh (docs/samplers.md)
  --mh-cycles=N     alias-mh only: MH proposal pairs per token per sweep
  --validate        check the loaded model's structural invariants before
                    serving; exits 1 on corruption

Observability (docs/observability.md):
  --log-level=L     debug | info | warn | error | off;  --quiet = warn
  --metrics-out=P   JSONL metrics per batch + summary
  --trace-out=P     host wall-clock spans as Chrome trace JSON
  --metrics-expose=P        Prometheus text exposition, atomically
                            rewritten by a background exporter
  --export-interval-ms=N    exporter period (default 1000)

Exit codes: 0 success, 1 input error, 2 CLI usage error, 3 internal error,
4 interrupted by SIGINT/SIGTERM after flushing the current batch.
)";

struct PendingDoc {
  std::vector<uint32_t> ids;
  size_t oov = 0;
};

void PrintBatch(const core::InferenceEngine& engine,
                std::vector<PendingDoc>& batch, uint32_t iters,
                obs::JsonlSink& metrics_sink) {
  std::vector<std::vector<uint32_t>> docs;
  docs.reserve(batch.size());
  for (auto& d : batch) docs.push_back(std::move(d.ids));
  // Every line keeps the single-document default seed, so the output is
  // independent of how lines happen to group into batches.
  const std::vector<uint64_t> seeds(docs.size(), 7);
  const Stopwatch watch;
  const auto results = engine.InferBatch(docs, iters, seeds);
  if (metrics_sink.active()) {
    const double seconds = watch.Seconds();
    uint64_t tokens = 0;
    for (const auto& r : results) tokens += r.tokens;
    obs::JsonObject fields;
    fields.Add("docs", static_cast<uint64_t>(docs.size()))
        .Add("tokens", tokens)
        .Add("seconds", seconds)
        .Add("tokens_per_sec", seconds > 0 ? tokens / seconds : 0.0);
    metrics_sink.WriteSnapshot("infer_batch", std::move(fields));
  }
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("%zu tokens (%zu OOV):", docs[i].size(), batch[i].oov);
    int shown = 0;
    for (const auto& dt : results[i].mixture) {
      if (dt.proportion < 0.05 || shown >= 5) break;
      std::printf(" topic%u=%.2f", dt.topic, dt.proportion);
      ++shown;
    }
    std::printf("\n");
  }
  batch.clear();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    if (flags.HelpRequested()) {
      CliFlags::PrintUsage(stdout, kUsage);
      return 0;
    }
    flags.ApplyLogFlags();

    // Read every flag before any semantic check, so `culda_infer --bogus`
    // is reported as a usage error (exit 2) rather than tripping the
    // missing---model check first (exit 1).
    const std::string model_path = flags.GetString("model", "");
    const bool validate = flags.GetBool("validate", false);
    const double alpha = flags.GetDouble("alpha", -1.0);
    const double beta = flags.GetDouble("beta", 0.01);
    const uint32_t iters =
        static_cast<uint32_t>(flags.GetInt("iters", 30));
    const int64_t workers_flag = flags.GetInt("workers", 0);
    const bool workers_given = flags.Has("workers");
    const bool pin = flags.GetBool("pin", false);
    const bool numa_replicate = flags.GetBool("numa-replicate", false);
    const int64_t batch_size = flags.GetInt("batch", 256);
    const std::string sampler_name = flags.GetString("sampler", "sparse");
    const int64_t mh_cycles = flags.GetInt("mh-cycles", 1);
    const std::string heldout = flags.GetString("heldout-uci", "");
    const std::string vocab_path = flags.GetString("vocab", "");
    ObsToolSupport::RegisterFlags(flags);
    if (const int rc = flags.RejectUnknownFlags(kUsage)) return rc;

    CULDA_CHECK_MSG(!model_path.empty(), "--model is required");
    CULDA_CHECK_MSG(workers_flag >= 0 && workers_flag <= 1024,
                    "--workers must be in [0, 1024], got " << workers_flag);
    CULDA_CHECK_MSG(batch_size >= 1,
                    "--batch must be >= 1, got " << batch_size);
    CULDA_CHECK_MSG(mh_cycles >= 1 && mh_cycles <= 64,
                    "--mh-cycles must be in [1, 64], got " << mh_cycles);

    const core::GatheredModel model = core::LoadModelFromFile(model_path);
    if (validate) {
      // Beyond the container's CRC: a model that round-tripped intact can
      // still have been written from corrupted training state.
      validate::ValidateServedModel(model);
      std::printf("model invariants OK (%u topics, %u words)\n",
                  model.num_topics, model.vocab_size);
    }

    core::CuldaConfig cfg;
    cfg.num_topics = model.num_topics;
    cfg.alpha = alpha;
    cfg.beta = beta;

    // Flag absent → size from the effective CPU set (affinity-mask-honest,
    // unlike hardware_concurrency inside cpuset-restricted containers).
    const size_t workers = workers_given ? static_cast<size_t>(workers_flag)
                                         : DefaultWorkerCount();
    ThreadPoolOptions pool_options;
    pool_options.pin = pin;
    ThreadPool pool(workers, pool_options);
    core::InferenceOptions options;
    options.sampler = core::ParseInferSampler(sampler_name);
    options.mh_cycles = static_cast<uint32_t>(mh_cycles);
    options.numa_replicate = numa_replicate;
    if (workers > 0) options.pool = &pool;
    const core::InferenceEngine engine(model, cfg, options);

    // Serving has no simulated devices, so the trace is host-spans only.
    ObsToolSupport obs_support(flags);
    obs::JsonlSink& metrics_sink = obs_support.sink();

    if (!heldout.empty()) {
      const corpus::Corpus ho = corpus::ReadUciBagOfWordsFile(heldout);
      const Stopwatch watch;
      const double perplexity = engine.DocumentCompletionPerplexity(ho, iters);
      std::printf("document-completion perplexity: %.3f\n", perplexity);
      if (metrics_sink.active()) {
        obs::JsonObject fields;
        fields.Add("docs", static_cast<uint64_t>(ho.num_docs()))
            .Add("seconds", watch.Seconds())
            .Add("perplexity", perplexity);
        metrics_sink.WriteSnapshot("infer_perplexity", std::move(fields));
      }
      obs_support.Shutdown();
      obs_support.WriteHostTrace();
      return 0;
    }

    CULDA_CHECK_MSG(!vocab_path.empty(),
                    "--vocab is required for text inference");
    std::ifstream vin(vocab_path);
    CULDA_CHECK_MSG(vin.good(), "cannot open vocab " << vocab_path);
    const corpus::Vocabulary vocab = corpus::Vocabulary::FromStream(vin);

    corpus::TextPipelineOptions popts;
    popts.stopwords =
        corpus::TextPipelineOptions::DefaultEnglishStopwords();
    // SIGINT/SIGTERM: finish the current batch boundary, flush what is
    // pending, and exit 4 — partial output is never torn mid-line.
    InstallShutdownHandler();
    bool interrupted = false;
    std::string line;
    std::vector<PendingDoc> batch;
    while (!(interrupted = ShutdownRequested()) &&
           std::getline(std::cin, line)) {
      PendingDoc doc;
      for (const auto& tok : corpus::TextPipeline::Tokenize(line, popts)) {
        const uint32_t id = vocab.Find(tok);
        if (id == corpus::Vocabulary::kNotFound || id >= model.vocab_size) {
          ++doc.oov;
        } else {
          doc.ids.push_back(id);
        }
      }
      batch.push_back(std::move(doc));
      if (batch.size() >= static_cast<size_t>(batch_size)) {
        PrintBatch(engine, batch, iters, metrics_sink);
      }
    }
    if (!batch.empty()) PrintBatch(engine, batch, iters, metrics_sink);
    if (interrupted) {
      std::fprintf(stderr, "signal %d: flushed pending batch, exiting\n",
                   ShutdownSignal());
    }
    if (metrics_sink.active()) {
      metrics_sink.WriteSnapshot("infer_summary", obs::JsonObject());
    }
    obs_support.Shutdown();
    obs_support.WriteHostTrace();
    return interrupted ? kInterruptedExitCode : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 3;
  }
}
