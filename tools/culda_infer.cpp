// culda_infer — classify new documents with a trained model.
//
//   echo "text of a new document" | culda_infer --model=m.bin --vocab=v.txt
//   culda_infer --model=m.bin --heldout-uci=docword.txt   # perplexity
//
// With --vocab, each stdin line is tokenized (same pipeline as training) and
// its topic mixture printed. With --heldout-uci, document-completion
// perplexity over the held-out corpus is reported instead.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/inference.hpp"
#include "core/model_io.hpp"
#include "corpus/text_pipeline.hpp"
#include "corpus/uci_reader.hpp"
#include "corpus/vocabulary.hpp"
#include "util/cli.hpp"

using namespace culda;

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    const std::string model_path = flags.GetString("model", "");
    CULDA_CHECK_MSG(!model_path.empty(), "--model is required");
    const core::GatheredModel model = core::LoadModelFromFile(model_path);

    core::CuldaConfig cfg;
    cfg.num_topics = model.num_topics;
    cfg.alpha = flags.GetDouble("alpha", -1.0);
    cfg.beta = flags.GetDouble("beta", 0.01);
    const uint32_t iters =
        static_cast<uint32_t>(flags.GetInt("iters", 30));
    const core::InferenceEngine engine(model, cfg);

    const std::string heldout = flags.GetString("heldout-uci", "");
    const std::string vocab_path = flags.GetString("vocab", "");

    const auto unused = flags.UnusedFlags();
    if (!unused.empty()) {
      std::fprintf(stderr, "unknown flag --%s\n", unused.front().c_str());
      return 2;
    }

    if (!heldout.empty()) {
      const corpus::Corpus ho = corpus::ReadUciBagOfWordsFile(heldout);
      std::printf("document-completion perplexity: %.3f\n",
                  engine.DocumentCompletionPerplexity(ho, iters));
      return 0;
    }

    CULDA_CHECK_MSG(!vocab_path.empty(),
                    "--vocab is required for text inference");
    std::ifstream vin(vocab_path);
    CULDA_CHECK_MSG(vin.good(), "cannot open vocab " << vocab_path);
    const corpus::Vocabulary vocab = corpus::Vocabulary::FromStream(vin);

    corpus::TextPipelineOptions popts;
    popts.stopwords =
        corpus::TextPipelineOptions::DefaultEnglishStopwords();
    std::string line;
    while (std::getline(std::cin, line)) {
      std::vector<uint32_t> ids;
      size_t oov = 0;
      for (const auto& tok : corpus::TextPipeline::Tokenize(line, popts)) {
        const uint32_t id = vocab.Find(tok);
        if (id == corpus::Vocabulary::kNotFound || id >= model.vocab_size) {
          ++oov;
        } else {
          ids.push_back(id);
        }
      }
      const auto result = engine.InferDocument(ids, iters);
      std::printf("%zu tokens (%zu OOV):", ids.size(), oov);
      int shown = 0;
      for (const auto& dt : result.mixture) {
        if (dt.proportion < 0.05 || shown >= 5) break;
        std::printf(" topic%u=%.2f", dt.topic, dt.proportion);
        ++shown;
      }
      std::printf("\n");
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 3;
  }
}
