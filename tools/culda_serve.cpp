// culda_serve — long-running inference daemon with request coalescing and
// RCU-style model hot-swap (docs/serving.md, "Daemon").
//
//   culda_serve --model=m.bin < requests.jsonl > responses.jsonl
//   culda_serve --model=m.bin --socket=/tmp/culda.sock
//   culda_serve --model=m.bin --oneshot < requests.jsonl   # reference path
//
// Requests are JSON Lines ({"id":"r1","words":[3,17],"seed":7}); responses
// come back one line each in completion order, tagged with the generation
// of the model snapshot that served them. {"op":"reload"} re-reads --model
// and hot-swaps it without blocking in-flight requests; {"op":"stats"}
// returns a metrics snapshot; {"op":"drain"} (or SIGINT/SIGTERM, or EOF on
// stdin) begins a graceful drain: stop admitting, answer everything
// admitted, flush metrics, exit 0.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/model_io.hpp"
#include "core/sampler/sampler.hpp"
#include "core/snapshot.hpp"
#include "obs/sink.hpp"
#include "serve/frontend.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/obs_cli.hpp"
#include "util/signal.hpp"
#include "util/thread_pool.hpp"
#include "validate/invariants.hpp"

using namespace culda;

namespace {

constexpr char kUsage[] =
    R"(usage: culda_serve --model=MODEL.bin [options] < requests.jsonl

Long-running LDA inference daemon: coalesces concurrent JSONL requests
into latency-budgeted batches and hot-swaps model snapshots RCU-style.
See docs/serving.md ("Daemon") for the wire protocol and semantics.

Input/transport:
  --model=PATH       trained model (required); {"op":"reload"} re-reads it
  --socket=PATH      listen on a Unix domain socket for concurrent clients
                     instead of serving stdin/stdout
  --oneshot          no daemon: read every request from stdin, run them
                     directly through InferBatch in input order, respond,
                     and exit. The bit-identity reference for the daemon
                     path (same snapshot + seed => same bytes).

Batching / admission control:
  --max-batch=N      flush a batch at N requests (default 64)
  --max-wait-ms=X    ...or when the oldest pending request has waited X ms
                     (default 5), whichever comes first
  --max-queue=N      bounded queue; beyond it requests are shed with an
                     immediate {"error":"shed"} response (default 1024)

Inference:
  --iters=N          fold-in sweeps per request (default 20)
  --sampler=MODE     sparse (default) | dense | alias-mh (docs/samplers.md)
  --mh-cycles=N      alias-mh only: MH proposal pairs per token per sweep
  --workers=N        threads fanning one batch's documents out (default:
                     effective CPUs - 1 from the affinity mask; 0 = inline)
  --pin              pin workers to their CPUs (graceful unpinned fallback)
  --numa-replicate   per-socket replicas of the read-mostly serving tables,
                     rebuilt with every generation (docs/parallelism.md;
                     no-op single-socket; responses stay bit-identical)
  --alpha=X          document prior (default 50/K)
  --beta=X           topic prior (default 0.01)
  --validate         check model invariants at load/reload (exit 1 on
                     corruption at startup; reload answers reload_failed)

Observability (docs/observability.md):
  --metrics-out=PATH JSONL metrics; serve.request.latency, serve.batch.size,
                     serve.queue.wait, serve.shed.count et al., plus
                     per-endpoint series like serve.request.latency{op=infer}
  --trace-out=PATH   host spans as Chrome trace JSON; each request's
                     parse/queue/infer/respond spans share a trace id
                     (clients may tag requests with a "trace" field)
  --metrics-expose=P Prometheus text-exposition file, atomically replaced
                     every --export-interval-ms while the daemon runs
  --export-interval-ms=N  live exporter period (default 1000)
  --slow-request-ms=X     warn-log requests slower end-to-end than X ms
                     (default 0 = off); counted in serve.slow_requests
  --log-level=L      debug | info | warn | error | off;  --quiet = warn

Exit codes: 0 served and drained cleanly (including SIGINT/SIGTERM drain),
1 input/model error, 2 CLI usage error, 3 internal error.
)";

/// The oneshot reference path: parse every line first, then answer in
/// *input order* — inference requests run through direct InferBatch calls
/// against the current snapshot, control ops apply at their position in
/// the stream (a reload mid-file splits the batch exactly like the
/// daemon's swap boundary would).
int RunOneshot(const serve::ReloadFn& reload, core::SnapshotPtr snapshot,
               uint32_t iterations) {
  std::vector<serve::ParsedLine> lines;
  std::string line;
  while (std::getline(std::cin, line)) {
    serve::ParsedLine parsed = serve::ParseRequestLine(line);
    if (parsed.kind == serve::LineKind::kError && parsed.error.empty()) {
      continue;  // blank
    }
    lines.push_back(std::move(parsed));
  }

  std::vector<size_t> pending;  ///< indices of unanswered infer lines
  const auto flush = [&] {
    if (pending.empty()) return;
    std::vector<std::vector<uint32_t>> docs;
    std::vector<uint64_t> seeds;
    std::vector<size_t> live;
    for (const size_t i : pending) {
      const auto& req = lines[i].request;
      bool in_vocab = true;
      for (const uint32_t w : req.words) {
        if (w >= snapshot->model().vocab_size) {
          in_vocab = false;
          serve::ServeResponse resp = serve::MakeErrorResponse(
              req.id, "bad_request",
              "word id " + std::to_string(w) +
                  " is out of vocabulary (V=" +
                  std::to_string(snapshot->model().vocab_size) + ")");
          resp.trace = req.trace;
          std::printf("%s\n", serve::FormatResponse(resp).c_str());
          break;
        }
      }
      if (!in_vocab) continue;
      live.push_back(i);
      docs.push_back(req.words);
      seeds.push_back(req.seed);
    }
    if (!docs.empty()) {
      const auto results =
          snapshot->engine().InferBatch(docs, iterations, seeds);
      for (size_t j = 0; j < live.size(); ++j) {
        serve::ServeResponse response;
        response.id = lines[live[j]].request.id;
        response.trace = lines[live[j]].request.trace;
        response.ok = true;
        response.generation = snapshot->generation();
        response.result = results[j];
        std::printf("%s\n", serve::FormatResponse(response).c_str());
      }
    }
    pending.clear();
  };

  for (size_t i = 0; i < lines.size(); ++i) {
    auto& parsed = lines[i];
    if (parsed.kind == serve::LineKind::kError) {
      std::printf("%s\n",
                  serve::FormatResponse(serve::MakeErrorResponse(
                      parsed.id, "bad_request", parsed.error))
                      .c_str());
      continue;
    }
    if (parsed.kind == serve::LineKind::kInfer) {
      pending.push_back(i);
      continue;
    }
    // Control op: answer everything that came before it first.
    flush();
    if (parsed.op == "drain") {
      std::printf("%s\n", serve::FormatControlAck(parsed.id, "drain",
                                                  snapshot->generation())
                              .c_str());
      return 0;
    }
    if (parsed.op == "stats") {
      // Same payload shape as ServeDaemon::StatsPayloadJson — the oneshot
      // path has no queue, so pending/draining are trivially 0/false.
      obs::JsonObject payload;
      payload.Add("schema", obs::kMetricsSchema)
          .Add("pending", static_cast<uint64_t>(0))
          .Add("draining", false)
          .Add("slow_request_s", 0.0);
      payload.AddRaw("metrics", obs::Metrics().SnapshotJson());
      std::printf("%s\n", serve::FormatControlAck(
                              parsed.id, "stats", snapshot->generation(),
                              payload.str())
                              .c_str());
      continue;
    }
    try {
      snapshot = reload();
      std::printf("%s\n", serve::FormatControlAck(parsed.id, "reload",
                                                  snapshot->generation())
                              .c_str());
    } catch (const std::exception& e) {
      std::printf("%s\n",
                  serve::FormatResponse(serve::MakeErrorResponse(
                      parsed.id, "reload_failed", e.what()))
                      .c_str());
    }
  }
  flush();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags(argc, argv);
    if (flags.HelpRequested()) {
      CliFlags::PrintUsage(stdout, kUsage);
      return 0;
    }
    flags.ApplyLogFlags();

    // Read every flag before rejecting strangers, so a typo is reported as
    // a usage error (exit 2) rather than shadowed by a missing-flag check.
    const std::string model_path = flags.GetString("model", "");
    const std::string socket_path = flags.GetString("socket", "");
    const bool oneshot = flags.GetBool("oneshot", false);
    const int64_t iters = flags.GetInt("iters", 20);
    const std::string sampler_name = flags.GetString("sampler", "sparse");
    const int64_t mh_cycles = flags.GetInt("mh-cycles", 1);
    const int64_t workers_flag = flags.GetInt("workers", 0);
    const bool workers_given = flags.Has("workers");
    const bool pin = flags.GetBool("pin", false);
    const bool numa_replicate = flags.GetBool("numa-replicate", false);
    const int64_t max_batch = flags.GetInt("max-batch", 64);
    const double max_wait_ms = flags.GetDouble("max-wait-ms", 5.0);
    const int64_t max_queue = flags.GetInt("max-queue", 1024);
    const double alpha = flags.GetDouble("alpha", -1.0);
    const double beta = flags.GetDouble("beta", 0.01);
    const bool validate = flags.GetBool("validate", false);
    const double slow_request_ms = flags.GetDouble("slow-request-ms", 0.0);
    ObsToolSupport::RegisterFlags(flags);
    if (const int rc = flags.RejectUnknownFlags(kUsage)) return rc;

    CULDA_CHECK_MSG(!model_path.empty(), "--model is required");
    CULDA_CHECK_MSG(iters >= 1 && iters <= 10000,
                    "--iters must be in [1, 10000], got " << iters);
    CULDA_CHECK_MSG(mh_cycles >= 1 && mh_cycles <= 64,
                    "--mh-cycles must be in [1, 64], got " << mh_cycles);
    CULDA_CHECK_MSG(workers_flag >= 0 && workers_flag <= 1024,
                    "--workers must be in [0, 1024], got " << workers_flag);
    CULDA_CHECK_MSG(max_batch >= 1 && max_batch <= 65536,
                    "--max-batch must be in [1, 65536], got " << max_batch);
    CULDA_CHECK_MSG(max_wait_ms >= 0 && max_wait_ms <= 60000,
                    "--max-wait-ms must be in [0, 60000], got "
                        << max_wait_ms);
    CULDA_CHECK_MSG(max_queue >= 1 && max_queue <= (1 << 20),
                    "--max-queue must be in [1, 2^20], got " << max_queue);
    CULDA_CHECK_MSG(!(oneshot && !socket_path.empty()),
                    "--oneshot reads stdin; it cannot combine with --socket");
    CULDA_CHECK_MSG(slow_request_ms >= 0,
                    "--slow-request-ms must be >= 0, got " << slow_request_ms);

    // Sink, tracer, live exporter, flight recorder + fatal-dump handler —
    // the whole shared observability surface (util/obs_cli.hpp).
    ObsToolSupport obs_support(flags);
    obs::JsonlSink& metrics_sink = obs_support.sink();
    // The sampler mode as a labeled info gauge, so a scrape can tell which
    // tier this daemon runs without parsing logs (dynamic label value —
    // registered directly, not through the call-site-cached macros).
    if (obs::MetricsEnabled()) {
      obs::Metrics().GetGauge("serve.info", "sampler", sampler_name).Set(1.0);
    }

    // Flag absent → size from the effective CPU set (affinity-mask-honest,
    // unlike hardware_concurrency inside cpuset-restricted containers).
    const size_t workers = workers_given ? static_cast<size_t>(workers_flag)
                                         : DefaultWorkerCount();
    ThreadPoolOptions pool_options;
    pool_options.pin = pin;
    ThreadPool pool(workers, pool_options);
    core::InferenceOptions engine_options;
    engine_options.sampler = core::ParseInferSampler(sampler_name);
    engine_options.mh_cycles = static_cast<uint32_t>(mh_cycles);
    engine_options.numa_replicate = numa_replicate;
    if (workers > 0) engine_options.pool = &pool;

    // Each (re)load gets the next generation number; "reload" publishes
    // the result RCU-style, so in-flight batches finish on the snapshot
    // they pinned while new batches pick this one up.
    uint64_t next_generation = 0;
    const serve::ReloadFn load = [&]() -> core::SnapshotPtr {
      core::GatheredModel model = core::LoadModelFromFile(model_path);
      if (validate) validate::ValidateServedModel(model);
      core::CuldaConfig cfg;
      cfg.num_topics = model.num_topics;
      cfg.alpha = alpha;
      cfg.beta = beta;
      return core::ModelSnapshot::FromModel(std::move(model), cfg,
                                            engine_options,
                                            ++next_generation);
    };
    core::SnapshotPtr initial = load();
    CULDA_LOG(Info) << "serving model " << model_path << " (K="
                    << initial->model().num_topics << ", V="
                    << initial->model().vocab_size << ", generation "
                    << initial->generation() << ")";

    if (oneshot) {
      const int rc =
          RunOneshot(load, std::move(initial), static_cast<uint32_t>(iters));
      obs_support.WriteHostTrace();
      return rc;
    }

    // Daemon mode: cooperative shutdown (drain, don't drop) and no
    // SIGPIPE death when a socket client disappears mid-response.
    InstallShutdownHandler();
#ifndef _WIN32
    std::signal(SIGPIPE, SIG_IGN);
#endif

    serve::ServeDaemonOptions daemon_options;
    daemon_options.batch.max_batch = static_cast<size_t>(max_batch);
    daemon_options.batch.max_wait_ms = max_wait_ms;
    daemon_options.batch.max_queue = static_cast<size_t>(max_queue);
    daemon_options.iterations = static_cast<uint32_t>(iters);
    daemon_options.pool = engine_options.pool;
    daemon_options.slow_request_s = slow_request_ms / 1000.0;
    serve::ServeDaemon daemon(daemon_options, std::move(initial));

    serve::FrontendResult front;
    if (!socket_path.empty()) {
      serve::SocketFrontend listener(daemon, socket_path, load);
      CULDA_LOG(Info) << "listening on " << socket_path;
      front = listener.Run();
    } else {
      front = serve::RunLineFrontend(daemon, /*in_fd=*/0, /*out_fd=*/1,
                                     load);
    }

    // Graceful exit on EOF, drain op, or signal: answer everything
    // admitted, then flush metrics. A signalled drain is still clean (0).
    const size_t backlog = daemon.pending();
    daemon.Drain();
    if (ShutdownRequested()) {
      CULDA_LOG(Info) << "signal " << ShutdownSignal() << ": drained "
                      << backlog << " queued request(s) before exit";
    }
    if (metrics_sink.active()) {
      obs::JsonObject fields;
      fields.Add("lines", front.lines)
          .Add("drain_requested", front.drain_requested)
          .Add("signalled", ShutdownRequested());
      metrics_sink.WriteSnapshot("serve_summary", std::move(fields));
    }
    // Shutdown ordering: the daemon drained above, the summary snapshot is
    // written — stop the exporter last so its final export (and the
    // exposed Prometheus file) reflects the fully-drained state, then dump
    // the host trace.
    obs_support.Shutdown();
    obs_support.WriteHostTrace();
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 3;
  }
}
