#!/usr/bin/env sh
# End-to-end smoke for the serving daemon (docs/serving.md "Daemon"):
#
#   1. train a tiny model;
#   2. run the same request stream (with a mid-stream {"op":"reload"}
#      hot-swap) through `culda_serve --oneshot` (direct InferBatch, the
#      reference) and through the real coalescing daemon;
#   3. require the responses to be byte-identical after sorting by id and
#      normalizing the generation tag (reload re-reads the same file, so
#      only the generation number may differ — a request that crosses the
#      swap boundary must still produce identical bytes);
#   4. require the swap to have actually happened (a generation-2 ack) and
#      the daemon to have genuinely coalesced (batches < requests);
#   5. require SIGTERM to drain gracefully: every admitted request is
#      answered and the exit code is 0.
#
# Usage: serve_smoke.sh <build-dir-with-tools>
#
# SERVE_EXTRA_FLAGS, when set, is appended (word-split) to every
# culda_serve invocation — daemon, --oneshot reference, and drain — so CI
# can re-run the whole bit-identity gate with e.g.
# "--pin --numa-replicate --workers=2" forced on (docs/parallelism.md).
set -eu

bindir="$1"
extra=${SERVE_EXTRA_FLAGS:-}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fail() {
  echo "SMOKE FAIL: $1" >&2
  exit 1
}

echo "== training tiny model"
"$bindir/culda_train" --synthetic=nytimes --scale=0.0005 --topics=16 \
  --iters=5 --seed=7 --out="$work/model.bin" --quiet \
  || fail "training exited $?"

echo "== generating request stream (40 requests + mid-stream reload)"
# r05 carries a client trace id; both paths must echo it byte-identically.
i=0
while [ $i -lt 40 ]; do
  if [ $i -eq 20 ]; then
    printf '{"op":"reload","id":"swap"}\n'
  fi
  if [ $i -eq 5 ]; then
    printf '{"id":"r%02d","words":[%d,%d,%d],"seed":%d,"trace":"t05"}\n' \
      "$i" "$((i % 90))" "$(((i * 7 + 3) % 90))" "$((i % 13))" "$((i + 1))"
  else
    printf '{"id":"r%02d","words":[%d,%d,%d],"seed":%d}\n' \
      "$i" "$((i % 90))" "$(((i * 7 + 3) % 90))" "$((i % 13))" "$((i + 1))"
  fi
  i=$((i + 1))
done > "$work/requests.jsonl"

# The generation differs between pre- and post-swap responses (and the
# daemon may serve a queued pre-swap request from the post-swap snapshot);
# since reload re-reads the same model file the payload must be identical
# either way, so the tag is normalized out before the diff.
normalize() {
  sed 's/"generation":[0-9]*/"generation":G/' "$1" | sort
}

echo "== reference run (--oneshot, direct InferBatch)"
# shellcheck disable=SC2086  # $extra is intentionally word-split
"$bindir/culda_serve" --model="$work/model.bin" --iters=10 --oneshot \
  --quiet $extra < "$work/requests.jsonl" > "$work/oneshot.out" \
  || fail "oneshot run exited $?"

echo "== daemon run (coalescing + hot swap + live exposition)"
# --metrics-out enables the registry, so the {"op":"stats"} payload carries
# the serve.* counters the coalescing check below reads; --metrics-expose
# has the background exporter publish a Prometheus file alongside. The
# sleep lets the queued infer batches complete before the stats op is
# admitted, so the live payload deterministically carries the populated
# per-endpoint latency series (the exit-time serve_summary re-checks it
# race-free regardless).
{ cat "$work/requests.jsonl"; sleep 1; printf '{"op":"stats","id":"st"}\n'; } |
  "$bindir/culda_serve" --model="$work/model.bin" --iters=10 \
    --max-batch=8 --max-wait-ms=50 --metrics-out="$work/metrics.jsonl" \
    --metrics-expose="$work/expose.prom" --export-interval-ms=100 \
    --quiet $extra > "$work/daemon.out" \
  || fail "daemon run exited $?"

grep -v '"id":"st"' "$work/daemon.out" > "$work/daemon.responses"
normalize "$work/oneshot.out" > "$work/oneshot.sorted"
normalize "$work/daemon.responses" > "$work/daemon.sorted"
diff -u "$work/oneshot.sorted" "$work/daemon.sorted" \
  || fail "daemon responses are not bit-identical to direct InferBatch"

grep -q '"id":"swap","ok":true,"op":"reload","generation":2' \
  "$work/daemon.out" || fail "hot swap to generation 2 never acknowledged"

# The traced request's client trace id is echoed on its response line, on
# both paths, identically (it is inside the normalized diff above too).
grep -q '"id":"r05","trace":"t05","ok":true' "$work/daemon.out" \
  || fail "daemon did not echo the client trace id"
grep -q '"id":"r05","trace":"t05","ok":true' "$work/oneshot.out" \
  || fail "oneshot did not echo the client trace id"

# The {"op":"stats"} ack must carry a live registry payload...
grep -q '"id":"st","ok":true,"op":"stats".*"payload":{.*"serve\.requests"' \
  "$work/daemon.out" || fail "stats ack lacks a metrics payload"
# ...including the per-endpoint latency histogram with its percentiles.
grep -q '"serve\.request\.latency{op=infer}":{"type":"histogram".*"p99"' \
  "$work/daemon.out" || fail "stats payload lacks per-endpoint histogram"

# The exposed Prometheus file must be a complete, well-formed exposition:
# the exporter's final post-drain export leaves # TYPE lines, cumulative
# histogram buckets, and the # EOF completeness marker.
[ -f "$work/expose.prom" ] || fail "exposition file was never written"
grep -q '^# TYPE culda_serve_requests counter$' "$work/expose.prom" \
  || fail "exposition lacks a # TYPE line for serve.requests"
grep -q '^culda_serve_request_latency_bucket{op="infer",le="+Inf"} ' \
  "$work/expose.prom" || fail "exposition lacks labeled histogram buckets"
tail -n 1 "$work/expose.prom" | grep -q '^# EOF$' \
  || fail "exposition file is missing the trailing # EOF marker"
[ -f "$work/expose.prom.tmp" ] && fail "torn exposition temp file left behind"

# ...but the coalescing proof reads the exit-time summary (written after
# the drain, so every batch is counted — the mid-stream stats ack races
# with the dispatcher): strictly fewer batches than requests (40 requests
# at max-batch 8 / 50 ms budget must coalesce).
summary=$(grep '"kind":"serve_summary"' "$work/metrics.jsonl") \
  || fail "serve_summary line missing from metrics.jsonl"
batches=$(printf '%s' "$summary" |
  sed -n 's/.*"serve\.batches":{"type":"counter","value":\([0-9]*\).*/\1/p')
requests=$(printf '%s' "$summary" |
  sed -n 's/.*"serve\.requests":{"type":"counter","value":\([0-9]*\).*/\1/p')
[ -n "$batches" ] && [ -n "$requests" ] \
  || fail "stats payload lacks serve.batches/serve.requests: $stats"
# The summary is written after the drain, so the per-endpoint latency
# histogram must be fully populated here no matter how the mid-stream
# stats op raced the dispatcher.
printf '%s' "$summary" |
  grep -q '"serve\.request\.latency{op=infer}":{"type":"histogram".*"p99"' \
  || fail "serve_summary lacks per-endpoint histogram"
[ "$requests" -eq 40 ] || fail "daemon admitted $requests requests, want 40"
[ "$batches" -lt "$requests" ] \
  || fail "no coalescing: $batches batches for $requests requests"
echo "   coalesced $requests requests into $batches batches"

echo "== SIGTERM drain"
# Requests are parked in the queue (60 s latency budget, batch larger than
# the request count) when SIGTERM lands, so the graceful path must flush
# them: all answered, exit 0.
fifo="$work/in.fifo"
mkfifo "$fifo"
"$bindir/culda_serve" --model="$work/model.bin" --iters=10 \
  --max-batch=64 --max-wait-ms=60000 --quiet $extra \
  < "$fifo" > "$work/drain.out" &
daemon_pid=$!
exec 3>"$fifo"  # hold the fifo open so the daemon never sees EOF
i=0
while [ $i -lt 5 ]; do
  printf '{"id":"d%d","words":[%d,2,3],"seed":5}\n' "$i" "$i" >&3
  i=$((i + 1))
done
sleep 1  # let the frontend admit the lines
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
exec 3>&-
[ "$rc" -eq 0 ] || fail "SIGTERM drain exited $rc, want 0"
answered=$(grep -c '"ok":true' "$work/drain.out") || true
[ "$answered" -eq 5 ] \
  || fail "SIGTERM drain answered $answered of 5 queued requests"

echo "SMOKE OK: bit-identity, trace echo, hot swap, coalescing," \
  "live exposition, graceful drain"
