#include "dist/cluster.hpp"

#include <algorithm>
#include <string>

#include "core/evaluator.hpp"
#include "core/sync.hpp"
#include "corpus/chunking.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/philox.hpp"

namespace culda::dist {

namespace {

/// Per-(node, gpu) partial of one parallel phase, reduced into SweepStats in
/// fixed grid order afterwards so float sums never depend on scheduling.
struct alignas(64) CellPartial {
  double sampling_s = 0;
};

}  // namespace

const char* DistModeName(DistMode mode) {
  switch (mode) {
    case DistMode::kSync:
      return "sync";
    case DistMode::kAsync:
      return "async";
  }
  return "?";
}

DistMode ParseDistMode(std::string_view name) {
  if (name == "sync") return DistMode::kSync;
  if (name == "async") return DistMode::kAsync;
  throw Error(
      "--dist must be one of: sync (per-sweep inter-node all-reduce), async "
      "(nomadic shard circulation); got '" +
      std::string(name) + "'");
}

ClusterTrainer::ClusterTrainer(const corpus::Corpus& corpus,
                               core::CuldaConfig cfg, ClusterOptions opts)
    : corpus_(&corpus),
      cfg_(cfg),
      opts_(std::move(opts)),
      fabric_(opts_.num_nodes, opts_.topology, opts_.network) {
  cfg_.Validate();
  CULDA_CHECK_MSG(corpus.num_tokens() > 0, "cannot train on an empty corpus");
  CULDA_CHECK_MSG(opts_.num_nodes >= 1, "num_nodes must be >= 1");
  CULDA_CHECK_MSG(!opts_.gpus.empty(), "need at least one GPU per node");
  // The canonical/synced φ holds *global* 16-bit counts; same precondition
  // as CuldaTrainer (see its constructor for the rationale).
  {
    const std::vector<uint64_t> freq = corpus.WordFrequencies();
    for (size_t v = 0; v < freq.size(); ++v) {
      CULDA_CHECK_MSG(
          freq[v] <= 0xFFFF,
          "word " << v << " occurs " << freq[v]
                  << " times; 16-bit φ counts can overflow beyond 65535 "
                     "occurrences — prune heavy/stop words first");
    }
  }
  nodes_.reserve(opts_.num_nodes);
  for (uint32_t n = 0; n < opts_.num_nodes; ++n) {
    nodes_.push_back(std::make_unique<gpusim::DeviceGroup>(
        opts_.gpus, opts_.peer_link, opts_.pool));
  }

  BuildChunks();
  InitializeModel();

  // Sweep timing starts now; setup is excluded, as in CuldaTrainer.
  for (auto& node : nodes_) node->ResetTime();
  fabric_.Reset();
  node_round_end_.assign(opts_.num_nodes, 0.0);
}

void ClusterTrainer::BuildChunks() {
  const uint32_t c_count =
      opts_.num_nodes * static_cast<uint32_t>(opts_.gpus.size());
  const auto specs = corpus::PartitionByTokens(*corpus_, c_count);
  chunks_.clear();
  chunks_.reserve(specs.size());
  for (const auto& spec : specs) {
    core::ChunkState chunk;
    chunk.layout = corpus::BuildWordFirstChunk(*corpus_, spec);
    chunk.work =
        corpus::BuildBlockWorkList(chunk.layout, cfg_.max_tokens_per_block);
    chunk.z.resize(chunk.layout.num_tokens());
    // Identical topic init to CuldaTrainer: keyed by the corpus-global token
    // index, so the initial state is independent of the partition (and the
    // kSync ≡ single-machine bit-identity has a common starting point).
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      PhiloxStream rng(cfg_.seed, chunk.layout.token_global[t]);
      chunk.z[t] = static_cast<uint16_t>(rng.NextBelow(cfg_.num_topics));
    }
    chunk.theta =
        core::ThetaMatrix(chunk.layout.num_docs(), cfg_.num_topics);
    chunks_.push_back(std::move(chunk));
  }

  if (opts_.mode == DistMode::kAsync) {
    shards_ = corpus::PartitionWordsByTokens(*corpus_, opts_.num_nodes);
    // Pre-filter every chunk's work list per shard: BuildBlockWorkList
    // orders blocks by descending size, and filtering preserves that order,
    // so the shard-restricted kernel keeps the heavy-block-first schedule.
    shard_work_.assign(shards_.size(), {});
    for (size_t s = 0; s < shards_.size(); ++s) {
      shard_work_[s].resize(chunks_.size());
      for (size_t c = 0; c < chunks_.size(); ++c) {
        for (const corpus::BlockWork& bw : chunks_[c].work) {
          if (bw.word >= shards_[s].word_begin &&
              bw.word < shards_[s].word_end) {
            shard_work_[s][c].push_back(bw);
          }
        }
      }
    }
  }
}

void ClusterTrainer::ForEachNodeGpu(
    const std::function<void(size_t, size_t)>& fn) {
  const size_t g_count = opts_.gpus.size();
  const size_t total = nodes_.size() * g_count;
  if (opts_.pool != nullptr && opts_.pool->worker_count() > 0 && total > 1) {
    opts_.pool->ParallelFor(total, [&](size_t i) {
      fn(i / g_count, i % g_count);
    });
  } else {
    for (size_t i = 0; i < total; ++i) fn(i / g_count, i % g_count);
  }
}

void ClusterTrainer::InitializeModel() {
  const size_t g_count = opts_.gpus.size();
  if (opts_.mode == DistMode::kSync) {
    replicas_.resize(nodes_.size());
    accum_.resize(nodes_.size());
    for (size_t n = 0; n < nodes_.size(); ++n) {
      for (size_t g = 0; g < g_count; ++g) {
        replicas_[n].emplace_back(cfg_.num_topics, corpus_->vocab_size());
        accum_[n].emplace_back(cfg_.num_topics, corpus_->vocab_size());
      }
    }
    ForEachNodeGpu([&](size_t n, size_t g) {
      gpusim::Device& dev = nodes_[n]->device(g);
      core::ChunkState& chunk = chunks_[ChunkIndex(n, g)];
      core::RunZeroPhiKernel(dev, cfg_, replicas_[n][g]);
      core::RunUpdatePhiKernel(dev, cfg_, chunk, replicas_[n][g]);
      core::RunUpdateThetaKernel(dev, cfg_, chunk);
    });
    std::vector<gpusim::DeviceGroup*> groups;
    std::vector<std::vector<core::PhiReplica>*> reps;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      groups.push_back(nodes_[n].get());
      reps.push_back(&replicas_[n]);
    }
    core::SynchronizePhiAcrossNodes(groups, cfg_, reps, fabric_);
    ForEachNodeGpu([&](size_t n, size_t g) {
      core::RunComputeNkKernel(nodes_[n]->device(g), cfg_, replicas_[n][g]);
    });
    for (auto& node : nodes_) node->Barrier();
    return;
  }

  // kAsync: one canonical host-side model (consistent with z at all times)
  // plus a full-width sampling view per node, all starting fresh.
  canonical_ = core::PhiReplica(cfg_.num_topics, corpus_->vocab_size());
  for (const auto& chunk : chunks_) {
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      uint16_t& cell =
          canonical_.phi(chunk.z[t], chunk.layout.token_word[t]);
      CULDA_CHECK_MSG(cell < 0xFFFF, "phi count overflow at init");
      ++cell;
    }
  }
  canonical_.RecomputeTotals();
  views_.assign(nodes_.size(), canonical_);
  last_refresh_.assign(nodes_.size(),
                       std::vector<uint32_t>(shards_.size(), 0));
  ForEachNodeGpu([&](size_t n, size_t g) {
    core::RunUpdateThetaKernel(nodes_[n]->device(g), cfg_,
                               chunks_[ChunkIndex(n, g)]);
  });
  for (auto& node : nodes_) node->Barrier();
}

uint64_t ClusterTrainer::ShardBytes(size_t shard) const {
  return static_cast<uint64_t>(shards_[shard].word_end -
                               shards_[shard].word_begin) *
         cfg_.num_topics * cfg_.phi_count_bytes();
}

double ClusterTrainer::Now() const {
  double now = 0;
  for (const auto& node : nodes_) now = std::max(now, node->Now());
  return now;
}

SweepStats ClusterTrainer::Sweep() {
  CULDA_OBS_SPAN("dist/sweep");
  SweepStats stats;
  stats.sweep = sweep_;
  const double t0 = Now();
  const uint64_t payload0 = fabric_.payload_bytes();
  const uint64_t wire0 = fabric_.wire_bytes();

  if (opts_.mode == DistMode::kSync) {
    SweepSync(stats);
  } else {
    SweepAsync(stats);
  }

  stats.sim_seconds = Now() - t0;
  stats.network_payload_bytes = fabric_.payload_bytes() - payload0;
  stats.network_wire_bytes = fabric_.wire_bytes() - wire0;
  for (const auto& chunk : chunks_) stats.theta_nnz += chunk.theta.nnz();
  max_observed_staleness_ =
      std::max(max_observed_staleness_, stats.max_staleness);
  ++sweep_;
  history_.push_back(stats);
  return stats;
}

std::vector<SweepStats> ClusterTrainer::Train(uint32_t sweeps) {
  std::vector<SweepStats> out;
  out.reserve(sweeps);
  for (uint32_t i = 0; i < sweeps; ++i) out.push_back(Sweep());
  return out;
}

void ClusterTrainer::SweepSync(SweepStats& stats) {
  // One CuLDA iteration with the reduce+broadcast spanning the fabric.
  // The per-device schedule is CuldaTrainer's WS1 (resident chunks, φ
  // double-buffered, θ overlapping the sync on stream 1).
  std::vector<CellPartial> partials(chunks_.size());
  ForEachNodeGpu([&](size_t n, size_t g) {
    CellPartial& part = partials[ChunkIndex(n, g)];
    gpusim::Device& dev = nodes_[n]->device(g);
    core::ChunkState& chunk = chunks_[ChunkIndex(n, g)];
    gpusim::Stream& compute = dev.stream(0);

    const auto sampling = core::RunSamplingKernel(
        dev, cfg_, chunk, replicas_[n][g], sweep_ + 1, &compute, nullptr,
        opts_.sampler, opts_.mh_cycles);
    part.sampling_s += sampling.time.total_s;

    core::RunZeroPhiKernel(dev, cfg_, accum_[n][g], &compute);
    core::RunUpdatePhiKernel(dev, cfg_, chunk, accum_[n][g], &compute);

    gpusim::Stream& theta_stream = dev.stream(1);
    theta_stream.WaitUntil(sampling.end_s);
    core::RunUpdateThetaKernel(dev, cfg_, chunk, &theta_stream);
  });
  for (const CellPartial& part : partials) {
    stats.sampling_s += part.sampling_s;
  }

  std::vector<gpusim::DeviceGroup*> groups;
  std::vector<std::vector<core::PhiReplica>*> accums;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    groups.push_back(nodes_[n].get());
    accums.push_back(&accum_[n]);
  }
  const auto sync =
      core::SynchronizePhiAcrossNodes(groups, cfg_, accums, fabric_);
  stats.sync_s = sync.seconds;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    std::swap(replicas_[n], accum_[n]);
  }
  ForEachNodeGpu([&](size_t n, size_t g) {
    core::RunComputeNkKernel(nodes_[n]->device(g), cfg_, replicas_[n][g]);
  });
  for (auto& node : nodes_) node->Barrier();
}

void ClusterTrainer::SweepAsync(SweepStats& stats) {
  for (uint32_t r = 0; r < opts_.num_nodes; ++r) {
    AsyncRound(round_, stats);
    ++round_;
  }
}

void ClusterTrainer::AsyncRound(uint32_t round, SweepStats& stats) {
  const size_t n_count = nodes_.size();
  const size_t g_count = opts_.gpus.size();
  const uint32_t bound = opts_.staleness_bound;

  // Resident shard of node n this round: s with (s + round) % N == n.
  std::vector<size_t> resident(n_count);
  for (size_t n = 0; n < n_count; ++n) {
    resident[n] = (n + n_count - (round % n_count)) % n_count;
  }
  // Copies canonical's shard-s columns into node n's sampling view.
  auto refresh_view = [&](size_t n, size_t s) {
    const uint32_t wb = shards_[s].word_begin;
    const uint32_t we = shards_[s].word_end;
    for (uint32_t k = 0; k < cfg_.num_topics; ++k) {
      const auto src = canonical_.phi.Row(k);
      auto dst = views_[n].phi.Row(k);
      std::copy(src.begin() + wb, src.begin() + we, dst.begin() + wb);
    }
  };

  // --- Phase A: shard routing (sequential in node order — all fabric
  // transfers are issued here, so link contention resolves identically at
  // any worker count). Each node receives its resident shard from its ring
  // predecessor (who departed when its previous round ended), force-
  // refreshes any shard copy older than the staleness bound from that
  // shard's current holder, then distributes the fresh columns to its GPUs.
  std::vector<std::vector<uint16_t>> snapshots(chunks_.size());
  for (size_t n = 0; n < n_count; ++n) {
    const size_t s_res = resident[n];
    double arrivals = node_round_end_[n];
    uint64_t refreshed_bytes = 0;
    uint64_t refreshed_cells = 0;
    if (round > 0) {
      const size_t prev = (n + n_count - 1) % n_count;
      arrivals = std::max(
          arrivals, fabric_.Transfer(prev, n, ShardBytes(s_res),
                                     node_round_end_[prev]));
      refresh_view(n, s_res);
      last_refresh_[n][s_res] = round;
      refreshed_bytes += ShardBytes(s_res);
      refreshed_cells += static_cast<uint64_t>(shards_[s_res].word_end -
                                               shards_[s_res].word_begin) *
                         cfg_.num_topics;
    }
    if (bound != kUnboundedStaleness) {
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (s == s_res) continue;
        if (round - last_refresh_[n][s] <= bound) continue;
        const size_t holder = (s + round) % n_count;
        arrivals = std::max(
            arrivals, fabric_.Transfer(holder, n, ShardBytes(s),
                                       node_round_end_[holder]));
        refresh_view(n, s);
        last_refresh_[n][s] = round;
        refreshed_bytes += ShardBytes(s);
        refreshed_cells += static_cast<uint64_t>(shards_[s].word_end -
                                                 shards_[s].word_begin) *
                           cfg_.num_topics;
      }
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      stats.max_staleness =
          std::max(stats.max_staleness, round - last_refresh_[n][s]);
    }

    gpusim::DeviceGroup& node = *nodes_[n];
    for (size_t g = 0; g < g_count; ++g) {
      node.device(g).stream(0).WaitUntil(arrivals);
      node.device(g).stream(1).WaitUntil(arrivals);
    }
    if (refreshed_bytes > 0) {
      // Install the fresh columns (device 0) and recompute the view's n_k
      // (stale mix of columns ⇒ totals change with every refresh). The
      // recompute is billed incrementally — old + new refreshed columns —
      // not as a full K×V scan.
      node.device(0).Launch(
          "install_shard",
          {static_cast<uint32_t>(
               std::max<uint64_t>(1, refreshed_cells >> 16)),
           1024},
          [&](gpusim::BlockContext& ctx) {
            ctx.WriteGlobal(refreshed_bytes / ctx.grid_dim());
          });
      if (g_count > 1) node.PeerTransfer(0, 1, refreshed_bytes);
      views_[n].RecomputeTotals();
      node.device(0).Launch(
          "refresh_nk",
          {std::max(1u, cfg_.num_topics / 4), 128},
          [&](gpusim::BlockContext& ctx) {
            ctx.ReadGlobal(2 * refreshed_cells * cfg_.phi_count_bytes() /
                           ctx.grid_dim());
            ctx.WriteGlobal(cfg_.num_topics * 4 / ctx.grid_dim());
          });
    }
    // Snapshot the resident slice's assignments: phase C derives the round's
    // count deltas from (snapshot, new z). The slice is contiguous in the
    // word-first order, so this is one sub-range per chunk.
    for (size_t g = 0; g < g_count; ++g) {
      const core::ChunkState& chunk = chunks_[ChunkIndex(n, g)];
      const uint64_t a = chunk.layout.word_offsets[shards_[s_res].word_begin];
      const uint64_t b = chunk.layout.word_offsets[shards_[s_res].word_end];
      snapshots[ChunkIndex(n, g)].assign(chunk.z.begin() + a,
                                         chunk.z.begin() + b);
    }
  }

  // --- Phase B: sampling (parallel over the node×GPU grid; every cell owns
  // disjoint chunk/device state and reads its node's view immutably).
  std::vector<CellPartial> partials(chunks_.size());
  ForEachNodeGpu([&](size_t n, size_t g) {
    CellPartial& part = partials[ChunkIndex(n, g)];
    gpusim::Device& dev = nodes_[n]->device(g);
    core::ChunkState& chunk = chunks_[ChunkIndex(n, g)];
    std::vector<corpus::BlockWork>& filtered =
        shard_work_[resident[n]][ChunkIndex(n, g)];
    const uint64_t touched = snapshots[ChunkIndex(n, g)].size();
    gpusim::Stream& compute = dev.stream(0);

    // Restrict the kernel to the resident shard's words by swapping in the
    // filtered work list — the sampling kernel iterates only chunk.work.
    std::swap(chunk.work, filtered);
    const auto sampling = core::RunSamplingKernel(
        dev, cfg_, chunk, views_[n], sweep_ + 1, &compute, nullptr,
        opts_.sampler, opts_.mh_cycles);
    std::swap(chunk.work, filtered);
    part.sampling_s += sampling.time.total_s;

    if (touched > 0) {
      // Billing for folding this round's deltas into the resident shard
      // (the functional fold runs host-side in phase C): per touched token,
      // read old/new z and apply a −1/+1 atomic pair to the φ column.
      dev.Launch(
          "update_phi_delta",
          {static_cast<uint32_t>(
               std::min<uint64_t>(std::max<uint64_t>(1, touched / 1024),
                                  4096)),
           1024},
          [&](gpusim::BlockContext& ctx) {
            const uint64_t here =
                touched / ctx.grid_dim() +
                (ctx.block_id() < touched % ctx.grid_dim());
            ctx.ReadGlobal(here * 4);
            ctx.counters().atomic_ops += 2 * here;
            ctx.WriteGlobal(2 * here * cfg_.phi_count_bytes());
          },
          &compute);
      gpusim::Stream& theta_stream = dev.stream(1);
      theta_stream.WaitUntil(sampling.end_s);
      core::RunUpdateThetaDeltaKernel(dev, cfg_, chunk, touched,
                                      &theta_stream);
    }
  });
  for (const CellPartial& part : partials) {
    stats.sampling_s += part.sampling_s;
  }

  // --- Phase C: fold each node's deltas into the canonical model
  // (sequential, fixed node/gpu/token order). Shards are disjoint word
  // ranges and each is resident at exactly one node, so the folds commute —
  // the fixed order is for bitwise reproducibility of the checks.
  for (size_t n = 0; n < n_count; ++n) {
    const size_t s_res = resident[n];
    for (size_t g = 0; g < g_count; ++g) {
      const core::ChunkState& chunk = chunks_[ChunkIndex(n, g)];
      const std::vector<uint16_t>& old_z = snapshots[ChunkIndex(n, g)];
      const uint64_t a = chunk.layout.word_offsets[shards_[s_res].word_begin];
      for (uint64_t i = 0; i < old_z.size(); ++i) {
        const uint64_t t = a + i;
        const uint16_t prev = old_z[i];
        const uint16_t next = chunk.z[t];
        if (prev == next) continue;
        const uint32_t w = chunk.layout.token_word[t];
        uint16_t& dec = canonical_.phi(prev, w);
        CULDA_CHECK_MSG(dec > 0, "phi count underflow folding round delta");
        --dec;
        uint16_t& inc = canonical_.phi(next, w);
        CULDA_CHECK_MSG(inc < 0xFFFF,
                        "phi count overflowed 16 bits folding round delta");
        ++inc;
        --canonical_.nk[prev];
        ++canonical_.nk[next];
      }
    }
    // The node's own updates live in its local shard copy: keep its view of
    // the resident shard current (no network — this is the nomadic
    // advantage). Only node n touched these columns this round, so the copy
    // picks up exactly its own deltas.
    refresh_view(n, s_res);
    nodes_[n]->Barrier();
    node_round_end_[n] = nodes_[n]->Now();
  }
}

core::GatheredModel ClusterTrainer::Gather() const {
  core::GatheredModel model;
  model.num_topics = cfg_.num_topics;
  model.vocab_size = corpus_->vocab_size();
  model.num_docs = corpus_->num_docs();
  model.theta = core::ThetaMatrix(corpus_->num_docs(), cfg_.num_topics);
  core::ThetaMatrix::RowBuilder builder(&model.theta);
  size_t next_doc = 0;
  for (const auto& chunk : chunks_) {
    CULDA_CHECK(chunk.layout.spec.doc_begin == next_doc);
    for (uint64_t d = 0; d < chunk.num_docs(); ++d) {
      builder.AppendRow(next_doc++, chunk.theta.RowIndices(d),
                        chunk.theta.RowValues(d));
    }
  }
  builder.Finish();
  if (opts_.mode == DistMode::kAsync) {
    model.phi = canonical_.phi;
    model.nk = canonical_.nk;
  } else {
    model.phi = replicas_[0][0].phi;
    model.nk = replicas_[0][0].nk;
  }
  return model;
}

double ClusterTrainer::LogLikelihoodPerToken() const {
  return core::LogLikelihoodPerToken(Gather(), cfg_, opts_.pool);
}

std::vector<uint16_t> ClusterTrainer::ExportAssignments() const {
  std::vector<uint16_t> z(corpus_->num_tokens());
  for (const auto& chunk : chunks_) {
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      z[chunk.layout.token_global[t]] = chunk.z[t];
    }
  }
  return z;
}

}  // namespace culda::dist
