// ClusterTrainer — simulated multi-node LDA training over a network fabric.
//
// Extension beyond the paper (which stops at one multi-GPU box and argues
// distributed clusters lose to it on network cost): N simulated nodes, each
// a gpusim::DeviceGroup of G GPUs, connected by a gpusim::Fabric with
// per-link bandwidth/latency. Two inter-node strategies:
//
//   kSync  — every sweep is one CuLDA iteration: all nodes sample their
//            document chunks against the full φ, then the node sums are
//            all-reduced over the fabric (SynchronizePhiAcrossNodes) behind
//            a global barrier. Bit-identical assignments to a single
//            machine with N·G GPUs — only the clock differs.
//   kAsync — nomadic φ-shard circulation. The vocabulary is split into N
//            contiguous word shards (PartitionWordsByTokens); in round r
//            shard s is resident at node (s + r) mod N, and each node
//            samples only the tokens of its resident shard's words, applying
//            the count deltas to the shard it holds — locally, no network.
//            At the end of each round every node hands its shard to its ring
//            successor: per-round network traffic is model/N per node on
//            disjoint links, versus the synchronous all-reduce's
//            2·(N−1)/N·model through every NIC at a barrier. Non-resident
//            shards are sampled against stale copies whose age (in rounds)
//            is capped by `staleness_bound`; shards older than the bound are
//            re-fetched from their current holder (billed over the fabric).
//            N rounds = one sweep = every token resampled exactly once.
//
// Determinism contract: for a fixed (corpus, config, ClusterOptions modulo
// pool), assignments, simulated clocks, and fabric byte counters are
// bit-identical at any host worker count. Rounds run in three phases — a
// sequential shard-routing phase (all fabric transfers, issued in node
// order), a parallel sampling phase over the (node, gpu) grid (disjoint
// state; the sampler's Philox stream is keyed by (seed, sweep, global token)
// so values never depend on scheduling), and a sequential delta-application
// phase (fixed node/gpu/token order).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/kernels.hpp"
#include "core/model.hpp"
#include "corpus/corpus.hpp"
#include "gpusim/fabric.hpp"
#include "gpusim/multi_gpu.hpp"
#include "util/thread_pool.hpp"

namespace culda::dist {

enum class DistMode {
  kSync,   ///< per-sweep inter-node all-reduce (bulk-synchronous)
  kAsync,  ///< nomadic shard circulation with bounded staleness
};

const char* DistModeName(DistMode mode);

/// Parses "sync" or "async". Throws culda::Error echoing the bad value and
/// every accepted spelling.
DistMode ParseDistMode(std::string_view name);

/// staleness_bound value meaning "never force a refresh" (the natural cap is
/// N−1 rounds: a shard is refreshed whenever it becomes resident).
inline constexpr uint32_t kUnboundedStaleness = UINT32_MAX;

struct ClusterOptions {
  uint32_t num_nodes = 2;
  /// GPUs per node (every node is identical — the paper's homogeneous
  /// platforms).
  std::vector<gpusim::DeviceSpec> gpus = {gpusim::V100Volta()};
  gpusim::LinkSpec peer_link = gpusim::Pcie3x16();    ///< intra-node
  gpusim::LinkSpec network = gpusim::Ethernet10G();   ///< inter-node default
  gpusim::FabricTopology topology = gpusim::FabricTopology::kRing;
  DistMode mode = DistMode::kAsync;
  /// kAsync only: max age (rounds) of a shard copy a node may sample
  /// against. 0 = refresh everything every round (maximum traffic);
  /// kUnboundedStaleness = pure nomadic (age naturally capped at N−1).
  uint32_t staleness_bound = kUnboundedStaleness;
  core::TrainSampler sampler = core::TrainSampler::kTree;
  uint32_t mh_cycles = 1;
  /// Optional host worker pool (wall-clock only; results are bit-identical
  /// with or without it — see the determinism contract above).
  ThreadPool* pool = nullptr;
};

/// Timing/traffic record of one sweep (= one full pass over the corpus;
/// one iteration in kSync, N rounds in kAsync). Simulated seconds.
struct SweepStats {
  uint32_t sweep = 0;
  double sim_seconds = 0;        ///< cluster-clock advance of this sweep
  double sampling_s = 0;         ///< per-device sampling time, summed
  double sync_s = 0;             ///< kSync: all-reduce time of this sweep
  uint64_t network_payload_bytes = 0;  ///< fabric payload this sweep
  uint64_t network_wire_bytes = 0;     ///< payload × hops (store-and-forward)
  /// kAsync: max shard age (rounds) any node sampled against this sweep;
  /// always ≤ min(staleness_bound, N−1). 0 in kSync.
  uint32_t max_staleness = 0;
  uint64_t theta_nnz = 0;
};

class ClusterTrainer {
 public:
  /// `corpus` must outlive the trainer. Documents are split into N·G
  /// token-balanced chunks (chunk n·G+g on node n, GPU g — the same
  /// partition a single N·G-GPU CuldaTrainer uses); kAsync additionally
  /// splits the vocabulary into N word shards. Topic init is keyed by the
  /// corpus-global token index, identical to CuldaTrainer. All node clocks
  /// and the fabric are reset to zero after initialization.
  ClusterTrainer(const corpus::Corpus& corpus, core::CuldaConfig cfg,
                 ClusterOptions opts);

  uint32_t num_nodes() const { return opts_.num_nodes; }
  uint32_t gpus_per_node() const {
    return static_cast<uint32_t>(opts_.gpus.size());
  }
  const core::CuldaConfig& config() const { return cfg_; }
  const ClusterOptions& options() const { return opts_; }
  const gpusim::Fabric& fabric() const { return fabric_; }

  /// Runs one sweep; returns its stats (also kept in history()).
  SweepStats Sweep();
  std::vector<SweepStats> Train(uint32_t sweeps);
  const std::vector<SweepStats>& history() const { return history_; }
  uint32_t sweep() const { return sweep_; }

  /// Latest completion time across every node's devices (cluster-absolute
  /// simulated seconds since construction).
  double Now() const;

  /// Max shard age (rounds) sampled against over the whole run; the
  /// staleness-bound invariant is max_observed_staleness() ≤
  /// min(staleness_bound, N−1). Always 0 in kSync.
  uint32_t max_observed_staleness() const { return max_observed_staleness_; }

  /// Collects the trained model (θ over all documents + global φ).
  core::GatheredModel Gather() const;
  double LogLikelihoodPerToken() const;

  /// Topic assignments in corpus document-major order (comparable across
  /// modes, node counts, and worker counts).
  std::vector<uint16_t> ExportAssignments() const;

 private:
  struct NodeState;

  void BuildChunks();
  void InitializeModel();
  /// Runs fn(n, g) over the whole node×GPU grid — pool-parallel when a pool
  /// is set (each cell owns disjoint chunk/device state), sequential
  /// otherwise. Callers reduce per-cell partials in fixed order afterwards.
  void ForEachNodeGpu(const std::function<void(size_t, size_t)>& fn);
  void SweepSync(SweepStats& stats);
  void SweepAsync(SweepStats& stats);
  /// One async round: route shards (sequential), sample resident slices
  /// (parallel), fold deltas into the canonical model (sequential).
  void AsyncRound(uint32_t round, SweepStats& stats);
  uint64_t ShardBytes(size_t shard) const;
  size_t ChunkIndex(size_t node, size_t gpu) const {
    return node * opts_.gpus.size() + gpu;
  }

  const corpus::Corpus* corpus_;
  core::CuldaConfig cfg_;
  ClusterOptions opts_;
  std::vector<std::unique_ptr<gpusim::DeviceGroup>> nodes_;
  gpusim::Fabric fabric_;
  std::vector<core::ChunkState> chunks_;  ///< N·G, node-major

  // kSync state: per-node φ replica double buffer, as in CuldaTrainer.
  std::vector<std::vector<core::PhiReplica>> replicas_;
  std::vector<std::vector<core::PhiReplica>> accum_;

  // kAsync state.
  std::vector<corpus::WordRange> shards_;  ///< N contiguous word ranges
  /// Canonical host-side model: always consistent with the current z (every
  /// round's deltas are folded in during phase C). The "current holder" of a
  /// shard owns its canonical columns; the host array is the simulator's
  /// stand-in for the union of all holders.
  core::PhiReplica canonical_;
  /// Per-node sampling view: φ whose shard-s columns reflect the canonical
  /// model as of round last_refresh_[n][s].
  std::vector<core::PhiReplica> views_;
  std::vector<std::vector<uint32_t>> last_refresh_;  ///< [node][shard] round
  /// Per-chunk filtered work lists, [shard][chunk] (descending-size order
  /// preserved from the full list); built once at construction.
  std::vector<std::vector<std::vector<corpus::BlockWork>>> shard_work_;
  /// Cluster-absolute completion time of each node's previous round (the
  /// departure time of the shard it hands to its successor).
  std::vector<double> node_round_end_;
  uint32_t round_ = 0;  ///< kAsync rounds completed (sweep_ · N + r)

  std::vector<SweepStats> history_;
  uint32_t sweep_ = 0;
  uint32_t max_observed_staleness_ = 0;
};

}  // namespace culda::dist
