#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"

namespace culda {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    CULDA_CHECK_MSG(!arg.empty(), "bare `--` is not a valid flag");
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else if (arg.rfind("no-", 0) == 0) {
      values_[arg.substr(3)] = "false";
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliFlags::Has(const std::string& name) const {
  used_[name] = true;
  return values_.count(name) > 0;
}

std::string CliFlags::GetString(const std::string& name,
                                const std::string& default_value) const {
  used_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t CliFlags::GetInt(const std::string& name,
                         int64_t default_value) const {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  // strtoll alone under-rejects: an empty value parses as 0 with no
  // consumed characters, and an out-of-range value clamps to
  // LLONG_MIN/MAX with errno = ERANGE — both with *end == '\0'.
  char* end = nullptr;
  errno = 0;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  CULDA_CHECK_MSG(end != it->second.c_str() && end && *end == '\0',
                  "flag --" << name << " expects an integer, got '"
                            << it->second << "'");
  CULDA_CHECK_MSG(errno != ERANGE, "flag --" << name << " value '"
                                             << it->second
                                             << "' is out of range");
  return v;
}

double CliFlags::GetDouble(const std::string& name,
                           double default_value) const {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(it->second.c_str(), &end);
  CULDA_CHECK_MSG(end != it->second.c_str() && end && *end == '\0',
                  "flag --" << name << " expects a number, got '"
                            << it->second << "'");
  CULDA_CHECK_MSG(errno != ERANGE && std::isfinite(v),
                  "flag --" << name << " value '" << it->second
                            << "' is out of range");
  return v;
}

bool CliFlags::GetBool(const std::string& name, bool default_value) const {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  CULDA_CHECK_MSG(false, "flag --" << name << " expects a bool, got '" << v
                                   << "'");
  return default_value;
}

LogLevel CliFlags::ApplyLogFlags() const {
  LogLevel level = GetBool("quiet", false) ? LogLevel::kWarn : LogLevel::kInfo;
  if (Has("log-level")) {
    const std::string name = GetString("log-level", "info");
    if (name == "debug") {
      level = LogLevel::kDebug;
    } else if (name == "info") {
      level = LogLevel::kInfo;
    } else if (name == "warn") {
      level = LogLevel::kWarn;
    } else if (name == "error") {
      level = LogLevel::kError;
    } else if (name == "off") {
      level = LogLevel::kOff;
    } else {
      CULDA_CHECK_MSG(false, "flag --log-level expects "
                                 "debug|info|warn|error|off, got '"
                                 << name << "'");
    }
  }
  SetLogLevel(level);
  return level;
}

std::vector<std::string> CliFlags::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, _] : values_) {
    if (!used_.count(name)) unused.push_back(name);
  }
  return unused;
}

void CliFlags::PrintUsage(std::FILE* out, std::string_view usage) {
  std::fwrite(usage.data(), 1, usage.size(), out);
  if (!usage.empty() && usage.back() != '\n') std::fputc('\n', out);
}

int CliFlags::RejectUnknownFlags(std::string_view usage) const {
  const auto unused = UnusedFlags();
  if (unused.empty()) return 0;
  for (const auto& name : unused) {
    std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
  }
  std::fputc('\n', stderr);
  PrintUsage(stderr, usage);
  return 2;
}

}  // namespace culda
