#include "util/signal.hpp"

#include <csignal>

#include "obs/flight_recorder.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace culda {

namespace {

// sig_atomic_t, not std::atomic: the handler may interrupt any code, and
// sig_atomic_t is the type the C standard guarantees is safe to store to
// from a handler. Readers poll; no ordering beyond "eventually visible"
// is needed.
volatile std::sig_atomic_t g_shutdown_signal = 0;

extern "C" void CuldaShutdownHandler(int sig) { g_shutdown_signal = sig; }

#if !defined(_WIN32)
void WriteRaw(const char* s) {
  size_t n = 0;
  while (s[n] != '\0') ++n;
  // Best-effort; a failed stderr write mid-crash has no recourse.
  [[maybe_unused]] const ssize_t rc = ::write(2, s, n);
}

extern "C" void CuldaFatalDumpHandler(int sig) {
  // Everything here is async-signal-safe: raw writes plus the flight
  // recorder's atomics-only dump. SA_RESETHAND restored the default
  // disposition before we ran, so the re-raise below dies for real.
  WriteRaw("\n== culda: fatal signal ");
  char digits[4];
  int n = 0;
  int v = sig;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0 && n < 3);
  while (n > 0) {
    const char c[2] = {digits[--n], '\0'};
    WriteRaw(c);
  }
  WriteRaw(" ==\n");
  obs::FlightRecorder::Global().DumpToFd(2);
  raise(sig);
}
#endif

}  // namespace

void InstallShutdownHandler() {
#if defined(_WIN32)
  std::signal(SIGINT, CuldaShutdownHandler);
  std::signal(SIGTERM, CuldaShutdownHandler);
#else
  struct sigaction sa = {};
  sa.sa_handler = CuldaShutdownHandler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: blocking reads must return EINTR so read loops can
  // notice the flag instead of sleeping through the shutdown.
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#endif
}

void InstallFatalDumpHandler() {
#if !defined(_WIN32)
  struct sigaction sa = {};
  sa.sa_handler = CuldaFatalDumpHandler;
  sigemptyset(&sa.sa_mask);
  // SA_RESETHAND: one shot — the handler dumps, then the re-raise hits the
  // default disposition (a recursive fault inside the dump also dies
  // instead of looping). SA_NODEFER is unnecessary with the re-raise
  // pattern since the signal is blocked only while the handler runs.
  sa.sa_flags = SA_RESETHAND;
  const int fatal[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};
  for (const int sig : fatal) sigaction(sig, &sa, nullptr);
#endif
}

bool ShutdownRequested() { return g_shutdown_signal != 0; }

int ShutdownSignal() { return g_shutdown_signal; }

void ResetShutdownFlag() { g_shutdown_signal = 0; }

}  // namespace culda
