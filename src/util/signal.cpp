#include "util/signal.hpp"

#include <csignal>

namespace culda {

namespace {

// sig_atomic_t, not std::atomic: the handler may interrupt any code, and
// sig_atomic_t is the type the C standard guarantees is safe to store to
// from a handler. Readers poll; no ordering beyond "eventually visible"
// is needed.
volatile std::sig_atomic_t g_shutdown_signal = 0;

extern "C" void CuldaShutdownHandler(int sig) { g_shutdown_signal = sig; }

}  // namespace

void InstallShutdownHandler() {
#if defined(_WIN32)
  std::signal(SIGINT, CuldaShutdownHandler);
  std::signal(SIGTERM, CuldaShutdownHandler);
#else
  struct sigaction sa = {};
  sa.sa_handler = CuldaShutdownHandler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: blocking reads must return EINTR so read loops can
  // notice the flag instead of sleeping through the shutdown.
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#endif
}

bool ShutdownRequested() { return g_shutdown_signal != 0; }

int ShutdownSignal() { return g_shutdown_signal; }

void ResetShutdownFlag() { g_shutdown_signal = 0; }

}  // namespace culda
