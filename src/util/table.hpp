// Plain-text table printer for the benchmark harness.
//
// Every bench prints the same rows/columns the paper's tables and figures
// report; this formats them with aligned columns so the output diff-checks
// cleanly in EXPERIMENTS.md.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace culda {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row) {
    CULDA_CHECK(row.size() == header_.size());
    rows_.push_back(std::move(row));
  }

  /// Formats a double with `prec` significant digits for use as a cell.
  static std::string Num(double v, int prec = 4) {
    std::ostringstream os;
    os << std::setprecision(prec) << v;
    return os.str();
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
      for (size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
      os << "| ";
      for (size_t c = 0; c < row.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c]
           << " | ";
      }
      os << "\n";
    };
    print_row(header_);
    os << "|";
    for (size_t c = 0; c < header_.size(); ++c)
      os << std::string(width[c] + 2, '-') << "|";
    os << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace culda
