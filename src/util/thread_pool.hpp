// A small fixed-size thread pool with parallel-for front ends.
//
// gpusim uses it to execute the thread blocks of a kernel launch, and the
// trainer uses the same pool to run independent simulated GPUs concurrently
// between sync points; on a single-core host it degrades to sequential
// execution (the pool runs the caller inline when it has zero workers).
//
// Nesting: ParallelFor / ParallelForRanges may be called from inside a task
// running on this pool (e.g. a trainer-level device body issuing a kernel
// launch). The caller always participates in draining its own work from a
// shared claim counter, so a nested call completes even when every worker is
// busy with other callers' bodies — there is no circular wait by
// construction.
//
// Determinism note: block order is irrelevant to correctness in all CuLDA
// kernels (the paper's kernels only communicate between blocks via atomics),
// so running blocks in any interleaving yields the same model state given
// that the reductions used are integer (exact) — float accumulation happens
// privately per warp, and trainer-level float partials are reduced in fixed
// device order by the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace culda {

class ThreadPool {
 public:
  /// Creates a pool with `workers` threads. `workers == 0` means "run
  /// everything inline on the caller" — the right default on 1-core hosts.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return threads_.size(); }

  /// Index of the calling thread within *this* pool: 0..worker_count()-1 on
  /// a pool worker, -1 on any other thread (including the caller of a
  /// ParallelFor, which participates in the work but is not a pool worker).
  /// Callers use `current_worker_id() + 1` as a dense per-thread slot index
  /// in [0, worker_count()] for lock-free partial accumulators.
  int current_worker_id() const;

  /// Runs fn(i) for i in [0, n); blocks until all complete. Work is claimed
  /// in contiguous chunks from a shared counter (dynamic load balancing with
  /// amortized synchronization), and the caller participates. Exceptions
  /// from `fn` are rethrown on the caller (first one wins); with workers,
  /// every index still runs (inline mode propagates at the throwing index,
  /// as a plain loop would).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Range-based variant: partitions [0, n) into at most worker_count()+1
  /// contiguous near-equal ranges and runs fn(begin, end) once per range.
  /// The partition is a pure function of (n, worker_count()) — deterministic
  /// — while the assignment of ranges to threads is not. Use this when the
  /// per-item body is too cheap to pay a claim per chunk, or when the body
  /// wants to hoist per-range state.
  void ParallelForRanges(size_t n,
                         const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop(size_t worker_id);
  /// Shared engine: runs shard_fn(s) for s in [0, shards) with caller
  /// participation and single-claim dynamic scheduling.
  void RunShards(size_t shards, const std::function<void(size_t)>& shard_fn);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace culda
