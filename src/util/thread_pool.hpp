// A small fixed-size thread pool with a parallel-for front end.
//
// gpusim uses it to execute the thread blocks of a kernel launch; on a
// single-core host it degrades to sequential execution (the pool runs the
// caller inline when it has zero workers). Determinism note: block order is
// irrelevant to correctness in all CuLDA kernels (the paper's kernels only
// communicate between blocks via atomics), so running blocks in any
// interleaving yields the same model state given that the reductions used
// are integer (exact) — float accumulation happens privately per warp.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace culda {

class ThreadPool {
 public:
  /// Creates a pool with `workers` threads. `workers == 0` means "run
  /// everything inline on the caller" — the right default on 1-core hosts.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n), partitioned into contiguous ranges across
  /// the workers; blocks until all complete. Exceptions from `fn` are
  /// rethrown on the caller (first one wins).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace culda
