// A topology-aware fixed-size thread pool with parallel-for front ends.
//
// gpusim uses it to execute the thread blocks of a kernel launch, the
// trainer uses the same pool to run independent simulated GPUs concurrently
// between sync points, and the serving tier fans documents out over it; on a
// single-core host it degrades to sequential execution (the pool runs the
// caller inline when it has zero workers).
//
// Placement (docs/parallelism.md): the pool discovers the effective CPU set
// and NUMA layout through util/topology.hpp (or takes a caller-provided
// topology — the test fixtures). Workers are assigned CPUs round-robin and
// grouped into *socket domains* (one per NUMA node that received a worker);
// `ThreadPoolOptions::pin` additionally pins each worker to its CPU via
// pthread_setaffinity_np, degrading gracefully — per-worker — to unpinned
// when the syscall fails. Each domain keeps its own task queue and its own
// contiguous shard range inside every ParallelFor: a worker claims from its
// home domain until that runs dry, then steals cross-socket (counted by
// steal_count() and the `threadpool.steals` metric). Per-worker arenas
// (WorkerArena) are allocated and first-touched by the owning worker thread
// itself, so their pages land on the worker's node without libnuma. On a
// single-node topology all of this collapses to one domain — byte-for-byte
// the placement-blind pool this one replaced.
//
// Nesting: ParallelFor / ParallelForRanges may be called from inside a task
// running on this pool (e.g. a trainer-level device body issuing a kernel
// launch). The caller always participates in draining its own work from the
// shared claim counters, so a nested call completes even when every worker
// is busy with other callers' bodies — there is no circular wait by
// construction.
//
// Dense-slot contract (current_worker_id): callers use
// `current_worker_id() + 1` as a dense per-thread slot index in
// [0, worker_count()] for lock-free partial accumulators. Pool workers own
// slots 1..worker_count(); slot 0 belongs to the (single) non-worker thread
// driving the pool. Two non-worker threads running ParallelFor /
// ParallelForRanges on the same pool concurrently would therefore collide
// on slot 0 — the pool now detects that and throws culda::Error (the check
// is a couple of atomics per call, cheap enough to keep on in release
// builds). Nested calls from pool workers keep their worker slot, and the
// owning external thread may re-enter recursively (same thread, same slot);
// both are always safe and never trip the check.
//
// Determinism note: block order is irrelevant to correctness in all CuLDA
// kernels (the paper's kernels only communicate between blocks via atomics),
// so running blocks in any interleaving — pinned or not, stolen or not —
// yields the same model state given that the reductions used are integer
// (exact); float accumulation happens privately per warp, and trainer-level
// float partials are reduced in fixed device order by the caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "util/topology.hpp"

namespace culda {

struct ThreadPoolOptions {
  /// Pin each worker to its assigned CPU. Failure to pin any given worker
  /// (unsupported platform, hostile cpuset, CPU id beyond CPU_SETSIZE) is
  /// logged once and that worker runs unpinned; see pinned_worker_count().
  bool pin = false;
  /// Topology to place workers on; nullptr means the machine's own
  /// (SystemTopology()). Tests pass synthetic topologies to exercise
  /// multi-domain behavior on single-core hosts. Copied at construction.
  const CpuTopology* topology = nullptr;
};

class ThreadPool {
 public:
  /// Creates a pool with `workers` threads. `workers == 0` means "run
  /// everything inline on the caller" — the right default on 1-core hosts.
  explicit ThreadPool(size_t workers, ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return threads_.size(); }

  /// Index of the calling thread within *this* pool: 0..worker_count()-1 on
  /// a pool worker, -1 on any other thread (including the caller of a
  /// ParallelFor, which participates in the work but is not a pool worker).
  /// See the dense-slot contract in the header comment.
  int current_worker_id() const;

  // --- Topology surface ----------------------------------------------------

  /// Socket domains (per-NUMA-node queues + shard ranges); 1 on single-node
  /// topologies and 0-worker pools — the degenerate path with the exact
  /// behavior of the placement-blind pool.
  size_t socket_count() const { return domain_worker_count_.size(); }
  /// Home domain of a worker id in [0, worker_count()).
  int socket_of_worker(int worker_id) const;
  /// Home domain of the calling thread: its worker domain on a pool worker,
  /// 0 on any other thread.
  int current_socket() const;
  /// Workers successfully pinned to their CPU (0 unless options.pin).
  size_t pinned_worker_count() const { return pinned_workers_; }
  /// Cross-socket shard claims since construction (0 on one domain).
  uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }
  const CpuTopology& topology() const { return topo_; }
  const ThreadPoolOptions& options() const { return options_; }

  /// Reusable per-thread scratch arena, keyed by the dense slot
  /// (current_worker_id() + 1): the memory is allocated — and first-touched
  /// — by the calling thread itself, so on a pinned pool its pages land on
  /// the caller's NUMA node. Grows monotonically and is reused across
  /// ParallelFor invocations; the returned span is valid until the same
  /// slot requests a larger size. Synchronization piggybacks on the dense-
  /// slot contract: each slot has a single writer at any time.
  std::span<std::byte> WorkerArena(size_t bytes);

  /// Runs fn(s) once per socket domain, each executing on a worker whose
  /// home domain is s (the tasks are exempt from stealing), so memory
  /// allocated inside fn is first-touched on the right node. Blocks until
  /// all complete; rethrows the first exception. Runs inline on the caller
  /// when the pool has no workers or when called from a pool worker (a
  /// worker cannot wait for its own domain's queue).
  void ForEachSocket(const std::function<void(size_t)>& fn);

  // --- Parallel-for front ends ---------------------------------------------

  /// Runs fn(i) for i in [0, n); blocks until all complete. Work is claimed
  /// in contiguous chunks from per-domain counters (dynamic load balancing
  /// with amortized synchronization, cross-socket stealing once the home
  /// range is dry), and the caller participates. Exceptions from `fn` are
  /// rethrown on the caller (first one wins); with workers, every index
  /// still runs (inline mode propagates at the throwing index, as a plain
  /// loop would).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Range-based variant: partitions [0, n) into at most worker_count()+1
  /// contiguous near-equal ranges and runs fn(begin, end) once per range.
  /// The partition is a pure function of (n, worker_count()) — deterministic
  /// — while the assignment of ranges to threads is not. Use this when the
  /// per-item body is too cheap to pay a claim per chunk, or when the body
  /// wants to hoist per-range state.
  void ParallelForRanges(size_t n,
                         const std::function<void(size_t, size_t)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
    bool stealable = true;
  };
  struct Arena {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
  };

  void WorkerLoop(size_t worker_id);
  /// Shared engine: runs shard_fn(s) for s in [0, shards) with caller
  /// participation, per-domain claim ranges, and cross-socket stealing.
  void RunShards(size_t shards, const std::function<void(size_t)>& shard_fn);
  /// Pops a task claimable by a worker whose home domain is `home`:
  /// anything from the home queue first, else the first *stealable* task of
  /// another domain. Caller must hold mutex_. Returns false when nothing is
  /// claimable.
  bool PopTaskLocked(size_t home, Task* task);
  bool ClaimableLocked(size_t home) const;
  /// Pins spawned workers to their assigned CPUs (best effort, per worker).
  void PinWorkers();
  /// Slot-0 collision guard (see the dense-slot contract): throws when a
  /// second non-worker thread enters a parallel region concurrently.
  class ExternalGuard;

  ThreadPoolOptions options_;
  CpuTopology topo_;
  std::vector<int> worker_cpu_;     ///< assigned CPU per worker (-1 = none)
  std::vector<int> worker_domain_;  ///< home socket domain per worker
  std::vector<size_t> domain_worker_count_;  ///< workers per domain (≥1 dom)
  size_t pinned_workers_ = 0;

  std::vector<std::thread> threads_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::deque<Task>> queues_;  ///< one per socket domain
  bool stop_ = false;

  std::atomic<uint64_t> steals_{0};
  std::atomic<int> external_active_{0};
  std::atomic<std::thread::id> external_owner_{};
  std::vector<Arena> arenas_;  ///< worker_count()+1 slots, slot = id+1
};

}  // namespace culda
