// CPU topology discovery for the topology-aware parallel runtime.
//
// The paper's whole design keeps the sampling hot path next to the memory
// that feeds it; the host-side analogue is knowing (a) which CPUs this
// process may actually run on and (b) how those CPUs group into NUMA nodes,
// so the ThreadPool can pin workers, keep per-socket work queues, and let
// read-mostly state (φ replicas, worker arenas) be first-touched on the
// node that will read it — all without a libnuma dependency.
//
// Two deliberate sourcing choices:
//
//   * The effective CPU set comes from `sched_getaffinity`, NOT
//     `std::thread::hardware_concurrency()`. Inside cgroup/cpuset-restricted
//     containers the latter reports the machine, not the allowance, so pools
//     sized from it oversubscribe; the affinity mask is the allowance.
//   * The node layout comes from `/sys/devices/system/node/node*/cpulist`
//     (parsed with the same `ParseCpuList` the tests feed canned fixtures),
//     intersected with the effective set. No /sys, one node, or a 1-core
//     cpuset all collapse to a single domain — the degenerate path on which
//     every consumer behaves exactly as the placement-blind runtime did.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace culda {

/// The effective CPU set and its NUMA grouping. `cpus` holds the CPU ids
/// this process may run on, ascending; `node_of[i]` is the *dense* node
/// index of `cpus[i]` (sys node numbering is compacted over the nodes that
/// actually contain effective CPUs, so node indices are always
/// 0..num_nodes-1 with no holes).
struct CpuTopology {
  std::vector<int> cpus;
  std::vector<int> node_of;  ///< parallel to `cpus`
  int num_nodes = 1;

  size_t cpu_count() const { return cpus.size(); }

  /// CPU ids per dense node, `num_nodes` entries, each ascending.
  std::vector<std::vector<int>> NodeCpus() const;

  /// Human-readable one-liner, e.g. "8 CPUs / 2 nodes (0-3 | 4-7)".
  std::string Summary() const;
};

/// Parses a kernel cpulist string ("0-3,8,10-11") into ascending CPU ids.
/// Whitespace (including the trailing newline sysfs emits) is tolerated;
/// anything else malformed — reversed ranges, negatives, stray tokens —
/// throws culda::Error. An empty/blank list parses to no CPUs (a memoryless
/// node's cpulist really is empty).
std::vector<int> ParseCpuList(std::string_view text);

/// Builds a topology from a /sys/devices/system/node-style directory
/// (entries `node<N>/cpulist`) intersected with `effective_cpus`. Effective
/// CPUs that no node claims — or all of them, when `node_dir` is missing or
/// holds no node entries — land on dense node 0. Exposed (with the path
/// parameter) so tests can run canned fixtures; production callers use
/// SystemTopology().
CpuTopology TopologyFromSys(const std::string& node_dir,
                            std::vector<int> effective_cpus);

/// CPUs this process may run on: `sched_getaffinity` where available,
/// falling back to 0..hardware_concurrency-1 (never empty; worst case {0}).
std::vector<int> EffectiveCpus();

/// The honest parallelism budget: size of the effective CPU set. This — not
/// std::thread::hardware_concurrency(), which over-reports inside
/// cpuset-restricted containers — is what default worker counts derive from.
size_t EffectiveCpuCount();

/// Default ThreadPool worker count for tools and benches:
/// EffectiveCpuCount() − 1, because the calling thread participates in every
/// ParallelFor — so N−1 workers saturate N CPUs without oversubscribing.
/// 0 on a 1-core host (inline execution, today's behavior).
size_t DefaultWorkerCount();

/// The running machine's topology (EffectiveCpus × /sys/devices/system/
/// node), discovered once and cached for the life of the process.
const CpuTopology& SystemTopology();

}  // namespace culda
