// Hardened on-disk persistence primitives, shared by every binary artifact
// (trained models, training checkpoints).
//
// Three layers, each defending against a different failure mode:
//
//   1. A versioned container frame —
//        magic(8) | u32 format_version | u64 payload_size | payload | u32 crc
//      where the CRC32 trailer covers everything after the magic. Readers
//      consume the payload in bounded chunks, so a hostile declared size can
//      never allocate more memory than the stream actually holds, and any
//      truncation or bit flip is rejected before a single field is parsed.
//   2. ByteReader — a bounds-checked cursor over the verified payload. Every
//      section count is validated against the bytes that actually remain
//      *before* any allocation (the check `count <= remaining / sizeof(T)`
//      is also immune to `count * sizeof(T)` overflow).
//   3. AtomicWriteFile — write `path.tmp`, flush, fsync, rename. With
//      `keep_previous`, the file being replaced is retained as `path.prev`,
//      giving callers a last-good artifact to fall back to when a crash (or
//      torn write at any other layer) destroys `path`.
//
// See docs/persistence.md for the full protocol and its crash matrix.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace culda::io {

/// Incremental CRC32 (IEEE 802.3 polynomial, zlib-compatible):
/// Crc32(b, Crc32(a)) == Crc32(a ++ b), and Crc32 of "123456789" from a zero
/// seed is 0xCBF43926.
uint32_t Crc32(std::span<const char> data, uint32_t crc = 0);

// ---------------------------------------------------------------- container

/// In-memory payload builder for the container frame. Sections are appended
/// with WritePod/WriteSpan and emitted as one framed blob by Finish — the
/// buffering is what lets the header carry the exact payload length and the
/// trailer carry its CRC without requiring a seekable output stream.
class ContainerWriter {
 public:
  template <typename T>
  void WritePod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    payload_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  template <typename T>
  void WriteSpan(std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    payload_.append(reinterpret_cast<const char*>(data.data()),
                    data.size() * sizeof(T));
  }

  size_t payload_size() const { return payload_.size(); }

  /// Writes magic | version | size | payload | crc to `out`. Throws
  /// culda::Error if the stream fails.
  void Finish(std::ostream& out, const char (&magic)[8],
              uint32_t version) const;

 private:
  std::string payload_;
};

/// Reads one container frame from `in` and returns its verified payload.
/// Validates, in order: the magic, the format version (before the payload is
/// consumed, so a pre-container v1 file gets a descriptive version error
/// instead of a garbage-length one), the declared length against the bytes
/// actually present (reading in bounded chunks — memory grows with real
/// bytes, never with the declared size), and the CRC32 trailer. With
/// `require_eof`, any bytes after the trailer are rejected as trailing
/// garbage. `context` names the artifact in error messages ("model",
/// "checkpoint"). Throws culda::Error on any defect.
std::string ReadContainer(std::istream& in, const char (&magic)[8],
                          uint32_t expected_version, std::string_view context,
                          bool require_eof = true);

/// Bounds-checked sequential reader over a verified payload. All sizes are
/// validated against the remaining bytes before allocating.
class ByteReader {
 public:
  ByteReader(std::string_view bytes, std::string_view context)
      : bytes_(bytes), context_(context) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  template <typename T>
  T ReadPod() {
    static_assert(std::is_trivially_copyable_v<T>);
    Require(sizeof(T), "field");
    T v{};
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Reads `count` elements. The count is validated against remaining()
  /// before the vector is allocated, so an inflated header count fails with
  /// a clean error instead of std::bad_alloc.
  template <typename T>
  std::vector<T> ReadVector(uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    CULDA_CHECK_MSG(count <= remaining() / sizeof(T),
                    context_ << " declares a section of " << count
                             << " elements (" << sizeof(T)
                             << " bytes each) but only " << remaining()
                             << " payload bytes remain");
    std::vector<T> v(static_cast<size_t>(count));
    std::memcpy(v.data(), bytes_.data() + pos_,
                static_cast<size_t>(count) * sizeof(T));
    pos_ += static_cast<size_t>(count) * sizeof(T);
    return v;
  }

  /// Rejects payloads longer than their sections: every byte must have been
  /// consumed (bit flips that enlarge an early count would otherwise shift
  /// later sections silently).
  void ExpectEnd() const {
    CULDA_CHECK_MSG(remaining() == 0,
                    context_ << " payload has " << remaining()
                             << " trailing bytes after the last section");
  }

 private:
  void Require(size_t bytes, const char* what) const {
    CULDA_CHECK_MSG(bytes <= remaining(),
                    context_ << " payload truncated: " << what << " needs "
                             << bytes << " bytes, " << remaining()
                             << " remain");
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  std::string context_;
};

// ------------------------------------------------------------ atomic files

bool FileExists(const std::string& path);

/// Crash-safe file replacement: `write` streams into `path.tmp`, which is
/// flushed, fsync'd, and renamed over `path` only on success. A crash at any
/// point leaves either the old `path` or the fully-written new one — never a
/// torn file under the final name. With `keep_previous`, an existing `path`
/// is rotated to `path.prev` before the rename, so the last-good artifact
/// survives even a later corruption of `path` itself. Throws culda::Error on
/// stream or rename failure (the target is left untouched).
void AtomicWriteFile(const std::string& path,
                     const std::function<void(std::ostream&)>& write,
                     bool keep_previous = false);

}  // namespace culda::io
