#include "util/topology.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "util/check.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace culda {

std::vector<std::vector<int>> CpuTopology::NodeCpus() const {
  std::vector<std::vector<int>> per_node(
      static_cast<size_t>(std::max(num_nodes, 1)));
  for (size_t i = 0; i < cpus.size(); ++i) {
    per_node[static_cast<size_t>(node_of[i])].push_back(cpus[i]);
  }
  return per_node;
}

namespace {

/// Compact "a-b,c" rendering of an ascending CPU id list.
std::string RenderCpuList(const std::vector<int>& cpus) {
  std::ostringstream os;
  for (size_t i = 0; i < cpus.size();) {
    size_t j = i;
    while (j + 1 < cpus.size() && cpus[j + 1] == cpus[j] + 1) ++j;
    if (i > 0) os << ",";
    os << cpus[i];
    if (j > i) os << "-" << cpus[j];
    i = j + 1;
  }
  return os.str();
}

}  // namespace

std::string CpuTopology::Summary() const {
  std::ostringstream os;
  os << cpus.size() << (cpus.size() == 1 ? " CPU / " : " CPUs / ")
     << num_nodes << (num_nodes == 1 ? " node" : " nodes") << " (";
  const auto per_node = NodeCpus();
  for (size_t n = 0; n < per_node.size(); ++n) {
    if (n > 0) os << " | ";
    os << RenderCpuList(per_node[n]);
  }
  os << ")";
  return os.str();
}

std::vector<int> ParseCpuList(std::string_view text) {
  std::vector<int> cpus;
  size_t i = 0;
  const auto skip_space = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  const auto read_int = [&]() -> int {
    skip_space();
    CULDA_CHECK_MSG(i < text.size() &&
                        std::isdigit(static_cast<unsigned char>(text[i])),
                    "malformed cpulist '" << std::string(text)
                                          << "': expected a CPU number at "
                                             "offset "
                                          << i);
    long value = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      value = value * 10 + (text[i] - '0');
      CULDA_CHECK_MSG(value <= 1 << 20, "cpulist CPU id out of range: '"
                                            << std::string(text) << "'");
      ++i;
    }
    return static_cast<int>(value);
  };

  skip_space();
  while (i < text.size()) {
    const int first = read_int();
    int last = first;
    skip_space();
    if (i < text.size() && text[i] == '-') {
      ++i;
      last = read_int();
      CULDA_CHECK_MSG(last >= first, "malformed cpulist '"
                                         << std::string(text)
                                         << "': reversed range " << first
                                         << "-" << last);
      skip_space();
    }
    for (int c = first; c <= last; ++c) cpus.push_back(c);
    if (i < text.size()) {
      CULDA_CHECK_MSG(text[i] == ',', "malformed cpulist '"
                                          << std::string(text)
                                          << "': unexpected character '"
                                          << text[i] << "'");
      ++i;
      skip_space();
      CULDA_CHECK_MSG(i < text.size(), "malformed cpulist '"
                                           << std::string(text)
                                           << "': trailing comma");
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology TopologyFromSys(const std::string& node_dir,
                            std::vector<int> effective_cpus) {
  std::sort(effective_cpus.begin(), effective_cpus.end());
  effective_cpus.erase(
      std::unique(effective_cpus.begin(), effective_cpus.end()),
      effective_cpus.end());

  // cpu id -> sys node number, from node<N>/cpulist entries. Unreadable or
  // malformed node files are skipped (a best-effort topology is still a
  // topology); no claims at all means one node.
  std::map<int, int> sys_node_of;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(node_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() < 5 || name.compare(0, 4, "node") != 0) continue;
    bool digits = true;
    for (size_t i = 4; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) digits = false;
    }
    if (!digits) continue;
    const int sys_node = std::stoi(name.substr(4));
    std::ifstream in(it->path() / "cpulist");
    if (!in.good()) continue;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
      for (const int cpu : ParseCpuList(text)) {
        sys_node_of.emplace(cpu, sys_node);  // first claim wins
      }
    } catch (const Error&) {
      continue;
    }
  }

  CpuTopology topo;
  topo.cpus = std::move(effective_cpus);
  topo.node_of.resize(topo.cpus.size(), -1);

  // Dense-compact the sys node numbers over the nodes that actually hold
  // effective CPUs, in ascending sys order; unclaimed CPUs go to dense
  // node 0 (which always exists — created here if no node claimed anything).
  std::map<int, int> dense_of;  // sys node -> dense index
  for (const int cpu : topo.cpus) {
    const auto found = sys_node_of.find(cpu);
    if (found != sys_node_of.end()) dense_of.emplace(found->second, 0);
  }
  int next_dense = 0;
  for (auto& [sys_node, dense] : dense_of) {
    (void)sys_node;
    dense = next_dense++;
  }
  for (size_t i = 0; i < topo.cpus.size(); ++i) {
    const auto found = sys_node_of.find(topo.cpus[i]);
    topo.node_of[i] =
        found != sys_node_of.end() ? dense_of.at(found->second) : 0;
  }
  topo.num_nodes = std::max(next_dense, 1);
  return topo;
}

std::vector<int> EffectiveCpus() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    }
  }
#endif
  if (cpus.empty()) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < hw; ++c) cpus.push_back(static_cast<int>(c));
  }
  return cpus;
}

size_t EffectiveCpuCount() { return EffectiveCpus().size(); }

size_t DefaultWorkerCount() {
  const size_t cpus = EffectiveCpuCount();
  return cpus > 1 ? cpus - 1 : 0;
}

const CpuTopology& SystemTopology() {
  static const CpuTopology* topo = new CpuTopology(
      TopologyFromSys("/sys/devices/system/node", EffectiveCpus()));
  return *topo;
}

}  // namespace culda
