#include "util/obs_cli.hpp"

#include <fstream>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/signal.hpp"

namespace culda {

void ObsToolSupport::RegisterFlags(const CliFlags& flags) {
  flags.GetString("metrics-out", "");
  flags.GetString("trace-out", "");
  flags.GetString("metrics-expose", "");
  flags.GetDouble("export-interval-ms", 1000.0);
}

ObsToolSupport::ObsToolSupport(const CliFlags& flags) {
  const std::string metrics_path = flags.GetString("metrics-out", "");
  const std::string expose_path = flags.GetString("metrics-expose", "");
  const double interval_ms = flags.GetDouble("export-interval-ms", 1000.0);
  trace_path_ = flags.GetString("trace-out", "");
  CULDA_CHECK_MSG(interval_ms >= 10.0,
                  "--export-interval-ms must be >= 10, got " << interval_ms);

  if (!metrics_path.empty()) sink_.Open(metrics_path);
  if (!metrics_path.empty() || !expose_path.empty()) {
    obs::Metrics().set_enabled(true);
  }
  if (!trace_path_.empty()) obs::SpanTracer::Global().set_enabled(true);

  const bool any = !metrics_path.empty() || !expose_path.empty() ||
                   !trace_path_.empty();
  if (any) {
    // An instrumented run gets the crash story too: recent spans/events
    // ride the lock-free ring, and a fatal signal dumps them to stderr.
    obs::FlightRecorder::Global().set_enabled(true);
    InstallFatalDumpHandler();
  }
  if (!expose_path.empty()) {
    obs::ExporterOptions opts;
    opts.interval_s = interval_ms / 1000.0;
    opts.expose_path = expose_path;
    opts.sink = sink_.active() ? &sink_ : nullptr;
    exporter_ = std::make_unique<obs::MetricsExporter>(std::move(opts));
    exporter_->Start();
  }
}

ObsToolSupport::~ObsToolSupport() { Shutdown(); }

void ObsToolSupport::WriteHostTrace() const {
  if (trace_path_.empty()) return;
  std::ofstream out(trace_path_, std::ios::trunc);
  CULDA_CHECK_MSG(out.good(),
                  "cannot open '" << trace_path_ << "' for writing");
  obs::WriteChromeTrace(obs::SpanTracer::Global(), out);
}

void ObsToolSupport::Shutdown() {
  if (exporter_ != nullptr) exporter_->Stop();
}

}  // namespace culda
