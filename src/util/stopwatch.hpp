// Wall-clock stopwatch used by CPU baselines and the benchmark harness.
// (GPU-side time comes from gpusim's simulated timeline, not from here.)
#pragma once

#include <chrono>

namespace culda {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace culda
