// Lightweight invariant checking for library code.
//
// CULDA_CHECK is always on (it guards API contracts and data-structure
// invariants that, if violated, would corrupt training state); CULDA_DCHECK
// compiles out in release builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace culda {

/// Thrown when a CULDA_CHECK fails or an API precondition is violated.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace culda

#define CULDA_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::culda::detail::CheckFailed(#cond, __FILE__, __LINE__, {});         \
  } while (0)

#define CULDA_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream culda_check_os_;                                  \
      culda_check_os_ << msg;                                              \
      ::culda::detail::CheckFailed(#cond, __FILE__, __LINE__,              \
                                   culda_check_os_.str());                 \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define CULDA_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define CULDA_DCHECK(cond) CULDA_CHECK(cond)
#endif
