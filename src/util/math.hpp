// Special functions needed by LDA: digamma (for Minka's fixed-point
// hyper-parameter updates). lgamma comes from <cmath>.
#pragma once

#include <cmath>

#include "util/check.hpp"

namespace culda {

/// Digamma ψ(x) = d/dx ln Γ(x) for x > 0: upward recurrence into the
/// asymptotic region, then the standard Bernoulli-series expansion.
/// Absolute error < 1e-10 for x ≥ 1e-6.
inline double Digamma(double x) {
  CULDA_DCHECK(x > 0);
  double result = 0.0;
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))));
  return result;
}

}  // namespace culda
