// Philox4x32-10 counter-based RNG (Salmon et al., SC'11).
//
// Counter-based generation is the natural fit for a SIMT simulator: every
// (seed, iteration, token, draw) tuple maps to an independent, reproducible
// 32-bit stream with no per-thread state to carry around. The trainer keys
// streams by (iteration, global token index) so results are identical under
// any chunk schedule or device count.
#pragma once

#include <array>
#include <cstdint>

namespace culda {

class Philox4x32 {
 public:
  using Counter = std::array<uint32_t, 4>;
  using Key = std::array<uint32_t, 2>;

  /// Runs the 10-round Philox4x32 bijection on `ctr` under `key`.
  static Counter Rounds(Counter ctr, Key key) {
    for (int round = 0; round < 10; ++round) {
      ctr = SingleRound(ctr, key);
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return ctr;
  }

 private:
  static constexpr uint32_t kMul0 = 0xD2511F53u;
  static constexpr uint32_t kMul1 = 0xCD9E8D57u;
  static constexpr uint32_t kWeyl0 = 0x9E3779B9u;
  static constexpr uint32_t kWeyl1 = 0xBB67AE85u;

  static Counter SingleRound(const Counter& ctr, const Key& key) {
    const uint64_t p0 = static_cast<uint64_t>(kMul0) * ctr[0];
    const uint64_t p1 = static_cast<uint64_t>(kMul1) * ctr[2];
    return Counter{
        static_cast<uint32_t>(p1 >> 32) ^ ctr[1] ^ key[0],
        static_cast<uint32_t>(p1),
        static_cast<uint32_t>(p0 >> 32) ^ ctr[3] ^ key[1],
        static_cast<uint32_t>(p0),
    };
  }
};

/// A stateless-stream view over Philox: constructed from a (seed, stream)
/// pair plus a 64-bit position, it hands out uniform values on demand.
/// Copies are cheap; a copy continues from the same position.
class PhiloxStream {
 public:
  PhiloxStream(uint64_t seed, uint64_t stream)
      : key_{static_cast<uint32_t>(seed), static_cast<uint32_t>(seed >> 32)},
        hi_(stream) {}

  /// Next raw 32-bit value.
  uint32_t NextU32() {
    if (lane_ == 4) {
      block_ = Philox4x32::Rounds(
          {static_cast<uint32_t>(pos_), static_cast<uint32_t>(pos_ >> 32),
           static_cast<uint32_t>(hi_), static_cast<uint32_t>(hi_ >> 32)},
          key_);
      ++pos_;
      lane_ = 0;
    }
    return block_[lane_++];
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    // 53 random bits / 2^53.
    const uint64_t hi = NextU32();
    const uint64_t lo = NextU32();
    const uint64_t bits = ((hi << 32) | lo) >> 11;
    return static_cast<double>(bits) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(NextU32() >> 8) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint32_t NextBelow(uint32_t n) {
    // Lemire's multiply-shift rejection-free mapping is fine here: bias is
    // at most 2^-32 per draw, far below Gibbs-sampling noise.
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(NextU32()) * n) >> 32);
  }

 private:
  Philox4x32::Key key_;
  uint64_t hi_;
  uint64_t pos_ = 0;
  Philox4x32::Counter block_{};
  int lane_ = 4;  // forces a refill on first use
};

}  // namespace culda
