#include "util/io.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/obs.hpp"

namespace culda::io {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

/// Best-effort durability: rename gives atomicity, fsync gives persistence
/// across power loss. Failure to sync is not fatal (some filesystems refuse
/// it); failure to *write* is caught earlier via the stream state.
void FsyncPath(const std::string& path) {
  CULDA_OBS_TIMED("io.fsync_s");
  CULDA_OBS_COUNT("io.fsyncs", 1);
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

uint32_t Crc32(std::span<const char> data, uint32_t crc) {
  crc = ~crc;
  for (const char ch : data) {
    crc = kCrcTable[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

void ContainerWriter::Finish(std::ostream& out, const char (&magic)[8],
                             uint32_t version) const {
  char header[12];
  const uint64_t size = payload_.size();
  std::memcpy(header, &version, sizeof(version));
  std::memcpy(header + 4, &size, sizeof(size));
  uint32_t crc = Crc32({header, sizeof(header)});
  crc = Crc32(payload_, crc);

  out.write(magic, 8);
  out.write(header, sizeof(header));
  out.write(payload_.data(),
            static_cast<std::streamsize>(payload_.size()));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  CULDA_CHECK_MSG(out.good(), "failed writing container payload ("
                                  << payload_.size() << " bytes)");
}

std::string ReadContainer(std::istream& in, const char (&magic)[8],
                          uint32_t expected_version,
                          std::string_view context, bool require_eof) {
  char got_magic[8];
  in.read(got_magic, sizeof(got_magic));
  CULDA_CHECK_MSG(in.gcount() == sizeof(got_magic) &&
                      std::memcmp(got_magic, magic, sizeof(got_magic)) == 0,
                  "not a CuLDA " << context << " file (bad magic)");

  char header[12];
  in.read(header, sizeof(header));
  CULDA_CHECK_MSG(in.gcount() == sizeof(header),
                  context << " truncated inside the container header");
  uint32_t version = 0;
  uint64_t declared = 0;
  std::memcpy(&version, header, sizeof(version));
  std::memcpy(&declared, header + 4, sizeof(declared));
  CULDA_CHECK_MSG(
      version == expected_version,
      context << " format version " << version
              << " is not supported by this build (expected "
              << expected_version
              << (version < expected_version
                      ? "); pre-checksum files must be regenerated"
                      : "); this file was written by a newer build"));

  // Bounded chunked read: allocation tracks bytes actually present, so a
  // hostile `declared` costs at most one chunk of over-allocation before the
  // truncation is detected — never an OOM.
  constexpr uint64_t kChunk = 1 << 20;
  std::string payload;
  uint64_t got = 0;
  while (got < declared) {
    const size_t step =
        static_cast<size_t>(std::min<uint64_t>(kChunk, declared - got));
    payload.resize(static_cast<size_t>(got) + step);
    in.read(payload.data() + got, static_cast<std::streamsize>(step));
    const uint64_t n = static_cast<uint64_t>(in.gcount());
    got += n;
    CULDA_CHECK_MSG(n == step,
                    context << " truncated: header declares " << declared
                            << " payload bytes but the stream ends after "
                            << got);
  }

  uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
  CULDA_CHECK_MSG(in.gcount() == sizeof(stored_crc),
                  context << " truncated: CRC32 trailer missing");
  uint32_t crc = Crc32({header, sizeof(header)});
  crc = Crc32(payload, crc);
  CULDA_CHECK_MSG(crc == stored_crc,
                  context << " corrupt: CRC32 mismatch (stored 0x" << std::hex
                          << stored_crc << ", computed 0x" << crc << ")");

  if (require_eof) {
    CULDA_CHECK_MSG(in.peek() == std::char_traits<char>::eof(),
                    context << " has trailing garbage after the CRC trailer");
  }
  return payload;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

void AtomicWriteFile(const std::string& path,
                     const std::function<void(std::ostream&)>& write,
                     bool keep_previous) {
  CULDA_OBS_TIMED("io.atomic_write_s");
  CULDA_OBS_COUNT("io.files_written", 1);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    CULDA_CHECK_MSG(out.good(), "cannot open '" << tmp << "' for writing");
    write(out);
    out.flush();
    CULDA_CHECK_MSG(out.good(), "failed writing '" << tmp << "'");
    const auto pos = out.tellp();
    if (pos > 0) {
      CULDA_OBS_COUNT("io.bytes_written", static_cast<uint64_t>(pos));
    }
  }
  FsyncPath(tmp);
  if (keep_previous && FileExists(path)) {
    const std::string prev = path + ".prev";
    std::remove(prev.c_str());
    CULDA_CHECK_MSG(std::rename(path.c_str(), prev.c_str()) == 0,
                    "cannot rotate '" << path << "' to '" << prev << "'");
  }
  CULDA_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "cannot rename '" << tmp << "' over '" << path << "'");
}

}  // namespace culda::io
