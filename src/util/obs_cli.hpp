// Shared observability flag surface for the tools.
//
// All four tools (culda_train, culda_infer, culda_topics, culda_serve)
// accept the same observability flags; this helper is the one place their
// meaning lives, instead of a per-tool copy of the setup block:
//
//   --metrics-out=P        JSONL metrics sink (header line + snapshots;
//                          enables the registry)
//   --trace-out=P          host wall-clock spans as Chrome trace JSON
//                          (enables the tracer)
//   --metrics-expose=P     Prometheus text-exposition file, atomically
//                          replaced every --export-interval-ms by a
//                          background exporter (enables the registry)
//   --export-interval-ms=N exporter period (default 1000)
//
// Constructing ObsToolSupport reads the flags and arms everything: sink,
// registry, tracer, the live exporter, and — whenever any observability
// is on — the flight recorder plus the fatal-signal dump handler
// (util/signal.hpp), so a crashed instrumented run leaves a last-N-events
// report on stderr. Shutdown() (idempotent, also run by the destructor)
// stops the exporter with one final export; tools call it after their
// last milestone snapshot so the exposed file reflects the final state —
// for the serving daemon, after the SIGTERM drain.
#pragma once

#include <memory>
#include <string>

#include "obs/export.hpp"
#include "obs/sink.hpp"
#include "util/cli.hpp"

namespace culda {

class ObsToolSupport {
 public:
  /// Marks the observability flags as read — tools call this alongside
  /// their other flag reads so RejectUnknownFlags reports typos as usage
  /// errors — without arming anything. The real ObsToolSupport is
  /// constructed after the usage check passes.
  static void RegisterFlags(const CliFlags& flags);

  explicit ObsToolSupport(const CliFlags& flags);
  ~ObsToolSupport();
  ObsToolSupport(const ObsToolSupport&) = delete;
  ObsToolSupport& operator=(const ObsToolSupport&) = delete;

  /// The JSONL sink (inactive unless --metrics-out was given). Tools write
  /// their milestone snapshots here as before.
  obs::JsonlSink& sink() { return sink_; }

  bool tracing() const { return !trace_path_.empty(); }
  const std::string& trace_path() const { return trace_path_; }

  /// Writes the tracer's spans as a host-only Chrome trace to
  /// --trace-out. No-op without the flag. Tools with a simulated device
  /// timeline (culda_train) write a merged trace themselves instead,
  /// using trace_path().
  void WriteHostTrace() const;

  /// Stops the exporter (final export included). Idempotent.
  void Shutdown();

 private:
  std::string trace_path_;
  obs::JsonlSink sink_;
  std::unique_ptr<obs::MetricsExporter> exporter_;
};

}  // namespace culda
