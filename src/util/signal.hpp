// Cooperative SIGINT/SIGTERM handling for the long-running tools.
//
// The tools' loops are the wrong place to die mid-iteration: culda_train
// has atomic checkpoints that a hard kill throws away, and culda_serve has
// queued requests that deserve answers. The contract is one process-wide
// flag, set asynchronously by the handler and polled at safe boundaries:
//
//   culda_train  — checked between iterations: finish the sweep, write a
//                  final checkpoint/model, exit kInterruptedExitCode.
//   culda_infer  — stop reading stdin, flush the current batch, exit
//                  kInterruptedExitCode.
//   culda_serve  — stop accepting, drain the queue (answering every
//                  admitted request), flush metrics, exit 0 — a signalled
//                  drain is a *clean* shutdown for a daemon.
//
// The handler is async-signal-safe by doing nothing but two sig_atomic_t
// stores; it is installed without SA_RESTART so blocking reads (stdin,
// sockets) return EINTR and their loops notice the flag promptly.
#pragma once

namespace culda {

/// Process exit code for "interrupted by SIGINT/SIGTERM, state saved
/// cleanly" (checkpoint written / batch flushed). Distinct from 0 (done),
/// 1 (input error), 2 (CLI usage), 3 (internal error); see docs/serving.md.
inline constexpr int kInterruptedExitCode = 4;

/// Installs the SIGINT/SIGTERM flag handler. Idempotent; call once near
/// the top of main, before starting work worth finishing.
void InstallShutdownHandler();

/// True once any handled signal has arrived.
bool ShutdownRequested();

/// The signal that arrived (SIGINT/SIGTERM), or 0. If several arrived the
/// last one wins — only "did we get one" drives behavior.
int ShutdownSignal();

/// Clears the flag (tests that simulate a signal via std::raise).
void ResetShutdownFlag();

/// Installs handlers for fatal signals (SIGSEGV, SIGBUS, SIGFPE, SIGILL,
/// SIGABRT) that dump the obs flight recorder's last-N-events report to
/// stderr and then re-raise with the default disposition, so the usual
/// death (core dump, nonzero exit) still happens. The dump path is
/// async-signal-safe (obs/flight_recorder.hpp). Idempotent; installed by
/// tools alongside observability setup.
void InstallFatalDumpHandler();

}  // namespace culda
