#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <string>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace culda {

namespace {

// Identity of the current thread within its owning pool; lets kernels map
// any executing thread to a dense accumulator slot without locks.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_worker_id = -1;

/// Shared state of one RunShards call. Helper tasks hold it by shared_ptr:
/// a task that wakes up after the call already returned (because the caller
/// drained every shard itself) finds no shard to claim and exits without
/// touching the caller's stack.
struct ShardJob {
  size_t shards = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  const std::function<void(size_t)>* shard_fn = nullptr;  ///< valid while done < shards
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  /// Claims and runs shards until the counter is exhausted. Every claimed
  /// shard is counted as done even if it throws, so `done == shards` is
  /// reached unconditionally and the caller's wait always terminates.
  void Drain() {
    for (;;) {
      const size_t s = next.fetch_add(1);
      if (s >= shards) return;
      try {
        (*shard_fn)(s);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      size_t finished;
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        finished = ++done;
      }
      if (finished == shards) done_cv.notify_all();
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

int ThreadPool::current_worker_id() const {
  return tl_pool == this ? tl_worker_id : -1;
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  tl_pool = this;
  tl_worker_id = static_cast<int>(worker_id);
#ifndef CULDA_OBS_OFF
  // One gauge per worker slot: merged busy seconds need no hot-path locks
  // because each gauge has exactly one writer thread.
  obs::Gauge& busy_s = obs::Metrics().GetGauge(
      "threadpool.worker" + std::to_string(worker_id) + ".busy_s");
#endif
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
#ifndef CULDA_OBS_OFF
    if (obs::MetricsEnabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      task();
      busy_s.Add(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
      CULDA_OBS_COUNT("threadpool.tasks_run", 1);
      continue;
    }
#endif
    task();
  }
}

void ThreadPool::RunShards(size_t shards,
                           const std::function<void(size_t)>& shard_fn) {
  auto job = std::make_shared<ShardJob>();
  job->shards = shards;
  job->shard_fn = &shard_fn;

  // One looping helper per worker (capped at the shard count); each claims
  // shards until none remain, so even a single helper — or the caller alone,
  // when every worker is busy inside another caller's body — completes the
  // job. This is what makes nested use from trainer-level parallelism safe.
  const size_t helpers = std::min(shards, threads_.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
#ifndef CULDA_OBS_OFF
    if (obs::MetricsEnabled()) {
      static obs::Histogram& wait_h =
          obs::Metrics().GetHistogram("threadpool.queue_wait_s");
      const auto pushed = std::chrono::steady_clock::now();
      for (size_t h = 0; h < helpers; ++h) {
        tasks_.push([job, pushed] {
          wait_h.Record(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - pushed)
                            .count());
          job->Drain();
        });
      }
    } else
#endif
    {
      for (size_t h = 0; h < helpers; ++h) {
        tasks_.push([job] { job->Drain(); });
      }
    }
  }
  if (helpers > 0) cv_.notify_all();

  job->Drain();  // caller participates

  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock, [&] { return job->done == job->shards; });
  }
  if (job->first_error) std::rethrow_exception(job->first_error);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunked claiming: ~4 chunks per executing thread amortizes the claim
  // (one atomic + one condvar-free loop per chunk) while keeping dynamic
  // load balance for skewed per-item costs (word blocks are Zipfian).
  const size_t lanes = threads_.size() + 1;
  const size_t chunk = std::max<size_t>(1, n / (lanes * 4));
  const size_t shards = (n + chunk - 1) / chunk;
  // Per-item error capture so a throwing item never silently skips the rest
  // of its chunk — every index runs, then the first error is rethrown.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  RunShards(shards, [&](size_t s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(n, begin + chunk);
    for (size_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelForRanges(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t ranges = std::min(n, threads_.size() + 1);
  if (threads_.empty() || ranges == 1) {
    fn(0, n);
    return;
  }

  // Deterministic near-equal partition: the first n % ranges ranges get one
  // extra item. Boundaries depend only on (n, worker_count()).
  const size_t base = n / ranges;
  const size_t extra = n % ranges;
  RunShards(ranges, [&](size_t r) {
    const size_t begin = r * base + std::min(r, extra);
    const size_t end = begin + base + (r < extra ? 1 : 0);
    fn(begin, end);
  });
}

}  // namespace culda
