#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace culda {

ThreadPool::ThreadPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const size_t shards = std::min(n, threads_.size());
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  auto shard = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      ++done;
    }
    done_cv.notify_one();
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t s = 0; s < shards; ++s) tasks_.push(shard);
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done == shards; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace culda
