#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <memory>
#include <string>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace culda {

namespace {

// Identity of the current thread within its owning pool; lets kernels map
// any executing thread to a dense accumulator slot without locks.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_worker_id = -1;

/// Shared state of one RunShards call. Helper tasks hold it by shared_ptr:
/// a task that wakes up after the call already returned (because the caller
/// drained every shard itself) finds no shard to claim and exits without
/// touching the caller's stack.
///
/// The shard index space [0, shards) is partitioned into one contiguous
/// range per socket domain (sized by the number of threads executing there),
/// each with its own claim counter: a drainer exhausts its home range before
/// touching another domain's, so on a multi-socket pool almost all claims —
/// and the memory the shard bodies touch — stay node-local, and cross-socket
/// claims (steals) happen only when a home range runs dry.
struct ShardJob {
  size_t shards = 0;
  const std::function<void(size_t)>* shard_fn = nullptr;  ///< valid while done < shards
  size_t domains = 1;
  std::vector<size_t> range_begin;               ///< domains + 1 boundaries
  std::unique_ptr<std::atomic<size_t>[]> next;   ///< per-domain claim offset
  std::atomic<uint64_t>* steals = nullptr;       ///< owning pool's counter
  size_t done = 0;  ///< guarded by done_mutex
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  /// Claims and runs shards until every domain's counter is exhausted,
  /// starting from `home`. Every claimed shard is counted as done even if
  /// it throws, so `done == shards` is reached unconditionally and the
  /// caller's wait always terminates.
  void Drain(size_t home) {
    for (size_t off = 0; off < domains; ++off) {
      const size_t d = (home + off) % domains;
      const size_t len = range_begin[d + 1] - range_begin[d];
      for (;;) {
        const size_t idx = next[d].fetch_add(1);
        if (idx >= len) break;
        if (off != 0) {
          steals->fetch_add(1, std::memory_order_relaxed);
          CULDA_OBS_COUNT("threadpool.steals", 1);
        }
        try {
          (*shard_fn)(range_begin[d] + idx);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        size_t finished;
        {
          std::lock_guard<std::mutex> lock(done_mutex);
          finished = ++done;
        }
        if (finished == shards) done_cv.notify_all();
      }
    }
  }
};

}  // namespace

/// RAII enforcement of the dense-slot contract: at most one non-worker
/// thread may be inside a parallel region of this pool at a time (it owns
/// slot 0). Workers pass through untouched — their slots never collide —
/// and the owning external thread may re-enter (a nested launch issued from
/// the caller-participation path reuses slot 0 on the same thread, which is
/// safe); only a *different* external thread trips the check.
class ThreadPool::ExternalGuard {
 public:
  explicit ExternalGuard(ThreadPool* pool) {
    if (pool->current_worker_id() != -1) return;
    const std::thread::id me = std::this_thread::get_id();
    const int prev =
        pool->external_active_.fetch_add(1, std::memory_order_acq_rel);
    if (prev == 0) {
      pool->external_owner_.store(me, std::memory_order_release);
      owner_ = true;
    } else if (pool->external_owner_.load(std::memory_order_acquire) != me) {
      pool->external_active_.fetch_sub(1, std::memory_order_acq_rel);
      CULDA_CHECK_MSG(false,
                      "concurrent ParallelFor calls from "
                          << prev + 1
                          << " non-worker threads would collide on dense "
                             "accumulator slot 0 (see the "
                             "ThreadPool::current_worker_id contract); "
                             "drive the pool from one external thread at a "
                             "time");
    }
    pool_ = pool;
  }
  ~ExternalGuard() {
    if (pool_ == nullptr) return;
    // Clear ownership *before* the count drops to zero so a later thread
    // can never observe a stale owner id equal to its own.
    if (owner_) {
      pool_->external_owner_.store(std::thread::id{},
                                   std::memory_order_release);
    }
    pool_->external_active_.fetch_sub(1, std::memory_order_acq_rel);
  }
  ExternalGuard(const ExternalGuard&) = delete;
  ExternalGuard& operator=(const ExternalGuard&) = delete;

 private:
  ThreadPool* pool_ = nullptr;
  bool owner_ = false;
};

ThreadPool::ThreadPool(size_t workers, ThreadPoolOptions options)
    : options_(options),
      topo_(options.topology != nullptr ? *options.topology
                                        : SystemTopology()) {
  worker_cpu_.assign(workers, -1);
  worker_domain_.assign(workers, 0);
  if (workers > 0 && topo_.cpu_count() > 0) {
    // Round-robin workers over the effective CPUs, then compact the set of
    // NUMA nodes that actually received a worker into dense domain indices
    // (ascending node order) — so every domain has at least one worker and
    // a single-node topology yields exactly one domain.
    std::map<int, int> domain_of_node;
    for (size_t w = 0; w < workers; ++w) {
      domain_of_node.emplace(topo_.node_of[w % topo_.cpu_count()], 0);
    }
    int next_domain = 0;
    for (auto& [node, domain] : domain_of_node) {
      (void)node;
      domain = next_domain++;
    }
    for (size_t w = 0; w < workers; ++w) {
      const size_t slot = w % topo_.cpu_count();
      worker_cpu_[w] = topo_.cpus[slot];
      worker_domain_[w] = domain_of_node.at(topo_.node_of[slot]);
    }
  }
  size_t domain_count = 1;
  for (const int d : worker_domain_) {
    domain_count = std::max(domain_count, static_cast<size_t>(d) + 1);
  }
  domain_worker_count_.assign(domain_count, 0);
  for (const int d : worker_domain_) {
    ++domain_worker_count_[static_cast<size_t>(d)];
  }
  queues_.resize(domain_count);
  arenas_.resize(workers + 1);

  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (options_.pin && workers > 0) PinWorkers();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::PinWorkers() {
#if defined(__linux__)
  size_t failed = 0;
  for (size_t w = 0; w < threads_.size(); ++w) {
    const int cpu = worker_cpu_[w];
    bool ok = false;
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(cpu, &set);
      ok = pthread_setaffinity_np(threads_[w].native_handle(), sizeof(set),
                                  &set) == 0;
    }
    if (ok) {
      ++pinned_workers_;
    } else {
      ++failed;
    }
  }
  if (failed > 0) {
    CULDA_LOG(Warn) << "could not pin " << failed << " of " << threads_.size()
                    << " workers to their CPUs; they run unpinned";
  }
#else
  CULDA_LOG(Warn) << "worker pinning is not supported on this platform; all "
                  << threads_.size() << " workers run unpinned";
#endif
}

int ThreadPool::current_worker_id() const {
  return tl_pool == this ? tl_worker_id : -1;
}

int ThreadPool::socket_of_worker(int worker_id) const {
  CULDA_CHECK(worker_id >= 0 &&
              static_cast<size_t>(worker_id) < worker_domain_.size());
  return worker_domain_[static_cast<size_t>(worker_id)];
}

int ThreadPool::current_socket() const {
  const int id = current_worker_id();
  return id >= 0 ? worker_domain_[static_cast<size_t>(id)] : 0;
}

std::span<std::byte> ThreadPool::WorkerArena(size_t bytes) {
  Arena& arena = arenas_[static_cast<size_t>(current_worker_id() + 1)];
  if (arena.capacity < bytes) {
    // Round up to whole pages and zero-fill on *this* thread: the zeroing is
    // the first touch, so with pinned workers the kernel places the pages on
    // the caller's NUMA node.
    const size_t cap = (bytes + 4095) / 4096 * 4096;
    auto data = std::make_unique<std::byte[]>(cap);
    std::fill_n(data.get(), cap, std::byte{0});
    arena.data = std::move(data);
    arena.capacity = cap;
  }
  return {arena.data.get(), bytes};
}

bool ThreadPool::ClaimableLocked(size_t home) const {
  if (!queues_[home].empty()) return true;
  for (size_t d = 0; d < queues_.size(); ++d) {
    if (d == home) continue;
    for (const Task& t : queues_[d]) {
      if (t.stealable) return true;
    }
  }
  return false;
}

bool ThreadPool::PopTaskLocked(size_t home, Task* task) {
  auto& mine = queues_[home];
  if (!mine.empty()) {
    *task = std::move(mine.front());
    mine.pop_front();
    return true;
  }
  for (size_t off = 1; off < queues_.size(); ++off) {
    auto& other = queues_[(home + off) % queues_.size()];
    for (auto it = other.begin(); it != other.end(); ++it) {
      if (it->stealable) {
        *task = std::move(*it);
        other.erase(it);
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  tl_pool = this;
  tl_worker_id = static_cast<int>(worker_id);
  const size_t home = static_cast<size_t>(worker_domain_[worker_id]);
#ifndef CULDA_OBS_OFF
  // One gauge per worker slot: merged busy seconds need no hot-path locks
  // because each gauge has exactly one writer thread. The socket label makes
  // per-domain utilization greppable ("is socket 1 idle?").
  obs::Gauge& busy_s = obs::Metrics().GetGauge(
      "threadpool.worker" + std::to_string(worker_id) + ".socket" +
      std::to_string(home) + ".busy_s");
#endif
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || ClaimableLocked(home); });
      if (!PopTaskLocked(home, &task)) {
        if (stop_) return;
        continue;  // only unstealable work elsewhere; wait again
      }
    }
#ifndef CULDA_OBS_OFF
    if (obs::MetricsEnabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      task.fn();
      busy_s.Add(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
      CULDA_OBS_COUNT("threadpool.tasks_run", 1);
      continue;
    }
#endif
    task.fn();
  }
}

void ThreadPool::ForEachSocket(const std::function<void(size_t)>& fn) {
  const size_t domain_count = socket_count();
  // Inline when there is nobody to delegate to, and on a pool worker: a
  // worker draining its own domain's queue from inside a task would wait on
  // itself. Either way fn still runs once per domain, in order.
  if (threads_.empty() || current_worker_id() != -1) {
    for (size_t d = 0; d < domain_count; ++d) fn(d);
    return;
  }
  struct SocketJob {
    size_t done = 0;  ///< guarded by mutex
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr first_error;
  };
  auto job = std::make_shared<SocketJob>();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t d = 0; d < domain_count; ++d) {
      // Not stealable: the whole point is that fn(d) executes — and first-
      // touches memory — on a worker whose home really is domain d. Every
      // domain has at least one worker by construction, so nothing strands.
      queues_[d].push_back(Task{
          [job, d, domain_count, &fn] {
            try {
              fn(d);
            } catch (...) {
              std::lock_guard<std::mutex> jlock(job->mutex);
              if (!job->first_error) {
                job->first_error = std::current_exception();
              }
            }
            size_t finished;
            {
              std::lock_guard<std::mutex> jlock(job->mutex);
              finished = ++job->done;
            }
            if (finished == domain_count) job->cv.notify_all();
          },
          /*stealable=*/false});
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(job->mutex);
  job->cv.wait(lock, [&] { return job->done == domain_count; });
  if (job->first_error) std::rethrow_exception(job->first_error);
}

void ThreadPool::RunShards(size_t shards,
                           const std::function<void(size_t)>& shard_fn) {
  const size_t home = static_cast<size_t>(current_socket());
  auto job = std::make_shared<ShardJob>();
  job->shards = shards;
  job->shard_fn = &shard_fn;
  job->steals = &steals_;
  job->domains = socket_count();
  // Split the shard index space into one contiguous range per domain, sized
  // by how many threads execute there (that domain's workers, plus this
  // caller in its home domain). The split only steers scheduling — results
  // are interleaving-independent — so proportionality is all that matters.
  job->range_begin.assign(job->domains + 1, 0);
  {
    size_t total = 1;  // the caller
    for (const size_t c : domain_worker_count_) total += c;
    size_t prefix = 0;
    for (size_t d = 0; d < job->domains; ++d) {
      prefix += domain_worker_count_[d] + (d == home ? 1 : 0);
      job->range_begin[d + 1] = shards * prefix / total;
    }
  }
  job->next = std::make_unique<std::atomic<size_t>[]>(job->domains);
  for (size_t d = 0; d < job->domains; ++d) {
    job->next[d].store(0, std::memory_order_relaxed);
  }

  // One looping helper per worker (capped at the shard count); each claims
  // shards until none remain, so even a single helper — or the caller alone,
  // when every worker is busy inside another caller's body — completes the
  // job. This is what makes nested use from trainer-level parallelism safe.
  // Helper h lands on worker h's home queue; helpers are stealable, so an
  // idle domain picks up slack even when its own helpers were consumed.
  const size_t helpers = std::min(shards, threads_.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
#ifndef CULDA_OBS_OFF
    if (obs::MetricsEnabled()) {
      static obs::Histogram& wait_h =
          obs::Metrics().GetHistogram("threadpool.queue_wait_s");
      const auto pushed = std::chrono::steady_clock::now();
      for (size_t h = 0; h < helpers; ++h) {
        queues_[static_cast<size_t>(worker_domain_[h])].push_back(
            Task{[this, job, pushed] {
                   wait_h.Record(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - pushed)
                                     .count());
                   job->Drain(static_cast<size_t>(current_socket()));
                 },
                 /*stealable=*/true});
      }
    } else
#endif
    {
      for (size_t h = 0; h < helpers; ++h) {
        queues_[static_cast<size_t>(worker_domain_[h])].push_back(
            Task{[this, job] {
                   job->Drain(static_cast<size_t>(current_socket()));
                 },
                 /*stealable=*/true});
      }
    }
  }
  if (helpers > 0) cv_.notify_all();

  job->Drain(home);  // caller participates

  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock, [&] { return job->done == job->shards; });
  }
  if (job->first_error) std::rethrow_exception(job->first_error);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  ExternalGuard guard(this);
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunked claiming: ~4 chunks per executing thread amortizes the claim
  // (one atomic + one condvar-free loop per chunk) while keeping dynamic
  // load balance for skewed per-item costs (word blocks are Zipfian).
  const size_t lanes = threads_.size() + 1;
  const size_t chunk = std::max<size_t>(1, n / (lanes * 4));
  const size_t shards = (n + chunk - 1) / chunk;
  // Per-item error capture so a throwing item never silently skips the rest
  // of its chunk — every index runs, then the first error is rethrown.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  RunShards(shards, [&](size_t s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(n, begin + chunk);
    for (size_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelForRanges(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  ExternalGuard guard(this);
  const size_t ranges = std::min(n, threads_.size() + 1);
  if (threads_.empty() || ranges == 1) {
    fn(0, n);
    return;
  }

  // Deterministic near-equal partition: the first n % ranges ranges get one
  // extra item. Boundaries depend only on (n, worker_count()).
  const size_t base = n / ranges;
  const size_t extra = n % ranges;
  RunShards(ranges, [&](size_t r) {
    const size_t begin = r * base + std::min(r, extra);
    const size_t end = begin + base + (r < extra ? 1 : 0);
    fn(begin, end);
  });
}

}  // namespace culda
