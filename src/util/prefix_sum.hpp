// Prefix-sum (scan) helpers.
//
// The θ-update kernel compacts a dense per-document topic histogram back to
// CSR with an exclusive scan over non-zero flags (Section 6.2 of the paper);
// these helpers are also used by the chunk partitioner and the index tree.
#pragma once

#include <cstddef>
#include <span>

#include "util/check.hpp"

namespace culda {

/// In-place inclusive prefix sum.
template <typename T>
void InclusiveScan(std::span<T> data) {
  T acc = T{};
  for (auto& v : data) {
    acc += v;
    v = acc;
  }
}

/// Exclusive prefix sum of `in` into `out`; returns the grand total.
/// `out.size()` must equal `in.size()`.
template <typename T>
T ExclusiveScan(std::span<const T> in, std::span<T> out) {
  CULDA_CHECK(in.size() == out.size());
  T acc = T{};
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
  return acc;
}

/// Returns the index of the first element of the inclusive-prefix-sum array
/// `prefix` that is strictly greater than `u` (i.e. samples a multinomial
/// whose cumulative masses are `prefix`). `prefix` must be non-empty and
/// non-decreasing; if `u >= prefix.back()` the last index is returned, which
/// absorbs floating-point round-off at the top of the distribution.
template <typename T>
size_t UpperBoundSearch(std::span<const T> prefix, T u) {
  CULDA_DCHECK(!prefix.empty());
  size_t lo = 0, hi = prefix.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (prefix[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo < prefix.size() ? lo : prefix.size() - 1;
}

}  // namespace culda
