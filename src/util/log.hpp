// Minimal leveled logger.
//
// The trainer and benchmarks log progress at Info; kernels never log on the
// hot path. The level is process-global and settable from CLI flags.
#pragma once

#include <sstream>
#include <string>

namespace culda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {
void LogLine(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace culda

#define CULDA_LOG(level)                                      \
  if (::culda::LogLevel::k##level >= ::culda::GetLogLevel()) \
  ::culda::detail::LogMessage(::culda::LogLevel::k##level)
