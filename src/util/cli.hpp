// Tiny command-line flag parser for the examples and benchmark binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are an error so experiment scripts fail loudly.
//
// Usage printing (shared by every tool): each tool owns a usage string and
// calls `HelpRequested()` first (--help → print usage to stdout, exit 0)
// and `RejectUnknownFlags()` after reading all its flags (unknown flag →
// "unknown flag --x" + usage on stderr, exit 2 — the same exit code PR 5's
// strict value parsing reserves for CLI mistakes).
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/log.hpp"

namespace culda {

class CliFlags {
 public:
  /// Parses argv; throws culda::Error on malformed input. Positional
  /// arguments (non `--` tokens) are collected in order.
  CliFlags(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Returns the flags that were never read by any Get*/Has call; the
  /// benches call this after parsing to reject typos.
  std::vector<std::string> UnusedFlags() const;

  /// True when --help was passed. Call before reading any other flag so
  /// `tool --help` succeeds even with otherwise-invalid or missing
  /// arguments; the tool prints its usage and exits 0.
  bool HelpRequested() const { return Has("help"); }

  /// Writes `usage` (a full usage text, ending in a newline) to `out`.
  static void PrintUsage(std::FILE* out, std::string_view usage);

  /// Call after every flag has been read: if any flag was never consumed,
  /// prints "unknown flag --x" plus the usage text to stderr and returns
  /// the CLI-usage exit code 2; returns 0 otherwise. Typical use:
  ///   if (const int rc = flags.RejectUnknownFlags(kUsage)) return rc;
  int RejectUnknownFlags(std::string_view usage) const;

  /// Reads the shared logging flags — `--log-level=debug|info|warn|error|off`
  /// and the `--quiet` shorthand (→ warn; `--log-level` wins when both are
  /// given) — applies the result via SetLogLevel, and returns it. Every tool
  /// calls this once right after parsing so the flags mean the same thing
  /// everywhere.
  LogLevel ApplyLogFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace culda
