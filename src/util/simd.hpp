// Width-agnostic SIMD batched loops for the exact-sampler hot paths
// (docs/samplers.md, "SIMD hot loops").
//
// Everything here is bit-identical to the scalar path *by construction*:
// the batched variants only (a) skip 32-byte blocks that contribute nothing
// (zero-run skipping — the surviving elements are processed in the original
// order by the original scalar expressions), (b) count nonzeros with integer
// arithmetic (exact), or (c) apply the same single float/double operation
// element-wise (no reassociation, no FMA contraction is introduced — each
// lane computes exactly the scalar expression). That is what lets every
// bit-identity test in the repo pass unchanged in a -DCULDA_SIMD=ON build,
// and lets CI gate SIMD-on against SIMD-off output byte-for-byte.
//
// Vectors use the GCC/Clang vector-size extension, so the code is
// width-agnostic: the compiler lowers 32-byte vectors to whatever the
// target ISA provides (SSE2 pairs, AVX2, NEON pairs, or scalar code) —
// no intrinsics, no -march requirement.
//
// Both variants are always compiled; `Enabled()` selects at runtime and
// defaults to the compile-time -DCULDA_SIMD=ON/OFF choice. The runtime
// override exists for the differential tests (SimdMatchesScalar) and for
// bench_sampler_tier, which measures both variants from one binary.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace culda::simd {

#ifdef CULDA_SIMD_ON
inline constexpr bool kCompiledDefault = true;
#else
inline constexpr bool kCompiledDefault = false;
#endif

namespace detail {
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{kCompiledDefault};
  return flag;
}

typedef uint64_t U64x4 __attribute__((vector_size(32)));
typedef int16_t I16x8 __attribute__((vector_size(16)));
typedef int32_t I32x8 __attribute__((vector_size(32)));
typedef float F32x8 __attribute__((vector_size(32)));
typedef double F64x4 __attribute__((vector_size(32)));

/// Any nonzero bit in a 32-byte block (unaligned).
inline bool AnyNonZero32(const void* p) {
  U64x4 v;
  std::memcpy(&v, p, sizeof(v));
  return (v[0] | v[1] | v[2] | v[3]) != 0;
}
}  // namespace detail

/// Whether the batched variants are dispatched; defaults to the
/// -DCULDA_SIMD compile-time choice.
inline bool Enabled() {
  return detail::EnabledFlag().load(std::memory_order_relaxed);
}
/// Runtime override (tests and benches only — flip before building engines,
/// not concurrently with sampling).
inline void SetEnabled(bool on) {
  detail::EnabledFlag().store(on, std::memory_order_relaxed);
}

// ---- Zero-run skipping ------------------------------------------------------

/// First index >= `from` with p[idx] != 0, else n.
inline size_t NextNonZeroU16Scalar(const uint16_t* p, size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    if (p[i] != 0) return i;
  }
  return n;
}

inline size_t NextNonZeroU16Simd(const uint16_t* p, size_t n, size_t from) {
  constexpr size_t kLanes = 16;  // 16 × u16 = 32 bytes
  size_t i = from;
  while (i + kLanes <= n) {
    if (detail::AnyNonZero32(p + i)) {
      for (size_t j = i; j < i + kLanes; ++j) {
        if (p[j] != 0) return j;
      }
    }
    i += kLanes;
  }
  return NextNonZeroU16Scalar(p, n, i);
}

inline size_t NextNonZeroU16(const uint16_t* p, size_t n, size_t from) {
  return Enabled() ? NextNonZeroU16Simd(p, n, from)
                   : NextNonZeroU16Scalar(p, n, from);
}

/// First index >= `from` with p[idx] != 0, else n.
inline size_t NextNonZeroI32Scalar(const int32_t* p, size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    if (p[i] != 0) return i;
  }
  return n;
}

inline size_t NextNonZeroI32Simd(const int32_t* p, size_t n, size_t from) {
  constexpr size_t kLanes = 8;  // 8 × i32 = 32 bytes
  size_t i = from;
  while (i + kLanes <= n) {
    if (detail::AnyNonZero32(p + i)) {
      for (size_t j = i; j < i + kLanes; ++j) {
        if (p[j] != 0) return j;
      }
    }
    i += kLanes;
  }
  return NextNonZeroI32Scalar(p, n, i);
}

inline size_t NextNonZeroI32(const int32_t* p, size_t n, size_t from) {
  return Enabled() ? NextNonZeroI32Simd(p, n, from)
                   : NextNonZeroI32Scalar(p, n, from);
}

// ---- Nonzero counting (integer, exact) --------------------------------------

/// acc[i] += (row[i] != 0) for i in [0, n) — the φ-transpose column-sizing
/// pass.
inline void AccumulateNonZeroU16Scalar(const uint16_t* row, int32_t* acc,
                                       size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (row[i] != 0) ++acc[i];
  }
}

inline void AccumulateNonZeroU16Simd(const uint16_t* row, int32_t* acc,
                                     size_t n) {
  constexpr size_t kLanes = 8;  // widen u16 → i32, 8 lanes per step
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    detail::I16x8 v;
    std::memcpy(&v, row + i, sizeof(v));
    const detail::I16x8 mask = v != detail::I16x8{};  // −1 where nonzero
    const detail::I32x8 wide = __builtin_convertvector(mask, detail::I32x8);
    detail::I32x8 a;
    std::memcpy(&a, acc + i, sizeof(a));
    a -= wide;
    std::memcpy(acc + i, &a, sizeof(a));
  }
  AccumulateNonZeroU16Scalar(row + i, acc + i, n - i);
}

inline void AccumulateNonZeroU16(const uint16_t* row, int32_t* acc, size_t n) {
  if (Enabled()) {
    AccumulateNonZeroU16Simd(row, acc, n);
  } else {
    AccumulateNonZeroU16Scalar(row, acc, n);
  }
}

// ---- Element-wise float ops (no reassociation) ------------------------------

/// out[i] = s * in[i] — the p2(k) = α·p*(k) batch feeding the index-tree
/// build. One multiply per element in both variants, so bit-identical.
inline void ScaleF32Scalar(const float* in, float s, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = s * in[i];
}

inline void ScaleF32Simd(const float* in, float s, float* out, size_t n) {
  constexpr size_t kLanes = 8;
  const detail::F32x8 sv = {s, s, s, s, s, s, s, s};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    detail::F32x8 v;
    std::memcpy(&v, in + i, sizeof(v));
    v *= sv;
    std::memcpy(out + i, &v, sizeof(v));
  }
  ScaleF32Scalar(in + i, s, out + i, n - i);
}

inline void ScaleF32(const float* in, float s, float* out, size_t n) {
  if (Enabled()) {
    ScaleF32Simd(in, s, out, n);
  } else {
    ScaleF32Scalar(in, s, out, n);
  }
}

/// out[i] = float(s * in[i]) — the smoothing-bucket term batch
/// p*(k) = α·β·inv_denom[k] narrowed to the tree's float leaves. One double
/// multiply + one narrowing per element in both variants.
inline void ScaleF64ToF32Scalar(const double* in, double s, float* out,
                                size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<float>(s * in[i]);
}

inline void ScaleF64ToF32Simd(const double* in, double s, float* out,
                              size_t n) {
  constexpr size_t kLanes = 4;
  const detail::F64x4 sv = {s, s, s, s};
  typedef float F32x4 __attribute__((vector_size(16)));
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    detail::F64x4 v;
    std::memcpy(&v, in + i, sizeof(v));
    v *= sv;
    const F32x4 narrow = __builtin_convertvector(v, F32x4);
    std::memcpy(out + i, &narrow, sizeof(narrow));
  }
  ScaleF64ToF32Scalar(in + i, s, out + i, n - i);
}

inline void ScaleF64ToF32(const double* in, double s, float* out, size_t n) {
  if (Enabled()) {
    ScaleF64ToF32Simd(in, s, out, n);
  } else {
    ScaleF64ToF32Scalar(in, s, out, n);
  }
}

}  // namespace culda::simd
