// SaberLDA-class GPU baseline (Li, Chen, Chen, Zhu — ASPLOS'17, the paper's
// reference [20] and its closest GPU competitor in Section 7.2).
//
// SaberLDA is closed-source; the paper compares against its published
// numbers (120M tokens/s for NYTimes on a GTX 1080). This implementation
// captures the *design differences* the paper's comparison turns on:
//
//   * sparsity-aware like CuLDA (word-major, O(K_d) doc bucket), so it is
//     far faster than dense prior art — but:
//   * the dense bucket is sampled from a per-word **alias table** rebuilt
//     once per word per iteration (SaberLDA's D-S-W sampling), which lives
//     in global memory rather than block-shared trees;
//   * one *thread* per token rather than one warp per token — uncoalesced
//     access patterns (a lower sustained-bandwidth fraction);
//   * 32-bit data everywhere (no precision compression);
//   * single GPU only (the paper's Section 7.2 point #3).
//
// Quality-wise it is the same stale-model Gibbs as CuLDA, so Figure 8
// curves are directly comparable. Alias sampling from slightly stale q is
// accepted as exact here (the alias table is refreshed per word per
// iteration; within-word staleness is the standard SaberLDA approximation).
#pragma once

#include <memory>

#include "baselines/lda_solver.hpp"
#include "core/config.hpp"
#include "core/model.hpp"
#include "corpus/corpus.hpp"
#include "gpusim/device.hpp"

namespace culda::baselines {

class SaberGpuLda : public LdaSolver {
 public:
  SaberGpuLda(const corpus::Corpus& corpus, const core::CuldaConfig& cfg,
              gpusim::DeviceSpec spec = gpusim::TitanXMaxwell(),
              ThreadPool* pool = nullptr);

  std::string name() const override { return "SaberLDA-like (GPU)"; }
  void Step() override;
  double ModeledSeconds() const override { return device_->Now(); }
  double LogLikelihoodPerToken() const override;
  uint64_t num_tokens() const override { return corpus_->num_tokens(); }

  core::GatheredModel Gather() const;
  gpusim::Device& device() { return *device_; }

 private:
  const corpus::Corpus* corpus_;
  core::CuldaConfig cfg_;
  std::unique_ptr<gpusim::Device> device_;
  core::ChunkState chunk_;
  core::PhiReplica model_;
  core::PhiReplica accum_;
  uint32_t iteration_ = 0;
};

}  // namespace culda::baselines
