// Walker alias table: O(n) build, O(1) multinomial draws.
//
// Used by the WarpLDA-class MH sampler (word proposals) and the
// SaberLDA-class GPU baseline (dense-bucket draws). Stale-table sampling
// with an MH correction — or refresh-per-word without one — are the
// standard LightLDA/SaberLDA constructions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace culda::baselines {

struct AliasTable {
  std::vector<float> prob;
  std::vector<uint16_t> alias;
  std::vector<float> weight;  ///< the build-time weights (for MH ratios)
  float total = 0;

  /// Builds the table over `w` (all non-negative, at least one positive).
  void Build(std::span<const float> w) {
    const size_t n = w.size();
    CULDA_CHECK(n >= 1 && n <= 0x10000);
    prob.assign(n, 0.0f);
    alias.assign(n, 0);
    weight.assign(w.begin(), w.end());
    total = 0;
    for (const float x : w) total += x;
    CULDA_CHECK_MSG(total > 0, "alias table over all-zero weights");

    std::vector<uint32_t> small, large;
    std::vector<float> scaled(n);
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = w[i] * static_cast<float>(n) / total;
      (scaled[i] < 1.0f ? small : large).push_back(
          static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const uint32_t s = small.back();
      small.pop_back();
      const uint32_t l = large.back();
      prob[s] = scaled[s];
      alias[s] = static_cast<uint16_t>(l);
      scaled[l] -= 1.0f - scaled[s];
      if (scaled[l] < 1.0f) {
        large.pop_back();
        small.push_back(l);
      }
    }
    for (const uint32_t i : large) prob[i] = 1.0f;
    for (const uint32_t i : small) prob[i] = 1.0f;  // numerical leftovers
  }

  /// Draws with a random bucket choice `r1` and coin `r2` ∈ [0, 1).
  uint16_t Sample(uint64_t r1, float r2) const {
    const size_t i = r1 % prob.size();
    return r2 < prob[i] ? static_cast<uint16_t>(i) : alias[i];
  }
};

}  // namespace culda::baselines
