#include "baselines/cpu_state.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/philox.hpp"

namespace culda::baselines {

void CpuLdaState::Initialize(const corpus::Corpus& c, uint32_t k_topics,
                             double a, double b, uint64_t seed) {
  corpus = &c;
  num_topics = k_topics;
  alpha = a;
  beta = b;
  CULDA_CHECK(num_topics >= 2);
  CULDA_CHECK(beta > 0 && alpha > 0);

  z.resize(c.num_tokens());
  nd = sparse::DenseMatrix<int32_t>(c.num_docs(), num_topics);
  nw = sparse::DenseMatrix<int32_t>(num_topics, c.vocab_size());
  nk.assign(num_topics, 0);

  for (uint64_t t = 0; t < c.num_tokens(); ++t) {
    PhiloxStream rng(seed, t);
    z[t] = static_cast<uint16_t>(rng.NextBelow(num_topics));
  }
  for (size_t d = 0; d < c.num_docs(); ++d) {
    const auto tokens = c.DocTokens(d);
    for (size_t i = 0; i < tokens.size(); ++i) {
      const uint16_t k = z[c.DocBegin(d) + i];
      ++nd(d, k);
      ++nw(k, tokens[i]);
      ++nk[k];
    }
  }
}

double CpuLdaState::LogLikelihoodPerToken() const {
  const uint32_t k_topics = num_topics;
  const uint32_t v_words = corpus->vocab_size();
  const double lg_alpha = std::lgamma(alpha);
  const double lg_beta = std::lgamma(beta);
  const double lg_k_alpha = std::lgamma(k_topics * alpha);
  const double lg_v_beta = std::lgamma(v_words * beta);

  double ll = 0;
  for (size_t d = 0; d < corpus->num_docs(); ++d) {
    double row = 0;
    for (uint32_t k = 0; k < k_topics; ++k) {
      const int32_t c = nd(d, k);
      row += c != 0 ? std::lgamma(c + alpha) : lg_alpha;
    }
    ll += row - k_topics * lg_alpha + lg_k_alpha -
          std::lgamma(static_cast<double>(corpus->DocLength(d)) +
                      k_topics * alpha);
  }
  for (uint32_t k = 0; k < k_topics; ++k) {
    double row = 0;
    for (uint32_t v = 0; v < v_words; ++v) {
      const int32_t c = nw(k, v);
      row += c != 0 ? std::lgamma(c + beta) : lg_beta;
    }
    ll += row - v_words * lg_beta + lg_v_beta -
          std::lgamma(static_cast<double>(nk[k]) + v_words * beta);
  }
  return ll / static_cast<double>(corpus->num_tokens());
}

void CpuLdaState::Validate() const {
  // nd row sums = document lengths.
  for (size_t d = 0; d < corpus->num_docs(); ++d) {
    int64_t sum = 0;
    for (uint32_t k = 0; k < num_topics; ++k) {
      CULDA_CHECK(nd(d, k) >= 0);
      sum += nd(d, k);
    }
    CULDA_CHECK_MSG(sum == static_cast<int64_t>(corpus->DocLength(d)),
                    "nd row " << d << " inconsistent");
  }
  // nw row sums = nk; grand total = corpus tokens.
  int64_t grand = 0;
  for (uint32_t k = 0; k < num_topics; ++k) {
    int64_t sum = 0;
    for (uint32_t v = 0; v < corpus->vocab_size(); ++v) {
      CULDA_CHECK(nw(k, v) >= 0);
      sum += nw(k, v);
    }
    CULDA_CHECK_MSG(sum == nk[k], "nk[" << k << "] inconsistent");
    grand += sum;
  }
  CULDA_CHECK(grand == static_cast<int64_t>(corpus->num_tokens()));
}

}  // namespace culda::baselines
