// F+ tree: a complete binary tree over K weights supporting O(log K) point
// updates and O(log K) multinomial draws (find the minimal i whose prefix
// sum exceeds u).
//
// This is the data structure behind F+LDA (Yu et al., WWW'15 — the paper's
// reference [33]): unlike CuLDA's per-token rebuilt index tree, the F+ tree
// is maintained *incrementally* as counts change, which is the right
// trade-off for a sequential exact-CGS sampler where only two topics change
// per token.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace culda::baselines {

class FPlusTree {
 public:
  explicit FPlusTree(uint32_t n) : n_(n) {
    CULDA_CHECK(n >= 1);
    size_ = 1;
    while (size_ < n) size_ *= 2;
    tree_.assign(2 * size_, 0.0f);
  }

  uint32_t size() const { return n_; }
  float Total() const { return tree_[1]; }
  float Get(uint32_t i) const {
    CULDA_DCHECK(i < n_);
    return tree_[size_ + i];
  }

  /// Bulk build from weights: O(n).
  void Build(std::span<const float> w) {
    CULDA_CHECK(w.size() == n_);
    for (uint32_t i = 0; i < n_; ++i) tree_[size_ + i] = w[i];
    for (uint32_t i = n_; i < size_; ++i) tree_[size_ + i] = 0.0f;
    for (uint32_t i = size_ - 1; i >= 1; --i) {
      tree_[i] = tree_[2 * i] + tree_[2 * i + 1];
    }
  }

  /// Point update: O(log n).
  void Set(uint32_t i, float w) {
    CULDA_DCHECK(i < n_);
    uint32_t node = size_ + i;
    tree_[node] = w;
    for (node /= 2; node >= 1; node /= 2) {
      tree_[node] = tree_[2 * node] + tree_[2 * node + 1];
    }
  }

  /// Draws the minimal i with prefix(i) > u, for u ∈ [0, Total()); u beyond
  /// the total clamps to the last non-empty slot. O(log n).
  uint32_t Sample(float u) const {
    uint32_t node = 1;
    while (node < size_) {
      const float left = tree_[2 * node];
      if (u < left) {
        node = 2 * node;
      } else {
        u -= left;
        node = 2 * node + 1;
      }
    }
    uint32_t i = node - size_;
    // Float round-off can walk past the populated range.
    if (i >= n_) i = n_ - 1;
    return i;
  }

 private:
  uint32_t n_;
  uint32_t size_;  ///< leaves (power of two)
  std::vector<float> tree_;
};

}  // namespace culda::baselines
