// Exact sequential collapsed Gibbs sampling, O(K) per token.
//
// The textbook CGS sampler: decrement the token's counts, compute the full
// K-length conditional p(k) ∝ (n_dk + α)(n_kv + β)/(n_k + βV), draw, and
// increment. It is the convergence gold standard against which both CuLDA's
// delayed-update semantics and the MH baseline are checked, and the "naive"
// point of the Figure 8 comparison.
#pragma once

#include "baselines/cpu_state.hpp"
#include "baselines/lda_solver.hpp"
#include "core/config.hpp"

namespace culda::baselines {

class CpuCgs : public LdaSolver {
 public:
  CpuCgs(const corpus::Corpus& corpus, const core::CuldaConfig& cfg);

  std::string name() const override { return "CGS (CPU, exact O(K))"; }
  void Step() override;
  double ModeledSeconds() const override { return modeled_seconds_; }
  double LogLikelihoodPerToken() const override {
    return state_.LogLikelihoodPerToken();
  }
  uint64_t num_tokens() const override { return state_.corpus->num_tokens(); }

  const CpuLdaState& state() const { return state_; }

 private:
  CpuLdaState state_;
  uint64_t seed_;
  uint32_t iteration_ = 0;
  double modeled_seconds_ = 0;
  std::vector<double> cdf_;  ///< scratch, length K
};

}  // namespace culda::baselines
