#include "baselines/saber_gpu.hpp"

#include <vector>

#include "core/sampler/alias_table.hpp"
#include "core/evaluator.hpp"
#include "core/kernels.hpp"
#include "corpus/chunking.hpp"
#include "util/philox.hpp"

namespace culda::baselines {

namespace {

/// SaberLDA-style sampling: word-major, sparse doc bucket walked linearly,
/// dense bucket drawn from a per-word alias table in global memory; one
/// thread per token (mem_derate 0.35 — uncoalesced).
gpusim::KernelRecord RunSaberSamplingKernel(gpusim::Device& device,
                                            const core::CuldaConfig& cfg,
                                            core::ChunkState& chunk,
                                            const core::PhiReplica& model,
                                            uint32_t iteration) {
  const uint32_t k_topics = cfg.num_topics;
  const float alpha = static_cast<float>(cfg.EffectiveAlpha());
  const float beta = static_cast<float>(cfg.beta);
  const float beta_v = beta * static_cast<float>(model.vocab_size);

  const gpusim::LaunchConfig lc{static_cast<uint32_t>(chunk.work.size()),
                                cfg.samplers_per_block * gpusim::kWarpSize,
                                0.40};
  auto body = [&](gpusim::BlockContext& ctx) {
    const corpus::BlockWork& bw = chunk.work[ctx.block_id()];
    const uint32_t w = bw.word;

    // Per-word q(k) = α(φ_kv + β)/(n_k + βV) and its alias table (built in
    // global memory: K reads + ~2K float writes).
    thread_local std::vector<float> q;
    thread_local core::AliasTable table;
    if (q.size() < k_topics) q.resize(k_topics);
    float q_mass = 0;
    for (uint32_t k = 0; k < k_topics; ++k) {
      q[k] = alpha * (static_cast<float>(model.phi(k, w)) + beta) /
             (static_cast<float>(model.nk[k]) + beta_v);
      q_mass += q[k];
    }
    table.Build(std::span<const float>(q.data(), k_topics));
    ctx.ReadGlobal(static_cast<uint64_t>(k_topics) * 8);   // φ col + n_k
    ctx.WriteGlobal(static_cast<uint64_t>(k_topics) * 8);  // alias table
    ctx.Flops(6ull * k_topics);

    for (uint64_t t = bw.token_begin; t < bw.token_end; ++t) {
      const uint32_t d = chunk.layout.token_doc[t];
      ctx.ReadGlobal(8);

      const auto idx = chunk.theta.RowIndices(d);
      const auto val = chunk.theta.RowValues(d);
      const uint64_t kd = idx.size();
      // 32-bit indices and values; SaberLDA also routes index loads through
      // the texture/L1 path (its own cache-conscious design).
      ctx.ReadL1(kd * 4);
      ctx.ReadGlobal(kd * 4);

      // Sparse bucket s = Σ θ_dk · q(k)/α.
      float s_mass = 0;
      for (uint64_t j = 0; j < kd; ++j) {
        s_mass += static_cast<float>(val[j]) * q[idx[j]] / alpha;
      }
      ctx.Flops(3 * kd);

      PhiloxStream rng(cfg.seed,
                       (static_cast<uint64_t>(iteration) << 40) ^
                           chunk.layout.token_global[t]);
      const float u = rng.NextFloat() * (s_mass + q_mass);

      uint32_t new_k;
      if (u < s_mass) {
        // Linear walk of the doc bucket (no private trees in SaberLDA's
        // doc phase).
        float acc = 0;
        new_k = idx[kd - 1];
        for (uint64_t j = 0; j < kd; ++j) {
          acc += static_cast<float>(val[j]) * q[idx[j]] / alpha;
          if (acc > u) {
            new_k = idx[j];
            break;
          }
        }
        ctx.Flops(2 * kd);
      } else {
        new_k = table.Sample(rng.NextU32(), rng.NextFloat());
        ctx.ReadGlobal(8);  // one alias cell
        ctx.Flops(4);
      }
      chunk.z[t] = static_cast<uint16_t>(new_k);
      ctx.WriteGlobal(4);
    }
  };
  return device.Launch("saber_sampling", lc, body);
}

}  // namespace

SaberGpuLda::SaberGpuLda(const corpus::Corpus& corpus,
                         const core::CuldaConfig& cfg,
                         gpusim::DeviceSpec spec, ThreadPool* pool)
    : corpus_(&corpus), cfg_(cfg) {
  cfg_.Validate();
  CULDA_CHECK_MSG(cfg_.asymmetric_alpha.empty(),
                  "SaberGpuLda supports symmetric priors only");
  cfg_.compress_indices = false;  // 32-bit data throughout

  device_ = std::make_unique<gpusim::Device>(std::move(spec), 0, pool);
  chunk_.layout = corpus::BuildWordFirstChunk(
      corpus, corpus::PartitionByTokens(corpus, 1)[0]);
  chunk_.work =
      corpus::BuildBlockWorkList(chunk_.layout, cfg_.max_tokens_per_block);
  chunk_.z.resize(chunk_.layout.num_tokens());
  for (uint64_t t = 0; t < chunk_.z.size(); ++t) {
    PhiloxStream rng(cfg_.seed, chunk_.layout.token_global[t]);
    chunk_.z[t] = static_cast<uint16_t>(rng.NextBelow(cfg_.num_topics));
  }
  chunk_.theta = core::ThetaMatrix(chunk_.layout.num_docs(), cfg_.num_topics);
  model_ = core::PhiReplica(cfg_.num_topics, corpus.vocab_size());
  accum_ = core::PhiReplica(cfg_.num_topics, corpus.vocab_size());
  RunUpdatePhiKernel(*device_, cfg_, chunk_, model_);
  RunUpdateThetaKernel(*device_, cfg_, chunk_);
  RunComputeNkKernel(*device_, cfg_, model_);
  device_->ResetTime();
  device_->ResetProfile();
}

void SaberGpuLda::Step() {
  const double t0 = device_->Now();
  ++iteration_;
  RunSaberSamplingKernel(*device_, cfg_, chunk_, model_, iteration_);
  RunZeroPhiKernel(*device_, cfg_, accum_);
  RunUpdatePhiKernel(*device_, cfg_, chunk_, accum_);
  RunUpdateThetaKernel(*device_, cfg_, chunk_);
  RunComputeNkKernel(*device_, cfg_, accum_);
  std::swap(model_, accum_);
  device_->Synchronize();
  last_tokens_per_sec_ =
      static_cast<double>(corpus_->num_tokens()) / (device_->Now() - t0);
}

core::GatheredModel SaberGpuLda::Gather() const {
  core::GatheredModel m;
  m.num_topics = cfg_.num_topics;
  m.vocab_size = corpus_->vocab_size();
  m.num_docs = corpus_->num_docs();
  m.theta = chunk_.theta;
  m.phi = model_.phi;
  m.nk = model_.nk;
  return m;
}

double SaberGpuLda::LogLikelihoodPerToken() const {
  return core::LogLikelihoodPerToken(Gather(), cfg_);
}

}  // namespace culda::baselines
