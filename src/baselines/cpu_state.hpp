// Shared dense count state for the CPU baselines.
//
// The CPU solvers (exact CGS, SparseLDA, WarpLDA-like MH) keep the classic
// uncompressed representation: dense document–topic and topic–word count
// matrices plus topic totals, with immediate decrement/increment updates —
// the textbook collapsed Gibbs state that CuLDA's delayed-update scheme is
// compared against.
//
// Modeled time: CPU samplers are latency-bound on random accesses, so reads
// that jump around memory are billed at cache-line granularity (64 B per
// touched line) against the Xeon's effective bandwidth; streaming scans are
// billed at their true byte count. This is the CPU analogue of the GPU
// kernels' coalescing-aware billing, and is what puts WarpLDA-class
// samplers at the ~100 M tokens/s the paper reports (Table 4) instead of a
// physically impossible pure-bandwidth bound.
#pragma once

#include <cstdint>
#include <vector>

#include "corpus/corpus.hpp"
#include "gpusim/cost_model.hpp"
#include "sparse/dense.hpp"

namespace culda::baselines {

constexpr uint64_t kCacheLineBytes = 64;

struct CpuLdaState {
  const corpus::Corpus* corpus = nullptr;
  uint32_t num_topics = 0;
  double alpha = 0;
  double beta = 0;

  std::vector<uint16_t> z;            ///< token topics, document-major
  sparse::DenseMatrix<int32_t> nd;    ///< D×K document–topic counts
  sparse::DenseMatrix<int32_t> nw;    ///< K×V topic–word counts
  std::vector<int64_t> nk;            ///< per-topic totals

  /// Random uniform topic init (deterministic in seed) and count build.
  void Initialize(const corpus::Corpus& c, uint32_t k_topics, double a,
                  double b, uint64_t seed);

  /// Joint log-likelihood per token (same metric as core::Evaluator).
  double LogLikelihoodPerToken() const;

  /// Count-consistency invariants; throws on violation. O(D·K + K·V).
  void Validate() const;
};

/// Accumulates billed traffic for a CPU sweep and converts it to modeled
/// seconds on the Xeon spec.
class CpuCostTracker {
 public:
  CpuCostTracker() : model_(gpusim::XeonCpu()) {}

  /// A random access touching `bytes` payload: billed as whole cache lines.
  void RandomRead(uint64_t bytes) {
    counters_.global_read_bytes += LineRound(bytes);
  }
  /// `count` independent random accesses of `bytes_each` payload.
  void RandomReads(uint64_t count, uint64_t bytes_each) {
    counters_.global_read_bytes += count * LineRound(bytes_each);
  }
  void RandomWrite(uint64_t bytes) {
    counters_.global_write_bytes += LineRound(bytes);
  }
  /// Streaming access: billed at payload size.
  void StreamRead(uint64_t bytes) { counters_.global_read_bytes += bytes; }
  void StreamWrite(uint64_t bytes) { counters_.global_write_bytes += bytes; }
  void Flops(uint64_t n) { counters_.flops += n; }

  /// Modeled seconds for everything billed since the last Reset().
  double Seconds() const { return model_.KernelTime(counters_).total_s; }
  const gpusim::KernelCounters& counters() const { return counters_; }
  void Reset() { counters_ = {}; }

 private:
  static uint64_t LineRound(uint64_t bytes) {
    return (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
  }
  gpusim::CostModel model_;
  gpusim::KernelCounters counters_;
};

}  // namespace culda::baselines
