// Prior-art GPU LDA baseline ("BIDMach/SaberLDA-class" stand-in).
//
// The GPU comparison points of Section 7.2 are closed-source (SaberLDA) or
// architecturally dated (BIDMach); the paper cites their published numbers.
// This baseline plays their role on the simulator: a straightforward GPU
// CGS with none of CuLDA's Section 6 machinery —
//   * dense O(K) conditional per token (no sparsity-aware S/Q split),
//   * linear CDF scan instead of index trees,
//   * 32-bit values everywhere (no precision compression),
//   * no shared-memory reuse of p* or the p2 tree, no L1 routing,
//   * single GPU only.
// Same delayed-update semantics and model state as CuLDA, so quality curves
// are directly comparable; only the per-token cost differs.
#pragma once

#include <memory>

#include "baselines/lda_solver.hpp"
#include "core/config.hpp"
#include "core/model.hpp"
#include "corpus/corpus.hpp"
#include "gpusim/device.hpp"

namespace culda::baselines {

class GpuDenseLda : public LdaSolver {
 public:
  GpuDenseLda(const corpus::Corpus& corpus, const core::CuldaConfig& cfg,
              gpusim::DeviceSpec spec, ThreadPool* pool = nullptr);

  std::string name() const override { return "Dense GPU LDA (prior art)"; }
  void Step() override;
  double ModeledSeconds() const override { return device_->Now(); }
  double LogLikelihoodPerToken() const override;
  uint64_t num_tokens() const override { return corpus_->num_tokens(); }

  gpusim::Device& device() { return *device_; }
  core::GatheredModel Gather() const;

 private:
  const corpus::Corpus* corpus_;
  core::CuldaConfig cfg_;
  std::unique_ptr<gpusim::Device> device_;
  core::ChunkState chunk_;        ///< the whole corpus as one chunk
  core::PhiReplica model_;        ///< read model (iteration t−1)
  core::PhiReplica accum_;        ///< counts accumulated during iteration t
  uint32_t iteration_ = 0;
};

}  // namespace culda::baselines
