#include "baselines/gpu_dense.hpp"

#include <vector>

#include "core/evaluator.hpp"
#include "core/kernels.hpp"
#include "corpus/chunking.hpp"
#include "util/philox.hpp"

namespace culda::baselines {

namespace {

/// The naive O(K) sampling kernel: dense conditional + linear CDF scan,
/// everything read from global memory at 32-bit width.
gpusim::KernelRecord RunDenseSamplingKernel(gpusim::Device& device,
                                            const core::CuldaConfig& cfg,
                                            core::ChunkState& chunk,
                                            const core::PhiReplica& model,
                                            uint32_t iteration) {
  const uint32_t k_topics = cfg.num_topics;
  const float alpha = static_cast<float>(cfg.EffectiveAlpha());
  const float beta = static_cast<float>(cfg.beta);
  const float beta_v = beta * static_cast<float>(model.vocab_size);

  // Prior-art access pattern: per-token dense scans with no coalescing care
  // — it sustains an even smaller bandwidth fraction than CuLDA's sampler.
  const gpusim::LaunchConfig lc{static_cast<uint32_t>(chunk.work.size()),
                                cfg.samplers_per_block * gpusim::kWarpSize,
                                0.30};
  auto body = [&](gpusim::BlockContext& ctx) {
    const corpus::BlockWork& bw = chunk.work[ctx.block_id()];
    const uint32_t w = bw.word;
    thread_local std::vector<float> theta_dense;
    thread_local std::vector<float> cdf;
    if (theta_dense.size() < k_topics) theta_dense.resize(k_topics);
    if (cdf.size() < k_topics) cdf.resize(k_topics);

    for (uint64_t t = bw.token_begin; t < bw.token_end; ++t) {
      const uint32_t d = chunk.layout.token_doc[t];
      ctx.ReadGlobal(4);

      // Expand θ_d to dense (the prior-art layout is dense to begin with;
      // billed as a dense K-row read).
      std::fill(theta_dense.begin(), theta_dense.begin() + k_topics, 0.0f);
      const auto idx = chunk.theta.RowIndices(d);
      const auto val = chunk.theta.RowValues(d);
      for (size_t j = 0; j < idx.size(); ++j) {
        theta_dense[idx[j]] = static_cast<float>(val[j]);
      }
      ctx.ReadGlobal(static_cast<uint64_t>(k_topics) * 4);  // dense n_d row

      // Dense conditional: φ column + n_k, all 32-bit, all from DRAM.
      float total = 0;
      for (uint32_t k = 0; k < k_topics; ++k) {
        const float p = (theta_dense[k] + alpha) *
                        (static_cast<float>(model.phi(k, w)) + beta) /
                        (static_cast<float>(model.nk[k]) + beta_v);
        total += p;
        cdf[k] = total;
      }
      ctx.ReadGlobal(static_cast<uint64_t>(k_topics) * 8);  // φ col + n_k
      ctx.Flops(5ull * k_topics);

      PhiloxStream rng(cfg.seed,
                       (static_cast<uint64_t>(iteration) << 40) ^
                           chunk.layout.token_global[t]);
      const float u = rng.NextFloat() * total;
      uint32_t new_k = k_topics - 1;
      for (uint32_t k = 0; k < k_topics; ++k) {
        if (cdf[k] > u) {
          new_k = k;
          break;
        }
      }
      // Linear scan re-reads the CDF it just wrote to local memory.
      ctx.ReadGlobal(static_cast<uint64_t>(k_topics) * 2);
      ctx.Flops(k_topics / 2);

      chunk.z[t] = static_cast<uint16_t>(new_k);
      ctx.WriteGlobal(4);
    }
  };
  return device.Launch("dense_sampling", lc, body);
}

}  // namespace

GpuDenseLda::GpuDenseLda(const corpus::Corpus& corpus,
                         const core::CuldaConfig& cfg,
                         gpusim::DeviceSpec spec, ThreadPool* pool)
    : corpus_(&corpus), cfg_(cfg) {
  cfg_.Validate();
  // Prior art: no compression, no shared-memory tricks, no L1 routing.
  cfg_.compress_indices = false;
  cfg_.share_p2_tree = false;
  cfg_.reuse_pstar = false;
  cfg_.l1_for_indices = false;

  device_ = std::make_unique<gpusim::Device>(std::move(spec), 0, pool);

  const auto specs = corpus::PartitionByTokens(corpus, 1);
  chunk_.layout = corpus::BuildWordFirstChunk(corpus, specs[0]);
  chunk_.work =
      corpus::BuildBlockWorkList(chunk_.layout, cfg_.max_tokens_per_block);
  chunk_.z.resize(chunk_.layout.num_tokens());
  for (uint64_t t = 0; t < chunk_.z.size(); ++t) {
    PhiloxStream rng(cfg_.seed, t);
    chunk_.z[t] = static_cast<uint16_t>(rng.NextBelow(cfg_.num_topics));
  }
  chunk_.theta = core::ThetaMatrix(chunk_.layout.num_docs(), cfg_.num_topics);

  model_ = core::PhiReplica(cfg_.num_topics, corpus.vocab_size());
  accum_ = core::PhiReplica(cfg_.num_topics, corpus.vocab_size());
  RunUpdatePhiKernel(*device_, cfg_, chunk_, model_);
  RunUpdateThetaKernel(*device_, cfg_, chunk_);
  RunComputeNkKernel(*device_, cfg_, model_);
  device_->ResetTime();
  device_->ResetProfile();
}

void GpuDenseLda::Step() {
  const double t0 = device_->Now();
  ++iteration_;
  RunDenseSamplingKernel(*device_, cfg_, chunk_, model_, iteration_);
  RunZeroPhiKernel(*device_, cfg_, accum_);
  RunUpdatePhiKernel(*device_, cfg_, chunk_, accum_);
  RunUpdateThetaKernel(*device_, cfg_, chunk_);
  RunComputeNkKernel(*device_, cfg_, accum_);
  std::swap(model_, accum_);
  device_->Synchronize();
  last_tokens_per_sec_ =
      static_cast<double>(corpus_->num_tokens()) / (device_->Now() - t0);
}

core::GatheredModel GpuDenseLda::Gather() const {
  core::GatheredModel m;
  m.num_topics = cfg_.num_topics;
  m.vocab_size = corpus_->vocab_size();
  m.num_docs = corpus_->num_docs();
  m.theta = chunk_.theta;
  m.phi = model_.phi;
  m.nk = model_.nk;
  return m;
}

double GpuDenseLda::LogLikelihoodPerToken() const {
  return core::LogLikelihoodPerToken(Gather(), cfg_);
}

}  // namespace culda::baselines
