// SparseLDA (Yao, Mimno, McCallum, KDD'09) — the sparsity-aware exact CGS
// sampler CuLDA's S/Q decomposition descends from (cited as [32]).
//
// The conditional factors into three buckets:
//
//   p(k) ∝ αβ/(n_k+βV)            ["smoothing", s — global]
//        + n_dk·β/(n_k+βV)        ["document", r — sparse in the doc]
//        + (n_dk+α)·n_kv/(n_k+βV) ["topic-word", q — sparse in the word]
//
// s is maintained incrementally, r per document, and q is computed per token
// by walking the word's non-zero topic list, so a token costs
// O(K_d + K_w) ≪ O(K). Exact decrement/increment Gibbs semantics.
#pragma once

#include "baselines/cpu_state.hpp"
#include "baselines/lda_solver.hpp"
#include "core/config.hpp"

namespace culda::baselines {

class SparseLdaCgs : public LdaSolver {
 public:
  SparseLdaCgs(const corpus::Corpus& corpus, const core::CuldaConfig& cfg);

  std::string name() const override { return "SparseLDA (CPU, exact)"; }
  void Step() override;
  double ModeledSeconds() const override { return modeled_seconds_; }
  double LogLikelihoodPerToken() const override {
    return state_.LogLikelihoodPerToken();
  }
  uint64_t num_tokens() const override { return state_.corpus->num_tokens(); }

  const CpuLdaState& state() const { return state_; }

  /// Internal-structure consistency (word topic lists vs dense nw);
  /// throws on violation. For tests.
  void ValidateStructures() const;

 private:
  struct TopicCount {
    uint16_t topic;
    int32_t count;
  };

  void DecWord(uint32_t w, uint16_t k);
  void IncWord(uint32_t w, uint16_t k);

  CpuLdaState state_;
  uint64_t seed_;
  uint32_t iteration_ = 0;
  double modeled_seconds_ = 0;

  /// Per-word non-zero topic lists (the q-bucket support).
  std::vector<std::vector<TopicCount>> word_topics_;
  std::vector<double> coef_;  ///< (n_dk+α)/(n_k+βV) for the current doc
};

}  // namespace culda::baselines
