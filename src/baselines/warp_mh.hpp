// WarpLDA-class Metropolis–Hastings sampler (CPU baseline for Table 4 /
// Figures 7–8).
//
// WarpLDA (Chen et al., VLDB'16 — the paper's primary CPU comparator) gets
// its O(1)-per-token cost from Metropolis–Hastings with cheap proposals
// instead of computing the exact conditional. This implementation follows
// the LightLDA/WarpLDA proposal-cycle design:
//
//   doc proposal   q_d(k) ∝ n_dk + α   — drawn in O(1) by picking the topic
//                  of a uniformly random token of the document (the n_dk
//                  part) or a uniform topic (the α part);
//   word proposal  q_w(k) ∝ ñ_kv + β   — drawn in O(1) from a Walker alias
//                  table built per word once per sweep (ñ = sweep-start
//                  counts, hence "stale"; the MH correction accounts for the
//                  proposal, staleness is the standard approximation);
//
// each followed by the MH accept/reject against the exact conditional with
// live decremented counts. One token costs a handful of random memory
// touches — exactly the cache-pressure profile the WarpLDA paper optimizes.
#pragma once

#include "baselines/cpu_state.hpp"
#include "baselines/lda_solver.hpp"
#include "core/config.hpp"
#include "core/sampler/alias_table.hpp"

namespace culda::baselines {

class WarpMhSampler : public LdaSolver {
 public:
  /// `mh_cycles`: proposal pairs per token (WarpLDA default-equivalent: 1).
  WarpMhSampler(const corpus::Corpus& corpus, const core::CuldaConfig& cfg,
                uint32_t mh_cycles = 1);

  std::string name() const override { return "WarpLDA-like (CPU, MH O(1))"; }
  void Step() override;
  double ModeledSeconds() const override { return modeled_seconds_; }
  double LogLikelihoodPerToken() const override {
    return state_.LogLikelihoodPerToken();
  }
  uint64_t num_tokens() const override { return state_.corpus->num_tokens(); }

  const CpuLdaState& state() const { return state_; }
  double acceptance_rate() const {
    return proposals_ == 0
               ? 0.0
               : static_cast<double>(accepts_) / static_cast<double>(proposals_);
  }

 private:
  void RebuildAliasTables(CpuCostTracker& cost);

  CpuLdaState state_;
  uint64_t seed_;
  uint32_t mh_cycles_;
  uint32_t iteration_ = 0;
  double modeled_seconds_ = 0;
  uint64_t proposals_ = 0;
  uint64_t accepts_ = 0;
  core::AliasBuildScratch alias_scratch_;    ///< reused across rebuilds
  std::vector<core::AliasTable> word_alias_;  ///< one per word, stale per sweep
};

}  // namespace culda::baselines
