#include "baselines/warp_mh.hpp"

#include <algorithm>

#include "util/philox.hpp"

namespace culda::baselines {

WarpMhSampler::WarpMhSampler(const corpus::Corpus& corpus,
                             const core::CuldaConfig& cfg, uint32_t mh_cycles)
    : seed_(cfg.seed), mh_cycles_(mh_cycles) {
  cfg.Validate();
  CULDA_CHECK(mh_cycles >= 1);
  state_.Initialize(corpus, cfg.num_topics, cfg.EffectiveAlpha(), cfg.beta,
                    cfg.seed);
  word_alias_.resize(corpus.vocab_size());
}

void WarpMhSampler::RebuildAliasTables(CpuCostTracker& cost) {
  const uint32_t k_topics = state_.num_topics;
  std::vector<float> w(k_topics);
  for (uint32_t v = 0; v < state_.corpus->vocab_size(); ++v) {
    for (uint32_t k = 0; k < k_topics; ++k) {
      w[k] = static_cast<float>(state_.nw(k, v)) +
             static_cast<float>(state_.beta);
    }
    word_alias_[v].Build(w, alias_scratch_);
  }
  // Streaming pass over nw plus table writes.
  const uint64_t cells =
      static_cast<uint64_t>(k_topics) * state_.corpus->vocab_size();
  cost.StreamRead(cells * 4);
  cost.StreamWrite(cells * 8);
  cost.Flops(4 * cells);
}

void WarpMhSampler::Step() {
  CpuLdaState& s = state_;
  const corpus::Corpus& c = *s.corpus;
  const uint32_t k_topics = s.num_topics;
  const double alpha = s.alpha, beta = s.beta;
  const double beta_v = beta * c.vocab_size();
  const double alpha_k = alpha * k_topics;
  CpuCostTracker cost;
  ++iteration_;

  RebuildAliasTables(cost);

  // Exact conditional (with live decremented counts) used in the MH ratio.
  auto p_hat = [&](size_t d, uint32_t w, uint32_t k) {
    return (s.nd(d, k) + alpha) * (s.nw(k, w) + beta) /
           (static_cast<double>(s.nk[k]) + beta_v);
  };

  for (size_t d = 0; d < c.num_docs(); ++d) {
    const auto tokens = c.DocTokens(d);
    const uint64_t base = c.DocBegin(d);
    const double len_d = static_cast<double>(tokens.size());

    for (size_t i = 0; i < tokens.size(); ++i) {
      const uint32_t w = tokens[i];
      const uint64_t t = base + i;
      uint16_t cur = s.z[t];

      // Collapse the token out once; the MH cycles then move `cur`.
      --s.nd(d, cur);
      --s.nw(cur, w);
      --s.nk[cur];
      cost.RandomRead(2);     // z
      cost.RandomWrite(12);   // three count decrements

      PhiloxStream rng(seed_,
                       (static_cast<uint64_t>(iteration_) << 40) ^ t);

      for (uint32_t cycle = 0; cycle < mh_cycles_; ++cycle) {
        // ---- Doc proposal: q_d(k) ∝ n_dk + α.
        {
          uint16_t prop;
          const double pick = rng.NextDouble() * (len_d + alpha_k);
          if (pick < len_d) {
            prop = s.z[base + rng.NextBelow(
                                  static_cast<uint32_t>(tokens.size()))];
            cost.RandomRead(2);
          } else {
            prop = static_cast<uint16_t>(rng.NextBelow(k_topics));
          }
          if (prop != cur) {
            // q_d cancels against the doc factor of p̂:
            // accept = (n_w,prop+β)(n_cur+βV) / ((n_w,cur+β)(n_prop+βV)).
            const double a =
                (s.nw(prop, w) + beta) *
                (static_cast<double>(s.nk[cur]) + beta_v) /
                ((s.nw(cur, w) + beta) *
                 (static_cast<double>(s.nk[prop]) + beta_v));
            ++proposals_;
            cost.RandomRead(8);
            cost.Flops(8);
            if (rng.NextDouble() < a) {
              cur = prop;
              ++accepts_;
            }
          }
        }
        // ---- Word proposal: q_w(k) ∝ ñ_kv + β (stale alias table).
        {
          const core::AliasTable& table = word_alias_[w];
          const uint16_t prop =
              table.Sample(rng.NextU32(), rng.NextFloat());
          cost.RandomRead(8);  // alias cell
          if (prop != cur) {
            const double q_cur = table.weight[cur];
            const double q_prop = table.weight[prop];
            const double a =
                p_hat(d, w, prop) * q_cur / (p_hat(d, w, cur) * q_prop);
            ++proposals_;
            cost.RandomRead(24);  // nd/nw/nk for both topics
            cost.Flops(14);
            if (rng.NextDouble() < a) {
              cur = prop;
              ++accepts_;
            }
          }
        }
      }

      s.z[t] = cur;
      ++s.nd(d, cur);
      ++s.nw(cur, w);
      ++s.nk[cur];
      cost.RandomWrite(14);
    }
  }

  const double step_s = cost.Seconds();
  modeled_seconds_ += step_s;
  last_tokens_per_sec_ = static_cast<double>(c.num_tokens()) / step_s;
}

}  // namespace culda::baselines
