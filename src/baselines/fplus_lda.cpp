#include "baselines/fplus_lda.hpp"

#include <cmath>

#include "corpus/chunking.hpp"
#include "util/philox.hpp"

namespace culda::baselines {

FPlusLda::FPlusLda(const corpus::Corpus& corpus,
                   const core::CuldaConfig& cfg)
    : corpus_(&corpus),
      cfg_(cfg),
      alpha_(cfg.EffectiveAlpha()),
      beta_(cfg.beta),
      q_tree_(cfg.num_topics) {
  cfg_.Validate();
  layout_ = corpus::BuildWordFirstChunk(
      corpus, corpus::PartitionByTokens(corpus, 1)[0]);

  const uint32_t k_topics = cfg_.num_topics;
  z_.resize(layout_.num_tokens());
  nd_ = sparse::DenseMatrix<int32_t>(corpus.num_docs(), k_topics);
  nw_ = sparse::DenseMatrix<int32_t>(k_topics, corpus.vocab_size());
  nk_.assign(k_topics, 0);
  doc_topics_.resize(corpus.num_docs());

  for (uint64_t t = 0; t < z_.size(); ++t) {
    PhiloxStream rng(cfg_.seed, layout_.token_global[t]);
    const uint16_t k = static_cast<uint16_t>(rng.NextBelow(k_topics));
    z_[t] = k;
    const uint32_t d = layout_.token_doc[t];
    ++nd_(d, k);
    ++nw_(k, layout_.token_word[t]);
    ++nk_[k];
  }
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    for (uint32_t k = 0; k < k_topics; ++k) {
      if (nd_(d, k) != 0) {
        doc_topics_[d].push_back({static_cast<uint16_t>(k), nd_(d, k)});
      }
    }
  }
}

void FPlusLda::DecDoc(uint32_t d, uint16_t k) {
  auto& list = doc_topics_[d];
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].topic == k) {
      if (--list[i].count == 0) {
        list[i] = list.back();
        list.pop_back();
      }
      return;
    }
  }
  CULDA_CHECK_MSG(false, "doc topic list missing topic");
}

void FPlusLda::IncDoc(uint32_t d, uint16_t k) {
  auto& list = doc_topics_[d];
  for (auto& e : list) {
    if (e.topic == k) {
      ++e.count;
      return;
    }
  }
  list.push_back({k, 1});
}

void FPlusLda::Step() {
  const uint32_t k_topics = cfg_.num_topics;
  const uint32_t v_words = corpus_->vocab_size();
  const double beta_v = beta_ * v_words;
  CpuCostTracker cost;
  ++iteration_;

  std::vector<float> q(k_topics);
  for (uint32_t v = 0; v < v_words; ++v) {
    const uint64_t begin = layout_.word_offsets[v];
    const uint64_t end = layout_.word_offsets[v + 1];
    if (begin == end) continue;

    // Build α·q(k) for this word once, then maintain it incrementally.
    for (uint32_t k = 0; k < k_topics; ++k) {
      q[k] = static_cast<float>(
          alpha_ * (nw_(k, v) + beta_) /
          (static_cast<double>(nk_[k]) + beta_v));
    }
    q_tree_.Build(q);
    cost.StreamRead(k_topics * 12);  // nw row slice + nk
    cost.StreamWrite(k_topics * 4);
    cost.Flops(4ull * k_topics);

    auto refresh_topic = [&](uint16_t k) {
      q_tree_.Set(k, static_cast<float>(
                         alpha_ * (nw_(k, v) + beta_) /
                         (static_cast<double>(nk_[k]) + beta_v)));
      // log K tree nodes touched.
      cost.RandomReads(2, 8);
      cost.Flops(20);
    };

    for (uint64_t t = begin; t < end; ++t) {
      const uint32_t d = layout_.token_doc[t];
      const uint16_t old_k = z_[t];

      // Decrement.
      --nd_(d, old_k);
      --nw_(old_k, v);
      --nk_[old_k];
      DecDoc(d, old_k);
      refresh_topic(old_k);
      cost.RandomRead(4);
      cost.RandomWrite(12);

      // Sparse doc bucket s = Σ n_dk · q(k)/α  … computed with the same
      // q(k) values (q_tree leaves), scaled back by 1/α.
      const auto& list = doc_topics_[d];
      double s_mass = 0;
      for (const TopicCount& e : list) {
        s_mass += e.count * static_cast<double>(q_tree_.Get(e.topic));
      }
      s_mass /= alpha_;
      cost.StreamRead(list.size() * 6);
      cost.RandomReads(list.size(), 4);
      cost.Flops(3 * list.size());

      const double q_mass = q_tree_.Total();
      PhiloxStream rng(cfg_.seed, (static_cast<uint64_t>(iteration_) << 40) ^
                                      layout_.token_global[t]);
      double u = rng.NextDouble() * (s_mass + q_mass);

      uint16_t new_k;
      if (u < s_mass) {
        new_k = list.empty() ? old_k : list.back().topic;
        double acc = 0;
        for (const TopicCount& e : list) {
          acc += e.count * static_cast<double>(q_tree_.Get(e.topic)) /
                 alpha_;
          if (acc > u) {
            new_k = e.topic;
            break;
          }
        }
        cost.Flops(3 * list.size());
      } else {
        new_k = static_cast<uint16_t>(
            q_tree_.Sample(static_cast<float>(u - s_mass)));
        cost.RandomReads(2, 8);  // log K descent
        cost.Flops(20);
      }

      // Increment.
      z_[t] = new_k;
      ++nd_(d, new_k);
      ++nw_(new_k, v);
      ++nk_[new_k];
      IncDoc(d, new_k);
      refresh_topic(new_k);
      cost.RandomWrite(14);
    }
  }

  const double step_s = cost.Seconds();
  modeled_seconds_ += step_s;
  last_tokens_per_sec_ =
      static_cast<double>(corpus_->num_tokens()) / step_s;
}

double FPlusLda::LogLikelihoodPerToken() const {
  // Same joint formula as CpuLdaState, over this class's counts.
  const uint32_t k_topics = cfg_.num_topics;
  const uint32_t v_words = corpus_->vocab_size();
  const double lg_alpha = std::lgamma(alpha_);
  const double lg_beta = std::lgamma(beta_);
  double ll = 0;
  for (size_t d = 0; d < corpus_->num_docs(); ++d) {
    double row = 0;
    for (uint32_t k = 0; k < k_topics; ++k) {
      const int32_t c = nd_(d, k);
      row += c != 0 ? std::lgamma(c + alpha_) : lg_alpha;
    }
    ll += row - k_topics * lg_alpha + std::lgamma(k_topics * alpha_) -
          std::lgamma(static_cast<double>(corpus_->DocLength(d)) +
                      k_topics * alpha_);
  }
  for (uint32_t k = 0; k < k_topics; ++k) {
    double row = 0;
    for (uint32_t v = 0; v < v_words; ++v) {
      const int32_t c = nw_(k, v);
      row += c != 0 ? std::lgamma(c + beta_) : lg_beta;
    }
    ll += row - v_words * lg_beta + std::lgamma(v_words * beta_) -
          std::lgamma(static_cast<double>(nk_[k]) + v_words * beta_);
  }
  return ll / static_cast<double>(corpus_->num_tokens());
}

void FPlusLda::Validate() const {
  const uint32_t k_topics = cfg_.num_topics;
  // z ↔ counts.
  sparse::DenseMatrix<int32_t> nd_ref(corpus_->num_docs(), k_topics);
  sparse::DenseMatrix<int32_t> nw_ref(k_topics, corpus_->vocab_size());
  for (uint64_t t = 0; t < z_.size(); ++t) {
    ++nd_ref(layout_.token_doc[t], z_[t]);
    ++nw_ref(z_[t], layout_.token_word[t]);
  }
  int64_t grand = 0;
  for (size_t d = 0; d < corpus_->num_docs(); ++d) {
    for (uint32_t k = 0; k < k_topics; ++k) {
      CULDA_CHECK(nd_(d, k) == nd_ref(d, k));
    }
    // Doc lists agree with dense counts.
    int64_t list_sum = 0;
    for (const TopicCount& e : doc_topics_[d]) {
      CULDA_CHECK(e.count == nd_(d, e.topic));
      list_sum += e.count;
    }
    CULDA_CHECK(list_sum == static_cast<int64_t>(corpus_->DocLength(d)));
  }
  for (uint32_t k = 0; k < k_topics; ++k) {
    int64_t sum = 0;
    for (uint32_t v = 0; v < corpus_->vocab_size(); ++v) {
      CULDA_CHECK(nw_(k, v) == nw_ref(k, v));
      sum += nw_(k, v);
    }
    CULDA_CHECK(sum == nk_[k]);
    grand += sum;
  }
  CULDA_CHECK(grand == static_cast<int64_t>(corpus_->num_tokens()));
}

}  // namespace culda::baselines
