// Common interface for the comparison LDA solvers (Section 7.2).
//
// Every solver — CuLDA itself, the CPU baselines standing in for WarpLDA,
// and the de-optimized GPU baseline standing in for SaberLDA/BIDMach —
// exposes one iteration step, a cumulative *modeled* time (all systems are
// timed by the same roofline cost model, on their respective platform
// specs), and the Figure 8 quality metric.
#pragma once

#include <cstdint>
#include <string>

namespace culda::baselines {

class LdaSolver {
 public:
  virtual ~LdaSolver() = default;

  virtual std::string name() const = 0;
  /// Runs one full Gibbs/MH sweep over the corpus.
  virtual void Step() = 0;
  /// Cumulative modeled training time, seconds.
  virtual double ModeledSeconds() const = 0;
  /// Joint log-likelihood per token of the current state.
  virtual double LogLikelihoodPerToken() const = 0;
  virtual uint64_t num_tokens() const = 0;

  /// Modeled throughput of the last Step().
  double last_tokens_per_sec() const { return last_tokens_per_sec_; }

 protected:
  double last_tokens_per_sec_ = 0;
};

}  // namespace culda::baselines
