// F+LDA (Yu, Hsieh, Yun, Vishwanathan, Dhillon — WWW'15, the paper's
// reference [33]): exact collapsed Gibbs with a word-major sweep and an
// incrementally maintained F+ tree.
//
// The conditional splits like CuLDA's (Eq. 6):
//
//   p(k) ∝ n_dk · q(k)  +  α · q(k),    q(k) = (n_kv + β)/(n_k + βV)
//
// Processing tokens word-by-word means q(k) changes only at the two topics a
// token moves between, so the dense bucket lives in an F+ tree with
// O(log K) point updates and O(log K) draws, while the sparse doc bucket is
// an O(K_d) walk — giving an exact O(K_d + log K) sampler. This is the
// closest sequential ancestor of CuLDA's tree-based GPU sampler and the
// natural third CPU comparison point between dense CGS and SparseLDA.
#pragma once

#include "baselines/cpu_state.hpp"
#include "baselines/fplus_tree.hpp"
#include "baselines/lda_solver.hpp"
#include "core/config.hpp"
#include "corpus/word_first.hpp"

namespace culda::baselines {

class FPlusLda : public LdaSolver {
 public:
  FPlusLda(const corpus::Corpus& corpus, const core::CuldaConfig& cfg);

  std::string name() const override { return "F+LDA (CPU, exact O(logK))"; }
  void Step() override;
  double ModeledSeconds() const override { return modeled_seconds_; }
  double LogLikelihoodPerToken() const override;
  uint64_t num_tokens() const override { return corpus_->num_tokens(); }

  /// Count-consistency invariants (dense counts vs z vs doc lists).
  void Validate() const;

  const sparse::DenseMatrix<int32_t>& nd() const { return nd_; }
  const sparse::DenseMatrix<int32_t>& nw() const { return nw_; }

 private:
  struct TopicCount {
    uint16_t topic;
    int32_t count;
  };
  void DecDoc(uint32_t d, uint16_t k);
  void IncDoc(uint32_t d, uint16_t k);

  const corpus::Corpus* corpus_;
  core::CuldaConfig cfg_;
  double alpha_ = 0;
  double beta_ = 0;

  corpus::WordFirstChunk layout_;        ///< whole corpus, word-major
  std::vector<uint16_t> z_;              ///< topic per word-major token
  sparse::DenseMatrix<int32_t> nd_;      ///< D×K
  sparse::DenseMatrix<int32_t> nw_;      ///< K×V
  std::vector<int64_t> nk_;
  std::vector<std::vector<TopicCount>> doc_topics_;  ///< sparse θ rows
  FPlusTree q_tree_;                     ///< α·q(k) for the current word

  uint32_t iteration_ = 0;
  double modeled_seconds_ = 0;
};

}  // namespace culda::baselines
