#include "baselines/cpu_cgs.hpp"

#include "util/philox.hpp"
#include "util/prefix_sum.hpp"

namespace culda::baselines {

CpuCgs::CpuCgs(const corpus::Corpus& corpus, const core::CuldaConfig& cfg)
    : seed_(cfg.seed) {
  cfg.Validate();
  state_.Initialize(corpus, cfg.num_topics, cfg.EffectiveAlpha(), cfg.beta,
                    cfg.seed);
  cdf_.resize(cfg.num_topics);
}

void CpuCgs::Step() {
  CpuLdaState& s = state_;
  const corpus::Corpus& c = *s.corpus;
  const uint32_t k_topics = s.num_topics;
  const double beta_v = s.beta * c.vocab_size();
  CpuCostTracker cost;
  ++iteration_;

  for (size_t d = 0; d < c.num_docs(); ++d) {
    const auto tokens = c.DocTokens(d);
    const uint64_t base = c.DocBegin(d);
    for (size_t i = 0; i < tokens.size(); ++i) {
      const uint32_t w = tokens[i];
      const uint64_t t = base + i;
      const uint16_t old_k = s.z[t];

      // Collapse out the current token.
      --s.nd(d, old_k);
      --s.nw(old_k, w);
      --s.nk[old_k];

      // Dense conditional over all K topics.
      double total = 0;
      for (uint32_t k = 0; k < k_topics; ++k) {
        const double p = (s.nd(d, k) + s.alpha) * (s.nw(k, w) + s.beta) /
                         (static_cast<double>(s.nk[k]) + beta_v);
        total += p;
        cdf_[k] = total;
      }
      // nd row and nk are streamed (doc-major reuse / small hot array); the
      // nw column is a strided walk — every element is its own cache line.
      cost.StreamRead(k_topics * 4 * 2);
      cost.RandomReads(k_topics, 4);
      cost.Flops(4ull * k_topics);

      PhiloxStream rng(seed_, (static_cast<uint64_t>(iteration_) << 40) ^ t);
      const double u = rng.NextDouble() * total;
      const uint16_t new_k = static_cast<uint16_t>(UpperBoundSearch(
          std::span<const double>(cdf_.data(), k_topics), u));
      cost.Flops(32);  // binary search + draw

      s.z[t] = new_k;
      ++s.nd(d, new_k);
      ++s.nw(new_k, w);
      ++s.nk[new_k];
      cost.RandomWrite(4 * 3 + 2);
    }
  }

  const double step_s = cost.Seconds();
  modeled_seconds_ += step_s;
  last_tokens_per_sec_ = static_cast<double>(c.num_tokens()) / step_s;
}

}  // namespace culda::baselines
