#include "baselines/sparse_lda.hpp"

#include <algorithm>
#include <limits>

#include "util/philox.hpp"

namespace culda::baselines {

SparseLdaCgs::SparseLdaCgs(const corpus::Corpus& corpus,
                           const core::CuldaConfig& cfg)
    : seed_(cfg.seed) {
  cfg.Validate();
  state_.Initialize(corpus, cfg.num_topics, cfg.EffectiveAlpha(), cfg.beta,
                    cfg.seed);
  coef_.resize(cfg.num_topics);

  word_topics_.resize(corpus.vocab_size());
  for (uint32_t v = 0; v < corpus.vocab_size(); ++v) {
    for (uint32_t k = 0; k < cfg.num_topics; ++k) {
      const int32_t c = state_.nw(k, v);
      if (c != 0) {
        word_topics_[v].push_back({static_cast<uint16_t>(k), c});
      }
    }
  }
}

void SparseLdaCgs::DecWord(uint32_t w, uint16_t k) {
  auto& list = word_topics_[w];
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].topic == k) {
      if (--list[i].count == 0) {
        list[i] = list.back();
        list.pop_back();
      }
      return;
    }
  }
  CULDA_CHECK_MSG(false, "word topic list missing topic");
}

void SparseLdaCgs::IncWord(uint32_t w, uint16_t k) {
  auto& list = word_topics_[w];
  for (auto& e : list) {
    if (e.topic == k) {
      ++e.count;
      return;
    }
  }
  list.push_back({k, 1});
}

void SparseLdaCgs::Step() {
  CpuLdaState& s = state_;
  const corpus::Corpus& c = *s.corpus;
  const uint32_t k_topics = s.num_topics;
  const double alpha = s.alpha, beta = s.beta;
  const double beta_v = beta * c.vocab_size();
  CpuCostTracker cost;
  ++iteration_;

  // Smoothing bucket, rebuilt exactly once per sweep (it is maintained
  // incrementally inside; a fresh start bounds float drift).
  double s_mass = 0;
  for (uint32_t k = 0; k < k_topics; ++k) {
    s_mass += alpha * beta / (static_cast<double>(s.nk[k]) + beta_v);
  }
  cost.StreamRead(k_topics * 8);
  cost.Flops(3ull * k_topics);

  std::vector<TopicCount> doc_topics;

  for (size_t d = 0; d < c.num_docs(); ++d) {
    const auto tokens = c.DocTokens(d);
    if (tokens.empty()) continue;
    const uint64_t base = c.DocBegin(d);

    // Per-document bucket r and coefficient cache, built in O(K) and then
    // maintained incrementally (amortized O(1) per token).
    double r_mass = 0;
    doc_topics.clear();
    for (uint32_t k = 0; k < k_topics; ++k) {
      const double den = static_cast<double>(s.nk[k]) + beta_v;
      coef_[k] = alpha / den;
      const int32_t cdk = s.nd(d, k);
      if (cdk != 0) {
        coef_[k] = (cdk + alpha) / den;
        r_mass += cdk * beta / den;
        doc_topics.push_back({static_cast<uint16_t>(k), cdk});
      }
    }
    cost.StreamRead(k_topics * (4 + 8));
    cost.Flops(4ull * k_topics);

    auto update_topic = [&](uint16_t k, int delta) {
      // Adjusts nk-dependent masses and the coefficient for one topic after
      // its counts changed by delta (delta = ±1 applied already to counts).
      (void)delta;
      const double den = static_cast<double>(s.nk[k]) + beta_v;
      const int32_t cdk = s.nd(d, k);
      s_mass += alpha * beta / den;
      r_mass += cdk * beta / den;
      coef_[k] = (cdk + alpha) / den;
    };
    auto remove_topic_masses = [&](uint16_t k) {
      const double den = static_cast<double>(s.nk[k]) + beta_v;
      const int32_t cdk = s.nd(d, k);
      s_mass -= alpha * beta / den;
      r_mass -= cdk * beta / den;
    };
    auto dec_doc_list = [&](uint16_t k) {
      for (size_t i = 0; i < doc_topics.size(); ++i) {
        if (doc_topics[i].topic == k) {
          if (--doc_topics[i].count == 0) {
            doc_topics[i] = doc_topics.back();
            doc_topics.pop_back();
          }
          return;
        }
      }
      CULDA_CHECK_MSG(false, "doc topic list missing topic");
    };
    auto inc_doc_list = [&](uint16_t k) {
      for (auto& e : doc_topics) {
        if (e.topic == k) {
          ++e.count;
          return;
        }
      }
      doc_topics.push_back({k, 1});
    };

    for (size_t i = 0; i < tokens.size(); ++i) {
      const uint32_t w = tokens[i];
      const uint64_t t = base + i;
      const uint16_t old_k = s.z[t];

      // --- Decrement, keeping s/r/coef in sync.
      remove_topic_masses(old_k);
      --s.nd(d, old_k);
      --s.nw(old_k, w);
      --s.nk[old_k];
      DecWord(w, old_k);
      dec_doc_list(old_k);
      update_topic(old_k, -1);
      cost.RandomRead(8);
      cost.RandomWrite(12);
      cost.Flops(12);

      // --- q bucket over the word's non-zero topics.
      const auto& wlist = word_topics_[w];
      double q_mass = 0;
      for (const TopicCount& e : wlist) {
        q_mass += coef_[e.topic] * e.count;
      }
      cost.StreamRead(wlist.size() * 6);          // contiguous list
      cost.RandomReads(wlist.size(), 8);          // coef lookups
      cost.Flops(2 * wlist.size());

      PhiloxStream rng(seed_,
                       (static_cast<uint64_t>(iteration_) << 40) ^ t);
      double u = rng.NextDouble() * (s_mass + r_mass + q_mass);
      uint16_t new_k = std::numeric_limits<uint16_t>::max();

      if (u < q_mass) {
        // Topic-word bucket: walk the word list.
        for (const TopicCount& e : wlist) {
          u -= coef_[e.topic] * e.count;
          if (u <= 0) {
            new_k = e.topic;
            break;
          }
        }
        if (new_k == std::numeric_limits<uint16_t>::max()) {
          new_k = wlist.back().topic;  // float round-off guard
        }
        cost.Flops(2 * wlist.size());
      } else if (u < q_mass + r_mass) {
        // Document bucket: walk the doc list.
        u -= q_mass;
        for (const TopicCount& e : doc_topics) {
          u -= e.count * beta / (static_cast<double>(s.nk[e.topic]) + beta_v);
          if (u <= 0) {
            new_k = e.topic;
            break;
          }
        }
        if (new_k == std::numeric_limits<uint16_t>::max()) {
          new_k = doc_topics.back().topic;
        }
        cost.Flops(3 * doc_topics.size());
      } else {
        // Smoothing bucket: rare (mass αβΣ1/den), full scan.
        u -= q_mass + r_mass;
        new_k = static_cast<uint16_t>(k_topics - 1);
        for (uint32_t k = 0; k < k_topics; ++k) {
          u -= alpha * beta / (static_cast<double>(s.nk[k]) + beta_v);
          if (u <= 0) {
            new_k = static_cast<uint16_t>(k);
            break;
          }
        }
        cost.StreamRead(k_topics * 8);
        cost.Flops(3ull * k_topics);
      }

      // --- Increment.
      remove_topic_masses(new_k);
      s.z[t] = new_k;
      ++s.nd(d, new_k);
      ++s.nw(new_k, w);
      ++s.nk[new_k];
      IncWord(w, new_k);
      inc_doc_list(new_k);
      update_topic(new_k, +1);
      cost.RandomWrite(14);
      cost.Flops(12);
    }

    // Remove this document's contribution to coef (next doc rebuilds), and
    // r resets naturally. Nothing to do — coef is rebuilt per doc.
  }

  const double step_s = cost.Seconds();
  modeled_seconds_ += step_s;
  last_tokens_per_sec_ = static_cast<double>(c.num_tokens()) / step_s;
}

void SparseLdaCgs::ValidateStructures() const {
  for (uint32_t v = 0; v < state_.corpus->vocab_size(); ++v) {
    int64_t list_sum = 0;
    for (const TopicCount& e : word_topics_[v]) {
      CULDA_CHECK(e.count > 0);
      CULDA_CHECK(state_.nw(e.topic, v) == e.count);
      list_sum += e.count;
    }
    int64_t dense_sum = 0;
    for (uint32_t k = 0; k < state_.num_topics; ++k) {
      dense_sum += state_.nw(k, v);
    }
    CULDA_CHECK_MSG(list_sum == dense_sum,
                    "word " << v << " topic list out of sync");
  }
}

}  // namespace culda::baselines
