// Analytic model of a distributed parameter-server LDA (the paper's LDA*
// comparison, Section 7.2).
//
// LDA* (Yu et al., VLDB'17) is closed-source and runs on a 20-node Ethernet
// cluster; the paper cites its published PubMed curve and attributes the gap
// to network bandwidth: every iteration the workers must exchange the
// topic–word model over 10 Gb/s links, which is orders of magnitude slower
// than PCIe/NVLink. This model reproduces exactly that arithmetic: an
// iteration is the sampling time (corpus split over N workers, each a
// WarpLDA-class CPU sampler) plus the parameter-server synchronization time
// (push + pull of the model delta over the shared network).
#pragma once

#include <cstdint>

#include "gpusim/device_spec.hpp"
#include "util/check.hpp"

namespace culda::baselines {

struct DistributedLdaModel {
  int num_nodes = 20;  ///< LDA* uses 20 nodes for PubMed
  /// Per-node sampling throughput (tokens/s); pair with the measured
  /// throughput of WarpMhSampler for a consistent comparison.
  double node_tokens_per_sec = 100e6;
  gpusim::LinkSpec network = gpusim::Ethernet10G();
  /// Bytes of model exchanged per worker per iteration (push the local
  /// delta + pull the fresh model ⇒ 2 × model size).
  uint64_t model_bytes = 0;

  /// Simulated seconds for one iteration over `tokens` tokens.
  double IterationSeconds(uint64_t tokens) const {
    CULDA_CHECK(num_nodes >= 1);
    CULDA_CHECK(node_tokens_per_sec > 0);
    // model_bytes defaults to 0; a caller that forgets to set it would get
    // a silently-free network (sync_s == 0) and this baseline would "win"
    // every comparison it appears in — fail loudly instead.
    CULDA_CHECK_MSG(model_bytes > 0,
                    "DistributedLdaModel.model_bytes is unset (0); set it to "
                    "the exchanged model size before calling "
                    "IterationSeconds, or the network term is silently free");
    const double sampling_s =
        static_cast<double>(tokens) /
        (node_tokens_per_sec * static_cast<double>(num_nodes));
    // The parameter server's NIC is the bottleneck link: all workers' push
    // and pull traffic serializes through it. Guard the 2·model·N volume
    // against uint64 wrap before multiplying (the ByteReader convention:
    // validate against the ceiling, never detect after the fact).
    const uint64_t nodes_u = static_cast<uint64_t>(num_nodes);
    CULDA_CHECK_MSG(
        model_bytes <= UINT64_MAX / 2 / nodes_u,
        "DistributedLdaModel sync volume overflows uint64: 2 * model_bytes ("
            << model_bytes << ") * num_nodes (" << num_nodes
            << ") exceeds UINT64_MAX");
    const double sync_s =
        network.TransferSeconds(2ull * model_bytes * nodes_u);
    return sampling_s + sync_s;
  }
};

}  // namespace culda::baselines
