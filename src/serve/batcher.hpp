// Request coalescing for the serving daemon: a bounded MPSC queue whose
// consumer side yields *batches* shaped by a latency budget.
//
// Many client threads Enqueue single requests; one dispatch thread calls
// NextBatch, which blocks until either `max_batch` requests are pending or
// the oldest pending request has waited `max_wait_ms` — whichever comes
// first — then hands back up to `max_batch` tickets. That is the whole
// batching policy: a full batch flushes immediately (throughput), a lone
// request never waits longer than the budget (latency).
//
// Admission control is explicit: the queue is bounded at `max_queue`, and
// an Enqueue against a full (or closed) queue returns false *immediately*
// — the caller sheds the request with a backpressure response instead of
// blocking the client or buffering unboundedly. Shedding at the front
// door keeps the queue-wait of admitted requests bounded by roughly
// (max_queue / max_batch) × batch-inference-time, which is what makes the
// serve.queue.wait histogram a meaningful SLO signal.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "serve/protocol.hpp"

namespace culda::serve {

struct BatcherOptions {
  /// Flush threshold and hard cap on batch size.
  size_t max_batch = 64;
  /// Latency budget: a non-empty pending set never waits longer than this
  /// before dispatch, even if the batch is not full.
  double max_wait_ms = 5.0;
  /// Admission bound on pending (not yet dispatched) requests; beyond it
  /// Enqueue sheds. 0 is legal and sheds everything (useful in tests).
  size_t max_queue = 1024;
};

/// One queued request plus its completion callback and enqueue timestamp.
/// The callback is invoked exactly once, from the dispatch thread, when
/// the request's batch completes — shed requests never enter the queue
/// (Enqueue returns false and the caller responds inline). The enqueue
/// stamp doubles as the start of the request's serve/queue_wait span (the
/// request's trace context rides on ServeRequest::trace_ctx), so the wait
/// is visible per-request in the merged trace, not just as a histogram.
struct Ticket {
  ServeRequest request;
  std::function<void(ServeResponse)> done;
  std::chrono::steady_clock::time_point enqueued;
};

class CoalescingBatcher {
 public:
  explicit CoalescingBatcher(BatcherOptions options);

  /// Thread-safe; never blocks. False = shed (queue full or closed) — the
  /// ticket is only consumed on success, so on failure the caller still
  /// owns it and answers it (typically with a backpressure response).
  bool Enqueue(Ticket&& ticket);

  /// Dispatch side (single consumer). Blocks per the flush policy above;
  /// returns an empty vector only when the batcher is closed and fully
  /// drained — the dispatch loop's termination condition.
  std::vector<Ticket> NextBatch();

  /// Stops admissions (Enqueue → false). Pending requests remain and
  /// NextBatch keeps returning them until empty: closing is *graceful* —
  /// drain, don't drop. Idempotent.
  void Close();

  size_t pending() const;
  bool closed() const;

 private:
  const BatcherOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  ///< consumer wakeups
  std::deque<Ticket> queue_;
  bool closed_ = false;
};

}  // namespace culda::serve
