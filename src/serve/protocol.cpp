#include "serve/protocol.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>

#include "obs/json.hpp"

namespace culda::serve {

namespace {

// ---------------------------------------------------------------------------
// A deliberately small strict JSON reader — just what the request schema
// needs (objects of strings / unsigned integers / integer arrays), with the
// failure modes spelled out. Internal errors throw ParseFail and surface as
// a bad_request response; nothing here ever throws out of ParseRequestLine.
// ---------------------------------------------------------------------------

struct ParseFail {
  std::string msg;
};

[[noreturn]] void Fail(std::string msg) { throw ParseFail{std::move(msg)}; }

class Reader {
 public:
  explicit Reader(std::string_view s) : p_(s.data()), end_(s.data() + s.size()) {}

  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\r')) ++p_;
  }
  bool AtEnd() {
    SkipWs();
    return p_ == end_;
  }
  char Peek() {
    SkipWs();
    if (p_ == end_) Fail("unexpected end of input");
    return *p_;
  }
  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++p_;
  }
  bool TryConsume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++p_;
    return true;
  }

  /// JSON string with the standard escapes; \uXXXX is decoded to UTF-8
  /// (surrogate pairs rejected — request ids are short ASCII in practice).
  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (p_ == end_) Fail("unterminated string");
      const char c = *p_++;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) Fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) Fail("unterminated escape");
      const char e = *p_++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end_ - p_ < 4) Fail("truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= h - '0';
            else if (h >= 'a' && h <= 'f') cp |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') cp |= h - 'A' + 10;
            else Fail("bad hex digit in \\u escape");
          }
          if (cp >= 0xD800 && cp <= 0xDFFF) Fail("surrogate \\u escapes are not supported");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: Fail("unknown escape");
      }
    }
  }

  /// Non-negative integer ≤ `max`. The schema has no fractional or signed
  /// fields, so anything else (floats, exponents, minus) fails loudly.
  uint64_t ParseUint(uint64_t max, const char* what) {
    SkipWs();
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      Fail(std::string(what) + " must be a non-negative integer");
    }
    uint64_t v = 0;
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
      const uint64_t d = static_cast<uint64_t>(*p_ - '0');
      if (v > (std::numeric_limits<uint64_t>::max() - d) / 10) {
        Fail(std::string(what) + " is out of range");
      }
      v = v * 10 + d;
      ++p_;
    }
    if (p_ < end_ && (*p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      Fail(std::string(what) + " must be an integer");
    }
    if (v > max) Fail(std::string(what) + " is out of range");
    return v;
  }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace

ServeResponse MakeErrorResponse(std::string id, std::string_view code,
                                std::string detail) {
  ServeResponse r;
  r.id = std::move(id);
  r.ok = false;
  r.error = code;
  r.detail = std::move(detail);
  return r;
}

ParsedLine ParseRequestLine(std::string_view line) {
  ParsedLine out;
  Reader r(line);
  if (r.AtEnd()) {
    out.kind = LineKind::kError;
    out.error.clear();  // blank line: caller skips silently
    return out;
  }
  try {
    r.Expect('{');
    bool have_id = false, have_words = false, have_seed = false,
         have_op = false, have_trace = false;
    if (!r.TryConsume('}')) {
      do {
        const std::string key = r.ParseString();
        r.Expect(':');
        if (key == "id") {
          if (have_id) Fail("duplicate \"id\"");
          have_id = true;
          out.request.id = r.ParseString();
          if (out.request.id.empty()) Fail("\"id\" must be a non-empty string");
        } else if (key == "words") {
          if (have_words) Fail("duplicate \"words\"");
          have_words = true;
          r.Expect('[');
          if (!r.TryConsume(']')) {
            do {
              out.request.words.push_back(static_cast<uint32_t>(
                  r.ParseUint(std::numeric_limits<uint32_t>::max() - 1,
                              "\"words\" entry")));
            } while (r.TryConsume(','));
            r.Expect(']');
          }
        } else if (key == "seed") {
          if (have_seed) Fail("duplicate \"seed\"");
          have_seed = true;
          out.request.seed =
              r.ParseUint(std::numeric_limits<uint64_t>::max(), "\"seed\"");
        } else if (key == "trace") {
          if (have_trace) Fail("duplicate \"trace\"");
          have_trace = true;
          out.request.trace = r.ParseString();
          if (out.request.trace.empty()) {
            Fail("\"trace\" must be a non-empty string");
          }
          if (out.request.trace.size() > 128) {
            Fail("\"trace\" is too long (max 128 bytes)");
          }
        } else if (key == "op") {
          if (have_op) Fail("duplicate \"op\"");
          have_op = true;
          out.op = r.ParseString();
        } else {
          Fail("unknown field \"" + key + "\"");
        }
      } while (r.TryConsume(','));
      r.Expect('}');
    }
    if (!r.AtEnd()) Fail("trailing garbage after request object");

    if (have_op) {
      if (have_words || have_seed || have_trace) {
        Fail("control requests take only \"op\" and an optional \"id\"");
      }
      if (out.op != "reload" && out.op != "stats" && out.op != "drain") {
        Fail("unknown op \"" + out.op + "\" (expected reload|stats|drain)");
      }
      out.kind = LineKind::kControl;
      out.id = out.request.id;
      return out;
    }
    if (!have_id) Fail("missing required field \"id\"");
    if (!have_words) Fail("missing required field \"words\"");
    out.kind = LineKind::kInfer;
    return out;
  } catch (const ParseFail& e) {
    out.kind = LineKind::kError;
    out.id = out.request.id;
    out.error = e.msg;
    return out;
  }
}

std::string FormatResponse(const ServeResponse& response) {
  obs::JsonObject obj;
  obj.Add("id", response.id);
  // Echoed identically on every path (daemon, oneshot, errors), so the
  // daemon-vs-oneshot bit-identity diff is unaffected by tracing.
  if (!response.trace.empty()) obj.Add("trace", response.trace);
  obj.Add("ok", response.ok);
  if (!response.ok) {
    obj.Add("error", response.error);
    if (!response.detail.empty()) obj.Add("detail", response.detail);
    return obj.str();
  }
  obj.Add("generation", response.generation)
      .Add("tokens", response.result.tokens);
  std::string topics = "[";
  for (const auto& dt : response.result.mixture) {
    if (topics.size() > 1) topics += ",";
    topics += "[" + std::to_string(dt.topic) + "," +
              obs::JsonNumber(dt.proportion) + "]";
  }
  topics += "]";
  obj.AddRaw("topics", topics);
  std::string assignments = "[";
  for (const uint16_t z : response.result.assignments) {
    if (assignments.size() > 1) assignments += ",";
    assignments += std::to_string(z);
  }
  assignments += "]";
  obj.AddRaw("assignments", assignments);
  return obj.str();
}

std::string FormatControlAck(std::string_view id, std::string_view op,
                             uint64_t generation,
                             std::string_view payload_json) {
  obs::JsonObject obj;
  if (!id.empty()) obj.Add("id", id);
  obj.Add("ok", true).Add("op", op).Add("generation", generation);
  if (!payload_json.empty()) obj.AddRaw("payload", payload_json);
  return obj.str();
}

}  // namespace culda::serve
