#include "serve/batcher.hpp"

#include "util/check.hpp"

namespace culda::serve {

CoalescingBatcher::CoalescingBatcher(BatcherOptions options)
    : options_(options) {
  CULDA_CHECK_MSG(options_.max_batch >= 1, "max_batch must be >= 1");
  CULDA_CHECK_MSG(options_.max_wait_ms >= 0, "max_wait_ms must be >= 0");
}

bool CoalescingBatcher::Enqueue(Ticket&& ticket) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= options_.max_queue) return false;
    queue_.push_back(std::move(ticket));
    // Only the batch-full edge needs a wakeup: a consumer already waiting
    // on the age deadline of an earlier request wakes by timeout anyway,
    // but notifying on every enqueue keeps the empty→non-empty and
    // below→at-threshold transitions prompt and is cheap at this rate.
  }
  ready_.notify_one();
  return true;
}

std::vector<Ticket> CoalescingBatcher::NextBatch() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto wait_budget = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(options_.max_wait_ms));
  while (true) {
    if (queue_.size() >= options_.max_batch || closed_) break;
    if (queue_.empty()) {
      ready_.wait(lock);
      continue;
    }
    // Oldest pending request sets the deadline; flush when it expires.
    const auto deadline = queue_.front().enqueued + wait_budget;
    if (std::chrono::steady_clock::now() >= deadline) break;
    ready_.wait_until(lock, deadline);
  }
  std::vector<Ticket> batch;
  const size_t n = std::min(queue_.size(), options_.max_batch);
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;  // empty ⇔ closed and drained
}

void CoalescingBatcher::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

size_t CoalescingBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool CoalescingBatcher::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace culda::serve
