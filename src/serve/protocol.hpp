// culda_serve wire protocol: JSON Lines over stdin/stdout or a Unix
// socket. One request per line, one response per line; responses carry the
// request's id and come back in *completion* order (sort by id to compare
// runs). The full schema, knobs, and examples are in docs/serving.md
// ("Daemon").
//
// Inference request:   {"id":"r1","words":[3,17,3],"seed":7,"trace":"t-9"}
//   id     required; any non-empty string (echoed verbatim)
//   words  required; vocabulary ids (checked against the serving snapshot)
//   seed   optional (default 7); per-document Philox seed, so a request's
//          result depends only on (snapshot, words, seed, iterations) —
//          never on how requests happened to coalesce into batches
//   trace  optional; non-empty client trace tag (≤ 128 bytes), echoed in
//          the response and hashed deterministically into the request's
//          64-bit trace id when --trace-out is active, so client logs and
//          server spans correlate (docs/observability.md)
// Control request:     {"op":"reload"} | {"op":"stats"} | {"op":"drain"}
//   optionally with an "id" to correlate the acknowledgement
//
// Response (ok):   {"id":"r1","ok":true,"generation":2,"tokens":3,
//                   "topics":[[4,0.61],[9,0.2]],"assignments":[4,9,4]}
// Response (err):  {"id":"r1","ok":false,"error":"shed",
//                   "detail":"queue full (1024 pending)"}
//   error codes: "bad_request" (malformed JSON / schema / out-of-vocab
//   word), "shed" (admission control: bounded queue full — retry later),
//   "draining" (daemon is shutting down and no longer accepts work).
//
// Parsing is strict in the PR 5 CLI spirit: unknown fields, wrong types,
// duplicate keys, trailing garbage, and non-integer word ids are all
// rejected with a descriptive bad_request — a typo'd field name must fail
// loudly, not be silently ignored.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/inference.hpp"
#include "obs/trace.hpp"

namespace culda::serve {

/// A parsed inference request.
struct ServeRequest {
  std::string id;
  std::vector<uint32_t> words;
  uint64_t seed = 7;
  std::string trace;  ///< client trace tag (wire field; echoed back)
  /// Internal, not wire data: the request's trace context, minted by the
  /// frontend (or by Submit when absent) while tracing is enabled, so the
  /// parse span and the daemon's queue/infer/respond spans share one
  /// trace id.
  obs::TraceContext trace_ctx;
};

/// One response line. `Format*` below render it; inference payload fields
/// are only present when ok.
struct ServeResponse {
  std::string id;
  std::string trace;   ///< echoed client trace tag (may be empty)
  bool ok = false;
  std::string error;   ///< "bad_request" | "shed" | "draining" (when !ok)
  std::string detail;  ///< human-readable elaboration (when !ok)
  uint64_t generation = 0;            ///< snapshot that served the request
  core::InferenceResult result;       ///< when ok
};

ServeResponse MakeErrorResponse(std::string id, std::string_view code,
                                std::string detail);

/// What one input line parsed into.
enum class LineKind {
  kInfer,    ///< a ServeRequest
  kControl,  ///< an {"op": ...} control request
  kError,    ///< malformed — answer with `error` and keep serving
};

struct ParsedLine {
  LineKind kind = LineKind::kError;
  ServeRequest request;  ///< kInfer
  std::string op;        ///< kControl: "reload" | "stats" | "drain"
  std::string id;        ///< id to echo (kControl/kError; may be empty)
  std::string error;     ///< kError: what was wrong
};

/// Parses one JSONL request line. Never throws: malformed input comes back
/// as kError with a message. Blank lines are kError with empty `error` —
/// callers skip them silently.
ParsedLine ParseRequestLine(std::string_view line);

/// Renders a response as one JSON line (no trailing newline). Doubles are
/// printed round-trippably (obs::JsonNumber), so two runs that produced
/// bit-identical InferenceResults produce byte-identical response lines —
/// the property the CI smoke's daemon-vs-oneshot diff gates on.
std::string FormatResponse(const ServeResponse& response);

/// Renders a control acknowledgement, e.g. {"id":..,"ok":true,"op":"reload",
/// "generation":3}. `payload` (may be empty) is spliced in as extra fields.
std::string FormatControlAck(std::string_view id, std::string_view op,
                             uint64_t generation,
                             std::string_view payload_json = {});

}  // namespace culda::serve
