// Transports for ServeDaemon: a JSONL line loop over any fd pair (stdin/
// stdout in the tool, one loop per connection under the socket listener)
// and a Unix-domain-socket acceptor for concurrent clients.
//
// The frontends are deliberately thin: they parse lines, Submit, and write
// response lines back (completion order, one write per line, serialized by
// a shared writer so concurrent batch completions never interleave bytes).
// Control ops are handled here — "reload" asks the embedder for a fresh
// snapshot via ReloadFn and publishes it (the tool's hot-swap path),
// "stats" answers with ServeDaemon::StatsPayloadJson (daemon state + the
// full registry snapshot, per-endpoint histograms included), "drain" acks,
// stops this frontend, and reports drain_requested so the caller runs the
// daemon's graceful drain.
//
// All blocking I/O is poll()-bounded and installed without SA_RESTART
// (util/signal.hpp), so SIGINT/SIGTERM stops a frontend within one poll
// interval even when no input is arriving.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "core/snapshot.hpp"
#include "serve/server.hpp"

namespace culda::serve {

/// Builds the next model generation for a "reload" op (e.g. re-read
/// --model from disk). Throws culda::Error on failure; the frontend
/// answers the op with error "reload_failed" and keeps serving the
/// current generation.
using ReloadFn = std::function<core::SnapshotPtr()>;

struct FrontendOptions {
  /// How often blocked reads wake up to check shutdown/stop flags.
  int poll_interval_ms = 50;
  /// Hard cap on one request line; longer input fails the connection
  /// loudly instead of buffering without bound.
  size_t max_line_bytes = 16u << 20;
  /// Optional external stop flag (the socket listener points every
  /// connection loop at its own); null = only EOF/drain/signals stop.
  const std::atomic<bool>* stop = nullptr;
};

struct FrontendResult {
  uint64_t lines = 0;            ///< non-blank request lines consumed
  bool drain_requested = false;  ///< a {"op":"drain"} arrived
};

/// Runs one JSONL request loop: read lines from `in_fd` until EOF, a drain
/// op, a stop flag, or ShutdownRequested(); write responses to `out_fd`.
/// Returns without draining the daemon — callers own shutdown sequencing
/// (several frontends may share one daemon). Response writes that started
/// before return are completed by the daemon's dispatch thread through a
/// refcounted writer, so returning early never dangles a callback.
FrontendResult RunLineFrontend(ServeDaemon& daemon, int in_fd, int out_fd,
                               const ReloadFn& reload,
                               FrontendOptions options = {});

/// Accepts concurrent clients on a Unix domain socket; each connection
/// runs RunLineFrontend on its own thread. A drain op from any client (or
/// a process signal) stops the listener and every connection.
class SocketFrontend {
 public:
  /// Binds and listens; throws culda::Error if the path is taken or too
  /// long (sun_path is ~107 bytes). The socket file is unlinked on
  /// destruction.
  SocketFrontend(ServeDaemon& daemon, std::string path, ReloadFn reload,
                 FrontendOptions options = {});
  ~SocketFrontend();

  SocketFrontend(const SocketFrontend&) = delete;
  SocketFrontend& operator=(const SocketFrontend&) = delete;

  /// Accept loop; returns once stopped (Stop(), a drain op, or a shutdown
  /// signal) with every connection thread joined.
  FrontendResult Run();

  /// Asks Run() to return; safe from any thread. Idempotent.
  void Stop();

  const std::string& path() const { return path_; }

 private:
  ServeDaemon& daemon_;
  std::string path_;
  ReloadFn reload_;
  FrontendOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
};

}  // namespace culda::serve
