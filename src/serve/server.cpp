#include "serve/server.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace culda::serve {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ServeDaemon::ServeDaemon(ServeDaemonOptions options, core::SnapshotPtr initial)
    : options_(options),
      slot_(std::move(initial)),
      batcher_(options.batch),
      dispatcher_([this] { DispatchLoop(); }) {}

ServeDaemon::~ServeDaemon() { Drain(); }

core::SnapshotPtr ServeDaemon::Publish(core::SnapshotPtr next) {
  CULDA_CHECK_MSG(next != nullptr, "cannot publish a null snapshot");
  CULDA_OBS_COUNT("serve.snapshot.swaps", 1);
  return slot_.Publish(std::move(next));
}

void ServeDaemon::Submit(ServeRequest request,
                         std::function<void(ServeResponse)> done) {
  CULDA_OBS_COUNT("serve.requests", 1);
  Ticket ticket;
  ticket.request = std::move(request);
  ticket.done = std::move(done);
  ticket.enqueued = std::chrono::steady_clock::now();
  if (!batcher_.Enqueue(std::move(ticket))) {
    // Enqueue only consumes the ticket on success; here we still own it.
    // Respond inline — backpressure must be immediate and non-blocking.
    CULDA_OBS_COUNT("serve.shed.count", 1);
    const bool draining = batcher_.closed();
    ticket.done(MakeErrorResponse(
        std::move(ticket.request.id),
        draining ? "draining" : "shed",
        draining ? "daemon is shutting down"
                 : "queue full (" + std::to_string(options_.batch.max_queue) +
                       " pending)"));
  }
}

std::future<ServeResponse> ServeDaemon::Submit(ServeRequest request) {
  auto promise = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> future = promise->get_future();
  Submit(std::move(request),
         [promise](ServeResponse r) { promise->set_value(std::move(r)); });
  return future;
}

void ServeDaemon::Drain() {
  std::call_once(drained_, [this] {
    batcher_.Close();
    if (dispatcher_.joinable()) dispatcher_.join();
  });
}

void ServeDaemon::DispatchLoop() {
  while (true) {
    std::vector<Ticket> batch = batcher_.NextBatch();
    if (batch.empty()) return;  // closed and drained
    ServeBatch(std::move(batch));
  }
}

void ServeDaemon::ServeBatch(std::vector<Ticket> batch) {
  const auto dispatched = std::chrono::steady_clock::now();
  CULDA_OBS_COUNT("serve.batches", 1);
  // Unit abuse by design: the latency histogram's value axis is just
  // doubles, so batch size is recorded as-is (docs/serving.md documents
  // the unit as requests-per-batch).
  CULDA_OBS_HIST("serve.batch.size", static_cast<double>(batch.size()));
  for (const Ticket& t : batch) {
    CULDA_OBS_HIST("serve.queue.wait",
                   std::chrono::duration<double>(dispatched - t.enqueued)
                       .count());
  }

  // Pin the current generation for the whole batch (RCU read-side): a
  // Publish racing with us retires the old snapshot only after this
  // shared_ptr dies.
  const core::SnapshotPtr snap = slot_.Acquire();
  if (snap == nullptr) {
    for (Ticket& t : batch) {
      CULDA_OBS_COUNT("serve.responses.error", 1);
      t.done(MakeErrorResponse(std::move(t.request.id), "draining",
                               "no model published"));
    }
    return;
  }

  // Vocabulary check against *this batch's* snapshot: a request that
  // out-runs the model it was written for gets a per-request error, and
  // the rest of the batch proceeds.
  const uint32_t vocab = snap->model().vocab_size;
  std::vector<size_t> live;  ///< indices into batch that infer
  std::vector<std::vector<uint32_t>> docs;
  std::vector<uint64_t> seeds;
  live.reserve(batch.size());
  docs.reserve(batch.size());
  seeds.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    bool in_vocab = true;
    for (const uint32_t w : batch[i].request.words) {
      if (w >= vocab) {
        in_vocab = false;
        CULDA_OBS_COUNT("serve.responses.error", 1);
        batch[i].done(MakeErrorResponse(
            std::move(batch[i].request.id), "bad_request",
            "word id " + std::to_string(w) + " is out of vocabulary (V=" +
                std::to_string(vocab) + ")"));
        break;
      }
    }
    if (!in_vocab) continue;
    live.push_back(i);
    docs.push_back(std::move(batch[i].request.words));
    seeds.push_back(batch[i].request.seed);
  }

  std::vector<core::InferenceResult> results;
  if (!docs.empty()) {
    CULDA_OBS_TIMED("serve.batch.infer");
    results = snap->engine().InferBatch(docs, options_.iterations, seeds);
  }
  for (size_t j = 0; j < live.size(); ++j) {
    Ticket& t = batch[live[j]];
    ServeResponse response;
    response.id = std::move(t.request.id);
    response.ok = true;
    response.generation = snap->generation();
    response.result = std::move(results[j]);
    CULDA_OBS_COUNT("serve.responses.ok", 1);
    CULDA_OBS_HIST("serve.request.latency", SecondsSince(t.enqueued));
    t.done(std::move(response));
  }
}

}  // namespace culda::serve
