#include "serve/server.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "obs/obs.hpp"
#include "obs/sink.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace culda::serve {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ServeDaemon::ServeDaemon(ServeDaemonOptions options, core::SnapshotPtr initial)
    : options_(options),
      slot_(std::move(initial)),
      batcher_(options.batch),
      dispatcher_([this] { DispatchLoop(); }) {}

ServeDaemon::~ServeDaemon() { Drain(); }

core::SnapshotPtr ServeDaemon::Publish(core::SnapshotPtr next) {
  CULDA_CHECK_MSG(next != nullptr, "cannot publish a null snapshot");
  CULDA_OBS_COUNT("serve.snapshot.swaps", 1);
  return slot_.Publish(std::move(next));
}

void ServeDaemon::Submit(ServeRequest request,
                         std::function<void(ServeResponse)> done) {
  CULDA_OBS_COUNT("serve.requests", 1);
  if (obs::SpanTracer::Global().enabled() && !request.trace_ctx.valid()) {
    // Embedders that skip the frontend still get a request trace; the
    // frontend mints the context earlier so its parse span joins in.
    request.trace_ctx = obs::NewRequestContext(request.trace);
  }
  Ticket ticket;
  ticket.request = std::move(request);
  ticket.done = std::move(done);
  ticket.enqueued = std::chrono::steady_clock::now();
  if (!batcher_.Enqueue(std::move(ticket))) {
    // Enqueue only consumes the ticket on success; here we still own it.
    // Respond inline — backpressure must be immediate and non-blocking.
    CULDA_OBS_COUNT("serve.shed.count", 1);
    const bool draining = batcher_.closed();
    ServeResponse resp = MakeErrorResponse(
        std::move(ticket.request.id),
        draining ? "draining" : "shed",
        draining ? "daemon is shutting down"
                 : "queue full (" + std::to_string(options_.batch.max_queue) +
                       " pending)");
    resp.trace = std::move(ticket.request.trace);
    ticket.done(std::move(resp));
  }
}

std::future<ServeResponse> ServeDaemon::Submit(ServeRequest request) {
  auto promise = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> future = promise->get_future();
  Submit(std::move(request),
         [promise](ServeResponse r) { promise->set_value(std::move(r)); });
  return future;
}

void ServeDaemon::Drain() {
  std::call_once(drained_, [this] {
    batcher_.Close();
    if (dispatcher_.joinable()) dispatcher_.join();
  });
}

void ServeDaemon::DispatchLoop() {
  while (true) {
    std::vector<Ticket> batch = batcher_.NextBatch();
    if (batch.empty()) return;  // closed and drained
    ServeBatch(std::move(batch));
  }
}

void ServeDaemon::ServeBatch(std::vector<Ticket> batch) {
  const auto dispatched = std::chrono::steady_clock::now();
  CULDA_OBS_COUNT("serve.batches", 1);
  // Unit abuse by design: the latency histogram's value axis is just
  // doubles, so batch size is recorded as-is (docs/serving.md documents
  // the unit as requests-per-batch).
  CULDA_OBS_HIST("serve.batch.size", static_cast<double>(batch.size()));

  // The coalesced batch gets a trace of its own; each member request's
  // spans link into it (the "link" arg), so Perfetto shows both the
  // per-request story and which requests shared a batch.
  obs::SpanTracer& tracer = obs::SpanTracer::Global();
  const bool tracing = tracer.enabled();
  obs::TraceContext batch_ctx;
  double dispatch_s = 0;
  if (tracing) {
    batch_ctx = obs::NewRequestContext();
    dispatch_s = tracer.ToSeconds(dispatched);
  }
  // Serving heartbeat (the dispatcher analogue of train/step): with the
  // flight recorder armed but tracing off — a --metrics-out-only daemon —
  // the ring would otherwise stay empty, and a fatal-signal dump would
  // say nothing about what the daemon was doing when it died.
  CULDA_OBS_EVENT("serve/dispatch");
  for (const Ticket& t : batch) {
    CULDA_OBS_HIST("serve.queue.wait",
                   std::chrono::duration<double>(dispatched - t.enqueued)
                       .count());
    if (tracing && t.request.trace_ctx.valid()) {
      // The wait span starts at the ticket's enqueue stamp — a span whose
      // recording site runs only after the wait ended.
      tracer.RecordSpan("serve/queue_wait", tracer.ToSeconds(t.enqueued),
                        dispatch_s, obs::ChildContext(t.request.trace_ctx),
                        batch_ctx.span_id);
    }
  }

  // Pin the current generation for the whole batch (RCU read-side): a
  // Publish racing with us retires the old snapshot only after this
  // shared_ptr dies.
  const core::SnapshotPtr snap = slot_.Acquire();
  if (snap == nullptr) {
    for (Ticket& t : batch) {
      CULDA_OBS_COUNT("serve.responses.error", 1);
      ServeResponse resp = MakeErrorResponse(std::move(t.request.id),
                                             "draining",
                                             "no model published");
      resp.trace = std::move(t.request.trace);
      t.done(std::move(resp));
    }
    return;
  }

  // Vocabulary check against *this batch's* snapshot: a request that
  // out-runs the model it was written for gets a per-request error, and
  // the rest of the batch proceeds.
  const uint32_t vocab = snap->model().vocab_size;
  std::vector<size_t> live;  ///< indices into batch that infer
  std::vector<std::vector<uint32_t>> docs;
  std::vector<uint64_t> seeds;
  live.reserve(batch.size());
  docs.reserve(batch.size());
  seeds.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    bool in_vocab = true;
    for (const uint32_t w : batch[i].request.words) {
      if (w >= vocab) {
        in_vocab = false;
        CULDA_OBS_COUNT("serve.responses.error", 1);
        ServeResponse resp = MakeErrorResponse(
            std::move(batch[i].request.id), "bad_request",
            "word id " + std::to_string(w) + " is out of vocabulary (V=" +
                std::to_string(vocab) + ")");
        resp.trace = std::move(batch[i].request.trace);
        batch[i].done(std::move(resp));
        break;
      }
    }
    if (!in_vocab) continue;
    live.push_back(i);
    docs.push_back(std::move(batch[i].request.words));
    seeds.push_back(batch[i].request.seed);
  }

  std::vector<core::InferenceResult> results;
  const double infer_start_s = tracing ? tracer.NowSeconds() : 0;
  if (!docs.empty()) {
    CULDA_OBS_TIMED("serve.batch.infer");
    // Inference runs under the batch's own span (child of batch_ctx), so
    // any macro spans inside the engine chain into the batch trace via
    // the thread-local context.
    obs::ScopedSpan batch_infer_span("serve/infer_batch", batch_ctx);
    results = snap->engine().InferBatch(docs, options_.iterations, seeds);
  }
  const double infer_end_s = tracing ? tracer.NowSeconds() : 0;
  for (size_t j = 0; j < live.size(); ++j) {
    Ticket& t = batch[live[j]];
    ServeResponse response;
    response.id = std::move(t.request.id);
    response.trace = std::move(t.request.trace);
    response.ok = true;
    response.generation = snap->generation();
    response.result = std::move(results[j]);
    const double latency_s = SecondsSince(t.enqueued);
    CULDA_OBS_COUNT("serve.responses.ok", 1);
    CULDA_OBS_HIST("serve.request.latency", latency_s);
    // The per-endpoint breakdown (ROADMAP item 4): inference latency as a
    // labeled series next to the unlabeled total; the frontend records
    // the reload/stats ops into the same family.
    CULDA_OBS_HIST_L("serve.request.latency", "op", "infer", latency_s);
    if (tracing && t.request.trace_ctx.valid()) {
      // Each request's share of the batch inference window, linked to the
      // shared batch span.
      tracer.RecordSpan("serve/infer", infer_start_s, infer_end_s,
                        obs::ChildContext(t.request.trace_ctx),
                        batch_ctx.span_id);
    }
    if (options_.slow_request_s > 0 && latency_s >= options_.slow_request_s) {
      CULDA_OBS_COUNT("serve.slow_requests", 1);
      obs::FlightRecorder& flight = obs::FlightRecorder::Global();
      if (flight.enabled()) {
        flight.Record("serve/slow_request", latency_s,
                      t.request.trace_ctx.trace_id);
      }
      CULDA_LOG(Warn) << "slow request id=" << response.id
                      << " latency_s=" << latency_s << " queue_wait_s="
                      << std::chrono::duration<double>(dispatched -
                                                       t.enqueued)
                             .count()
                      << " batch=" << batch.size()
                      << " generation=" << response.generation;
    }
    if (tracing && t.request.trace_ctx.valid()) {
      const double respond_start_s = tracer.NowSeconds();
      t.done(std::move(response));
      tracer.RecordSpan("serve/respond", respond_start_s,
                        tracer.NowSeconds(),
                        obs::ChildContext(t.request.trace_ctx));
    } else {
      t.done(std::move(response));
    }
  }
  if (tracing) {
    // The shared batch span covers dispatch through the last completion.
    tracer.RecordSpan("serve/batch", dispatch_s, tracer.NowSeconds(),
                      batch_ctx);
  }
}

std::string ServeDaemon::StatsPayloadJson() const {
  obs::JsonObject payload;
  payload.Add("schema", obs::kMetricsSchema)
      .Add("pending", static_cast<uint64_t>(pending()))
      .Add("draining", draining())
      .Add("slow_request_s", options_.slow_request_s);
  payload.AddRaw("metrics", obs::Metrics().SnapshotJson());
  return payload.str();
}

}  // namespace culda::serve
