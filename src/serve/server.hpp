// ServeDaemon — the long-running serving core behind tools/culda_serve.
//
// Transport-agnostic: frontends (stdin/stdout, Unix socket — serve/
// frontend.hpp) and tests Submit() parsed requests and get responses via
// callback or future. Internally one dispatch thread pulls coalesced
// batches from the CoalescingBatcher, pins the current ModelSnapshot for
// the batch, runs InferBatch, and completes every ticket.
//
// Hot swap is RCU-style through core::SnapshotSlot: Publish() is one
// atomic pointer swap from any thread (typically whatever drives training
// — e.g. OnlineTrainer::Absorb() followed by Publish(online.Snapshot())).
// The dispatch thread re-Acquires the slot per batch, so after Publish
// returns, no *new* batch uses the old generation; the batch already in
// flight finishes on the snapshot it pinned and retires it with its last
// reference. Readers never block on a swap, a swap never tears a batch,
// and every response records the generation that served it.
//
// Shutdown is graceful by construction: Drain() closes admissions (late
// Submits get an immediate "draining" response), the dispatch thread
// serves everything already queued, then exits. The destructor drains too,
// so a daemon can't be destroyed out from under queued requests.
//
// SLO metrics (docs/serving.md lists the inventory): serve.request.latency
// and serve.queue.wait histograms, serve.batch.size (histogram, unit =
// requests per batch), serve.shed.count / serve.requests / serve.responses
// counters, serve.snapshot.swaps. All through the PR 4 registry, so
// --metrics-out on the tool gets per-batch percentiles for free.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <thread>

#include "core/snapshot.hpp"
#include "serve/batcher.hpp"
#include "serve/protocol.hpp"
#include "util/thread_pool.hpp"

namespace culda::serve {

struct ServeDaemonOptions {
  BatcherOptions batch;
  /// Fold-in sweeps per request (the daemon-wide quality/latency knob;
  /// per-request overrides would fragment batches, so there are none).
  uint32_t iterations = 20;
  /// Worker pool for document fan-out *within* a batch (nullptr =
  /// sequential). Results are bit-identical either way.
  ThreadPool* pool = nullptr;
  /// Slow-request threshold (seconds): an inference answered with
  /// end-to-end latency ≥ this is logged at Warn (id, latency, queue wait,
  /// batch size, generation), counted in serve.slow_requests, and flagged
  /// in the flight recorder. 0 (default) disables the log.
  double slow_request_s = 0;
};

class ServeDaemon {
 public:
  /// Starts the dispatch thread. `initial` may be null (requests are shed
  /// with "draining" semantics until the first Publish) but normally is
  /// the generation-1 snapshot.
  ServeDaemon(ServeDaemonOptions options, core::SnapshotPtr initial);

  /// Drains (serving everything queued) if Drain() was not already called.
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Installs a new model generation; returns the previous snapshot. Never
  /// blocks on in-flight batches (RCU: they hold their own reference).
  core::SnapshotPtr Publish(core::SnapshotPtr next);

  /// The snapshot new batches will use. (A batch dispatched concurrently
  /// may still be serving the previous one.)
  core::SnapshotPtr Current() const { return slot_.Acquire(); }

  /// Enqueues a request; `done` fires exactly once with the response.
  /// Backpressure is immediate and non-blocking: when the bounded queue is
  /// full, `done` is invoked *inline* with error "shed" (callers must
  /// tolerate reentrant completion); after Drain() begins, with error
  /// "draining".
  void Submit(ServeRequest request, std::function<void(ServeResponse)> done);

  /// Future-returning convenience for tests and embedders.
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Graceful shutdown: stop admitting, serve the whole queue, join the
  /// dispatch thread. Idempotent; safe to call from any thread except a
  /// completion callback.
  void Drain();

  size_t pending() const { return batcher_.pending(); }
  bool draining() const { return batcher_.closed(); }

  /// The {"op":"stats"} payload (docs/serving.md): daemon state (pending,
  /// draining, slow_request_s) plus the full registry snapshot — labeled
  /// per-endpoint latency histograms with percentiles included — under
  /// "metrics", stamped with the metrics schema version.
  std::string StatsPayloadJson() const;

 private:
  void DispatchLoop();
  /// Serves one batch against `snap` (validates vocabulary, runs
  /// InferBatch, completes tickets in batch order).
  void ServeBatch(std::vector<Ticket> batch);

  const ServeDaemonOptions options_;
  core::SnapshotSlot slot_;
  CoalescingBatcher batcher_;
  std::once_flag drained_;
  std::thread dispatcher_;  ///< last member: joins before the rest dies
};

}  // namespace culda::serve
