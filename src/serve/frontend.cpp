#include "serve/frontend.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/signal.hpp"

namespace culda::serve {

namespace {

/// Serializes response lines onto one fd. Shared (refcounted) between the
/// reader loop and every in-flight completion callback, so a frontend can
/// return while the daemon is still completing its requests.
class LineWriter {
 public:
  explicit LineWriter(int fd) : fd_(fd) {}

  void WriteLine(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string buf = line;
    buf += '\n';
    size_t off = 0;
    while (off < buf.size()) {
      const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      // Client gone (EPIPE etc.): drop the rest silently — the daemon
      // keeps serving other connections. (SIGPIPE is ignored in the tool.)
      return;
    }
  }

 private:
  int fd_;
  std::mutex mutex_;
};

bool ShouldStop(const FrontendOptions& options) {
  if (ShutdownRequested()) return true;
  return options.stop != nullptr &&
         options.stop->load(std::memory_order_relaxed);
}

}  // namespace

FrontendResult RunLineFrontend(ServeDaemon& daemon, int in_fd, int out_fd,
                               const ReloadFn& reload,
                               FrontendOptions options) {
  auto writer = std::make_shared<LineWriter>(out_fd);
  FrontendResult result;
  std::string buffer;
  size_t scan_from = 0;
  bool eof = false;

  const auto handle_line = [&](std::string_view line) -> bool {
    obs::SpanTracer& tracer = obs::SpanTracer::Global();
    const bool tracing = tracer.enabled();
    const double parse_start_s = tracing ? tracer.NowSeconds() : 0;
    ParsedLine parsed = ParseRequestLine(line);
    if (parsed.kind == LineKind::kError) {
      if (parsed.error.empty()) return true;  // blank line
      ++result.lines;
      CULDA_OBS_COUNT("serve.bad_lines", 1);
      writer->WriteLine(FormatResponse(MakeErrorResponse(
          std::move(parsed.id), "bad_request", std::move(parsed.error))));
      return true;
    }
    ++result.lines;
    if (parsed.kind == LineKind::kControl) {
      if (parsed.op == "drain") {
        result.drain_requested = true;
        const auto snap = daemon.Current();
        writer->WriteLine(FormatControlAck(
            parsed.id, "drain", snap ? snap->generation() : 0));
        return false;  // stop reading; caller drains
      }
      if (parsed.op == "stats") {
        CULDA_OBS_TIMED_L("serve.request.latency", "op", "stats");
        writer->WriteLine(FormatControlAck(
            parsed.id, "stats",
            daemon.Current() ? daemon.Current()->generation() : 0,
            daemon.StatsPayloadJson()));
        return true;
      }
      // reload: build the next generation, publish, ack with its number.
      CULDA_OBS_TIMED_L("serve.request.latency", "op", "reload");
      try {
        CULDA_CHECK_MSG(reload != nullptr,
                        "this daemon has no reload source");
        core::SnapshotPtr next = reload();
        daemon.Publish(next);
        writer->WriteLine(
            FormatControlAck(parsed.id, "reload", next->generation()));
      } catch (const std::exception& e) {
        writer->WriteLine(FormatResponse(MakeErrorResponse(
            std::move(parsed.id), "reload_failed", e.what())));
      }
      return true;
    }
    if (tracing) {
      // Mint the request's trace context here so the parse span joins the
      // same trace the daemon's queue/infer/respond spans will use.
      parsed.request.trace_ctx =
          obs::NewRequestContext(parsed.request.trace);
      tracer.RecordSpan("serve/parse", parse_start_s, tracer.NowSeconds(),
                        obs::ChildContext(parsed.request.trace_ctx));
    }
    // Inference: the callback owns a writer reference, so completion after
    // this frame returns is safe.
    daemon.Submit(std::move(parsed.request),
                  [writer](ServeResponse response) {
                    writer->WriteLine(FormatResponse(response));
                  });
    return true;
  };

  while (!eof && !ShouldStop(options)) {
    // Drain complete lines already buffered before reading more.
    size_t nl;
    bool keep_going = true;
    while (keep_going &&
           (nl = buffer.find('\n', scan_from)) != std::string::npos) {
      keep_going = handle_line(
          std::string_view(buffer).substr(scan_from, nl - scan_from));
      scan_from = nl + 1;
    }
    buffer.erase(0, scan_from);
    scan_from = 0;
    if (!keep_going) return result;
    CULDA_CHECK_MSG(buffer.size() <= options.max_line_bytes,
                    "request line exceeds " << options.max_line_bytes
                                            << " bytes");

    struct pollfd pfd = {};
    pfd.fd = in_fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, options.poll_interval_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the flag
      CULDA_CHECK_MSG(false, "poll failed: " << std::strerror(errno));
    }
    if (pr == 0) continue;  // timeout: re-check stop flags
    if ((pfd.revents & (POLLIN | POLLHUP)) == 0) {
      eof = true;  // POLLERR/POLLNVAL: treat as end of stream
      continue;
    }
    char chunk[65536];
    const ssize_t n = ::read(in_fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      eof = true;
      continue;
    }
    if (n == 0) {
      eof = true;
      continue;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  // EOF with an unterminated final line: serve it too (files rarely end
  // in exactly '\n' when humans write them).
  if (eof && !buffer.empty()) handle_line(buffer);
  return result;
}

SocketFrontend::SocketFrontend(ServeDaemon& daemon, std::string path,
                               ReloadFn reload, FrontendOptions options)
    : daemon_(daemon),
      path_(std::move(path)),
      reload_(std::move(reload)),
      options_(options) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  CULDA_CHECK_MSG(path_.size() < sizeof(addr.sun_path),
                  "socket path too long (" << path_.size() << " bytes): "
                                           << path_);
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CULDA_CHECK_MSG(listen_fd_ >= 0,
                  "socket() failed: " << std::strerror(errno));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    CULDA_CHECK_MSG(false, "cannot bind socket " << path_ << ": "
                                                 << std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    ::unlink(path_.c_str());
    listen_fd_ = -1;
    CULDA_CHECK_MSG(false, "cannot listen on " << path_ << ": "
                                               << std::strerror(err));
  }
}

SocketFrontend::~SocketFrontend() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

FrontendResult SocketFrontend::Run() {
  FrontendResult total;
  std::mutex merge_mutex;  ///< guards `total` against connection threads
  std::vector<std::thread> connections;

  while (!stop_.load(std::memory_order_relaxed) && !ShutdownRequested()) {
    struct pollfd pfd = {};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      CULDA_CHECK_MSG(false, "poll failed: " << std::strerror(errno));
    }
    if (pr == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      CULDA_LOG(Warn) << "accept failed: " << std::strerror(errno);
      continue;
    }
    CULDA_OBS_COUNT("serve.connections", 1);
    connections.emplace_back([this, conn, &total, &merge_mutex] {
      FrontendOptions conn_options = options_;
      conn_options.stop = &stop_;
      const FrontendResult r =
          RunLineFrontend(daemon_, conn, conn, reload_, conn_options);
      ::close(conn);
      std::lock_guard<std::mutex> lock(merge_mutex);
      total.lines += r.lines;
      total.drain_requested |= r.drain_requested;
      // A drain op from any client shuts the whole listener down.
      if (r.drain_requested) stop_.store(true, std::memory_order_relaxed);
    });
  }
  for (auto& t : connections) t.join();
  return total;
}

void SocketFrontend::Stop() { stop_.store(true, std::memory_order_relaxed); }

}  // namespace culda::serve
