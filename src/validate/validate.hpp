// Compile-time gate for the invariant-validation layer (docs/validation.md).
//
// The checkers in invariants.hpp are ordinary library functions and are
// always compiled — tests and tools call them on demand. What the
// -DCULDA_VALIDATE=ON build adds is the *automatic hook sites* inside
// CuldaTrainer (after sampling/θ-update, after φ-sync, after init/restore):
// CULDA_VALIDATE_HOOK(stmt) compiles `stmt` only in validating builds, so
// the default build pays nothing — not even a branch — on the training hot
// path.
#pragma once

namespace culda::validate {

/// True when this build compiles the trainer's automatic validation hooks
/// (-DCULDA_VALIDATE=ON). TrainerOptions::validate defaults to this, so a
/// validating build self-checks every trainer out of the box.
#ifdef CULDA_VALIDATE_ON
inline constexpr bool kHooksCompiled = true;
#else
inline constexpr bool kHooksCompiled = false;
#endif

}  // namespace culda::validate

#ifdef CULDA_VALIDATE_ON
#define CULDA_VALIDATE_HOOK(stmt) \
  do {                            \
    stmt;                         \
  } while (0)
#else
#define CULDA_VALIDATE_HOOK(stmt) \
  do {                            \
  } while (0)
#endif
