// Chi-square goodness-of-fit testing for sampler conformance
// (docs/validation.md, "Chi-square methodology").
//
// The differential harness checks empirical sampling frequencies against
// exactly enumerated distributions. The statistic is Pearson's
// X² = Σ (O_i − E_i)²/E_i over bins pooled so every expected count is ≥ 5
// (the standard validity rule); the p-value is the upper tail of the
// chi-square distribution with (bins − 1) degrees of freedom, computed from
// the regularized incomplete gamma function Q(dof/2, X²/2).
#pragma once

#include <cstdint>
#include <span>

namespace culda::validate {

/// Regularized upper incomplete gamma Q(a, x) = Γ(a, x)/Γ(a) for a > 0,
/// x ≥ 0 — series expansion below x < a+1, Lentz continued fraction above.
/// Relative error ~1e-10 over the range chi-square testing uses.
double RegularizedGammaQ(double a, double x);

/// Upper-tail p-value of the chi-square distribution:
/// P(X ≥ chi2 | dof) = Q(dof/2, chi2/2).
double ChiSquarePValue(double chi2, double dof);

struct ChiSquareResult {
  double statistic = 0;  ///< Pearson X² over the pooled bins
  double dof = 0;        ///< pooled bins − 1
  double p_value = 1;    ///< upper-tail probability; small = mismatch
};

/// Pearson goodness-of-fit of observed counts against expected counts
/// (same length; Σ expected should equal Σ observed). Adjacent bins are
/// pooled until every pooled bin has expected ≥ `min_expected`. An observed
/// count in a zero-expected bin (an impossible outcome that occurred) is
/// reported as p = 0. Fewer than two pooled bins degenerate to p = 1.
ChiSquareResult ChiSquareGof(std::span<const uint64_t> observed,
                             std::span<const double> expected,
                             double min_expected = 5.0);

}  // namespace culda::validate
