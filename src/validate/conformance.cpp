#include "validate/conformance.hpp"

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/cpu_cgs.hpp"
#include "baselines/fplus_lda.hpp"
#include "baselines/sparse_lda.hpp"
#include "core/index_tree.hpp"
#include "core/trainer.hpp"
#include "gpusim/multi_gpu.hpp"
#include "sparse/dense.hpp"
#include "util/philox.hpp"
#include "validate/invariants.hpp"

namespace culda::validate {

namespace {

[[noreturn]] void Fail(std::string_view invariant, std::string_view solver,
                       const std::string& detail) {
  std::ostringstream os;
  os << solver << ": " << detail;
  throw ValidationError(std::string(invariant), os.str());
}

/// The z-independent marginals every exact-count solver must satisfy:
/// column sums of the topic–word table are the corpus word frequencies, row
/// sums of the document–topic table are the document lengths, and both grand
/// totals are the token count. `nw` is K×V, `nd` is D×K.
void CheckDenseMarginals(std::string_view solver,
                         const corpus::Corpus& corpus,
                         const sparse::DenseMatrix<int32_t>& nd,
                         const sparse::DenseMatrix<int32_t>& nw,
                         std::span<const uint64_t> word_freq) {
  const size_t num_topics = nw.rows();
  const size_t vocab = nw.cols();
  std::vector<int64_t> col_sum(vocab, 0);
  int64_t nw_total = 0;
  for (size_t k = 0; k < num_topics; ++k) {
    for (const int32_t c : nw.Row(k)) {
      if (c < 0) {
        std::ostringstream os;
        os << "negative topic-word count " << c << " at topic " << k;
        Fail("conformance-word-marginal", solver, os.str());
      }
    }
    const auto row = nw.Row(k);
    for (size_t v = 0; v < vocab; ++v) {
      col_sum[v] += row[v];
      nw_total += row[v];
    }
  }
  for (size_t v = 0; v < vocab; ++v) {
    if (col_sum[v] != static_cast<int64_t>(word_freq[v])) {
      std::ostringstream os;
      os << "word " << v << " has topic-word column sum " << col_sum[v]
         << " but corpus frequency " << word_freq[v];
      Fail("conformance-word-marginal", solver, os.str());
    }
  }
  if (nw_total != static_cast<int64_t>(corpus.num_tokens())) {
    std::ostringstream os;
    os << "topic-word grand total " << nw_total << " != corpus tokens "
       << corpus.num_tokens();
    Fail("conformance-token-total", solver, os.str());
  }
  for (size_t d = 0; d < nd.rows(); ++d) {
    int64_t row_sum = 0;
    for (const int32_t c : nd.Row(d)) row_sum += c;
    if (row_sum != static_cast<int64_t>(corpus.DocLength(d))) {
      std::ostringstream os;
      os << "document " << d << " has doc-topic row sum " << row_sum
         << " but length " << corpus.DocLength(d);
      Fail("conformance-doc-marginal", solver, os.str());
    }
  }
}

/// Rethrows a solver's own Validate() failure under the conformance
/// invariant name, preserving the original message.
template <typename Fn>
void RunSelfConsistency(std::string_view solver, const Fn& fn) {
  try {
    fn();
  } catch (const Error& e) {
    Fail("conformance-self-consistency", solver, e.what());
  }
}

/// The trainer's gathered θ/φ/n_k must agree exactly with count tables
/// rebuilt from its exported document-major assignments — the delayed-update
/// semantics change *which* z the sampler converges to, never the
/// z-to-counts bookkeeping.
void CheckTrainerRebuild(const corpus::Corpus& corpus,
                         const core::CuldaConfig& cfg,
                         const core::GatheredModel& model,
                         std::span<const uint16_t> z) {
  constexpr std::string_view kSolver = "culda";
  if (z.size() != corpus.num_tokens()) {
    std::ostringstream os;
    os << "exported " << z.size() << " assignments for "
       << corpus.num_tokens() << " tokens";
    Fail("conformance-trainer-rebuild", kSolver, os.str());
  }
  const uint32_t num_topics = cfg.num_topics;
  sparse::DenseMatrix<int32_t> nw(num_topics, corpus.vocab_size());
  std::vector<int64_t> nk(num_topics, 0);
  const auto words = corpus.words();
  for (size_t t = 0; t < z.size(); ++t) {
    const uint16_t k = z[t];
    if (k >= num_topics) {
      std::ostringstream os;
      os << "token " << t << " assigned out-of-range topic " << k;
      Fail("conformance-trainer-rebuild", kSolver, os.str());
    }
    nw(k, words[t]) += 1;
    nk[k] += 1;
  }
  for (uint32_t k = 0; k < num_topics; ++k) {
    if (nk[k] != static_cast<int64_t>(model.nk[k])) {
      std::ostringstream os;
      os << "topic " << k << ": gathered n_k " << model.nk[k]
         << " but assignments rebuild " << nk[k];
      Fail("conformance-trainer-rebuild", kSolver, os.str());
    }
    const auto rebuilt = nw.Row(k);
    const auto gathered = model.phi.Row(k);
    for (size_t v = 0; v < rebuilt.size(); ++v) {
      if (static_cast<int64_t>(gathered[v]) != rebuilt[v]) {
        std::ostringstream os;
        os << "phi(" << k << ", " << v << ") gathered as " << gathered[v]
           << " but assignments rebuild " << rebuilt[v];
        Fail("conformance-trainer-rebuild", kSolver, os.str());
      }
    }
  }
  std::vector<int32_t> row(num_topics, 0);
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    std::fill(row.begin(), row.end(), 0);
    const uint64_t begin = corpus.DocBegin(d);
    for (uint64_t t = 0; t < corpus.DocLength(d); ++t) row[z[begin + t]] += 1;
    for (uint32_t k = 0; k < num_topics; ++k) {
      const int32_t gathered = model.theta.At(d, static_cast<uint16_t>(k));
      if (gathered != row[k]) {
        std::ostringstream os;
        os << "theta(" << d << ", " << k << ") gathered as " << gathered
           << " but assignments rebuild " << row[k];
        Fail("conformance-trainer-rebuild", kSolver, os.str());
      }
    }
  }
}

}  // namespace

void RunCountConformance(const corpus::Corpus& corpus,
                         const core::CuldaConfig& cfg,
                         const ConformanceOptions& options) {
  CULDA_CHECK(options.gpus >= 1);
  const std::vector<uint64_t> word_freq = corpus.WordFrequencies();

  // CuLDA trainer: gathered-model invariants plus the z→counts rebuild.
  core::TrainerOptions topts;
  topts.gpus.assign(options.gpus, gpusim::V100Volta());
  topts.sampler = options.sampler;
  topts.mh_cycles = options.mh_cycles;
  core::CuldaTrainer trainer(corpus, cfg, topts);
  trainer.Train(options.iterations);
  const core::GatheredModel model = trainer.Gather();
  RunSelfConsistency("culda", [&] { model.Validate(corpus); });
  CheckTrainerRebuild(corpus, cfg, model, trainer.ExportAssignments());

  // Exact dense CGS.
  baselines::CpuCgs cgs(corpus, cfg);
  for (uint32_t i = 0; i < options.iterations; ++i) cgs.Step();
  RunSelfConsistency("cpu_cgs", [&] { cgs.state().Validate(); });
  CheckDenseMarginals("cpu_cgs", corpus, cgs.state().nd, cgs.state().nw,
                      word_freq);

  // SparseLDA: dense counts plus its word-topic list structures.
  baselines::SparseLdaCgs sparse_lda(corpus, cfg);
  for (uint32_t i = 0; i < options.iterations; ++i) sparse_lda.Step();
  RunSelfConsistency("sparse_lda", [&] {
    sparse_lda.state().Validate();
    sparse_lda.ValidateStructures();
  });
  CheckDenseMarginals("sparse_lda", corpus, sparse_lda.state().nd,
                      sparse_lda.state().nw, word_freq);

  // F+LDA: word-major sweep with the F+ tree.
  baselines::FPlusLda fplus(corpus, cfg);
  for (uint32_t i = 0; i < options.iterations; ++i) fplus.Step();
  RunSelfConsistency("fplus_lda", [&] { fplus.Validate(); });
  CheckDenseMarginals("fplus_lda", corpus, fplus.nd(), fplus.nw(), word_freq);
}

ChiSquareResult TreeSamplingGof(std::span<const float> p, uint32_t fanout,
                                uint64_t draws, uint64_t seed) {
  CULDA_CHECK_MSG(!p.empty() && draws > 0,
                  "TreeSamplingGof needs a distribution and draws");
  core::IndexTree tree(p.size(), fanout);
  const float total = tree.view().Build(p);
  CULDA_CHECK_MSG(total > 0.0f, "TreeSamplingGof needs positive total mass");

  std::vector<uint64_t> observed(p.size(), 0);
  PhiloxStream rng(seed, /*stream=*/0);
  for (uint64_t d = 0; d < draws; ++d) {
    const float u = static_cast<float>(rng.NextDouble()) * total;
    observed[tree.view().Search(u)] += 1;
  }

  double mass = 0;
  for (const float pi : p) mass += pi;
  std::vector<double> expected(p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    expected[i] = static_cast<double>(p[i]) / mass *
                  static_cast<double>(draws);
  }
  return ChiSquareGof(observed, expected);
}

ChiSquareResult BucketSamplerGof(const core::GatheredModel& model,
                                 const core::CuldaConfig& cfg,
                                 core::InferSampler sampler, uint32_t word,
                                 uint64_t draws, uint64_t seed,
                                 uint32_t sweeps) {
  CULDA_CHECK(word < model.vocab_size);
  CULDA_CHECK(draws > 0 && sweeps > 0);
  core::InferenceOptions opts;
  opts.sampler = sampler;
  const core::InferenceEngine engine(model, cfg, opts);

  // One token per draw: with the token's own count decremented every draw
  // is distributed exactly as the closed-form conditional
  // p(k) ∝ α_k (φ_kv + β) / (n_k + βV) — see the header comment. The exact
  // modes need one sweep; kAliasMH mixes over `sweeps`.
  const std::vector<uint32_t> doc = {word};
  std::vector<uint64_t> observed(cfg.num_topics, 0);
  for (uint64_t d = 0; d < draws; ++d) {
    const core::InferenceResult r =
        engine.InferDocument(doc, sweeps, seed + d);
    observed[r.assignments[0]] += 1;
  }

  const double beta_v = cfg.beta * static_cast<double>(model.vocab_size);
  std::vector<double> expected(cfg.num_topics);
  double mass = 0;
  for (uint32_t k = 0; k < cfg.num_topics; ++k) {
    const double phi_kv = static_cast<double>(model.phi(k, word));
    expected[k] = cfg.AlphaOf(k) * (phi_kv + cfg.beta) /
                  (static_cast<double>(model.nk[k]) + beta_v);
    mass += expected[k];
  }
  for (double& e : expected) e *= static_cast<double>(draws) / mass;
  return ChiSquareGof(observed, expected);
}

}  // namespace culda::validate
