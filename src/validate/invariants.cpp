#include "validate/invariants.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace culda::validate {

namespace {

[[noreturn]] void Fail(const char* invariant, std::string_view context,
                       const std::string& detail) {
  std::string where;
  if (!context.empty()) {
    where.append(context);
    where.append(": ");
  }
  throw ValidationError(invariant, where + detail);
}

std::string Cell(uint32_t k, uint32_t v) {
  std::ostringstream os;
  os << "(topic " << k << ", word " << v << ")";
  return os.str();
}

}  // namespace

void CheckChunkLayout(const corpus::Corpus& corpus,
                      const core::ChunkState& chunk,
                      std::string_view context) {
  // The layout's own deep check against the corpus slice.
  try {
    chunk.layout.Validate(corpus);
  } catch (const ValidationError&) {
    throw;
  } catch (const Error& e) {
    Fail("chunk-layout", context, e.what());
  }

  // The block work list must partition [0, tokens) into per-word ranges.
  // BuildBlockWorkList orders blocks heaviest-first, so sort a copy by
  // token_begin and demand exact contiguous coverage.
  std::vector<corpus::BlockWork> work(chunk.work.begin(), chunk.work.end());
  std::sort(work.begin(), work.end(),
            [](const corpus::BlockWork& a, const corpus::BlockWork& b) {
              return a.token_begin < b.token_begin;
            });
  uint64_t covered = 0;
  for (size_t b = 0; b < work.size(); ++b) {
    const corpus::BlockWork& bw = work[b];
    if (bw.token_begin != covered || bw.token_end <= bw.token_begin) {
      std::ostringstream os;
      os << "block " << b << " covers tokens [" << bw.token_begin << ", "
         << bw.token_end << ") but coverage stands at " << covered;
      Fail("chunk-layout", context, os.str());
    }
    if (bw.word >= chunk.layout.vocab_size ||
        bw.token_begin < chunk.layout.word_offsets[bw.word] ||
        bw.token_end > chunk.layout.word_offsets[bw.word + 1]) {
      std::ostringstream os;
      os << "block " << b << " claims word " << bw.word
         << " outside that word's token segment";
      Fail("chunk-layout", context, os.str());
    }
    covered = bw.token_end;
  }
  if (covered != chunk.layout.num_tokens()) {
    std::ostringstream os;
    os << "work list covers " << covered << " of "
       << chunk.layout.num_tokens() << " tokens";
    Fail("chunk-layout", context, os.str());
  }
}

void CheckAssignmentsInRange(const core::CuldaConfig& cfg,
                             const core::ChunkState& chunk,
                             std::string_view context) {
  if (chunk.z.size() != chunk.layout.num_tokens()) {
    std::ostringstream os;
    os << "z holds " << chunk.z.size() << " assignments for "
       << chunk.layout.num_tokens() << " tokens";
    Fail("z-topic-range", context, os.str());
  }
  for (uint64_t t = 0; t < chunk.z.size(); ++t) {
    if (chunk.z[t] >= cfg.num_topics) {
      std::ostringstream os;
      os << "z[" << t << "] (global token " << chunk.layout.token_global[t]
         << ") = " << chunk.z[t] << " but K = " << cfg.num_topics;
      Fail("z-topic-range", context, os.str());
    }
  }
}

void CheckThetaMatchesZ(const core::CuldaConfig& cfg,
                        const core::ChunkState& chunk,
                        std::string_view context) {
  try {
    chunk.theta.Validate();
  } catch (const Error& e) {
    Fail("theta-structure", context, e.what());
  }
  if (chunk.theta.rows() != chunk.num_docs() ||
      chunk.theta.cols() != cfg.num_topics) {
    std::ostringstream os;
    os << "θ is " << chunk.theta.rows() << "×" << chunk.theta.cols()
       << " for a chunk of " << chunk.num_docs() << " documents and K = "
       << cfg.num_topics;
    Fail("theta-structure", context, os.str());
  }

  // Per-document histogram of z via the doc→token map, compared exactly
  // against the CSR row (same touched-topic walk as the θ-update kernel).
  std::vector<int64_t> dense(cfg.num_topics, 0);
  std::vector<uint16_t> touched;
  for (uint64_t d = 0; d < chunk.num_docs(); ++d) {
    touched.clear();
    for (uint64_t i = chunk.layout.doc_map_offsets[d];
         i < chunk.layout.doc_map_offsets[d + 1]; ++i) {
      const uint16_t k = chunk.z[chunk.layout.doc_map[i]];
      if (dense[k]++ == 0) touched.push_back(k);
    }
    std::sort(touched.begin(), touched.end());

    const auto idx = chunk.theta.RowIndices(d);
    const auto val = chunk.theta.RowValues(d);
    bool ok = idx.size() == touched.size();
    for (size_t i = 0; ok && i < idx.size(); ++i) {
      ok = idx[i] == touched[i] && val[i] == dense[touched[i]];
    }
    if (!ok) {
      std::ostringstream os;
      os << "θ row for document " << d << " disagrees with z: stored "
         << idx.size() << " topics";
      for (size_t i = 0; i < idx.size() && i < 8; ++i) {
        os << (i == 0 ? " {" : ", ") << idx[i] << ":" << val[i];
      }
      if (!idx.empty()) os << "}";
      os << ", z counts " << touched.size() << " topics";
      for (size_t i = 0; i < touched.size() && i < 8; ++i) {
        os << (i == 0 ? " {" : ", ") << touched[i] << ":"
           << dense[touched[i]];
      }
      if (!touched.empty()) os << "}";
      for (const uint16_t k : touched) dense[k] = 0;
      Fail("theta-matches-z", context, os.str());
    }
    for (const uint16_t k : touched) dense[k] = 0;
  }
}

void CheckNkMatchesPhi(const core::PhiReplica& replica,
                       std::string_view context) {
  if (replica.nk.size() != replica.num_topics) {
    std::ostringstream os;
    os << "n_k has " << replica.nk.size() << " entries for "
       << replica.num_topics << " topics";
    Fail("nk-matches-phi", context, os.str());
  }
  for (uint32_t k = 0; k < replica.num_topics; ++k) {
    int64_t sum = 0;
    for (const uint16_t c : replica.phi.Row(k)) sum += c;
    if (sum != replica.nk[k]) {
      std::ostringstream os;
      os << "n_k[" << k << "] = " << replica.nk[k] << " but φ row " << k
         << " sums to " << sum;
      Fail("nk-matches-phi", context, os.str());
    }
  }
}

void CheckPhiTotalTokens(const core::PhiReplica& replica,
                         uint64_t expected_tokens, std::string_view context) {
  uint64_t total = 0;
  for (uint32_t k = 0; k < replica.num_topics; ++k) {
    for (const uint16_t c : replica.phi.Row(k)) total += c;
  }
  if (total != expected_tokens) {
    std::ostringstream os;
    os << "ΣΣ φ = " << total << " but the corpus has " << expected_tokens
       << " tokens";
    Fail("phi-total-tokens", context, os.str());
  }
}

void CheckPhiMatchesZ(std::span<const core::ChunkState> chunks,
                      const core::PhiReplica& replica,
                      std::string_view context) {
  const uint32_t K = replica.num_topics;
  const uint32_t V = replica.vocab_size;
  std::vector<uint32_t> expected(static_cast<size_t>(K) * V, 0);
  for (const core::ChunkState& chunk : chunks) {
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      const uint16_t k = chunk.z[t];
      const uint32_t w = chunk.layout.token_word[t];
      if (k >= K || w >= V) {
        std::ostringstream os;
        os << "token " << t << " carries " << Cell(k, w)
           << " outside the " << K << "×" << V << " model";
        Fail("phi-matches-z", context, os.str());
      }
      ++expected[static_cast<size_t>(k) * V + w];
    }
  }
  for (uint32_t k = 0; k < K; ++k) {
    const auto row = replica.phi.Row(k);
    for (uint32_t v = 0; v < V; ++v) {
      if (row[v] != expected[static_cast<size_t>(k) * V + v]) {
        std::ostringstream os;
        os << "φ" << Cell(k, v) << " = " << row[v] << " but z assigns "
           << expected[static_cast<size_t>(k) * V + v]
           << " tokens of that word to that topic";
        Fail("phi-matches-z", context, os.str());
      }
    }
  }
}

void CheckPhiSaturationMargin(const core::PhiReplica& replica,
                              uint32_t margin, std::string_view context) {
  if (margin == 0) return;
  const uint32_t ceiling = margin >= 0xFFFF ? 0 : 0xFFFF - margin;
  for (uint32_t k = 0; k < replica.num_topics; ++k) {
    const auto row = replica.phi.Row(k);
    for (uint32_t v = 0; v < replica.vocab_size; ++v) {
      if (row[v] >= ceiling) {
        std::ostringstream os;
        os << "φ" << Cell(k, v) << " = " << row[v] << " is within "
           << margin << " of the 16-bit ceiling (65535); the compressed "
           << "counts of §6.1.3 are about to wrap";
        Fail("phi-saturation-margin", context, os.str());
      }
    }
  }
}

void CheckReplicasAgree(std::span<const core::PhiReplica> replicas) {
  if (replicas.empty()) {
    Fail("phi-replicas-agree", {}, "no replicas to check");
  }
  const core::PhiReplica& first = replicas[0];
  for (size_t g = 1; g < replicas.size(); ++g) {
    const core::PhiReplica& other = replicas[g];
    if (other.num_topics != first.num_topics ||
        other.vocab_size != first.vocab_size) {
      std::ostringstream os;
      os << "device " << g << " replica is " << other.num_topics << "×"
         << other.vocab_size << ", device 0 is " << first.num_topics << "×"
         << first.vocab_size;
      Fail("phi-replicas-agree", {}, os.str());
    }
    const auto a = first.phi.flat();
    const auto b = other.phi.flat();
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) {
        std::ostringstream os;
        os << "device " << g << " φ"
           << Cell(static_cast<uint32_t>(i / first.vocab_size),
                   static_cast<uint32_t>(i % first.vocab_size))
           << " = " << b[i] << " but device 0 holds " << a[i]
           << " (post-sync replicas must be identical)";
        Fail("phi-replicas-agree", {}, os.str());
      }
    }
    for (uint32_t k = 0; k < first.num_topics; ++k) {
      if (first.nk[k] != other.nk[k]) {
        std::ostringstream os;
        os << "device " << g << " n_k[" << k << "] = " << other.nk[k]
           << " but device 0 holds " << first.nk[k];
        Fail("phi-replicas-agree", {}, os.str());
      }
    }
  }
}

void ValidateChunk(const corpus::Corpus& corpus, const core::CuldaConfig& cfg,
                   const core::ChunkState& chunk, std::string_view context) {
  CheckChunkLayout(corpus, chunk, context);
  CheckAssignmentsInRange(cfg, chunk, context);
  CheckThetaMatchesZ(cfg, chunk, context);
}

void ValidateModelState(const corpus::Corpus& corpus,
                        const core::CuldaConfig& cfg,
                        std::span<const core::ChunkState> chunks,
                        std::span<const core::PhiReplica> replicas,
                        const ValidateOptions& options) {
  uint64_t tokens = 0, next_doc = 0;
  for (size_t c = 0; c < chunks.size(); ++c) {
    const std::string context = "chunk " + std::to_string(c);
    if (chunks[c].layout.spec.doc_begin != next_doc) {
      std::ostringstream os;
      os << "begins at document " << chunks[c].layout.spec.doc_begin
         << " but coverage stands at " << next_doc;
      Fail("chunk-coverage", context, os.str());
    }
    next_doc = chunks[c].layout.spec.doc_end;
    tokens += chunks[c].num_tokens();
    ValidateChunk(corpus, cfg, chunks[c], context);
  }
  if (next_doc != corpus.num_docs() || tokens != corpus.num_tokens()) {
    std::ostringstream os;
    os << "chunks cover " << next_doc << "/" << corpus.num_docs()
       << " documents and " << tokens << "/" << corpus.num_tokens()
       << " tokens";
    Fail("chunk-coverage", {}, os.str());
  }

  CheckReplicasAgree(replicas);
  const core::PhiReplica& model = replicas[0];
  CheckNkMatchesPhi(model);
  CheckPhiTotalTokens(model, corpus.num_tokens());
  CheckPhiMatchesZ(chunks, model);
  CheckPhiSaturationMargin(model, options.saturation_margin);
}

void ValidateServedModel(const core::GatheredModel& model) {
  try {
    model.theta.Validate();
  } catch (const Error& e) {
    Fail("model-consistency", {}, e.what());
  }
  if (model.theta.rows() != model.num_docs ||
      model.theta.cols() != model.num_topics) {
    std::ostringstream os;
    os << "θ is " << model.theta.rows() << "×" << model.theta.cols()
       << " but the model declares " << model.num_docs << " documents and "
       << model.num_topics << " topics";
    Fail("model-consistency", {}, os.str());
  }
  for (const int32_t c : model.theta.values()) {
    if (c <= 0) {
      Fail("model-consistency", {},
           "θ stores a non-positive count " + std::to_string(c));
    }
  }
  if (model.phi.rows() != model.num_topics ||
      model.phi.cols() != model.vocab_size) {
    std::ostringstream os;
    os << "φ is " << model.phi.rows() << "×" << model.phi.cols()
       << " but the model declares K = " << model.num_topics << ", V = "
       << model.vocab_size;
    Fail("model-consistency", {}, os.str());
  }
  core::PhiReplica view(model.num_topics, model.vocab_size);
  view.phi = model.phi;
  view.nk = model.nk;
  CheckNkMatchesPhi(view, "served model");
}

}  // namespace culda::validate
