// Differential sampler-conformance harness (docs/validation.md).
//
// Two layers of cross-checking:
//
// 1. Count-table conformance. CuldaTrainer and the CPU baselines (cpu_cgs,
//    sparse_lda, fplus_lda) run on the same corpus. Their *assignments*
//    legitimately differ (delayed-update vs exact-Gibbs semantics, distinct
//    RNG contracts), so the harness compares what must agree regardless of
//    sampler semantics: every solver's count tables rebuilt from its own z
//    match the tables it maintains incrementally, and the z-independent
//    marginals — Σ_k n_kv per word (the corpus word frequency), Σ_k n_dk per
//    document (the document length), Σ n_k (the token count) — agree across
//    every solver and with the corpus.
//
// 2. Sampling-distribution conformance. The IndexTreeView search (the
//    paper's Figure 5 structure, on both the training and serving paths) and
//    the serving engine's bucket-decomposed sampler are frequency-tested
//    against exact enumeration of small distributions with a chi-square
//    goodness-of-fit (chi_square.hpp); the harness first surfaced the
//    degenerate-input behaviors fixed in core/index_tree.hpp.
#pragma once

#include <cstdint>
#include <span>

#include "core/config.hpp"
#include "core/inference.hpp"
#include "core/model.hpp"
#include "core/sampler/sampler.hpp"
#include "corpus/corpus.hpp"
#include "validate/chi_square.hpp"

namespace culda::validate {

struct ConformanceOptions {
  uint32_t iterations = 3;  ///< training iterations per solver
  uint32_t gpus = 1;        ///< simulated GPUs for the CuldaTrainer run
  /// Sampler tier for the CuldaTrainer run. The count-table checks are
  /// sampler-independent (any correct sampler maintains exact counts), so
  /// running the harness under kAliasMH certifies the MH kernel's
  /// bookkeeping against the same bar as the exact kernel.
  core::TrainSampler sampler = core::TrainSampler::kTree;
  uint32_t mh_cycles = 1;  ///< kAliasMH only
};

/// Runs CuldaTrainer and the three CPU baselines on `corpus` under `cfg`
/// and applies every count-table check described above. Throws
/// ValidationError naming the first solver/invariant that disagrees.
void RunCountConformance(const corpus::Corpus& corpus,
                         const core::CuldaConfig& cfg,
                         const ConformanceOptions& options = {});

/// Draws `draws` samples from an IndexTreeView built over `p` (uniform u in
/// [0, total mass), deterministic in `seed`) and chi-square-tests the
/// empirical topic frequencies against the exact probabilities p/Σp.
ChiSquareResult TreeSamplingGof(std::span<const float> p, uint32_t fanout,
                                uint64_t draws, uint64_t seed);

/// Frequency-tests the serving engine's per-token conditional.
/// A single-token document of `word` is folded in for `sweeps` sweeps under
/// `draws` distinct seeds; with the token's own count decremented the
/// document bucket is empty, so the exact conditional is enumerable in
/// closed form: p(k) ∝ α_k (φ_kv + β) / (n_k + βV). Returns the chi-square
/// fit of the empirical assignment frequencies against it.
///
/// For the exact modes one sweep samples the conditional directly (they
/// exercise the word-bucket prefix search and the smoothing tree). For
/// kAliasMH the single-token chain is homogeneous with the closed form as
/// its stationary distribution, so `sweeps` controls mixing — pass a few
/// (the word proposal is exact under a symmetric prior, so one proposal
/// pair already mixes fully there).
ChiSquareResult BucketSamplerGof(const core::GatheredModel& model,
                                 const core::CuldaConfig& cfg,
                                 core::InferSampler sampler, uint32_t word,
                                 uint64_t draws, uint64_t seed,
                                 uint32_t sweeps = 1);

}  // namespace culda::validate
