// Structural invariant checkers for CuLDA training state (docs/validation.md).
//
// The paper's data-compression design (§6.1.3) stores φ counts, θ column
// indices, and topic assignments in 16 bits. That representation has failure
// modes — a heavy word's count wrapping past 65535, a θ row drifting from
// the z it was compacted from, a torn sync leaving replicas disagreeing —
// that would otherwise corrupt training silently for hundreds of iterations.
// Each checker here verifies one named invariant and throws ValidationError
// with the invariant's name and the first violating location, so corruption
// is reported where it appears, not where it is eventually noticed.
//
// Invariant inventory (names are stable; tests and logs key on them):
//
//   chunk-layout            word-first layout consistent with the corpus
//   chunk-coverage          chunks partition the corpus exactly
//   z-topic-range           every assignment is a valid topic id
//   theta-structure         θ CSR structurally valid
//   theta-matches-z         θ rows equal per-document histograms of z
//   nk-matches-phi          n_k equals Σ_v φ_kv for every topic
//   phi-total-tokens        ΣΣ φ equals the corpus token count
//   phi-matches-z           φ cells equal per-(topic,word) histograms of z
//   phi-saturation-margin   no φ cell within `saturation_margin` of 65535
//   phi-replicas-agree      all device replicas hold identical φ and n_k
//   model-consistency       gathered-model checks for serving (no corpus)
//
// All checkers are read-only; a state that passes them is bit-identical to
// one that was never checked (pinned by Validate.BitIdenticalWithAndWithout).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "core/config.hpp"
#include "core/model.hpp"
#include "corpus/corpus.hpp"
#include "util/check.hpp"

namespace culda::validate {

/// Thrown on the first violated invariant. `invariant()` is the stable name
/// from the inventory above; what() carries the name plus the violating
/// location (chunk/document/topic/word/token index and the conflicting
/// values).
class ValidationError : public Error {
 public:
  ValidationError(std::string invariant, const std::string& detail)
      : Error("invariant '" + invariant + "' violated: " + detail),
        invariant_(std::move(invariant)) {}

  const std::string& invariant() const { return invariant_; }

 private:
  std::string invariant_;
};

struct ValidateOptions {
  /// A φ cell at or above 65535 − margin fails `phi-saturation-margin`: the
  /// count is not wrong yet, but one more epoch of drift toward a single
  /// topic would wrap it, so the run is stopped while the state is still
  /// exact. 0 disables the margin (the hard overflow guards in update_phi
  /// and the φ-sync reduce stay on regardless).
  uint32_t saturation_margin = 1024;
};

// --- Named checkers ---------------------------------------------------------
// `context` (e.g. "chunk 3") prefixes the reported location. Each throws
// ValidationError on the first violation and returns normally otherwise.

/// `chunk-layout`: the word-first layout agrees with the corpus slice it
/// claims to cover (word segments, token_global mapping, doc-map
/// permutation) and the block work list partitions the chunk's tokens.
void CheckChunkLayout(const corpus::Corpus& corpus,
                      const core::ChunkState& chunk,
                      std::string_view context = {});

/// `z-topic-range`: z has one entry per token and every entry is < K.
void CheckAssignmentsInRange(const core::CuldaConfig& cfg,
                             const core::ChunkState& chunk,
                             std::string_view context = {});

/// `theta-structure` + `theta-matches-z`: the chunk's θ CSR is structurally
/// valid and every row equals the histogram of its document's assignments.
void CheckThetaMatchesZ(const core::CuldaConfig& cfg,
                        const core::ChunkState& chunk,
                        std::string_view context = {});

/// `nk-matches-phi`: n_k = Σ_v φ_kv for every topic.
void CheckNkMatchesPhi(const core::PhiReplica& replica,
                       std::string_view context = {});

/// `phi-total-tokens`: ΣΣ φ equals `expected_tokens`.
void CheckPhiTotalTokens(const core::PhiReplica& replica,
                         uint64_t expected_tokens,
                         std::string_view context = {});

/// `phi-matches-z`: every φ cell equals the number of tokens of its word
/// currently assigned to its topic, accumulated across `chunks`.
void CheckPhiMatchesZ(std::span<const core::ChunkState> chunks,
                      const core::PhiReplica& replica,
                      std::string_view context = {});

/// `phi-saturation-margin`: no φ cell within `margin` of the 16-bit
/// ceiling. No-op when margin is 0.
void CheckPhiSaturationMargin(const core::PhiReplica& replica,
                              uint32_t margin, std::string_view context = {});

/// `phi-replicas-agree`: after a sync every device replica must hold the
/// same φ and n_k; reports the first disagreeing (device, cell).
void CheckReplicasAgree(std::span<const core::PhiReplica> replicas);

// --- Entry points -----------------------------------------------------------

/// Everything that can be said about one chunk in isolation: layout,
/// assignment range, θ consistency.
void ValidateChunk(const corpus::Corpus& corpus, const core::CuldaConfig& cfg,
                   const core::ChunkState& chunk,
                   std::string_view context = {});

/// The full invariant inventory over a trainer's state: every chunk, chunk
/// coverage of the corpus, replica agreement, and replica 0 against the
/// corpus and the assignments. `replicas` must be post-sync (each holding
/// the global counts). CuldaTrainer::ValidateState() forwards here.
void ValidateModelState(const corpus::Corpus& corpus,
                        const core::CuldaConfig& cfg,
                        std::span<const core::ChunkState> chunks,
                        std::span<const core::PhiReplica> replicas,
                        const ValidateOptions& options = {});

/// `model-consistency` for a gathered/loaded model without its corpus (the
/// serving side: culda_infer --validate): θ structure and positivity, n_k
/// against φ, and α/β-independent sanity of the shapes.
void ValidateServedModel(const core::GatheredModel& model);

}  // namespace culda::validate
