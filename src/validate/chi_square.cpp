#include "validate/chi_square.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace culda::validate {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

/// Lower regularized gamma P(a, x) by series: P = x^a e^-x / Γ(a+1) ·
/// Σ x^n · Γ(a+1)/Γ(a+1+n). Converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Upper regularized gamma Q(a, x) by modified Lentz continued fraction:
/// Q = e^-x x^a / Γ(a) · (1/(x+1−a− 1·(1−a)/(x+3−a− ...))). Converges fast
/// for x ≥ a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedGammaQ(double a, double x) {
  CULDA_CHECK_MSG(a > 0 && x >= 0 && std::isfinite(a) && std::isfinite(x),
                  "RegularizedGammaQ requires a > 0 and finite x >= 0, got a="
                      << a << " x=" << x);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquarePValue(double chi2, double dof) {
  CULDA_CHECK_MSG(dof > 0 && chi2 >= 0,
                  "ChiSquarePValue requires dof > 0 and chi2 >= 0, got dof="
                      << dof << " chi2=" << chi2);
  return RegularizedGammaQ(dof / 2.0, chi2 / 2.0);
}

ChiSquareResult ChiSquareGof(std::span<const uint64_t> observed,
                             std::span<const double> expected,
                             double min_expected) {
  CULDA_CHECK_MSG(observed.size() == expected.size(),
                  "observed/expected length mismatch: " << observed.size()
                      << " vs " << expected.size());
  ChiSquareResult result;

  // Pool adjacent bins until each pooled bin expects at least min_expected.
  // Deterministic left-to-right pooling; the tail is merged backwards into
  // the last valid pool so no mass is dropped.
  std::vector<double> pooled_expected;
  std::vector<uint64_t> pooled_observed;
  double acc_e = 0;
  uint64_t acc_o = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    CULDA_CHECK_MSG(expected[i] >= 0 && std::isfinite(expected[i]),
                    "expected[" << i << "] = " << expected[i]
                                << " must be finite and non-negative");
    if (expected[i] == 0.0 && observed[i] > 0) {
      // An outcome with probability zero occurred: no statistic needed.
      result.statistic = std::numeric_limits<double>::infinity();
      result.dof = 1;
      result.p_value = 0;
      return result;
    }
    acc_e += expected[i];
    acc_o += observed[i];
    if (acc_e >= min_expected) {
      pooled_expected.push_back(acc_e);
      pooled_observed.push_back(acc_o);
      acc_e = 0;
      acc_o = 0;
    }
  }
  if (acc_e > 0 || acc_o > 0) {
    if (pooled_expected.empty()) {
      pooled_expected.push_back(acc_e);
      pooled_observed.push_back(acc_o);
    } else {
      pooled_expected.back() += acc_e;
      pooled_observed.back() += acc_o;
    }
  }

  if (pooled_expected.size() < 2) return result;  // dof 0: nothing to test

  double chi2 = 0;
  for (size_t i = 0; i < pooled_expected.size(); ++i) {
    const double diff =
        static_cast<double>(pooled_observed[i]) - pooled_expected[i];
    chi2 += diff * diff / pooled_expected[i];
  }
  result.statistic = chi2;
  result.dof = static_cast<double>(pooled_expected.size() - 1);
  result.p_value = ChiSquarePValue(chi2, result.dof);
  return result;
}

}  // namespace culda::validate
