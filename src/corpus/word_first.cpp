#include "corpus/word_first.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace culda::corpus {

WordFirstChunk BuildWordFirstChunk(const Corpus& corpus,
                                   const ChunkSpec& spec) {
  CULDA_CHECK(spec.doc_end <= corpus.num_docs());
  WordFirstChunk out;
  out.spec = spec;
  out.vocab_size = corpus.vocab_size();
  const uint64_t n = spec.num_tokens();
  CULDA_CHECK_MSG(corpus.num_tokens() <= UINT32_MAX,
                  "corpus exceeds 2^32 tokens; widen token_global");
  out.token_word.resize(n);
  out.token_doc.resize(n);
  out.token_global.resize(n);

  // Counting sort by word id.
  out.word_offsets.assign(corpus.vocab_size() + 1, 0);
  for (uint64_t d = spec.doc_begin; d < spec.doc_end; ++d) {
    for (const uint32_t w : corpus.DocTokens(d)) {
      ++out.word_offsets[w + 1];
    }
  }
  for (size_t w = 0; w < corpus.vocab_size(); ++w) {
    out.word_offsets[w + 1] += out.word_offsets[w];
  }
  std::vector<uint64_t> cursor(out.word_offsets.begin(),
                               out.word_offsets.end() - 1);
  for (uint64_t d = spec.doc_begin; d < spec.doc_end; ++d) {
    const uint32_t local_doc = static_cast<uint32_t>(d - spec.doc_begin);
    const uint64_t doc_base = corpus.DocBegin(d);
    const auto tokens = corpus.DocTokens(d);
    for (size_t i = 0; i < tokens.size(); ++i) {
      const uint64_t pos = cursor[tokens[i]]++;
      out.token_word[pos] = tokens[i];
      out.token_doc[pos] = local_doc;
      out.token_global[pos] = static_cast<uint32_t>(doc_base + i);
    }
  }

  // Document→token map over the sorted layout.
  const uint64_t num_docs = spec.num_docs();
  out.doc_map_offsets.assign(num_docs + 1, 0);
  for (uint64_t t = 0; t < n; ++t) {
    ++out.doc_map_offsets[out.token_doc[t] + 1];
  }
  for (uint64_t d = 0; d < num_docs; ++d) {
    out.doc_map_offsets[d + 1] += out.doc_map_offsets[d];
  }
  out.doc_map.resize(n);
  std::vector<uint64_t> doc_cursor(out.doc_map_offsets.begin(),
                                   out.doc_map_offsets.end() - 1);
  for (uint64_t t = 0; t < n; ++t) {
    out.doc_map[doc_cursor[out.token_doc[t]]++] = static_cast<uint32_t>(t);
  }
  return out;
}

uint64_t WordFirstChunk::DeviceBytes() const {
  return token_global.size() * sizeof(uint32_t) +
         token_doc.size() * sizeof(uint32_t) +
         word_offsets.size() * sizeof(uint64_t) +
         doc_map_offsets.size() * sizeof(uint64_t) +
         doc_map.size() * sizeof(uint32_t);
}

void WordFirstChunk::Validate(const Corpus& corpus) const {
  CULDA_CHECK(token_word.size() == spec.num_tokens());
  CULDA_CHECK(token_doc.size() == spec.num_tokens());
  CULDA_CHECK(word_offsets.size() == corpus.vocab_size() + 1);
  CULDA_CHECK(word_offsets.front() == 0);
  CULDA_CHECK(word_offsets.back() == token_word.size());

  // Word-major: every token inside a word segment carries that word id, and
  // per-word counts match the corpus slice.
  std::vector<uint64_t> freq(corpus.vocab_size(), 0);
  for (uint64_t d = spec.doc_begin; d < spec.doc_end; ++d) {
    for (const uint32_t w : corpus.DocTokens(d)) ++freq[w];
  }
  for (uint32_t w = 0; w < corpus.vocab_size(); ++w) {
    CULDA_CHECK(WordCount(w) == freq[w]);
    for (uint64_t t = word_offsets[w]; t < word_offsets[w + 1]; ++t) {
      CULDA_CHECK(token_word[t] == w);
    }
  }

  // token_global maps each sorted token back to its corpus position.
  CULDA_CHECK(token_global.size() == token_word.size());
  for (uint64_t t = 0; t < token_global.size(); ++t) {
    const uint32_t g = token_global[t];
    CULDA_CHECK(g >= spec.token_begin && g < spec.token_end);
    CULDA_CHECK(corpus.words()[g] == token_word[t]);
  }

  // Doc map is a permutation of [0, n) grouped by document.
  CULDA_CHECK(doc_map.size() == token_word.size());
  std::vector<bool> seen(doc_map.size(), false);
  for (uint64_t d = 0; d < spec.num_docs(); ++d) {
    for (uint64_t i = doc_map_offsets[d]; i < doc_map_offsets[d + 1]; ++i) {
      const uint32_t t = doc_map[i];
      CULDA_CHECK(!seen[t]);
      seen[t] = true;
      CULDA_CHECK(token_doc[t] == d);
    }
  }
}

std::vector<WordRange> PartitionWordsByTokens(const Corpus& corpus,
                                              uint32_t num_chunks) {
  CULDA_CHECK(num_chunks >= 1);
  const auto freq = corpus.WordFrequencies();
  std::vector<uint64_t> prefix(freq.size() + 1, 0);
  for (size_t v = 0; v < freq.size(); ++v) {
    prefix[v + 1] = prefix[v] + freq[v];
  }
  const uint64_t total = prefix.back();

  std::vector<WordRange> ranges(num_chunks);
  uint32_t word = 0;
  for (uint32_t c = 0; c < num_chunks; ++c) {
    WordRange& r = ranges[c];
    r.id = c;
    r.word_begin = word;
    if (c + 1 == num_chunks) {
      word = corpus.vocab_size();
    } else {
      const uint64_t target = total * (c + 1) / num_chunks;
      while (word < corpus.vocab_size() && prefix[word + 1] <= target) {
        ++word;
      }
      if (word < corpus.vocab_size()) {
        const bool empty = word == r.word_begin;
        const bool closer = target - prefix[word] > prefix[word + 1] - target;
        if (empty || closer) ++word;
      }
    }
    r.word_end = word;
    r.num_tokens = prefix[r.word_end] - prefix[r.word_begin];
  }
  CULDA_CHECK(word == corpus.vocab_size());
  return ranges;
}

WordFirstChunk BuildWordRangeChunk(const Corpus& corpus,
                                   const WordRange& range) {
  CULDA_CHECK(range.word_begin <= range.word_end &&
              range.word_end <= corpus.vocab_size());
  CULDA_CHECK_MSG(corpus.num_tokens() <= UINT32_MAX,
                  "corpus exceeds 2^32 tokens; widen token_global");
  WordFirstChunk out;
  out.spec = ChunkSpec{range.id, 0, corpus.num_docs(), 0,
                       corpus.num_tokens()};
  out.vocab_size = corpus.vocab_size();

  // Counting sort over the full vocabulary; words outside the range simply
  // have empty segments.
  out.word_offsets.assign(corpus.vocab_size() + 1, 0);
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    for (const uint32_t w : corpus.DocTokens(d)) {
      if (w >= range.word_begin && w < range.word_end) {
        ++out.word_offsets[w + 1];
      }
    }
  }
  for (size_t w = 0; w < corpus.vocab_size(); ++w) {
    out.word_offsets[w + 1] += out.word_offsets[w];
  }
  const uint64_t n = out.word_offsets.back();
  CULDA_CHECK(n == range.num_tokens);
  out.token_word.resize(n);
  out.token_doc.resize(n);
  out.token_global.resize(n);

  std::vector<uint64_t> cursor(out.word_offsets.begin(),
                               out.word_offsets.end() - 1);
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    const uint64_t doc_base = corpus.DocBegin(d);
    const auto tokens = corpus.DocTokens(d);
    for (size_t i = 0; i < tokens.size(); ++i) {
      const uint32_t w = tokens[i];
      if (w < range.word_begin || w >= range.word_end) continue;
      const uint64_t pos = cursor[w]++;
      out.token_word[pos] = w;
      out.token_doc[pos] = static_cast<uint32_t>(d);
      out.token_global[pos] = static_cast<uint32_t>(doc_base + i);
    }
  }

  // Document→token map over all documents.
  out.doc_map_offsets.assign(corpus.num_docs() + 1, 0);
  for (uint64_t t = 0; t < n; ++t) {
    ++out.doc_map_offsets[out.token_doc[t] + 1];
  }
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    out.doc_map_offsets[d + 1] += out.doc_map_offsets[d];
  }
  out.doc_map.resize(n);
  std::vector<uint64_t> doc_cursor(out.doc_map_offsets.begin(),
                                   out.doc_map_offsets.end() - 1);
  for (uint64_t t = 0; t < n; ++t) {
    out.doc_map[doc_cursor[out.token_doc[t]]++] = static_cast<uint32_t>(t);
  }
  return out;
}

std::vector<BlockWork> BuildBlockWorkList(const WordFirstChunk& chunk,
                                          uint64_t max_tokens_per_block) {
  CULDA_CHECK(max_tokens_per_block >= 1);
  std::vector<BlockWork> work;
  for (uint32_t w = 0; w < chunk.vocab_size; ++w) {
    const uint64_t begin = chunk.word_offsets[w];
    const uint64_t end = chunk.word_offsets[w + 1];
    for (uint64_t b = begin; b < end; b += max_tokens_per_block) {
      work.push_back({w, b, std::min(end, b + max_tokens_per_block)});
    }
  }
  // Heaviest blocks first; ties broken by word id for determinism.
  std::sort(work.begin(), work.end(), [](const BlockWork& a,
                                         const BlockWork& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    if (a.word != b.word) return a.word < b.word;
    return a.token_begin < b.token_begin;
  });
  return work;
}

}  // namespace culda::corpus
