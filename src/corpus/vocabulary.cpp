#include "corpus/vocabulary.hpp"

#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace culda::corpus {

uint32_t Vocabulary::GetOrAdd(std::string_view word) {
  const auto it = index_.find(std::string(word));
  if (it != index_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(words_.size());
  words_.emplace_back(word);
  index_.emplace(words_.back(), id);
  return id;
}

uint32_t Vocabulary::Find(std::string_view word) const {
  const auto it = index_.find(std::string(word));
  return it == index_.end() ? kNotFound : it->second;
}

const std::string& Vocabulary::WordOf(uint32_t id) const {
  CULDA_CHECK_MSG(id < words_.size(), "word id " << id << " out of range");
  return words_[id];
}

Vocabulary Vocabulary::FromStream(std::istream& in) {
  Vocabulary v;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    const uint32_t before = v.size();
    const uint32_t id = v.GetOrAdd(line);
    CULDA_CHECK_MSG(id == before, "duplicate vocabulary word '" << line
                                                                << "'");
  }
  return v;
}

void Vocabulary::WriteTo(std::ostream& out) const {
  for (const auto& w : words_) out << w << "\n";
}

}  // namespace culda::corpus
