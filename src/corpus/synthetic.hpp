// Synthetic corpus generation from the LDA generative model.
//
// The paper evaluates on NYTimes (299,752 docs / 99.5M tokens / V=101,636,
// avg ≈ 332 tokens/doc) and PubMed (8.2M docs / 737.9M tokens / V=141,043,
// avg ≈ 92 tokens/doc) — Table 3. Since the raw UCI dumps are not shipped
// here and full size would not run in reasonable time on a 1-core functional
// simulator, we generate corpora from the LDA generative process with
// profiles matching each dataset's *shape*: document-length distribution
// (which controls θ sparsity — the driver of the Figure 7 warm-up ramp and
// the NYTimes/PubMed contrast) and a Zipfian word-frequency skew (which
// exercises the heavy-word splitting path of Figure 6). Real UCI files drop
// in via uci_reader.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "corpus/corpus.hpp"

namespace culda::corpus {

struct SyntheticProfile {
  std::string name = "synthetic";
  uint64_t num_docs = 1000;
  uint32_t vocab_size = 2000;
  uint32_t num_topics = 50;       ///< K of the generative model (not the
                                  ///< trainer's K)
  double avg_doc_length = 100;    ///< lognormal mean document length
  double doc_length_sigma = 0.6;  ///< lognormal shape
  uint32_t min_doc_length = 4;
  double doc_topic_alpha = 0.08;  ///< Dirichlet concentration per topic
  double topic_word_beta = 0.05;  ///< Dirichlet concentration per word (over
                                  ///< the Zipfian base measure)
  double zipf_exponent = 1.05;    ///< word-frequency skew of the base measure
  uint64_t seed = 42;
};

/// NYTimes-shaped profile. `scale` ∈ (0, 1]: document count scales linearly,
/// vocabulary by sqrt(scale) (heavy-tail vocabularies grow sublinearly with
/// corpus size). scale = 1 reproduces Table 3's row.
SyntheticProfile NyTimesProfile(double scale);

/// PubMed-shaped profile (short documents, larger vocabulary).
SyntheticProfile PubMedProfile(double scale);

/// Samples a corpus from the LDA generative process under `profile`.
/// Deterministic in profile.seed.
Corpus GenerateCorpus(const SyntheticProfile& profile);

}  // namespace culda::corpus
