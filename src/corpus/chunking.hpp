// Corpus partitioning for multi-GPU training.
//
// Section 4/5.1: the corpus is split partition-by-document into C = M × G
// chunks, balanced **by token count, not document count** (documents have
// wildly different lengths), and chunk i is scheduled to GPU i % G in
// round-robin, lower ids first.
#pragma once

#include <cstdint>
#include <vector>

#include "corpus/corpus.hpp"

namespace culda::corpus {

/// A contiguous document range [doc_begin, doc_end) of the corpus, together
/// with its token range in the document-major token array.
struct ChunkSpec {
  uint32_t id = 0;
  uint64_t doc_begin = 0;
  uint64_t doc_end = 0;
  uint64_t token_begin = 0;
  uint64_t token_end = 0;

  uint64_t num_docs() const { return doc_end - doc_begin; }
  uint64_t num_tokens() const { return token_end - token_begin; }
};

/// Splits `corpus` into `num_chunks` contiguous document ranges whose token
/// counts are as even as the document granularity allows (each boundary is
/// placed at the document whose cumulative token count first reaches the
/// ideal split point). Empty chunks only occur when num_chunks > num_docs.
std::vector<ChunkSpec> PartitionByTokens(const Corpus& corpus,
                                         uint32_t num_chunks);

/// Maximum relative load imbalance of a partition:
/// max_chunk_tokens / ideal − 1. Diagnostic used by tests and DESIGN A4.
double LoadImbalance(const std::vector<ChunkSpec>& chunks);

}  // namespace culda::corpus
