// Word-first chunk layout and block work lists (Figure 6, Section 6).
//
// CuLDA sorts each corpus chunk's tokens word-first so that all samplers in
// one thread block process tokens of the same word and can share the p2/p*
// index tree in shared memory. Heavy words are split across several blocks
// to avoid load imbalance, and the work list is ordered heaviest-first so
// the GPU scheduler issues the long-running blocks early (no long-tail).
//
// The θ update (Section 6.2) walks tokens document-by-document; since the
// word-first order scatters a document's tokens, the CPU precomputes a
// document→token map at preprocessing time — BuildWordFirstChunk produces it
// together with the sorted layout.
#pragma once

#include <cstdint>
#include <vector>

#include "corpus/chunking.hpp"
#include "corpus/corpus.hpp"

namespace culda::corpus {

struct WordFirstChunk {
  ChunkSpec spec;
  uint32_t vocab_size = 0;

  /// Tokens in word-major order (within a word: document order).
  std::vector<uint32_t> token_word;  ///< word id per sorted token
  std::vector<uint32_t> token_doc;   ///< local doc index per sorted token
  /// Position of each sorted token in the *corpus-global* document-major
  /// order. This is the token's stable identity: the sampler keys its random
  /// stream by it, which makes training results independent of how the
  /// corpus is partitioned (1 GPU ≡ 4 GPUs ≡ streamed chunks).
  std::vector<uint32_t> token_global;
  std::vector<uint64_t> word_offsets;  ///< V+1 offsets into the sorted tokens

  /// Document→token map: for local document d, sorted-token indices
  /// doc_map[doc_map_offsets[d] .. doc_map_offsets[d+1]) are its tokens.
  std::vector<uint64_t> doc_map_offsets;
  std::vector<uint32_t> doc_map;

  uint64_t num_tokens() const { return token_word.size(); }
  uint64_t num_docs() const { return spec.num_docs(); }

  uint64_t WordCount(uint32_t w) const {
    return word_offsets[w + 1] - word_offsets[w];
  }

  /// Device-resident footprint of the chunk (token arrays + doc map), used
  /// by the scheduler's memory-capacity check (Section 5.1).
  uint64_t DeviceBytes() const;

  /// Consistency check against the source corpus; throws on mismatch.
  void Validate(const Corpus& corpus) const;
};

WordFirstChunk BuildWordFirstChunk(const Corpus& corpus,
                                   const ChunkSpec& spec);

/// A contiguous vocabulary range [word_begin, word_end) — the chunk unit of
/// the partition-by-word policy Section 4 *rejects* (kept so the rejected
/// design can be measured, not just argued about; see
/// core::WordPartitionTrainer).
struct WordRange {
  uint32_t id = 0;
  uint32_t word_begin = 0;
  uint32_t word_end = 0;
  uint64_t num_tokens = 0;
};

/// Splits the vocabulary into `num_chunks` contiguous ranges with token
/// counts as even as word granularity allows.
std::vector<WordRange> PartitionWordsByTokens(const Corpus& corpus,
                                              uint32_t num_chunks);

/// Builds the word-first layout of one word range across ALL documents.
/// `token_doc` holds corpus-global document ids; `doc_map_offsets` spans all
/// documents (documents with no tokens of these words have empty ranges);
/// spec covers the full document range with token_{begin,end} = 0 (token
/// positions are not contiguous for a word range — token_global carries
/// identity instead).
WordFirstChunk BuildWordRangeChunk(const Corpus& corpus,
                                   const WordRange& range);

/// One thread block's share of the sampling work: a token range of a single
/// word (Figure 6).
struct BlockWork {
  uint32_t word = 0;
  uint64_t token_begin = 0;
  uint64_t token_end = 0;
  uint64_t size() const { return token_end - token_begin; }
};

/// Builds the per-block work list: every word with tokens contributes
/// ceil(count / max_tokens_per_block) blocks; the list is sorted by
/// descending size (heavy words first — the paper's long-tail avoidance).
std::vector<BlockWork> BuildBlockWorkList(const WordFirstChunk& chunk,
                                          uint64_t max_tokens_per_block);

}  // namespace culda::corpus
