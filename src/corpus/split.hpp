// Train / held-out corpus splitting.
//
// Held-out evaluation (document-completion perplexity) needs documents the
// trainer never saw, drawn from the same collection. SplitByDocuments keeps
// every document intact and assigns a deterministic pseudo-random subset to
// the held-out side.
#pragma once

#include <cstdint>

#include "corpus/corpus.hpp"

namespace culda::corpus {

struct CorpusSplit {
  Corpus train;
  Corpus heldout;
};

/// Splits `corpus` by documents: each document lands in the held-out set
/// with probability `heldout_fraction`, decided by a Philox stream keyed by
/// (seed, document id) — deterministic and order-independent. At least one
/// document is kept on each side (the fraction is nudged if necessary).
CorpusSplit SplitByDocuments(const Corpus& corpus, double heldout_fraction,
                             uint64_t seed = 17);

/// Extracts the contiguous document range [doc_begin, doc_end) as a corpus.
Corpus SliceDocuments(const Corpus& corpus, size_t doc_begin,
                      size_t doc_end);

}  // namespace culda::corpus
