#include "corpus/corpus.hpp"

#include <algorithm>
#include <sstream>

namespace culda::corpus {

Corpus::Corpus(uint32_t vocab_size, std::vector<uint64_t> doc_offsets,
               std::vector<uint32_t> words)
    : vocab_size_(vocab_size),
      doc_offsets_(std::move(doc_offsets)),
      words_(std::move(words)) {
  Validate();
}

uint64_t Corpus::MaxDocLength() const {
  uint64_t m = 0;
  for (size_t d = 0; d < num_docs(); ++d) m = std::max(m, DocLength(d));
  return m;
}

std::vector<uint64_t> Corpus::WordFrequencies() const {
  std::vector<uint64_t> freq(vocab_size_, 0);
  for (const uint32_t w : words_) ++freq[w];
  return freq;
}

void Corpus::Validate() const {
  CULDA_CHECK_MSG(!doc_offsets_.empty(), "doc_offsets must have D+1 entries");
  CULDA_CHECK(doc_offsets_.front() == 0);
  CULDA_CHECK(doc_offsets_.back() == words_.size());
  for (size_t d = 0; d + 1 < doc_offsets_.size(); ++d) {
    CULDA_CHECK(doc_offsets_[d] <= doc_offsets_[d + 1]);
  }
  for (const uint32_t w : words_) {
    CULDA_CHECK_MSG(w < vocab_size_, "word id " << w << " out of range");
  }
}

std::string Corpus::Summary(const std::string& name) const {
  std::ostringstream os;
  os << name << ": #Tokens=" << num_tokens() << " #Documents=" << num_docs()
     << " #Words=" << vocab_size()
     << " avg_doc_len=" << static_cast<uint64_t>(AvgDocLength() + 0.5);
  return os.str();
}

}  // namespace culda::corpus
