#include "corpus/uci_reader.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace culda::corpus {

Corpus ReadUciBagOfWords(std::istream& in) {
  uint64_t num_docs = 0, vocab = 0, nnz = 0;
  CULDA_CHECK_MSG(static_cast<bool>(in >> num_docs >> vocab >> nnz),
                  "UCI header (D, W, NNZ) missing or malformed");
  CULDA_CHECK_MSG(num_docs > 0 && vocab > 0, "empty UCI header");

  // Entries may arrive in any doc order; bucket them per document first.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> docs(num_docs);
  for (uint64_t i = 0; i < nnz; ++i) {
    uint64_t doc_id = 0, word_id = 0, count = 0;
    CULDA_CHECK_MSG(static_cast<bool>(in >> doc_id >> word_id >> count),
                    "UCI entry " << i << " malformed (expected " << nnz
                                 << " entries)");
    CULDA_CHECK_MSG(doc_id >= 1 && doc_id <= num_docs,
                    "doc id " << doc_id << " out of [1, " << num_docs << "]");
    CULDA_CHECK_MSG(word_id >= 1 && word_id <= vocab,
                    "word id " << word_id << " out of [1, " << vocab << "]");
    CULDA_CHECK_MSG(count >= 1, "zero count at entry " << i);
    docs[doc_id - 1].emplace_back(static_cast<uint32_t>(word_id - 1),
                                  static_cast<uint32_t>(count));
  }

  std::vector<uint64_t> doc_offsets;
  doc_offsets.reserve(num_docs + 1);
  doc_offsets.push_back(0);
  std::vector<uint32_t> words;
  for (const auto& entries : docs) {
    for (const auto& [word, count] : entries) {
      for (uint32_t c = 0; c < count; ++c) words.push_back(word);
    }
    doc_offsets.push_back(words.size());
  }
  return Corpus(static_cast<uint32_t>(vocab), std::move(doc_offsets),
                std::move(words));
}

Corpus ReadUciBagOfWordsFile(const std::string& path) {
  std::ifstream in(path);
  CULDA_CHECK_MSG(in.good(), "cannot open UCI file '" << path << "'");
  return ReadUciBagOfWords(in);
}

void WriteUciBagOfWords(const Corpus& corpus, std::ostream& out) {
  // Count (doc, word) pairs.
  uint64_t nnz = 0;
  std::vector<std::map<uint32_t, uint32_t>> counts(corpus.num_docs());
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    for (const uint32_t w : corpus.DocTokens(d)) ++counts[d][w];
    nnz += counts[d].size();
  }
  out << corpus.num_docs() << "\n" << corpus.vocab_size() << "\n" << nnz
      << "\n";
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    for (const auto& [w, c] : counts[d]) {
      out << (d + 1) << " " << (w + 1) << " " << c << "\n";
    }
  }
}

}  // namespace culda::corpus
