#include "corpus/uci_reader.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace culda::corpus {

namespace {

/// One parsed entry, 0-based. Buffering entries (instead of pre-sizing a
/// per-document bucket array from the header) keeps parse memory
/// proportional to the input actually read: a header declaring 10^18
/// documents costs nothing until real entries arrive.
struct UciEntry {
  uint32_t doc;
  uint32_t word;
  uint64_t count;
};

}  // namespace

Corpus ReadUciBagOfWords(std::istream& in, const UciReadLimits& limits) {
  // doc/word ids are carried in 32 bits below; a wider limit would truncate.
  CULDA_CHECK_MSG(limits.max_docs <= UINT32_MAX &&
                      limits.max_vocab <= UINT32_MAX,
                  "UciReadLimits doc/vocab caps must fit in 32 bits");

  // Signed extraction so a leading '-' is seen as a negative number (and
  // rejected below) instead of wrapping to 2^64−1 the way unsigned stream
  // extraction would; values beyond int64 range fail extraction outright.
  int64_t num_docs_s = 0, vocab_s = 0, nnz_s = 0;
  CULDA_CHECK_MSG(static_cast<bool>(in >> num_docs_s >> vocab_s >> nnz_s),
                  "UCI header (D, W, NNZ) missing or malformed");
  CULDA_CHECK_MSG(num_docs_s >= 0 && vocab_s >= 0 && nnz_s >= 0,
                  "UCI header contains a negative value (D=" << num_docs_s
                      << ", W=" << vocab_s << ", NNZ=" << nnz_s << ")");
  CULDA_CHECK_MSG(num_docs_s > 0 && vocab_s > 0, "empty UCI header");
  const uint64_t num_docs = static_cast<uint64_t>(num_docs_s);
  const uint64_t vocab = static_cast<uint64_t>(vocab_s);
  const uint64_t nnz = static_cast<uint64_t>(nnz_s);
  CULDA_CHECK_MSG(num_docs <= limits.max_docs,
                  "UCI header declares " << num_docs
                                         << " documents, above the limit "
                                         << limits.max_docs);
  CULDA_CHECK_MSG(vocab <= limits.max_vocab,
                  "UCI header declares a vocabulary of "
                      << vocab << ", above the limit " << limits.max_vocab);
  CULDA_CHECK_MSG(nnz <= limits.max_nnz,
                  "UCI header declares " << nnz
                                         << " entries, above the limit "
                                         << limits.max_nnz);

  std::vector<UciEntry> entries;
  entries.reserve(static_cast<size_t>(std::min<uint64_t>(nnz, 1u << 20)));
  uint64_t total_tokens = 0;
  for (uint64_t i = 0; i < nnz; ++i) {
    int64_t doc_id = 0, word_id = 0, count = 0;
    CULDA_CHECK_MSG(static_cast<bool>(in >> doc_id >> word_id >> count),
                    "UCI entry " << i << " malformed (expected " << nnz
                                 << " entries)");
    CULDA_CHECK_MSG(doc_id >= 0 && word_id >= 0 && count >= 0,
                    "UCI entry " << i << " contains a negative value ("
                                 << doc_id << " " << word_id << " " << count
                                 << ")");
    CULDA_CHECK_MSG(doc_id >= 1 && static_cast<uint64_t>(doc_id) <= num_docs,
                    "doc id " << doc_id << " out of [1, " << num_docs
                              << "]");
    CULDA_CHECK_MSG(word_id >= 1 && static_cast<uint64_t>(word_id) <= vocab,
                    "word id " << word_id << " out of [1, " << vocab << "]");
    CULDA_CHECK_MSG(count >= 1, "zero count at entry " << i);
    CULDA_CHECK_MSG(static_cast<uint64_t>(count) <=
                        limits.max_tokens - total_tokens,
                    "entry " << i << " (count " << count
                             << ") pushes the token total past the limit "
                             << limits.max_tokens);
    total_tokens += static_cast<uint64_t>(count);
    entries.push_back({static_cast<uint32_t>(doc_id - 1),
                       static_cast<uint32_t>(word_id - 1),
                       static_cast<uint64_t>(count)});
  }

  // The final number must be terminated by whitespace: without this, a file
  // truncated inside its last count (e.g. "… 12" → "… 1") still parses and
  // loads silently with the wrong corpus.
  if (nnz > 0) {
    const int next = in.peek();
    CULDA_CHECK_MSG(
        next != std::char_traits<char>::eof() &&
            std::isspace(static_cast<unsigned char>(next)),
        "UCI input ends unterminated after the last entry (truncated?)");
  }
  in >> std::ws;
  CULDA_CHECK_MSG(in.peek() == std::char_traits<char>::eof(),
                  "trailing garbage after " << nnz << " UCI entries");

  // Entries may arrive in any doc order; a stable sort groups them per
  // document while preserving the input order within each (matching the
  // historical per-document bucketing).
  std::stable_sort(entries.begin(), entries.end(),
                   [](const UciEntry& a, const UciEntry& b) {
                     return a.doc < b.doc;
                   });

  std::vector<uint64_t> doc_offsets;
  doc_offsets.reserve(num_docs + 1);
  doc_offsets.push_back(0);
  std::vector<uint32_t> words;
  words.reserve(static_cast<size_t>(total_tokens));
  size_t e = 0;
  for (uint64_t d = 0; d < num_docs; ++d) {
    for (; e < entries.size() && entries[e].doc == d; ++e) {
      for (uint64_t c = 0; c < entries[e].count; ++c) {
        words.push_back(entries[e].word);
      }
    }
    doc_offsets.push_back(words.size());
  }
  return Corpus(static_cast<uint32_t>(vocab), std::move(doc_offsets),
                std::move(words));
}

Corpus ReadUciBagOfWordsFile(const std::string& path,
                             const UciReadLimits& limits) {
  std::ifstream in(path);
  CULDA_CHECK_MSG(in.good(), "cannot open UCI file '" << path << "'");
  return ReadUciBagOfWords(in, limits);
}

void WriteUciBagOfWords(const Corpus& corpus, std::ostream& out) {
  // Count (doc, word) pairs.
  uint64_t nnz = 0;
  std::vector<std::map<uint32_t, uint32_t>> counts(corpus.num_docs());
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    for (const uint32_t w : corpus.DocTokens(d)) ++counts[d][w];
    nnz += counts[d].size();
  }
  out << corpus.num_docs() << "\n" << corpus.vocab_size() << "\n" << nnz
      << "\n";
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    for (const auto& [w, c] : counts[d]) {
      out << (d + 1) << " " << (w + 1) << " " << c << "\n";
    }
  }
}

}  // namespace culda::corpus
