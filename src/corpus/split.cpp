#include "corpus/split.hpp"

#include <vector>

#include "util/check.hpp"
#include "util/philox.hpp"

namespace culda::corpus {

CorpusSplit SplitByDocuments(const Corpus& corpus, double heldout_fraction,
                             uint64_t seed) {
  CULDA_CHECK_MSG(heldout_fraction > 0 && heldout_fraction < 1,
                  "heldout_fraction must be in (0, 1)");
  CULDA_CHECK_MSG(corpus.num_docs() >= 2,
                  "need at least 2 documents to split");

  std::vector<bool> heldout_mask(corpus.num_docs());
  size_t heldout_count = 0;
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    PhiloxStream rng(seed, d);
    heldout_mask[d] = rng.NextDouble() < heldout_fraction;
    heldout_count += heldout_mask[d];
  }
  // Guarantee both sides are non-empty.
  if (heldout_count == 0) {
    heldout_mask[corpus.num_docs() - 1] = true;
    heldout_count = 1;
  } else if (heldout_count == corpus.num_docs()) {
    heldout_mask[0] = false;
    --heldout_count;
  }

  auto build = [&](bool side) {
    std::vector<uint64_t> offsets{0};
    std::vector<uint32_t> words;
    for (size_t d = 0; d < corpus.num_docs(); ++d) {
      if (heldout_mask[d] != side) continue;
      const auto tokens = corpus.DocTokens(d);
      words.insert(words.end(), tokens.begin(), tokens.end());
      offsets.push_back(words.size());
    }
    return Corpus(corpus.vocab_size(), std::move(offsets), std::move(words));
  };
  return {build(false), build(true)};
}

Corpus SliceDocuments(const Corpus& corpus, size_t doc_begin,
                      size_t doc_end) {
  CULDA_CHECK(doc_begin <= doc_end && doc_end <= corpus.num_docs());
  std::vector<uint64_t> offsets{0};
  std::vector<uint32_t> words;
  for (size_t d = doc_begin; d < doc_end; ++d) {
    const auto tokens = corpus.DocTokens(d);
    words.insert(words.end(), tokens.begin(), tokens.end());
    offsets.push_back(words.size());
  }
  return Corpus(corpus.vocab_size(), std::move(offsets), std::move(words));
}

}  // namespace culda::corpus
