// Vocabulary: the bidirectional word ↔ id mapping.
//
// The trainer operates on integer word ids; this is the boundary where real
// text enters the system. Supports insertion-ordered construction (ids are
// stable and dense), lookup, frequency-based pruning, and the UCI `vocab.*`
// sidecar format the paper's datasets ship with.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace culda::corpus {

class Vocabulary {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;

  Vocabulary() = default;

  /// Returns the id for `word`, inserting it if new.
  uint32_t GetOrAdd(std::string_view word);

  /// Returns the id for `word` or kNotFound.
  uint32_t Find(std::string_view word) const;

  /// The word for an id; id must be < size().
  const std::string& WordOf(uint32_t id) const;

  uint32_t size() const { return static_cast<uint32_t>(words_.size()); }
  bool empty() const { return words_.empty(); }

  /// Reads one word per line (the UCI `vocab.<dataset>.txt` format); ids are
  /// line numbers starting at 0. Throws on duplicate words.
  static Vocabulary FromStream(std::istream& in);

  /// Writes one word per line in id order.
  void WriteTo(std::ostream& out) const;

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace culda::corpus
