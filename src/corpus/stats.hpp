// Corpus statistics: document-length and word-frequency distributions.
//
// These are the two shape properties that drive CuLDA's performance story —
// doc lengths control θ sparsity (the Figure 7 ramp and the NYTimes/PubMed
// contrast), word frequencies control block-level work skew (the Figure 6
// heavy-word handling). The benches print them as the Table 3 analogue, and
// tests use them to verify the synthetic profiles match their targets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"

namespace culda::corpus {

struct DistributionSummary {
  uint64_t count = 0;
  uint64_t min = 0;
  uint64_t p25 = 0;
  uint64_t median = 0;
  uint64_t p75 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  double mean = 0;
};

/// Summarizes a sample of non-negative values. Percentiles use the
/// nearest-rank method; an empty sample yields all zeros.
DistributionSummary Summarize(std::vector<uint64_t> values);

struct CorpusStats {
  DistributionSummary doc_lengths;
  DistributionSummary word_frequencies;  ///< over words with ≥1 occurrence
  uint32_t vocab_used = 0;   ///< words that actually occur
  /// Fraction of all tokens carried by the most frequent 1% of words — the
  /// head weight of the Zipf distribution.
  double top1pct_token_share = 0;
};

CorpusStats ComputeStats(const Corpus& corpus);

/// Multi-line human-readable report.
std::string FormatStats(const CorpusStats& stats, const std::string& name);

}  // namespace culda::corpus
