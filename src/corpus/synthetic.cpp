#include "corpus/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "util/check.hpp"

namespace culda::corpus {

namespace {

/// Samples a Dirichlet(concentration * base) vector as normalized gammas,
/// then converts to an inclusive-prefix CDF for O(log n) multinomials.
std::vector<double> DirichletCdf(std::mt19937_64& rng,
                                 const std::vector<double>& alpha) {
  std::vector<double> v(alpha.size());
  double sum = 0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    std::gamma_distribution<double> gamma(alpha[i], 1.0);
    v[i] = gamma(rng);
    sum += v[i];
  }
  // Guard against an all-underflow draw (tiny concentrations can produce
  // gamma variates that all round to 0).
  if (sum <= 0) {
    std::uniform_int_distribution<size_t> pick(0, v.size() - 1);
    v.assign(v.size(), 0.0);
    v[pick(rng)] = 1.0;
    sum = 1.0;
  }
  double acc = 0;
  for (auto& x : v) {
    acc += x / sum;
    x = acc;
  }
  v.back() = 1.0;
  return v;
}

size_t SampleCdf(std::mt19937_64& rng, const std::vector<double>& cdf) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double u = uni(rng);
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return std::min(static_cast<size_t>(it - cdf.begin()), cdf.size() - 1);
}

}  // namespace

SyntheticProfile NyTimesProfile(double scale) {
  CULDA_CHECK_MSG(scale > 0 && scale <= 1.0, "scale must be in (0, 1]");
  SyntheticProfile p;
  p.name = "NYTimes-like";
  p.num_docs = std::max<uint64_t>(100, static_cast<uint64_t>(299752 * scale));
  p.vocab_size = std::max<uint32_t>(
      1000, static_cast<uint32_t>(101636 * std::sqrt(scale)));
  p.num_topics = 100;
  p.avg_doc_length = 332;  // 99.5M tokens / 299,752 docs
  p.doc_length_sigma = 0.7;
  p.seed = 20190624;  // HPDC'19
  return p;
}

SyntheticProfile PubMedProfile(double scale) {
  CULDA_CHECK_MSG(scale > 0 && scale <= 1.0, "scale must be in (0, 1]");
  SyntheticProfile p;
  p.name = "PubMed-like";
  p.num_docs = std::max<uint64_t>(100, static_cast<uint64_t>(8200000 * scale));
  p.vocab_size = std::max<uint32_t>(
      1000, static_cast<uint32_t>(141043 * std::sqrt(scale)));
  p.num_topics = 100;
  p.avg_doc_length = 90;  // 737.9M tokens / 8.2M docs
  p.doc_length_sigma = 0.45;
  p.seed = 20190625;
  return p;
}

Corpus GenerateCorpus(const SyntheticProfile& profile) {
  CULDA_CHECK(profile.num_docs > 0);
  CULDA_CHECK(profile.vocab_size > 1);
  CULDA_CHECK(profile.num_topics > 0);
  std::mt19937_64 rng(profile.seed);

  // Zipfian base measure over the vocabulary.
  std::vector<double> base(profile.vocab_size);
  double base_sum = 0;
  for (uint32_t v = 0; v < profile.vocab_size; ++v) {
    base[v] = 1.0 / std::pow(static_cast<double>(v) + 2.0,
                             profile.zipf_exponent);
    base_sum += base[v];
  }
  for (auto& b : base) b /= base_sum;

  // Topic–word distributions: Dirichlet over the Zipfian base, so the
  // corpus keeps a realistic head/tail word-frequency split.
  std::vector<std::vector<double>> topic_word_cdf(profile.num_topics);
  {
    std::vector<double> alpha(profile.vocab_size);
    for (uint32_t k = 0; k < profile.num_topics; ++k) {
      for (uint32_t v = 0; v < profile.vocab_size; ++v) {
        alpha[v] = profile.topic_word_beta * profile.vocab_size * base[v];
      }
      topic_word_cdf[k] = DirichletCdf(rng, alpha);
    }
  }

  // Document lengths: lognormal with the profile mean.
  const double sigma = profile.doc_length_sigma;
  const double mu = std::log(profile.avg_doc_length) - sigma * sigma / 2.0;
  std::lognormal_distribution<double> length_dist(mu, sigma);

  std::vector<uint64_t> doc_offsets;
  doc_offsets.reserve(profile.num_docs + 1);
  doc_offsets.push_back(0);
  std::vector<uint32_t> words;
  words.reserve(static_cast<size_t>(profile.num_docs *
                                    profile.avg_doc_length * 1.1));

  std::vector<double> doc_alpha(profile.num_topics, profile.doc_topic_alpha *
                                                        profile.num_topics /
                                                        profile.num_topics);
  std::fill(doc_alpha.begin(), doc_alpha.end(), profile.doc_topic_alpha);

  for (uint64_t d = 0; d < profile.num_docs; ++d) {
    const auto len = std::max<uint64_t>(
        profile.min_doc_length, static_cast<uint64_t>(length_dist(rng)));
    const std::vector<double> theta_cdf = DirichletCdf(rng, doc_alpha);
    for (uint64_t t = 0; t < len; ++t) {
      const size_t k = SampleCdf(rng, theta_cdf);
      const size_t w = SampleCdf(rng, topic_word_cdf[k]);
      words.push_back(static_cast<uint32_t>(w));
    }
    doc_offsets.push_back(words.size());
  }

  return Corpus(profile.vocab_size, std::move(doc_offsets), std::move(words));
}

}  // namespace culda::corpus
