#include "corpus/chunking.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace culda::corpus {

std::vector<ChunkSpec> PartitionByTokens(const Corpus& corpus,
                                         uint32_t num_chunks) {
  CULDA_CHECK(num_chunks >= 1);
  const uint64_t total = corpus.num_tokens();
  const uint64_t num_docs = corpus.num_docs();
  const auto offsets = corpus.doc_offsets();

  std::vector<ChunkSpec> chunks(num_chunks);
  uint64_t doc = 0;
  for (uint32_t c = 0; c < num_chunks; ++c) {
    ChunkSpec& chunk = chunks[c];
    chunk.id = c;
    chunk.doc_begin = doc;
    chunk.token_begin = offsets[doc];

    if (c + 1 == num_chunks) {
      doc = num_docs;  // last chunk takes the remainder
    } else {
      // Ideal boundary for the end of chunk c, as a global token position
      // (using the global prefix keeps rounding from accumulating).
      const uint64_t target = total * (c + 1) / num_chunks;
      while (doc < num_docs && offsets[doc + 1] <= target) ++doc;
      if (doc < num_docs) {
        // The next document straddles the boundary; include it when that
        // lands closer to the ideal split, and always when the chunk would
        // otherwise be empty (a single document longer than a whole share).
        const bool empty = doc == chunk.doc_begin;
        const bool closer =
            target - offsets[doc] > offsets[doc + 1] - target;
        if (empty || closer) ++doc;
      }
    }
    chunk.doc_end = doc;
    chunk.token_end = offsets[doc];
  }
  CULDA_CHECK_MSG(doc == num_docs, "partition did not cover all documents");
  return chunks;
}

double LoadImbalance(const std::vector<ChunkSpec>& chunks) {
  CULDA_CHECK(!chunks.empty());
  uint64_t total = 0, max_tokens = 0;
  for (const auto& c : chunks) {
    total += c.num_tokens();
    max_tokens = std::max(max_tokens, c.num_tokens());
  }
  if (total == 0) return 0.0;
  const double ideal = static_cast<double>(total) / chunks.size();
  return static_cast<double>(max_tokens) / ideal - 1.0;
}

}  // namespace culda::corpus
