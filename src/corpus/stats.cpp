#include "corpus/stats.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace culda::corpus {

DistributionSummary Summarize(std::vector<uint64_t> values) {
  DistributionSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  auto rank = [&](double p) {
    const size_t i = static_cast<size_t>(p * (values.size() - 1) + 0.5);
    return values[std::min(i, values.size() - 1)];
  };
  s.p25 = rank(0.25);
  s.median = rank(0.50);
  s.p75 = rank(0.75);
  s.p99 = rank(0.99);
  double sum = 0;
  for (const uint64_t v : values) sum += static_cast<double>(v);
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

CorpusStats ComputeStats(const Corpus& corpus) {
  CorpusStats stats;

  std::vector<uint64_t> lengths(corpus.num_docs());
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    lengths[d] = corpus.DocLength(d);
  }
  stats.doc_lengths = Summarize(std::move(lengths));

  const auto freq = corpus.WordFrequencies();
  std::vector<uint64_t> nonzero;
  nonzero.reserve(freq.size());
  for (const uint64_t f : freq) {
    if (f > 0) nonzero.push_back(f);
  }
  stats.vocab_used = static_cast<uint32_t>(nonzero.size());

  // Head share: the top 1% of occurring words by frequency.
  if (!nonzero.empty() && corpus.num_tokens() > 0) {
    std::vector<uint64_t> sorted = nonzero;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    const size_t head = std::max<size_t>(1, sorted.size() / 100);
    uint64_t head_tokens = 0;
    for (size_t i = 0; i < head; ++i) head_tokens += sorted[i];
    stats.top1pct_token_share =
        static_cast<double>(head_tokens) /
        static_cast<double>(corpus.num_tokens());
  }
  stats.word_frequencies = Summarize(std::move(nonzero));
  return stats;
}

std::string FormatStats(const CorpusStats& stats, const std::string& name) {
  std::ostringstream os;
  const auto& dl = stats.doc_lengths;
  const auto& wf = stats.word_frequencies;
  os << name << " statistics:\n"
     << "  doc length: mean " << dl.mean << ", min " << dl.min << ", p25 "
     << dl.p25 << ", median " << dl.median << ", p75 " << dl.p75 << ", p99 "
     << dl.p99 << ", max " << dl.max << "\n"
     << "  word freq (over " << stats.vocab_used
     << " occurring words): mean " << wf.mean << ", median " << wf.median
     << ", p99 " << wf.p99 << ", max " << wf.max << "\n"
     << "  top-1% words carry "
     << static_cast<int>(stats.top1pct_token_share * 100 + 0.5)
     << "% of tokens";
  return os.str();
}

}  // namespace culda::corpus
