// Token-level corpus storage.
//
// A corpus is D documents over a V-word vocabulary, stored document-major:
// `words[t]` is the word id of token t, and `doc_offsets[d]..doc_offsets[d+1]`
// delimits document d's tokens. This is the host-side representation the CPU
// preprocesses (Section 4); per-chunk word-first views for the GPU kernels
// are built by word_first.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace culda::corpus {

class Corpus {
 public:
  Corpus() = default;

  /// Takes ownership of token storage. `doc_offsets` has D+1 entries with
  /// doc_offsets[0] == 0 and doc_offsets[D] == words.size(); every word id
  /// must be < vocab_size.
  Corpus(uint32_t vocab_size, std::vector<uint64_t> doc_offsets,
         std::vector<uint32_t> words);

  uint32_t vocab_size() const { return vocab_size_; }
  size_t num_docs() const { return doc_offsets_.size() - 1; }
  uint64_t num_tokens() const { return words_.size(); }

  std::span<const uint64_t> doc_offsets() const { return doc_offsets_; }
  std::span<const uint32_t> words() const { return words_; }

  uint64_t DocBegin(size_t d) const { return doc_offsets_[d]; }
  uint64_t DocLength(size_t d) const {
    return doc_offsets_[d + 1] - doc_offsets_[d];
  }
  std::span<const uint32_t> DocTokens(size_t d) const {
    return {words_.data() + doc_offsets_[d], DocLength(d)};
  }

  double AvgDocLength() const {
    return num_docs() == 0
               ? 0.0
               : static_cast<double>(num_tokens()) / num_docs();
  }
  uint64_t MaxDocLength() const;

  /// Number of occurrences of each word across the corpus (length V).
  std::vector<uint64_t> WordFrequencies() const;

  /// Structural validation; throws culda::Error on inconsistency.
  void Validate() const;

  /// One-line summary for logs and bench headers (Table 3-style).
  std::string Summary(const std::string& name) const;

 private:
  uint32_t vocab_size_ = 0;
  std::vector<uint64_t> doc_offsets_{0};
  std::vector<uint32_t> words_;
};

}  // namespace culda::corpus
