#include "corpus/text_pipeline.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <unordered_map>

#include "util/check.hpp"

namespace culda::corpus {

std::unordered_set<std::string>
TextPipelineOptions::DefaultEnglishStopwords() {
  return {"a",    "an",   "and",  "are",  "as",   "at",   "be",   "by",
          "for",  "from", "has",  "have", "he",   "her",  "his",  "in",
          "is",   "it",   "its",  "of",   "on",   "or",   "she",  "that",
          "the",  "their", "they", "this", "to",   "was",  "were", "which",
          "will", "with", "but",  "not",  "we",   "you",  "i",    "had",
          "been", "would", "there", "what", "when", "who",  "how",  "all"};
}

TextPipeline::TextPipeline(TextPipelineOptions options)
    : options_(std::move(options)) {}

std::vector<std::string> TextPipeline::Tokenize(
    std::string_view text, const TextPipelineOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.size() >= options.min_word_length &&
        options.stopwords.find(current) == options.stopwords.end()) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (const char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(options.lowercase
                            ? static_cast<char>(std::tolower(c))
                            : raw);
    } else if (!current.empty()) {
      flush();
    }
  }
  if (!current.empty()) flush();
  return tokens;
}

void TextPipeline::AddDocument(std::string_view text) {
  docs_.push_back(Tokenize(text, options_));
}

size_t TextPipeline::AddDocumentsFromStream(std::istream& in) {
  size_t added = 0;
  std::string line;
  while (std::getline(in, line)) {
    AddDocument(line);
    ++added;
  }
  return added;
}

TextPipeline::Result TextPipeline::Build() const {
  // Global frequencies drive min_word_count pruning.
  std::unordered_map<std::string, uint64_t> freq;
  uint64_t raw_tokens = 0;
  for (const auto& doc : docs_) {
    for (const auto& w : doc) {
      ++freq[w];
      ++raw_tokens;
    }
  }

  Result result;
  std::vector<uint64_t> offsets{0};
  std::vector<uint32_t> words;
  words.reserve(raw_tokens);
  for (const auto& doc : docs_) {
    for (const auto& w : doc) {
      if (freq[w] < options_.min_word_count) {
        ++result.dropped_tokens;
        continue;
      }
      words.push_back(result.vocabulary.GetOrAdd(w));
    }
    offsets.push_back(words.size());
  }
  CULDA_CHECK_MSG(!result.vocabulary.empty(),
                  "text pipeline produced an empty vocabulary");
  result.corpus = Corpus(result.vocabulary.size(), std::move(offsets),
                         std::move(words));
  return result;
}

}  // namespace culda::corpus
