// UCI "bag of words" format I/O.
//
// Both of the paper's datasets (NYTimes, PubMed) ship in this format from
// the UCI repository:
//
//   D          (number of documents)
//   W          (vocabulary size)
//   NNZ        (number of (doc, word) pairs)
//   docID wordID count        (1-based ids, NNZ lines)
//
// ReadUciBagOfWords expands counts into tokens so real datasets drop into
// the trainer unchanged; WriteUciBagOfWords round-trips synthetic corpora
// for interchange and tests.
//
// The reader treats its input as untrusted: header dimensions are capped
// (UciReadLimits), memory during parsing grows with the entries actually
// present rather than with declared sizes, negative fields are rejected
// explicitly (they would otherwise wrap through unsigned extraction), the
// expanded token total is validated against a configurable cap before any
// expansion, the final entry must be terminated by whitespace (so a
// truncated trailing number cannot load silently), and bytes after the
// NNZ-th entry are rejected as trailing garbage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "corpus/corpus.hpp"

namespace culda::corpus {

/// Ceilings applied to untrusted UCI headers before anything is allocated
/// or expanded. The defaults clear the paper's corpora (PubMed: 8.2M docs,
/// 141k vocab, 483M nnz, 738M tokens) with two orders of magnitude to
/// spare; raise them explicitly for larger corpora.
struct UciReadLimits {
  uint64_t max_docs = 1ull << 28;    ///< 268M documents
  uint64_t max_vocab = 1ull << 27;   ///< 134M words
  uint64_t max_nnz = 1ull << 32;     ///< 4.3B (doc, word) entries
  uint64_t max_tokens = 1ull << 32;  ///< 4.3B expanded tokens
};

/// Parses a UCI bag-of-words stream. Throws culda::Error on malformed,
/// truncated, or hostile input (non-monotonic doc ids are accepted; ids out
/// of range, negative fields, over-limit dimensions, and trailing garbage
/// are not).
Corpus ReadUciBagOfWords(std::istream& in, const UciReadLimits& limits = {});

/// Convenience overload opening `path`.
Corpus ReadUciBagOfWordsFile(const std::string& path,
                             const UciReadLimits& limits = {});

/// Writes `corpus` in UCI bag-of-words format (tokens of equal (doc, word)
/// are merged into counts, as the format requires).
void WriteUciBagOfWords(const Corpus& corpus, std::ostream& out);

}  // namespace culda::corpus
