// UCI "bag of words" format I/O.
//
// Both of the paper's datasets (NYTimes, PubMed) ship in this format from
// the UCI repository:
//
//   D          (number of documents)
//   W          (vocabulary size)
//   NNZ        (number of (doc, word) pairs)
//   docID wordID count        (1-based ids, NNZ lines)
//
// ReadUciBagOfWords expands counts into tokens so real datasets drop into
// the trainer unchanged; WriteUciBagOfWords round-trips synthetic corpora
// for interchange and tests.
#pragma once

#include <iosfwd>
#include <string>

#include "corpus/corpus.hpp"

namespace culda::corpus {

/// Parses a UCI bag-of-words stream. Throws culda::Error on malformed input
/// (non-monotonic doc ids are accepted; ids out of range are not).
Corpus ReadUciBagOfWords(std::istream& in);

/// Convenience overload opening `path`.
Corpus ReadUciBagOfWordsFile(const std::string& path);

/// Writes `corpus` in UCI bag-of-words format (tokens of equal (doc, word)
/// are merged into counts, as the format requires).
void WriteUciBagOfWords(const Corpus& corpus, std::ostream& out);

}  // namespace culda::corpus
