// Plain-text → corpus pipeline.
//
// Takes raw documents (one per line, or any istream-per-doc source),
// tokenizes (lowercase, alphanumeric runs), filters stopwords and rare/short
// words, builds the Vocabulary, and emits a trainable Corpus. This is the
// preprocessing stage the paper assigns to the CPU side of the system
// (Section 3.2: "The CPUs are responsible for data preprocessing").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "corpus/corpus.hpp"
#include "corpus/vocabulary.hpp"

namespace culda::corpus {

struct TextPipelineOptions {
  /// Words shorter than this are dropped.
  uint32_t min_word_length = 2;
  /// Words occurring fewer than this many times corpus-wide are dropped
  /// (and their tokens removed). The UCI dumps are pruned the same way.
  uint32_t min_word_count = 1;
  /// Lowercase all tokens before lookup.
  bool lowercase = true;
  /// Words to drop entirely (compared after lowercasing if enabled).
  std::unordered_set<std::string> stopwords;

  /// A small default English stopword list (articles, pronouns,
  /// prepositions — the high-frequency glue the UCI dumps also exclude).
  static std::unordered_set<std::string> DefaultEnglishStopwords();
};

class TextPipeline {
 public:
  explicit TextPipeline(TextPipelineOptions options = {});

  /// Tokenizes and adds one document. Empty documents are kept (they simply
  /// have no tokens) so external document ids stay aligned.
  void AddDocument(std::string_view text);

  /// Adds one document per line of `in`; returns the number added.
  size_t AddDocumentsFromStream(std::istream& in);

  size_t num_documents() const { return docs_.size(); }

  /// Applies min_word_count pruning and produces the corpus + vocabulary.
  /// The pipeline can keep accepting documents afterwards; each Build sees
  /// everything added so far.
  struct Result {
    Corpus corpus;
    Vocabulary vocabulary;
    uint64_t dropped_tokens = 0;  ///< removed by pruning/stopwords/length
  };
  Result Build() const;

  /// Tokenization used by the pipeline, exposed for reuse: lowercased
  /// alphanumeric runs (configurable via options).
  static std::vector<std::string> Tokenize(std::string_view text,
                                           const TextPipelineOptions& options);

 private:
  TextPipelineOptions options_;
  std::vector<std::vector<std::string>> docs_;  ///< tokenized documents
  uint64_t dropped_early_ = 0;  ///< stopword/length drops at add time
};

}  // namespace culda::corpus
