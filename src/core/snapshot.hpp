// Immutable, refcounted model snapshots — the shared hand-off object
// between training and serving.
//
// The paper trains; a production system *serves* while it trains. The
// serving discipline (after Yu et al.'s asynchronous topic-modeling
// argument, PAPERS.md) is that readers must never block on a model
// update: training publishes each new model as an immutable snapshot, and
// inference readers pin whichever snapshot was current when their batch
// started. WarpLDA-style frozen-φ serving makes this cheap — a snapshot
// is just the gathered model plus the serving engine's precomputed caches,
// and nothing in it ever mutates after construction.
//
// Three layers hand off the same object:
//
//   CuldaTrainer  --SnapshotFromTrainer()-->  ModelSnapshot
//   OnlineTrainer --Snapshot()------------->  ModelSnapshot (cached, new
//                                             generation after Absorb())
//   ModelSnapshot::FromModel(...)            (e.g. LoadModelFromFile)
//
// and `SnapshotSlot` is the RCU-style publication point: `Publish` swaps
// one refcounted pointer, `Acquire` copies it. A reader holding a
// SnapshotPtr keeps that generation alive for as long as its batch runs;
// the swapped-out generation is destroyed when the last in-flight reader
// drops it. No reader ever waits on a writer for longer than a refcount
// operation — never across inference.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/config.hpp"
#include "core/inference.hpp"
#include "core/model.hpp"

namespace culda::core {

class CuldaTrainer;

/// One published model generation: the gathered model, the config it was
/// trained under, and a fully built serving engine over it. Immutable —
/// every member is const after construction, so any number of threads may
/// serve from one snapshot concurrently (InferenceEngine has no mutable
/// state; its per-call scratch lives on the caller's stack).
class ModelSnapshot {
 public:
  /// Heap-only factory: the engine holds pointers into `model`, so a
  /// snapshot must never move after construction.
  static std::shared_ptr<const ModelSnapshot> FromModel(
      GatheredModel model, CuldaConfig cfg, InferenceOptions options = {},
      uint64_t generation = 1);

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  uint64_t generation() const { return generation_; }
  const CuldaConfig& config() const { return cfg_; }
  const GatheredModel& model() const { return model_; }
  const InferenceEngine& engine() const { return engine_; }

 private:
  ModelSnapshot(GatheredModel model, CuldaConfig cfg,
                InferenceOptions options, uint64_t generation);

  uint64_t generation_;
  CuldaConfig cfg_;
  GatheredModel model_;
  InferenceEngine engine_;  ///< declared after model_: built from, and
                            ///< destroyed before, the model it points into
};

using SnapshotPtr = std::shared_ptr<const ModelSnapshot>;

/// Gathers the trainer's current model into a fresh snapshot. The trainer
/// is read once (Gather copies); the snapshot shares nothing with it and
/// stays valid after the trainer moves on or dies.
SnapshotPtr SnapshotFromTrainer(const CuldaTrainer& trainer,
                                InferenceOptions options = {},
                                uint64_t generation = 1);

/// RCU-style publication slot. Writers `Publish` a new snapshot by
/// swapping one refcounted pointer; readers `Acquire` the current one and
/// keep it alive for the duration of their batch. The slot itself is a
/// mutex-guarded pointer copy — the critical section is a single refcount
/// operation, never held across inference or I/O — so a publish during an
/// in-flight batch never waits for the batch, and the swapped-out
/// generation retires when its last reader finishes.
///
/// (std::atomic<shared_ptr> would make the slot fully lock-free, but
/// libstdc++'s _Sp_atomic unlocks its internal spinlock with a relaxed RMW
/// after a plain read of the pointer field, which ThreadSanitizer flags on
/// every Acquire/Publish pair; the serving tier's TSan-clean guarantee is
/// worth more than shaving a refcount-length critical section.)
class SnapshotSlot {
 public:
  SnapshotSlot() = default;
  explicit SnapshotSlot(SnapshotPtr initial) : slot_(std::move(initial)) {}

  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  /// The current snapshot (may be null before the first Publish). Safe to
  /// call from any thread at any time.
  SnapshotPtr Acquire() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return slot_;
  }

  /// Installs `next` and returns the previous snapshot (which the caller
  /// may drop — in-flight readers keep it alive regardless).
  SnapshotPtr Publish(SnapshotPtr next) {
    std::lock_guard<std::mutex> lock(mutex_);
    slot_.swap(next);
    return next;
  }

 private:
  mutable std::mutex mutex_;
  SnapshotPtr slot_;
};

}  // namespace culda::core
