#include "core/kernels.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

#include "core/index_tree.hpp"
#include "core/sampler/alias_table.hpp"
#include "util/philox.hpp"

namespace culda::core {

namespace {

// Per-kernel achievable fractions of streaming DRAM bandwidth (see
// LaunchConfig::mem_derate). Calibrated once against Table 4's measured
// throughputs; the cross-platform and cross-algorithm *ratios* do not depend
// on them.
constexpr double kSamplingMemDerate = 0.45;  // divergent, dependent loads
constexpr double kUpdateMemDerate = 0.80;    // scattered atomics, some reuse
constexpr double kStreamMemDerate = 1.0;     // pure streaming kernels

/// Scratch reused across blocks executed by the same worker thread; avoids
/// per-block heap churn on the hot path. (With a thread pool each worker has
/// its own copy, so no synchronization is needed.)
struct SamplerScratch {
  std::vector<float> pstar;
  std::vector<float> p2_tree;
  std::vector<float> p2_vals;
  std::vector<float> p1_vals;
  std::vector<float> p1_spill;
};
thread_local SamplerScratch tl_scratch;

/// Scratch for the host-side θ rebuild in RunUpdateThetaKernel. `dense` is
/// kept all-zero between documents (and between kernel calls) by resetting
/// only the touched entries, so rebuild cost scales with the chunk's tokens
/// and distinct topics, never with K.
struct UpdateThetaScratch {
  std::vector<int32_t> dense;     ///< K slots, all zero at rest
  std::vector<uint16_t> touched;  ///< topics hit by the current document
  std::vector<uint16_t> idx;
  std::vector<int32_t> val;
};
thread_local UpdateThetaScratch tl_theta_scratch;

/// Tree storage bound either to the block's shared arena or, when the arena
/// is exhausted (large K / long rows), to heap scratch billed as global
/// traffic — the simulator's equivalent of spilling out of shared memory.
struct TreePlacement {
  std::span<float> storage;
  bool in_shared = false;
};

TreePlacement PlaceTree(gpusim::BlockContext& ctx, std::vector<float>& spill,
                        size_t slots, std::span<float> shared_arena) {
  if (shared_arena.size() >= slots) {
    return {shared_arena.subspan(0, slots), true};
  }
  if (spill.size() < slots) spill.resize(slots);
  (void)ctx;
  return {std::span<float>(spill.data(), slots), false};
}

/// Per-worker scratch for the alias/MH sampling kernel: the per-block word
/// alias over p*(k) and its build workspace.
struct MhSamplerScratch {
  std::vector<float> pstar;
  std::vector<float> word_prob;
  std::vector<uint16_t> word_alias;
  AliasBuildScratch build;
};
thread_local MhSamplerScratch tl_mh_scratch;

/// Stale θ̃_d count of topic k, by binary search of the sorted CSR row.
inline int32_t ThetaAt(std::span<const uint16_t> idx,
                       std::span<const int32_t> val, uint32_t k) {
  const auto it = std::lower_bound(idx.begin(), idx.end(),
                                   static_cast<uint16_t>(k));
  if (it == idx.end() || *it != k) return 0;
  return val[static_cast<size_t>(it - idx.begin())];
}

/// The kAliasMH sampling kernel (docs/samplers.md). Same launch geometry,
/// RNG keying, and billed-step attribution as the exact kernel; per token it
/// runs `mh_cycles` doc/word proposal pairs against the stale counts instead
/// of the S/Q tree draw. Both proposal families read only iteration-start
/// state (θ̃ rows, φ̃ columns, ñ_k), so assignments are bit-deterministic
/// under any chunk schedule, worker count, or GPU count — the same
/// partition-invariance contract the exact kernel gets from its
/// (seed, iteration, global token) stream keying.
gpusim::KernelRecord RunMhSamplingKernel(gpusim::Device& device,
                                         const CuldaConfig& cfg,
                                         ChunkState& chunk,
                                         const PhiReplica& replica,
                                         uint32_t iteration,
                                         gpusim::Stream* stream,
                                         SamplingStepCounters* steps,
                                         uint32_t mh_cycles) {
  const uint32_t K = cfg.num_topics;
  const uint32_t V = replica.vocab_size;
  const float beta = static_cast<float>(cfg.beta);
  const float beta_v = beta * static_cast<float>(V);
  const double alpha_sum = cfg.AlphaSum();
  const bool asym = !cfg.asymmetric_alpha.empty();
  const uint64_t phi_b = cfg.phi_count_bytes();
  const uint64_t idx_b = cfg.theta_index_bytes();
  CULDA_CHECK_MSG(mh_cycles >= 1,
                  "kAliasMH needs at least one MH cycle per token");

  if (chunk.work.empty()) {
    gpusim::KernelRecord rec;
    rec.name = "sampling";
    return rec;
  }

  // ---- Host-side pre-launch: per-document alias tables over the stale θ̃
  // rows, packed flat in the θ CSR layout. Row content depends only on the
  // document's own assignments — never on the chunking — which is what makes
  // the doc proposals partition-invariant. Rebuilt every iteration from the
  // fresh θ (the per-sweep stale-table refresh); billed below in block 0.
  const uint64_t num_docs = chunk.num_docs();
  std::vector<uint64_t> doc_off(num_docs + 1, 0);
  for (uint64_t d = 0; d < num_docs; ++d) {
    doc_off[d + 1] = doc_off[d] + chunk.theta.RowLength(d);
  }
  std::vector<float> doc_prob(doc_off[num_docs]);
  std::vector<uint16_t> doc_alias(doc_off[num_docs]);
  std::vector<double> doc_len(num_docs, 0.0);
  {
    AliasBuildScratch build;
    std::vector<float> weights;
    for (uint64_t d = 0; d < num_docs; ++d) {
      const auto val = chunk.theta.RowValues(d);
      if (val.empty()) continue;  // α branch covers empty rows
      weights.resize(val.size());
      for (size_t j = 0; j < val.size(); ++j) {
        weights[j] = static_cast<float>(val[j]);
      }
      doc_len[d] = BuildAliasInto(
          weights,
          std::span<float>(doc_prob.data() + doc_off[d], val.size()),
          std::span<uint16_t>(doc_alias.data() + doc_off[d], val.size()),
          build);
    }
  }

  // α-prior alias for the asymmetric doc-proposal branch (symmetric is a
  // uniform pick — a constant-weight alias adds nothing).
  AliasTable alpha_alias;
  if (asym) {
    std::vector<float> weights(K);
    for (uint32_t k = 0; k < K; ++k) {
      weights[k] = static_cast<float>(cfg.AlphaOf(k));
    }
    alpha_alias.Build(weights);
  }

  std::mutex steps_mutex;
  const gpusim::LaunchConfig lc{static_cast<uint32_t>(chunk.work.size()),
                                cfg.samplers_per_block * gpusim::kWarpSize,
                                kSamplingMemDerate};

  auto body = [&](gpusim::BlockContext& ctx) {
    const corpus::BlockWork& bw = chunk.work[ctx.block_id()];
    const uint32_t w = bw.word;
    MhSamplerScratch& scratch = tl_mh_scratch;
    SamplingStepCounters local;

    if (ctx.block_id() == 0) {
      // Bill the host-side doc-alias rebuild: read every θ̃ value, write
      // every (prob, alias) cell. Attributed to the doc-proposal step.
      local.sample_p1.global_read_bytes += doc_off[num_docs] * 4;
      local.sample_p1.global_write_bytes += doc_off[num_docs] * 6;
      local.sample_p1.flops += 3 * doc_off[num_docs];
    }

    // ---- p*(k) = (φ_kv + β) / (n_k + βV): same per-block column pass as
    // the exact kernel (and the same compute_q attribution)...
    if (scratch.pstar.size() < K) scratch.pstar.resize(K);
    std::span<float> pstar(scratch.pstar.data(), K);
    for (uint32_t k = 0; k < K; ++k) {
      pstar[k] = (static_cast<float>(replica.phi(k, w)) + beta) /
                 (static_cast<float>(replica.nk[k]) + beta_v);
    }
    local.compute_q.global_read_bytes += static_cast<uint64_t>(K) * phi_b;
    local.compute_q.l1_read_bytes += static_cast<uint64_t>(K) * 4;
    local.compute_q.flops += 2ull * K;

    // ...feeding the block's word-proposal alias over p* instead of the p2
    // index tree. The +β inside p* is the smoothing branch, so one table
    // covers the whole word conditional. Placed in shared memory when it
    // fits (alias cells are 6 bytes/topic vs the tree's 4·slots).
    if (scratch.word_prob.size() < K) scratch.word_prob.resize(K);
    if (scratch.word_alias.size() < K) scratch.word_alias.resize(K);
    std::span<float> wprob(scratch.word_prob.data(), K);
    std::span<uint16_t> walias(scratch.word_alias.data(), K);
    const double word_total = BuildAliasInto(pstar, wprob, walias,
                                             scratch.build);
    (void)word_total;  // proposal draws never need the normalizer
    const uint64_t alias_bytes = static_cast<uint64_t>(K) * 6;
    bool alias_in_shared = false;
    if (ctx.shared().capacity() - ctx.shared().used() >= alias_bytes) {
      (void)ctx.shared().Alloc<float>(K);
      (void)ctx.shared().Alloc<uint16_t>(K);
      alias_in_shared = true;
      local.sample_p2.shared_write_bytes += alias_bytes;
    } else {
      local.sample_p2.global_write_bytes += alias_bytes;
    }
    local.sample_p2.flops += 2ull * K;  // the O(K) small/large pairing

    for (uint64_t t = bw.token_begin; t < bw.token_end; ++t) {
      const uint32_t local_doc = chunk.layout.token_doc[t];
      ctx.ReadGlobal(8);  // token_doc + token_global (RNG key)

      const auto theta_idx = chunk.theta.RowIndices(local_doc);
      const auto theta_val = chunk.theta.RowValues(local_doc);
      const uint64_t kd = theta_idx.size();
      const uint64_t off = doc_off[local_doc];
      const std::span<const float> dprob(doc_prob.data() + off, kd);
      const std::span<const uint16_t> dalias(doc_alias.data() + off, kd);
      const double dlen = doc_len[local_doc];

      PhiloxStream rng(cfg.seed,
                       (static_cast<uint64_t>(iteration) << 40) ^
                           chunk.layout.token_global[t]);
      uint32_t cur = chunk.z[t];
      ctx.ReadGlobal(2);

      for (uint32_t cycle = 0; cycle < mh_cycles; ++cycle) {
        // Doc proposal q_d(k) ∝ θ̃_dk + α_k. The θ̃ branch reads one alias
        // cell + one row index; acceptance keeps only the word factor
        // p*(prop)/p*(cur) — the doc factor cancels against the proposal.
        {
          uint32_t prop;
          const double pick = rng.NextDouble() * (dlen + alpha_sum);
          if (pick < dlen) {
            const uint16_t j =
                SampleAlias(dprob, dalias,
                            rng.NextBelow(static_cast<uint32_t>(kd)),
                            rng.NextFloat());
            prop = theta_idx[j];
            local.sample_p1.global_read_bytes += 6 + idx_b;
          } else if (asym) {
            prop = alpha_alias.Sample(rng.NextBelow(K), rng.NextFloat());
            local.sample_p1.global_read_bytes += 6;
          } else {
            prop = rng.NextBelow(K);
          }
          const float coin = rng.NextFloat();
          ++local.mh_proposals;
          local.sample_p1.flops += 4;
          if (prop != cur && coin * pstar[cur] < pstar[prop]) {
            cur = prop;
            ++local.mh_accepts;
          }
        }
        // Word proposal q_w(k) ∝ p*(k); acceptance keeps only the doc
        // factor (θ̃ + α), read by binary search of the sorted stale row.
        {
          const uint32_t prop =
              SampleAlias(wprob, walias, rng.NextBelow(K), rng.NextFloat());
          if (alias_in_shared) {
            local.sample_p2.shared_read_bytes += 6;
          } else {
            local.sample_p2.global_read_bytes += 6;
          }
          const float coin = rng.NextFloat();
          ++local.mh_proposals;
          local.sample_p2.flops += 4;
          if (prop != cur) {
            const uint64_t probes =
                kd == 0 ? 1 : (64 - __builtin_clzll(kd)) + 1;
            if (cfg.l1_for_indices) {
              local.compute_s.l1_read_bytes += 2 * probes * idx_b;
            } else {
              local.compute_s.global_read_bytes += 2 * probes * idx_b;
            }
            local.compute_s.global_read_bytes += 2 * 4;
            const double num =
                static_cast<double>(ThetaAt(theta_idx, theta_val, prop)) +
                cfg.AlphaOf(prop);
            const double den =
                static_cast<double>(ThetaAt(theta_idx, theta_val, cur)) +
                cfg.AlphaOf(cur);
            if (coin * den < num) {
              cur = prop;
              ++local.mh_accepts;
            }
          }
        }
      }

      chunk.z[t] = static_cast<uint16_t>(cur);
      ctx.WriteGlobal(2);
      ++local.tokens;
    }

    // Merge the per-step tallies into the block's billed counters.
    for (const gpusim::KernelCounters* c :
         {&local.compute_s, &local.compute_q, &local.sample_p1,
          &local.sample_p2}) {
      ctx.counters().global_read_bytes += c->global_read_bytes;
      ctx.counters().l1_read_bytes += c->l1_read_bytes;
      ctx.counters().global_write_bytes += c->global_write_bytes;
      ctx.counters().shared_read_bytes += c->shared_read_bytes;
      ctx.counters().shared_write_bytes += c->shared_write_bytes;
      ctx.counters().flops += c->flops;
    }
    if (steps != nullptr) {
      std::lock_guard<std::mutex> lock(steps_mutex);
      *steps += local;
    }
  };

  return device.Launch("sampling", lc, body, stream);
}

}  // namespace

gpusim::KernelRecord RunSamplingKernel(
    gpusim::Device& device, const CuldaConfig& cfg, ChunkState& chunk,
    const PhiReplica& replica, uint32_t iteration, gpusim::Stream* stream,
    SamplingStepCounters* steps, TrainSampler sampler, uint32_t mh_cycles) {
  cfg.Validate();
  if (sampler == TrainSampler::kAliasMH) {
    return RunMhSamplingKernel(device, cfg, chunk, replica, iteration,
                               stream, steps, mh_cycles);
  }
  const uint32_t K = cfg.num_topics;
  const uint32_t V = replica.vocab_size;
  CULDA_CHECK(replica.num_topics == K);
  CULDA_CHECK(chunk.theta.cols() == K);
  const float alpha = static_cast<float>(cfg.EffectiveAlpha());
  const float beta = static_cast<float>(cfg.beta);
  const float beta_v = beta * static_cast<float>(V);
  const uint32_t samplers = cfg.samplers_per_block;
  const uint32_t fanout = cfg.tree_fanout;
  const uint64_t phi_b = cfg.phi_count_bytes();
  const uint64_t idx_b = cfg.theta_index_bytes();

  if (chunk.work.empty()) {
    gpusim::KernelRecord rec;
    rec.name = "sampling";
    return rec;
  }

  std::mutex steps_mutex;

  const gpusim::LaunchConfig lc{static_cast<uint32_t>(chunk.work.size()),
                                samplers * gpusim::kWarpSize,
                                kSamplingMemDerate};

  auto body = [&](gpusim::BlockContext& ctx) {
    const corpus::BlockWork& bw = chunk.work[ctx.block_id()];
    const uint32_t w = bw.word;
    SamplerScratch& scratch = tl_scratch;
    SamplingStepCounters local;

    // ---- p*(k) = (φ_kv + β) / (n_k + βV): the common sub-expression of
    // p1 and p2 (Eq. 8), computed once per block and cached in shared memory
    // when reuse_pstar is on.
    if (scratch.pstar.size() < K) scratch.pstar.resize(K);
    std::span<float> pstar(scratch.pstar.data(), K);
    {
      for (uint32_t k = 0; k < K; ++k) {
        pstar[k] = (static_cast<float>(replica.phi(k, w)) + beta) /
                   (static_cast<float>(replica.nk[k]) + beta_v);
      }
      // One φ column + n_k; the column is a strided walk over DRAM, n_k is
      // small and hot so it hits L1.
      local.compute_q.global_read_bytes += static_cast<uint64_t>(K) * phi_b;
      local.compute_q.l1_read_bytes += static_cast<uint64_t>(K) * 4;
      local.compute_q.flops += 2ull * K;
      if (cfg.reuse_pstar) {
        // Cached in shared memory; subsequent uses are shared reads.
        (void)ctx.shared().Alloc<float>(K);
        ctx.WriteShared(static_cast<uint64_t>(K) * 4);
      }
    }

    // ---- Q and the p2 index tree, shared by all samplers of the block
    // when share_p2_tree is on; otherwise every token pays the rebuild.
    const size_t p2_slots = IndexTreeView::StorageSlots(K, fanout);
    std::span<float> p2_arena;
    bool p2_in_shared = false;
    if (cfg.share_p2_tree &&
        ctx.shared().capacity() - ctx.shared().used() >= p2_slots * 4) {
      p2_arena = ctx.shared().Alloc<float>(p2_slots);
      p2_in_shared = true;
    } else {
      if (scratch.p2_tree.size() < p2_slots) scratch.p2_tree.resize(p2_slots);
      p2_arena = std::span<float>(scratch.p2_tree.data(), p2_slots);
    }
    IndexTreeView p2_tree(p2_arena, K, fanout);
    float q_mass = 0;
    {
      // p2(k) = α_k · p*(k) (α_k constant under the symmetric default).
      std::vector<float>& p2_vals = scratch.p2_vals;
      if (p2_vals.size() < K) p2_vals.resize(K);
      if (cfg.asymmetric_alpha.empty()) {
        for (uint32_t k = 0; k < K; ++k) p2_vals[k] = alpha * pstar[k];
      } else {
        for (uint32_t k = 0; k < K; ++k) {
          p2_vals[k] =
              static_cast<float>(cfg.asymmetric_alpha[k]) * pstar[k];
        }
      }
      q_mass = p2_tree.Build(std::span<const float>(p2_vals.data(), K));

      // Scaling by α is part of computing Q; the prefix/tree construction
      // belongs to the p2 sampling step (the paper's Table 1 attribution).
      local.compute_q.flops += K;
      const uint64_t build_flops = 2ull * K;
      const uint64_t tree_bytes = p2_slots * 4;
      local.sample_p2.flops += build_flops;
      if (p2_in_shared) {
        local.sample_p2.shared_write_bytes += tree_bytes;
      } else {
        local.sample_p2.global_write_bytes += tree_bytes;
      }
    }

    // ---- Per-warp p1 arenas carved out of the remaining shared memory.
    const size_t shared_left =
        (ctx.shared().capacity() - ctx.shared().used()) / 4;
    const size_t warp_arena_slots = shared_left / samplers;
    std::span<float> warp_arena_all;
    if (warp_arena_slots > 0) {
      warp_arena_all = ctx.shared().Alloc<float>(warp_arena_slots * samplers);
    }

    // ---- The samplers. One warp = one sampler; tokens are strided across
    // the block's samplers (Figure 6).
    for (uint32_t s = 0; s < samplers; ++s) {
      std::span<float> warp_arena =
          warp_arena_slots > 0
              ? warp_arena_all.subspan(s * warp_arena_slots, warp_arena_slots)
              : std::span<float>{};
      for (uint64_t t = bw.token_begin + s; t < bw.token_end; t += samplers) {
        const uint32_t local_doc = chunk.layout.token_doc[t];
        ctx.ReadGlobal(8);  // token_doc + token_global (RNG key)

        const auto theta_idx = chunk.theta.RowIndices(local_doc);
        const auto theta_val = chunk.theta.RowValues(local_doc);
        const uint64_t kd = theta_idx.size();
        CULDA_DCHECK(kd > 0);

        // θ_d row: indices via L1 (Section 6.1.2), values from DRAM.
        if (cfg.l1_for_indices) {
          local.compute_s.l1_read_bytes += kd * idx_b;
        } else {
          local.compute_s.global_read_bytes += kd * idx_b;
        }
        local.compute_s.global_read_bytes += kd * 4;

        // p1 values and S = Σ p1 (the sparse bucket mass).
        std::vector<float>& p1_vals = scratch.p1_vals;
        if (p1_vals.size() < kd) p1_vals.resize(kd);
        float s_mass = 0;
        for (uint64_t j = 0; j < kd; ++j) {
          const float p = static_cast<float>(theta_val[j]) *
                          pstar[theta_idx[j]];
          p1_vals[j] = p;
          s_mass += p;
        }
        local.compute_s.flops += 2 * kd;
        if (cfg.reuse_pstar) {
          local.compute_s.shared_read_bytes += kd * 4;
        } else {
          // p*(k) recomputed from φ/n_k for every non-zero.
          local.compute_s.global_read_bytes += kd * phi_b;
          local.compute_s.l1_read_bytes += kd * 4;
          local.compute_s.flops += 2 * kd;
        }
        if (!cfg.share_p2_tree) {
          // Without block-level sharing each token pays the p2 work.
          local.compute_q.global_read_bytes += static_cast<uint64_t>(K) *
                                               phi_b;
          local.compute_q.global_read_bytes += static_cast<uint64_t>(K) * 4;
          local.compute_q.flops += 3ull * K;
          local.sample_p2.flops += 2ull * K;
          local.sample_p2.global_write_bytes += p2_slots * 4;
        }

        // Private p1 index tree (Figure 6), spilling past shared capacity.
        const size_t p1_slots = IndexTreeView::StorageSlots(kd, fanout);
        const TreePlacement p1_place = PlaceTree(
            ctx, scratch.p1_spill, p1_slots,
            cfg.use_shared_trees ? warp_arena : std::span<float>{});
        IndexTreeView p1_tree(p1_place.storage, kd, fanout);
        p1_tree.Build(std::span<const float>(p1_vals.data(), kd));
        local.sample_p1.flops += kd;
        if (p1_place.in_shared) {
          local.sample_p1.shared_write_bytes += p1_slots * 4;
        } else {
          local.sample_p1.global_write_bytes += p1_slots * 4;
          ++local.p1_tree_spills;
        }

        // One uniform draw decides the bucket and is reused inside it
        // (u | u < S is U(0, S)). The stream is keyed by the corpus-global
        // token id, so draws are independent of the partition and schedule.
        const uint64_t global_token = chunk.layout.token_global[t];
        PhiloxStream rng(cfg.seed,
                         (static_cast<uint64_t>(iteration) << 40) ^
                             global_token);
        const float total = s_mass + q_mass;
        const float u = rng.NextFloat() * total;
        local.compute_s.flops += 2;

        uint32_t new_topic;
        uint64_t inspected = 0;
        if (u < s_mass) {
          const size_t j = p1_tree.Search(u, &inspected);
          new_topic = theta_idx[j];
          local.sample_p1.flops += inspected;
          if (p1_place.in_shared) {
            local.sample_p1.shared_read_bytes += inspected * 4;
          } else {
            local.sample_p1.global_read_bytes += inspected * 4;
          }
          ++local.p1_branches;
        } else {
          const float u2 = std::min(u - s_mass, q_mass);
          const size_t k = p2_tree.Search(u2, &inspected);
          new_topic = static_cast<uint32_t>(k);
          local.sample_p2.flops += inspected;
          if (p2_in_shared) {
            local.sample_p2.shared_read_bytes += inspected * 4;
          } else {
            local.sample_p2.global_read_bytes += inspected * 4;
          }
        }

        chunk.z[t] = static_cast<uint16_t>(new_topic);
        ctx.WriteGlobal(2);
        ++local.tokens;
      }
    }

    // Merge the per-step tallies into the block's billed counters.
    for (const gpusim::KernelCounters* c :
         {&local.compute_s, &local.compute_q, &local.sample_p1,
          &local.sample_p2}) {
      ctx.counters().global_read_bytes += c->global_read_bytes;
      ctx.counters().l1_read_bytes += c->l1_read_bytes;
      ctx.counters().global_write_bytes += c->global_write_bytes;
      ctx.counters().shared_read_bytes += c->shared_read_bytes;
      ctx.counters().shared_write_bytes += c->shared_write_bytes;
      ctx.counters().flops += c->flops;
    }
    if (steps != nullptr) {
      std::lock_guard<std::mutex> lock(steps_mutex);
      steps->compute_s += local.compute_s;
      steps->compute_q += local.compute_q;
      steps->sample_p1 += local.sample_p1;
      steps->sample_p2 += local.sample_p2;
      steps->tokens += local.tokens;
      steps->p1_branches += local.p1_branches;
      steps->p1_tree_spills += local.p1_tree_spills;
    }
  };

  return device.Launch("sampling", lc, body, stream);
}

gpusim::KernelRecord RunZeroPhiKernel(gpusim::Device& device,
                                      const CuldaConfig& cfg,
                                      PhiReplica& replica,
                                      gpusim::Stream* stream) {
  const uint64_t cells =
      static_cast<uint64_t>(replica.num_topics) * replica.vocab_size;
  const gpusim::LaunchConfig lc{
      static_cast<uint32_t>(std::max<uint64_t>(1, cells / (1 << 16))), 1024,
      kStreamMemDerate};
  auto body = [&](gpusim::BlockContext& ctx) {
    if (ctx.block_id() == 0) {
      replica.phi.Fill(0);
      std::fill(replica.nk.begin(), replica.nk.end(), 0);
    }
    // Billed evenly across blocks.
    ctx.WriteGlobal(cells * cfg.phi_count_bytes() / ctx.grid_dim());
  };
  return device.Launch("zero_phi", lc, body, stream);
}

gpusim::KernelRecord RunUpdatePhiKernel(gpusim::Device& device,
                                        const CuldaConfig& cfg,
                                        const ChunkState& chunk,
                                        PhiReplica& replica,
                                        gpusim::Stream* stream) {
  if (chunk.work.empty()) {
    gpusim::KernelRecord rec;
    rec.name = "update_phi";
    return rec;
  }
  const gpusim::LaunchConfig lc{static_cast<uint32_t>(chunk.work.size()),
                                cfg.samplers_per_block * gpusim::kWarpSize,
                                kUpdateMemDerate};
  auto body = [&](gpusim::BlockContext& ctx) {
    const corpus::BlockWork& bw = chunk.work[ctx.block_id()];
    const uint32_t w = bw.word;
    for (uint64_t t = bw.token_begin; t < bw.token_end; ++t) {
      const uint16_t k = chunk.z[t];
      ctx.ReadGlobal(2);  // z
      // Word-first order: all atomics of this block land in column w, which
      // is the data locality Section 6.2 relies on.
      const uint16_t prev =
          ctx.AtomicAdd(replica.phi(k, w), static_cast<uint16_t>(1));
      // Section 6.1.3's 16-bit counts are a claim, not a law of nature —
      // detect the corpus that breaks it instead of silently wrapping.
      CULDA_CHECK_MSG(prev != 0xFFFF,
                      "phi count overflowed 16 bits (word " << w
                          << ", topic " << k << ")");
      ctx.WriteGlobal(cfg.phi_count_bytes());
    }
  };
  return device.Launch("update_phi", lc, body, stream);
}

namespace {

/// Exact host-side θ rebuild from chunk.z (document order — the real
/// kernel's two-pass count/scan/fill produces exactly this matrix). Walks a
/// touched-topic list instead of scanning all K counters per document, so
/// its cost is O(tokens + Σ_d k_d log k_d), not O(docs · K). Shared by the
/// full and delta θ kernels, which differ only in billed traffic.
void RebuildThetaFromZ(ChunkState& chunk, uint32_t K) {
  const uint64_t num_docs = chunk.num_docs();
  ThetaMatrix fresh(num_docs, K);
  ThetaMatrix::RowBuilder builder(&fresh);
  UpdateThetaScratch& scratch = tl_theta_scratch;
  if (scratch.dense.size() < K) scratch.dense.assign(K, 0);
  for (uint64_t d = 0; d < num_docs; ++d) {
    scratch.touched.clear();
    scratch.idx.clear();
    scratch.val.clear();
    for (uint64_t i = chunk.layout.doc_map_offsets[d];
         i < chunk.layout.doc_map_offsets[d + 1]; ++i) {
      const uint16_t k = chunk.z[chunk.layout.doc_map[i]];
      if (scratch.dense[k]++ == 0) scratch.touched.push_back(k);
    }
    // CSR rows store topics in ascending order; the touched list arrives
    // in first-seen order, so sort it (k_d is small — θ is sparse).
    std::sort(scratch.touched.begin(), scratch.touched.end());
    for (const uint16_t k : scratch.touched) {
      scratch.idx.push_back(k);
      scratch.val.push_back(scratch.dense[k]);
      scratch.dense[k] = 0;
    }
    builder.AppendRow(d, scratch.idx, scratch.val);
  }
  builder.Finish();
  chunk.theta = std::move(fresh);
}

}  // namespace

gpusim::KernelRecord RunUpdateThetaKernel(gpusim::Device& device,
                                          const CuldaConfig& cfg,
                                          ChunkState& chunk,
                                          gpusim::Stream* stream) {
  const uint32_t K = cfg.num_topics;
  const uint64_t num_docs = chunk.num_docs();
  if (num_docs == 0) {
    gpusim::KernelRecord rec;
    rec.name = "update_theta";
    return rec;
  }

  // Functional rebuild first; the launch below then bills the traffic the
  // dense-scatter + compaction kernel would move, using the rebuilt matrix's
  // true nnz (the *billed* traffic models the dense zero-and-scan the real
  // kernel performs, even though the host rebuild is sparse).
  RebuildThetaFromZ(chunk, K);

  const uint32_t grid =
      static_cast<uint32_t>(std::min<uint64_t>(num_docs, 4096));
  const gpusim::LaunchConfig lc{grid, 1024, kUpdateMemDerate};
  const uint64_t total_tokens = chunk.num_tokens();
  const uint64_t total_nnz = chunk.theta.nnz();

  auto body = [&](gpusim::BlockContext& ctx) {
    // Billing: every document zeroes a dense K array, scatters its tokens
    // with atomics, then compacts the non-zeros (prefix sum + gather).
    // Uniform per-block split; totals are exact at the launch level.
    const uint64_t docs_here = num_docs / ctx.grid_dim() +
                               (ctx.block_id() < num_docs % ctx.grid_dim());
    const uint64_t tokens_here =
        total_tokens / ctx.grid_dim() +
        (ctx.block_id() < total_tokens % ctx.grid_dim());
    const uint64_t nnz_here = total_nnz / ctx.grid_dim() +
                              (ctx.block_id() < total_nnz % ctx.grid_dim());

    // Dense scatter: zero + atomic increments through the doc map.
    ctx.WriteGlobal(docs_here * K * 4);              // zero dense rows
    ctx.ReadGlobal(tokens_here * (4 + 2));           // doc_map + z
    ctx.counters().atomic_ops += tokens_here;
    ctx.WriteGlobal(tokens_here * 4);                // atomic result
    // Compaction: scan the dense rows, write CSR out.
    ctx.ReadGlobal(docs_here * K * 4);
    ctx.IntOps(docs_here * K);
    ctx.WriteGlobal(nnz_here * (cfg.theta_index_bytes() + 4));
  };
  return device.Launch("update_theta", lc, body, stream);
}

gpusim::KernelRecord RunUpdateThetaDeltaKernel(
    gpusim::Device& device, const CuldaConfig& cfg, ChunkState& chunk,
    uint64_t touched_tokens, gpusim::Stream* stream) {
  const uint32_t K = cfg.num_topics;
  if (chunk.num_docs() == 0 || touched_tokens == 0) {
    // Nothing resampled ⇒ z unchanged ⇒ θ is already consistent.
    gpusim::KernelRecord rec;
    rec.name = "update_theta_delta";
    return rec;
  }
  CULDA_CHECK(touched_tokens <= chunk.num_tokens());

  // Same exact result as the full kernel — θ is a pure function of z — but
  // billed as the incremental kernel: each touched token reads its old and
  // new assignment and applies a −1/+1 atomic pair to its document's θ row,
  // no dense zero-and-scan of untouched documents.
  RebuildThetaFromZ(chunk, K);

  const uint32_t grid = static_cast<uint32_t>(
      std::min<uint64_t>(std::max<uint64_t>(1, touched_tokens / 1024), 4096));
  const gpusim::LaunchConfig lc{grid, 1024, kUpdateMemDerate};
  auto body = [&](gpusim::BlockContext& ctx) {
    const uint64_t tokens_here =
        touched_tokens / ctx.grid_dim() +
        (ctx.block_id() < touched_tokens % ctx.grid_dim());
    // Per token: doc_map entry + old z + new z in, two atomic row updates
    // (decrement old topic, increment new topic) with their results out.
    ctx.ReadGlobal(tokens_here * (4 + 2 + 2));
    ctx.counters().atomic_ops += 2 * tokens_here;
    ctx.WriteGlobal(2 * tokens_here * 4);
    ctx.IntOps(tokens_here);
  };
  return device.Launch("update_theta_delta", lc, body, stream);
}

gpusim::KernelRecord RunComputeNkKernel(gpusim::Device& device,
                                        const CuldaConfig& cfg,
                                        PhiReplica& replica,
                                        gpusim::Stream* stream) {
  const uint32_t K = replica.num_topics;
  const gpusim::LaunchConfig lc{std::max(1u, K / 4), 128,
                                kStreamMemDerate};
  auto body = [&](gpusim::BlockContext& ctx) {
    if (ctx.block_id() == 0) replica.RecomputeTotals();
    const uint64_t rows_here = K / ctx.grid_dim() +
                               (ctx.block_id() < K % ctx.grid_dim());
    ctx.ReadGlobal(rows_here * replica.vocab_size * cfg.phi_count_bytes());
    ctx.Flops(rows_here * replica.vocab_size);
    ctx.WriteGlobal(rows_here * 4);
  };
  return device.Launch("compute_nk", lc, body, stream);
}

}  // namespace culda::core
