#include "core/sampler/sampler.hpp"

#include "util/check.hpp"

namespace culda::core {

std::string_view TrainSamplerName(TrainSampler sampler) {
  switch (sampler) {
    case TrainSampler::kTree:
      return "tree";
    case TrainSampler::kAliasMH:
      return "alias-mh";
  }
  return "?";
}

std::string_view InferSamplerName(InferSampler sampler) {
  switch (sampler) {
    case InferSampler::kSparseBucket:
      return "sparse";
    case InferSampler::kDenseReference:
      return "dense";
    case InferSampler::kAliasMH:
      return "alias-mh";
  }
  return "?";
}

TrainSampler ParseTrainSampler(std::string_view name) {
  if (name == "tree") return TrainSampler::kTree;
  if (name == "alias-mh") return TrainSampler::kAliasMH;
  throw Error("--sampler must be one of: tree (exact index-tree kernel), "
              "alias-mh (O(1) Metropolis-Hastings); got '" +
              std::string(name) + "'");
}

InferSampler ParseInferSampler(std::string_view name) {
  if (name == "sparse") return InferSampler::kSparseBucket;
  if (name == "dense") return InferSampler::kDenseReference;
  if (name == "alias-mh") return InferSampler::kAliasMH;
  throw Error("--sampler must be one of: sparse (exact O(nnz) bucket), dense "
              "(exact O(K) reference), alias-mh (O(1) Metropolis-Hastings); "
              "got '" +
              std::string(name) + "'");
}

}  // namespace culda::core
