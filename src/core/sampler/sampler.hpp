// Sampler-tier selection (docs/samplers.md).
//
// The repo ships two trainer samplers and three serving samplers:
//
//   trainer  tree      — the paper's exact sparsity-aware S/Q bucket kernel
//                        (Algorithm 2, index trees); the default.
//            alias-mh  — WarpLDA-class O(1) Metropolis–Hastings over the
//                        same stale (iteration t−1) model the tree kernel
//                        reads: per-word alias proposals + per-doc alias
//                        proposals, accepted against the exact stale
//                        conditional.
//   serving  sparse    — O(nnz(θ_d)) exact bucket sampler (default)
//            dense     — O(K) exact reference, bit-identical to sparse
//            alias-mh  — O(1) MH against the frozen φ (exact proposals, no
//                        staleness), statistically certified.
//
// This header owns the trainer-side enum and the strict CLI parsing both
// tools share: unknown values produce a descriptive error naming every
// accepted spelling (the PR 5 CLI-hardening contract).
#pragma once

#include <string>
#include <string_view>

#include "core/inference.hpp"

namespace culda::core {

/// Which sampling kernel CuldaTrainer runs (TrainerOptions::sampler).
enum class TrainSampler {
  kTree,     ///< exact S/Q bucket + index-tree kernel (the paper's)
  kAliasMH,  ///< stale alias-table Metropolis–Hastings kernel
};

/// Canonical CLI spelling of each mode.
std::string_view TrainSamplerName(TrainSampler sampler);
std::string_view InferSamplerName(InferSampler sampler);

/// Strict parsers: exact match on the canonical spellings, otherwise they
/// throw culda::Error naming the offending value and every accepted one.
TrainSampler ParseTrainSampler(std::string_view name);
InferSampler ParseInferSampler(std::string_view name);

}  // namespace culda::core
