// Walker alias table: O(n) build, O(1) multinomial draws.
//
// The production sampler-tier table (docs/samplers.md), lifted out of
// src/baselines/ where it served the WarpLDA-class MH baseline and the
// SaberLDA-class GPU baseline. Differences from the original baseline table:
//
//   * the total mass accumulates in double. The baseline accumulated in
//     float, which silently loses the tail once a dominant weight absorbs
//     the increments (2^24 + 1 == 2^24 in float) — over the permitted 65536
//     weights that skews every scaled probability. Pinned by the
//     AliasTable.PrecisionUnderAdversarialMagnitudeSpread regression test.
//   * the scaled residuals used by the small/large pairing are double too,
//     so the per-cell probabilities are exact to float rounding rather than
//     compounding float error across pairings.
//   * build buffers are reusable (AliasBuildScratch) so per-sweep stale
//     refreshes over every word allocate nothing after warm-up.
//   * a flat-storage build variant writes into caller-provided spans, which
//     is how the serving engine packs one table per φ column into two flat
//     arrays aligned with its CSC transpose.
//
// Stale-table sampling with an MH correction — or refresh-per-word without
// one — are the standard LightLDA/WarpLDA/SaberLDA constructions; see
// docs/samplers.md for how the tier uses this table on both paths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace culda::core {

/// Reusable build workspace: the small/large worklists and the double
/// residuals. One per thread (or per engine) is enough; Build clears it.
struct AliasBuildScratch {
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  std::vector<double> scaled;
};

/// Builds an alias table over `w` into flat storage: `prob` and `alias` must
/// have exactly w.size() entries. All weights non-negative, at least one
/// positive (checked). Returns the exact double total mass.
///
/// The draw rule is SampleAlias below; cell i covers weight i with
/// probability prob[i] and its alias otherwise, so the implied per-index
/// probability is (prob[i] + Σ_{j: alias[j]==i} (1 − prob[j])) / n = w_i/Σw
/// up to float rounding of the individual cells.
inline double BuildAliasInto(std::span<const float> w, std::span<float> prob,
                             std::span<uint16_t> alias,
                             AliasBuildScratch& scratch) {
  const size_t n = w.size();
  CULDA_CHECK(n >= 1 && n <= 0x10000);
  CULDA_CHECK(prob.size() == n && alias.size() == n);

  double total = 0;
  for (const float x : w) total += x;
  CULDA_CHECK_MSG(total > 0, "alias table over all-zero weights");

  scratch.small.clear();
  scratch.large.clear();
  scratch.scaled.resize(n);
  const double scale = static_cast<double>(n) / total;
  for (size_t i = 0; i < n; ++i) {
    scratch.scaled[i] = static_cast<double>(w[i]) * scale;
    (scratch.scaled[i] < 1.0 ? scratch.small : scratch.large)
        .push_back(static_cast<uint32_t>(i));
    alias[i] = static_cast<uint16_t>(i);
  }
  while (!scratch.small.empty() && !scratch.large.empty()) {
    const uint32_t s = scratch.small.back();
    scratch.small.pop_back();
    const uint32_t l = scratch.large.back();
    prob[s] = static_cast<float>(scratch.scaled[s]);
    alias[s] = static_cast<uint16_t>(l);
    scratch.scaled[l] -= 1.0 - scratch.scaled[s];
    if (scratch.scaled[l] < 1.0) {
      scratch.large.pop_back();
      scratch.small.push_back(l);
    }
  }
  for (const uint32_t i : scratch.large) prob[i] = 1.0f;
  for (const uint32_t i : scratch.small) prob[i] = 1.0f;  // round-off leftovers
  return total;
}

/// Draws from flat alias storage with a random bucket choice `r1` and coin
/// `r2` ∈ [0, 1).
inline uint16_t SampleAlias(std::span<const float> prob,
                            std::span<const uint16_t> alias, uint64_t r1,
                            float r2) {
  const size_t i = r1 % prob.size();
  return r2 < prob[i] ? static_cast<uint16_t>(i) : alias[i];
}

/// Owning table. Keeps the build-time weights for MH proposal ratios
/// (q(k) ∝ weight[k]).
struct AliasTable {
  std::vector<float> prob;
  std::vector<uint16_t> alias;
  std::vector<float> weight;  ///< the build-time weights (for MH ratios)
  double total = 0;           ///< exact double Σ weight

  /// Builds the table over `w` (all non-negative, at least one positive),
  /// reusing `scratch` so per-sweep refreshes allocate nothing after the
  /// first call at each size.
  void Build(std::span<const float> w, AliasBuildScratch& scratch) {
    const size_t n = w.size();
    prob.resize(n);
    alias.resize(n);
    weight.assign(w.begin(), w.end());
    total = BuildAliasInto(w, prob, alias, scratch);
  }

  /// Convenience overload with a private scratch (allocates).
  void Build(std::span<const float> w) {
    AliasBuildScratch scratch;
    Build(w, scratch);
  }

  /// Draws with a random bucket choice `r1` and coin `r2` ∈ [0, 1).
  uint16_t Sample(uint64_t r1, float r2) const {
    return SampleAlias(prob, alias, r1, r2);
  }
};

}  // namespace culda::core
