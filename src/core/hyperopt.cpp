#include "core/hyperopt.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/math.hpp"

namespace culda::core {

namespace {

/// Shared fixed-point driver. `numerator(c)` and `denominator()` visit the
/// count structure for the current concentration value.
template <typename NumFn, typename DenFn>
HyperOptResult FixedPoint(double value, int max_iterations, double tolerance,
                          const NumFn& numerator, const DenFn& denominator) {
  CULDA_CHECK(value > 0);
  CULDA_CHECK(max_iterations >= 1);
  HyperOptResult result;
  result.value = value;
  for (int it = 0; it < max_iterations; ++it) {
    ++result.iterations;
    const double num = numerator(result.value);
    const double den = denominator(result.value);
    CULDA_CHECK_MSG(den > 0, "degenerate counts in hyper-parameter update");
    double next = result.value * num / den;
    // Guard the update: the fixed point is positive and finite; clamp away
    // from 0 so a sparse early model cannot collapse the prior entirely.
    next = std::max(next, 1e-8);
    const bool done = std::abs(next - result.value) <=
                      tolerance * std::max(1.0, result.value);
    result.value = next;
    if (done) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace

HyperOptResult OptimizeAlpha(const GatheredModel& model, double alpha,
                             int max_iterations, double tolerance) {
  const uint32_t k_topics = model.num_topics;
  return FixedPoint(
      alpha, max_iterations, tolerance,
      [&](double a) {
        // Σ_d Σ_k ψ(θ_dk + a) − ψ(a); zero entries contribute 0.
        double num = 0;
        const double psi_a = Digamma(a);
        for (size_t d = 0; d < model.theta.rows(); ++d) {
          for (const int32_t c : model.theta.RowValues(d)) {
            num += Digamma(c + a) - psi_a;
          }
        }
        return num;
      },
      [&](double a) {
        double den = 0;
        const double psi_ka = Digamma(k_topics * a);
        for (size_t d = 0; d < model.theta.rows(); ++d) {
          int64_t len = 0;
          for (const int32_t c : model.theta.RowValues(d)) len += c;
          den += Digamma(static_cast<double>(len) + k_topics * a) - psi_ka;
        }
        return k_topics * den;
      });
}

HyperOptResult OptimizeAsymmetricAlpha(const GatheredModel& model,
                                       std::vector<double>& alpha,
                                       int max_iterations, double tolerance) {
  const uint32_t k_topics = model.num_topics;
  CULDA_CHECK_MSG(alpha.size() == k_topics,
                  "alpha vector must have one entry per topic");
  for (const double a : alpha) CULDA_CHECK(a > 0);
  CULDA_CHECK(max_iterations >= 1);

  HyperOptResult result;
  std::vector<double> numer(k_topics);
  for (int it = 0; it < max_iterations; ++it) {
    ++result.iterations;
    double alpha_sum = 0;
    for (const double a : alpha) alpha_sum += a;

    // Shared denominator: Σ_d ψ(len_d + Σα) − ψ(Σα).
    double denom = 0;
    const double psi_sum = Digamma(alpha_sum);
    std::fill(numer.begin(), numer.end(), 0.0);
    std::vector<double> psi_alpha(k_topics);
    for (uint32_t k = 0; k < k_topics; ++k) psi_alpha[k] = Digamma(alpha[k]);

    for (size_t d = 0; d < model.theta.rows(); ++d) {
      const auto idx = model.theta.RowIndices(d);
      const auto val = model.theta.RowValues(d);
      int64_t len = 0;
      for (size_t i = 0; i < idx.size(); ++i) {
        numer[idx[i]] += Digamma(val[i] + alpha[idx[i]]) -
                         psi_alpha[idx[i]];
        len += val[i];
      }
      denom += Digamma(static_cast<double>(len) + alpha_sum) - psi_sum;
    }
    CULDA_CHECK_MSG(denom > 0, "degenerate counts in asymmetric update");

    double max_rel_change = 0;
    for (uint32_t k = 0; k < k_topics; ++k) {
      const double next = std::max(alpha[k] * numer[k] / denom, 1e-8);
      max_rel_change = std::max(
          max_rel_change,
          std::abs(next - alpha[k]) / std::max(1.0, alpha[k]));
      alpha[k] = next;
    }
    if (max_rel_change <= tolerance) {
      result.converged = true;
      break;
    }
  }
  result.value = 0;
  for (const double a : alpha) result.value += a;
  return result;
}

HyperOptResult OptimizeBeta(const GatheredModel& model, double beta,
                            int max_iterations, double tolerance) {
  const uint32_t v_words = model.vocab_size;
  return FixedPoint(
      beta, max_iterations, tolerance,
      [&](double b) {
        double num = 0;
        const double psi_b = Digamma(b);
        for (uint32_t k = 0; k < model.num_topics; ++k) {
          for (const uint16_t c : model.phi.Row(k)) {
            if (c != 0) num += Digamma(c + b) - psi_b;
          }
        }
        return num;
      },
      [&](double b) {
        double den = 0;
        const double psi_vb = Digamma(v_words * b);
        for (uint32_t k = 0; k < model.num_topics; ++k) {
          if (model.nk[k] > 0) {
            den += Digamma(static_cast<double>(model.nk[k]) + v_words * b) -
                   psi_vb;
          }
        }
        return v_words * den;
      });
}

}  // namespace culda::core
