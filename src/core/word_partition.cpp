#include "core/word_partition.hpp"

#include <algorithm>

#include "core/evaluator.hpp"
#include "util/philox.hpp"
#include "util/stopwatch.hpp"

namespace culda::core {

WordPartitionTrainer::WordPartitionTrainer(
    const corpus::Corpus& corpus, CuldaConfig cfg,
    std::vector<gpusim::DeviceSpec> gpus, gpusim::LinkSpec peer_link)
    : corpus_(&corpus),
      cfg_(std::move(cfg)),
      group_(std::move(gpus), std::move(peer_link)) {
  cfg_.Validate();
  CULDA_CHECK_MSG(corpus.num_tokens() > 0, "cannot train on an empty corpus");
  const uint32_t g_count = static_cast<uint32_t>(group_.size());

  ranges_ = corpus::PartitionWordsByTokens(corpus, g_count);
  for (uint32_t g = 0; g < g_count; ++g) {
    ChunkState chunk;
    chunk.layout = corpus::BuildWordRangeChunk(corpus, ranges_[g]);
    chunk.work =
        corpus::BuildBlockWorkList(chunk.layout, cfg_.max_tokens_per_block);
    chunk.z.resize(chunk.layout.num_tokens());
    // Identical keying to CuldaTrainer: the same token gets the same draw
    // under either partition policy.
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      PhiloxStream rng(cfg_.seed, chunk.layout.token_global[t]);
      chunk.z[t] = static_cast<uint16_t>(rng.NextBelow(cfg_.num_topics));
    }
    chunk.theta = ThetaMatrix(corpus.num_docs(), cfg_.num_topics);
    chunks_.push_back(std::move(chunk));
    phi_.emplace_back(cfg_.num_topics, corpus.vocab_size());
    accum_.emplace_back(cfg_.num_topics, corpus.vocab_size());
  }
  theta_global_ = ThetaMatrix(corpus.num_docs(), cfg_.num_topics);

  RebuildCountsFromZ();
  group_.ResetTime();
  for (size_t g = 0; g < group_.size(); ++g) {
    group_.device(g).ResetProfile();
  }
}

void WordPartitionTrainer::RebuildCountsFromZ() {
  const uint32_t g_count = static_cast<uint32_t>(group_.size());
  for (uint32_t g = 0; g < g_count; ++g) {
    gpusim::Device& dev = group_.device(g);
    RunZeroPhiKernel(dev, cfg_, phi_[g]);
    RunUpdatePhiKernel(dev, cfg_, chunks_[g], phi_[g]);
    RunUpdateThetaKernel(dev, cfg_, chunks_[g]);
  }
  SynchronizeTheta();
  SynchronizeNk();
  group_.Barrier();
}

double WordPartitionTrainer::SynchronizeTheta() {
  const uint32_t g_count = static_cast<uint32_t>(group_.size());
  const double start = group_.Now();
  last_theta_sync_bytes_ = 0;

  // Functional: dense-sum the partial replicas, compact to the global CSR.
  {
    sparse::DenseMatrix<int32_t> dense(corpus_->num_docs(),
                                       cfg_.num_topics);
    for (uint32_t g = 0; g < g_count; ++g) {
      const ThetaMatrix& partial = chunks_[g].theta;
      for (size_t d = 0; d < partial.rows(); ++d) {
        const auto idx = partial.RowIndices(d);
        const auto val = partial.RowValues(d);
        for (size_t i = 0; i < idx.size(); ++i) {
          dense(d, idx[i]) += val[i];
        }
      }
    }
    ThetaMatrix fresh(corpus_->num_docs(), cfg_.num_topics);
    ThetaMatrix::RowBuilder builder(&fresh);
    std::vector<uint16_t> idx;
    std::vector<int32_t> val;
    for (size_t d = 0; d < corpus_->num_docs(); ++d) {
      idx.clear();
      val.clear();
      for (uint32_t k = 0; k < cfg_.num_topics; ++k) {
        if (dense(d, k) != 0) {
          idx.push_back(static_cast<uint16_t>(k));
          val.push_back(dense(d, k));
        }
      }
      builder.AppendRow(d, idx, val);
    }
    builder.Finish();
    theta_global_ = std::move(fresh);
  }

  if (g_count > 1) {
    // Billing: pairwise reduce tree over the partial replicas (CSR bytes of
    // the sender), then broadcast of the global θ — the θ analogue of
    // Figure 4, which is exactly what partition-by-word forces.
    auto csr_bytes = [&](const ThetaMatrix& m) {
      return m.nnz() * (cfg_.theta_index_bytes() + sizeof(int32_t)) +
             (m.rows() + 1) * sizeof(uint64_t);
    };
    std::vector<uint64_t> replica_bytes(g_count);
    for (uint32_t g = 0; g < g_count; ++g) {
      replica_bytes[g] = csr_bytes(chunks_[g].theta);
    }
    for (size_t step = 1; step < g_count; step *= 2) {
      for (size_t i = 0; i + step < g_count; i += 2 * step) {
        group_.PeerTransfer(i + step, i, replica_bytes[i + step]);
        last_theta_sync_bytes_ += replica_bytes[i + step];
        // Merge kernel on the receiver (scatter-add of the CSR entries).
        const uint64_t cells = replica_bytes[i] + replica_bytes[i + step];
        group_.device(i).Launch(
            "theta_reduce_add",
            {static_cast<uint32_t>(std::max<uint64_t>(1, cells >> 16)),
             1024},
            [&](gpusim::BlockContext& ctx) {
              ctx.ReadGlobal(cells / ctx.grid_dim());
              ctx.WriteGlobal(cells / ctx.grid_dim());
            });
        replica_bytes[i] += replica_bytes[i + step];  // merged size grows
      }
    }
    const uint64_t global_bytes = csr_bytes(theta_global_);
    size_t top = 1;
    while (top * 2 < g_count) top *= 2;
    for (size_t step = top; step >= 1; step /= 2) {
      for (size_t i = 0; i + step < g_count; i += 2 * step) {
        group_.PeerTransfer(i, i + step, global_bytes);
        last_theta_sync_bytes_ += global_bytes;
      }
      if (step == 1) break;
    }
  }

  // Install the global θ on every GPU (the sampling input of iteration t+1).
  for (uint32_t g = 0; g < g_count; ++g) {
    chunks_[g].theta = theta_global_;
  }
  return group_.Now() - start;
}

void WordPartitionTrainer::SynchronizeNk() {
  const uint32_t g_count = static_cast<uint32_t>(group_.size());
  // Local column sums, then an all-reduce of K integers (tiny).
  std::vector<int32_t> nk(cfg_.num_topics, 0);
  for (uint32_t g = 0; g < g_count; ++g) {
    gpusim::Device& dev = group_.device(g);
    const auto& range = ranges_[g];
    dev.Launch("compute_nk_local",
               {std::max(1u, cfg_.num_topics / 4), 128},
               [&](gpusim::BlockContext& ctx) {
                 const uint64_t cols = range.word_end - range.word_begin;
                 ctx.ReadGlobal(cols * cfg_.num_topics *
                                cfg_.phi_count_bytes() / ctx.grid_dim());
                 ctx.WriteGlobal(cfg_.num_topics * 4 / ctx.grid_dim());
               });
    for (uint32_t k = 0; k < cfg_.num_topics; ++k) {
      int64_t sum = 0;
      const auto row = phi_[g].phi.Row(k);
      for (uint32_t v = range.word_begin; v < range.word_end; ++v) {
        sum += row[v];
      }
      nk[k] += static_cast<int32_t>(sum);
    }
  }
  if (g_count > 1) {
    for (size_t g = 1; g < g_count; ++g) {
      group_.PeerTransfer(g, 0, cfg_.num_topics * 4);
      group_.PeerTransfer(0, g, cfg_.num_topics * 4);
    }
  }
  for (uint32_t g = 0; g < g_count; ++g) {
    phi_[g].nk = nk;
  }
}

IterationStats WordPartitionTrainer::Step() {
  IterationStats stats;
  stats.iteration = iteration_;
  const double t0 = group_.Now();
  Stopwatch wall;
  const uint32_t g_count = static_cast<uint32_t>(group_.size());

  for (uint32_t g = 0; g < g_count; ++g) {
    gpusim::Device& dev = group_.device(g);
    ChunkState& chunk = chunks_[g];
    const auto sampling =
        RunSamplingKernel(dev, cfg_, chunk, phi_[g], iteration_ + 1);
    stats.sampling_s += sampling.time.total_s;
    // φ columns are exclusively owned: rebuild locally, no sync.
    stats.update_phi_s +=
        RunZeroPhiKernel(dev, cfg_, accum_[g]).time.total_s;
    stats.update_phi_s +=
        RunUpdatePhiKernel(dev, cfg_, chunk, accum_[g]).time.total_s;
    stats.update_theta_s +=
        RunUpdateThetaKernel(dev, cfg_, chunk).time.total_s;
  }
  std::swap(phi_, accum_);
  stats.sync_s += SynchronizeTheta();
  SynchronizeNk();
  group_.Barrier();

  stats.sim_seconds = group_.Now() - t0;
  stats.wall_seconds = wall.Seconds();
  stats.tokens_per_sec =
      static_cast<double>(corpus_->num_tokens()) / stats.sim_seconds;
  stats.theta_nnz = theta_global_.nnz();
  ++iteration_;
  return stats;
}

std::vector<IterationStats> WordPartitionTrainer::Train(uint32_t iterations) {
  std::vector<IterationStats> out;
  out.reserve(iterations);
  for (uint32_t i = 0; i < iterations; ++i) out.push_back(Step());
  return out;
}

GatheredModel WordPartitionTrainer::Gather() const {
  GatheredModel model;
  model.num_topics = cfg_.num_topics;
  model.vocab_size = corpus_->vocab_size();
  model.num_docs = corpus_->num_docs();
  model.theta = theta_global_;
  model.phi = PhiMatrix(cfg_.num_topics, corpus_->vocab_size());
  // Stitch the exclusive column ranges together.
  for (size_t g = 0; g < group_.size(); ++g) {
    const auto& range = ranges_[g];
    for (uint32_t k = 0; k < cfg_.num_topics; ++k) {
      const auto src = phi_[g].phi.Row(k);
      auto dst = model.phi.Row(k);
      for (uint32_t v = range.word_begin; v < range.word_end; ++v) {
        dst[v] = src[v];
      }
    }
  }
  model.nk = phi_[0].nk;
  return model;
}

double WordPartitionTrainer::LogLikelihoodPerToken() const {
  return core::LogLikelihoodPerToken(Gather(), cfg_);
}

}  // namespace culda::core
