#include "core/online.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace culda::core {

OnlineTrainer::OnlineTrainer(corpus::Corpus initial_corpus, CuldaConfig cfg,
                             TrainerOptions opts,
                             uint32_t initial_iterations)
    : corpus_(std::move(initial_corpus)),
      cfg_(std::move(cfg)),
      opts_(std::move(opts)) {
  cfg_.Validate();
  trainer_ = std::make_unique<CuldaTrainer>(corpus_, cfg_, opts_);
  trainer_->Train(initial_iterations);
}

SnapshotPtr OnlineTrainer::EnsureSnapshotLocked() {
  if (snapshot_ == nullptr) {
    CULDA_OBS_SPAN("online/serving_engine_build");
    CULDA_OBS_COUNT("online.engine_rebuilds", 1);
    InferenceOptions options;
    options.pool = opts_.pool;
    options.numa_replicate = opts_.numa_replicate;
    // The trainer's sampler tier carries over to serving: an alias/MH
    // trainer serves through the alias/MH fold-in (serving's own mh_cycles
    // default; its chain mixes over the fold-in sweeps).
    if (opts_.sampler == TrainSampler::kAliasMH) {
      options.sampler = InferSampler::kAliasMH;
    }
    snapshot_ = ModelSnapshot::FromModel(trainer_->Gather(), cfg_, options,
                                         next_generation_++);
  }
  return snapshot_;
}

SnapshotPtr OnlineTrainer::Snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  return EnsureSnapshotLocked();
}

InferenceResult OnlineTrainer::AddDocument(std::vector<uint32_t> words) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const uint32_t w : words) {
    CULDA_CHECK_MSG(w < corpus_.vocab_size(),
                    "online documents must use the trained vocabulary");
  }
  CULDA_OBS_COUNT("online.docs_added", 1);
  InferenceResult result = EnsureSnapshotLocked()->engine().InferDocument(
      words, /*iterations=*/20,
      /*seed=*/cfg_.seed ^ (pending_docs_.size() + 0x9E3779B9ull));
  pending_z_.push_back(result.assignments);
  pending_docs_.push_back(std::move(words));
  return result;
}

std::vector<InferenceResult> OnlineTrainer::AddDocuments(
    std::vector<std::vector<uint32_t>> docs) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& doc : docs) {
    for (const uint32_t w : doc) {
      CULDA_CHECK_MSG(w < corpus_.vocab_size(),
                      "online documents must use the trained vocabulary");
    }
  }
  CULDA_OBS_COUNT("online.docs_added", docs.size());
  // Same per-document seeds as sequential AddDocument calls would use, so
  // the batched fold-in is bit-identical to the one-at-a-time path.
  std::vector<uint64_t> seeds(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    seeds[i] = cfg_.seed ^ (pending_docs_.size() + i + 0x9E3779B9ull);
  }
  std::vector<InferenceResult> results =
      EnsureSnapshotLocked()->engine().InferBatch(docs, /*iterations=*/20,
                                                  seeds);
  for (size_t i = 0; i < docs.size(); ++i) {
    pending_z_.push_back(results[i].assignments);
    pending_docs_.push_back(std::move(docs[i]));
  }
  return results;
}

void OnlineTrainer::Absorb(uint32_t refresh_iterations) {
  std::lock_guard<std::mutex> lock(mutex_);
  CULDA_OBS_SPAN("online/absorb");
  CULDA_OBS_COUNT("online.absorbs", 1);
  // Refresh sweeps change φ: stop handing out the current generation.
  // Readers still holding it are unaffected (it is immutable and
  // refcounted); the next Snapshot()/fold-in builds the next generation.
  snapshot_.reset();
  if (pending_docs_.empty()) {
    trainer_->Train(refresh_iterations);
    return;
  }

  // Carry the current assignments, extend corpus and z with the pending
  // documents (fold-in topics as their starting state).
  std::vector<uint16_t> z = trainer_->ExportAssignments();
  std::vector<uint64_t> offsets(corpus_.doc_offsets().begin(),
                                corpus_.doc_offsets().end());
  std::vector<uint32_t> words(corpus_.words().begin(),
                              corpus_.words().end());
  for (size_t i = 0; i < pending_docs_.size(); ++i) {
    const auto& doc = pending_docs_[i];
    const auto& doc_z = pending_z_[i];
    CULDA_CHECK(doc.size() == doc_z.size());
    words.insert(words.end(), doc.begin(), doc.end());
    z.insert(z.end(), doc_z.begin(), doc_z.end());
    offsets.push_back(words.size());
  }
  corpus_ = corpus::Corpus(corpus_.vocab_size(), std::move(offsets),
                           std::move(words));
  pending_docs_.clear();
  pending_z_.clear();

  RebuildTrainer(std::move(z));
  trainer_->Train(refresh_iterations);
}

void OnlineTrainer::RebuildTrainer(std::vector<uint16_t> z_doc_major) {
  trainer_ = std::make_unique<CuldaTrainer>(corpus_, cfg_, opts_);
  trainer_->ImportAssignments(z_doc_major);
}

void OnlineTrainer::SaveCheckpoint(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CULDA_CHECK_MSG(pending_docs_.empty(),
                  pending_docs_.size()
                      << " pending documents would be lost by this "
                         "checkpoint; call Absorb() first");
  trainer_->SaveCheckpoint(out);
}

void OnlineTrainer::RestoreCheckpoint(std::istream& in) {
  std::lock_guard<std::mutex> lock(mutex_);
  CULDA_CHECK_MSG(pending_docs_.empty(),
                  pending_docs_.size()
                      << " pending documents would be orphaned by this "
                         "restore; call Absorb() first");
  trainer_->RestoreCheckpoint(in);
  snapshot_.reset();  // restored φ: next Snapshot() is a new generation
}

}  // namespace culda::core
