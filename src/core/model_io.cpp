#include "core/model_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/check.hpp"

namespace culda::core {

namespace {

constexpr char kMagic[8] = {'C', 'U', 'L', 'D', 'A', 'M', 'D', 'L'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void WriteSpan(std::ostream& out, std::span<const T> data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
}

template <typename T>
T ReadPod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  CULDA_CHECK_MSG(in.good(), "model file truncated");
  return v;
}

template <typename T>
std::vector<T> ReadVector(std::istream& in, size_t count) {
  std::vector<T> v(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  CULDA_CHECK_MSG(in.good(), "model file truncated");
  return v;
}

}  // namespace

void SaveModel(const GatheredModel& model, std::ostream& out) {
  model.theta.Validate();
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, model.num_topics);
  WritePod(out, model.vocab_size);
  WritePod(out, model.num_docs);

  WritePod(out, static_cast<uint64_t>(model.theta.nnz()));
  WriteSpan(out, model.theta.row_ptr());
  WriteSpan(out, model.theta.col_idx());
  WriteSpan(out, model.theta.values());
  WriteSpan(out, model.phi.flat());
  WriteSpan(out, std::span<const int32_t>(model.nk));
  CULDA_CHECK_MSG(out.good(), "failed writing model");
}

void SaveModelToFile(const GatheredModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  CULDA_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  SaveModel(model, out);
}

GatheredModel LoadModel(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  CULDA_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 8) == 0,
                  "not a CuLDA model file (bad magic)");
  const uint32_t version = ReadPod<uint32_t>(in);
  CULDA_CHECK_MSG(version == kVersion,
                  "unsupported model version " << version);

  GatheredModel model;
  model.num_topics = ReadPod<uint32_t>(in);
  model.vocab_size = ReadPod<uint32_t>(in);
  model.num_docs = ReadPod<uint64_t>(in);
  CULDA_CHECK_MSG(model.num_topics >= 1 && model.vocab_size >= 1,
                  "model header dimensions invalid");

  const uint64_t nnz = ReadPod<uint64_t>(in);
  auto row_ptr = ReadVector<uint64_t>(in, model.num_docs + 1);
  auto col = ReadVector<uint16_t>(in, nnz);
  auto val = ReadVector<int32_t>(in, nnz);

  model.theta = ThetaMatrix(model.num_docs, model.num_topics);
  ThetaMatrix::RowBuilder builder(&model.theta);
  for (uint64_t d = 0; d < model.num_docs; ++d) {
    CULDA_CHECK_MSG(row_ptr[d] <= row_ptr[d + 1] && row_ptr[d + 1] <= nnz,
                    "corrupt θ row pointers");
    builder.AppendRow(
        d,
        std::span<const uint16_t>(col.data() + row_ptr[d],
                                  row_ptr[d + 1] - row_ptr[d]),
        std::span<const int32_t>(val.data() + row_ptr[d],
                                 row_ptr[d + 1] - row_ptr[d]));
  }
  builder.Finish();
  CULDA_CHECK_MSG(row_ptr.back() == nnz, "corrupt θ row pointers");

  model.phi = PhiMatrix(model.num_topics, model.vocab_size);
  auto phi = ReadVector<uint16_t>(
      in, static_cast<size_t>(model.num_topics) * model.vocab_size);
  std::copy(phi.begin(), phi.end(), model.phi.flat().begin());
  model.nk = ReadVector<int32_t>(in, model.num_topics);

  model.theta.Validate();
  // φ / n_k consistency.
  for (uint32_t k = 0; k < model.num_topics; ++k) {
    int64_t sum = 0;
    for (const uint16_t c : model.phi.Row(k)) sum += c;
    CULDA_CHECK_MSG(sum == model.nk[k],
                    "corrupt model: n_k[" << k << "] mismatch");
  }
  return model;
}

GatheredModel LoadModelFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CULDA_CHECK_MSG(in.good(), "cannot open model file '" << path << "'");
  return LoadModel(in);
}

}  // namespace culda::core
