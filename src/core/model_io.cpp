#include "core/model_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/check.hpp"
#include "util/io.hpp"

namespace culda::core {

namespace {

constexpr char kMagic[8] = {'C', 'U', 'L', 'D', 'A', 'M', 'D', 'L'};
// v1 was the pre-hardening layout without the length/CRC frame; it cannot be
// validated against corruption, so it is rejected explicitly rather than
// parsed on faith.
constexpr uint32_t kVersion = 2;
// θ topic indices and z assignments are u16 (Section 6.1.3), so any header
// claiming more topics is corrupt by construction.
constexpr uint64_t kMaxTopics = 1ull << 16;

}  // namespace

void SaveModel(const GatheredModel& model, std::ostream& out) {
  model.theta.Validate();
  io::ContainerWriter w;
  w.WritePod(model.num_topics);
  w.WritePod(model.vocab_size);
  w.WritePod(model.num_docs);
  w.WritePod(static_cast<uint64_t>(model.theta.nnz()));
  w.WriteSpan(model.theta.row_ptr());
  w.WriteSpan(model.theta.col_idx());
  w.WriteSpan(model.theta.values());
  w.WriteSpan(model.phi.flat());
  w.WriteSpan(std::span<const int32_t>(model.nk));
  w.Finish(out, kMagic, kVersion);
  CULDA_CHECK_MSG(out.good(), "failed writing model");
}

void SaveModelToFile(const GatheredModel& model, const std::string& path) {
  io::AtomicWriteFile(path,
                      [&](std::ostream& out) { SaveModel(model, out); });
}

GatheredModel LoadModel(std::istream& in) {
  // ReadContainer verifies the version, declared length, and CRC32 before
  // any field is parsed, reading in bounded chunks — a hostile header cannot
  // OOM here, and the unframed v1 layout is rejected by its version.
  const std::string payload = io::ReadContainer(in, kMagic, kVersion, "model");
  io::ByteReader r(payload, "model");

  GatheredModel model;
  model.num_topics = r.ReadPod<uint32_t>();
  model.vocab_size = r.ReadPod<uint32_t>();
  model.num_docs = r.ReadPod<uint64_t>();
  CULDA_CHECK_MSG(model.num_topics >= 1 && model.num_topics <= kMaxTopics &&
                      model.vocab_size >= 1,
                  "model header dimensions invalid (K="
                      << model.num_topics << ", V=" << model.vocab_size
                      << ")");
  // Guard num_docs + 1 below against wrap; the row-pointer section itself is
  // then bounds-checked by ReadVector before allocating.
  CULDA_CHECK_MSG(model.num_docs <= r.remaining() / sizeof(uint64_t),
                  "model header declares " << model.num_docs
                                           << " documents, more than the "
                                              "payload can hold");

  const uint64_t nnz = r.ReadPod<uint64_t>();
  auto row_ptr = r.ReadVector<uint64_t>(model.num_docs + 1);
  auto col = r.ReadVector<uint16_t>(nnz);
  auto val = r.ReadVector<int32_t>(nnz);

  model.theta = ThetaMatrix(model.num_docs, model.num_topics);
  ThetaMatrix::RowBuilder builder(&model.theta);
  for (uint64_t d = 0; d < model.num_docs; ++d) {
    CULDA_CHECK_MSG(row_ptr[d] <= row_ptr[d + 1] && row_ptr[d + 1] <= nnz,
                    "corrupt θ row pointers");
    builder.AppendRow(
        d,
        std::span<const uint16_t>(col.data() + row_ptr[d],
                                  row_ptr[d + 1] - row_ptr[d]),
        std::span<const int32_t>(val.data() + row_ptr[d],
                                 row_ptr[d + 1] - row_ptr[d]));
  }
  builder.Finish();
  CULDA_CHECK_MSG(row_ptr.back() == nnz, "corrupt θ row pointers");

  model.phi = PhiMatrix(model.num_topics, model.vocab_size);
  // K ≤ 2^16 and V < 2^32, so the element count cannot overflow u64; the
  // byte bound is enforced by ReadVector before allocation.
  auto phi = r.ReadVector<uint16_t>(static_cast<uint64_t>(model.num_topics) *
                                    model.vocab_size);
  std::copy(phi.begin(), phi.end(), model.phi.flat().begin());
  model.nk = r.ReadVector<int32_t>(model.num_topics);
  r.ExpectEnd();

  model.theta.Validate();
  // φ / n_k consistency.
  for (uint32_t k = 0; k < model.num_topics; ++k) {
    int64_t sum = 0;
    for (const uint16_t c : model.phi.Row(k)) sum += c;
    CULDA_CHECK_MSG(sum == model.nk[k],
                    "corrupt model: n_k[" << k << "] mismatch");
  }
  return model;
}

GatheredModel LoadModelFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CULDA_CHECK_MSG(in.good(), "cannot open model file '" << path << "'");
  return LoadModel(in);
}

}  // namespace culda::core
