// F-ary index tree for multinomial sampling (Figure 5, Section 6.1.1).
//
// Sampling from a discrete distribution p[0..n) is transformed into a search
// problem: build the inclusive prefix sums of p, then find the minimal k
// with prefix[k] > u. CuLDA builds a 32-ary tree over the prefix sums — one
// warp inspects all 32 children of a node in lock-step — and keeps the tree
// in shared memory, so the two passes over p (mass computation and sampling)
// touch off-chip memory only once.
//
// Layout: the storage holds the leaf prefix array followed by the internal
// levels bottom-up; level i+1 stores the last prefix value of each group of
// `fanout` level-i entries. Search walks top-down, scanning at most `fanout`
// entries per level.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace culda::core {

class IndexTreeView {
 public:
  /// Number of float slots needed for a tree over `n` probabilities.
  static size_t StorageSlots(size_t n, uint32_t fanout) {
    CULDA_DCHECK(fanout >= 2);
    size_t slots = n;
    for (size_t level = n; level > fanout;) {
      level = (level + fanout - 1) / fanout;
      slots += level;
    }
    return slots;
  }

  IndexTreeView() = default;

  /// Binds the view to external storage (shared memory in kernels). The
  /// storage must have at least StorageSlots(n, fanout) floats.
  IndexTreeView(std::span<float> storage, size_t n, uint32_t fanout)
      : storage_(storage), n_(n), fanout_(fanout) {
    CULDA_CHECK(fanout >= 2);
    CULDA_CHECK_MSG(storage.size() >= StorageSlots(n, fanout),
                    "index-tree storage too small");
    size_t offset = 0, level = n;
    num_levels_ = 0;
    level_offsets_[num_levels_] = offset;
    level_sizes_[num_levels_] = level;
    ++num_levels_;
    while (level > fanout_) {
      offset += level;
      level = (level + fanout_ - 1) / fanout_;
      CULDA_CHECK_MSG(num_levels_ < kMaxLevels, "distribution too large");
      level_offsets_[num_levels_] = offset;
      level_sizes_[num_levels_] = level;
      ++num_levels_;
    }
  }

  size_t size() const { return n_; }
  size_t levels() const { return num_levels_; }

  /// Builds the tree from probabilities `p` (length n). Returns the total
  /// mass (the last prefix sum). Costs n adds for the leaves plus ~n/(F-1)
  /// adds for the internal levels.
  ///
  /// Contract: every p[i] must be finite and non-negative (checked
  /// per-element in debug builds; the final mass is checked in every
  /// build, so a NaN or net-negative input always fails loudly instead of
  /// producing a tree whose Search silently returns the last leaf). A
  /// legally-built tree may still have zero total mass (all-zero p);
  /// sampling from one is the caller's bug and is rejected by Search.
  float Build(std::span<const float> p) {
    CULDA_CHECK(p.size() == n_);
    if (n_ == 0) return 0.0f;
    float acc = 0;
    std::span<float> leaves = Level(0);
    for (size_t i = 0; i < n_; ++i) {
      CULDA_DCHECK(p[i] >= 0.0f);
      acc += p[i];
      leaves[i] = acc;
    }
    CULDA_CHECK_MSG(std::isfinite(acc) && acc >= 0.0f,
                    "index-tree mass must be finite and non-negative, got "
                        << acc
                        << " (NaN or negative probabilities in the input)");
    for (size_t l = 1; l < num_levels_; ++l) {
      std::span<const float> below = Level(l - 1);
      std::span<float> cur = Level(l);
      for (size_t i = 0; i < cur.size(); ++i) {
        const size_t last = std::min(below.size(), (i + 1) * fanout_) - 1;
        cur[i] = below[last];
      }
    }
    return acc;
  }

  float TotalMass() const {
    if (n_ == 0) return 0.0f;
    const auto top = Level(levels() - 1);
    return top[top.size() - 1];
  }

  /// Finds the minimal k with prefix[k] > u (clamped to n-1 for u at or
  /// beyond the total mass, absorbing float round-off). `comparisons`, if
  /// given, receives the number of entries inspected — the cost a warp pays.
  ///
  /// Contract: `u` must be finite and non-negative, and the tree must have
  /// positive total mass. Both are checked in every build: a NaN draw or a
  /// zero-mass tree previously fell through the round-off clamp and
  /// silently returned the last leaf — a sampling bug indistinguishable
  /// from a legitimate draw (see tests/test_index_tree.cpp edge cases).
  size_t Search(float u, uint64_t* comparisons = nullptr) const {
    CULDA_CHECK_MSG(n_ > 0, "cannot sample from an empty index tree");
    CULDA_CHECK_MSG(std::isfinite(u) && u >= 0.0f,
                    "index-tree search point must be finite and "
                    "non-negative, got "
                        << u);
    CULDA_CHECK_MSG(TotalMass() > 0.0f,
                    "cannot sample from an index tree with total mass "
                        << TotalMass()
                        << "; the distribution has no support");
    uint64_t inspected = 0;
    // Walk top-down. `lo` is the first leaf index of the current subtree.
    size_t group_begin = 0;  // index of the first entry of the group at the
                             // current level
    for (size_t l = levels(); l-- > 0;) {
      const std::span<const float> level = Level(l);
      const size_t group_end =
          std::min(level.size(), group_begin + fanout_);
      size_t chosen = group_end - 1;  // default to last (round-off guard)
      for (size_t i = group_begin; i < group_end; ++i) {
        ++inspected;
        if (level[i] > u) {
          chosen = i;
          break;
        }
      }
      if (l == 0) {
        if (comparisons != nullptr) *comparisons = inspected;
        return chosen;
      }
      group_begin = chosen * fanout_;
    }
    if (comparisons != nullptr) *comparisons = inspected;
    return n_ - 1;
  }

  /// Leaf prefix value at k (prefix[k]); used by tests.
  float PrefixAt(size_t k) const { return Level(0)[k]; }

 private:
  std::span<float> Level(size_t l) {
    return storage_.subspan(level_offsets_[l], level_sizes_[l]);
  }
  std::span<const float> Level(size_t l) const {
    return storage_.subspan(level_offsets_[l], level_sizes_[l]);
  }

  // Level 0 = leaves; the last level has <= fanout entries. 24 levels cover
  // n up to 2^24 even at fanout = 2 (the A1 ablation's degenerate case).
  static constexpr size_t kMaxLevels = 24;

  std::span<float> storage_;
  size_t n_ = 0;
  uint32_t fanout_ = 32;
  size_t num_levels_ = 0;
  size_t level_offsets_[kMaxLevels] = {};
  size_t level_sizes_[kMaxLevels] = {};
};

/// An IndexTreeView plus owned storage, for host-side use (tests, CPU
/// baselines). Kernels bind views over shared memory instead.
class IndexTree {
 public:
  IndexTree(size_t n, uint32_t fanout)
      : storage_(IndexTreeView::StorageSlots(n, fanout)),
        view_(storage_, n, fanout) {}

  IndexTreeView& view() { return view_; }
  const IndexTreeView& view() const { return view_; }

 private:
  std::vector<float> storage_;
  IndexTreeView view_;
};

}  // namespace culda::core
