// Model quality metric: joint log-likelihood per token (Figure 8's y-axis).
//
// For collapsed Gibbs LDA the standard quality trace is
//
//   log p(w, z | α, β) =
//       Σ_d [ Σ_k lΓ(θ_dk + α) − K·lΓ(α) + lΓ(Kα) − lΓ(len_d + Kα) ]
//     + Σ_k [ Σ_v lΓ(φ_kv + β) − V·lΓ(β) + lΓ(Vβ) − lΓ(n_k + Vβ) ]
//
// divided by the token count. It rises (towards 0) as the model fits; all
// LDA systems compared in the paper report this same quantity.
#pragma once

#include "core/config.hpp"
#include "core/model.hpp"
#include "util/thread_pool.hpp"

namespace culda::core {

/// Computes log-likelihood per token of a gathered model. Only the non-zero
/// entries of θ and φ contribute beyond the closed-form zero terms, so the
/// cost is O(nnz(θ) + nnz(φ)).
///
/// The lgamma arguments are small integers plus a constant, so the values
/// are served from memo tables built once per call (bitwise-identical to
/// direct lgamma — the tables just cache its results). With a pool, θ rows
/// fan out in fixed 256-document chunks and φ rows per topic; partials are
/// reduced in chunk/topic order, so the result does not depend on the
/// worker count (or on whether a pool is passed at all).
double LogLikelihoodPerToken(const GatheredModel& model,
                             const CuldaConfig& cfg,
                             ThreadPool* pool = nullptr);

}  // namespace culda::core
