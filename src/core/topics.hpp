// Trained-model inspection utilities: top words, topic sizes, document
// mixtures, and UMass topic coherence.
//
// These are the downstream-consumer surface of the library — what a user of
// the paper's system would call after training to actually *use* the topics
// (Section 2.1's "infer the topic distribution of each document").
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/model.hpp"
#include "corpus/corpus.hpp"
#include "util/thread_pool.hpp"

namespace culda::core {

struct TopicWord {
  uint32_t word = 0;
  uint32_t count = 0;
  double probability = 0;  ///< (φ_kv + β) / (n_k + βV)
};

/// Top `n` words of topic `k` by count (ties broken by word id).
std::vector<TopicWord> TopWords(const GatheredModel& model,
                                const CuldaConfig& cfg, uint32_t k,
                                size_t n);

/// Topics ordered by token count, descending: (topic, n_k).
std::vector<std::pair<uint32_t, int64_t>> TopicsBySize(
    const GatheredModel& model);

struct DocTopic {
  uint32_t topic = 0;
  int32_t count = 0;
  double proportion = 0;  ///< (θ_dk + α) / (len_d + Kα)
};

/// Document d's smoothed topic mixture, largest first.
std::vector<DocTopic> DocumentMixture(const GatheredModel& model,
                                      const CuldaConfig& cfg, size_t d);

/// UMass coherence of topic k over its top_n words:
///   C(k) = Σ_{i<j} log( (D(w_i, w_j) + 1) / D(w_j) )
/// where D counts documents (in `reference`) containing the word(s) and the
/// top words are ordered by frequency (w_j the more frequent of the pair).
/// Closer to 0 = more coherent; typical values are negative.
double UMassCoherence(const GatheredModel& model, const CuldaConfig& cfg,
                      const corpus::Corpus& reference, uint32_t k,
                      size_t top_n);

/// Mean UMass coherence across all topics with n_k > 0. Topics fan out
/// over `pool` when given (each UMassCoherence is an independent corpus
/// scan); per-topic values are reduced in ascending-topic order, so the
/// result is bit-identical at any worker count (and with no pool at all).
double AverageCoherence(const GatheredModel& model, const CuldaConfig& cfg,
                        const corpus::Corpus& reference, size_t top_n,
                        ThreadPool* pool = nullptr);

}  // namespace culda::core
