// Trained-model serialization.
//
// Binary format (little-endian, versioned, v2): the util/io container frame
//   magic "CULDAMDL", u32 version, u64 payload_size, payload, u32 crc32
// with payload
//   u32 K, u32 V, u64 D,
//   θ as CSR  (u64 nnz, D+1 × u64 row_ptr, nnz × u16 col, nnz × i32 val),
//   φ dense   (K×V × u16),
//   n_k       (K × i32).
// Loads verify the declared length and CRC32 before parsing, validate every
// section count against the bytes actually present before allocating, and
// reject trailing bytes — a truncated, bit-flipped, or hostile file yields a
// clean culda::Error, never an OOM or a silent load (see docs/persistence.md;
// the unframed v1 layout is rejected explicitly). Writes to a path are
// atomic (tmp + rename). This is the "collect the trained model" endpoint of
// Algorithm 1 made durable — the paper's motivating online services consume
// exactly this artifact.
#pragma once

#include <iosfwd>
#include <string>

#include "core/model.hpp"

namespace culda::core {

/// Writes `model` to `out`. Throws culda::Error on stream failure.
void SaveModel(const GatheredModel& model, std::ostream& out);
void SaveModelToFile(const GatheredModel& model, const std::string& path);

/// Reads a model; throws culda::Error on malformed/corrupt input.
GatheredModel LoadModel(std::istream& in);
GatheredModel LoadModelFromFile(const std::string& path);

}  // namespace culda::core
