#include "core/topics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"

namespace culda::core {

std::vector<TopicWord> TopWords(const GatheredModel& model,
                                const CuldaConfig& cfg, uint32_t k,
                                size_t n) {
  CULDA_CHECK(k < model.num_topics);
  const auto row = model.phi.Row(k);
  std::vector<TopicWord> words;
  for (uint32_t v = 0; v < model.vocab_size; ++v) {
    if (row[v] > 0) {
      words.push_back({v, row[v], 0.0});
    }
  }
  const size_t keep = std::min(n, words.size());
  std::partial_sort(words.begin(), words.begin() + keep, words.end(),
                    [](const TopicWord& a, const TopicWord& b) {
                      if (a.count != b.count) return a.count > b.count;
                      return a.word < b.word;
                    });
  words.resize(keep);
  const double denom = static_cast<double>(model.nk[k]) +
                       cfg.beta * model.vocab_size;
  for (auto& w : words) {
    w.probability = (w.count + cfg.beta) / denom;
  }
  return words;
}

std::vector<std::pair<uint32_t, int64_t>> TopicsBySize(
    const GatheredModel& model) {
  std::vector<std::pair<uint32_t, int64_t>> out;
  out.reserve(model.num_topics);
  for (uint32_t k = 0; k < model.num_topics; ++k) {
    out.emplace_back(k, model.nk[k]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return out;
}

std::vector<DocTopic> DocumentMixture(const GatheredModel& model,
                                      const CuldaConfig& cfg, size_t d) {
  CULDA_CHECK(d < model.theta.rows());
  const auto idx = model.theta.RowIndices(d);
  const auto val = model.theta.RowValues(d);
  int64_t len = 0;
  for (const int32_t c : val) len += c;
  const double denom = static_cast<double>(len) + cfg.AlphaSum();

  std::vector<DocTopic> mix;
  mix.reserve(idx.size());
  for (size_t i = 0; i < idx.size(); ++i) {
    mix.push_back({idx[i], val[i], (val[i] + cfg.AlphaOf(idx[i])) / denom});
  }
  std::sort(mix.begin(), mix.end(), [](const DocTopic& a, const DocTopic& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.topic < b.topic;
  });
  return mix;
}

double UMassCoherence(const GatheredModel& model, const CuldaConfig& cfg,
                      const corpus::Corpus& reference, uint32_t k,
                      size_t top_n) {
  const auto top = TopWords(model, cfg, k, top_n);
  if (top.size() < 2) return 0.0;

  // Document frequencies and pairwise co-document frequencies of the top
  // words, in one pass over the reference corpus.
  std::unordered_map<uint32_t, size_t> pos;  // word → index in `top`
  for (size_t i = 0; i < top.size(); ++i) pos[top[i].word] = i;
  std::vector<uint64_t> df(top.size(), 0);
  std::vector<std::vector<uint64_t>> codf(
      top.size(), std::vector<uint64_t>(top.size(), 0));

  std::vector<size_t> present;
  for (size_t d = 0; d < reference.num_docs(); ++d) {
    present.clear();
    for (const uint32_t w : reference.DocTokens(d)) {
      const auto it = pos.find(w);
      if (it != pos.end()) present.push_back(it->second);
    }
    std::sort(present.begin(), present.end());
    present.erase(std::unique(present.begin(), present.end()),
                  present.end());
    for (size_t a = 0; a < present.size(); ++a) {
      ++df[present[a]];
      for (size_t b = a + 1; b < present.size(); ++b) {
        ++codf[present[a]][present[b]];
        ++codf[present[b]][present[a]];
      }
    }
  }

  // Top words are frequency-ordered, so for i < j, word i is the more
  // frequent: pair score log((D(wi,wj)+1)/D(wi)).
  double coherence = 0;
  for (size_t j = 1; j < top.size(); ++j) {
    for (size_t i = 0; i < j; ++i) {
      if (df[i] == 0) continue;  // word absent from the reference corpus
      coherence += std::log((static_cast<double>(codf[i][j]) + 1.0) /
                            static_cast<double>(df[i]));
    }
  }
  return coherence;
}

double AverageCoherence(const GatheredModel& model, const CuldaConfig& cfg,
                        const corpus::Corpus& reference, size_t top_n,
                        ThreadPool* pool) {
  // Per-topic partials reduced in ascending-topic order below: the mean is
  // bit-identical whether topics are scored sequentially or on any number
  // of workers.
  std::vector<double> partial(model.num_topics, 0.0);
  std::vector<uint8_t> counted(model.num_topics, 0);
  const auto body = [&](size_t k) {
    if (model.nk[k] > 0) {
      partial[k] =
          UMassCoherence(model, cfg, reference, static_cast<uint32_t>(k),
                         top_n);
      counted[k] = 1;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(model.num_topics, body);
  } else {
    for (uint32_t k = 0; k < model.num_topics; ++k) body(k);
  }
  double sum = 0;
  uint32_t populated = 0;
  for (uint32_t k = 0; k < model.num_topics; ++k) {
    sum += partial[k];
    populated += counted[k];
  }
  CULDA_CHECK_MSG(populated > 0, "model has no populated topics");
  return sum / populated;
}

}  // namespace culda::core
