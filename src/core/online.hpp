// OnlineTrainer — incremental training over a growing corpus.
//
// The paper's introduction motivates LDA for online services; this
// extension supports the serving-side lifecycle:
//
//   1. train on the initial corpus;
//   2. as new documents arrive, fold them in cheaply (Gibbs against the
//      frozen φ — microseconds per document, no retraining);
//   3. periodically absorb the accumulated documents into the corpus and
//      run a few refresh sweeps so φ reflects them too.
//
// Absorption preserves existing training state: topic assignments ride
// along via Export/ImportAssignments (token ids of old documents are
// stable under append), and new documents start from their folded-in
// topics rather than random — so a refresh needs only a handful of sweeps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/inference.hpp"
#include "core/trainer.hpp"
#include "corpus/corpus.hpp"

namespace culda::core {

class OnlineTrainer {
 public:
  /// Takes a copy of the initial corpus (the online corpus grows) and
  /// trains `initial_iterations` sweeps.
  OnlineTrainer(corpus::Corpus initial_corpus, CuldaConfig cfg,
                TrainerOptions opts, uint32_t initial_iterations = 30);

  const corpus::Corpus& corpus() const { return corpus_; }
  uint64_t pending_documents() const { return pending_docs_.size(); }

  /// Classifies a new document against the current model (fold-in; does not
  /// change the model) and queues it for the next Absorb(). The serving
  /// engine (gathered model + sparse φ-column cache) is built lazily and
  /// reused across calls until the model changes.
  InferenceResult AddDocument(std::vector<uint32_t> words);

  /// Batched fold-in: classifies and queues every document, fanning out
  /// over the trainer's ThreadPool (TrainerOptions::pool) when one is set.
  /// Bit-identical to calling AddDocument on each element in order, at any
  /// worker count.
  std::vector<InferenceResult> AddDocuments(
      std::vector<std::vector<uint32_t>> docs);

  /// Merges all pending documents into the corpus, seeds their topics from
  /// the fold-in results, and runs `refresh_iterations` sweeps.
  void Absorb(uint32_t refresh_iterations = 5);

  GatheredModel Gather() const { return trainer_->Gather(); }
  double LogLikelihoodPerToken() const {
    return trainer_->LogLikelihoodPerToken();
  }
  uint32_t iteration() const { return trainer_->iteration(); }

  /// Checkpoints delegate to the underlying trainer (same CRC-framed format,
  /// same transactional restore). Pending fold-in documents are not part of
  /// the checkpoint, so both directions refuse while any are queued —
  /// Absorb() first — rather than dropping them silently.
  void SaveCheckpoint(std::ostream& out) const;
  void RestoreCheckpoint(std::istream& in);

 private:
  void RebuildTrainer(std::vector<uint16_t> z_doc_major);
  /// Gathers the model and builds the sparse batched engine on first use;
  /// anything that changes the model (Absorb, restore) invalidates it.
  const InferenceEngine& ServingEngine();
  void InvalidateServingEngine();

  corpus::Corpus corpus_;
  CuldaConfig cfg_;
  TrainerOptions opts_;
  std::unique_ptr<CuldaTrainer> trainer_;
  std::vector<std::vector<uint32_t>> pending_docs_;
  std::vector<std::vector<uint16_t>> pending_z_;
  // The engine keeps a pointer into served_model_; declaration order makes
  // it die first.
  std::unique_ptr<GatheredModel> served_model_;
  std::unique_ptr<InferenceEngine> serving_engine_;
};

}  // namespace culda::core
