// OnlineTrainer — incremental training over a growing corpus.
//
// The paper's introduction motivates LDA for online services; this
// extension supports the serving-side lifecycle:
//
//   1. train on the initial corpus;
//   2. as new documents arrive, fold them in cheaply (Gibbs against the
//      frozen φ — microseconds per document, no retraining);
//   3. periodically absorb the accumulated documents into the corpus and
//      run a few refresh sweeps so φ reflects them too.
//
// Absorption preserves existing training state: topic assignments ride
// along via Export/ImportAssignments (token ids of old documents are
// stable under append), and new documents start from their folded-in
// topics rather than random — so a refresh needs only a handful of sweeps.
//
// Threading contract: every public method is internally serialized by one
// mutex, so a serving daemon may call AddDocuments from one thread and
// Absorb from another without external locking. The fold-in/absorb path
// is *serialized*, not concurrent — the wait-free serving path is
// Snapshot(): it hands out an immutable refcounted core::ModelSnapshot
// that in-flight readers keep alive across an Absorb(); a daemon publishes
// it through a core::SnapshotSlot so its request threads never touch this
// mutex at all (RCU-style; see docs/serving.md "Daemon").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "core/inference.hpp"
#include "core/snapshot.hpp"
#include "core/trainer.hpp"
#include "corpus/corpus.hpp"

namespace culda::core {

class OnlineTrainer {
 public:
  /// Takes a copy of the initial corpus (the online corpus grows) and
  /// trains `initial_iterations` sweeps.
  OnlineTrainer(corpus::Corpus initial_corpus, CuldaConfig cfg,
                TrainerOptions opts, uint32_t initial_iterations = 30);

  const corpus::Corpus& corpus() const { return corpus_; }
  uint64_t pending_documents() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_docs_.size();
  }

  /// Classifies a new document against the current model (fold-in; does not
  /// change the model) and queues it for the next Absorb(). Serves from the
  /// current snapshot, which is built lazily and reused across calls until
  /// the model changes.
  InferenceResult AddDocument(std::vector<uint32_t> words);

  /// Batched fold-in: classifies and queues every document, fanning out
  /// over the trainer's ThreadPool (TrainerOptions::pool) when one is set.
  /// Bit-identical to calling AddDocument on each element in order, at any
  /// worker count.
  std::vector<InferenceResult> AddDocuments(
      std::vector<std::vector<uint32_t>> docs);

  /// Merges all pending documents into the corpus, seeds their topics from
  /// the fold-in results, and runs `refresh_iterations` sweeps. The next
  /// Snapshot() call publishes a new generation; snapshots already handed
  /// out are untouched (their readers finish on the old generation).
  void Absorb(uint32_t refresh_iterations = 5);

  /// The current model generation as an immutable refcounted snapshot.
  /// Built lazily on first use after construction / Absorb / restore;
  /// subsequent calls return the same object until the model changes, and
  /// each rebuild gets a strictly increasing generation number. This is
  /// the serving hand-off: callers (and their in-flight batches) may hold
  /// the snapshot for as long as they like — Absorb() never invalidates
  /// it under them, it just stops being current.
  SnapshotPtr Snapshot();

  GatheredModel Gather() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return trainer_->Gather();
  }
  double LogLikelihoodPerToken() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return trainer_->LogLikelihoodPerToken();
  }
  uint32_t iteration() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return trainer_->iteration();
  }

  /// Checkpoints delegate to the underlying trainer (same CRC-framed format,
  /// same transactional restore). Pending fold-in documents are not part of
  /// the checkpoint, so both directions refuse while any are queued —
  /// Absorb() first — rather than dropping them silently.
  void SaveCheckpoint(std::ostream& out) const;
  void RestoreCheckpoint(std::istream& in);

 private:
  void RebuildTrainer(std::vector<uint16_t> z_doc_major);
  /// Returns the current snapshot, building it on first use; anything that
  /// changes the model (Absorb, restore) resets it so the next call builds
  /// the following generation. Caller must hold mutex_.
  SnapshotPtr EnsureSnapshotLocked();

  mutable std::mutex mutex_;  ///< serializes every public entry point
  corpus::Corpus corpus_;
  CuldaConfig cfg_;
  TrainerOptions opts_;
  std::unique_ptr<CuldaTrainer> trainer_;
  std::vector<std::vector<uint32_t>> pending_docs_;
  std::vector<std::vector<uint16_t>> pending_z_;
  /// Current published generation (null between a model change and the
  /// next Snapshot()/fold-in). Old generations live on in whoever holds
  /// them — resetting this pointer is what makes Absorb() safe against
  /// the pre-snapshot race where a cached raw engine could serve one
  /// stale batch after the model had already moved on.
  SnapshotPtr snapshot_;
  uint64_t next_generation_ = 1;
};

}  // namespace culda::core
