// CuldaTrainer — the top-level CuLDA_CGS training loop (Algorithm 1).
//
// Orchestrates: corpus partitioning (C = M × G token-balanced chunks),
// per-GPU sampling/update kernels, the φ reduce+broadcast sync, and the two
// workload schedules of Section 5.1:
//
//   WorkSchedule1 (M = 1): chunks live on their GPU for the whole training;
//     data moves host↔device only at the start and end.
//   WorkSchedule2 (M > 1): chunks stream through the GPUs every iteration,
//     with transfers double-buffered against compute on a second stream.
//
// M is chosen automatically from the device memory capacity exactly as the
// paper prescribes: M = 1 if one chunk (plus the model) fits, otherwise the
// smallest M such that two chunks fit (double buffering).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/kernels.hpp"
#include "core/model.hpp"
#include "core/sync.hpp"
#include "corpus/corpus.hpp"
#include "gpusim/multi_gpu.hpp"
#include "util/thread_pool.hpp"
#include "validate/validate.hpp"

namespace culda::core {

struct TrainerOptions {
  std::vector<gpusim::DeviceSpec> gpus = {gpusim::V100Volta()};
  gpusim::LinkSpec peer_link = gpusim::Pcie3x16();
  /// Chunks per GPU (the paper's M); 0 = choose automatically from device
  /// memory capacity (Section 5.1).
  uint32_t chunks_per_gpu = 0;
  SyncMode sync_mode = SyncMode::kGpuTree;
  /// Per-token sampling strategy: the exact index-tree kernel (Algorithm 2)
  /// or the O(1) alias/MH tier (docs/samplers.md). Both are deterministic in
  /// (seed, iteration, global token) at any GPU/chunk/worker count; kAliasMH
  /// is statistically — not bitwise — equivalent and is certified by the
  /// count-marginal conformance and convergence-parity harnesses.
  TrainSampler sampler = TrainSampler::kTree;
  /// kAliasMH only: MH proposal pairs per token per iteration.
  uint32_t mh_cycles = 1;
  /// WS2 only: overlap chunk transfers with compute via a second stream
  /// (off = the A5 ablation's serial variant).
  bool overlap_transfers = true;
  /// Run the θ update on a second stream so it overlaps the φ sync
  /// (Section 6.2's kernel ordering); off = serialize, for the ablation.
  bool overlap_theta_with_sync = true;
  /// Optional worker pool, shared by two levels of host parallelism: the
  /// trainer runs independent simulated GPUs concurrently between sync
  /// points, and each device runs its kernel's thread blocks on the same
  /// pool (ThreadPool's parallel-for is nested-safe). Wall-clock only —
  /// simulated times and model state are bit-identical with or without it.
  ThreadPool* pool = nullptr;
  /// Collect per-step traffic tallies (Table 1); small overhead.
  bool collect_step_counters = false;
  /// Re-estimate α and β from the counts every N iterations via Minka's
  /// fixed point (0 = off, the paper's fixed 50/K / 0.01 setting). An
  /// extension over the paper; see core/hyperopt.hpp.
  uint32_t hyperopt_interval = 0;
  /// Run the full invariant inventory (src/validate) after count rebuilds,
  /// per-chunk after every sampling/θ-update step, and after every φ sync.
  /// Only honored in a -DCULDA_VALIDATE=ON build — the hook sites do not
  /// exist otherwise — hence the default: on exactly when they are
  /// compiled. ValidateState() below works in every build regardless.
  bool validate = culda::validate::kHooksCompiled;
  /// Replicate read-mostly inference state per socket domain of `pool` in
  /// the engines built over this trainer's gathered φ (held-out scoring,
  /// SnapshotFromTrainer); see InferenceOptions::numa_replicate. Exact
  /// copies — every result stays bit-identical. No-op on single-socket
  /// topologies.
  bool numa_replicate = false;
};

/// Timing record of one training iteration, in simulated seconds. The
/// per-kernel components are summed across devices (they overlap in group
/// time, so they are meaningful as a breakdown, not as a sum).
struct IterationStats {
  uint32_t iteration = 0;
  double sim_seconds = 0;
  double wall_seconds = 0;
  double tokens_per_sec = 0;       ///< corpus tokens / sim_seconds
  double wall_tokens_per_sec = 0;  ///< corpus tokens / wall_seconds (host)
  double sampling_s = 0;
  double update_theta_s = 0;
  double update_phi_s = 0;
  double sync_s = 0;
  double transfer_s = 0;
  /// θ sparsity after this iteration: total non-zeros across all chunks.
  /// Falling nnz is what drives the Figure 7 throughput ramp.
  uint64_t theta_nnz = 0;
};

class CuldaTrainer {
 public:
  /// `corpus` must outlive the trainer. Builds chunk layouts, initializes
  /// topics uniformly at random (deterministic in cfg.seed), and constructs
  /// the initial θ/φ counts; the simulated clock starts at zero *after*
  /// initialization, matching how the paper times iterations.
  CuldaTrainer(const corpus::Corpus& corpus, CuldaConfig cfg,
               TrainerOptions opts);

  uint32_t num_gpus() const {
    return static_cast<uint32_t>(group_.size());
  }
  uint32_t chunks_per_gpu() const { return m_; }
  uint32_t num_chunks() const {
    return static_cast<uint32_t>(chunks_.size());
  }
  uint64_t num_tokens() const { return corpus_->num_tokens(); }
  const CuldaConfig& config() const { return cfg_; }
  const TrainerOptions& options() const { return opts_; }
  gpusim::DeviceGroup& group() { return group_; }

  /// Runs one full training iteration (sampling + model update + φ sync).
  IterationStats Step();

  /// Runs `iterations` steps; returns their stats (also kept in history()).
  std::vector<IterationStats> Train(uint32_t iterations);

  const std::vector<IterationStats>& history() const { return history_; }

  /// Cumulative per-step traffic tallies (when collect_step_counters).
  const SamplingStepCounters& step_counters() const { return steps_; }

  /// Collects the trained model back to the host (Algorithm 1 lines 17–20).
  GatheredModel Gather() const;

  /// Convenience: gather + evaluate the Figure 8 metric.
  double LogLikelihoodPerToken() const;

  /// Current iteration count (number of completed Step() calls).
  uint32_t iteration() const { return iteration_; }

  /// Checks the full invariant inventory over the current state (every
  /// chunk's layout/z/θ, replica agreement, φ against z and the corpus);
  /// throws validate::ValidationError naming the first violated invariant.
  /// Available in every build; the TrainerOptions::validate hooks call this
  /// automatically in -DCULDA_VALIDATE=ON builds.
  void ValidateState() const;

  // --- Checkpointing --------------------------------------------------------
  // A checkpoint is the per-token topic assignment plus the iteration
  // counter — everything else (θ, φ, n_k) is recomputed, and the Philox
  // streams are keyed by (seed, iteration, token), so resuming a checkpoint
  // continues bit-identically to an uninterrupted run. On disk it is a
  // util/io container (magic + version + length + CRC32 trailer); see
  // docs/persistence.md.
  void SaveCheckpoint(std::ostream& out) const;
  /// Restores into a trainer built over the same corpus/config/topology;
  /// throws culda::Error on any mismatch or corruption. The restore is
  /// transactional: on failure the trainer's state is unchanged and it
  /// remains fully usable.
  void RestoreCheckpoint(std::istream& in);
  /// Atomic checkpoint-to-file: writes `path.tmp`, fsyncs, rotates any
  /// existing `path` to `path.prev`, then renames — a crash at any point
  /// leaves a loadable checkpoint under `path` or `path.prev`.
  void SaveCheckpointToFile(const std::string& path) const;
  /// Restores from `path`, degrading gracefully to the retained last-good
  /// `path.prev` (with a logged warning) when `path` is missing, torn, or
  /// corrupt. Returns the path actually restored; throws culda::Error when
  /// neither file is usable.
  std::string RestoreCheckpointFromFile(const std::string& path);

  /// Topic assignments in corpus document-major order (the inverse of the
  /// word-first permutation). Together with ImportAssignments this lets a
  /// caller move training state across *growing* corpora (see
  /// core::OnlineTrainer): token ids of existing documents are stable when
  /// documents are appended.
  std::vector<uint16_t> ExportAssignments() const;
  /// Replaces all topic assignments (document-major, length = corpus
  /// tokens, values < K) and rebuilds θ/φ/n_k. Does not change iteration().
  void ImportAssignments(std::span<const uint16_t> z_doc_major);

 private:
  void ChooseM();
  void BuildChunks();
  void InitializeModel();
  /// Runs fn(g) for every device — concurrently on opts_.pool when one is
  /// set (simulated GPUs are independent between sync points), sequentially
  /// otherwise. Callers keep per-device partials and reduce them in fixed
  /// device order after this returns, which is what keeps float sums (and
  /// thus reported stats) independent of the execution interleaving.
  void ForEachDevice(const std::function<void(size_t)>& fn);
  /// Rebuilds θ/φ/n_k from the current z (used at init and restore).
  void RebuildCountsFromZ();
  void StepWs1(IterationStats& stats);
  void StepWs2(IterationStats& stats);
  void SyncAndFinishIteration(IterationStats& stats);
  uint64_t ChunkUploadBytes(const ChunkState& chunk) const;

  const corpus::Corpus* corpus_;
  CuldaConfig cfg_;
  TrainerOptions opts_;
  gpusim::DeviceGroup group_;
  uint32_t m_ = 1;  ///< chunks per GPU
  std::vector<ChunkState> chunks_;          ///< C = M × G entries
  /// Double-buffered φ per GPU: `replicas_` is the synchronized model the
  /// sampling kernel reads (iteration t−1); `accum_` collects the new counts
  /// during iteration t and becomes `replicas_` after the sync. (The paper
  /// does not spell this out, but reading and rebuilding φ in the same
  /// buffer while chunks stream through the GPU cannot work.)
  std::vector<PhiReplica> replicas_;
  std::vector<PhiReplica> accum_;
  /// Capacity charges representing resident chunk + model footprints.
  std::vector<gpusim::DeviceBuffer<std::byte>> footprints_;
  std::vector<IterationStats> history_;
  SamplingStepCounters steps_;
  uint32_t iteration_ = 0;
  std::vector<double> last_transfer_s_;  ///< per-device transfer-time marks
};

}  // namespace culda::core
