// Trainer configuration (hyper-parameters + the paper's optimization knobs).
//
// Every Section 6 optimization is a switch here so the ablation benches
// (DESIGN A1–A5) can measure what each one buys. Defaults reproduce the
// paper's configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace culda::core {

struct CuldaConfig {
  // --- Model hyper-parameters (Section 2.1) --------------------------------
  uint32_t num_topics = 256;  ///< K
  /// Dirichlet prior on document–topic; < 0 means "use the paper's 50/K".
  double alpha = -1.0;
  double beta = 0.01;
  /// Optional asymmetric document–topic prior (Wallach et al.): when
  /// non-empty it must have num_topics entries and overrides `alpha`.
  /// An extension over the paper's symmetric 50/K.
  std::vector<double> asymmetric_alpha;

  // --- Sampler (Section 6.1) ------------------------------------------------
  uint32_t samplers_per_block = 32;  ///< warps per thread block (paper: 32,
                                     ///< the allowed maximum)
  uint64_t max_tokens_per_block = 4096;  ///< heavy-word split granularity
  uint32_t tree_fanout = 32;  ///< index-tree arity (warp-wide search)

  // --- Optimization switches (ablations) ------------------------------------
  bool share_p2_tree = true;   ///< share the p2/p* tree per block (Fig. 6)
  bool reuse_pstar = true;     ///< cache p*(k) in shared memory (Eq. 8)
  bool compress_indices = true;  ///< 16-bit θ indices / 16-bit φ counts
                                 ///< (Section 6.1.3); affects billed traffic
  bool l1_for_indices = true;  ///< route sparse-index loads through L1
                               ///< (Section 6.1.2)
  bool use_shared_trees = true;  ///< keep private p1 index trees in shared
                                 ///< memory (off = fully unoptimized
                                 ///< sampler, the Table 1 baseline)

  // --- Reproducibility -------------------------------------------------------
  uint64_t seed = 1234;

  double EffectiveAlpha() const {
    return alpha >= 0 ? alpha : 50.0 / num_topics;
  }

  /// The prior for topic k (asymmetric when configured).
  double AlphaOf(uint32_t k) const {
    return asymmetric_alpha.empty() ? EffectiveAlpha()
                                    : asymmetric_alpha[k];
  }

  /// Σ_k α_k — the Dirichlet concentration total.
  double AlphaSum() const {
    if (asymmetric_alpha.empty()) return EffectiveAlpha() * num_topics;
    double sum = 0;
    for (const double a : asymmetric_alpha) sum += a;
    return sum;
  }

  void Validate() const {
    CULDA_CHECK_MSG(num_topics >= 2, "need at least 2 topics");
    // Strictly below 2^16: topic ids live in uint16_t arrays (z, θ column
    // indices), so K = 65536 would make topic 65535's id ambiguous with the
    // saturation sentinel and K > 65536 would truncate ids outright.
    CULDA_CHECK_MSG(num_topics <= 0xFFFF,
                    "K = " << num_topics
                           << " does not fit 16-bit topic ids; the paper's "
                              "compression (§6.1.3) requires K <= 65535");
    CULDA_CHECK(beta > 0);
    if (!asymmetric_alpha.empty()) {
      CULDA_CHECK_MSG(asymmetric_alpha.size() == num_topics,
                      "asymmetric_alpha must have one entry per topic");
      for (const double a : asymmetric_alpha) {
        CULDA_CHECK_MSG(a > 0, "asymmetric_alpha entries must be positive");
      }
    }
    CULDA_CHECK(samplers_per_block >= 1 && samplers_per_block <= 32);
    CULDA_CHECK(max_tokens_per_block >= 1);
    CULDA_CHECK(tree_fanout >= 2);
  }

  /// Bytes billed per θ column index / φ counter under the current
  /// compression setting (the arrays always hold 16-bit values; billing is
  /// what the A3 ablation varies).
  uint32_t theta_index_bytes() const { return compress_indices ? 2 : 4; }
  uint32_t phi_count_bytes() const { return compress_indices ? 2 : 4; }
};

}  // namespace culda::core
