#include "core/trainer.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "core/evaluator.hpp"
#include "core/hyperopt.hpp"
#include "corpus/chunking.hpp"
#include "obs/obs.hpp"
#include "util/io.hpp"
#include "util/log.hpp"
#include "util/philox.hpp"
#include "util/stopwatch.hpp"
#include "validate/invariants.hpp"

namespace culda::core {

namespace {

/// Pre-partition estimate of a chunk's device footprint (Section 5.1's
/// capacity check runs before any chunk is built).
uint64_t EstimateChunkBytes(uint64_t tokens, uint64_t docs,
                            uint64_t vocab_size, const CuldaConfig& cfg) {
  const uint64_t per_token = 4 /*token_doc*/ + 4 /*token_global*/ +
                             4 /*doc_map*/ + 2 /*z*/ +
                             cfg.theta_index_bytes() +
                             4 /*θ value, worst case nnz = tokens*/;
  return tokens * per_token + (docs + 1) * 16 /*doc offsets ×2*/ +
         (vocab_size + 1) * 8 /*word offsets*/;
}

uint64_t PhiFootprintBytes(const CuldaConfig& cfg, uint64_t vocab_size) {
  return static_cast<uint64_t>(cfg.num_topics) * vocab_size *
             cfg.phi_count_bytes() +
         static_cast<uint64_t>(cfg.num_topics) * 4;
}

/// Per-device partial of one step, filled inside the device-parallel region
/// and reduced into IterationStats in fixed device order afterwards, so the
/// float sums never depend on thread interleaving.
struct alignas(64) DevicePartial {
  double sampling_s = 0;
  double update_phi_s = 0;
  double update_theta_s = 0;
  SamplingStepCounters steps;
};

}  // namespace

void CuldaTrainer::ForEachDevice(const std::function<void(size_t)>& fn) {
  const size_t g_count = group_.size();
  if (opts_.pool != nullptr && opts_.pool->worker_count() > 0 &&
      g_count > 1) {
    opts_.pool->ParallelFor(g_count, fn);
  } else {
    for (size_t g = 0; g < g_count; ++g) fn(g);
  }
}

CuldaTrainer::CuldaTrainer(const corpus::Corpus& corpus, CuldaConfig cfg,
                           TrainerOptions opts)
    : corpus_(&corpus),
      cfg_(cfg),
      opts_(std::move(opts)),
      group_(opts_.gpus, opts_.peer_link, opts_.pool) {
  cfg_.Validate();
  CULDA_CHECK_MSG(corpus.num_tokens() > 0, "cannot train on an empty corpus");
  // φ counts are 16-bit (§6.1.3) and the synced replica holds *global*
  // counts, so a word's cell can reach its corpus frequency if every
  // occurrence lands on one topic. A word more frequent than 65535 could
  // therefore wrap φ silently mid-training; reject such corpora up front
  // instead (the paper prunes stop words, which removes exactly these).
  {
    const std::vector<uint64_t> freq = corpus.WordFrequencies();
    for (size_t v = 0; v < freq.size(); ++v) {
      CULDA_CHECK_MSG(
          freq[v] <= 0xFFFF,
          "word " << v << " occurs " << freq[v]
                  << " times; 16-bit φ counts can overflow beyond 65535 "
                     "occurrences — prune heavy/stop words or shard the "
                     "vocabulary");
    }
  }

  ChooseM();
  BuildChunks();
  InitializeModel();

  // Iteration timing starts now; setup (preprocessing + initial counts) is
  // excluded, as in the paper's per-iteration measurements.
  group_.ResetTime();
  for (size_t g = 0; g < group_.size(); ++g) {
    group_.device(g).ResetProfile();
  }
  last_transfer_s_.assign(group_.size(), 0.0);
}

void CuldaTrainer::ChooseM() {
  const uint32_t g_count = static_cast<uint32_t>(group_.size());
  const uint64_t phi_bytes =
      2 * PhiFootprintBytes(cfg_, corpus_->vocab_size());
  // All devices in a group are identical in the paper's platforms; use the
  // smallest capacity to be safe with heterogeneous specs.
  uint64_t capacity = group_.device(0).spec().memory_bytes;
  for (size_t g = 1; g < group_.size(); ++g) {
    capacity = std::min(capacity, group_.device(g).spec().memory_bytes);
  }
  CULDA_CHECK_MSG(phi_bytes < capacity,
                  "φ model alone exceeds device memory; reduce K or V");

  if (opts_.chunks_per_gpu > 0) {
    m_ = opts_.chunks_per_gpu;
    return;
  }
  for (uint32_t m = 1; m <= 4096; ++m) {
    const uint32_t c = m * g_count;
    const uint64_t chunk = EstimateChunkBytes(
        corpus_->num_tokens() / c + 1, corpus_->num_docs() / c + 1,
        corpus_->vocab_size(), cfg_);
    // M = 1 keeps one resident chunk; M > 1 needs two (double buffering).
    const uint64_t resident = (m == 1 ? 1 : 2) * chunk + phi_bytes;
    if (resident <= capacity) {
      m_ = m;
      return;
    }
  }
  CULDA_CHECK_MSG(false, "no chunk size fits device memory");
}

void CuldaTrainer::BuildChunks() {
  const uint32_t c_count = m_ * static_cast<uint32_t>(group_.size());
  const auto specs = corpus::PartitionByTokens(*corpus_, c_count);
  chunks_.clear();
  chunks_.reserve(specs.size());
  for (const auto& spec : specs) {
    ChunkState chunk;
    chunk.layout = corpus::BuildWordFirstChunk(*corpus_, spec);
    chunk.work =
        corpus::BuildBlockWorkList(chunk.layout, cfg_.max_tokens_per_block);
    chunk.z.resize(chunk.layout.num_tokens());
    // Deterministic random topic init keyed by the corpus-global token
    // index, so the initial state is independent of the partition.
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      PhiloxStream rng(cfg_.seed, chunk.layout.token_global[t]);
      // NextBelow(K) < K <= 0xFFFF (CuldaConfig::Validate), so the narrowing
      // is provably lossless; the DCHECK keeps it honest if the K cap moves.
      const uint32_t topic = rng.NextBelow(cfg_.num_topics);
      CULDA_DCHECK(topic <= 0xFFFF);
      chunk.z[t] = static_cast<uint16_t>(topic);
    }
    chunk.theta = ThetaMatrix(chunk.layout.num_docs(), cfg_.num_topics);
    chunks_.push_back(std::move(chunk));
  }

  // Charge resident footprints against device capacity. WS1 keeps all of a
  // GPU's chunks resident; WS2 keeps two chunk slots (double buffer). φ is
  // double-buffered (read replica + accumulator).
  replicas_.clear();
  accum_.clear();
  footprints_.clear();
  const uint32_t g_count = static_cast<uint32_t>(group_.size());
  for (uint32_t g = 0; g < g_count; ++g) {
    gpusim::Device& dev = group_.device(g);
    replicas_.emplace_back(cfg_.num_topics, corpus_->vocab_size());
    accum_.emplace_back(cfg_.num_topics, corpus_->vocab_size());
    footprints_.push_back(dev.Alloc<std::byte>(
        2 * PhiFootprintBytes(cfg_, corpus_->vocab_size()), "phi_replica"));
    if (m_ == 1) {
      footprints_.push_back(
          dev.Alloc<std::byte>(chunks_[g].DeviceBytes(cfg_), "chunk"));
    } else {
      uint64_t max_chunk = 0;
      for (uint32_t m = 0; m < m_; ++m) {
        max_chunk = std::max(max_chunk,
                             chunks_[m * g_count + g].DeviceBytes(cfg_));
      }
      footprints_.push_back(
          dev.Alloc<std::byte>(2 * max_chunk, "chunk_double_buffer"));
    }
  }
}

void CuldaTrainer::InitializeModel() { RebuildCountsFromZ(); }

void CuldaTrainer::RebuildCountsFromZ() {
  CULDA_OBS_SPAN("train/rebuild_counts");
  const uint32_t g_count = static_cast<uint32_t>(group_.size());
  // Counts from the current assignment: θ per chunk, φ per device. Each
  // device touches only its own chunks and replica, so the rebuild runs
  // device-parallel up to the φ sync point.
  ForEachDevice([&](size_t g) {
    gpusim::Device& dev = group_.device(g);
    RunZeroPhiKernel(dev, cfg_, replicas_[g]);
    for (uint32_t m = 0; m < m_; ++m) {
      ChunkState& chunk = chunks_[m * g_count + g];
      RunUpdatePhiKernel(dev, cfg_, chunk, replicas_[g]);
      RunUpdateThetaKernel(dev, cfg_, chunk);
    }
  });
  SynchronizePhi(group_, cfg_, replicas_, opts_.sync_mode);
  ForEachDevice([&](size_t g) {
    RunComputeNkKernel(group_.device(g), cfg_, replicas_[g]);
  });
  group_.Barrier();
  // Covers every path that rewrites the counts wholesale: construction,
  // checkpoint restore, and ImportAssignments.
  CULDA_VALIDATE_HOOK(if (opts_.validate) ValidateState());
}

uint64_t CuldaTrainer::ChunkUploadBytes(const ChunkState& chunk) const {
  return chunk.layout.DeviceBytes() + chunk.z.size() * sizeof(uint16_t) +
         chunk.theta.nnz() * (cfg_.theta_index_bytes() + 4) +
         (chunk.num_docs() + 1) * 8;
}

IterationStats CuldaTrainer::Step() {
  CULDA_OBS_SPAN("train/step");
  CULDA_OBS_TIMED("train.step_wall_s");
  IterationStats stats;
  stats.iteration = iteration_;
  const double t0 = group_.Now();
  Stopwatch wall;

  if (m_ == 1) {
    StepWs1(stats);
  } else {
    StepWs2(stats);
  }
  // Post-sampling/θ-update, pre-sync: each chunk's z and θ must already
  // agree (φ is mid-flight in accum_, so only per-chunk checks apply here).
  CULDA_VALIDATE_HOOK(if (opts_.validate) {
    for (size_t c = 0; c < chunks_.size(); ++c) {
      validate::ValidateChunk(*corpus_, cfg_, chunks_[c],
                              "chunk " + std::to_string(c));
    }
  });
  SyncAndFinishIteration(stats);
  // Post-sync: the replicas hold the global counts again, so the full
  // inventory (φ vs z, replica agreement, saturation margin) applies.
  CULDA_VALIDATE_HOOK(if (opts_.validate) ValidateState());

  stats.sim_seconds = group_.Now() - t0;
  stats.wall_seconds = wall.Seconds();
  for (const auto& chunk : chunks_) stats.theta_nnz += chunk.theta.nnz();
  stats.tokens_per_sec =
      static_cast<double>(corpus_->num_tokens()) / stats.sim_seconds;
  stats.wall_tokens_per_sec =
      stats.wall_seconds > 0
          ? static_cast<double>(corpus_->num_tokens()) / stats.wall_seconds
          : 0.0;
  for (size_t g = 0; g < group_.size(); ++g) {
    const double cur = group_.device(g).transfer_seconds();
    stats.transfer_s += cur - last_transfer_s_[g];
    last_transfer_s_[g] = cur;
  }
  CULDA_OBS_COUNT("train.iterations", 1);
  CULDA_OBS_COUNT("train.tokens_sampled", corpus_->num_tokens());
  CULDA_OBS_GAUGE_SET("train.theta_nnz", stats.theta_nnz);
  CULDA_OBS_GAUGE_SET("train.wall_tokens_per_sec",
                      stats.wall_tokens_per_sec);
  ++iteration_;
  // Heartbeat: the live exporter publishes this gauge so an external
  // watcher can tell a long run is advancing, and the flight-recorder
  // event leaves a step-boundary trail in a crash dump.
  CULDA_OBS_GAUGE_SET("train.heartbeat.iteration",
                      static_cast<double>(iteration_));
  CULDA_OBS_EVENT("train/step");
  if (opts_.hyperopt_interval > 0 &&
      iteration_ % opts_.hyperopt_interval == 0) {
    const GatheredModel model = Gather();
    cfg_.alpha = OptimizeAlpha(model, cfg_.EffectiveAlpha()).value;
    cfg_.beta = OptimizeBeta(model, cfg_.beta).value;
  }
  history_.push_back(stats);
  return stats;
}

void CuldaTrainer::StepWs1(IterationStats& stats) {
  CULDA_OBS_SPAN("train/ws1");
  CULDA_OBS_TIMED("train.schedule_wall_s");
  std::vector<DevicePartial> partials(group_.size());
  ForEachDevice([&](size_t g) {
    CULDA_OBS_SPAN("train/ws1 gpu" + std::to_string(g));
    DevicePartial& part = partials[g];
    gpusim::Device& dev = group_.device(g);
    ChunkState& chunk = chunks_[g];
    gpusim::Stream& compute = dev.stream(0);

    const auto sampling = RunSamplingKernel(
        dev, cfg_, chunk, replicas_[g], iteration_ + 1, &compute,
        opts_.collect_step_counters ? &part.steps : nullptr, opts_.sampler,
        opts_.mh_cycles);
    part.sampling_s += sampling.time.total_s;

    // φ first, so its sync can start while θ updates (Section 6.2). New
    // counts accumulate into the double buffer; the read replica stays
    // intact for any chunk still sampling.
    part.update_phi_s +=
        RunZeroPhiKernel(dev, cfg_, accum_[g], &compute).time.total_s;
    part.update_phi_s +=
        RunUpdatePhiKernel(dev, cfg_, chunk, accum_[g], &compute)
            .time.total_s;

    gpusim::Stream& theta_stream =
        opts_.overlap_theta_with_sync ? dev.stream(1) : compute;
    theta_stream.WaitUntil(sampling.end_s);
    part.update_theta_s +=
        RunUpdateThetaKernel(dev, cfg_, chunk, &theta_stream).time.total_s;
  });
  for (const DevicePartial& part : partials) {
    stats.sampling_s += part.sampling_s;
    stats.update_phi_s += part.update_phi_s;
    stats.update_theta_s += part.update_theta_s;
    steps_ += part.steps;
  }
}

void CuldaTrainer::StepWs2(IterationStats& stats) {
  CULDA_OBS_SPAN("train/ws2");
  CULDA_OBS_TIMED("train.schedule_wall_s");
  const uint32_t g_count = static_cast<uint32_t>(group_.size());
  std::vector<DevicePartial> partials(group_.size());
  ForEachDevice([&](size_t g) {
    CULDA_OBS_SPAN("train/ws2 gpu" + std::to_string(g));
    DevicePartial& part = partials[g];
    gpusim::Device& dev = group_.device(g);
    gpusim::Stream& compute = dev.stream(0);
    // PCIe has independent DMA engines per direction: uploads ride stream 1,
    // downloads stream 2, so the θ write-back of chunk m never stalls the
    // upload of chunk m+1.
    gpusim::Stream& copy_up =
        opts_.overlap_transfers ? dev.stream(1) : compute;
    gpusim::Stream& copy_down =
        opts_.overlap_transfers ? dev.stream(2) : compute;

    part.update_phi_s +=
        RunZeroPhiKernel(dev, cfg_, accum_[g], &compute).time.total_s;

    for (uint32_t m = 0; m < m_; ++m) {
      ChunkState& chunk = chunks_[m * g_count + g];
      // Upload chunk m (tokens + z + θ). On the copy stream this overlaps
      // the previous chunk's compute — the Section 5.1 pipeline.
      const double up_done =
          dev.RecordTransfer(ChunkUploadBytes(chunk), "h2d", &copy_up);
      compute.WaitUntil(up_done);

      const auto sampling = RunSamplingKernel(
          dev, cfg_, chunk, replicas_[g], iteration_ + 1, &compute,
          opts_.collect_step_counters ? &part.steps : nullptr, opts_.sampler,
          opts_.mh_cycles);
      part.sampling_s += sampling.time.total_s;
      part.update_phi_s +=
          RunUpdatePhiKernel(dev, cfg_, chunk, accum_[g], &compute)
              .time.total_s;
      part.update_theta_s +=
          RunUpdateThetaKernel(dev, cfg_, chunk, &compute).time.total_s;

      // θ travels back on the download stream once the update finished.
      copy_down.WaitUntil(compute.ready_time());
      dev.RecordTransfer(
          chunk.theta.nnz() * (cfg_.theta_index_bytes() + 4) +
              (chunk.num_docs() + 1) * 8,
          "d2h", &copy_down);
    }
    compute.WaitUntil(copy_down.ready_time());
    compute.WaitUntil(copy_up.ready_time());
  });
  for (const DevicePartial& part : partials) {
    stats.sampling_s += part.sampling_s;
    stats.update_phi_s += part.update_phi_s;
    stats.update_theta_s += part.update_theta_s;
    steps_ += part.steps;
  }
}

void CuldaTrainer::SyncAndFinishIteration(IterationStats& stats) {
  CULDA_OBS_TIMED("train.sync_wall_s");
  {
    CULDA_OBS_SPAN("train/phi_sync");
    const auto sync = SynchronizePhi(group_, cfg_, accum_, opts_.sync_mode);
    stats.sync_s += sync.seconds;
  }
  // The synchronized accumulators become the next iteration's read model.
  std::swap(replicas_, accum_);
  CULDA_OBS_SPAN("train/compute_nk");
  std::vector<double> nk_s(group_.size(), 0.0);
  ForEachDevice([&](size_t g) {
    nk_s[g] = RunComputeNkKernel(group_.device(g), cfg_, replicas_[g])
                  .time.total_s;
  });
  for (const double s : nk_s) stats.update_phi_s += s;
  group_.Barrier();
}

void CuldaTrainer::ValidateState() const {
  validate::ValidateModelState(*corpus_, cfg_, chunks_, replicas_);
}

std::vector<IterationStats> CuldaTrainer::Train(uint32_t iterations) {
  std::vector<IterationStats> out;
  out.reserve(iterations);
  for (uint32_t i = 0; i < iterations; ++i) {
    out.push_back(Step());
  }
  return out;
}

GatheredModel CuldaTrainer::Gather() const {
  GatheredModel model;
  model.num_topics = cfg_.num_topics;
  model.vocab_size = corpus_->vocab_size();
  model.num_docs = corpus_->num_docs();
  model.theta = ThetaMatrix(corpus_->num_docs(), cfg_.num_topics);
  ThetaMatrix::RowBuilder builder(&model.theta);

  // Chunks are contiguous ascending document ranges; walk them in id order.
  size_t next_doc = 0;
  for (const auto& chunk : chunks_) {
    CULDA_CHECK(chunk.layout.spec.doc_begin == next_doc);
    for (uint64_t d = 0; d < chunk.num_docs(); ++d) {
      builder.AppendRow(next_doc++, chunk.theta.RowIndices(d),
                        chunk.theta.RowValues(d));
    }
  }
  builder.Finish();

  model.phi = replicas_[0].phi;
  model.nk = replicas_[0].nk;
  return model;
}

double CuldaTrainer::LogLikelihoodPerToken() const {
  return core::LogLikelihoodPerToken(Gather(), cfg_, opts_.pool);
}

std::vector<uint16_t> CuldaTrainer::ExportAssignments() const {
  std::vector<uint16_t> z(corpus_->num_tokens());
  for (const auto& chunk : chunks_) {
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      z[chunk.layout.token_global[t]] = chunk.z[t];
    }
  }
  return z;
}

void CuldaTrainer::ImportAssignments(std::span<const uint16_t> z_doc_major) {
  CULDA_CHECK_MSG(z_doc_major.size() == corpus_->num_tokens(),
                  "assignment vector must cover every corpus token");
  for (const uint16_t z : z_doc_major) {
    CULDA_CHECK_MSG(z < cfg_.num_topics, "topic id out of range");
  }
  for (auto& chunk : chunks_) {
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      chunk.z[t] = z_doc_major[chunk.layout.token_global[t]];
    }
  }
  RebuildCountsFromZ();
}

namespace {
constexpr char kCkptMagic[8] = {'C', 'U', 'L', 'D', 'A', 'C', 'K', 'P'};
// v1 was the pre-hardening layout without the length/CRC frame; rejected
// explicitly (a checkpoint is cheap to regenerate, unlike a guessed parse).
constexpr uint32_t kCkptVersion = 2;
}  // namespace

void CuldaTrainer::SaveCheckpoint(std::ostream& out) const {
  CULDA_OBS_SPAN("ckpt/save");
  CULDA_OBS_TIMED("ckpt.save_s");
  CULDA_OBS_COUNT("ckpt.saves", 1);
  io::ContainerWriter w;
  w.WritePod(cfg_.num_topics);
  w.WritePod(cfg_.seed);
  w.WritePod(corpus_->num_tokens());
  w.WritePod(static_cast<uint64_t>(corpus_->num_docs()));
  w.WritePod(corpus_->vocab_size());
  w.WritePod(iteration_);
  w.WritePod(static_cast<uint32_t>(chunks_.size()));
  for (const auto& chunk : chunks_) {
    w.WritePod(static_cast<uint64_t>(chunk.z.size()));
    w.WriteSpan(std::span<const uint16_t>(chunk.z));
  }
  w.Finish(out, kCkptMagic, kCkptVersion);
  CULDA_CHECK_MSG(out.good(), "failed writing checkpoint");
}

void CuldaTrainer::RestoreCheckpoint(std::istream& in) {
  CULDA_OBS_SPAN("ckpt/restore");
  CULDA_OBS_TIMED("ckpt.restore_s");
  CULDA_OBS_COUNT("ckpt.restores", 1);
  // Version, length, and CRC are verified before any field is parsed
  // (bounded reads; a hostile header cannot OOM), and the trainer is mutated
  // only after the whole payload validates — a failed restore leaves it
  // fully usable.
  const std::string payload =
      io::ReadContainer(in, kCkptMagic, kCkptVersion, "checkpoint");
  io::ByteReader r(payload, "checkpoint");

  CULDA_CHECK_MSG(r.ReadPod<uint32_t>() == cfg_.num_topics,
                  "checkpoint K differs from trainer config");
  CULDA_CHECK_MSG(r.ReadPod<uint64_t>() == cfg_.seed,
                  "checkpoint seed differs from trainer config");
  CULDA_CHECK_MSG(r.ReadPod<uint64_t>() == corpus_->num_tokens(),
                  "checkpoint was taken on a different corpus (tokens)");
  CULDA_CHECK_MSG(r.ReadPod<uint64_t>() == corpus_->num_docs(),
                  "checkpoint was taken on a different corpus (docs)");
  CULDA_CHECK_MSG(r.ReadPod<uint32_t>() == corpus_->vocab_size(),
                  "checkpoint was taken on a different corpus (vocab)");
  const uint32_t iteration = r.ReadPod<uint32_t>();
  const uint32_t num_chunks = r.ReadPod<uint32_t>();
  // Each chunk contributes at least its u64 length to the payload, so the
  // remaining bytes bound the plausible chunk count before PartitionByTokens
  // allocates num_chunks specs.
  CULDA_CHECK_MSG(num_chunks >= 1 &&
                      num_chunks <= r.remaining() / sizeof(uint64_t) &&
                      num_chunks <= corpus_->num_docs(),
                  "checkpoint chunk count " << num_chunks << " implausible");

  // The checkpoint's chunking may differ (different G or M): read all z in
  // checkpoint-chunk order into a corpus-global array keyed by token id,
  // then scatter into this trainer's chunks. Chunk specs are contiguous in
  // document (hence token) order in both layouts, but the *word-first*
  // permutation inside differs, so routing via token_global is required.
  std::vector<uint16_t> z_global(corpus_->num_tokens());
  {
    // SaveCheckpoint stores z in the word-first order of *its* chunking;
    // chunking is a pure function of (corpus, num_chunks), so re-deriving
    // the writer's layouts recovers the token_global routing even when this
    // trainer uses a different G or M.
    const auto specs = corpus::PartitionByTokens(*corpus_, num_chunks);
    uint64_t covered = 0;
    for (uint32_t c_idx = 0; c_idx < num_chunks; ++c_idx) {
      const uint64_t n = r.ReadPod<uint64_t>();
      CULDA_CHECK_MSG(n <= corpus_->num_tokens() - covered,
                      "checkpoint declares more tokens than the corpus");
      const auto buf = r.ReadVector<uint16_t>(n);
      const auto layout =
          corpus::BuildWordFirstChunk(*corpus_, specs[c_idx]);
      CULDA_CHECK_MSG(layout.num_tokens() == n,
                      "checkpoint chunking mismatch");
      for (uint64_t t = 0; t < n; ++t) {
        CULDA_CHECK_MSG(buf[t] < cfg_.num_topics,
                        "checkpoint topic id " << buf[t] << " out of range");
        z_global[layout.token_global[t]] = buf[t];
      }
      covered += n;
    }
    CULDA_CHECK_MSG(covered == corpus_->num_tokens(),
                    "checkpoint does not cover the corpus");
    r.ExpectEnd();
  }

  for (auto& chunk : chunks_) {
    for (uint64_t t = 0; t < chunk.z.size(); ++t) {
      chunk.z[t] = z_global[chunk.layout.token_global[t]];
    }
  }
  iteration_ = iteration;
  RebuildCountsFromZ();
}

void CuldaTrainer::SaveCheckpointToFile(const std::string& path) const {
  io::AtomicWriteFile(
      path, [&](std::ostream& out) { SaveCheckpoint(out); },
      /*keep_previous=*/true);
}

std::string CuldaTrainer::RestoreCheckpointFromFile(const std::string& path) {
  std::string first_error;
  if (io::FileExists(path)) {
    try {
      std::ifstream in(path, std::ios::binary);
      CULDA_CHECK_MSG(in.good(), "cannot open checkpoint '" << path << "'");
      RestoreCheckpoint(in);
      return path;
    } catch (const Error& e) {
      first_error = e.what();
    }
  } else {
    first_error = "checkpoint '" + path + "' does not exist";
  }

  const std::string prev = path + ".prev";
  CULDA_CHECK_MSG(io::FileExists(prev),
                  "cannot resume: " << first_error
                                    << " (and no last-good checkpoint '"
                                    << prev << "' to fall back to)");
  CULDA_LOG(Warn) << "checkpoint '" << path << "' unusable (" << first_error
                  << "); falling back to last-good '" << prev << "'";
  std::ifstream in(prev, std::ios::binary);
  CULDA_CHECK_MSG(in.good(), "cannot open checkpoint '" << prev << "'");
  RestoreCheckpoint(in);
  return prev;
}

}  // namespace culda::core
