#include "core/model.hpp"

#include "corpus/corpus.hpp"

namespace culda::core {

void GatheredModel::Validate(const corpus::Corpus& corpus) const {
  CULDA_CHECK(theta.rows() == corpus.num_docs());
  CULDA_CHECK(vocab_size == corpus.vocab_size());
  theta.Validate();

  // Σ_k θ_dk = len_d for every document.
  for (size_t d = 0; d < theta.rows(); ++d) {
    int64_t sum = 0;
    for (const int32_t c : theta.RowValues(d)) {
      CULDA_CHECK_MSG(c > 0, "θ stores a non-positive count");
      sum += c;
    }
    CULDA_CHECK_MSG(sum == static_cast<int64_t>(corpus.DocLength(d)),
                    "θ row " << d << " sums to " << sum << ", expected "
                             << corpus.DocLength(d));
  }

  // Σ_v φ_kv = n_k and ΣΣ φ = total token count.
  CULDA_CHECK(nk.size() == num_topics);
  uint64_t grand = 0;
  for (uint32_t k = 0; k < num_topics; ++k) {
    uint64_t sum = 0;
    for (const uint16_t c : phi.Row(k)) sum += c;
    CULDA_CHECK_MSG(sum == static_cast<uint64_t>(nk[k]),
                    "n_k[" << k << "] = " << nk[k] << " but φ row sums to "
                           << sum);
    grand += sum;
  }
  CULDA_CHECK_MSG(grand == corpus.num_tokens(),
                  "φ counts " << grand << " tokens, corpus has "
                              << corpus.num_tokens());
}

}  // namespace culda::core
