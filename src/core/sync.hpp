// Model synchronization across GPUs (Section 5.2, Figure 4).
//
// After each iteration every GPU holds a φ replica counting only its own
// chunks' tokens; the global φ is their element-wise sum. CuLDA performs the
// sum GPU-side as a log(G) pairwise reduce tree followed by a broadcast —
// "the CPU is slower than GPUs in terms of matrix adding". The CPU-side
// alternative the paper rejects is kept as an ablation mode (DESIGN A5).
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/model.hpp"
#include "gpusim/fabric.hpp"
#include "gpusim/multi_gpu.hpp"

namespace culda::core {

enum class SyncMode {
  kGpuTree,  ///< the paper's reduce+broadcast tree (Figure 4)
  kCpuSum,   ///< ship all replicas to the CPU, add there, ship back
};

struct SyncStats {
  double seconds = 0;        ///< group-time cost of this synchronization
  uint64_t peer_bytes = 0;   ///< bytes moved GPU↔GPU
  uint64_t host_bytes = 0;   ///< bytes moved over the host link (kCpuSum)
  int reduce_rounds = 0;
};

/// Synchronizes the φ replicas: on return, every replica holds the global
/// element-wise sum (n_k is NOT recomputed here — run the compute_nk kernel
/// after, which the trainer overlaps with the θ update).
/// `replicas.size()` must equal `group.size()`.
SyncStats SynchronizePhi(gpusim::DeviceGroup& group, const CuldaConfig& cfg,
                         std::vector<PhiReplica>& replicas,
                         SyncMode mode = SyncMode::kGpuTree);

/// Extension (the paper's "comparable or better than distributed systems"
/// thesis, made quantitative): hierarchical φ synchronization across
/// `num_nodes` machines, each holding `group.size()` GPUs. Per iteration:
///   1. intra-node reduce tree over the local PCIe/NVLink (as above),
///   2. inter-node all-reduce of the node sums over `network`
///      (ring-style: 2·(N−1)/N of the model in and out of every node),
///   3. intra-node broadcast.
/// `node_replicas[n]` holds node n's GPU replicas; every group is assumed
/// identical (the paper's homogeneous platforms). Returns the sync time —
/// this is the quantity that makes multi-node LDA unattractive versus one
/// multi-GPU box at 10 Gb/s Ethernet.
struct MultiNodeSyncStats {
  double seconds = 0;
  double intra_node_s = 0;
  double inter_node_s = 0;
  uint64_t network_bytes = 0;
};

MultiNodeSyncStats SynchronizePhiAcrossNodes(
    std::vector<gpusim::DeviceGroup*> node_groups, const CuldaConfig& cfg,
    std::vector<std::vector<PhiReplica>*> node_replicas,
    const gpusim::LinkSpec& network);

/// Fabric-routed variant: the inter-node exchange runs as an explicit ring
/// all-reduce — 2·(N−1) steps, each node forwarding a 1/N model segment to
/// its successor — billed segment by segment through `fabric`, so per-link
/// LinkSpec overrides, ring store-and-forward routing, and link contention
/// all land in the returned time. Node clocks are read and advanced in
/// cluster-absolute time (callers keep all groups on one shared timeline).
/// `fabric.size()` must equal `node_groups.size()`.
MultiNodeSyncStats SynchronizePhiAcrossNodes(
    std::vector<gpusim::DeviceGroup*> node_groups, const CuldaConfig& cfg,
    std::vector<std::vector<PhiReplica>*> node_replicas,
    gpusim::Fabric& fabric);

}  // namespace culda::core
