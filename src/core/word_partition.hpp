// WordPartitionTrainer — the partition policy Section 4 REJECTS,
// implemented so the rejection is a measurement rather than an argument
// (DESIGN.md ablation A4).
//
// Under partition-by-word each GPU owns a contiguous vocabulary range: its
// φ columns are exclusive (φ needs NO synchronization), but every GPU's
// tokens touch arbitrary documents, so the document–topic matrix θ exists
// as G partial replicas whose sum must be reduced and re-broadcast every
// iteration — plus a (cheap) all-reduce of the per-topic totals n_k. Since
// D is orders of magnitude larger than V on real corpora, this moves far
// more bytes than CuLDA's φ sync.
//
// The sampler, kernels, RNG keying, and model state are shared with
// CuldaTrainer, so the two policies produce BIT-IDENTICAL models — the
// comparison isolates pure synchronization cost.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/kernels.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "corpus/corpus.hpp"
#include "gpusim/multi_gpu.hpp"

namespace culda::core {

class WordPartitionTrainer {
 public:
  /// Single-machine, one word-range chunk per GPU (the WS1 analogue; a
  /// streaming variant would only make the policy look worse).
  WordPartitionTrainer(const corpus::Corpus& corpus, CuldaConfig cfg,
                       std::vector<gpusim::DeviceSpec> gpus,
                       gpusim::LinkSpec peer_link = gpusim::Pcie3x16());

  uint32_t num_gpus() const { return static_cast<uint32_t>(group_.size()); }
  const CuldaConfig& config() const { return cfg_; }
  gpusim::DeviceGroup& group() { return group_; }

  IterationStats Step();
  std::vector<IterationStats> Train(uint32_t iterations);

  GatheredModel Gather() const;
  double LogLikelihoodPerToken() const;

  /// Bytes moved for the θ reduce+broadcast in the last Step() — the
  /// quantity A4 compares against CuldaTrainer's φ sync volume.
  uint64_t last_theta_sync_bytes() const { return last_theta_sync_bytes_; }

 private:
  void RebuildCountsFromZ();
  /// Sums the partial θ replicas into the global θ, installs it on every
  /// GPU, and bills the reduce/broadcast transfers. Returns sync seconds.
  double SynchronizeTheta();
  void SynchronizeNk();

  const corpus::Corpus* corpus_;
  CuldaConfig cfg_;
  gpusim::DeviceGroup group_;
  std::vector<corpus::WordRange> ranges_;
  std::vector<ChunkState> chunks_;   ///< one word-range chunk per GPU;
                                     ///< chunk.theta holds the GLOBAL θ
                                     ///< between iterations
  std::vector<PhiReplica> phi_;      ///< full-shape, only owned columns used
  std::vector<PhiReplica> accum_;    ///< φ double buffer (local columns)
  ThetaMatrix theta_global_;
  uint32_t iteration_ = 0;
  uint64_t last_theta_sync_bytes_ = 0;
};

}  // namespace culda::core
