#include "core/inference.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/philox.hpp"
#include "util/simd.hpp"

namespace culda::core {

InferenceEngine::InferenceEngine(const GatheredModel& model, CuldaConfig cfg,
                                 InferenceOptions options)
    : model_(&model), cfg_(std::move(cfg)), options_(options) {
  cfg_.Validate();
  CULDA_CHECK_MSG(model.num_topics == cfg_.num_topics,
                  "model K (" << model.num_topics
                              << ") differs from config K ("
                              << cfg_.num_topics << ")");
  topic_denom_.resize(model.num_topics);
  inv_denom_.resize(model.num_topics);
  for (uint32_t k = 0; k < model.num_topics; ++k) {
    topic_denom_[k] = static_cast<double>(model.nk[k]) +
                      cfg_.beta * model.vocab_size;
    inv_denom_[k] = 1.0 / topic_denom_[k];
  }
  BuildSmoothingTree();
  BuildWordColumns();
  if (options_.sampler == InferSampler::kAliasMH) {
    CULDA_CHECK_MSG(options_.mh_cycles >= 1,
                    "kAliasMH needs at least one MH cycle per token");
    BuildAliasTables();
  } else if (options_.sampler == InferSampler::kDenseReference) {
    // Contiguous transpose of φ so the O(K) column scans walk adjacent
    // memory (and the SIMD zero-run skip applies). Same uint16 values read
    // in the same k order as the row-major reads they replace.
    const uint32_t k_topics = model.num_topics;
    phi_t_.resize(static_cast<size_t>(model.vocab_size) * k_topics);
    for (uint32_t k = 0; k < k_topics; ++k) {
      const auto row = model.phi.Row(k);
      for (uint32_t v = 0; v < model.vocab_size; ++v) {
        phi_t_[static_cast<size_t>(v) * k_topics + k] = row[v];
      }
    }
  }

  primary_tables_.phi = model_->phi.flat().data();
  primary_tables_.col_ptr = col_ptr_.data();
  primary_tables_.col_topic = col_topic_.data();
  primary_tables_.col_prefix = col_prefix_.data();
  primary_tables_.word_mass = word_mass_.data();
  primary_tables_.mh_word_mass = mh_word_mass_.data();
  primary_tables_.mh_prob = mh_prob_.data();
  primary_tables_.mh_alias = mh_alias_.data();
  primary_tables_.beta_alias = &beta_alias_;
  primary_tables_.alpha_alias = &alpha_alias_;
  primary_tables_.phi_t = phi_t_.data();
  primary_tables_.smooth_tree = smooth_tree_;
  BuildReplicas();
}

void InferenceEngine::BuildReplicas() {
  ThreadPool* pool = options_.pool;
  if (!options_.numa_replicate || pool == nullptr ||
      pool->socket_count() <= 1) {
    return;
  }
  replicas_.resize(pool->socket_count());
  // Each socket's copy is made by (one of) its own workers, so the vector
  // pages are first-touched — and with pinned workers, physically placed —
  // on that socket's NUMA node. Socket 0 keeps reading the primary tables,
  // which this builder thread already touched.
  pool->ForEachSocket([&](size_t s) {
    if (s == 0) return;
    auto rep = std::make_unique<Replica>();
    const auto phi_flat = model_->phi.flat();
    rep->phi.assign(phi_flat.begin(), phi_flat.end());
    rep->col_ptr = col_ptr_;
    rep->col_topic = col_topic_;
    rep->col_prefix = col_prefix_;
    rep->word_mass = word_mass_;
    rep->mh_word_mass = mh_word_mass_;
    rep->mh_prob = mh_prob_;
    rep->mh_alias = mh_alias_;
    rep->beta_alias = beta_alias_;
    rep->alpha_alias = alpha_alias_;
    rep->phi_t = phi_t_;
    rep->smooth_storage = smooth_storage_;

    Tables& t = rep->tables;
    t.phi = rep->phi.data();
    t.col_ptr = rep->col_ptr.data();
    t.col_topic = rep->col_topic.data();
    t.col_prefix = rep->col_prefix.data();
    t.word_mass = rep->word_mass.data();
    t.mh_word_mass = rep->mh_word_mass.data();
    t.mh_prob = rep->mh_prob.data();
    t.mh_alias = rep->mh_alias.data();
    t.beta_alias = &rep->beta_alias;
    t.alpha_alias = &rep->alpha_alias;
    t.phi_t = rep->phi_t.data();
    // Binding a view computes level offsets only — the copied storage
    // already holds the built tree values.
    t.smooth_tree = IndexTreeView(rep->smooth_storage, model_->num_topics,
                                  cfg_.tree_fanout);
    replicas_[s] = std::move(rep);
  });
}

const InferenceEngine::Tables& InferenceEngine::CurrentTables() const {
  if (replicas_.empty()) return primary_tables_;
  const Replica* rep =
      replicas_[static_cast<size_t>(options_.pool->current_socket())].get();
  return rep != nullptr ? rep->tables : primary_tables_;
}

void InferenceEngine::BuildSmoothingTree() {
  const uint32_t k_topics = model_->num_topics;
  smooth_storage_.resize(
      IndexTreeView::StorageSlots(k_topics, cfg_.tree_fanout));
  smooth_tree_ = IndexTreeView(smooth_storage_, k_topics, cfg_.tree_fanout);
  std::vector<float> terms(k_topics);
  smooth_mass_ = 0;
  if (cfg_.asymmetric_alpha.empty()) {
    // Symmetric prior: p*(k) = (αβ)·inv_denom[k] is one scale-and-narrow
    // batch. Left-to-right `α·β·inv` is (α·β)·inv, so hoisting the product
    // keeps the doubles bitwise equal to the per-k expression below.
    const double s = cfg_.EffectiveAlpha() * cfg_.beta;
    for (uint32_t k = 0; k < k_topics; ++k) smooth_mass_ += s * inv_denom_[k];
    simd::ScaleF64ToF32(inv_denom_.data(), s, terms.data(), k_topics);
  } else {
    for (uint32_t k = 0; k < k_topics; ++k) {
      const double s_k = cfg_.AlphaOf(k) * cfg_.beta * inv_denom_[k];
      smooth_mass_ += s_k;
      terms[k] = static_cast<float>(s_k);
    }
  }
  smooth_tree_.Build(terms);
}

void InferenceEngine::BuildWordColumns() {
  const uint32_t k_topics = model_->num_topics;
  const uint32_t v_words = model_->vocab_size;

  // Counting-sort transpose of the dense φ: pass 1 sizes the columns
  // (integer nonzero counting — exact, so the SIMD variant is trivially
  // identical), pass 2 (k ascending) appends by zero-run skipping each row,
  // so each column's topics come out sorted.
  std::vector<int32_t> nnz(v_words, 0);
  for (uint32_t k = 0; k < k_topics; ++k) {
    simd::AccumulateNonZeroU16(model_->phi.Row(k).data(), nnz.data(),
                               v_words);
  }
  col_ptr_.assign(v_words + 1, 0);
  for (uint32_t v = 0; v < v_words; ++v) {
    col_ptr_[v + 1] = col_ptr_[v] + static_cast<uint64_t>(nnz[v]);
  }

  col_topic_.resize(col_ptr_[v_words]);
  std::vector<uint64_t> cursor(col_ptr_.begin(), col_ptr_.end() - 1);
  for (uint32_t k = 0; k < k_topics; ++k) {
    const uint16_t* row = model_->phi.Row(k).data();
    for (size_t v = simd::NextNonZeroU16(row, v_words, 0); v < v_words;
         v = simd::NextNonZeroU16(row, v_words, v + 1)) {
      col_topic_[cursor[v]++] = static_cast<uint16_t>(k);
    }
  }

  // The in-column prefix feeds only the exact samplers' W binary search;
  // kAliasMH replaces it with per-column alias cells (BuildAliasTables), so
  // skip the allocation there. word_mass_ is always needed — it is the
  // sparse/MH scoring W mass.
  const bool need_prefix = options_.sampler != InferSampler::kAliasMH;
  col_prefix_.resize(need_prefix ? col_topic_.size() : 0);
  word_mass_.assign(v_words, 0.0);
  for (uint32_t v = 0; v < v_words; ++v) {
    double acc = 0;
    for (uint64_t j = col_ptr_[v]; j < col_ptr_[v + 1]; ++j) {
      const uint32_t k = col_topic_[j];
      acc += WordTerm(k, model_->phi(k, v));
      if (need_prefix) col_prefix_[j] = acc;
    }
    word_mass_[v] = acc;
  }
}

void InferenceEngine::BuildAliasTables() {
  const uint32_t k_topics = model_->num_topics;
  const uint32_t v_words = model_->vocab_size;
  alpha_sum_ = cfg_.AlphaSum();

  // Shared smoothing branch of the word proposal: β·inv_denom[k], drawn
  // through one alias over inv_denom (the β factor cancels in the draw).
  std::vector<float> weights(k_topics);
  beta_mass_ = 0;
  for (uint32_t k = 0; k < k_topics; ++k) {
    beta_mass_ += cfg_.beta * inv_denom_[k];
    weights[k] = static_cast<float>(inv_denom_[k]);
  }
  beta_alias_.Build(weights);

  // Doc-proposal prior branch: uniform when symmetric (no table needed —
  // a constant-weight alias is just NextBelow(K)), an α_k alias otherwise.
  if (!cfg_.asymmetric_alpha.empty()) {
    for (uint32_t k = 0; k < k_topics; ++k) {
      weights[k] = static_cast<float>(cfg_.AlphaOf(k));
    }
    alpha_alias_.Build(weights);
  }

  // φ-sparse branch of the word proposal: per-word alias cells over
  // φ_kv·inv_denom[k], packed into two flat arrays sharing the CSC column
  // layout. Serving never mutates φ, so — unlike the trainer's stale-table
  // construction — these proposals are exact for the engine's lifetime.
  mh_word_mass_.assign(v_words, 0.0);
  mh_prob_.resize(col_topic_.size());
  mh_alias_.resize(col_topic_.size());
  AliasBuildScratch scratch;
  std::vector<float> col_w;
  for (uint32_t v = 0; v < v_words; ++v) {
    const uint64_t begin = col_ptr_[v];
    const uint64_t len = col_ptr_[v + 1] - begin;
    if (len == 0) continue;  // all-zero column: the β branch covers it
    col_w.resize(len);
    for (uint64_t j = 0; j < len; ++j) {
      const uint32_t k = col_topic_[begin + j];
      col_w[j] = static_cast<float>(static_cast<double>(model_->phi(k, v)) *
                                    inv_denom_[k]);
    }
    mh_word_mass_[v] = BuildAliasInto(
        col_w, std::span<float>(mh_prob_.data() + begin, len),
        std::span<uint16_t>(mh_alias_.data() + begin, len), scratch);
  }
}

double InferenceEngine::WordGivenTopic(uint32_t word, uint32_t k) const {
  CULDA_CHECK(word < model_->vocab_size && k < model_->num_topics);
  return (static_cast<double>(model_->phi(k, word)) + cfg_.beta) /
         topic_denom_[k];
}

double InferenceEngine::WordMass(uint32_t word) const {
  CULDA_CHECK(word < model_->vocab_size);
  return word_mass_[word];
}

void InferenceEngine::EnsureScratch(Scratch& s) const {
  if (s.count.size() != model_->num_topics) {
    s.count.assign(model_->num_topics, 0);
    s.nz.clear();
  }
}

namespace {

/// Sorted-insert / sorted-erase maintenance of the nonzero-topic list; the
/// ascending order is load-bearing — every bucket sum iterates it so the
/// float association matches the dense reference's k-ascending scan.
inline void IncCount(std::vector<int32_t>& count, std::vector<uint32_t>& nz,
                     uint32_t k) {
  if (count[k]++ == 0) {
    nz.insert(std::lower_bound(nz.begin(), nz.end(), k), k);
  }
}

inline void DecCount(std::vector<int32_t>& count, std::vector<uint32_t>& nz,
                     uint32_t k) {
  if (--count[k] == 0) {
    nz.erase(std::lower_bound(nz.begin(), nz.end(), k));
  }
}

}  // namespace

void InferenceEngine::BucketMasses(uint32_t word, const Scratch& s,
                                   const Tables& t, double* q,
                                   double* w) const {
  if (options_.sampler != InferSampler::kDenseReference) {
    // Sparse bucket mode — and kAliasMH scoring, which uses the same exact
    // masses (MH changes how assignments are *sampled*, not how they are
    // scored).
    double acc = 0;
    for (const uint32_t k : s.nz) {
      acc += DocTerm(k, s.count[k], PhiAt(t, k, word));
    }
    *q = acc;
    *w = t.word_mass[word];
    return;
  }
  // Dense reference: one full pass down the contiguous φ-transpose column,
  // both masses at once. Q and W accumulate separately, each in ascending-k
  // order over exactly the terms the scalar loop added, so skipping the
  // zero runs of either cursor cannot change a bit.
  double q_acc = 0, w_acc = 0;
  const size_t k_topics = model_->num_topics;
  const uint16_t* col = t.phi_t + static_cast<size_t>(word) * k_topics;
  const int32_t* cnt = s.count.data();
  size_t kc = simd::NextNonZeroI32(cnt, k_topics, 0);
  size_t kf = simd::NextNonZeroU16(col, k_topics, 0);
  while (kc < k_topics || kf < k_topics) {
    if (kc <= kf) {
      q_acc += DocTerm(static_cast<uint32_t>(kc), cnt[kc], col[kc]);
      if (kc == kf) {
        w_acc += WordTerm(static_cast<uint32_t>(kf), col[kf]);
        kf = simd::NextNonZeroU16(col, k_topics, kf + 1);
      }
      kc = simd::NextNonZeroI32(cnt, k_topics, kc + 1);
    } else {
      w_acc += WordTerm(static_cast<uint32_t>(kf), col[kf]);
      kf = simd::NextNonZeroU16(col, k_topics, kf + 1);
    }
  }
  *q = q_acc;
  *w = w_acc;
}

uint32_t InferenceEngine::SampleTopic(uint32_t word, double q, double w,
                                      double u, const Scratch& s,
                                      const Tables& t) const {
  const bool sparse = options_.sampler != InferSampler::kDenseReference;
  if (u < q) {
    // Doc bucket: rescan the same DocTerm sequence until the running prefix
    // exceeds u. The final prefix equals q exactly (same terms, same
    // order), so the scan always terminates inside the loop; the clamp is a
    // belt for impossible round-off.
    double acc = 0;
    if (sparse) {
      for (const uint32_t k : s.nz) {
        acc += DocTerm(k, s.count[k], PhiAt(t, k, word));
        if (acc > u) return k;
      }
      return s.nz.back();
    }
    const size_t k_topics = model_->num_topics;
    const uint16_t* col = t.phi_t + static_cast<size_t>(word) * k_topics;
    const int32_t* cnt = s.count.data();
    uint32_t last = 0;
    for (size_t k = simd::NextNonZeroI32(cnt, k_topics, 0); k < k_topics;
         k = simd::NextNonZeroI32(cnt, k_topics, k + 1)) {
      acc += DocTerm(static_cast<uint32_t>(k), cnt[k], col[k]);
      if (acc > u) return static_cast<uint32_t>(k);
      last = static_cast<uint32_t>(k);
    }
    return last;
  }
  const double uw = u - q;
  if (uw < w) {
    // Word bucket. The sparse mode binary-searches the precomputed column
    // prefix; the dense mode rescans the same WordTerm sequence linearly —
    // the prefix values are bitwise the same, so both find the same topic.
    if (sparse) {
      const uint64_t begin = t.col_ptr[word];
      const uint64_t len = t.col_ptr[word + 1] - begin;
      const std::span<const double> prefix(t.col_prefix + begin, len);
      const size_t j = static_cast<size_t>(
          std::upper_bound(prefix.begin(), prefix.end(), uw) -
          prefix.begin());
      return t.col_topic[begin + std::min(j, static_cast<size_t>(len - 1))];
    }
    const size_t k_topics = model_->num_topics;
    const uint16_t* col = t.phi_t + static_cast<size_t>(word) * k_topics;
    double acc = 0;
    uint32_t last = 0;
    for (size_t k = simd::NextNonZeroU16(col, k_topics, 0); k < k_topics;
         k = simd::NextNonZeroU16(col, k_topics, k + 1)) {
      acc += WordTerm(static_cast<uint32_t>(k), col[k]);
      if (acc > uw) return static_cast<uint32_t>(k);
      last = static_cast<uint32_t>(k);
    }
    return last;
  }
  // Smoothing bucket: the prebuilt F-ary tree over the cached p*(k) terms
  // (shared by both modes; Search clamps float round-off to K-1).
  const double us = uw - w;
  return static_cast<uint32_t>(t.smooth_tree.Search(static_cast<float>(us)));
}

void InferenceEngine::FoldIn(std::span<const uint32_t> words,
                             uint32_t iterations, uint64_t seed,
                             Scratch& s) const {
  EnsureScratch(s);
  for (const uint32_t k : s.nz) s.count[k] = 0;  // O(nnz) reset
  s.nz.clear();
  s.z.clear();

  for (const uint32_t w : words) {
    CULDA_CHECK_MSG(w < model_->vocab_size,
                    "word id " << w << " not in the trained vocabulary");
  }
  if (words.empty()) return;

  // One counter-advanced stream per document (stream id 0 of `seed`):
  // len NextBelow draws for the init, then the per-token sweep draws
  // (exact modes: one NextDouble; kAliasMH: the proposal-pair sequence).
  // Pinned by Inference.PinnedSamplingSequence.
  PhiloxStream rng(seed, 0);
  s.z.resize(words.size());
  // Resolved once per document: the socket a document runs on is fixed for
  // its whole fold-in (ThreadPool shard bodies never migrate mid-shard).
  const Tables& t = CurrentTables();

  if (options_.sampler == InferSampler::kAliasMH) {
    // The MH path keeps only the dense counts hot during sweeps, logging
    // first-touches instead of maintaining the sorted nz list per token;
    // the list is compacted once here at the end for the result/scoring
    // contract (nz ascending, counts positive).
    s.touched.clear();
    for (size_t i = 0; i < words.size(); ++i) {
      const uint32_t k = rng.NextBelow(model_->num_topics);
      s.z[i] = static_cast<uint16_t>(k);
      if (s.count[k]++ == 0) s.touched.push_back(k);
    }
    FoldInMh(words, iterations, rng, s, t);
    std::sort(s.touched.begin(), s.touched.end());
    for (const uint32_t k : s.touched) {
      if (s.count[k] > 0 && (s.nz.empty() || s.nz.back() != k)) {
        s.nz.push_back(k);
      }
    }
    return;
  }

  for (size_t i = 0; i < words.size(); ++i) {
    const uint32_t k = rng.NextBelow(model_->num_topics);
    s.z[i] = static_cast<uint16_t>(k);
    IncCount(s.count, s.nz, k);
  }
  for (uint32_t it = 1; it <= iterations; ++it) {
    for (size_t i = 0; i < words.size(); ++i) {
      const uint32_t v = words[i];
      DecCount(s.count, s.nz, s.z[i]);
      double q, w;
      BucketMasses(v, s, t, &q, &w);
      const double u = rng.NextDouble() * ((q + w) + smooth_mass_);
      const uint32_t k = SampleTopic(v, q, w, u, s, t);
      s.z[i] = static_cast<uint16_t>(k);
      IncCount(s.count, s.nz, k);
    }
  }
}

void InferenceEngine::FoldInMh(std::span<const uint32_t> words,
                               uint32_t iterations, PhiloxStream& rng,
                               Scratch& s, const Tables& t) const {
  const uint32_t k_topics = model_->num_topics;
  const size_t len = words.size();
  // Doc-proposal mixture mass: the len−1 *other* tokens plus the α prior.
  // With the current token excluded the token branch is never taken for a
  // one-token document (len1 == 0 and pick ≥ 0), so the prior branch covers
  // it — no special case.
  const double len1 = static_cast<double>(len - 1);
  const bool asym = !cfg_.asymmetric_alpha.empty();
  const double beta = cfg_.beta;
  // Symmetric prior hoisted out of the acceptance ratio (AlphaOf divides).
  const double* alpha_vec = asym ? cfg_.asymmetric_alpha.data() : nullptr;
  const double alpha_sym = asym ? 0.0 : cfg_.EffectiveAlpha();
  const auto alpha_at = [&](uint32_t k) {
    return alpha_vec != nullptr ? alpha_vec[k] : alpha_sym;
  };

  for (uint32_t it = 1; it <= iterations; ++it) {
    for (size_t i = 0; i < len; ++i) {
      const uint32_t v = words[i];
      uint32_t cur = s.z[i];
      --s.count[cur];  // token i excluded for the whole proposal chain

      const uint64_t begin = t.col_ptr[v];
      const uint64_t clen = t.col_ptr[v + 1] - begin;
      const std::span<const float> cprob(t.mh_prob + begin, clen);
      const std::span<const uint16_t> calias(t.mh_alias + begin, clen);
      const double mv = t.mh_word_mass[v];
      const double wmass = mv + beta_mass_;
      // Word-likelihood term of the current topic, kept across the proposal
      // chain so a rejected proposal costs one φ lookup, not two. Coins and
      // mixture picks are 24-bit floats (coins drawn lazily — prop == cur
      // is a no-op either way); like NextBelow's 2^-32 mapping bias, the
      // 2^-24 granularity is far below sampling noise.
      double cur_term =
          (static_cast<double>(PhiAt(t, cur, v)) + beta) * inv_denom_[cur];

      for (uint32_t cycle = 0; cycle < options_.mh_cycles; ++cycle) {
        // Doc proposal q_d(k) ∝ n_dk^{¬i} + α_k: pick another token's
        // current topic (counts branch) or draw from the prior. Acceptance
        // keeps only the word-likelihood factor — the doc factor cancels
        // against the proposal.
        {
          uint32_t prop;
          const double pick =
              static_cast<double>(rng.NextFloat()) * (len1 + alpha_sum_);
          if (pick < len1) {
            uint32_t j = rng.NextBelow(static_cast<uint32_t>(len - 1));
            if (j >= i) ++j;  // uniform over the len−1 tokens ≠ i
            prop = s.z[j];
          } else if (asym) {
            prop = t.alpha_alias->Sample(rng.NextBelow(k_topics),
                                         rng.NextFloat());
          } else {
            prop = rng.NextBelow(k_topics);
          }
          if (prop != cur) {
            const double num =
                (static_cast<double>(PhiAt(t, prop, v)) + beta) *
                inv_denom_[prop];
            if (static_cast<double>(rng.NextFloat()) * cur_term < num) {
              cur = prop;
              cur_term = num;
            }
          }
        }
        // Word proposal q_w(k) ∝ (φ_kv + β)·inv_denom[k]: φ-sparse alias
        // column or the shared β-smoothing alias. Acceptance keeps only the
        // doc factor n^{¬i} + α.
        {
          uint32_t prop;
          const double pick = static_cast<double>(rng.NextFloat()) * wmass;
          if (pick < mv) {
            prop = t.col_topic[begin + SampleAlias(cprob, calias,
                                                   rng.NextBelow(
                                                       static_cast<uint32_t>(
                                                           clen)),
                                                   rng.NextFloat())];
          } else {
            prop = t.beta_alias->Sample(rng.NextBelow(k_topics),
                                        rng.NextFloat());
          }
          if (prop != cur) {
            const double num =
                static_cast<double>(s.count[prop]) + alpha_at(prop);
            const double den =
                static_cast<double>(s.count[cur]) + alpha_at(cur);
            if (static_cast<double>(rng.NextFloat()) * den < num) {
              cur = prop;
              cur_term = (static_cast<double>(PhiAt(t, cur, v)) + beta) *
                         inv_denom_[cur];
            }
          }
        }
      }

      s.z[i] = static_cast<uint16_t>(cur);
      if (s.count[cur]++ == 0) s.touched.push_back(cur);
    }
  }
}

InferenceResult InferenceEngine::ResultFromScratch(
    std::span<const uint32_t> words, const Scratch& s) const {
  InferenceResult result;
  result.topic_counts.assign(model_->num_topics, 0);
  result.tokens = words.size();
  result.assignments.assign(s.z.begin(), s.z.end());
  const double denom = static_cast<double>(words.size()) + cfg_.AlphaSum();
  for (const uint32_t k : s.nz) {
    result.topic_counts[k] = s.count[k];
    result.mixture.push_back(
        {k, s.count[k], (s.count[k] + cfg_.AlphaOf(k)) / denom});
  }
  // Smoothed mixture, largest first.
  std::sort(result.mixture.begin(), result.mixture.end(),
            [](const DocTopic& a, const DocTopic& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.topic < b.topic;
            });
  return result;
}

InferenceResult InferenceEngine::InferDocument(
    std::span<const uint32_t> words, uint32_t iterations,
    uint64_t seed) const {
  Scratch s;
  FoldIn(words, iterations, seed, s);
  return ResultFromScratch(words, s);
}

std::vector<InferenceResult> InferenceEngine::InferBatch(
    std::span<const std::vector<uint32_t>> docs, uint32_t iterations,
    std::span<const uint64_t> seeds) const {
  CULDA_CHECK_MSG(seeds.size() == docs.size(),
                  "InferBatch needs one seed per document (got "
                      << seeds.size() << " for " << docs.size() << ")");
  CULDA_OBS_SPAN("infer/batch");
  CULDA_OBS_TIMED("infer.batch_seconds");
  std::vector<InferenceResult> results(docs.size());
  ThreadPool* pool = options_.pool;
  const size_t slots = pool != nullptr ? pool->worker_count() + 1 : 1;
  std::vector<Scratch> scratch(slots);
  const auto body = [&](size_t i) {
    CULDA_OBS_TIMED("infer.doc_seconds");
    Scratch& s =
        scratch[pool != nullptr ? pool->current_worker_id() + 1 : 0];
    FoldIn(docs[i], iterations, seeds[i], s);
    results[i] = ResultFromScratch(docs[i], s);
  };
  if (pool != nullptr) {
    pool->ParallelFor(docs.size(), body);
  } else {
    for (size_t i = 0; i < docs.size(); ++i) body(i);
  }
  CULDA_OBS_COUNT("infer.batches", 1);
  CULDA_OBS_COUNT("infer.docs", docs.size());
  if (CULDA_OBS_ENABLED()) {
    uint64_t tokens = 0;
    for (const auto& r : results) tokens += r.tokens;
    CULDA_OBS_COUNT("infer.tokens", tokens);
  }
  return results;
}

std::vector<InferenceResult> InferenceEngine::InferBatch(
    std::span<const std::vector<uint32_t>> docs, uint32_t iterations,
    uint64_t seed) const {
  std::vector<uint64_t> seeds(docs.size());
  for (size_t i = 0; i < seeds.size(); ++i) seeds[i] = seed + i;
  return InferBatch(docs, iterations, seeds);
}

double InferenceEngine::DocumentCompletionPerplexity(
    const corpus::Corpus& heldout, uint32_t iterations,
    uint64_t seed) const {
  CULDA_CHECK(heldout.vocab_size() <= model_->vocab_size);
  CULDA_OBS_SPAN("infer/perplexity");
  CULDA_OBS_TIMED("infer.ppl_wall_s");

  // Per-document partials reduced in document order below: the value is
  // independent of the worker count (and of whether a pool is set at all).
  const size_t num_docs = heldout.num_docs();
  std::vector<double> partial(num_docs, 0.0);
  std::vector<uint64_t> scored(num_docs, 0);
  ThreadPool* pool = options_.pool;
  const size_t slots = pool != nullptr ? pool->worker_count() + 1 : 1;
  std::vector<Scratch> scratch(slots);
  const auto body = [&](size_t d) {
    CULDA_OBS_TIMED("infer.ppl_doc_seconds");
    const auto tokens = heldout.DocTokens(d);
    if (tokens.size() < 2) return;
    Scratch& s =
        scratch[pool != nullptr ? pool->current_worker_id() + 1 : 0];
    const size_t half = tokens.size() / 2;
    FoldIn(tokens.subspan(0, half), iterations, seed + d, s);
    const Tables& t = CurrentTables();
    const double denom = static_cast<double>(half) + cfg_.AlphaSum();
    double log_prob = 0;
    for (size_t i = half; i < tokens.size(); ++i) {
      double q, w;
      BucketMasses(tokens[i], s, t, &q, &w);
      // p(w | θ̂_d, φ̂) = (Q + W + S) / (half + Σα) — the same bucket sums
      // as sampling, so dense and sparse scoring agree bitwise too.
      log_prob += std::log(((q + w) + smooth_mass_) / denom);
    }
    partial[d] = log_prob;
    scored[d] = tokens.size() - half;
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_docs, body);
  } else {
    for (size_t d = 0; d < num_docs; ++d) body(d);
  }

  double log_prob = 0;
  uint64_t total_scored = 0;
  for (size_t d = 0; d < num_docs; ++d) {
    log_prob += partial[d];
    total_scored += scored[d];
  }
  CULDA_CHECK_MSG(total_scored > 0,
                  "held-out corpus has no scorable tokens");
  CULDA_OBS_COUNT("infer.tokens_scored", total_scored);
  return std::exp(-log_prob / static_cast<double>(total_scored));
}

}  // namespace culda::core
