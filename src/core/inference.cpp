#include "core/inference.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/philox.hpp"

namespace culda::core {

InferenceEngine::InferenceEngine(const GatheredModel& model, CuldaConfig cfg,
                                 InferenceOptions options)
    : model_(&model), cfg_(std::move(cfg)), options_(options) {
  cfg_.Validate();
  CULDA_CHECK_MSG(model.num_topics == cfg_.num_topics,
                  "model K (" << model.num_topics
                              << ") differs from config K ("
                              << cfg_.num_topics << ")");
  topic_denom_.resize(model.num_topics);
  inv_denom_.resize(model.num_topics);
  for (uint32_t k = 0; k < model.num_topics; ++k) {
    topic_denom_[k] = static_cast<double>(model.nk[k]) +
                      cfg_.beta * model.vocab_size;
    inv_denom_[k] = 1.0 / topic_denom_[k];
  }
  BuildSmoothingTree();
  BuildWordColumns();
}

void InferenceEngine::BuildSmoothingTree() {
  const uint32_t k_topics = model_->num_topics;
  smooth_storage_.resize(
      IndexTreeView::StorageSlots(k_topics, cfg_.tree_fanout));
  smooth_tree_ = IndexTreeView(smooth_storage_, k_topics, cfg_.tree_fanout);
  std::vector<float> terms(k_topics);
  smooth_mass_ = 0;
  for (uint32_t k = 0; k < k_topics; ++k) {
    const double s_k = cfg_.AlphaOf(k) * cfg_.beta * inv_denom_[k];
    smooth_mass_ += s_k;
    terms[k] = static_cast<float>(s_k);
  }
  smooth_tree_.Build(terms);
}

void InferenceEngine::BuildWordColumns() {
  const uint32_t k_topics = model_->num_topics;
  const uint32_t v_words = model_->vocab_size;

  // Counting-sort transpose of the dense φ: pass 1 sizes the columns,
  // pass 2 (k ascending) appends, so each column's topics come out sorted.
  col_ptr_.assign(v_words + 1, 0);
  for (uint32_t k = 0; k < k_topics; ++k) {
    const auto row = model_->phi.Row(k);
    for (uint32_t v = 0; v < v_words; ++v) {
      if (row[v] != 0) ++col_ptr_[v + 1];
    }
  }
  for (uint32_t v = 0; v < v_words; ++v) col_ptr_[v + 1] += col_ptr_[v];

  col_topic_.resize(col_ptr_[v_words]);
  std::vector<uint64_t> cursor(col_ptr_.begin(), col_ptr_.end() - 1);
  for (uint32_t k = 0; k < k_topics; ++k) {
    const auto row = model_->phi.Row(k);
    for (uint32_t v = 0; v < v_words; ++v) {
      if (row[v] != 0) col_topic_[cursor[v]++] = static_cast<uint16_t>(k);
    }
  }

  col_prefix_.resize(col_topic_.size());
  word_mass_.assign(v_words, 0.0);
  for (uint32_t v = 0; v < v_words; ++v) {
    double acc = 0;
    for (uint64_t j = col_ptr_[v]; j < col_ptr_[v + 1]; ++j) {
      const uint32_t k = col_topic_[j];
      acc += WordTerm(k, model_->phi(k, v));
      col_prefix_[j] = acc;
    }
    word_mass_[v] = acc;
  }
}

double InferenceEngine::WordGivenTopic(uint32_t word, uint32_t k) const {
  CULDA_CHECK(word < model_->vocab_size && k < model_->num_topics);
  return (static_cast<double>(model_->phi(k, word)) + cfg_.beta) /
         topic_denom_[k];
}

double InferenceEngine::WordMass(uint32_t word) const {
  CULDA_CHECK(word < model_->vocab_size);
  return word_mass_[word];
}

void InferenceEngine::EnsureScratch(Scratch& s) const {
  if (s.count.size() != model_->num_topics) {
    s.count.assign(model_->num_topics, 0);
    s.nz.clear();
  }
}

namespace {

/// Sorted-insert / sorted-erase maintenance of the nonzero-topic list; the
/// ascending order is load-bearing — every bucket sum iterates it so the
/// float association matches the dense reference's k-ascending scan.
inline void IncCount(std::vector<int32_t>& count, std::vector<uint32_t>& nz,
                     uint32_t k) {
  if (count[k]++ == 0) {
    nz.insert(std::lower_bound(nz.begin(), nz.end(), k), k);
  }
}

inline void DecCount(std::vector<int32_t>& count, std::vector<uint32_t>& nz,
                     uint32_t k) {
  if (--count[k] == 0) {
    nz.erase(std::lower_bound(nz.begin(), nz.end(), k));
  }
}

}  // namespace

void InferenceEngine::BucketMasses(uint32_t word, const Scratch& s,
                                   double* q, double* w) const {
  if (options_.sampler == InferSampler::kSparseBucket) {
    double acc = 0;
    for (const uint32_t k : s.nz) {
      acc += DocTerm(k, s.count[k], model_->phi(k, word));
    }
    *q = acc;
    *w = word_mass_[word];
    return;
  }
  // Dense reference: one full pass down the φ column, both masses at once.
  double q_acc = 0, w_acc = 0;
  const uint32_t k_topics = model_->num_topics;
  for (uint32_t k = 0; k < k_topics; ++k) {
    const uint16_t f = model_->phi(k, word);
    const int32_t c = s.count[k];
    if (c != 0) q_acc += DocTerm(k, c, f);
    if (f != 0) w_acc += WordTerm(k, f);
  }
  *q = q_acc;
  *w = w_acc;
}

uint32_t InferenceEngine::SampleTopic(uint32_t word, double q, double w,
                                      double u, const Scratch& s) const {
  const bool sparse = options_.sampler == InferSampler::kSparseBucket;
  if (u < q) {
    // Doc bucket: rescan the same DocTerm sequence until the running prefix
    // exceeds u. The final prefix equals q exactly (same terms, same
    // order), so the scan always terminates inside the loop; the clamp is a
    // belt for impossible round-off.
    double acc = 0;
    if (sparse) {
      for (const uint32_t k : s.nz) {
        acc += DocTerm(k, s.count[k], model_->phi(k, word));
        if (acc > u) return k;
      }
      return s.nz.back();
    }
    uint32_t last = 0;
    for (uint32_t k = 0; k < model_->num_topics; ++k) {
      const int32_t c = s.count[k];
      if (c == 0) continue;
      acc += DocTerm(k, c, model_->phi(k, word));
      if (acc > u) return k;
      last = k;
    }
    return last;
  }
  const double uw = u - q;
  if (uw < w) {
    // Word bucket. The sparse mode binary-searches the precomputed column
    // prefix; the dense mode rescans the same WordTerm sequence linearly —
    // the prefix values are bitwise the same, so both find the same topic.
    if (sparse) {
      const uint64_t begin = col_ptr_[word];
      const uint64_t len = col_ptr_[word + 1] - begin;
      const std::span<const double> prefix(col_prefix_.data() + begin, len);
      const size_t j = static_cast<size_t>(
          std::upper_bound(prefix.begin(), prefix.end(), uw) -
          prefix.begin());
      return col_topic_[begin + std::min(j, static_cast<size_t>(len - 1))];
    }
    double acc = 0;
    uint32_t last = 0;
    for (uint32_t k = 0; k < model_->num_topics; ++k) {
      const uint16_t f = model_->phi(k, word);
      if (f == 0) continue;
      acc += WordTerm(k, f);
      if (acc > uw) return k;
      last = k;
    }
    return last;
  }
  // Smoothing bucket: the prebuilt F-ary tree over the cached p*(k) terms
  // (shared by both modes; Search clamps float round-off to K-1).
  const double us = uw - w;
  return static_cast<uint32_t>(smooth_tree_.Search(static_cast<float>(us)));
}

void InferenceEngine::FoldIn(std::span<const uint32_t> words,
                             uint32_t iterations, uint64_t seed,
                             Scratch& s) const {
  EnsureScratch(s);
  for (const uint32_t k : s.nz) s.count[k] = 0;  // O(nnz) reset
  s.nz.clear();
  s.z.clear();

  for (const uint32_t w : words) {
    CULDA_CHECK_MSG(w < model_->vocab_size,
                    "word id " << w << " not in the trained vocabulary");
  }
  if (words.empty()) return;

  // One counter-advanced stream per document (stream id 0 of `seed`):
  // len NextBelow draws for the init, then one NextDouble per token per
  // sweep. Pinned by Inference.PinnedSamplingSequence.
  PhiloxStream rng(seed, 0);
  s.z.resize(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    const uint32_t k = rng.NextBelow(model_->num_topics);
    s.z[i] = static_cast<uint16_t>(k);
    IncCount(s.count, s.nz, k);
  }

  for (uint32_t it = 1; it <= iterations; ++it) {
    for (size_t i = 0; i < words.size(); ++i) {
      const uint32_t v = words[i];
      DecCount(s.count, s.nz, s.z[i]);
      double q, w;
      BucketMasses(v, s, &q, &w);
      const double u = rng.NextDouble() * ((q + w) + smooth_mass_);
      const uint32_t k = SampleTopic(v, q, w, u, s);
      s.z[i] = static_cast<uint16_t>(k);
      IncCount(s.count, s.nz, k);
    }
  }
}

InferenceResult InferenceEngine::ResultFromScratch(
    std::span<const uint32_t> words, const Scratch& s) const {
  InferenceResult result;
  result.topic_counts.assign(model_->num_topics, 0);
  result.tokens = words.size();
  result.assignments.assign(s.z.begin(), s.z.end());
  const double denom = static_cast<double>(words.size()) + cfg_.AlphaSum();
  for (const uint32_t k : s.nz) {
    result.topic_counts[k] = s.count[k];
    result.mixture.push_back(
        {k, s.count[k], (s.count[k] + cfg_.AlphaOf(k)) / denom});
  }
  // Smoothed mixture, largest first.
  std::sort(result.mixture.begin(), result.mixture.end(),
            [](const DocTopic& a, const DocTopic& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.topic < b.topic;
            });
  return result;
}

InferenceResult InferenceEngine::InferDocument(
    std::span<const uint32_t> words, uint32_t iterations,
    uint64_t seed) const {
  Scratch s;
  FoldIn(words, iterations, seed, s);
  return ResultFromScratch(words, s);
}

std::vector<InferenceResult> InferenceEngine::InferBatch(
    std::span<const std::vector<uint32_t>> docs, uint32_t iterations,
    std::span<const uint64_t> seeds) const {
  CULDA_CHECK_MSG(seeds.size() == docs.size(),
                  "InferBatch needs one seed per document (got "
                      << seeds.size() << " for " << docs.size() << ")");
  CULDA_OBS_SPAN("infer/batch");
  CULDA_OBS_TIMED("infer.batch_seconds");
  std::vector<InferenceResult> results(docs.size());
  ThreadPool* pool = options_.pool;
  const size_t slots = pool != nullptr ? pool->worker_count() + 1 : 1;
  std::vector<Scratch> scratch(slots);
  const auto body = [&](size_t i) {
    CULDA_OBS_TIMED("infer.doc_seconds");
    Scratch& s =
        scratch[pool != nullptr ? pool->current_worker_id() + 1 : 0];
    FoldIn(docs[i], iterations, seeds[i], s);
    results[i] = ResultFromScratch(docs[i], s);
  };
  if (pool != nullptr) {
    pool->ParallelFor(docs.size(), body);
  } else {
    for (size_t i = 0; i < docs.size(); ++i) body(i);
  }
  CULDA_OBS_COUNT("infer.batches", 1);
  CULDA_OBS_COUNT("infer.docs", docs.size());
  if (CULDA_OBS_ENABLED()) {
    uint64_t tokens = 0;
    for (const auto& r : results) tokens += r.tokens;
    CULDA_OBS_COUNT("infer.tokens", tokens);
  }
  return results;
}

std::vector<InferenceResult> InferenceEngine::InferBatch(
    std::span<const std::vector<uint32_t>> docs, uint32_t iterations,
    uint64_t seed) const {
  std::vector<uint64_t> seeds(docs.size());
  for (size_t i = 0; i < seeds.size(); ++i) seeds[i] = seed + i;
  return InferBatch(docs, iterations, seeds);
}

double InferenceEngine::DocumentCompletionPerplexity(
    const corpus::Corpus& heldout, uint32_t iterations,
    uint64_t seed) const {
  CULDA_CHECK(heldout.vocab_size() <= model_->vocab_size);
  CULDA_OBS_SPAN("infer/perplexity");
  CULDA_OBS_TIMED("infer.ppl_wall_s");

  // Per-document partials reduced in document order below: the value is
  // independent of the worker count (and of whether a pool is set at all).
  const size_t num_docs = heldout.num_docs();
  std::vector<double> partial(num_docs, 0.0);
  std::vector<uint64_t> scored(num_docs, 0);
  ThreadPool* pool = options_.pool;
  const size_t slots = pool != nullptr ? pool->worker_count() + 1 : 1;
  std::vector<Scratch> scratch(slots);
  const auto body = [&](size_t d) {
    CULDA_OBS_TIMED("infer.ppl_doc_seconds");
    const auto tokens = heldout.DocTokens(d);
    if (tokens.size() < 2) return;
    Scratch& s =
        scratch[pool != nullptr ? pool->current_worker_id() + 1 : 0];
    const size_t half = tokens.size() / 2;
    FoldIn(tokens.subspan(0, half), iterations, seed + d, s);
    const double denom = static_cast<double>(half) + cfg_.AlphaSum();
    double log_prob = 0;
    for (size_t i = half; i < tokens.size(); ++i) {
      double q, w;
      BucketMasses(tokens[i], s, &q, &w);
      // p(w | θ̂_d, φ̂) = (Q + W + S) / (half + Σα) — the same bucket sums
      // as sampling, so dense and sparse scoring agree bitwise too.
      log_prob += std::log(((q + w) + smooth_mass_) / denom);
    }
    partial[d] = log_prob;
    scored[d] = tokens.size() - half;
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_docs, body);
  } else {
    for (size_t d = 0; d < num_docs; ++d) body(d);
  }

  double log_prob = 0;
  uint64_t total_scored = 0;
  for (size_t d = 0; d < num_docs; ++d) {
    log_prob += partial[d];
    total_scored += scored[d];
  }
  CULDA_CHECK_MSG(total_scored > 0,
                  "held-out corpus has no scorable tokens");
  CULDA_OBS_COUNT("infer.tokens_scored", total_scored);
  return std::exp(-log_prob / static_cast<double>(total_scored));
}

}  // namespace culda::core
