#include "core/inference.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/philox.hpp"

namespace culda::core {

InferenceEngine::InferenceEngine(const GatheredModel& model, CuldaConfig cfg)
    : model_(&model), cfg_(std::move(cfg)) {
  cfg_.Validate();
  CULDA_CHECK_MSG(model.num_topics == cfg_.num_topics,
                  "model K (" << model.num_topics
                              << ") differs from config K ("
                              << cfg_.num_topics << ")");
  topic_denom_.resize(model.num_topics);
  for (uint32_t k = 0; k < model.num_topics; ++k) {
    topic_denom_[k] = static_cast<double>(model.nk[k]) +
                      cfg_.beta * model.vocab_size;
  }
}

double InferenceEngine::WordGivenTopic(uint32_t word, uint32_t k) const {
  CULDA_CHECK(word < model_->vocab_size && k < model_->num_topics);
  return (static_cast<double>(model_->phi(k, word)) + cfg_.beta) /
         topic_denom_[k];
}

InferenceResult InferenceEngine::InferDocument(
    std::span<const uint32_t> words, uint32_t iterations,
    uint64_t seed) const {
  const uint32_t k_topics = model_->num_topics;
  for (const uint32_t w : words) {
    CULDA_CHECK_MSG(w < model_->vocab_size,
                    "word id " << w << " not in the trained vocabulary");
  }

  InferenceResult result;
  result.topic_counts.assign(k_topics, 0);
  result.tokens = words.size();
  if (words.empty()) return result;

  // Random init, then fold-in Gibbs with φ fixed.
  std::vector<uint16_t> z(words.size());
  {
    PhiloxStream rng(seed, 0);
    for (size_t i = 0; i < words.size(); ++i) {
      z[i] = static_cast<uint16_t>(rng.NextBelow(k_topics));
      ++result.topic_counts[z[i]];
    }
  }
  std::vector<double> cdf(k_topics);
  for (uint32_t it = 1; it <= iterations; ++it) {
    for (size_t i = 0; i < words.size(); ++i) {
      const uint32_t w = words[i];
      --result.topic_counts[z[i]];
      double total = 0;
      for (uint32_t k = 0; k < k_topics; ++k) {
        total += (result.topic_counts[k] + cfg_.AlphaOf(k)) *
                 WordGivenTopic(w, k);
        cdf[k] = total;
      }
      PhiloxStream rng(seed, (static_cast<uint64_t>(it) << 32) ^ i);
      const double u = rng.NextDouble() * total;
      uint16_t k = static_cast<uint16_t>(k_topics - 1);
      for (uint32_t c = 0; c < k_topics; ++c) {
        if (cdf[c] > u) {
          k = static_cast<uint16_t>(c);
          break;
        }
      }
      z[i] = k;
      ++result.topic_counts[k];
    }
  }

  result.assignments = std::move(z);

  // Smoothed mixture, largest first.
  const double denom =
      static_cast<double>(words.size()) + cfg_.AlphaSum();
  for (uint32_t k = 0; k < k_topics; ++k) {
    if (result.topic_counts[k] != 0) {
      result.mixture.push_back(
          {k, result.topic_counts[k],
           (result.topic_counts[k] + cfg_.AlphaOf(k)) / denom});
    }
  }
  std::sort(result.mixture.begin(), result.mixture.end(),
            [](const DocTopic& a, const DocTopic& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.topic < b.topic;
            });
  return result;
}

double InferenceEngine::DocumentCompletionPerplexity(
    const corpus::Corpus& heldout, uint32_t iterations,
    uint64_t seed) const {
  CULDA_CHECK(heldout.vocab_size() <= model_->vocab_size);
  const uint32_t k_topics = model_->num_topics;

  double log_prob = 0;
  uint64_t scored = 0;
  for (size_t d = 0; d < heldout.num_docs(); ++d) {
    const auto tokens = heldout.DocTokens(d);
    if (tokens.size() < 2) continue;
    const size_t half = tokens.size() / 2;

    const InferenceResult fold = InferDocument(
        tokens.subspan(0, half), iterations, seed + d);
    const double denom = static_cast<double>(half) + cfg_.AlphaSum();

    for (size_t i = half; i < tokens.size(); ++i) {
      double p = 0;
      for (uint32_t k = 0; k < k_topics; ++k) {
        p += (fold.topic_counts[k] + cfg_.AlphaOf(k)) / denom *
             WordGivenTopic(tokens[i], k);
      }
      log_prob += std::log(p);
      ++scored;
    }
  }
  CULDA_CHECK_MSG(scored > 0, "held-out corpus has no scorable tokens");
  return std::exp(-log_prob / static_cast<double>(scored));
}

}  // namespace culda::core
