#include "core/sync.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace culda::core {

namespace {

/// φ += other, element-wise, with overflow detection for the 16-bit counts
/// (Section 6.1.3 argues 16 bits suffice; the check makes the claim
/// falsifiable instead of silently wrapping).
void AddReplica(PhiMatrix& into, const PhiMatrix& from) {
  auto dst = into.flat();
  const auto src = from.flat();
  CULDA_CHECK(dst.size() == src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    const uint32_t sum = static_cast<uint32_t>(dst[i]) + src[i];
    CULDA_CHECK_MSG(sum <= 0xFFFF,
                    "phi count overflowed 16 bits during reduce; "
                    "the corpus is too large for compressed counts");
    dst[i] = static_cast<uint16_t>(sum);
  }
}

/// Bills the element-wise add kernel on `device`.
void BillAddKernel(gpusim::Device& device, const CuldaConfig& cfg,
                   uint64_t cells, gpusim::Stream* stream) {
  const uint64_t b = cfg.phi_count_bytes();
  device.Launch("phi_reduce_add",
                {static_cast<uint32_t>(std::max<uint64_t>(1, cells >> 16)),
                 1024},
                [&](gpusim::BlockContext& ctx) {
                  const uint64_t share = cells / ctx.grid_dim();
                  ctx.ReadGlobal(2 * share * b);
                  ctx.WriteGlobal(share * b);
                  ctx.IntOps(share);
                },
                stream);
}

}  // namespace

SyncStats SynchronizePhi(gpusim::DeviceGroup& group, const CuldaConfig& cfg,
                         std::vector<PhiReplica>& replicas, SyncMode mode) {
  const size_t g_count = group.size();
  CULDA_CHECK(replicas.size() == g_count);
  SyncStats stats;
  if (g_count == 1) return stats;

  const uint64_t cells = static_cast<uint64_t>(replicas[0].num_topics) *
                         replicas[0].vocab_size;
  const uint64_t bytes = cells * cfg.phi_count_bytes();
  const double start = group.Now();

  if (mode == SyncMode::kGpuTree) {
    // Pairwise reduce (Figure 4): round r combines replicas at distance
    // 2^r; disjoint pairs run in parallel (their streams are independent).
    for (size_t step = 1; step < g_count; step *= 2) {
      ++stats.reduce_rounds;
      for (size_t i = 0; i + step < g_count; i += 2 * step) {
        group.PeerTransfer(i + step, i, bytes);
        stats.peer_bytes += bytes;
        AddReplica(replicas[i].phi, replicas[i + step].phi);
        BillAddKernel(group.device(i), cfg, cells, nullptr);
      }
    }
    // Broadcast φ⁰ back out along the same tree, deepest distance first.
    size_t top = 1;
    while (top * 2 < g_count) top *= 2;
    for (size_t step = top; step >= 1; step /= 2) {
      for (size_t i = 0; i + step < g_count; i += 2 * step) {
        group.PeerTransfer(i, i + step, bytes);
        stats.peer_bytes += bytes;
        replicas[i + step].phi = replicas[i].phi;
      }
      if (step == 1) break;
    }
  } else {
    // CPU-side sum (the rejected alternative, kept for the A5 ablation):
    // every GPU ships its replica down, the host adds G matrices, the sum is
    // shipped back up. All DMA streams land in the same host memory
    // controller, so the G copies serialize there (unlike peer transfers
    // between disjoint GPU pairs), and the adds run at CPU memory bandwidth
    // — both effects are why Section 5.2 keeps the reduction on the GPUs.
    double host_clock = group.Now();
    for (size_t i = 0; i < g_count; ++i) {
      gpusim::Device& dev = group.device(i);
      host_clock = std::max(host_clock, dev.stream(0).ready_time()) +
                   dev.host_link().TransferSeconds(bytes);
      dev.stream(0).WaitUntil(host_clock);
      stats.host_bytes += bytes;
    }
    for (size_t i = 1; i < g_count; ++i) {
      AddReplica(replicas[0].phi, replicas[i].phi);
    }
    const gpusim::DeviceSpec cpu = gpusim::XeonCpu();
    host_clock += static_cast<double>(g_count + 1) * bytes /
                  cpu.EffectiveBandwidthBps();
    for (size_t i = 0; i < g_count; ++i) {
      if (i != 0) replicas[i].phi = replicas[0].phi;
      gpusim::Device& dev = group.device(i);
      host_clock += dev.host_link().TransferSeconds(bytes);
      dev.stream(0).WaitUntil(host_clock);
      stats.host_bytes += bytes;
    }
  }

  stats.seconds = group.Now() - start;
  return stats;
}

namespace {

/// Shared head of both multi-node overloads: intra-node reduce on every
/// group (leaves every local replica holding the node sum; reusing
/// SynchronizePhi keeps one code path — the extra broadcast is counted in
/// the tail's favour since the tail then only re-broadcasts deltas).
/// Returns {intra_start, intra_end} on the shared timeline.
std::pair<double, double> IntraNodeReduce(
    std::vector<gpusim::DeviceGroup*>& node_groups, const CuldaConfig& cfg,
    std::vector<std::vector<PhiReplica>*>& node_replicas) {
  double intra_start = 0, intra_end = 0;
  for (size_t n = 0; n < node_groups.size(); ++n) {
    intra_start = std::max(intra_start, node_groups[n]->Now());
    SynchronizePhi(*node_groups[n], cfg, *node_replicas[n],
                   SyncMode::kGpuTree);
    intra_end = std::max(intra_end, node_groups[n]->Now());
  }
  return {intra_start, intra_end};
}

/// Functional inter-node sum: adds every node's replica 0 into node 0's.
/// Returns a reference to the summed global matrix.
PhiMatrix& SumNodeReplicas(
    std::vector<std::vector<PhiReplica>*>& node_replicas) {
  PhiMatrix& global = (*node_replicas[0])[0].phi;
  for (size_t n = 1; n < node_replicas.size(); ++n) {
    const auto src = (*node_replicas[n])[0].phi.flat();
    auto dst = global.flat();
    for (size_t i = 0; i < dst.size(); ++i) {
      const uint32_t sum = static_cast<uint32_t>(dst[i]) + src[i];
      CULDA_CHECK_MSG(sum <= 0xFFFF, "phi overflow in multi-node sync");
      dst[i] = static_cast<uint16_t>(sum);
    }
  }
  return global;
}

/// Shared tail: install `global` on every replica, align every device to
/// `end`, bill one intra-node broadcast round, and return the final time.
double BroadcastWithinNodes(std::vector<gpusim::DeviceGroup*>& node_groups,
                            std::vector<std::vector<PhiReplica>*>&
                                node_replicas,
                            PhiMatrix& global, uint64_t bytes, double end) {
  for (size_t n = 0; n < node_groups.size(); ++n) {
    for (auto& replica : *node_replicas[n]) {
      if (&replica.phi != &global) replica.phi = global;
    }
    for (size_t g = 0; g < node_groups[n]->size(); ++g) {
      node_groups[n]->device(g).stream(0).WaitUntil(end);
    }
    // One intra-node broadcast round over the peer link.
    if (node_groups[n]->size() > 1) {
      node_groups[n]->PeerTransfer(0, 1, bytes);
    }
    node_groups[n]->Barrier();
    end = std::max(end, node_groups[n]->Now());
  }
  return end;
}

uint64_t GlobalPhiBytes(const CuldaConfig& cfg,
                        std::vector<std::vector<PhiReplica>*>&
                            node_replicas) {
  return static_cast<uint64_t>((*node_replicas[0])[0].num_topics) *
         (*node_replicas[0])[0].vocab_size * cfg.phi_count_bytes();
}

}  // namespace

MultiNodeSyncStats SynchronizePhiAcrossNodes(
    std::vector<gpusim::DeviceGroup*> node_groups, const CuldaConfig& cfg,
    std::vector<std::vector<PhiReplica>*> node_replicas,
    const gpusim::LinkSpec& network) {
  const size_t nodes = node_groups.size();
  CULDA_CHECK(nodes >= 1);
  CULDA_CHECK(node_replicas.size() == nodes);

  MultiNodeSyncStats stats;
  const uint64_t bytes = GlobalPhiBytes(cfg, node_replicas);
  const auto [intra_start, intra_end] =
      IntraNodeReduce(node_groups, cfg, node_replicas);
  stats.intra_node_s = intra_end - intra_start;
  if (nodes == 1) {
    stats.seconds = stats.intra_node_s;
    return stats;
  }

  // Inter-node ring all-reduce of the node sums: each node sends and
  // receives 2·(N−1)/N of the model. Every node's NIC is busy the whole
  // time, so the wall cost is that volume over one link.
  const uint64_t ring_bytes = 2 * bytes * (nodes - 1) / nodes;
  stats.network_bytes = ring_bytes * nodes;
  stats.inter_node_s = network.TransferSeconds(ring_bytes);

  PhiMatrix& global = SumNodeReplicas(node_replicas);
  const double end =
      BroadcastWithinNodes(node_groups, node_replicas, global, bytes,
                           intra_end + stats.inter_node_s);
  stats.seconds = end - intra_start;
  return stats;
}

MultiNodeSyncStats SynchronizePhiAcrossNodes(
    std::vector<gpusim::DeviceGroup*> node_groups, const CuldaConfig& cfg,
    std::vector<std::vector<PhiReplica>*> node_replicas,
    gpusim::Fabric& fabric) {
  const size_t nodes = node_groups.size();
  CULDA_CHECK(nodes >= 1);
  CULDA_CHECK(node_replicas.size() == nodes);
  CULDA_CHECK_MSG(fabric.size() == nodes,
                  "fabric has " << fabric.size() << " endpoints but "
                                << nodes << " node groups were passed");

  MultiNodeSyncStats stats;
  const uint64_t bytes = GlobalPhiBytes(cfg, node_replicas);
  const auto [intra_start, intra_end] =
      IntraNodeReduce(node_groups, cfg, node_replicas);
  stats.intra_node_s = intra_end - intra_start;
  if (nodes == 1) {
    stats.seconds = stats.intra_node_s;
    return stats;
  }

  // Explicit ring all-reduce billed through the fabric: 2·(N−1) steps —
  // (N−1) reduce-scatter then (N−1) all-gather — each node forwarding a
  // ⌈model/N⌉ segment to its ring successor. On a ring fabric every step is
  // a single physical hop; on a fully-connected one it's a direct link.
  // Sends are issued in node-index order so link-contention resolution is
  // deterministic, and each step starts only when its payload has arrived
  // (clock[n] carries the per-node data dependency across steps).
  const uint64_t payload_before = fabric.payload_bytes();
  const uint64_t segment = (bytes + nodes - 1) / nodes;
  std::vector<double> clock(nodes, 0.0);
  for (size_t n = 0; n < nodes; ++n) clock[n] = node_groups[n]->Now();
  for (size_t step = 0; step < 2 * (nodes - 1); ++step) {
    std::vector<double> arrival(nodes, 0.0);
    for (size_t n = 0; n < nodes; ++n) {
      const size_t dst = (n + 1) % nodes;
      arrival[dst] = fabric.Transfer(n, dst, segment, clock[n]);
    }
    for (size_t n = 0; n < nodes; ++n) {
      clock[n] = std::max(clock[n], arrival[n]);
    }
  }
  double end = 0;
  for (size_t n = 0; n < nodes; ++n) end = std::max(end, clock[n]);
  stats.network_bytes = fabric.payload_bytes() - payload_before;
  stats.inter_node_s = end - intra_end;

  PhiMatrix& global = SumNodeReplicas(node_replicas);
  end = BroadcastWithinNodes(node_groups, node_replicas, global, bytes, end);
  stats.seconds = end - intra_start;
  return stats;
}

}  // namespace culda::core
