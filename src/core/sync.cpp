#include "core/sync.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace culda::core {

namespace {

/// φ += other, element-wise, with overflow detection for the 16-bit counts
/// (Section 6.1.3 argues 16 bits suffice; the check makes the claim
/// falsifiable instead of silently wrapping).
void AddReplica(PhiMatrix& into, const PhiMatrix& from) {
  auto dst = into.flat();
  const auto src = from.flat();
  CULDA_CHECK(dst.size() == src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    const uint32_t sum = static_cast<uint32_t>(dst[i]) + src[i];
    CULDA_CHECK_MSG(sum <= 0xFFFF,
                    "phi count overflowed 16 bits during reduce; "
                    "the corpus is too large for compressed counts");
    dst[i] = static_cast<uint16_t>(sum);
  }
}

/// Bills the element-wise add kernel on `device`.
void BillAddKernel(gpusim::Device& device, const CuldaConfig& cfg,
                   uint64_t cells, gpusim::Stream* stream) {
  const uint64_t b = cfg.phi_count_bytes();
  device.Launch("phi_reduce_add",
                {static_cast<uint32_t>(std::max<uint64_t>(1, cells >> 16)),
                 1024},
                [&](gpusim::BlockContext& ctx) {
                  const uint64_t share = cells / ctx.grid_dim();
                  ctx.ReadGlobal(2 * share * b);
                  ctx.WriteGlobal(share * b);
                  ctx.IntOps(share);
                },
                stream);
}

}  // namespace

SyncStats SynchronizePhi(gpusim::DeviceGroup& group, const CuldaConfig& cfg,
                         std::vector<PhiReplica>& replicas, SyncMode mode) {
  const size_t g_count = group.size();
  CULDA_CHECK(replicas.size() == g_count);
  SyncStats stats;
  if (g_count == 1) return stats;

  const uint64_t cells = static_cast<uint64_t>(replicas[0].num_topics) *
                         replicas[0].vocab_size;
  const uint64_t bytes = cells * cfg.phi_count_bytes();
  const double start = group.Now();

  if (mode == SyncMode::kGpuTree) {
    // Pairwise reduce (Figure 4): round r combines replicas at distance
    // 2^r; disjoint pairs run in parallel (their streams are independent).
    for (size_t step = 1; step < g_count; step *= 2) {
      ++stats.reduce_rounds;
      for (size_t i = 0; i + step < g_count; i += 2 * step) {
        group.PeerTransfer(i + step, i, bytes);
        stats.peer_bytes += bytes;
        AddReplica(replicas[i].phi, replicas[i + step].phi);
        BillAddKernel(group.device(i), cfg, cells, nullptr);
      }
    }
    // Broadcast φ⁰ back out along the same tree, deepest distance first.
    size_t top = 1;
    while (top * 2 < g_count) top *= 2;
    for (size_t step = top; step >= 1; step /= 2) {
      for (size_t i = 0; i + step < g_count; i += 2 * step) {
        group.PeerTransfer(i, i + step, bytes);
        stats.peer_bytes += bytes;
        replicas[i + step].phi = replicas[i].phi;
      }
      if (step == 1) break;
    }
  } else {
    // CPU-side sum (the rejected alternative, kept for the A5 ablation):
    // every GPU ships its replica down, the host adds G matrices, the sum is
    // shipped back up. All DMA streams land in the same host memory
    // controller, so the G copies serialize there (unlike peer transfers
    // between disjoint GPU pairs), and the adds run at CPU memory bandwidth
    // — both effects are why Section 5.2 keeps the reduction on the GPUs.
    double host_clock = group.Now();
    for (size_t i = 0; i < g_count; ++i) {
      gpusim::Device& dev = group.device(i);
      host_clock = std::max(host_clock, dev.stream(0).ready_time()) +
                   dev.host_link().TransferSeconds(bytes);
      dev.stream(0).WaitUntil(host_clock);
      stats.host_bytes += bytes;
    }
    for (size_t i = 1; i < g_count; ++i) {
      AddReplica(replicas[0].phi, replicas[i].phi);
    }
    const gpusim::DeviceSpec cpu = gpusim::XeonCpu();
    host_clock += static_cast<double>(g_count + 1) * bytes /
                  cpu.EffectiveBandwidthBps();
    for (size_t i = 0; i < g_count; ++i) {
      if (i != 0) replicas[i].phi = replicas[0].phi;
      gpusim::Device& dev = group.device(i);
      host_clock += dev.host_link().TransferSeconds(bytes);
      dev.stream(0).WaitUntil(host_clock);
      stats.host_bytes += bytes;
    }
  }

  stats.seconds = group.Now() - start;
  return stats;
}

MultiNodeSyncStats SynchronizePhiAcrossNodes(
    std::vector<gpusim::DeviceGroup*> node_groups, const CuldaConfig& cfg,
    std::vector<std::vector<PhiReplica>*> node_replicas,
    const gpusim::LinkSpec& network) {
  const size_t nodes = node_groups.size();
  CULDA_CHECK(nodes >= 1);
  CULDA_CHECK(node_replicas.size() == nodes);

  MultiNodeSyncStats stats;
  const uint64_t cells =
      static_cast<uint64_t>((*node_replicas[0])[0].num_topics) *
      (*node_replicas[0])[0].vocab_size;
  const uint64_t bytes = cells * cfg.phi_count_bytes();

  // 1. Intra-node reduce (leaves every local replica holding the node sum;
  //    only the reduce half matters before the network phase, but reusing
  //    SynchronizePhi keeps one code path — the extra broadcast is counted
  //    in phase 3's favour since phase 3 then only re-broadcasts deltas).
  double intra_start = 0, intra_end = 0;
  for (size_t n = 0; n < nodes; ++n) {
    intra_start = std::max(intra_start, node_groups[n]->Now());
    SynchronizePhi(*node_groups[n], cfg, *node_replicas[n],
                   SyncMode::kGpuTree);
    intra_end = std::max(intra_end, node_groups[n]->Now());
  }
  stats.intra_node_s = intra_end - intra_start;
  if (nodes == 1) {
    stats.seconds = stats.intra_node_s;
    return stats;
  }

  // 2. Inter-node ring all-reduce of the node sums: each node sends and
  //    receives 2·(N−1)/N of the model. Every node's NIC is busy the whole
  //    time, so the wall cost is that volume over one link.
  const uint64_t ring_bytes = 2 * bytes * (nodes - 1) / nodes;
  stats.network_bytes = ring_bytes * nodes;
  stats.inter_node_s = network.TransferSeconds(ring_bytes);

  // Functional: sum node 0's replica 0 across nodes, then copy everywhere.
  PhiMatrix& global = (*node_replicas[0])[0].phi;
  for (size_t n = 1; n < nodes; ++n) {
    const auto src = (*node_replicas[n])[0].phi.flat();
    auto dst = global.flat();
    for (size_t i = 0; i < dst.size(); ++i) {
      const uint32_t sum = static_cast<uint32_t>(dst[i]) + src[i];
      CULDA_CHECK_MSG(sum <= 0xFFFF, "phi overflow in multi-node sync");
      dst[i] = static_cast<uint16_t>(sum);
    }
  }

  // 3. Intra-node broadcast of the global model + clock alignment.
  double end = intra_end + stats.inter_node_s;
  for (size_t n = 0; n < nodes; ++n) {
    for (auto& replica : *node_replicas[n]) {
      if (&replica.phi != &global) replica.phi = global;
    }
    for (size_t g = 0; g < node_groups[n]->size(); ++g) {
      node_groups[n]->device(g).stream(0).WaitUntil(end);
    }
    // One intra-node broadcast round over the peer link.
    if (node_groups[n]->size() > 1) {
      node_groups[n]->PeerTransfer(0, 1, bytes);
    }
    node_groups[n]->Barrier();
    end = std::max(end, node_groups[n]->Now());
  }
  stats.seconds = end - intra_start;
  return stats;
}

}  // namespace culda::core
