#include "core/evaluator.hpp"

#include <cmath>

#include "util/check.hpp"

namespace culda::core {

double LogLikelihoodPerToken(const GatheredModel& model,
                             const CuldaConfig& cfg) {
  const double beta = cfg.beta;
  const uint32_t k_topics = model.num_topics;
  const uint32_t v_words = model.vocab_size;
  CULDA_CHECK(k_topics > 0 && v_words > 0);
  const bool symmetric = cfg.asymmetric_alpha.empty();
  const double alpha = cfg.EffectiveAlpha();
  const double alpha_sum = cfg.AlphaSum();

  const double lg_alpha = std::lgamma(alpha);
  const double lg_beta = std::lgamma(beta);
  const double lg_alpha_sum = std::lgamma(alpha_sum);
  const double lg_v_beta = std::lgamma(v_words * beta);

  double ll = 0;
  uint64_t total_tokens = 0;

  // Document side: Σ_k lΓ(θ_dk + α_k) − Σ_k lΓ(α_k) + lΓ(Σα) − lΓ(len+Σα);
  // zero entries cancel pairwise, so only the non-zeros contribute deltas.
  for (size_t d = 0; d < model.theta.rows(); ++d) {
    const auto idx = model.theta.RowIndices(d);
    const auto vals = model.theta.RowValues(d);
    uint64_t len = 0;
    double row = 0;
    for (size_t i = 0; i < vals.size(); ++i) {
      const double a_k = symmetric ? alpha : cfg.asymmetric_alpha[idx[i]];
      row += std::lgamma(vals[i] + a_k) -
             (symmetric ? lg_alpha : std::lgamma(a_k));
      len += static_cast<uint64_t>(vals[i]);
    }
    ll += row + lg_alpha_sum -
          std::lgamma(static_cast<double>(len) + alpha_sum);
    total_tokens += len;
  }

  // Topic side.
  for (uint32_t k = 0; k < k_topics; ++k) {
    const auto row = model.phi.Row(k);
    double acc = 0;
    uint64_t nonzero = 0;
    for (const uint16_t c : row) {
      if (c != 0) {
        acc += std::lgamma(static_cast<double>(c) + beta);
        ++nonzero;
      }
    }
    acc += static_cast<double>(v_words - nonzero) * lg_beta;
    ll += acc - v_words * lg_beta + lg_v_beta -
          std::lgamma(static_cast<double>(model.nk[k]) + v_words * beta);
  }

  CULDA_CHECK_MSG(total_tokens > 0, "model covers no tokens");
  return ll / static_cast<double>(total_tokens);
}

}  // namespace culda::core
