#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "util/check.hpp"

namespace culda::core {

namespace {

/// Memo table for lgamma(c + shift) over small integer c. The counts in θ
/// and φ are small integers, so the same handful of lgamma values is
/// recomputed millions of times; the table stores exactly
/// std::lgamma(double(c) + shift), so lookups are bitwise-identical to the
/// direct calls they replace (out-of-range c falls back to the direct call).
class LgammaShiftTable {
 public:
  LgammaShiftTable(double shift, size_t entries)
      : shift_(shift), table_(entries) {
    for (size_t c = 0; c < entries; ++c) {
      table_[c] = std::lgamma(static_cast<double>(c) + shift_);
    }
  }

  double operator()(int64_t c) const {
    return c >= 0 && static_cast<size_t>(c) < table_.size()
               ? table_[static_cast<size_t>(c)]
               : std::lgamma(static_cast<double>(c) + shift_);
  }

 private:
  double shift_;
  std::vector<double> table_;
};

}  // namespace

double LogLikelihoodPerToken(const GatheredModel& model,
                             const CuldaConfig& cfg, ThreadPool* pool) {
  const double beta = cfg.beta;
  const uint32_t k_topics = model.num_topics;
  const uint32_t v_words = model.vocab_size;
  CULDA_CHECK(k_topics > 0 && v_words > 0);
  const bool symmetric = cfg.asymmetric_alpha.empty();
  const double alpha = cfg.EffectiveAlpha();
  const double alpha_sum = cfg.AlphaSum();

  const double lg_beta = std::lgamma(beta);
  const double lg_alpha_sum = std::lgamma(alpha_sum);
  const double lg_v_beta = std::lgamma(v_words * beta);
  // lΓ(α_k) per topic (one value when symmetric).
  std::vector<double> lg_alpha_k;
  if (!symmetric) {
    lg_alpha_k.resize(k_topics);
    for (uint32_t k = 0; k < k_topics; ++k) {
      lg_alpha_k[k] = std::lgamma(cfg.asymmetric_alpha[k]);
    }
  }
  const double lg_alpha = symmetric ? std::lgamma(alpha) : 0.0;

  // φ counts are uint16, so one full-range table covers every cell; θ
  // counts are bounded by the longest document (capped — longer rows fall
  // back to direct lgamma).
  const LgammaShiftTable lg_phi(beta, size_t{1} << 16);
  size_t theta_entries = 0;
  if (symmetric) {
    int32_t max_theta = 0;
    for (const int32_t v : model.theta.values()) {
      max_theta = std::max(max_theta, v);
    }
    theta_entries =
        std::min<size_t>(static_cast<size_t>(max_theta) + 1, size_t{1} << 20);
  }
  const LgammaShiftTable lg_theta(alpha, theta_entries);

  const auto run = [&](size_t n, const std::function<void(size_t)>& fn) {
    if (pool != nullptr) {
      pool->ParallelFor(n, fn);
    } else {
      for (size_t i = 0; i < n; ++i) fn(i);
    }
  };

  // Document side: Σ_k lΓ(θ_dk + α_k) − Σ_k lΓ(α_k) + lΓ(Σα) − lΓ(len+Σα);
  // zero entries cancel pairwise, so only the non-zeros contribute deltas.
  // Fixed-size chunks (not worker-count-sized ranges) keep the reduction
  // order — and thus the value — independent of the pool.
  constexpr size_t kDocChunk = 256;
  const size_t num_docs = model.theta.rows();
  const size_t doc_chunks = (num_docs + kDocChunk - 1) / kDocChunk;
  std::vector<double> chunk_ll(doc_chunks, 0.0);
  std::vector<uint64_t> chunk_tokens(doc_chunks, 0);
  run(doc_chunks, [&](size_t c) {
    const size_t begin = c * kDocChunk;
    const size_t end = std::min(num_docs, begin + kDocChunk);
    double ll = 0;
    uint64_t tokens = 0;
    for (size_t d = begin; d < end; ++d) {
      const auto idx = model.theta.RowIndices(d);
      const auto vals = model.theta.RowValues(d);
      uint64_t len = 0;
      double row = 0;
      for (size_t i = 0; i < vals.size(); ++i) {
        if (symmetric) {
          row += lg_theta(vals[i]) - lg_alpha;
        } else {
          const double a_k = cfg.asymmetric_alpha[idx[i]];
          row += std::lgamma(vals[i] + a_k) - lg_alpha_k[idx[i]];
        }
        len += static_cast<uint64_t>(vals[i]);
      }
      ll += row + lg_alpha_sum -
            std::lgamma(static_cast<double>(len) + alpha_sum);
      tokens += len;
    }
    chunk_ll[c] = ll;
    chunk_tokens[c] = tokens;
  });

  // Topic side: one partial per φ row, reduced in topic order.
  std::vector<double> topic_ll(k_topics, 0.0);
  run(k_topics, [&](size_t k) {
    const auto row = model.phi.Row(k);
    double acc = 0;
    uint64_t nonzero = 0;
    for (const uint16_t c : row) {
      if (c != 0) {
        acc += lg_phi(c);
        ++nonzero;
      }
    }
    acc += static_cast<double>(v_words - nonzero) * lg_beta;
    topic_ll[k] = acc - v_words * lg_beta + lg_v_beta -
                  std::lgamma(static_cast<double>(model.nk[k]) +
                              v_words * beta);
  });

  double ll = 0;
  uint64_t total_tokens = 0;
  for (size_t c = 0; c < doc_chunks; ++c) {
    ll += chunk_ll[c];
    total_tokens += chunk_tokens[c];
  }
  for (uint32_t k = 0; k < k_topics; ++k) ll += topic_ll[k];

  CULDA_CHECK_MSG(total_tokens > 0, "model covers no tokens");
  return ll / static_cast<double>(total_tokens);
}

}  // namespace culda::core
