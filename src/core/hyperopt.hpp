// Hyper-parameter optimization (Minka's fixed-point updates).
//
// The paper fixes α = 50/K and β = 0.01 "same with the previous paper";
// production LDA systems (MALLET, WarpLDA's tooling) instead re-estimate the
// symmetric Dirichlet concentrations from the current counts every few
// iterations, which measurably improves model quality. This implements the
// standard fixed-point updates
//
//   α ← α · Σ_d Σ_k [ψ(θ_dk + α) − ψ(α)] / (K · Σ_d [ψ(len_d + Kα) − ψ(Kα)])
//   β ← β · Σ_k Σ_v [ψ(φ_kv + β) − ψ(β)] / (V · Σ_k [ψ(n_k + Vβ) − ψ(Vβ)])
//
// as an opt-in extension (DESIGN.md lists it under the paper's
// future/extension features).
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/model.hpp"

namespace culda::core {

struct HyperOptResult {
  double value = 0;      ///< the optimized concentration
  int iterations = 0;    ///< fixed-point steps taken
  bool converged = false;
};

/// One or more fixed-point steps for α from the current θ counts.
HyperOptResult OptimizeAlpha(const GatheredModel& model, double alpha,
                             int max_iterations = 25, double tolerance = 1e-5);

/// One or more fixed-point steps for β from the current φ counts.
HyperOptResult OptimizeBeta(const GatheredModel& model, double beta,
                            int max_iterations = 25, double tolerance = 1e-5);

/// Component-wise fixed point for an asymmetric α (Wallach-style):
///   α_k ← α_k · Σ_d [ψ(θ_dk + α_k) − ψ(α_k)]
///              / Σ_d [ψ(len_d + Σα) − ψ(Σα)]
/// `alpha` holds the starting vector (size K) and receives the result.
/// Returns the summary of the last sweep.
HyperOptResult OptimizeAsymmetricAlpha(const GatheredModel& model,
                                       std::vector<double>& alpha,
                                       int max_iterations = 25,
                                       double tolerance = 1e-5);

}  // namespace culda::core
