#include "core/snapshot.hpp"

#include <utility>

#include "core/trainer.hpp"
#include "obs/obs.hpp"

namespace culda::core {

ModelSnapshot::ModelSnapshot(GatheredModel model, CuldaConfig cfg,
                             InferenceOptions options, uint64_t generation)
    : generation_(generation),
      cfg_(std::move(cfg)),
      model_(std::move(model)),
      engine_(model_, cfg_, options) {}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::FromModel(
    GatheredModel model, CuldaConfig cfg, InferenceOptions options,
    uint64_t generation) {
  CULDA_OBS_SPAN("snapshot/build");
  CULDA_OBS_COUNT("snapshot.builds", 1);
  // make_shared needs a public ctor; new keeps it private.
  return std::shared_ptr<const ModelSnapshot>(new ModelSnapshot(
      std::move(model), std::move(cfg), options, generation));
}

SnapshotPtr SnapshotFromTrainer(const CuldaTrainer& trainer,
                                InferenceOptions options,
                                uint64_t generation) {
  // The trainer's replication policy carries over to the serving engine
  // (meaningful only when the caller also supplies a pool; the trainer's
  // own pool is deliberately NOT inherited — a snapshot may outlive it).
  options.numa_replicate =
      options.numa_replicate || trainer.options().numa_replicate;
  return ModelSnapshot::FromModel(trainer.Gather(), trainer.config(),
                                  options, generation);
}

}  // namespace culda::core
